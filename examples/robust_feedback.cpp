// Robustness to incorrect feedback (Appendix C as a runnable program):
// run the same experiment with a perfect user and with a user who is wrong
// 10% of the time, and compare the final link quality. ALEX's stochastic
// policy, rollback, and strike-based blacklist absorb isolated errors.
#include <iomanip>
#include <iostream>

#include "datagen/profiles.h"
#include "eval/experiment.h"

int main() {
  alex::eval::ExperimentConfig config;
  alex::datagen::ProfileByName("opencyc_nytimes", &config.profile);
  config.alex.episode_size = 500;
  config.alex.max_episodes = 15;
  config.alex.num_partitions = 4;

  // Same world and PARIS links for both runs.
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);

  std::cout << std::fixed << std::setprecision(3);
  for (double error_rate : {0.0, 0.1}) {
    config.feedback_error_rate = error_rate;
    alex::Result<alex::eval::ExperimentResult> result =
        alex::eval::RunExperimentOnWorld(config, world, initial);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const alex::eval::Quality& start = result->series[0].quality;
    const alex::eval::Quality& end = result->final_quality();
    std::cout << "\nerror rate " << std::setprecision(0)
              << error_rate * 100 << "%:" << std::setprecision(3) << "\n"
              << "  initial: P=" << start.precision << " R=" << start.recall
              << " F=" << start.f_measure << "\n"
              << "  final:   P=" << end.precision << " R=" << end.recall
              << " F=" << end.f_measure << "  (" << result->episodes
              << " episodes)\n";
  }
  std::cout << "\nEven with 10% wrong feedback the final quality stays far\n"
               "above the initial candidate links (compare Figure 9).\n";
  return 0;
}
