// Quickstart: the smallest end-to-end ALEX pipeline.
//
//   1. Build two tiny RDF data sets by hand (different vocabularies, noisy
//      values on one side).
//   2. Produce initial candidate links with PARIS.
//   3. Run ALEX against a ground-truth feedback oracle.
//   4. Print the links before and after.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/alex_engine.h"
#include "feedback/oracle.h"
#include "linking/paris.h"
#include "rdf/triple_store.h"

using alex::core::AlexEngine;
using alex::core::AlexOptions;
using alex::feedback::GroundTruth;
using alex::linking::Link;
using alex::rdf::Term;
using alex::rdf::TripleStore;

namespace {

struct Scientist {
  const char* id;
  const char* name;
  const char* noisy_name;  // how the right data set spells it
  int birth_year;
};

// Birth years collide on purpose: a shared year is weak linking evidence
// (low inverse functionality), so PARIS cannot use it alone and misses the
// scientists whose names the archive spells differently.
constexpr Scientist kScientists[] = {
    {"curie", "Marie Curie", "Curie, Marie", 1867},
    {"einstein", "Albert Einstein", "Albert Einstein", 1879},
    {"dirac", "Paul Dirac", "P. Dirac", 1867},
    {"noether", "Emmy Noether", "Emmy Noether", 1879},
    {"bohr", "Niels Bohr", "Niels Bhor", 1867},
    {"meitner", "Lise Meitner", "Meitner, Lise", 1879},
};

}  // namespace

int main() {
  // 1. Two data sets about the same scientists with different predicate
  // vocabularies; the right one has formatting noise.
  TripleStore left("encyclopedia");
  TripleStore right("archive");
  GroundTruth truth;
  for (const Scientist& s : kScientists) {
    std::string l = std::string("http://encyclopedia.example/") + s.id;
    std::string r = std::string("http://archive.example/rec-") + s.id;
    left.Add(Term::Iri(l), Term::Iri("http://encyclopedia.example/name"),
             Term::StringLiteral(s.name));
    left.Add(Term::Iri(l), Term::Iri("http://encyclopedia.example/born"),
             Term::IntegerLiteral(s.birth_year));
    right.Add(Term::Iri(r), Term::Iri("http://archive.example/label"),
              Term::StringLiteral(s.noisy_name));
    right.Add(Term::Iri(r), Term::Iri("http://archive.example/birthYear"),
              Term::IntegerLiteral(s.birth_year));
    truth.Add(Link{l, r, 1.0});
  }

  // 2. Automatic linking: PARIS needs exact values, so it only finds the
  // clean spellings.
  std::vector<Link> initial =
      alex::linking::FilterByScore(alex::linking::RunParis(left, right),
                                   0.95);
  std::cout << "PARIS found " << initial.size() << " / " << truth.size()
            << " links:\n";
  for (const Link& link : initial) {
    std::cout << "  " << link.left << "  <->  " << link.right << "\n";
  }

  // 3. ALEX explores around approved links and recovers the noisy ones.
  AlexOptions options;
  options.num_partitions = 1;
  options.episode_size = 20;
  options.max_episodes = 20;
  AlexEngine engine(&left, &right, options);
  alex::Status st = engine.Initialize(initial);
  if (!st.ok()) {
    std::cerr << "initialization failed: " << st.ToString() << "\n";
    return 1;
  }
  AlexEngine::RunResult run = engine.Run(
      [&truth](const Link& link) { return truth.Contains(link); });

  // 4. Result.
  std::vector<Link> final_links = engine.CandidateLinks();
  size_t correct = 0;
  for (const Link& link : final_links) {
    if (truth.Contains(link)) ++correct;
  }
  std::cout << "\nALEX converged after " << run.episodes
            << " episodes with " << final_links.size() << " links ("
            << correct << " correct of " << truth.size()
            << " ground truth):\n";
  for (const Link& link : final_links) {
    std::cout << "  " << link.left << "  <->  " << link.right
              << (truth.Contains(link) ? "" : "   [WRONG]") << "\n";
  }
  return correct == truth.size() ? 0 : 1;
}
