// The paper's motivating scenario (§1) end to end: "Find all New York Times
// articles about the NBA's MVP of 2013."
//
// The answer needs two data sets: a DBpedia-like knowledge base that knows
// who the MVP is, and a NYTimes-like archive that links articles to people.
// An owl:sameAs link bridges the two representations of the player. The
// example shows:
//   * federated SPARQL evaluation with sameAs bridging and provenance,
//   * how feedback on ANSWERS becomes feedback on LINKS,
//   * ALEX discovering a missing link so a previously unanswerable query
//     gains answers.
#include <iostream>

#include "core/alex_engine.h"
#include "federation/federated_engine.h"
#include "rdf/triple_store.h"

using alex::core::AlexEngine;
using alex::core::AlexOptions;
using alex::fed::FederatedAnswer;
using alex::fed::FederatedEngine;
using alex::fed::LinkSet;
using alex::linking::Link;
using alex::rdf::Term;
using alex::rdf::TripleStore;

namespace {

void PrintAnswers(const std::vector<FederatedAnswer>& answers) {
  if (answers.empty()) {
    std::cout << "  (no answers)\n";
    return;
  }
  for (const FederatedAnswer& answer : answers) {
    std::cout << "  answer:";
    for (const auto& [var, term] : answer.binding) {
      std::cout << " ?" << var << " = " << term.ToString();
    }
    if (!answer.links_used.empty()) {
      std::cout << "   [via";
      for (const Link& link : answer.links_used) {
        std::cout << " sameAs(" << link.left << ", " << link.right << ")";
      }
      std::cout << "]";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  // DBpedia-like knowledge base.
  TripleStore dbpedia("dbpedia");
  auto person = [&](const char* id, const char* name, const char* award) {
    std::string iri = std::string("http://dbpedia.org/resource/") + id;
    dbpedia.Add(Term::Iri(iri), Term::Iri("http://dbpedia.org/name"),
                Term::StringLiteral(name));
    if (award != nullptr) {
      dbpedia.Add(Term::Iri(iri), Term::Iri("http://dbpedia.org/award"),
                  Term::StringLiteral(award));
    }
    return iri;
  };
  std::string lebron = person("LeBron_James", "LeBron James",
                              "NBA Most Valuable Player 2013");
  std::string durant = person("Kevin_Durant", "Kevin Durant",
                              "NBA Most Valuable Player 2014");
  person("Tim_Duncan", "Tim Duncan", nullptr);

  // NYTimes-like archive: articles about people.
  TripleStore nytimes("nytimes");
  auto article = [&](const char* id, const char* about_id,
                     const char* about_name) {
    std::string iri = std::string("http://data.nytimes.com/article/") + id;
    std::string about = std::string("http://data.nytimes.com/person/") +
                        about_id;
    nytimes.Add(Term::Iri(iri), Term::Iri("http://data.nytimes.com/about"),
                Term::Iri(about));
    nytimes.Add(Term::Iri(about),
                Term::Iri("http://data.nytimes.com/elements/name"),
                Term::StringLiteral(about_name));
    return about;
  };
  std::string nyt_lebron = article("88231", "lebron-james", "James, LeBron");
  article("90412", "lebron-james", "James, LeBron");
  std::string nyt_durant = article("91100", "kevin-durant", "Kevin Durant");

  // Initially only Durant is linked (say, by an automatic linker that
  // handled the clean spelling but missed "James, LeBron").
  LinkSet links;
  links.Add(Link{durant, nyt_durant, 0.97});

  const std::string kQuery =
      "SELECT ?article WHERE { "
      "?player <http://dbpedia.org/award> "
      "\"NBA Most Valuable Player 2013\" . "
      "?article <http://data.nytimes.com/about> ?player }";

  FederatedEngine fed({&dbpedia, &nytimes}, &links);
  std::cout << "Query: find NYT articles about the NBA MVP of 2013\n";
  std::cout << "\nBefore ALEX (LeBron is not linked):\n";
  auto before = fed.ExecuteText(kQuery);
  if (!before.ok()) {
    std::cerr << before.status().ToString() << "\n";
    return 1;
  }
  PrintAnswers(before->answers);

  // Run ALEX: the user approves an answer produced via the Durant link,
  // ALEX explores around it in feature space and discovers the LeBron link
  // (their (name, name) similarity scores are close).
  AlexOptions options;
  options.num_partitions = 1;
  options.episode_size = 10;
  options.max_episodes = 10;
  options.step_size = 0.2;  // small data: explore a wider band
  AlexEngine alex(&dbpedia, &nytimes, options);
  alex::Status st = alex.Initialize(links.All());
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // Feedback loop: issue a query that uses the Durant link, approve its
  // answer (it is correct), and let ALEX take actions.
  const std::string kDurantQuery =
      "SELECT ?article WHERE { "
      "?player <http://dbpedia.org/award> "
      "\"NBA Most Valuable Player 2014\" . "
      "?article <http://data.nytimes.com/about> ?player }";
  for (int round = 0; round < 5; ++round) {
    LinkSet current;
    for (const Link& link : alex.CandidateLinks()) current.Add(link);
    FederatedEngine fed_round({&dbpedia, &nytimes}, &current);
    auto answers = fed_round.ExecuteText(kDurantQuery);
    if (!answers.ok()) break;
    alex.BeginExternalEpisode();
    for (const FederatedAnswer& answer : answers->answers) {
      for (const Link& used : answer.links_used) {
        alex.ApplyLinkFeedback(used, /*positive=*/true);  // user approves
      }
    }
    alex.EndExternalEpisode();
  }

  // Refresh the link set from ALEX's candidates and re-run the MVP query.
  LinkSet improved;
  for (const Link& link : alex.CandidateLinks()) improved.Add(link);
  std::cout << "\nALEX now proposes " << improved.size() << " links";
  std::cout << (improved.Contains(lebron, nyt_lebron)
                    ? " (including LeBron!)\n"
                    : "\n");
  FederatedEngine fed_after({&dbpedia, &nytimes}, &improved);
  std::cout << "\nAfter ALEX:\n";
  auto after = fed_after.ExecuteText(kQuery);
  if (!after.ok()) {
    std::cerr << after.status().ToString() << "\n";
    return 1;
  }
  PrintAnswers(after->answers);
  return after->answers.empty() ? 1 : 0;
}
