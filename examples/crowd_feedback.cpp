// Crowd feedback: many noisy users, one clean learner.
//
// The paper's batch-mode setting assumes a service provider collecting
// feedback from many users (§7.2), and §6.3 suggests refining raw feedback
// so that "ALEX uses only high quality feedback obtained from a large
// number of users". This example wires the FeedbackAggregator between a
// simulated crowd (every user is wrong 25% of the time!) and the ALEX
// engine: votes are tallied per link and only majority verdicts reach the
// learner. Compare the result against feeding the same raw noisy votes
// straight in.
#include <iomanip>
#include <iostream>

#include "core/alex_engine.h"
#include "datagen/profiles.h"
#include "eval/metrics.h"
#include "eval/vote_driven.h"
#include "feedback/aggregator.h"
#include "feedback/oracle.h"
#include "linking/paris.h"

using alex::core::AlexEngine;
using alex::core::AlexOptions;
using alex::linking::Link;

namespace {

constexpr double kUserErrorRate = 0.25;
constexpr int kVotesPerItem = 5;

AlexOptions MakeOptions() {
  AlexOptions options;
  options.num_partitions = 2;
  options.episode_size = 400;
  options.max_episodes = 12;
  return options;
}

}  // namespace

int main() {
  alex::datagen::WorldProfile profile =
      alex::datagen::OpencycNytimesProfile();
  alex::datagen::GeneratedWorld world = alex::datagen::Generate(profile);
  alex::feedback::GroundTruth truth(world.ground_truth);
  std::vector<Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right), 0.95);

  std::cout << std::fixed << std::setprecision(3);

  // Run 1: raw noisy feedback, one vote per item.
  {
    AlexEngine engine(&world.left, &world.right, MakeOptions());
    if (!engine.Initialize(initial).ok()) return 1;
    alex::feedback::Oracle noisy(&truth, kUserErrorRate, 404);
    engine.Run([&noisy](const Link& link) { return noisy.Feedback(link); });
    alex::eval::Quality q =
        alex::eval::Evaluate(engine.CandidateLinks(), truth);
    std::cout << "raw noisy feedback (25% wrong):    P=" << q.precision
              << " R=" << q.recall << " F=" << q.f_measure << "\n";
  }

  // Run 2: the same noisy crowd, but through the vote-driven pipeline —
  // every drawn link is judged by five users, the votes stream into the
  // sharded aggregator from two writer threads, and one drained verdict
  // batch per episode reaches ALEX.
  {
    AlexEngine engine(&world.left, &world.right, MakeOptions());
    if (!engine.Initialize(initial).ok()) return 1;
    alex::eval::VoteDrivenOptions vote_options;
    vote_options.links_per_episode = 400;
    vote_options.users_per_link = kVotesPerItem;
    vote_options.vote_error_rate = kUserErrorRate;
    vote_options.max_episodes = 12;
    vote_options.vote_threads = 2;
    vote_options.aggregator.quorum = kVotesPerItem;
    alex::eval::ExperimentResult result =
        alex::eval::RunVoteDrivenExperiment(&engine, truth, vote_options);
    const alex::eval::Quality& q = result.final_quality();
    const alex::core::EpisodeStats& last = result.series.back().stats;
    std::cout << "majority of " << kVotesPerItem
              << " noisy votes per link:  P=" << q.precision
              << " R=" << q.recall << " F=" << q.f_measure << "\n"
              << "  (" << last.votes_recorded << " votes -> "
              << last.verdicts_emitted << " verdicts, "
              << last.votes_suppressed << " noisy votes suppressed)\n";
  }

  std::cout << "\nAggregating the crowd's votes suppresses most of the\n"
               "erroneous feedback before it reaches the learner.\n";
  return 0;
}
