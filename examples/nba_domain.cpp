// Specific-domain interactive setting (§7.2.2): a single user explores a
// small NBA-players data set pair with tiny feedback episodes (10 items) and
// watches link quality improve almost immediately — the Figure 4(c)
// experience as a runnable program.
#include <iomanip>
#include <iostream>

#include "datagen/profiles.h"
#include "eval/experiment.h"
#include "eval/report.h"

int main() {
  alex::eval::ExperimentConfig config;
  alex::datagen::ProfileByName("dbpedia_nba_nytimes", &config.profile);
  config.alex.episode_size = 10;  // a single user's feedback batch
  config.alex.num_partitions = 2;
  config.alex.max_episodes = 40;

  std::cout << "Interactive specific-domain session: NBA players\n"
            << "(episodes of 10 feedback items, as in §7.2.2)\n";

  alex::Result<alex::eval::ExperimentResult> result = alex::eval::RunExperiment(
      config, [](const alex::eval::EpisodePoint& point) {
        std::cout << "  after " << std::setw(3) << point.episode * 10
                  << " feedback items: F = " << std::fixed
                  << std::setprecision(3) << point.quality.f_measure
                  << "  (P = " << point.quality.precision
                  << ", R = " << point.quality.recall << ")\n";
        std::cout.unsetf(std::ios::fixed);
      });
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  alex::eval::PrintSummary(std::cout, result.value());
  return result->final_quality().f_measure > 0.8 ? 0 : 1;
}
