// sparql_query — run a SPARQL query against one or more N-Triples files.
//
//   sparql_query "SELECT ..." --data a.nt [--data b.nt ...]
//                [--links links.tsv] [--explain]
//
// With a single data file the plain executor is used; --explain prints the
// planned engine's physical operator tree with per-operator cost and
// cardinality estimates next to the rows each operator actually produced.
// With several files, the federated engine evaluates the query across all
// of them, bridging entities through the owl:sameAs links from --links
// (TSV or N-Triples); answers are printed with their link provenance.
#include <iostream>

#include "cli_common.h"
#include "federation/federated_engine.h"
#include "linking/link_io.h"
#include "sparql/executor.h"
#include "sparql/results_io.h"
#include "sparql/parser.h"

namespace alex::tools {
namespace {

void PrintBinding(const sparql::Binding& binding) {
  bool first = true;
  for (const auto& [var, term] : binding) {
    if (!first) std::cout << "  ";
    first = false;
    std::cout << "?" << var << " = " << term.ToString();
  }
  if (binding.empty()) std::cout << "(empty row)";
  std::cout << "\n";
}

int Main(int argc, char** argv) {
  CommandLine cmd = ParseArgs(argc, argv);
  if (cmd.positional.empty() || !cmd.Has("data")) {
    std::cerr << "usage: sparql_query \"<query>\" --data file.nt "
                 "[--data more.nt ...] [--links links.tsv] [--explain]\n";
    return 2;
  }
  Result<sparql::Query> query = sparql::ParseQuery(cmd.positional[0]);
  if (!query.ok()) {
    std::cerr << "query error: " << query.status().ToString() << "\n";
    return 2;
  }

  std::vector<rdf::TripleStore> stores;
  stores.reserve(cmd.GetAll("data").size());
  for (const std::string& path : cmd.GetAll("data")) {
    stores.push_back(LoadStoreOrDie(path));
  }

  const std::string format = cmd.GetString("format", "plain");
  if (stores.size() == 1 && !cmd.Has("links")) {
    if (cmd.Has("explain")) {
      Result<std::string> plan = sparql::Explain(query.value(), stores[0]);
      if (!plan.ok()) {
        std::cerr << plan.status().ToString() << "\n";
        return 1;
      }
      std::cout << plan.value();
      return 0;
    }
    if (query->is_ask) {
      Result<bool> answer = sparql::Ask(query.value(), stores[0]);
      if (!answer.ok()) {
        std::cerr << answer.status().ToString() << "\n";
        return 1;
      }
      if (format == "json") {
        std::cout << sparql::AskResultToJson(answer.value()) << "\n";
      } else {
        std::cout << (answer.value() ? "yes" : "no") << "\n";
      }
      return 0;
    }
    Result<std::vector<sparql::Binding>> rows =
        sparql::Execute(query.value(), stores[0]);
    if (!rows.ok()) {
      std::cerr << rows.status().ToString() << "\n";
      return 1;
    }
    std::vector<std::string> vars =
        sparql::ResultVariables(query.value(), rows.value());
    if (format == "csv") {
      std::cout << sparql::ResultsToCsv(rows.value(), vars);
    } else if (format == "tsv") {
      std::cout << sparql::ResultsToTsv(rows.value(), vars);
    } else if (format == "json") {
      std::cout << sparql::ResultsToJson(rows.value(), vars) << "\n";
    } else {
      for (const sparql::Binding& row : rows.value()) PrintBinding(row);
      std::cout << rows->size() << " row(s)\n";
    }
    return 0;
  }

  fed::LinkSet links;
  if (cmd.Has("links")) {
    const std::string path = cmd.GetString("links");
    Result<std::vector<linking::Link>> loaded =
        EndsWith(path, ".nt") ? linking::LoadLinksNTriples(path)
                              : linking::LoadLinksTsv(path);
    if (!loaded.ok()) {
      std::cerr << "links error: " << loaded.status().ToString() << "\n";
      return 2;
    }
    for (const linking::Link& link : loaded.value()) links.Add(link);
  }
  std::vector<const rdf::TripleStore*> sources;
  for (const rdf::TripleStore& store : stores) sources.push_back(&store);
  fed::FederatedEngine engine(sources, &links);
  Result<fed::FederatedResult> executed = engine.Execute(query.value());
  if (!executed.ok()) {
    std::cerr << executed.status().ToString() << "\n";
    return 1;
  }
  const std::vector<fed::FederatedAnswer>& answers = executed->answers;
  if (query->is_ask) {
    std::cout << (answers.empty() ? "no" : "yes") << "\n";
    return 0;
  }
  for (const fed::FederatedAnswer& answer : answers) {
    PrintBinding(answer.binding);
    for (const linking::Link& link : answer.links_used) {
      std::cout << "    via sameAs(" << link.left << ", " << link.right
                << ")\n";
    }
  }
  std::cout << answers.size() << " row(s)";
  if (!executed->complete) std::cout << " (incomplete)";
  std::cout << "\n";
  return 0;
}

}  // namespace
}  // namespace alex::tools

int main(int argc, char** argv) { return alex::tools::Main(argc, argv); }
