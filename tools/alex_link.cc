// alex_link — command-line front end for the linking pipeline.
//
// Subcommands:
//   gen <profile> <left.nt> <right.nt> <truth.tsv>
//       Generate a synthetic data set pair (see `gen --list` for profiles).
//   paris <left.nt> <right.nt> [--threshold 0.95] [--tsv out.tsv]
//       [--nt out.nt]
//       Run the PARIS automatic linker and write candidate links.
//   rules <left.nt> <right.nt> --rule LPRED,RPRED[,WEIGHT[,MINSIM]] ...
//       [--threshold 0.8] [--tsv out.tsv]
//       Run the SILK-style rule matcher.
//   explore <left.nt> <right.nt> --links in.tsv --truth truth.tsv
//       [--episodes 40] [--episode-size 1000] [--partitions 8]
//       [--step 0.05] [--error-rate 0] [--out out.tsv]
//       Run ALEX against a ground-truth oracle and report per episode.
//   interactive <left.nt> <right.nt> --links in.tsv [--items 10]
//       [--out out.tsv]
//       Run ALEX with YOU as the user: candidate links are shown one at a
//       time; answer y/n (or q to stop). Policy improvement runs after
//       every --items answers.
//   eval --links links.tsv --truth truth.tsv
//       Print precision / recall / F-measure of a link file.
#include <fstream>
#include <iostream>

#include "cli_common.h"
#include "core/engine_state.h"
#include "rdf/snapshot.h"
#include "core/alex_engine.h"
#include "datagen/profiles.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "feedback/oracle.h"
#include "linking/link_io.h"
#include "linking/paris.h"
#include "linking/rule_matcher.h"

namespace alex::tools {
namespace {

int Usage() {
  std::cerr
      << "usage: alex_link <gen|paris|rules|explore|interactive|eval|snapshot> ...\n"
      << "run `alex_link help` for details\n";
  return 2;
}

int Fail(const Status& st) {
  std::cerr << "error: " << st.ToString() << "\n";
  return 1;
}

std::vector<linking::Link> LoadLinksOrDie(const std::string& path) {
  Result<std::vector<linking::Link>> links =
      EndsWith(path, ".nt") ? linking::LoadLinksNTriples(path)
                            : linking::LoadLinksTsv(path);
  if (!links.ok()) {
    std::cerr << "error loading links " << path << ": "
              << links.status().ToString() << "\n";
    std::exit(2);
  }
  return std::move(links).value();
}

Status WriteLinkOutputs(const CommandLine& cmd,
                        const std::vector<linking::Link>& links) {
  if (cmd.Has("tsv")) {
    ALEX_RETURN_IF_ERROR(
        linking::SaveLinksTsv(links, cmd.GetString("tsv")));
    std::cout << "wrote " << links.size() << " links to "
              << cmd.GetString("tsv") << " (TSV)\n";
  }
  if (cmd.Has("nt")) {
    ALEX_RETURN_IF_ERROR(
        linking::SaveLinksNTriples(links, cmd.GetString("nt")));
    std::cout << "wrote " << links.size() << " owl:sameAs triples to "
              << cmd.GetString("nt") << "\n";
  }
  if (!cmd.Has("tsv") && !cmd.Has("nt")) {
    std::cout << linking::WriteLinksTsv(links);
  }
  return Status::Ok();
}

int RunGen(const CommandLine& cmd) {
  if (cmd.GetString("list") == "true" ||
      (cmd.positional.size() >= 2 && cmd.positional[1] == "--list")) {
    for (const std::string& name : datagen::AllProfileNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (cmd.positional.size() < 5) {
    std::cerr << "usage: alex_link gen <profile> <left.nt> <right.nt> "
                 "<truth.tsv>\n       alex_link gen --list\n";
    return 2;
  }
  datagen::WorldProfile profile;
  if (!datagen::ProfileByName(cmd.positional[1], &profile)) {
    std::cerr << "unknown profile '" << cmd.positional[1]
              << "' (see gen --list)\n";
    return 2;
  }
  if (cmd.Has("seed")) profile.seed = cmd.GetInt("seed", profile.seed);
  datagen::GeneratedWorld world = datagen::Generate(profile);
  std::ofstream left(cmd.positional[2], std::ios::trunc);
  left << rdf::WriteNTriples(world.left);
  std::ofstream right(cmd.positional[3], std::ios::trunc);
  right << rdf::WriteNTriples(world.right);
  Status st = linking::SaveLinksTsv(world.ground_truth, cmd.positional[4]);
  if (!st.ok()) return Fail(st);
  std::cout << "generated " << world.left.size() << " + "
            << world.right.size() << " triples, "
            << world.ground_truth.size() << " ground-truth links\n";
  return 0;
}

int RunParisCmd(const CommandLine& cmd) {
  if (cmd.positional.size() < 3) return Usage();
  rdf::TripleStore left = LoadStoreOrDie(cmd.positional[1]);
  rdf::TripleStore right = LoadStoreOrDie(cmd.positional[2]);
  double threshold = cmd.GetDouble("threshold", 0.95);
  std::vector<linking::Link> links = linking::FilterByScore(
      linking::RunParis(left, right), threshold);
  Status st = WriteLinkOutputs(cmd, links);
  return st.ok() ? 0 : Fail(st);
}

int RunRulesCmd(const CommandLine& cmd) {
  if (cmd.positional.size() < 3 || !cmd.Has("rule")) {
    std::cerr << "usage: alex_link rules <left.nt> <right.nt> "
                 "--rule LPRED,RPRED[,WEIGHT[,MINSIM]] ...\n";
    return 2;
  }
  rdf::TripleStore left = LoadStoreOrDie(cmd.positional[1]);
  rdf::TripleStore right = LoadStoreOrDie(cmd.positional[2]);
  linking::RuleMatcherOptions options;
  options.accept_threshold = cmd.GetDouble("threshold", 0.8);
  for (const std::string& spec : cmd.GetAll("rule")) {
    std::vector<std::string> parts = Split(spec, ',');
    if (parts.size() < 2) {
      std::cerr << "bad --rule '" << spec << "'\n";
      return 2;
    }
    linking::MatchRule rule;
    rule.left_predicate = parts[0];
    rule.right_predicate = parts[1];
    if (parts.size() > 2) ParseDouble(parts[2], &rule.weight);
    if (parts.size() > 3) ParseDouble(parts[3], &rule.min_similarity);
    options.rules.push_back(std::move(rule));
  }
  std::vector<linking::Link> links =
      linking::RunRuleMatcher(left, right, options);
  Status st = WriteLinkOutputs(cmd, links);
  return st.ok() ? 0 : Fail(st);
}

core::AlexOptions AlexOptionsFrom(const CommandLine& cmd) {
  core::AlexOptions options;
  options.episode_size =
      static_cast<size_t>(cmd.GetInt("episode-size", 1000));
  options.max_episodes = static_cast<int>(cmd.GetInt("episodes", 40));
  options.num_partitions = static_cast<int>(cmd.GetInt("partitions", 8));
  options.step_size = cmd.GetDouble("step", 0.05);
  options.epsilon = cmd.GetDouble("epsilon", 0.05);
  options.seed = static_cast<uint64_t>(cmd.GetInt("seed", 42));
  return options;
}

int RunExplore(const CommandLine& cmd) {
  if (cmd.positional.size() < 3 || !cmd.Has("links") || !cmd.Has("truth")) {
    std::cerr << "usage: alex_link explore <left.nt> <right.nt> "
                 "--links in.tsv --truth truth.tsv [options]\n";
    return 2;
  }
  rdf::TripleStore left = LoadStoreOrDie(cmd.positional[1]);
  rdf::TripleStore right = LoadStoreOrDie(cmd.positional[2]);
  std::vector<linking::Link> initial = LoadLinksOrDie(cmd.GetString("links"));
  feedback::GroundTruth truth(LoadLinksOrDie(cmd.GetString("truth")));

  core::AlexEngine engine(&left, &right, AlexOptionsFrom(cmd));
  Status st = engine.Initialize(initial);
  if (!st.ok()) return Fail(st);
  if (cmd.Has("load-state")) {
    Result<core::EngineState> state =
        core::LoadEngineState(cmd.GetString("load-state"));
    if (!state.ok()) return Fail(state.status());
    st = core::ImportEngineState(state.value(), &engine);
    if (!st.ok()) return Fail(st);
    std::cout << "resumed session from " << cmd.GetString("load-state")
              << " (" << engine.CandidateCount() << " candidate links)\n";
  }
  feedback::Oracle oracle(&truth, cmd.GetDouble("error-rate", 0.0),
                          static_cast<uint64_t>(cmd.GetInt("seed", 42)));

  std::cout << "episode precision recall f-measure candidates\n";
  auto report = [&](int episode) {
    eval::Quality q = eval::Evaluate(engine.CandidateLinks(), truth);
    std::printf("%7d %9.3f %6.3f %9.3f %10zu\n", episode, q.precision,
                q.recall, q.f_measure, q.candidates);
  };
  report(0);
  core::AlexEngine::RunResult run = engine.Run(
      [&oracle](const linking::Link& link) { return oracle.Feedback(link); },
      [&report](const core::EpisodeStats& stats) { report(stats.episode); });
  std::cout << (run.converged ? "converged" : "episode cap reached")
            << " after " << run.episodes << " episodes\n";
  if (cmd.Has("report-features")) {
    std::cout << "\nlearned feature usage (greedy states, avg return):\n";
    int shown = 0;
    for (const core::AlexEngine::FeatureUsage& usage :
         engine.FeatureUsageSummary()) {
      if (++shown > 10) break;
      std::printf("  %4zu  %+6.2f  (%s , %s)\n", usage.greedy_states,
                  usage.average_return, usage.key.left_predicate.c_str(),
                  usage.key.right_predicate.c_str());
    }
  }
  if (cmd.Has("out")) {
    st = linking::SaveLinksTsv(engine.CandidateLinks(),
                               cmd.GetString("out"));
    if (!st.ok()) return Fail(st);
    std::cout << "wrote links to " << cmd.GetString("out") << "\n";
  }
  if (cmd.Has("save-state")) {
    st = core::SaveEngineState(core::ExportEngineState(engine),
                               cmd.GetString("save-state"));
    if (!st.ok()) return Fail(st);
    std::cout << "saved session state to " << cmd.GetString("save-state")
              << "\n";
  }
  return 0;
}

int RunInteractive(const CommandLine& cmd) {
  if (cmd.positional.size() < 3 || !cmd.Has("links")) {
    std::cerr << "usage: alex_link interactive <left.nt> <right.nt> "
                 "--links in.tsv [--items 10] [--out out.tsv]\n";
    return 2;
  }
  rdf::TripleStore left = LoadStoreOrDie(cmd.positional[1]);
  rdf::TripleStore right = LoadStoreOrDie(cmd.positional[2]);
  std::vector<linking::Link> initial = LoadLinksOrDie(cmd.GetString("links"));

  core::AlexOptions options = AlexOptionsFrom(cmd);
  options.episode_size = static_cast<size_t>(cmd.GetInt("items", 10));
  core::AlexEngine engine(&left, &right, options);
  Status st = engine.Initialize(initial);
  if (!st.ok()) return Fail(st);
  if (cmd.Has("load-state")) {
    Result<core::EngineState> state =
        core::LoadEngineState(cmd.GetString("load-state"));
    if (!state.ok()) return Fail(state.status());
    st = core::ImportEngineState(state.value(), &engine);
    if (!st.ok()) return Fail(st);
  }

  std::cout << "Interactive feedback session. Answer y(es) / n(o) / "
               "q(uit).\n";
  bool quit = false;
  while (!quit && engine.CandidateCount() > 0) {
    core::EpisodeStats stats =
        engine.RunEpisode([&quit](const linking::Link& link) {
          if (quit) return true;  // drain the episode without asking
          std::cout << "same entity?\n  " << link.left << "\n  "
                    << link.right << "\n[y/n/q] " << std::flush;
          std::string answer;
          if (!std::getline(std::cin, answer)) {
            quit = true;
            return true;
          }
          if (!answer.empty() && (answer[0] == 'q' || answer[0] == 'Q')) {
            quit = true;
            return true;
          }
          return !answer.empty() && (answer[0] == 'y' || answer[0] == 'Y');
        });
    std::cout << "-- episode " << stats.episode << ": "
              << engine.CandidateCount() << " candidate links ("
              << stats.links_added << " added, " << stats.links_removed
              << " removed)\n";
    if (stats.change_fraction == 0.0) break;
  }
  if (cmd.Has("out")) {
    st = linking::SaveLinksTsv(engine.CandidateLinks(),
                               cmd.GetString("out"));
    if (!st.ok()) return Fail(st);
    std::cout << "wrote links to " << cmd.GetString("out") << "\n";
  }
  return 0;
}

// `alex_link snapshot <in.nt|in.ttl> <out.snap>`: convert an RDF text file
// into a binary snapshot that loads much faster.
int RunSnapshot(const CommandLine& cmd) {
  if (cmd.positional.size() < 3) {
    std::cerr << "usage: alex_link snapshot <in.nt|in.ttl> <out.snap>\n";
    return 2;
  }
  rdf::TripleStore store = LoadStoreOrDie(cmd.positional[1]);
  Status st = rdf::SaveStoreSnapshot(store, cmd.positional[2]);
  if (!st.ok()) return Fail(st);
  std::cout << "wrote snapshot of " << store.size() << " triples to "
            << cmd.positional[2] << "\n";
  return 0;
}

int RunEval(const CommandLine& cmd) {
  if (!cmd.Has("links") || !cmd.Has("truth")) {
    std::cerr << "usage: alex_link eval --links links.tsv --truth "
                 "truth.tsv\n";
    return 2;
  }
  std::vector<linking::Link> links = LoadLinksOrDie(cmd.GetString("links"));
  feedback::GroundTruth truth(LoadLinksOrDie(cmd.GetString("truth")));
  eval::Quality q = eval::Evaluate(links, truth);
  std::printf("links:     %zu\ntruth:     %zu\ncorrect:   %zu\n", links.size(),
              truth.size(), q.correct);
  std::printf("precision: %.4f\nrecall:    %.4f\nf-measure: %.4f\n",
              q.precision, q.recall, q.f_measure);
  return 0;
}

int Main(int argc, char** argv) {
  CommandLine cmd = ParseArgs(argc, argv);
  if (cmd.positional.empty()) return Usage();
  const std::string& verb = cmd.positional[0];
  if (verb == "gen") return RunGen(cmd);
  if (verb == "paris") return RunParisCmd(cmd);
  if (verb == "rules") return RunRulesCmd(cmd);
  if (verb == "explore") return RunExplore(cmd);
  if (verb == "interactive") return RunInteractive(cmd);
  if (verb == "eval") return RunEval(cmd);
  if (verb == "snapshot") return RunSnapshot(cmd);
  if (verb == "help") {
    std::cout
        << "alex_link gen <profile> <left.nt> <right.nt> <truth.tsv>\n"
        << "alex_link paris <left.nt> <right.nt> [--threshold 0.95] "
           "[--tsv o.tsv] [--nt o.nt]\n"
        << "alex_link rules <left.nt> <right.nt> --rule L,R[,W[,M]] ...\n"
        << "alex_link explore <left.nt> <right.nt> --links l.tsv --truth "
           "t.tsv [--episodes N]\n"
        << "alex_link interactive <left.nt> <right.nt> --links l.tsv "
           "[--items 10]\n"
        << "alex_link eval --links l.tsv --truth t.tsv\n"
        << "alex_link snapshot <in.nt|in.ttl> <out.snap>\n";
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace alex::tools

int main(int argc, char** argv) { return alex::tools::Main(argc, argv); }
