// Shared helpers for the command-line tools: a tiny flag parser and
// data-loading utilities.
#ifndef ALEX_TOOLS_CLI_COMMON_H_
#define ALEX_TOOLS_CLI_COMMON_H_

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "rdf/ntriples.h"
#include "rdf/snapshot.h"
#include "rdf/turtle.h"
#include "rdf/triple_store.h"

namespace alex::tools {

// Parsed command line: positional arguments plus --key value / --key=value
// flags (repeatable flags accumulate).
struct CommandLine {
  std::vector<std::string> positional;
  std::map<std::string, std::vector<std::string>> flags;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = flags.find(key);
    if (it == flags.end() || it->second.empty()) return fallback;
    return it->second.back();
  }

  double GetDouble(const std::string& key, double fallback) const {
    double value = fallback;
    auto it = flags.find(key);
    if (it != flags.end() && !it->second.empty()) {
      ParseDouble(it->second.back(), &value);
    }
    return value;
  }

  long long GetInt(const std::string& key, long long fallback) const {
    long long value = fallback;
    auto it = flags.find(key);
    if (it != flags.end() && !it->second.empty()) {
      ParseInt64(it->second.back(), &value);
    }
    return value;
  }

  const std::vector<std::string>& GetAll(const std::string& key) const {
    static const std::vector<std::string> kEmpty;
    auto it = flags.find(key);
    return it == flags.end() ? kEmpty : it->second;
  }
};

// Parses argv. A `--flag` followed by another `--flag` or end of input is
// treated as a boolean flag with value "true".
inline CommandLine ParseArgs(int argc, char** argv) {
  CommandLine cmd;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      std::string value;
      size_t eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
      cmd.flags[key].push_back(std::move(value));
    } else {
      cmd.positional.push_back(std::move(arg));
    }
  }
  return cmd;
}

// Loads an RDF file (N-Triples, or Turtle for .ttl/.turtle) into a store
// named after the path, exiting the process with a message on failure.
inline rdf::TripleStore LoadStoreOrDie(const std::string& path) {
  if (EndsWith(path, ".snap")) {
    Result<rdf::TripleStore> store = rdf::LoadStoreSnapshot(path);
    if (!store.ok()) {
      std::cerr << "error loading " << path << ": "
                << store.status().ToString() << "\n";
      std::exit(2);
    }
    return std::move(store).value();
  }
  rdf::TripleStore store(path);
  Status st = rdf::LoadRdfFile(path, &store);
  if (!st.ok()) {
    std::cerr << "error loading " << path << ": " << st.ToString() << "\n";
    std::exit(2);
  }
  return store;
}

}  // namespace alex::tools

#endif  // ALEX_TOOLS_CLI_COMMON_H_
