// Figure 11 (Appendix D): sensitivity to the episode size (500/1000/1500).
// Expected: very similar F-measure trajectories; larger episodes take fewer
// episodes to converge because each episode carries more feedback.
#include <iostream>

#include "bench_common.h"

int main() {
  using alex::bench::Column;
  using alex::bench::Metric;

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  config.alex.max_episodes = 30;
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);

  const size_t kSizes[] = {500, 1000, 1500};
  std::vector<alex::eval::ExperimentResult> results;
  for (size_t size : kSizes) {
    config.alex.episode_size = size;
    alex::Result<alex::eval::ExperimentResult> result =
        alex::eval::RunExperimentOnWorld(config, world, initial);
    ALEX_CHECK(result.ok()) << result.status().ToString();
    results.push_back(std::move(result).value());
  }

  alex::bench::PrintComparison(
      "Figure 11: F-measure by episode size", "f-measure",
      {"size 500", "size 1000", "size 1500"},
      {Column(results[0], Metric::kFMeasure),
       Column(results[1], Metric::kFMeasure),
       Column(results[2], Metric::kFMeasure)});
  std::cout << "\nEpisodes to convergence:\n";
  for (size_t i = 0; i < results.size(); ++i) {
    std::cout << "  episode size " << kSizes[i] << ": " << results[i].episodes
              << (results[i].converged ? " (converged)" : " (cap reached)")
              << ", relaxed at "
              << (results[i].relaxed_episode >= 0
                      ? std::to_string(results[i].relaxed_episode)
                      : std::string("never"))
              << "\n";
  }
  return 0;
}
