// Figure 7: effect of the rollback optimization (§6.3) on DBpedia -
// NYTimes.
//  (a) overall quality WITHOUT rollback: after the first episode precision
//      collapses and barely recovers even at the episode cap;
//  (b) a partition that recovers from wrong decisions;
//  (c) a partition that does not recover within the cap.
// Per-partition quality is measured against the ground truth restricted to
// the partition's left entities.
#include <iomanip>
#include <iostream>
#include <unordered_set>

#include "bench_common.h"
#include "core/alex_engine.h"
#include "feedback/oracle.h"

namespace {

using alex::core::AlexEngine;
using alex::core::PartitionAlex;
using alex::linking::Link;

struct PartitionQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
};

PartitionQuality EvaluatePartition(const PartitionAlex& partition,
                                   const alex::feedback::GroundTruth& truth) {
  PartitionQuality q;
  size_t correct = 0;
  size_t truth_in_partition = 0;
  std::unordered_set<std::string> lefts;
  for (const alex::core::PreparedEntity& e :
       partition.space().left_entities()) {
    lefts.insert(e.iri);
  }
  for (const Link& link : truth.links()) {
    if (lefts.count(link.left) > 0) ++truth_in_partition;
  }
  for (alex::core::PairId pair : partition.candidates().items()) {
    Link link{partition.space().LeftIri(pair),
              partition.space().RightIri(pair), 1.0};
    if (truth.Contains(link)) ++correct;
  }
  size_t candidates = partition.candidates().size();
  if (candidates > 0) {
    q.precision = static_cast<double>(correct) / candidates;
  }
  if (truth_in_partition > 0) {
    q.recall = static_cast<double>(correct) / truth_in_partition;
  }
  if (q.precision + q.recall > 0) {
    q.f_measure = 2 * q.precision * q.recall / (q.precision + q.recall);
  }
  return q;
}

}  // namespace

int main() {
  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  config.alex.use_rollback = false;  // the whole point of this figure
  config.alex.max_episodes = 100;    // the paper's cap
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  std::vector<Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);
  alex::feedback::GroundTruth truth(world.ground_truth);

  AlexEngine engine(&world.left, &world.right, config.alex);
  alex::Status st = engine.Initialize(initial);
  ALEX_CHECK(st.ok()) << st.ToString();
  alex::feedback::Oracle oracle(&truth, 0.0, config.oracle_seed);

  std::cout << "== Figure 7(a): overall quality WITHOUT rollback ==\n"
            << std::setw(8) << "episode" << std::setw(11) << "precision"
            << std::setw(9) << "recall" << std::setw(11) << "f-measure"
            << "\n"
            << std::fixed;
  // Track per-partition F-measure series to find recovering and
  // non-recovering partitions (Figures 7b, 7c).
  std::vector<std::vector<double>> partition_f(engine.partitions().size());
  for (int episode = 0; episode < config.alex.max_episodes; ++episode) {
    alex::core::EpisodeStats stats = engine.RunEpisode(
        [&oracle](const Link& link) { return oracle.Feedback(link); });
    alex::eval::Quality q =
        alex::eval::Evaluate(engine.CandidateLinks(), truth);
    std::cout << std::setw(8) << stats.episode << std::setprecision(3)
              << std::setw(11) << q.precision << std::setw(9) << q.recall
              << std::setw(11) << q.f_measure << "\n";
    for (size_t p = 0; p < engine.partitions().size(); ++p) {
      partition_f[p].push_back(
          EvaluatePartition(engine.partitions()[p], truth).f_measure);
    }
    if (stats.change_fraction == 0.0) break;
  }

  // Pick the best- and worst-ending partitions.
  size_t best = 0, worst = 0;
  for (size_t p = 1; p < partition_f.size(); ++p) {
    if (partition_f[p].back() > partition_f[best].back()) best = p;
    if (partition_f[p].back() < partition_f[worst].back()) worst = p;
  }
  auto print_partition = [&](const char* title, size_t p) {
    std::cout << "\n== " << title << " (partition " << p << ") ==\n"
              << std::setw(8) << "episode" << std::setw(11) << "f-measure"
              << "\n";
    for (size_t e = 0; e < partition_f[p].size(); ++e) {
      std::cout << std::setw(8) << e + 1 << std::setprecision(3)
                << std::setw(11) << partition_f[p][e] << "\n";
    }
  };
  print_partition("Figure 7(b): a partition that recovers", best);
  print_partition("Figure 7(c): a partition that does not recover", worst);
  std::cout.unsetf(std::ios::fixed);

  // Contrast: the same configuration WITH rollback converges quickly.
  config.alex.use_rollback = true;
  alex::Result<alex::eval::ExperimentResult> with_rb =
      alex::eval::RunExperimentOnWorld(config, world, initial);
  ALEX_CHECK(with_rb.ok());
  std::cout << "\nWith rollback (same data): converged after "
            << with_rb->episodes << " episodes at F = " << std::setprecision(3)
            << with_rb->final_quality().f_measure << "\n";
  return 0;
}
