// Figure 8 (Appendix B): stress test — linking the two multi-domain data
// sets (DBpedia and OpenCyc). Largest pair, most heterogeneous vocabulary,
// largest ground truth. Expected: converges with F-measure > 0.9 and a
// large number of newly discovered links.
#include "bench_common.h"

int main(int argc, char** argv) {
  alex::bench::SetCsvDirFromArgs(argc, argv);
  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_opencyc");
  config.alex.max_episodes = 30;
  alex::bench::RunAndPrint(
      "Figure 8: DBpedia - OpenCyc (multi-domain stress test)", config);
  return 0;
}
