// Robustness across random seeds (not in the paper, but essential for
// trusting the other benches): reruns the OpenCyc-NYTimes batch experiment
// with different data / engine / oracle seeds and reports the spread of
// final quality and convergence.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main() {
  alex::eval::ExperimentConfig base =
      alex::bench::MakeConfig("opencyc_nytimes");
  base.alex.max_episodes = 30;

  std::cout << "== Seed variance (OpenCyc - NYTimes, 6 seeds) ==\n"
            << std::left << std::setw(8) << "seed" << std::right
            << std::setw(8) << "F0" << std::setw(8) << "F" << std::setw(10)
            << "episodes" << std::setw(10) << "relaxed" << std::setw(11)
            << "converged" << "\n"
            << std::fixed;

  std::vector<double> finals;
  std::vector<double> episodes;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    alex::eval::ExperimentConfig config = base;
    config.profile.seed = 1000 + seed;
    config.alex.seed = 2000 + seed;
    config.oracle_seed = 3000 + seed;
    alex::Result<alex::eval::ExperimentResult> result =
        alex::eval::RunExperiment(config);
    ALEX_CHECK(result.ok()) << result.status().ToString();
    const alex::eval::ExperimentResult& r = result.value();
    std::cout << std::left << std::setw(8) << seed << std::right
              << std::setprecision(3) << std::setw(8)
              << r.series[0].quality.f_measure << std::setw(8)
              << r.final_quality().f_measure << std::setw(10) << r.episodes
              << std::setw(10)
              << (r.relaxed_episode >= 0 ? std::to_string(r.relaxed_episode)
                                         : std::string("-"))
              << std::setw(11) << (r.converged ? "yes" : "no") << "\n";
    finals.push_back(r.final_quality().f_measure);
    episodes.push_back(static_cast<double>(r.episodes));
  }

  auto mean_std = [](const std::vector<double>& xs) {
    double mean = 0.0;
    for (double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    double var = 0.0;
    for (double x : xs) var += (x - mean) * (x - mean);
    var /= static_cast<double>(xs.size());
    return std::pair<double, double>(mean, std::sqrt(var));
  };
  auto [f_mean, f_std] = mean_std(finals);
  auto [e_mean, e_std] = mean_std(episodes);
  std::cout << "\nfinal F:   mean " << std::setprecision(3) << f_mean
            << "  stddev " << f_std << "\n"
            << "episodes:  mean " << std::setprecision(1) << e_mean
            << "  stddev " << e_std << "\n";
  return 0;
}
