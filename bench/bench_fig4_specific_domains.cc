// Figure 4: ALEX for specific domains with a small episode size of 10
// feedback items (§7.2.2): Semantic Web Dogfood against DBpedia (a) and
// OpenCyc (b), and the NBA basketball player subsets against NYTimes
// (c, d). Users in this single-user setting expect quick improvement, so
// quality should climb within a couple of tiny episodes.
#include "bench_common.h"

namespace {

alex::eval::ExperimentConfig SpecificDomain(const std::string& profile) {
  alex::eval::ExperimentConfig config = alex::bench::MakeConfig(profile);
  config.alex.episode_size = 10;  // §7.2.2
  config.alex.num_partitions = 2;
  config.alex.max_episodes = 60;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  alex::bench::SetCsvDirFromArgs(argc, argv);
  using alex::bench::RunAndPrint;
  RunAndPrint("Figure 4(a): DBpedia - Semantic Web Dogfood (episodes of 10)",
              SpecificDomain("dbpedia_swdf"));
  RunAndPrint("Figure 4(b): OpenCyc - Semantic Web Dogfood (episodes of 10)",
              SpecificDomain("opencyc_swdf"));
  RunAndPrint("Figure 4(c): DBpedia (NBA) - NYTimes (episodes of 10)",
              SpecificDomain("dbpedia_nba_nytimes"));
  RunAndPrint("Figure 4(d): OpenCyc (NBA) - NYTimes (episodes of 10)",
              SpecificDomain("opencyc_nba_nytimes"));
  return 0;
}
