// Figure 6: effect of the blacklist (§6.3) on DBpedia - NYTimes.
//  (a) F-measure with vs. without the blacklist (similar curves);
//  (b) percentage of negative feedback per episode (clearly lower with the
//      blacklist: the user never has to reject the same link twice).
#include "bench_common.h"

int main() {
  using alex::bench::Column;
  using alex::bench::Metric;

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  config.alex.max_episodes = 16;
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);

  config.alex.use_blacklist = true;
  alex::Result<alex::eval::ExperimentResult> with_bl =
      alex::eval::RunExperimentOnWorld(config, world, initial);
  ALEX_CHECK(with_bl.ok()) << with_bl.status().ToString();

  config.alex.use_blacklist = false;
  alex::Result<alex::eval::ExperimentResult> without_bl =
      alex::eval::RunExperimentOnWorld(config, world, initial);
  ALEX_CHECK(without_bl.ok()) << without_bl.status().ToString();

  alex::bench::PrintComparison(
      "Figure 6(a): F-measure with/without blacklist", "f-measure",
      {"with", "without"},
      {Column(with_bl.value(), Metric::kFMeasure),
       Column(without_bl.value(), Metric::kFMeasure)});
  alex::bench::PrintComparison(
      "Figure 6(b): negative feedback share with/without blacklist",
      "% negative feedback", {"with", "without"},
      {Column(with_bl.value(), Metric::kNegativePercent),
       Column(without_bl.value(), Metric::kNegativePercent)});
  return 0;
}
