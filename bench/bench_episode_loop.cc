// Episode hot-loop benchmark (ISSUE 3 perf trajectory): feedback episodes
// per second at 1/2/4/8 worker threads on the dbpedia_nytimes profile, with
// the right context prepared once and shared across every configuration.
//
// Correctness gates (the bench exits nonzero if either fails):
//   * the full per-episode series — integer stats, candidate counts,
//     change fractions (bit pattern), quality points, converged flag — is
//     byte-identical across every thread count and repeat;
//   * the incremental QualityTracker matches a full Evaluate rescan bitwise
//     at every episode (checked during the 1-thread run, where the rescan
//     vs. incremental evaluation times are also compared).
//
// Writes BENCH_episode_loop.json (path via --out).
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/latency_histogram.h"
#include "core/alex_engine.h"
#include "core/feature_space.h"
#include "eval/metrics.h"
#include "feedback/oracle.h"

namespace {

using alex::core::AlexEngine;
using alex::core::EpisodeStats;
using alex::core::RightContext;
using alex::eval::Quality;
using alex::eval::QualityTracker;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void AppendBits(std::ostringstream* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  *out << bits << ' ';
}

// Canonical text form of one episode's observable result. Wall-clock fields
// are excluded; everything else must match bit for bit.
void AppendEpisode(std::ostringstream* out, const EpisodeStats& stats,
                   const Quality& quality) {
  *out << stats.episode << ' ' << stats.feedback_items << ' '
       << stats.positive_feedback << ' ' << stats.negative_feedback << ' '
       << stats.links_added << ' ' << stats.links_removed << ' '
       << stats.rollbacks << ' ' << stats.rolled_back_links << ' '
       << stats.candidate_count << ' ';
  AppendBits(out, stats.change_fraction);
  *out << quality.candidates << ' ' << quality.correct << ' ';
  AppendBits(out, quality.precision);
  AppendBits(out, quality.recall);
  AppendBits(out, quality.f_measure);
  *out << '\n';
}

struct RunOutcome {
  double episode_ms = 0.0;  // engine.Run wall time
  int episodes = 0;
  std::string series;
  bool tracker_matches_rescan = true;
  double incremental_eval_ms = 0.0;
  double rescan_eval_ms = 0.0;
};

// One full run: fresh engine (Initialize is NOT timed; the shared right
// context is reused), fresh oracle, episodes driven to convergence or
// max_episodes. `check_rescan` additionally verifies the tracker against
// Evaluate at every episode.
RunOutcome RunOnce(const alex::datagen::GeneratedWorld& world,
                   const std::vector<alex::linking::Link>& initial,
                   const alex::feedback::GroundTruth& truth,
                   alex::core::AlexOptions options, int threads,
                   std::shared_ptr<const RightContext> right,
                   bool check_rescan,
                   alex::LatencyHistogram* episode_latency) {
  options.num_threads = threads;
  AlexEngine engine(&world.left, &world.right, options);
  alex::Status status = engine.Initialize(initial, right);
  ALEX_CHECK(status.ok()) << status.ToString();

  QualityTracker tracker(&truth);
  tracker.Reset(engine.CandidateLinks());
  engine.SetLinkChangeObserver(
      [&tracker](const alex::linking::Link& link, bool added) {
        tracker.OnLinkChange(link, added);
      });

  alex::feedback::Oracle oracle(&truth, 0.0, options.seed + 1);
  auto feedback = [&oracle](const alex::linking::Link& link) {
    return oracle.Feedback(link);
  };

  RunOutcome outcome;
  std::ostringstream series;
  auto run_start = std::chrono::steady_clock::now();
  auto episode_start = run_start;
  AlexEngine::RunResult run =
      engine.Run(feedback, [&](const EpisodeStats& stats) {
        // Per-episode wall time feeds the percentile histogram; tail
        // episodes (rollback storms, big deltas) are what a mean hides.
        auto eval_start = std::chrono::steady_clock::now();
        if (episode_latency != nullptr) {
          episode_latency->Record(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  eval_start - episode_start)
                  .count());
        }
        episode_start = eval_start;
        Quality quality = tracker.Snapshot();
        outcome.incremental_eval_ms += MsSince(eval_start);
        if (check_rescan) {
          auto rescan_start = std::chrono::steady_clock::now();
          Quality rescan =
              alex::eval::Evaluate(engine.CandidateLinks(), truth);
          outcome.rescan_eval_ms += MsSince(rescan_start);
          outcome.tracker_matches_rescan =
              outcome.tracker_matches_rescan &&
              rescan.candidates == quality.candidates &&
              rescan.correct == quality.correct &&
              rescan.precision == quality.precision &&
              rescan.recall == quality.recall &&
              rescan.f_measure == quality.f_measure;
        }
        AppendEpisode(&series, stats, quality);
        // The evaluation work above belongs to the harness, not the
        // episode: the next episode's clock starts after it.
        episode_start = std::chrono::steady_clock::now();
      });
  outcome.episode_ms = MsSince(run_start);
  if (check_rescan) {
    // The rescan above is part of the convergence check, not the loop being
    // timed; subtract it so the 1-thread baseline is not penalized.
    outcome.episode_ms -= outcome.rescan_eval_ms;
  }
  series << "converged " << run.converged << " episodes " << run.episodes
         << '\n';
  outcome.episodes = run.episodes;
  outcome.series = series.str();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_episode_loop.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  config.alex.max_episodes = 12;
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);
  alex::feedback::GroundTruth truth(world.ground_truth);

  std::cout << "== Episode loop: episodes/sec vs. worker threads ==\n"
            << "world dbpedia_nytimes: " << initial.size()
            << " initial links, " << config.alex.num_partitions
            << " partitions, episodes of " << config.alex.episode_size
            << ", max " << config.alex.max_episodes << "\n";

  auto prepare_start = std::chrono::steady_clock::now();
  std::shared_ptr<const RightContext> right = RightContext::Prepare(
      world.right, world.right.Subjects(), config.alex.space);
  double right_prepare_ms = MsSince(prepare_start);
  std::cout << "  right context prepared once in " << std::fixed
            << std::setprecision(1) << right_prepare_ms
            << " ms (shared by all configs)\n";

  const std::vector<int> kThreads = {1, 2, 4, 8};
  const int kRepeats = 3;
  struct Row {
    int threads = 0;
    double best_ms = 0.0;
    int episodes = 0;
    double eps_per_sec = 0.0;
    double episode_p50_ms = 0.0;
    double episode_p99_ms = 0.0;
  };
  std::vector<Row> rows;
  std::string reference_series;
  bool identical = true;
  bool tracker_ok = true;
  double incremental_eval_ms = 0.0;
  double rescan_eval_ms = 0.0;

  for (int threads : kThreads) {
    Row row;
    row.threads = threads;
    row.best_ms = -1.0;
    // Episode wall times pooled across this thread count's repeats (the
    // rescan-checking run is excluded: its episodes carry harness work).
    alex::LatencyHistogram episode_latency;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const bool check_rescan = threads == 1 && rep == 0;
      RunOutcome outcome =
          RunOnce(world, initial, truth, config.alex, threads, right,
                  check_rescan, check_rescan ? nullptr : &episode_latency);
      if (check_rescan) {
        tracker_ok = outcome.tracker_matches_rescan;
        incremental_eval_ms = outcome.incremental_eval_ms;
        rescan_eval_ms = outcome.rescan_eval_ms;
      }
      if (reference_series.empty()) {
        reference_series = outcome.series;
      } else if (outcome.series != reference_series) {
        identical = false;
      }
      if (row.best_ms < 0.0 || outcome.episode_ms < row.best_ms) {
        row.best_ms = outcome.episode_ms;
        row.episodes = outcome.episodes;
      }
    }
    row.eps_per_sec =
        row.best_ms > 0.0 ? 1000.0 * row.episodes / row.best_ms : 0.0;
    row.episode_p50_ms = episode_latency.PercentileMicros(0.50) / 1000.0;
    row.episode_p99_ms = episode_latency.PercentileMicros(0.99) / 1000.0;
    std::cout << "  " << std::left << std::setw(12)
              << (std::to_string(threads) + " thread(s)") << std::right
              << std::fixed << std::setprecision(1) << std::setw(9)
              << row.best_ms << " ms  " << std::setw(6) << row.episodes
              << " episodes  " << std::setprecision(2) << std::setw(8)
              << row.eps_per_sec << " eps/sec  p50 " << row.episode_p50_ms
              << " / p99 " << row.episode_p99_ms << " ms\n";
    rows.push_back(row);
  }

  std::cout << (identical
                    ? "all thread counts produced identical episode series\n"
                    : "SERIES MISMATCH across thread counts!\n")
            << (tracker_ok
                    ? "incremental quality == full rescan at every episode"
                    : "TRACKER MISMATCH vs. full rescan!")
            << std::fixed << std::setprecision(2) << " (incremental "
            << incremental_eval_ms << " ms vs rescan " << rescan_eval_ms
            << " ms per run)\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  const double base_ms = rows.front().best_ms;
  out << std::fixed << std::setprecision(3);
  out << "{\n"
      << "  \"bench\": \"episode_loop\",\n"
      << "  \"world\": \"dbpedia_nytimes\",\n"
      << "  \"num_partitions\": " << config.alex.num_partitions << ",\n"
      << "  \"episode_size\": " << config.alex.episode_size << ",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"identical_series\": " << (identical ? "true" : "false")
      << ",\n"
      << "  \"tracker_matches_rescan\": " << (tracker_ok ? "true" : "false")
      << ",\n"
      << "  \"right_prepare_ms\": " << right_prepare_ms << ",\n"
      << "  \"incremental_eval_ms\": " << incremental_eval_ms << ",\n"
      << "  \"rescan_eval_ms\": " << rescan_eval_ms << ",\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"threads\": " << row.threads << ", \"episodes\": "
        << row.episodes << ", \"ms\": " << row.best_ms
        << ", \"ms_per_episode\": "
        << (row.episodes > 0 ? row.best_ms / row.episodes : 0.0)
        << ", \"episodes_per_sec\": " << row.eps_per_sec
        << ", \"episode_p50_ms\": " << row.episode_p50_ms
        << ", \"episode_p99_ms\": " << row.episode_p99_ms
        << ", \"speedup_vs_1thread\": "
        << (row.best_ms > 0.0 ? base_ms / row.best_ms : 0.0) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << out_path << ")\n";
  return identical && tracker_ok ? 0 : 1;
}
