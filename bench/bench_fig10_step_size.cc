// Figure 10 (Appendix D): sensitivity to the step size (0.01 / 0.05 / 0.1).
// Expected: F-measure similar, slightly better with larger steps; recall
// clearly ordered by step size; larger steps draw more negative feedback
// and cost more execution time.
#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main() {
  using alex::bench::Column;
  using alex::bench::Metric;

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  config.alex.max_episodes = 25;
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);

  const double kSteps[] = {0.01, 0.05, 0.1};
  std::vector<alex::eval::ExperimentResult> results;
  for (double step : kSteps) {
    config.alex.step_size = step;
    alex::Result<alex::eval::ExperimentResult> result =
        alex::eval::RunExperimentOnWorld(config, world, initial);
    ALEX_CHECK(result.ok()) << result.status().ToString();
    results.push_back(std::move(result).value());
  }

  alex::bench::PrintComparison(
      "Figure 10(a): F-measure by step size", "f-measure",
      {"step 0.01", "step 0.05", "step 0.1"},
      {Column(results[0], Metric::kFMeasure),
       Column(results[1], Metric::kFMeasure),
       Column(results[2], Metric::kFMeasure)});
  alex::bench::PrintComparison(
      "Figure 10(b): recall by step size", "recall",
      {"step 0.01", "step 0.05", "step 0.1"},
      {Column(results[0], Metric::kRecall),
       Column(results[1], Metric::kRecall),
       Column(results[2], Metric::kRecall)});
  alex::bench::PrintComparison(
      "Figure 10(c): negative feedback by step size", "% negative feedback",
      {"step 0.01", "step 0.05", "step 0.1"},
      {Column(results[0], Metric::kNegativePercent),
       Column(results[1], Metric::kNegativePercent),
       Column(results[2], Metric::kNegativePercent)});

  std::cout << "\nExecution time (episode loop):\n" << std::fixed
            << std::setprecision(2);
  for (size_t i = 0; i < results.size(); ++i) {
    std::cout << "  step " << kSteps[i] << ": " << results[i].total_seconds
              << " s over " << results[i].episodes << " episodes\n";
  }
  return 0;
}
