// Feature-space construction benchmark: seed-style exhaustive build vs. the
// blocked build at 1/2/4/8 threads (ISSUE 2 perf trajectory). All
// configurations must produce bit-identical spaces; the fingerprint check
// enforces it. Writes BENCH_space_build.json (path via --out).
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "core/feature_space.h"
#include "core/partitioner.h"

namespace {

using alex::core::FeatureCatalog;
using alex::core::FeatureSpace;
using alex::core::FeatureSpaceOptions;
using alex::core::PairId;
using alex::core::RightContext;

struct RunStats {
  double ms = 0.0;                 // best-of-repeats wall time
  uint64_t total_pairs = 0;        // raw cross product
  uint64_t scored_pairs = 0;       // pairs sent to BuildFeatureSet
  uint64_t surviving_pairs = 0;    // pairs kept after theta-filtering
  uint64_t fingerprint = 0;        // order-sensitive content hash
};

void HashCombine(uint64_t* seed, uint64_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ull + (*seed << 6) + (*seed >> 2);
}

// Order-sensitive hash over (left IRI, right IRI, feature key, score) of
// every pair, in PairId order. FeatureIds differ between runs (each run has
// its own catalog), so features are folded in by their string keys.
uint64_t Fingerprint(const std::vector<FeatureSpace>& spaces) {
  std::hash<std::string> hash_str;
  uint64_t fp = 0;
  for (const FeatureSpace& space : spaces) {
    for (PairId id = 0; id < space.pairs().size(); ++id) {
      HashCombine(&fp, hash_str(space.LeftIri(id)));
      HashCombine(&fp, hash_str(space.RightIri(id)));
      std::vector<std::tuple<std::string, std::string, double>> entries;
      for (const auto& [feature, score] : space.pair(id).features.features) {
        alex::core::FeatureKey key = space.catalog()->Key(feature);
        entries.emplace_back(key.left_predicate, key.right_predicate, score);
      }
      // FeatureIds are assigned in interning order, which differs between
      // runs; sort by key so the hash only reflects content.
      std::sort(entries.begin(), entries.end());
      for (const auto& [lp, rp, score] : entries) {
        HashCombine(&fp, hash_str(lp));
        HashCombine(&fp, hash_str(rp));
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(score));
        std::memcpy(&bits, &score, sizeof(bits));
        HashCombine(&fp, bits);
      }
    }
  }
  return fp;
}

// One full Initialize-style build: every partition of the left store against
// the whole right store. `threads == 0` reproduces the seed's exhaustive
// path (blocking off, no pool, right store re-prepared per partition);
// otherwise blocking is on, the shared pre-prepared `shared_right` is used
// (prepared ONCE outside the timed region — the ROADMAP right-context-reuse
// item), and the left-entity loop is sharded across a pool of `threads`
// workers.
RunStats RunBuild(const alex::datagen::GeneratedWorld& world,
                  const std::vector<std::vector<alex::rdf::TermId>>& partitions,
                  const FeatureSpaceOptions& base_options, int threads,
                  int repeats,
                  std::shared_ptr<const RightContext> shared_right) {
  FeatureSpaceOptions options = base_options;
  options.blocking.enabled = threads > 0;
  RunStats stats;
  stats.ms = -1.0;
  for (int rep = 0; rep < repeats; ++rep) {
    FeatureCatalog catalog;
    std::vector<FeatureSpace> spaces;
    auto start = std::chrono::steady_clock::now();
    if (threads > 0) {
      alex::ThreadPool pool(threads);
      alex::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
      for (const auto& partition : partitions) {
        spaces.push_back(FeatureSpace::Build(world.left, partition,
                                             shared_right, &catalog, options,
                                             pool_ptr));
      }
    } else {
      for (const auto& partition : partitions) {
        spaces.push_back(FeatureSpace::Build(world.left, partition,
                                             world.right,
                                             world.right.Subjects(), &catalog,
                                             options));
      }
    }
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            end - start)
            .count();
    if (stats.ms < 0.0 || ms < stats.ms) stats.ms = ms;
    if (rep == 0) {
      for (const FeatureSpace& space : spaces) {
        stats.total_pairs += space.total_pair_count();
        stats.scored_pairs += space.scored_pair_count();
        stats.surviving_pairs += space.pairs().size();
      }
      stats.fingerprint = Fingerprint(spaces);
    }
  }
  return stats;
}

void PrintRow(const std::string& label, const RunStats& s, double base_ms) {
  std::cout << "  " << std::left << std::setw(22) << label << std::right
            << std::fixed << std::setprecision(1) << std::setw(9) << s.ms
            << " ms   scored " << std::setw(9) << s.scored_pairs
            << " / " << s.total_pairs << "   kept " << s.surviving_pairs
            << "   speedup " << std::setprecision(2) << base_ms / s.ms
            << "x\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_space_build.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  auto partitions = alex::core::EqualSizePartition(
      world.left.Subjects(), config.alex.num_partitions);

  std::cout << "== Feature-space construction: exhaustive vs. blocked ==\n"
            << "world dbpedia_nytimes: " << world.left.Subjects().size()
            << " left x " << world.right.Subjects().size() << " right, "
            << partitions.size() << " partitions\n";

  const int kRepeats = 5;
  RunStats exhaustive = RunBuild(world, partitions, config.alex.space,
                                 /*threads=*/0, kRepeats, nullptr);
  PrintRow("exhaustive (seed)", exhaustive, exhaustive.ms);

  // Prepare the right side ONCE and share the context across every blocked
  // configuration (this is what AlexEngine::Initialize's prepared_right
  // parameter enables for multi-config callers).
  alex::core::FeatureSpaceOptions blocked_options = config.alex.space;
  blocked_options.blocking.enabled = true;
  auto prepare_start = std::chrono::steady_clock::now();
  std::shared_ptr<const RightContext> shared_right = RightContext::Prepare(
      world.right, world.right.Subjects(), blocked_options);
  double right_prepare_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - prepare_start)
          .count();
  std::cout << "  right context prepared once in " << std::fixed
            << std::setprecision(1) << right_prepare_ms
            << " ms (shared by all blocked configs)\n";

  const std::vector<int> kThreads = {1, 2, 4, 8};
  std::vector<RunStats> blocked;
  bool all_equal = true;
  for (int threads : kThreads) {
    RunStats s = RunBuild(world, partitions, config.alex.space, threads,
                          kRepeats, shared_right);
    PrintRow("blocked, " + std::to_string(threads) + " thread(s)", s,
             exhaustive.ms);
    all_equal = all_equal && s.fingerprint == exhaustive.fingerprint &&
                s.surviving_pairs == exhaustive.surviving_pairs;
    blocked.push_back(s);
  }
  std::cout << (all_equal
                    ? "all configurations produced identical spaces\n"
                    : "FINGERPRINT MISMATCH: blocked space differs!\n");

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << std::fixed << std::setprecision(3);
  out << "{\n"
      << "  \"bench\": \"space_build\",\n"
      << "  \"world\": \"dbpedia_nytimes\",\n"
      << "  \"num_partitions\": " << partitions.size() << ",\n"
      << "  \"left_entities\": " << world.left.Subjects().size() << ",\n"
      << "  \"right_entities\": " << world.right.Subjects().size() << ",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"identical_spaces\": " << (all_equal ? "true" : "false") << ",\n"
      << "  \"right_prepare_ms\": " << right_prepare_ms << ",\n"
      << "  \"exhaustive\": {\"threads\": 1, \"ms\": " << exhaustive.ms
      << ", \"scored_pairs\": " << exhaustive.scored_pairs
      << ", \"surviving_pairs\": " << exhaustive.surviving_pairs << "},\n"
      << "  \"blocked\": [\n";
  for (size_t i = 0; i < blocked.size(); ++i) {
    const RunStats& s = blocked[i];
    out << "    {\"threads\": " << kThreads[i] << ", \"ms\": " << s.ms
        << ", \"scored_pairs\": " << s.scored_pairs
        << ", \"pruned_pairs\": " << s.total_pairs - s.scored_pairs
        << ", \"surviving_pairs\": " << s.surviving_pairs
        << ", \"speedup_vs_exhaustive\": " << exhaustive.ms / s.ms << "}"
        << (i + 1 < blocked.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << out_path << ")\n";
  return all_equal ? 0 : 1;
}
