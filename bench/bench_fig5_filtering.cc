// Figure 5: filtering to reduce the search space (§6.1, §7.3).
//  (a) total possible links between the first partition of the left data
//      set and the whole right data set vs. the θ-filtered space;
//  (b) the filtered space vs. the ground truth links of that partition.
// Paper: filtering removes ~95% of the pairs; ground truth is ~0.2% of the
// filtered space.
#include <iomanip>
#include <iostream>
#include <unordered_set>

#include "bench_common.h"
#include "core/feature_space.h"
#include "core/partitioner.h"
#include "linking/link.h"

int main() {
  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);

  // First of the 8 partitions against the whole right data set (§7.3).
  auto partitions = alex::core::EqualSizePartition(world.left.Subjects(),
                                                   config.alex.num_partitions);
  alex::core::FeatureCatalog catalog;
  alex::core::FeatureSpace space = alex::core::FeatureSpace::Build(
      world.left, partitions[0], world.right, world.right.Subjects(),
      &catalog, config.alex.space);

  // Ground truth links whose left entity is in this partition.
  std::unordered_set<std::string> partition_lefts;
  for (const alex::core::PreparedEntity& e : space.left_entities()) {
    partition_lefts.insert(e.iri);
  }
  size_t truth_in_partition = 0;
  for (const alex::linking::Link& link : world.ground_truth) {
    if (partition_lefts.count(link.left) > 0) ++truth_in_partition;
  }

  uint64_t total = space.total_pair_count();
  uint64_t scored = space.scored_pair_count();
  uint64_t filtered = space.pairs().size();
  std::cout << "== Figure 5: search-space filtering (DBpedia - NYTimes, "
               "partition 1 of "
            << config.alex.num_partitions << ") ==\n"
            << std::fixed << std::setprecision(1);
  std::cout << "(a) total possible links:   " << total << "\n"
            << "    blocked (scored) pairs: " << scored << "  ("
            << 100.0 * (1.0 - static_cast<double>(scored) / total)
            << "% pruned unscored)\n"
            << "    filtered space (theta=" << config.alex.space.theta
            << "): " << filtered << "  ("
            << 100.0 * (1.0 - static_cast<double>(filtered) / total)
            << "% removed)\n";
  std::cout << std::setprecision(2)
            << "(b) filtered space:         " << filtered << "\n"
            << "    ground truth links:     " << truth_in_partition << "  ("
            << 100.0 * static_cast<double>(truth_in_partition) / filtered
            << "% of the filtered space)\n";
  return 0;
}
