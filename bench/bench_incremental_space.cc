// Incremental frontier-maintenance benchmark (ISSUE 5 tentpole): per-episode
// link churn applied to the feature-space score indexes with ApplyDelta
// (tombstones + pending buffers + threshold compaction) vs. the baseline
// that sets liveness flags and rebuilds the indexes from scratch every
// episode.
//
// Correctness gate (the bench exits nonzero if it fails): after EVERY
// episode the two spaces must have identical logical fingerprints — the
// incremental index is bit-for-bit the same frontier as a fresh rebuild.
// Perf gate: the incremental path must be at least 10x faster than the
// rebuild path at 1% churn per episode.
//
// Writes BENCH_incremental_space.json (path via --out).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/feature_space.h"

namespace {

using alex::Rng;
using alex::core::FeatureCatalog;
using alex::core::FeatureSpace;
using alex::core::FeatureSpaceOptions;
using alex::core::PairId;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_incremental_space.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);

  FeatureSpaceOptions options = config.alex.space;
  FeatureCatalog catalog;
  auto build_start = std::chrono::steady_clock::now();
  FeatureSpace incremental =
      FeatureSpace::Build(world.left, world.left.Subjects(), world.right,
                          world.right.Subjects(), &catalog, options);
  double build_ms = MsSince(build_start);
  FeatureSpace rebuilt =
      FeatureSpace::Build(world.left, world.left.Subjects(), world.right,
                          world.right.Subjects(), &catalog, options);
  ALEX_CHECK(incremental.Fingerprint() == rebuilt.Fingerprint());

  const size_t num_pairs = incremental.pairs().size();
  const size_t churn = std::max<size_t>(1, num_pairs / 100);  // 1%/episode
  const int kEpisodes = 60;
  std::cout << "== Incremental frontier maintenance vs. rebuild-every-epoch "
            << "==\n"
            << "world dbpedia_nytimes: " << num_pairs
            << " feature-space pairs, " << churn << " links churned per "
            << "episode (1%), " << kEpisodes << " episodes\n"
            << "  (full build once: " << std::fixed << std::setprecision(1)
            << build_ms << " ms)\n";

  // Both spaces see the identical delta sequence in lockstep so the
  // per-episode fingerprint gate compares the same logical frontier.
  Rng rng(0x5eed);
  std::vector<uint8_t> live(num_pairs, 1);
  std::vector<PairId> added;
  std::vector<PairId> removed;
  double incremental_ms = 0.0;
  double rebuild_ms = 0.0;
  bool identical = true;
  for (int episode = 0; episode < kEpisodes; ++episode) {
    added.clear();
    removed.clear();
    std::vector<PairId> touched;
    while (touched.size() < churn) {
      PairId id = static_cast<PairId>(rng.NextBounded(num_pairs));
      if (std::find(touched.begin(), touched.end(), id) == touched.end()) {
        touched.push_back(id);
      }
    }
    for (PairId id : touched) {
      (live[id] ? removed : added).push_back(id);
      live[id] ^= 1;
    }
    std::sort(added.begin(), added.end());
    std::sort(removed.begin(), removed.end());

    auto inc_start = std::chrono::steady_clock::now();
    incremental.ApplyDelta(added, removed);
    incremental_ms += MsSince(inc_start);

    auto reb_start = std::chrono::steady_clock::now();
    rebuilt.SetLiveness(added, removed);
    rebuilt.RebuildIndexes();
    rebuild_ms += MsSince(reb_start);

    // Identity gate, outside both timed regions.
    if (incremental.Fingerprint() != rebuilt.Fingerprint()) {
      identical = false;
      std::cerr << "FINGERPRINT MISMATCH at episode " << episode << "\n";
      break;
    }
  }

  const double speedup =
      incremental_ms > 0.0 ? rebuild_ms / incremental_ms : 0.0;
  std::cout << "  incremental (ApplyDelta)      " << std::setw(9)
            << std::setprecision(2) << incremental_ms << " ms total  "
            << std::setw(8) << std::setprecision(4)
            << incremental_ms / kEpisodes << " ms/episode  ("
            << incremental.compaction_count() << " compactions)\n"
            << "  rebuild (flags + full index)  " << std::setw(9)
            << std::setprecision(2) << rebuild_ms << " ms total  "
            << std::setw(8) << std::setprecision(4)
            << rebuild_ms / kEpisodes << " ms/episode\n"
            << "  speedup " << std::setprecision(1) << speedup << "x (gate: "
            << ">= 10x)\n"
            << (identical
                    ? "fingerprints identical after every episode\n"
                    : "FINGERPRINT MISMATCH!\n");

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << std::fixed << std::setprecision(3);
  out << "{\n"
      << "  \"bench\": \"incremental_space\",\n"
      << "  \"world\": \"dbpedia_nytimes\",\n"
      << "  \"pairs\": " << num_pairs << ",\n"
      << "  \"episodes\": " << kEpisodes << ",\n"
      << "  \"churn_per_episode\": " << churn << ",\n"
      << "  \"build_ms\": " << build_ms << ",\n"
      << "  \"identical_fingerprints\": " << (identical ? "true" : "false")
      << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"compactions\": " << incremental.compaction_count() << ",\n"
      << "  \"runs\": [\n"
      << "    {\"mode\": \"incremental\", \"ms\": " << incremental_ms
      << ", \"ms_per_episode\": " << incremental_ms / kEpisodes << "},\n"
      << "    {\"mode\": \"rebuild\", \"ms\": " << rebuild_ms
      << ", \"ms_per_episode\": " << rebuild_ms / kEpisodes << "}\n"
      << "  ]\n}\n";
  std::cout << "(json written to " << out_path << ")\n";
  return identical && speedup >= 10.0 ? 0 : 1;
}
