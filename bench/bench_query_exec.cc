// Single-store query execution benchmark (compiled TermId-space executor
// vs. the legacy term-space matcher) plus the federated query cache.
//
// Part 1 runs a generated join workload over the dbpedia_nytimes left store
// through both engines at 1/2/4/8 threads (queries sharded across a
// ThreadPool; the store is read-only and index-warmed). Before any timing,
// every query's row multiset is asserted identical across legacy, compiled,
// and compiled-with-statistics execution; each timed run re-checks the
// total row count. Single-thread extras: compiled with DatasetStats, and
// compiled with precompiled reused plans.
//
// Part 2 replays a federated workload across episodes with the
// FederatedQueryCache attached, toggling a sliding window of links between
// episodes (invalidating through the cache exactly as the query-driven loop
// does) and reporting the per-episode hit rate; sampled queries are
// re-executed uncached and must return identical answers.
//
// Writes BENCH_query_exec.json (path via --out). Exits nonzero if any
// identity assertion fails.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "eval/query_workload.h"
#include "federation/federated_engine.h"
#include "federation/query_cache.h"
#include "linking/paris.h"
#include "rdf/dataset_stats.h"
#include "sparql/executor.h"
#include "sparql/parser.h"

namespace {

using alex::Rng;
using alex::ThreadPool;
using alex::rdf::TripleStore;
using alex::sparql::Binding;
using alex::sparql::ExecEngine;
using alex::sparql::ExecuteOptions;
using alex::sparql::Query;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string QuoteLiteral(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

// Join-shaped SELECT queries over the store's own vocabulary: anchor an
// entity by one attribute value, then join out through 1-2 more predicates.
// (FILTER-free on purpose — this benchmark times the join machinery; filter
// parity is covered by the differential tests.)
std::vector<std::string> GenerateQueries(const TripleStore& store,
                                         size_t count, uint64_t seed) {
  const alex::rdf::Dictionary& dict = store.dictionary();
  std::vector<alex::rdf::TermId> subjects = store.Subjects();
  std::vector<std::string> predicates;
  for (alex::rdf::TermId p : store.Predicates()) {
    predicates.push_back(dict.term(p).lexical());
  }
  ALEX_CHECK(!subjects.empty() && !predicates.empty());

  Rng rng(seed);
  auto pred = [&] { return predicates[rng.NextBounded(predicates.size())]; };
  // Predicates split by triple count: asymmetric joins pair a high-count
  // pattern (written first) with a low-count one, so engines that keep the
  // text order on unbound-count ties pay the large scan while
  // cardinality-ordered execution starts from the small range.
  std::vector<std::string> sorted_preds = predicates;
  std::sort(sorted_preds.begin(), sorted_preds.end(),
            [&](const std::string& a, const std::string& b) {
              return store.CountMatches(
                         std::nullopt,
                         dict.Lookup(alex::rdf::Term::Iri(a)),
                         std::nullopt) <
                     store.CountMatches(
                         std::nullopt,
                         dict.Lookup(alex::rdf::Term::Iri(b)),
                         std::nullopt);
            });
  const size_t third = std::max<size_t>(1, sorted_preds.size() / 3);
  auto rare_pred = [&] {
    return sorted_preds[rng.NextBounded(third)];
  };
  auto common_pred = [&] {
    return sorted_preds[sorted_preds.size() - 1 - rng.NextBounded(third)];
  };
  std::vector<std::string> queries;
  while (queries.size() < count) {
    std::string text;
    switch (rng.NextBounded(8)) {
      case 0: {
        // Anchored star: entity pinned by a literal value, 1-2 joins out.
        alex::rdf::TermId subject =
            subjects[rng.NextBounded(subjects.size())];
        std::vector<alex::rdf::Triple> triples =
            store.Match(subject, std::nullopt, std::nullopt);
        if (triples.empty()) continue;
        const alex::rdf::Triple& anchor =
            triples[rng.NextBounded(triples.size())];
        const alex::rdf::Term& value = dict.term(anchor.object);
        if (!value.is_literal()) continue;
        text = "SELECT * WHERE { ?e <" +
               dict.term(anchor.predicate).lexical() + "> " +
               QuoteLiteral(value.lexical()) + " . ?e <" + pred() + "> ?v";
        if (rng.NextBounded(2) == 0) text += " . ?e <" + pred() + "> ?w";
        text += " }";
        break;
      }
      case 1:
      case 2:
        // Value join with a narrow DISTINCT projection: the intermediate is
        // every entity pair agreeing on an attribute value, the output just
        // the distinct shared values — the shape where intermediate binding
        // representation and id-space dedup dominate.
        text = "SELECT DISTINCT ?v WHERE { ?a <" + pred() + "> ?v . ?b <" +
               pred() + "> ?v }";
        break;
      case 3:
      case 4:
      case 5:
        // Asymmetric join, high-cardinality pattern written first: the
        // statistics-driven ordering starts from the small index range
        // instead.
        text = "SELECT DISTINCT ?v WHERE { ?b <" + common_pred() +
               "> ?v . ?a <" + rare_pred() + "> ?v }";
        break;
      case 6:
        // Two-attribute agreement narrowed to the distinct left entities.
        text = "SELECT DISTINCT ?a WHERE { ?a <" + pred() + "> ?v . ?b <" +
               pred() + "> ?v . ?a <" + pred() + "> ?w . ?b <" + pred() +
               "> ?w }";
        break;
      default:
        // Chain through a shared value with a dangling projection.
        text = "SELECT DISTINCT ?c WHERE { ?a <" + pred() + "> ?v . ?b <" +
               pred() + "> ?v . ?b <" + pred() + "> ?c }";
        break;
    }
    queries.push_back(std::move(text));
  }
  return queries;
}

std::vector<Binding> SortedRows(const Query& query, const TripleStore& store,
                                const ExecuteOptions& options) {
  alex::Result<std::vector<Binding>> rows =
      alex::sparql::Execute(query, store, options);
  ALEX_CHECK(rows.ok()) << rows.status().ToString();
  std::vector<Binding> sorted = std::move(rows).value();
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

struct TimedRun {
  double ms = 0.0;
  uint64_t rows = 0;
};

// Executes every parsed query once, sharded across `pool`; returns wall
// time and the total row count (the per-run identity check).
TimedRun RunAll(const std::vector<Query>& queries, const TripleStore& store,
                const ExecuteOptions& options, ThreadPool* pool) {
  std::atomic<uint64_t> rows{0};
  auto start = std::chrono::steady_clock::now();
  pool->ParallelFor(queries.size(), 1, [&](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) {
      alex::Result<std::vector<Binding>> result =
          alex::sparql::Execute(queries[i], store, options);
      ALEX_CHECK(result.ok()) << result.status().ToString();
      local += result.value().size();
    }
    rows.fetch_add(local, std::memory_order_relaxed);
  });
  TimedRun run;
  run.ms = MsSince(start);
  run.rows = rows.load();
  return run;
}

struct Row {
  std::string engine;
  int threads = 0;
  double best_ms = 0.0;
  double qps = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_query_exec.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  // Double the entity counts: value joins grow quadratically with the
  // store, so the per-solution engine costs dominate per-query overheads.
  config.profile.overlap_entities *= 2;
  config.profile.left_only_entities *= 2;
  config.profile.right_only_entities *= 2;
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  const TripleStore& store = world.left;
  (void)store.size();        // build indexes before sharing across threads
  (void)world.right.size();

  const size_t kNumQueries = 400;
  std::vector<std::string> texts =
      GenerateQueries(store, kNumQueries, /*seed=*/0xa1e0);
  std::vector<Query> queries;
  for (const std::string& text : texts) {
    alex::Result<Query> parsed = alex::sparql::ParseQuery(text);
    ALEX_CHECK(parsed.ok()) << text << ": " << parsed.status().ToString();
    queries.push_back(std::move(parsed).value());
  }
  alex::rdf::DatasetStats stats = alex::rdf::ComputeStats(store);

  std::cout << "== Query execution: compiled vs legacy ==\n"
            << "world dbpedia_nytimes left store: " << store.size()
            << " triples, " << kNumQueries << " join queries\n";

  // Identity gate before any timing: legacy, compiled, and compiled+stats
  // must produce the same row multiset for every query.
  bool identical_rows = true;
  uint64_t expected_rows = 0;
  {
    ExecuteOptions legacy_options;
    legacy_options.engine = ExecEngine::kLegacy;
    ExecuteOptions compiled_options;  // default engine
    ExecuteOptions stats_options;
    stats_options.stats = &stats;
    for (const Query& query : queries) {
      std::vector<Binding> legacy = SortedRows(query, store, legacy_options);
      std::vector<Binding> compiled =
          SortedRows(query, store, compiled_options);
      std::vector<Binding> with_stats =
          SortedRows(query, store, stats_options);
      if (compiled != legacy || with_stats != legacy) {
        identical_rows = false;
        std::cerr << "ROW MISMATCH between engines!\n";
        break;
      }
      expected_rows += legacy.size();
    }
  }
  std::cout << "  identity check: "
            << (identical_rows ? "all engines agree" : "MISMATCH") << " ("
            << expected_rows << " total rows)\n";

  const std::vector<int> kThreads = {1, 2, 4, 8};
  const int kRepeats = 3;
  std::vector<Row> rows;
  double legacy_1t_ms = 0.0;
  double compiled_1t_ms = 0.0;

  auto bench_config = [&](const std::string& name,
                          const ExecuteOptions& options, int threads) {
    ThreadPool pool(threads);
    Row row;
    row.engine = name;
    row.threads = threads;
    row.best_ms = -1.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      TimedRun run = RunAll(queries, store, options, &pool);
      if (run.rows != expected_rows) {
        identical_rows = false;
        std::cerr << "ROW COUNT DRIFT in timed run (" << name << ", "
                  << threads << " threads)\n";
      }
      if (row.best_ms < 0.0 || run.ms < row.best_ms) row.best_ms = run.ms;
    }
    row.qps = row.best_ms > 0.0 ? 1000.0 * queries.size() / row.best_ms : 0.0;
    std::cout << "  " << std::left << std::setw(16) << name << std::right
              << threads << " thread(s) " << std::fixed
              << std::setprecision(1) << std::setw(9) << row.best_ms
              << " ms  " << std::setprecision(0) << std::setw(9) << row.qps
              << " qps\n";
    rows.push_back(row);
    return row.best_ms;
  };

  for (int threads : kThreads) {
    ExecuteOptions legacy_options;
    legacy_options.engine = ExecEngine::kLegacy;
    double ms = bench_config("legacy", legacy_options, threads);
    if (threads == 1) legacy_1t_ms = ms;
  }
  // The full compiled configuration: id-space execution plus
  // statistics-driven join ordering (stats are computed once per store).
  for (int threads : kThreads) {
    ExecuteOptions compiled_options;
    compiled_options.stats = &stats;
    double ms = bench_config("compiled", compiled_options, threads);
    if (threads == 1) compiled_1t_ms = ms;
  }
  {
    // Ablation: range-count ordering only, no per-predicate statistics.
    ExecuteOptions nostats_options;
    bench_config("compiled_nostats", nostats_options, 1);
  }
  {
    // Plan reuse: compile once per query (with stats), execute many times.
    std::vector<alex::sparql::CompiledQuery> plans;
    plans.reserve(queries.size());
    alex::sparql::CompileOptions compile_options;
    compile_options.stats = &stats;
    for (const Query& query : queries) {
      plans.push_back(
          alex::sparql::CompileQuery(query, store, compile_options));
    }
    ThreadPool pool(1);
    Row row;
    row.engine = "compiled_planned";
    row.threads = 1;
    row.best_ms = -1.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      std::atomic<uint64_t> run_rows{0};
      auto start = std::chrono::steady_clock::now();
      pool.ParallelFor(queries.size(), 1, [&](size_t begin, size_t end) {
        uint64_t local = 0;
        for (size_t i = begin; i < end; ++i) {
          ExecuteOptions options;
          options.plan = &plans[i];
          alex::Result<std::vector<Binding>> result =
              alex::sparql::Execute(queries[i], store, options);
          ALEX_CHECK(result.ok()) << result.status().ToString();
          local += result.value().size();
        }
        run_rows.fetch_add(local, std::memory_order_relaxed);
      });
      double ms = MsSince(start);
      if (run_rows.load() != expected_rows) identical_rows = false;
      if (row.best_ms < 0.0 || ms < row.best_ms) row.best_ms = ms;
    }
    row.qps = row.best_ms > 0.0 ? 1000.0 * queries.size() / row.best_ms : 0.0;
    std::cout << "  " << std::left << std::setw(16) << row.engine
              << std::right << "1 thread(s) " << std::fixed
              << std::setprecision(1) << std::setw(9) << row.best_ms
              << " ms  " << std::setprecision(0) << std::setw(9) << row.qps
              << " qps\n";
    rows.push_back(row);
  }

  const double speedup_1t =
      compiled_1t_ms > 0.0 ? legacy_1t_ms / compiled_1t_ms : 0.0;
  std::cout << std::fixed << std::setprecision(2)
            << "compiled vs legacy at 1 thread: " << speedup_1t << "x\n";

  // ---- Part 2: federated query cache across episodes ----
  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);
  alex::eval::WorkloadOptions workload_options;
  workload_options.num_queries = 250;
  std::vector<alex::eval::WorkloadQuery> workload =
      alex::eval::GenerateWorkload(world, workload_options);

  alex::fed::LinkSet links;
  for (const alex::linking::Link& link : initial) links.Add(link);
  alex::fed::FederatedQueryCache cache;
  std::vector<const TripleStore*> sources = {&world.left, &world.right};
  alex::fed::FederatedEngine cached_engine(sources, &links);
  cached_engine.set_cache(&cache);
  alex::fed::FederatedEngine uncached_engine(sources, &links);

  const int kEpisodes = 8;
  const size_t kChurnPerEpisode = 10;
  struct EpisodeRow {
    int episode = 0;
    size_t hits = 0;
    size_t misses = 0;
    double hit_rate = 0.0;
    double cached_ms = 0.0;
    double uncached_ms = 0.0;
  };
  std::vector<EpisodeRow> episodes;
  bool cache_exact = true;
  std::cout << "== Federated cache: hit rate per episode ==\n"
            << "  " << workload.size() << " queries/episode, "
            << initial.size() << " links, toggling " << kChurnPerEpisode
            << " links between episodes\n";

  for (int episode = 0; episode < kEpisodes; ++episode) {
    EpisodeRow row;
    row.episode = episode;

    auto cached_start = std::chrono::steady_clock::now();
    for (const alex::eval::WorkloadQuery& query : workload) {
      alex::Result<alex::fed::FederatedResult> answers =
          cached_engine.ExecuteText(query.text);
      ALEX_CHECK(answers.ok()) << answers.status().ToString();
    }
    row.cached_ms = MsSince(cached_start);

    // Sampled exactness: every 10th query re-runs uncached and must match
    // the cached answers row for row (provenance included).
    auto uncached_start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < workload.size(); i += 10) {
      alex::Result<alex::fed::FederatedResult> cached =
          cached_engine.ExecuteText(workload[i].text);
      alex::Result<alex::fed::FederatedResult> fresh =
          uncached_engine.ExecuteText(workload[i].text);
      ALEX_CHECK(cached.ok() && fresh.ok());
      const std::vector<alex::fed::FederatedAnswer>& cached_rows =
          cached.value().answers;
      const std::vector<alex::fed::FederatedAnswer>& fresh_rows =
          fresh.value().answers;
      bool same = cached_rows.size() == fresh_rows.size();
      for (size_t j = 0; same && j < cached_rows.size(); ++j) {
        same = cached_rows[j].binding == fresh_rows[j].binding &&
               cached_rows[j].links_used.size() ==
                   fresh_rows[j].links_used.size();
      }
      if (!same) cache_exact = false;
    }
    row.uncached_ms = MsSince(uncached_start);

    alex::fed::FederatedQueryCache::Stats stats_now = cache.TakeStats();
    row.hits = stats_now.hits;
    row.misses = stats_now.misses;
    row.hit_rate =
        stats_now.hits + stats_now.misses > 0
            ? static_cast<double>(stats_now.hits) /
                  static_cast<double>(stats_now.hits + stats_now.misses)
            : 0.0;
    std::cout << "  episode " << episode << ": " << row.hits << " hits, "
              << row.misses << " misses (hit rate " << std::fixed
              << std::setprecision(3) << row.hit_rate << ")\n";
    episodes.push_back(row);

    // Between episodes, toggle a sliding window of links — the same
    // add/remove + InvalidateLink flow the query-driven loop's observer
    // performs at episode boundaries.
    for (size_t k = 0; k < kChurnPerEpisode && k < initial.size(); ++k) {
      const alex::linking::Link& link =
          initial[(static_cast<size_t>(episode) * kChurnPerEpisode + k) %
                  initial.size()];
      if (links.Contains(link.left, link.right)) {
        links.Remove(link.left, link.right);
      } else {
        links.Add(link);
      }
      cache.InvalidateLink(link);
    }
  }
  std::cout << (cache_exact
                    ? "cached answers identical to uncached re-execution\n"
                    : "CACHE MISMATCH vs uncached re-execution!\n");

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << std::fixed << std::setprecision(3);
  out << "{\n"
      << "  \"bench\": \"query_exec\",\n"
      << "  \"world\": \"dbpedia_nytimes\",\n"
      << "  \"num_queries\": " << queries.size() << ",\n"
      << "  \"total_rows\": " << expected_rows << ",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"identical_rows\": " << (identical_rows ? "true" : "false")
      << ",\n"
      << "  \"speedup_compiled_vs_legacy_1thread\": " << speedup_1t << ",\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"engine\": \"" << row.engine << "\", \"threads\": "
        << row.threads << ", \"ms\": " << row.best_ms << ", \"qps\": "
        << row.qps << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"federated_cache\": {\n"
      << "    \"queries_per_episode\": " << workload.size() << ",\n"
      << "    \"links_toggled_per_episode\": " << kChurnPerEpisode << ",\n"
      << "    \"cache_exact\": " << (cache_exact ? "true" : "false") << ",\n"
      << "    \"episodes\": [\n";
  for (size_t i = 0; i < episodes.size(); ++i) {
    const EpisodeRow& row = episodes[i];
    out << "      {\"episode\": " << row.episode << ", \"hits\": "
        << row.hits << ", \"misses\": " << row.misses << ", \"hit_rate\": "
        << row.hit_rate << ", \"cached_ms\": " << row.cached_ms
        << ", \"uncached_sampled_ms\": " << row.uncached_ms << "}"
        << (i + 1 < episodes.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }\n}\n";
  std::cout << "(json written to " << out_path << ")\n";
  return identical_rows && cache_exact ? 0 : 1;
}
