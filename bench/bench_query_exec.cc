// Single-store query execution benchmark (planned physical-operator
// executor vs. the greedy compiled enumerator vs. the legacy term-space
// matcher) plus the federated query cache.
//
// Part 1 runs a generated join workload over the dbpedia_nytimes left store
// through all three engines at 1/2/4/8 threads (queries sharded across a
// ThreadPool; the store is read-only and index-warmed). Before any timing,
// every query's row multiset is asserted identical across the engines;
// each timed run re-checks the total row count. Single-thread extras:
// planned without statistics, and planned with precompiled reused plans.
//
// Part 2 is the headline planned-vs-greedy comparison: a multi-join
// workload (every query has >= 4 triple patterns) where the DP plan
// generator's aggregated scans, semi lookup joins, and merge joins pay off
// structurally. The same identity gate runs first; the speedup and the
// PlanCache hit rate across repeated epochs land in the JSON.
//
// Part 3 replays a federated workload across episodes with the
// FederatedQueryCache attached, toggling a sliding window of links between
// episodes (invalidating through the cache exactly as the query-driven loop
// does) and reporting the per-episode hit rate; sampled queries are
// re-executed uncached and must return identical answers.
//
// Writes BENCH_query_exec.json (path via --out). Exits nonzero if any
// identity assertion fails.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/latency_histogram.h"
#include "common/thread_pool.h"
#include "eval/query_workload.h"
#include "federation/federated_engine.h"
#include "federation/query_cache.h"
#include "linking/paris.h"
#include "rdf/dataset_stats.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/plan_cache.h"

namespace {

using alex::Rng;
using alex::ThreadPool;
using alex::rdf::TripleStore;
using alex::sparql::Binding;
using alex::sparql::ExecuteOptions;
using alex::sparql::ExecutorKind;
using alex::sparql::Query;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string QuoteLiteral(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

// Join-shaped SELECT queries over the store's own vocabulary: anchor an
// entity by one attribute value, then join out through 1-2 more predicates.
// (FILTER-free on purpose — this benchmark times the join machinery; filter
// parity is covered by the differential tests.)
std::vector<std::string> GenerateQueries(const TripleStore& store,
                                         size_t count, uint64_t seed) {
  const alex::rdf::Dictionary& dict = store.dictionary();
  std::vector<alex::rdf::TermId> subjects = store.Subjects();
  std::vector<std::string> predicates;
  for (alex::rdf::TermId p : store.Predicates()) {
    predicates.push_back(dict.term(p).lexical());
  }
  ALEX_CHECK(!subjects.empty() && !predicates.empty());

  Rng rng(seed);
  auto pred = [&] { return predicates[rng.NextBounded(predicates.size())]; };
  // Predicates split by triple count: asymmetric joins pair a high-count
  // pattern (written first) with a low-count one, so engines that keep the
  // text order on unbound-count ties pay the large scan while
  // cardinality-ordered execution starts from the small range.
  std::vector<std::string> sorted_preds = predicates;
  std::sort(sorted_preds.begin(), sorted_preds.end(),
            [&](const std::string& a, const std::string& b) {
              return store.CountMatches(
                         std::nullopt,
                         dict.Lookup(alex::rdf::Term::Iri(a)),
                         std::nullopt) <
                     store.CountMatches(
                         std::nullopt,
                         dict.Lookup(alex::rdf::Term::Iri(b)),
                         std::nullopt);
            });
  const size_t third = std::max<size_t>(1, sorted_preds.size() / 3);
  auto rare_pred = [&] {
    return sorted_preds[rng.NextBounded(third)];
  };
  auto common_pred = [&] {
    return sorted_preds[sorted_preds.size() - 1 - rng.NextBounded(third)];
  };
  std::vector<std::string> queries;
  while (queries.size() < count) {
    std::string text;
    switch (rng.NextBounded(8)) {
      case 0: {
        // Anchored star: entity pinned by a literal value, 1-2 joins out.
        alex::rdf::TermId subject =
            subjects[rng.NextBounded(subjects.size())];
        std::vector<alex::rdf::Triple> triples =
            store.Match(subject, std::nullopt, std::nullopt);
        if (triples.empty()) continue;
        const alex::rdf::Triple& anchor =
            triples[rng.NextBounded(triples.size())];
        const alex::rdf::Term& value = dict.term(anchor.object);
        if (!value.is_literal()) continue;
        text = "SELECT * WHERE { ?e <" +
               dict.term(anchor.predicate).lexical() + "> " +
               QuoteLiteral(value.lexical()) + " . ?e <" + pred() + "> ?v";
        if (rng.NextBounded(2) == 0) text += " . ?e <" + pred() + "> ?w";
        text += " }";
        break;
      }
      case 1:
      case 2:
        // Value join with a narrow DISTINCT projection: the intermediate is
        // every entity pair agreeing on an attribute value, the output just
        // the distinct shared values — the shape where intermediate binding
        // representation and id-space dedup dominate.
        text = "SELECT DISTINCT ?v WHERE { ?a <" + pred() + "> ?v . ?b <" +
               pred() + "> ?v }";
        break;
      case 3:
      case 4:
      case 5:
        // Asymmetric join, high-cardinality pattern written first: the
        // statistics-driven ordering starts from the small index range
        // instead.
        text = "SELECT DISTINCT ?v WHERE { ?b <" + common_pred() +
               "> ?v . ?a <" + rare_pred() + "> ?v }";
        break;
      case 6:
        // Two-attribute agreement narrowed to the distinct left entities.
        text = "SELECT DISTINCT ?a WHERE { ?a <" + pred() + "> ?v . ?b <" +
               pred() + "> ?v . ?a <" + pred() + "> ?w . ?b <" + pred() +
               "> ?w }";
        break;
      default:
        // Chain through a shared value with a dangling projection.
        text = "SELECT DISTINCT ?c WHERE { ?a <" + pred() + "> ?v . ?b <" +
               pred() + "> ?v . ?b <" + pred() + "> ?c }";
        break;
    }
    queries.push_back(std::move(text));
  }
  return queries;
}

// Multi-join workload: every query has >= 4 triple patterns. DISTINCT
// value-join chains with dangling endpoints — the shapes where the DP plan
// generator's semi lookup joins and aggregated scans prune work the greedy
// pattern-at-a-time enumerator must materialize.
std::vector<std::string> GenerateMultiJoinQueries(const TripleStore& store,
                                                  size_t count,
                                                  uint64_t seed) {
  const alex::rdf::Dictionary& dict = store.dictionary();
  // A value self-join ?a p ?v . ?b p ?v produces, per object value, the
  // squared group size. Predicates with large self-joins (types,
  // categories) are where the enumeration engines drown and the planner's
  // semi joins / aggregated scans win structurally — but chaining two of
  // them can push the complete-solution count past the engines'
  // ExecuteOptions::max_rows valve, where a truncated answer makes the
  // engines legitimately diverge. So: exactly one heavy predicate per
  // query, light predicates elsewhere, and every candidate is verified
  // below to stay under the valve.
  std::vector<std::pair<uint64_t, std::string>> heavy;  // (self-join, IRI)
  std::vector<std::pair<uint64_t, std::string>> light;
  for (alex::rdf::TermId p : store.Predicates()) {
    uint64_t self_join = 0;
    uint64_t group = 0;
    alex::rdf::TermId prev_object = alex::rdf::kInvalidTermId;
    for (const alex::rdf::Triple& t :
         store.Match(std::nullopt, p, std::nullopt)) {
      if (t.object != prev_object && group > 0) {
        self_join += group * group;
        group = 0;
      }
      prev_object = t.object;
      ++group;
    }
    if (group > 0) self_join += group * group;
    (self_join > 50000 ? heavy : light).emplace_back(
        self_join, dict.term(p).lexical());
  }
  ALEX_CHECK(!light.empty());
  if (heavy.empty()) heavy = light;  // degenerate store: still generate
  std::sort(heavy.rbegin(), heavy.rend());
  std::sort(light.rbegin(), light.rend());

  Rng rng(seed);
  auto heavy_pred = [&] { return heavy[rng.NextBounded(heavy.size())].second; };
  auto light_pred = [&] {
    const size_t busy = std::max<size_t>(1, light.size() / 2);
    return light[rng.NextBounded(busy)].second;
  };
  std::vector<std::string> queries;
  size_t attempts = 0;
  while (queries.size() < count && attempts < count * 20) {
    ++attempts;
    const std::string p1 = heavy_pred();
    const std::string p2 = light_pred(), p3 = light_pred(),
                      p4 = light_pred();
    std::string text;
    switch (rng.NextBounded(4)) {
      case 0:
        // Two value joins chained through ?b; ?c dangles (4 patterns).
        text = "SELECT DISTINCT ?v WHERE { ?a <" + p1 + "> ?v . ?b <" + p1 +
               "> ?v . ?b <" + p2 + "> ?w . ?c <" + p2 + "> ?w }";
        break;
      case 1:
        // Two-attribute agreement, distinct left entities (4 patterns).
        text = "SELECT DISTINCT ?a WHERE { ?a <" + p1 + "> ?v . ?b <" + p1 +
               "> ?v . ?a <" + p2 + "> ?w . ?b <" + p2 + "> ?w }";
        break;
      case 2:
        // Chain of three value joins, both ends dangling (5 patterns).
        text = "SELECT DISTINCT ?w WHERE { ?a <" + p1 + "> ?v . ?b <" + p1 +
               "> ?v . ?b <" + p2 + "> ?w . ?c <" + p2 + "> ?w . ?c <" + p3 +
               "> ?x }";
        break;
      default:
        // Star of agreements around ?b with a dangling tail (6 patterns).
        text = "SELECT DISTINCT ?v WHERE { ?a <" + p1 + "> ?v . ?b <" + p1 +
               "> ?v . ?b <" + p2 + "> ?w . ?c <" + p2 + "> ?w . ?c <" + p3 +
               "> ?x . ?d <" + p4 + "> ?x }";
        break;
    }
    // Reject candidates whose complete-solution count (the DISTINCT-free
    // row count) approaches the max_rows valve: past it the engines return
    // truncated — and therefore different — answers.
    std::string unlimited = text;
    const std::string kDistinct = "DISTINCT ";
    size_t at = unlimited.find(kDistinct);
    if (at != std::string::npos) unlimited.erase(at, kDistinct.size());
    alex::Result<Query> parsed = alex::sparql::ParseQuery(unlimited);
    ALEX_CHECK(parsed.ok()) << unlimited;
    alex::sparql::ExecuteOptions options;  // planned never materializes
    alex::Result<std::vector<Binding>> rows =
        alex::sparql::Execute(parsed.value(), store, options);
    ALEX_CHECK(rows.ok()) << rows.status().ToString();
    if (rows.value().size() >= 900000) continue;
    queries.push_back(std::move(text));
  }
  ALEX_CHECK(queries.size() == count)
      << "multi-join generation exhausted attempts";
  return queries;
}

std::vector<Binding> SortedRows(const Query& query, const TripleStore& store,
                                const ExecuteOptions& options) {
  alex::Result<std::vector<Binding>> rows =
      alex::sparql::Execute(query, store, options);
  ALEX_CHECK(rows.ok()) << rows.status().ToString();
  std::vector<Binding> sorted = std::move(rows).value();
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

struct TimedRun {
  double ms = 0.0;
  uint64_t rows = 0;
};

// Executes every parsed query once, sharded across `pool`; returns wall
// time and the total row count (the per-run identity check). When `hist`
// is given, each query's latency is recorded (safe across threads).
TimedRun RunAll(const std::vector<Query>& queries, const TripleStore& store,
                const ExecuteOptions& options, ThreadPool* pool,
                alex::LatencyHistogram* hist = nullptr) {
  std::atomic<uint64_t> rows{0};
  auto start = std::chrono::steady_clock::now();
  pool->ParallelFor(queries.size(), 1, [&](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) {
      auto query_start = std::chrono::steady_clock::now();
      alex::Result<std::vector<Binding>> result =
          alex::sparql::Execute(queries[i], store, options);
      ALEX_CHECK(result.ok()) << result.status().ToString();
      if (hist != nullptr) {
        hist->Record(static_cast<int64_t>(MsSince(query_start) * 1000.0));
      }
      local += result.value().size();
    }
    rows.fetch_add(local, std::memory_order_relaxed);
  });
  TimedRun run;
  run.ms = MsSince(start);
  run.rows = rows.load();
  return run;
}

struct Row {
  std::string engine;
  int threads = 0;
  double best_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_query_exec.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  // Double the entity counts: value joins grow quadratically with the
  // store, so the per-solution engine costs dominate per-query overheads.
  config.profile.overlap_entities *= 2;
  config.profile.left_only_entities *= 2;
  config.profile.right_only_entities *= 2;
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  const TripleStore& store = world.left;
  (void)store.size();        // build indexes before sharing across threads
  (void)world.right.size();

  const size_t kNumQueries = 400;
  std::vector<std::string> texts =
      GenerateQueries(store, kNumQueries, /*seed=*/0xa1e0);
  std::vector<Query> queries;
  for (const std::string& text : texts) {
    alex::Result<Query> parsed = alex::sparql::ParseQuery(text);
    ALEX_CHECK(parsed.ok()) << text << ": " << parsed.status().ToString();
    queries.push_back(std::move(parsed).value());
  }
  alex::rdf::DatasetStats stats = alex::rdf::ComputeStats(store);

  std::cout << "== Query execution: planned vs greedy vs legacy ==\n"
            << "world dbpedia_nytimes left store: " << store.size()
            << " triples, " << kNumQueries << " join queries\n";

  // Identity gate before any timing: legacy, greedy, planned, and
  // planned+stats must produce the same row multiset for every query.
  bool identical_rows = true;
  uint64_t expected_rows = 0;
  {
    ExecuteOptions legacy_options;
    legacy_options.engine = ExecutorKind::kLegacy;
    ExecuteOptions greedy_options;
    greedy_options.engine = ExecutorKind::kGreedy;
    greedy_options.stats = &stats;
    ExecuteOptions planned_options;  // default engine, no stats
    ExecuteOptions stats_options;
    stats_options.stats = &stats;
    for (const Query& query : queries) {
      std::vector<Binding> legacy = SortedRows(query, store, legacy_options);
      std::vector<Binding> greedy = SortedRows(query, store, greedy_options);
      std::vector<Binding> planned =
          SortedRows(query, store, planned_options);
      std::vector<Binding> with_stats =
          SortedRows(query, store, stats_options);
      if (greedy != legacy || planned != legacy || with_stats != legacy) {
        identical_rows = false;
        std::cerr << "ROW MISMATCH between engines!\n";
        break;
      }
      expected_rows += legacy.size();
    }
  }
  std::cout << "  identity check: "
            << (identical_rows ? "all engines agree" : "MISMATCH") << " ("
            << expected_rows << " total rows)\n";

  const std::vector<int> kThreads = {1, 2, 4, 8};
  const int kRepeats = 3;
  std::vector<Row> rows;
  double legacy_1t_ms = 0.0;
  double greedy_1t_ms = 0.0;
  double planned_1t_ms = 0.0;

  auto bench_config = [&](const std::string& name,
                          const ExecuteOptions& options, int threads) {
    ThreadPool pool(threads);
    Row row;
    row.engine = name;
    row.threads = threads;
    row.best_ms = -1.0;
    alex::LatencyHistogram hist;  // per-query latencies across all repeats
    for (int rep = 0; rep < kRepeats; ++rep) {
      TimedRun run = RunAll(queries, store, options, &pool, &hist);
      if (run.rows != expected_rows) {
        identical_rows = false;
        std::cerr << "ROW COUNT DRIFT in timed run (" << name << ", "
                  << threads << " threads)\n";
      }
      if (row.best_ms < 0.0 || run.ms < row.best_ms) row.best_ms = run.ms;
    }
    row.qps = row.best_ms > 0.0 ? 1000.0 * queries.size() / row.best_ms : 0.0;
    row.p50_ms = hist.PercentileMicros(0.5) / 1000.0;
    row.p99_ms = hist.PercentileMicros(0.99) / 1000.0;
    std::cout << "  " << std::left << std::setw(16) << name << std::right
              << threads << " thread(s) " << std::fixed
              << std::setprecision(1) << std::setw(9) << row.best_ms
              << " ms  " << std::setprecision(0) << std::setw(9) << row.qps
              << " qps  " << std::setprecision(2) << "p50 " << row.p50_ms
              << " / p99 " << row.p99_ms << " ms\n";
    rows.push_back(row);
    return row.best_ms;
  };

  for (int threads : kThreads) {
    ExecuteOptions legacy_options;
    legacy_options.engine = ExecutorKind::kLegacy;
    double ms = bench_config("legacy", legacy_options, threads);
    if (threads == 1) legacy_1t_ms = ms;
  }
  // Greedy pattern-at-a-time enumeration with statistics-driven ordering
  // (the former default compiled configuration).
  for (int threads : kThreads) {
    ExecuteOptions greedy_options;
    greedy_options.engine = ExecutorKind::kGreedy;
    greedy_options.stats = &stats;
    double ms = bench_config("greedy", greedy_options, threads);
    if (threads == 1) greedy_1t_ms = ms;
  }
  // The default configuration: DP-planned physical operator trees costed
  // from the same statistics.
  for (int threads : kThreads) {
    ExecuteOptions planned_options;
    planned_options.stats = &stats;
    double ms = bench_config("planned", planned_options, threads);
    if (threads == 1) planned_1t_ms = ms;
  }
  {
    // Ablation: cost model fed by live range counts only, no per-predicate
    // statistics.
    ExecuteOptions nostats_options;
    bench_config("planned_nostats", nostats_options, 1);
  }
  {
    // Plan reuse: compile once per query (with stats), execute many times.
    std::vector<alex::sparql::CompiledQuery> plans;
    plans.reserve(queries.size());
    alex::sparql::CompileOptions compile_options;
    compile_options.stats = &stats;
    for (const Query& query : queries) {
      plans.push_back(
          alex::sparql::CompileQuery(query, store, compile_options));
    }
    ThreadPool pool(1);
    Row row;
    row.engine = "planned_reused";
    row.threads = 1;
    row.best_ms = -1.0;
    alex::LatencyHistogram hist;
    for (int rep = 0; rep < kRepeats; ++rep) {
      std::atomic<uint64_t> run_rows{0};
      auto start = std::chrono::steady_clock::now();
      pool.ParallelFor(queries.size(), 1, [&](size_t begin, size_t end) {
        uint64_t local = 0;
        for (size_t i = begin; i < end; ++i) {
          ExecuteOptions options;
          options.plan = &plans[i];
          auto query_start = std::chrono::steady_clock::now();
          alex::Result<std::vector<Binding>> result =
              alex::sparql::Execute(queries[i], store, options);
          ALEX_CHECK(result.ok()) << result.status().ToString();
          hist.Record(static_cast<int64_t>(MsSince(query_start) * 1000.0));
          local += result.value().size();
        }
        run_rows.fetch_add(local, std::memory_order_relaxed);
      });
      double ms = MsSince(start);
      if (run_rows.load() != expected_rows) identical_rows = false;
      if (row.best_ms < 0.0 || ms < row.best_ms) row.best_ms = ms;
    }
    row.qps = row.best_ms > 0.0 ? 1000.0 * queries.size() / row.best_ms : 0.0;
    row.p50_ms = hist.PercentileMicros(0.5) / 1000.0;
    row.p99_ms = hist.PercentileMicros(0.99) / 1000.0;
    std::cout << "  " << std::left << std::setw(16) << row.engine
              << std::right << "1 thread(s) " << std::fixed
              << std::setprecision(1) << std::setw(9) << row.best_ms
              << " ms  " << std::setprecision(0) << std::setw(9) << row.qps
              << " qps  " << std::setprecision(2) << "p50 " << row.p50_ms
              << " / p99 " << row.p99_ms << " ms\n";
    rows.push_back(row);
  }

  const double speedup_vs_legacy_1t =
      planned_1t_ms > 0.0 ? legacy_1t_ms / planned_1t_ms : 0.0;
  const double speedup_vs_greedy_1t =
      planned_1t_ms > 0.0 ? greedy_1t_ms / planned_1t_ms : 0.0;
  std::cout << std::fixed << std::setprecision(2)
            << "planned vs legacy at 1 thread: " << speedup_vs_legacy_1t
            << "x, vs greedy: " << speedup_vs_greedy_1t << "x\n";

  // ---- Part 2: multi-join workload, planned vs greedy + plan cache ----
  const size_t kNumMultiJoin = 120;
  std::vector<std::string> multi_texts =
      GenerateMultiJoinQueries(store, kNumMultiJoin, /*seed=*/0xbeef);
  std::vector<Query> multi_queries;
  for (const std::string& text : multi_texts) {
    alex::Result<Query> parsed = alex::sparql::ParseQuery(text);
    ALEX_CHECK(parsed.ok()) << text << ": " << parsed.status().ToString();
    multi_queries.push_back(std::move(parsed).value());
  }
  std::cout << "== Multi-join workload (>= 4 patterns/query) ==\n  "
            << kNumMultiJoin << " queries\n";

  bool multijoin_identical = true;
  uint64_t multi_expected_rows = 0;
  {
    ExecuteOptions legacy_options;
    legacy_options.engine = ExecutorKind::kLegacy;
    ExecuteOptions greedy_options;
    greedy_options.engine = ExecutorKind::kGreedy;
    greedy_options.stats = &stats;
    ExecuteOptions planned_options;
    planned_options.stats = &stats;
    for (size_t i = 0; i < multi_queries.size(); ++i) {
      const Query& query = multi_queries[i];
      std::vector<Binding> legacy = SortedRows(query, store, legacy_options);
      std::vector<Binding> greedy = SortedRows(query, store, greedy_options);
      std::vector<Binding> planned =
          SortedRows(query, store, planned_options);
      if (greedy != legacy || planned != legacy) {
        multijoin_identical = false;
        std::cerr << "MULTI-JOIN ROW MISMATCH between engines!\n  "
                  << multi_texts[i] << "\n  legacy=" << legacy.size()
                  << " greedy=" << greedy.size()
                  << " planned=" << planned.size() << " rows\n";
        break;
      }
      multi_expected_rows += legacy.size();
    }
  }
  std::cout << "  identity check: "
            << (multijoin_identical ? "all engines agree" : "MISMATCH")
            << " (" << multi_expected_rows << " total rows)\n";

  double multi_greedy_ms = -1.0;
  double multi_planned_ms = -1.0;
  {
    ThreadPool pool(1);
    ExecuteOptions greedy_options;
    greedy_options.engine = ExecutorKind::kGreedy;
    greedy_options.stats = &stats;
    ExecuteOptions planned_options;
    planned_options.stats = &stats;
    for (int rep = 0; rep < kRepeats; ++rep) {
      TimedRun greedy_run = RunAll(multi_queries, store, greedy_options,
                                   &pool);
      TimedRun planned_run = RunAll(multi_queries, store, planned_options,
                                    &pool);
      if (greedy_run.rows != multi_expected_rows ||
          planned_run.rows != multi_expected_rows) {
        multijoin_identical = false;
        std::cerr << "MULTI-JOIN ROW COUNT DRIFT in timed run\n";
      }
      if (multi_greedy_ms < 0.0 || greedy_run.ms < multi_greedy_ms) {
        multi_greedy_ms = greedy_run.ms;
      }
      if (multi_planned_ms < 0.0 || planned_run.ms < multi_planned_ms) {
        multi_planned_ms = planned_run.ms;
      }
    }
  }
  const double speedup_multijoin =
      multi_planned_ms > 0.0 ? multi_greedy_ms / multi_planned_ms : 0.0;
  std::cout << std::fixed << std::setprecision(1) << "  greedy  "
            << multi_greedy_ms << " ms\n  planned " << multi_planned_ms
            << " ms\n" << std::setprecision(2)
            << "  planned vs greedy (multi-join): " << speedup_multijoin
            << "x\n";

  // Plan cache over repeated epochs of the same workload: epoch 0 compiles
  // everything (all misses), later epochs must hit. Cached plans must
  // return exactly the rows a fresh compile returns.
  double plan_cache_hit_rate = 0.0;
  bool plan_cache_exact = true;
  {
    alex::sparql::PlanCache plan_cache;
    const int kEpochs = 5;
    size_t hits = 0, lookups = 0;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      for (size_t i = 0; i < multi_texts.size(); ++i) {
        alex::Result<const alex::sparql::CompiledQuery*> plan =
            plan_cache.GetPlan(multi_texts[i], store, &stats);
        ALEX_CHECK(plan.ok()) << plan.status().ToString();
        ExecuteOptions options;
        options.plan = plan.value();
        options.stats = &stats;
        alex::Result<std::vector<Binding>> cached_rows = alex::sparql::Execute(
            *plan.value()->query, store, options);
        ALEX_CHECK(cached_rows.ok()) << cached_rows.status().ToString();
        if (epoch == 0) {
          std::vector<Binding> sorted = cached_rows.value();
          std::sort(sorted.begin(), sorted.end());
          ExecuteOptions fresh_options;
          fresh_options.stats = &stats;
          if (sorted != SortedRows(multi_queries[i], store, fresh_options)) {
            plan_cache_exact = false;
          }
        }
      }
      alex::sparql::PlanCache::Stats cache_stats = plan_cache.TakeStats();
      hits += cache_stats.plan_hits;
      lookups += cache_stats.plan_hits + cache_stats.plan_misses;
    }
    plan_cache_hit_rate =
        lookups > 0 ? static_cast<double>(hits) / lookups : 0.0;
    std::cout << "  plan cache hit rate over " << kEpochs
              << " epochs: " << std::setprecision(3) << plan_cache_hit_rate
              << (plan_cache_exact ? "" : " (CACHED PLAN MISMATCH!)") << "\n";
  }
  identical_rows = identical_rows && multijoin_identical && plan_cache_exact;

  // ---- Part 3: federated query cache across episodes ----
  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);
  alex::eval::WorkloadOptions workload_options;
  workload_options.num_queries = 250;
  std::vector<alex::eval::WorkloadQuery> workload =
      alex::eval::GenerateWorkload(world, workload_options);

  alex::fed::LinkSet links;
  for (const alex::linking::Link& link : initial) links.Add(link);
  alex::fed::FederatedQueryCache cache;
  std::vector<const TripleStore*> sources = {&world.left, &world.right};
  alex::fed::FederatedEngine cached_engine(sources, &links);
  cached_engine.set_cache(&cache);
  alex::fed::FederatedEngine uncached_engine(sources, &links);

  const int kEpisodes = 8;
  const size_t kChurnPerEpisode = 10;
  struct EpisodeRow {
    int episode = 0;
    size_t hits = 0;
    size_t misses = 0;
    double hit_rate = 0.0;
    double cached_ms = 0.0;
    double uncached_ms = 0.0;
  };
  std::vector<EpisodeRow> episodes;
  bool cache_exact = true;
  alex::LatencyHistogram cached_latency;  // per-query, all episodes
  std::cout << "== Federated cache: hit rate per episode ==\n"
            << "  " << workload.size() << " queries/episode, "
            << initial.size() << " links, toggling " << kChurnPerEpisode
            << " links between episodes\n";

  for (int episode = 0; episode < kEpisodes; ++episode) {
    EpisodeRow row;
    row.episode = episode;

    auto cached_start = std::chrono::steady_clock::now();
    for (const alex::eval::WorkloadQuery& query : workload) {
      auto query_start = std::chrono::steady_clock::now();
      alex::Result<alex::fed::FederatedResult> answers =
          cached_engine.ExecuteText(query.text);
      ALEX_CHECK(answers.ok()) << answers.status().ToString();
      cached_latency.Record(
          static_cast<int64_t>(MsSince(query_start) * 1000.0));
    }
    row.cached_ms = MsSince(cached_start);

    // Sampled exactness: every 10th query re-runs uncached and must match
    // the cached answers row for row (provenance included).
    auto uncached_start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < workload.size(); i += 10) {
      alex::Result<alex::fed::FederatedResult> cached =
          cached_engine.ExecuteText(workload[i].text);
      alex::Result<alex::fed::FederatedResult> fresh =
          uncached_engine.ExecuteText(workload[i].text);
      ALEX_CHECK(cached.ok() && fresh.ok());
      const std::vector<alex::fed::FederatedAnswer>& cached_rows =
          cached.value().answers;
      const std::vector<alex::fed::FederatedAnswer>& fresh_rows =
          fresh.value().answers;
      bool same = cached_rows.size() == fresh_rows.size();
      for (size_t j = 0; same && j < cached_rows.size(); ++j) {
        same = cached_rows[j].binding == fresh_rows[j].binding &&
               cached_rows[j].links_used.size() ==
                   fresh_rows[j].links_used.size();
      }
      if (!same) cache_exact = false;
    }
    row.uncached_ms = MsSince(uncached_start);

    alex::fed::FederatedQueryCache::Stats stats_now = cache.TakeStats();
    row.hits = stats_now.hits;
    row.misses = stats_now.misses;
    row.hit_rate =
        stats_now.hits + stats_now.misses > 0
            ? static_cast<double>(stats_now.hits) /
                  static_cast<double>(stats_now.hits + stats_now.misses)
            : 0.0;
    std::cout << "  episode " << episode << ": " << row.hits << " hits, "
              << row.misses << " misses (hit rate " << std::fixed
              << std::setprecision(3) << row.hit_rate << ")\n";
    episodes.push_back(row);

    // Between episodes, toggle a sliding window of links — the same
    // add/remove + InvalidateLink flow the query-driven loop's observer
    // performs at episode boundaries.
    for (size_t k = 0; k < kChurnPerEpisode && k < initial.size(); ++k) {
      const alex::linking::Link& link =
          initial[(static_cast<size_t>(episode) * kChurnPerEpisode + k) %
                  initial.size()];
      if (links.Contains(link.left, link.right)) {
        links.Remove(link.left, link.right);
      } else {
        links.Add(link);
      }
      cache.InvalidateLink(link);
    }
  }
  std::cout << (cache_exact
                    ? "cached answers identical to uncached re-execution\n"
                    : "CACHE MISMATCH vs uncached re-execution!\n");

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << std::fixed << std::setprecision(3);
  out << "{\n"
      << "  \"bench\": \"query_exec\",\n"
      << "  \"world\": \"dbpedia_nytimes\",\n"
      << "  \"num_queries\": " << queries.size() << ",\n"
      << "  \"total_rows\": " << expected_rows << ",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"identical_rows\": " << (identical_rows ? "true" : "false")
      << ",\n"
      << "  \"speedup_planned_vs_legacy_1thread\": " << speedup_vs_legacy_1t
      << ",\n"
      << "  \"speedup_planned_vs_greedy_1thread\": " << speedup_vs_greedy_1t
      << ",\n"
      << "  \"multijoin_num_queries\": " << multi_queries.size() << ",\n"
      << "  \"multijoin_total_rows\": " << multi_expected_rows << ",\n"
      << "  \"multijoin_identical_rows\": "
      << (multijoin_identical ? "true" : "false") << ",\n"
      << "  \"speedup_planned_vs_greedy_multijoin\": " << speedup_multijoin
      << ",\n"
      << "  \"plan_cache_hit_rate\": " << plan_cache_hit_rate << ",\n"
      << "  \"plan_cache_exact\": " << (plan_cache_exact ? "true" : "false")
      << ",\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"engine\": \"" << row.engine << "\", \"threads\": "
        << row.threads << ", \"ms\": " << row.best_ms << ", \"qps\": "
        << row.qps << ", \"p50_ms\": " << row.p50_ms << ", \"p99_ms\": "
        << row.p99_ms << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"federated_cache\": {\n"
      << "    \"queries_per_episode\": " << workload.size() << ",\n"
      << "    \"links_toggled_per_episode\": " << kChurnPerEpisode << ",\n"
      << "    \"cache_exact\": " << (cache_exact ? "true" : "false") << ",\n"
      << "    \"p50_ms\": " << cached_latency.PercentileMicros(0.5) / 1000.0
      << ",\n"
      << "    \"p90_ms\": " << cached_latency.PercentileMicros(0.9) / 1000.0
      << ",\n"
      << "    \"p99_ms\": " << cached_latency.PercentileMicros(0.99) / 1000.0
      << ",\n"
      << "    \"episodes\": [\n";
  for (size_t i = 0; i < episodes.size(); ++i) {
    const EpisodeRow& row = episodes[i];
    out << "      {\"episode\": " << row.episode << ", \"hits\": "
        << row.hits << ", \"misses\": " << row.misses << ", \"hit_rate\": "
        << row.hit_rate << ", \"cached_ms\": " << row.cached_ms
        << ", \"uncached_sampled_ms\": " << row.uncached_ms << "}"
        << (i + 1 < episodes.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }\n}\n";
  std::cout << "(json written to " << out_path << ")\n";
  return identical_rows && cache_exact ? 0 : 1;
}
