// Feedback-at-scale benchmark (ISSUE 9 perf trajectory), two parts:
//
//   1. Aggregator throughput: votes/sec and verdicts/sec through the
//      sharded FeedbackAggregator vs the single-lock configuration
//      (num_shards = 1) at 1/2/4 writer threads, over a fixed pre-built
//      vote schedule. Correctness gate: the concatenated drained verdict
//      batches are byte-identical across every thread count and shard
//      count — the batch is a pure function of the per-link vote
//      multisets, never of arrival order.
//
//   2. Feedback efficiency: episodes to reach the convergence F-measure
//      under prioritized (uncertainty-weighted) link sampling vs the
//      uniform baseline, at an equal per-episode vote budget through the
//      full vote-driven pipeline. Gate: prioritized needs no more
//      episodes than uniform.
//
// The bench exits nonzero if either gate fails.
// Writes BENCH_feedback.json (path via --out).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/alex_engine.h"
#include "datagen/profiles.h"
#include "eval/vote_driven.h"
#include "feedback/aggregator.h"
#include "linking/paris.h"

namespace {

using alex::feedback::AggregatorOptions;
using alex::feedback::FeedbackAggregator;
using alex::feedback::LinkVerdict;
using alex::linking::Link;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// SplitMix64 — cheap deterministic bits for the synthetic vote schedule.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct ScheduledVote {
  uint32_t link = 0;
  bool approve = false;
};

// -- Part 1: aggregator throughput ----------------------------------------

constexpr size_t kLinks = 8000;
constexpr size_t kVotesPerEpoch = 40000;
constexpr int kEpochs = 6;
constexpr int kThroughputRepeats = 5;

struct ThroughputOutcome {
  double ms = 0.0;
  uint64_t verdicts = 0;
  std::string batches;  // canonical text of every drained batch, in order
};

// Casts the fixed schedule through `threads` writers into an aggregator of
// `shards` shards, draining once per epoch. Only AddVote + DrainVerdicts
// are timed; the schedule and link table are prepared by the caller and the
// batch serialization happens after the clock stops.
ThroughputOutcome RunThroughput(const std::vector<Link>& links,
                                const std::vector<ScheduledVote>& schedule,
                                int threads, size_t shards) {
  AggregatorOptions options;
  options.quorum = 3;
  options.num_shards = shards;
  FeedbackAggregator aggregator(options);

  ThroughputOutcome outcome;
  std::vector<std::vector<LinkVerdict>> drained;
  drained.reserve(kEpochs);
  auto start = std::chrono::steady_clock::now();
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    const size_t begin = (epoch - 1) * kVotesPerEpoch;
    auto cast = [&](int thread_index) {
      for (size_t v = begin + static_cast<size_t>(thread_index);
           v < begin + kVotesPerEpoch; v += static_cast<size_t>(threads)) {
        const ScheduledVote& vote = schedule[v];
        aggregator.AddVote(links[vote.link], vote.approve);
      }
    };
    if (threads > 1) {
      std::vector<std::thread> writers;
      writers.reserve(static_cast<size_t>(threads) - 1);
      for (int t = 1; t < threads; ++t) writers.emplace_back(cast, t);
      cast(0);
      for (std::thread& w : writers) w.join();
    } else {
      cast(0);
    }
    drained.push_back(
        aggregator.DrainVerdicts(static_cast<uint64_t>(epoch)));
  }
  outcome.ms = MsSince(start);

  std::ostringstream batches;
  for (size_t epoch = 0; epoch < drained.size(); ++epoch) {
    for (const LinkVerdict& verdict : drained[epoch]) {
      batches << verdict.link.left << '|' << verdict.link.right << '|'
              << verdict.approve << '|' << verdict.positive << '|'
              << verdict.negative << '\n';
      ++outcome.verdicts;
    }
    batches << "-- epoch " << epoch + 1 << '\n';
  }
  outcome.batches = batches.str();
  return outcome;
}

// -- Part 2: prioritized vs uniform convergence ---------------------------

constexpr double kConvergenceF = 0.95;

// First episode whose F-measure reaches the threshold; max_episodes + 1
// when the run never gets there (so "never" loses every comparison).
int EpisodesToThreshold(const alex::eval::ExperimentResult& result,
                        int max_episodes) {
  for (const alex::eval::EpisodePoint& point : result.series) {
    if (point.quality.f_measure >= kConvergenceF) return point.episode;
  }
  return max_episodes + 1;
}

alex::eval::ExperimentResult RunVoteDriven(
    const alex::datagen::GeneratedWorld& world,
    const std::vector<Link>& initial, bool prioritized) {
  alex::core::AlexOptions options;
  options.num_partitions = 2;
  options.num_threads = 1;
  options.prioritized_sampling = prioritized;
  alex::core::AlexEngine engine(&world.left, &world.right, options);
  alex::Status status = engine.Initialize(initial);
  ALEX_CHECK(status.ok()) << status.ToString();

  alex::feedback::GroundTruth truth(world.ground_truth);
  alex::eval::VoteDrivenOptions vote_options;
  vote_options.links_per_episode = 150;
  vote_options.users_per_link = 5;
  vote_options.vote_error_rate = 0.1;
  vote_options.max_episodes = 20;
  vote_options.vote_threads = 2;
  vote_options.aggregator.quorum = 3;
  return alex::eval::RunVoteDrivenExperiment(&engine, truth, vote_options);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_feedback.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  // -- Part 1 --------------------------------------------------------------
  std::cout << "== Feedback aggregation: verdicts/sec, sharded vs "
               "single-lock ==\n"
            << kLinks << " links, " << kEpochs << " epochs of "
            << kVotesPerEpoch << " votes, quorum 3, best of "
            << kThroughputRepeats << "\n";

  std::vector<Link> links;
  links.reserve(kLinks);
  for (size_t i = 0; i < kLinks; ++i) {
    links.push_back(Link{"http://left.example/e" + std::to_string(i),
                         "http://right.example/e" + std::to_string(i), 0.9});
  }
  // ~80% of links lean approve, the rest lean reject; each individual vote
  // dissents with 15% probability, so quorums keep re-forming every epoch.
  std::vector<ScheduledVote> schedule(kVotesPerEpoch * kEpochs);
  for (size_t v = 0; v < schedule.size(); ++v) {
    ScheduledVote& vote = schedule[v];
    vote.link = static_cast<uint32_t>(Mix(v * 2 + 1) % kLinks);
    const bool leaning = Mix(vote.link * 2 + 1) % 10 < 8;
    vote.approve = Mix(v * 2 + 2) % 100 < 15 ? !leaning : leaning;
  }

  struct Row {
    int threads = 0;
    size_t shards = 0;
    double best_ms = 0.0;
    uint64_t verdicts = 0;
  };
  std::vector<Row> rows;
  std::string reference_batches;
  bool identical_batches = true;
  // Repeats interleave the two shard configurations back to back so host
  // load drifts (this may run on a shared single-core container) hit both
  // equally; each row keeps its best repeat.
  for (int threads : {1, 2, 4}) {
    for (size_t shards : {size_t{1}, size_t{16}}) {
      Row row;
      row.threads = threads;
      row.shards = shards;
      row.best_ms = -1.0;
      rows.push_back(row);
    }
    for (int rep = 0; rep < kThroughputRepeats; ++rep) {
      for (Row& row : rows) {
        if (row.threads != threads) continue;
        ThroughputOutcome outcome =
            RunThroughput(links, schedule, threads, row.shards);
        if (reference_batches.empty()) {
          reference_batches = outcome.batches;
        } else if (outcome.batches != reference_batches) {
          identical_batches = false;
        }
        if (row.best_ms < 0.0 || outcome.ms < row.best_ms) {
          row.best_ms = outcome.ms;
          row.verdicts = outcome.verdicts;
        }
      }
    }
  }
  for (const Row& row : rows) {
    const double votes_per_sec =
        1000.0 * static_cast<double>(schedule.size()) / row.best_ms;
    std::cout << "  " << row.threads << " thread(s), " << std::setw(2)
              << row.shards << " shard(s): " << std::fixed
              << std::setprecision(1) << std::setw(8) << row.best_ms
              << " ms  " << std::setw(10) << std::setprecision(0)
              << votes_per_sec << " votes/sec  " << row.verdicts
              << " verdicts\n";
  }
  std::cout << (identical_batches
                    ? "all configurations drained identical verdict batches\n"
                    : "BATCH MISMATCH across configurations!\n");

  // Gate on the best configuration each design reaches. On a many-core box
  // the sharded peak is the contended 4-thread row and lands well above
  // 1.0x; on a single hardware thread the two designs do identical per-vote
  // work and the ratio hovers at 1.0x, so the hard gate allows a 10% noise
  // band rather than flaking on scheduler jitter.
  double single_peak_ms = -1.0, sharded_peak_ms = -1.0;
  double single_4t_ms = 0.0, sharded_4t_ms = 0.0;
  for (const Row& row : rows) {
    double& peak = row.shards == 1 ? single_peak_ms : sharded_peak_ms;
    if (peak < 0.0 || row.best_ms < peak) peak = row.best_ms;
    if (row.threads == 4 && row.shards == 1) single_4t_ms = row.best_ms;
    if (row.threads == 4 && row.shards == 16) sharded_4t_ms = row.best_ms;
  }
  const double speedup_peak =
      sharded_peak_ms > 0.0 ? single_peak_ms / sharded_peak_ms : 0.0;
  const double speedup_4t =
      sharded_4t_ms > 0.0 ? single_4t_ms / sharded_4t_ms : 0.0;
  const bool sharded_not_slower = speedup_peak >= 0.9;
  std::cout << "sharded vs single-lock: " << std::fixed
            << std::setprecision(2) << speedup_peak << "x at peak, "
            << speedup_4t << "x at 4 threads\n";

  // -- Part 2 --------------------------------------------------------------
  std::cout << "\n== Prioritized vs uniform sampling: episodes to F >= "
            << std::setprecision(2) << kConvergenceF
            << " at equal vote budget ==\n";
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(alex::datagen::TinyTestProfile());
  std::vector<Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right), 0.95);

  alex::eval::ExperimentResult uniform =
      RunVoteDriven(world, initial, /*prioritized=*/false);
  alex::eval::ExperimentResult prioritized =
      RunVoteDriven(world, initial, /*prioritized=*/true);
  const int max_episodes = 20;
  const int uniform_episodes = EpisodesToThreshold(uniform, max_episodes);
  const int prioritized_episodes =
      EpisodesToThreshold(prioritized, max_episodes);
  const bool prioritized_not_slower =
      prioritized_episodes <= uniform_episodes;
  auto describe = [max_episodes](const char* label, int episodes,
                                 const alex::eval::ExperimentResult& r) {
    std::cout << "  " << label << ": ";
    if (episodes > max_episodes) {
      std::cout << "not reached in " << max_episodes << " episodes";
    } else {
      std::cout << "episode " << episodes;
    }
    std::cout << " (final F " << std::fixed << std::setprecision(3)
              << r.final_quality().f_measure << ", "
              << r.series.back().stats.votes_recorded << " votes)\n";
  };
  describe("uniform    ", uniform_episodes, uniform);
  describe("prioritized", prioritized_episodes, prioritized);

  // -- JSON ----------------------------------------------------------------
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << std::fixed << std::setprecision(3);
  out << "{\n"
      << "  \"bench\": \"feedback\",\n"
      << "  \"links\": " << kLinks << ",\n"
      << "  \"votes\": " << schedule.size() << ",\n"
      << "  \"epochs\": " << kEpochs << ",\n"
      << "  \"repeats\": " << kThroughputRepeats << ",\n"
      << "  \"identical_batches\": "
      << (identical_batches ? "true" : "false") << ",\n"
      << "  \"sharded_vs_single_speedup_peak\": " << speedup_peak << ",\n"
      << "  \"sharded_vs_single_speedup_4t\": " << speedup_4t << ",\n"
      << "  \"sharded_not_slower\": "
      << (sharded_not_slower ? "true" : "false") << ",\n"
      << "  \"convergence_f\": " << kConvergenceF << ",\n"
      << "  \"uniform_episodes\": " << uniform_episodes << ",\n"
      << "  \"prioritized_episodes\": " << prioritized_episodes << ",\n"
      << "  \"prioritized_not_slower\": "
      << (prioritized_not_slower ? "true" : "false") << ",\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"threads\": " << row.threads << ", \"shards\": "
        << row.shards << ", \"ms\": " << row.best_ms
        << ", \"votes_per_sec\": "
        << 1000.0 * static_cast<double>(schedule.size()) / row.best_ms
        << ", \"verdicts_per_sec\": "
        << 1000.0 * static_cast<double>(row.verdicts) / row.best_ms << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << out_path << ")\n";

  return identical_batches && sharded_not_slower && prioritized_not_slower
             ? 0
             : 1;
}
