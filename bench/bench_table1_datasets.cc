// Table 1: the data sets used in the experiments. The paper lists name,
// version, field, and triple counts for the LOD data sets; this prints the
// same table for their synthetic stand-ins (plus ground-truth sizes, which
// the paper reports in §7.2's text).
#include <iomanip>
#include <iostream>

#include "datagen/profiles.h"
#include "rdf/dataset_stats.h"

namespace {

const char* FieldOf(const std::string& profile) {
  if (profile.find("nba") != std::string::npos) return "Basketball";
  if (profile.find("drugbank") != std::string::npos) return "Life Sciences";
  if (profile.find("lexvo") != std::string::npos) return "Linguistics";
  if (profile.find("swdf") != std::string::npos) return "Publications";
  if (profile.find("nytimes") != std::string::npos) return "Media";
  return "Multi-domain";
}

}  // namespace

int main() {
  std::cout << "== Table 1: data sets used in the experiments ==\n";
  std::cout << std::left << std::setw(22) << "pair" << std::setw(14)
            << "field" << std::right << std::setw(10) << "L-trip"
            << std::setw(10) << "R-trip" << std::setw(8) << "L-ent"
            << std::setw(8) << "R-ent" << std::setw(8) << "truth" << "\n";
  for (const std::string& name : alex::datagen::AllProfileNames()) {
    if (name == "tiny") continue;
    alex::datagen::WorldProfile profile;
    alex::datagen::ProfileByName(name, &profile);
    alex::datagen::GeneratedWorld world = alex::datagen::Generate(profile);
    alex::rdf::DatasetStats left = alex::rdf::ComputeStats(world.left);
    alex::rdf::DatasetStats right = alex::rdf::ComputeStats(world.right);
    std::cout << std::left << std::setw(22) << name << std::setw(14)
              << FieldOf(name) << std::right << std::setw(10) << left.triples
              << std::setw(10) << right.triples << std::setw(8)
              << left.subjects << std::setw(8) << right.subjects
              << std::setw(8) << world.ground_truth.size() << "\n";
  }
  std::cout << "\n(Synthetic stand-ins for the paper's LOD data sets; see\n"
            << " DESIGN.md 'Substitutions'. Paper scale is ~10-100x larger.)"
            << "\n";
  return 0;
}
