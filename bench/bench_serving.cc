// Snapshot-isolated serving tier benchmark.
//
// Part 1 gates the snapshot indirection itself: the same federated workload
// runs on a seed FederatedEngine (mutable LinkSet, no caches) and through
// ServingEngine::ExecuteText (atomic epoch pin + LinkView virtual dispatch,
// caches disabled so only the indirection is timed). The answers must be
// identical row for row and the single-stream overhead is reported
// (expected < 5%). A third cached configuration shows what the carried
// epoch caches buy on a repeated workload.
//
// Part 2 runs the live-learner serving experiment at 1/2/4/8 reader
// streams with the identity gate on: every recorded stream answer set is
// replayed sequentially against its pinned epoch and must hash identically.
// Reports per-stream-count throughput (answers/sec across streams),
// serving-latency percentiles, and the epoch lifecycle counters.
//
// Writes BENCH_serving.json (path via --out). Exits nonzero if any
// identity gate fails.
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/query_workload.h"
#include "federation/federated_engine.h"
#include "linking/paris.h"
#include "serving/serving_engine.h"
#include "serving/serving_loop.h"

namespace {

using alex::fed::FederatedResult;
using alex::rdf::TripleStore;
using alex::serving::ServingEngine;
using alex::serving::ServingOptions;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct StreamRow {
  size_t streams = 0;
  size_t stream_queries = 0;
  uint64_t stream_rows = 0;
  double answers_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t epochs_published = 0;
  uint64_t snapshots_retired = 0;
  uint64_t max_concurrent_readers = 0;
  size_t identity_replayed = 0;
  bool identity = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  (void)world.left.size();  // build indexes before timing / sharing
  (void)world.right.size();

  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);
  alex::eval::WorkloadOptions workload_options;
  workload_options.num_queries = 250;
  std::vector<alex::eval::WorkloadQuery> workload =
      alex::eval::GenerateWorkload(world, workload_options);
  std::vector<const TripleStore*> sources = {&world.left, &world.right};

  std::cout << "== Serving tier: snapshot indirection ==\n"
            << "world dbpedia_nytimes: " << world.left.size() << " + "
            << world.right.size() << " triples, " << initial.size()
            << " links, " << workload.size() << " queries\n";

  // ---- Part 1: epoch-pin indirection vs the seed engine ----
  alex::fed::LinkSet links;
  for (const alex::linking::Link& link : initial) links.Add(link);
  alex::fed::FederatedEngine direct_engine(sources, &links);

  ServingOptions plain_serving;
  plain_serving.sources = sources;
  plain_serving.use_query_cache = false;
  plain_serving.use_plan_cache = false;
  ServingEngine serving(plain_serving, initial);

  bool identical_answers = true;
  uint64_t total_rows = 0;
  for (const alex::eval::WorkloadQuery& query : workload) {
    alex::Result<FederatedResult> direct =
        direct_engine.ExecuteText(query.text);
    alex::Result<FederatedResult> pinned = serving.ExecuteText(query.text);
    ALEX_CHECK(direct.ok() && pinned.ok());
    bool same = alex::serving::HashAnswers(direct->answers) ==
                alex::serving::HashAnswers(pinned->answers);
    if (!same) {
      identical_answers = false;
      std::cerr << "ANSWER MISMATCH: " << query.text << "\n";
      break;
    }
    total_rows += direct->answers.size();
  }
  std::cout << "  identity check: "
            << (identical_answers ? "serving == direct" : "MISMATCH") << " ("
            << total_rows << " total rows)\n";

  const int kRepeats = 5;
  auto time_workload = [&](auto&& execute) {
    double best_ms = -1.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      auto start = std::chrono::steady_clock::now();
      for (const alex::eval::WorkloadQuery& query : workload) {
        ALEX_CHECK(execute(query.text));
      }
      double ms = MsSince(start);
      if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
    }
    return best_ms;
  };
  const double direct_ms = time_workload([&](const std::string& text) {
    return direct_engine.ExecuteText(text).ok();
  });
  const double serving_ms = time_workload([&](const std::string& text) {
    return serving.ExecuteText(text).ok();
  });
  const double overhead_pct =
      direct_ms > 0.0 ? 100.0 * (serving_ms - direct_ms) / direct_ms : 0.0;
  std::cout << std::fixed << std::setprecision(2) << "  direct   "
            << direct_ms << " ms\n  serving  " << serving_ms
            << " ms  (snapshot indirection overhead " << overhead_pct
            << "%)\n";

  // With the epoch caches on, the repeated workload is all hits after the
  // first pass — context for what the snapshot carries forward.
  ServingOptions cached_serving;
  cached_serving.sources = sources;
  ServingEngine serving_cached(cached_serving, initial);
  const double cached_ms = time_workload([&](const std::string& text) {
    return serving_cached.ExecuteText(text).ok();
  });
  std::cout << "  serving+cache " << cached_ms << " ms (repeated workload)\n";

  // ---- Part 2: live learner + concurrent streams, identity gated ----
  std::cout << "== Live learner with concurrent reader streams ==\n";
  alex::feedback::GroundTruth truth(world.ground_truth);
  const std::vector<size_t> kStreams = {1, 2, 4, 8};
  std::vector<StreamRow> stream_rows;
  bool streams_identical = true;
  for (size_t streams : kStreams) {
    alex::core::AlexOptions alex_options;
    alex_options.num_partitions = 2;
    alex_options.num_threads = 1;
    alex::core::AlexEngine engine(&world.left, &world.right, alex_options);
    ALEX_CHECK(engine.Initialize(initial).ok());

    alex::serving::ServingLoopOptions options;
    options.workload.num_queries = 200;
    options.episode_size = 150;
    options.max_episodes = 8;
    options.num_streams = streams;
    options.verify_identity = true;
    auto start = std::chrono::steady_clock::now();
    alex::serving::ServingRunResult result =
        alex::serving::RunServingExperiment(&engine, world, truth, options);
    const double wall_s = MsSince(start) / 1000.0;

    StreamRow row;
    row.streams = streams;
    row.stream_queries = result.stream_queries;
    row.stream_rows = result.stream_rows;
    row.answers_per_sec =
        wall_s > 0.0 ? static_cast<double>(result.stream_rows) / wall_s : 0.0;
    row.p50_ms = result.latency_p50_ms;
    row.p99_ms = result.latency_p99_ms;
    row.epochs_published = result.serving.epochs_published;
    row.snapshots_retired = result.serving.snapshots_retired;
    row.max_concurrent_readers = result.serving.max_concurrent_readers;
    row.identity_replayed = result.identity_replayed;
    row.identity = result.identity_ok() && result.identity_replayed > 0;
    if (!row.identity) streams_identical = false;
    stream_rows.push_back(row);
    std::cout << "  " << streams << " stream(s): " << row.stream_queries
              << " queries, " << std::setprecision(0) << row.answers_per_sec
              << " answers/s, p50 " << std::setprecision(2) << row.p50_ms
              << " / p99 " << row.p99_ms << " ms, " << row.epochs_published
              << " epochs, identity "
              << (row.identity ? "ok" : "FAILED") << " ("
              << row.identity_replayed << " replayed)\n";
  }

  const bool ok = identical_answers && streams_identical;
  const StreamRow& headline = stream_rows.back();  // 8 streams
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << std::fixed << std::setprecision(3);
  out << "{\n"
      << "  \"bench\": \"serving\",\n"
      << "  \"world\": \"dbpedia_nytimes\",\n"
      << "  \"num_queries\": " << workload.size() << ",\n"
      << "  \"total_rows\": " << total_rows << ",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"identical_answers\": "
      << (identical_answers ? "true" : "false") << ",\n"
      << "  \"identity\": " << (ok ? "true" : "false") << ",\n"
      << "  \"direct_ms\": " << direct_ms << ",\n"
      << "  \"serving_ms\": " << serving_ms << ",\n"
      << "  \"serving_cached_ms\": " << cached_ms << ",\n"
      << "  \"indirection_overhead_pct\": " << overhead_pct << ",\n"
      << "  \"overhead_under_5pct\": "
      << (overhead_pct < 5.0 ? "true" : "false") << ",\n"
      << "  \"answers_per_sec\": " << headline.answers_per_sec << ",\n"
      << "  \"p50_ms\": " << headline.p50_ms << ",\n"
      << "  \"p99_ms\": " << headline.p99_ms << ",\n"
      << "  \"epochs_published\": " << headline.epochs_published << ",\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < stream_rows.size(); ++i) {
    const StreamRow& row = stream_rows[i];
    out << "    {\"streams\": " << row.streams << ", \"stream_queries\": "
        << row.stream_queries << ", \"stream_rows\": " << row.stream_rows
        << ", \"answers_per_sec\": " << row.answers_per_sec
        << ", \"p50_ms\": " << row.p50_ms << ", \"p99_ms\": " << row.p99_ms
        << ", \"epochs_published\": " << row.epochs_published
        << ", \"snapshots_retired\": " << row.snapshots_retired
        << ", \"max_concurrent_readers\": " << row.max_concurrent_readers
        << ", \"identity_replayed\": " << row.identity_replayed
        << ", \"identity\": " << (row.identity ? "true" : "false") << "}"
        << (i + 1 < stream_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << out_path << ")\n";
  return ok ? 0 : 1;
}
