// Figure 9 (Appendix C): effect of incorrect feedback. 10% of the feedback
// items are flipped. Expected: recall is robust; precision slightly worse
// than with correct feedback (wrong links kept alive by erroneous
// approvals); overall degradation small.
#include "bench_common.h"

int main() {
  using alex::bench::Column;
  using alex::bench::Metric;

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  config.alex.max_episodes = 18;
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);

  config.feedback_error_rate = 0.0;
  alex::Result<alex::eval::ExperimentResult> correct =
      alex::eval::RunExperimentOnWorld(config, world, initial);
  ALEX_CHECK(correct.ok()) << correct.status().ToString();

  config.feedback_error_rate = 0.1;
  alex::Result<alex::eval::ExperimentResult> noisy =
      alex::eval::RunExperimentOnWorld(config, world, initial);
  ALEX_CHECK(noisy.ok()) << noisy.status().ToString();

  alex::bench::PrintComparison(
      "Figure 9(a): precision, correct vs 10% incorrect feedback",
      "precision", {"correct", "10% wrong"},
      {Column(correct.value(), Metric::kPrecision),
       Column(noisy.value(), Metric::kPrecision)});
  alex::bench::PrintComparison(
      "Figure 9(b): recall, correct vs 10% incorrect feedback", "recall",
      {"correct", "10% wrong"},
      {Column(correct.value(), Metric::kRecall),
       Column(noisy.value(), Metric::kRecall)});
  alex::bench::PrintComparison(
      "Figure 9(c): F-measure, correct vs 10% incorrect feedback",
      "f-measure", {"correct", "10% wrong"},
      {Column(correct.value(), Metric::kFMeasure),
       Column(noisy.value(), Metric::kFMeasure)});
  return 0;
}
