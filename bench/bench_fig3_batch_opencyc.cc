// Figure 3: quality of links between OpenCyc and NYTimes (a), Drugbank (b),
// and Lexvo (c) in batch mode — the same three regimes as Figure 2 on the
// smaller OpenCyc-side data sets.
#include "bench_common.h"

int main(int argc, char** argv) {
  alex::bench::SetCsvDirFromArgs(argc, argv);
  using alex::bench::MakeConfig;
  using alex::bench::RunAndPrint;
  RunAndPrint("Figure 3(a): OpenCyc - NYTimes (batch mode)",
              MakeConfig("opencyc_nytimes"));
  RunAndPrint("Figure 3(b): OpenCyc - Drugbank (batch mode)",
              MakeConfig("opencyc_drugbank"));
  RunAndPrint("Figure 3(c): OpenCyc - Lexvo (batch mode)",
              MakeConfig("opencyc_lexvo"));
  return 0;
}
