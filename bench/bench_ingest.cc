// Live triple-ingest benchmark (ISSUE 10 tentpole): per-epoch world growth
// folded into the engine with AlexEngine::IngestTriples — the incremental
// path (blocking-index AddRights sidecars + FeatureSpace::Grow overflow
// entries) vs. the baseline that rebuilds the blocking index and the score
// arenas from scratch on every ingest epoch.
//
// Correctness gate (the bench exits nonzero if it fails): after EVERY
// ingest epoch the two engines must agree on the shared blocking-index
// fingerprint and every per-partition feature-space fingerprint — the
// incremental engine is bit-for-bit the same state as a full rebuild.
// Perf gate: ingest must be at least 10x faster than rebuild at 1% entity
// growth per epoch.
//
// Writes BENCH_ingest.json (path via --out).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/alex_engine.h"
#include "datagen/world.h"
#include "linking/paris.h"

namespace {

using alex::core::AlexEngine;
using alex::core::PartitionAlex;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// One engine plus the world it mutates. The two modes get separately
// generated (identical) worlds because ingest mutates the stores in place.
struct ModeRun {
  explicit ModeRun(const alex::eval::ExperimentConfig& config,
                   bool incremental)
      : world(alex::datagen::Generate(config.profile)) {
    alex::core::AlexOptions options = config.alex;
    options.incremental_ingest = incremental;
    engine = std::make_unique<AlexEngine>(&world.left, &world.right, options);
    std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
        alex::linking::RunParis(world.left, world.right),
        config.paris_threshold);
    alex::Status status = engine->Initialize(initial);
    ALEX_CHECK(status.ok()) << status.message();
  }

  alex::datagen::GeneratedWorld world;
  std::unique_ptr<AlexEngine> engine;
  double total_ms = 0.0;
};

uint64_t BlockingFingerprint(const AlexEngine& engine) {
  return engine.right_context()->index.Fingerprint();
}

std::vector<uint64_t> PartitionFingerprints(const AlexEngine& engine) {
  std::vector<uint64_t> fingerprints;
  for (const PartitionAlex& partition : engine.partitions()) {
    fingerprints.push_back(partition.space().Fingerprint());
  }
  return fingerprints;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  const double kGrowthFraction = 0.01;  // 1% entity growth per epoch
  const int kEpochs = 20;
  const uint64_t kGrowthSeed = 7;

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  ModeRun ingest(config, /*incremental=*/true);
  ModeRun rebuild(config, /*incremental=*/false);
  // Untimed empty-ingest warmup: builds the one-time lazy ingest structures
  // (the left-side reverse-probe index and the forward probe-key caches for
  // the incremental engine; a no-op arena rebuild for the baseline) so the
  // timed epochs below measure steady-state ingest, not first-epoch setup.
  {
    alex::Status warm = ingest.engine->IngestTriples();
    ALEX_CHECK(warm.ok()) << warm.message();
    warm = rebuild.engine->IngestTriples();
    ALEX_CHECK(warm.ok()) << warm.message();
  }
  alex::datagen::GrowthSchedule schedule = alex::datagen::GrowWorld(
      config.profile, kGrowthSeed, kGrowthFraction, kEpochs);

  std::cout << "== Live triple ingest vs. rebuild-every-epoch ==\n"
            << "world dbpedia_nytimes: "
            << ingest.world.left.Subjects().size() << " + "
            << ingest.world.right.Subjects().size() << " entities, "
            << kEpochs << " ingest epochs at " << kGrowthFraction * 100
            << "% growth/epoch\n";

  AlexEngine::IngestStats ingest_stats;
  AlexEngine::IngestStats rebuild_stats;
  size_t triples_ingested = 0;
  size_t entities_added = 0;
  size_t overflow_entries = 0;
  bool identical = true;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const alex::datagen::GrowthEpoch& growth = schedule.epochs[epoch];
    // Both worlds mutate identically, outside the timed regions.
    alex::datagen::ApplyGrowthEpoch(growth, &ingest.world.left,
                                    &ingest.world.right);
    alex::datagen::ApplyGrowthEpoch(growth, &rebuild.world.left,
                                    &rebuild.world.right);

    auto inc_start = std::chrono::steady_clock::now();
    alex::Status inc_status = ingest.engine->IngestTriples(&ingest_stats);
    ingest.total_ms += MsSince(inc_start);
    ALEX_CHECK(inc_status.ok()) << inc_status.message();

    auto reb_start = std::chrono::steady_clock::now();
    alex::Status reb_status = rebuild.engine->IngestTriples(&rebuild_stats);
    rebuild.total_ms += MsSince(reb_start);
    ALEX_CHECK(reb_status.ok()) << reb_status.message();

    triples_ingested += ingest_stats.triples_ingested;
    entities_added +=
        ingest_stats.new_left_entities + ingest_stats.new_right_entities;
    overflow_entries += ingest_stats.overflow_entries;

    // Identity gate, outside both timed regions.
    if (BlockingFingerprint(*ingest.engine) !=
            BlockingFingerprint(*rebuild.engine) ||
        PartitionFingerprints(*ingest.engine) !=
            PartitionFingerprints(*rebuild.engine)) {
      identical = false;
      std::cerr << "FINGERPRINT MISMATCH at ingest epoch " << epoch << "\n";
      break;
    }
  }

  const double speedup =
      ingest.total_ms > 0.0 ? rebuild.total_ms / ingest.total_ms : 0.0;
  std::cout << std::fixed
            << "  incremental (IngestTriples)   " << std::setw(9)
            << std::setprecision(2) << ingest.total_ms << " ms total  "
            << std::setw(8) << std::setprecision(4)
            << ingest.total_ms / kEpochs << " ms/epoch  ("
            << overflow_entries << " overflow entries, "
            << ingest_stats.blocking_merges << " blocking merges)\n"
            << "  rebuild (index + arenas)      " << std::setw(9)
            << std::setprecision(2) << rebuild.total_ms << " ms total  "
            << std::setw(8) << std::setprecision(4)
            << rebuild.total_ms / kEpochs << " ms/epoch\n"
            << "  " << triples_ingested << " triples / " << entities_added
            << " entities ingested\n"
            << "  speedup " << std::setprecision(1) << speedup
            << "x (gate: >= 10x)\n"
            << (identical
                    ? "fingerprints identical after every ingest epoch\n"
                    : "FINGERPRINT MISMATCH!\n");

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << std::fixed << std::setprecision(3);
  out << "{\n"
      << "  \"bench\": \"ingest\",\n"
      << "  \"world\": \"dbpedia_nytimes\",\n"
      << "  \"growth_fraction\": " << kGrowthFraction << ",\n"
      << "  \"epochs\": " << kEpochs << ",\n"
      << "  \"triples_ingested\": " << triples_ingested << ",\n"
      << "  \"entities_added\": " << entities_added << ",\n"
      << "  \"identical_fingerprints\": " << (identical ? "true" : "false")
      << ",\n"
      << "  \"speedup_ingest_vs_rebuild\": " << speedup << ",\n"
      << "  \"overflow_entries\": " << overflow_entries << ",\n"
      << "  \"blocking_merges\": " << ingest_stats.blocking_merges << ",\n"
      << "  \"runs\": [\n"
      << "    {\"mode\": \"incremental\", \"ms\": " << ingest.total_ms
      << ", \"ms_per_epoch\": " << ingest.total_ms / kEpochs << "},\n"
      << "    {\"mode\": \"rebuild\", \"ms\": " << rebuild.total_ms
      << ", \"ms_per_epoch\": " << rebuild.total_ms / kEpochs << "}\n"
      << "  ]\n}\n";
  std::cout << "(json written to " << out_path << ")\n";
  return identical && speedup >= 10.0 ? 0 : 1;
}
