// §7.3 "Execution Time": wall-clock per episode, slowest vs. average
// partition, and pre-processing time, for batch mode (DBpedia - NYTimes,
// episode size 1000) and the interactive specific-domain setting
// (DBpedia NBA - NYTimes, episode size 10). The paper reports minutes per
// episode in batch mode and ~1.3 s per episode interactively on full-scale
// data; the scaled data here runs correspondingly faster — the comparison
// of interest is batch vs. interactive and slowest vs. average partition.
#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/feature_space.h"

namespace {

// Runs the pipeline with the right context prepared ONCE up front and handed
// to the engine via ExperimentConfig::right_context (the ROADMAP
// right-context-reuse item), reporting its preparation time separately from
// the engine's per-partition pre-processing.
void Report(const std::string& title, alex::eval::ExperimentConfig config) {
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);

  auto prepare_start = std::chrono::steady_clock::now();
  config.right_context = alex::core::RightContext::Prepare(
      world.right, world.right.Subjects(), config.alex.space);
  double prepare_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - prepare_start)
          .count();

  alex::Result<alex::eval::ExperimentResult> result =
      alex::eval::RunExperimentOnWorld(config, world, initial);
  ALEX_CHECK(result.ok()) << result.status().ToString();
  const alex::eval::ExperimentResult& r = result.value();
  alex::eval::PrintHeader(std::cout, title);
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "right-context preparation (shared): " << prepare_seconds
            << " s\n"
            << "pre-processing (feature spaces): " << r.init_seconds
            << " s\n";
  double total = 0.0, max_partition = 0.0, sum_partition = 0.0;
  std::cout << std::setw(8) << "episode" << std::setw(12) << "seconds"
            << std::setw(16) << "slowest-part" << std::setw(14)
            << "avg-part" << "\n";
  for (const alex::eval::EpisodePoint& point : r.series) {
    if (point.episode == 0) continue;
    std::cout << std::setw(8) << point.episode << std::setw(12)
              << point.stats.seconds << std::setw(16)
              << point.stats.max_partition_seconds << std::setw(14)
              << point.stats.avg_partition_seconds << "\n";
    total += point.stats.seconds;
    max_partition += point.stats.max_partition_seconds;
    sum_partition += point.stats.avg_partition_seconds;
  }
  int episodes = std::max(1, r.episodes);
  std::cout << "episodes: " << r.episodes << ", total episode time: "
            << total << " s (" << total / episodes << " s/episode)\n"
            << "cumulative slowest-partition time: " << max_partition
            << " s, average-partition time: " << sum_partition << " s\n";
  std::cout.unsetf(std::ios::fixed);
}

}  // namespace

int main() {
  alex::eval::ExperimentConfig batch =
      alex::bench::MakeConfig("dbpedia_nytimes");
  batch.alex.max_episodes = 15;
  Report("Execution time, batch mode (DBpedia - NYTimes, episodes of 1000)",
         batch);

  alex::eval::ExperimentConfig interactive =
      alex::bench::MakeConfig("dbpedia_nba_nytimes");
  interactive.alex.episode_size = 10;
  interactive.alex.num_partitions = 2;
  interactive.alex.max_episodes = 20;
  Report(
      "Execution time, interactive mode (DBpedia NBA - NYTimes, episodes "
      "of 10)",
      interactive);
  return 0;
}
