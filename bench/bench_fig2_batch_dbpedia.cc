// Figure 2: quality of links between DBpedia and NYTimes (a), Drugbank (b),
// and Lexvo (c) in batch mode (episode size 1000). Expected shapes:
//   (a) initial good precision / low recall; recall jumps after episode 1.
//   (b) initial low precision / high recall; ALEX repairs precision.
//   (c) both low initially; recall first, then precision.
#include "bench_common.h"

int main(int argc, char** argv) {
  alex::bench::SetCsvDirFromArgs(argc, argv);
  using alex::bench::MakeConfig;
  using alex::bench::RunAndPrint;
  RunAndPrint("Figure 2(a): DBpedia - NYTimes (batch mode)",
              MakeConfig("dbpedia_nytimes"));
  RunAndPrint("Figure 2(b): DBpedia - Drugbank (batch mode)",
              MakeConfig("dbpedia_drugbank"));
  RunAndPrint("Figure 2(c): DBpedia - Lexvo (batch mode)",
              MakeConfig("dbpedia_lexvo"));
  return 0;
}
