// Micro-benchmarks (google-benchmark) for the performance-critical kernels:
// similarity functions, triple-store pattern matching, feature-set
// construction, the feature-space range query, and the PARIS pipeline on a
// small world. Not a paper artifact; used to watch for regressions.
#include <benchmark/benchmark.h>

#include "core/feature_set.h"
#include "core/feature_space.h"
#include "datagen/profiles.h"
#include "linking/paris.h"
#include "similarity/string_metrics.h"
#include "similarity/value_similarity.h"

namespace {

using alex::core::FeatureCatalog;
using alex::core::FeatureSpace;
using alex::core::PreparedEntity;
using alex::rdf::Term;
using alex::rdf::TripleStore;

void BM_NormalizedLevenshtein(benchmark::State& state) {
  std::string a = "the new york times company";
  std::string b = "new york times cmpany the";
  for (auto _ : state) {
    benchmark::DoNotOptimize(alex::sim::NormalizedLevenshtein(a, b));
  }
}
BENCHMARK(BM_NormalizedLevenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  std::string a = "the new york times company";
  std::string b = "new york times cmpany the";
  for (auto _ : state) {
    benchmark::DoNotOptimize(alex::sim::JaroWinkler(a, b));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_TokenJaccard(benchmark::State& state) {
  std::string a = "the new york times company";
  std::string b = "new york times cmpany the";
  for (auto _ : state) {
    benchmark::DoNotOptimize(alex::sim::TokenJaccard(a, b));
  }
}
BENCHMARK(BM_TokenJaccard);

void BM_PreparedSimilarity(benchmark::State& state) {
  auto a = alex::core::PrepareValue(
      Term::StringLiteral("the new york times company"));
  auto b = alex::core::PrepareValue(
      Term::StringLiteral("new york times cmpany the"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(alex::core::PreparedSimilarity(a, b));
  }
}
BENCHMARK(BM_PreparedSimilarity);

void BM_TripleStoreMatch(benchmark::State& state) {
  TripleStore store("bench");
  auto p = store.InternTerm(Term::Iri("p"));
  for (int i = 0; i < 10000; ++i) {
    store.Add(store.InternTerm(Term::Iri("s" + std::to_string(i))), p,
              store.InternTerm(Term::IntegerLiteral(i % 50)));
  }
  auto target = store.dictionary().Lookup(Term::IntegerLiteral(25));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Match(std::nullopt, p, *target));
  }
}
BENCHMARK(BM_TripleStoreMatch);

void BM_BuildFeatureSet(benchmark::State& state) {
  TripleStore left("l"), right("r");
  Term ls = Term::Iri("http://l/e");
  Term rs = Term::Iri("http://r/x");
  for (int i = 0; i < 6; ++i) {
    left.Add(ls, Term::Iri("http://l/p" + std::to_string(i)),
             Term::StringLiteral("left value number " + std::to_string(i)));
    right.Add(rs, Term::Iri("http://r/q" + std::to_string(i)),
              Term::StringLiteral("right value number " + std::to_string(i)));
  }
  PreparedEntity le =
      alex::core::PrepareEntity(left, *left.dictionary().Lookup(ls));
  PreparedEntity re =
      alex::core::PrepareEntity(right, *right.dictionary().Lookup(rs));
  FeatureCatalog catalog;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alex::core::BuildFeatureSet(le, re, &catalog, 0.3));
  }
}
BENCHMARK(BM_BuildFeatureSet);

void BM_FeatureSpaceRangeQuery(benchmark::State& state) {
  alex::datagen::WorldProfile profile = alex::datagen::TinyTestProfile();
  profile.overlap_entities = 100;
  alex::datagen::GeneratedWorld world = alex::datagen::Generate(profile);
  FeatureCatalog catalog;
  alex::core::FeatureSpaceOptions options;
  FeatureSpace space = FeatureSpace::Build(
      world.left, world.left.Subjects(), world.right,
      world.right.Subjects(), &catalog, options);
  alex::core::FeatureId feature = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.PairsInRange(feature, 0.9, 1.0));
  }
}
BENCHMARK(BM_FeatureSpaceRangeQuery);

void BM_ParisTinyWorld(benchmark::State& state) {
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(alex::datagen::TinyTestProfile());
  for (auto _ : state) {
    benchmark::DoNotOptimize(alex::linking::RunParis(world.left,
                                                     world.right));
  }
}
BENCHMARK(BM_ParisTinyWorld);

}  // namespace
