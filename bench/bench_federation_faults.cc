// Fault-tolerant federation benchmark.
//
// Part 1 gates the endpoint abstraction itself: the same workload runs on
// the seed engine (stores federated directly) and on an engine whose stores
// are wrapped in LocalEndpoint + zero-profile FaultInjectingEndpoint. The
// answers must be identical row for row, and the wall-clock overhead of the
// extra indirection is reported (expected < 2%).
//
// Part 2 sweeps the fault rate: at each level every source is decorated
// with a FaultInjectingEndpoint whose transient-error and truncation rates
// scale with the sweep, and the workload reports the completeness fraction,
// throughput, and the retry/breaker work the resilient path performed. All
// faults are drawn deterministically in virtual time, so the sweep is
// reproducible run to run.
//
// Writes BENCH_federation_faults.json (path via --out). Exits nonzero if
// the identity gate fails.
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/latency_histogram.h"
#include "eval/query_workload.h"
#include "federation/fault_injection.h"
#include "federation/federated_engine.h"
#include "linking/paris.h"

namespace {

using alex::fed::Endpoint;
using alex::fed::FaultInjectingEndpoint;
using alex::fed::FaultProfile;
using alex::fed::FederatedEngine;
using alex::fed::FederatedResult;
using alex::fed::LocalEndpoint;
using alex::rdf::TripleStore;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Owns the decorator chain for one federation of unreliable endpoints.
struct FaultyFederation {
  std::vector<std::unique_ptr<LocalEndpoint>> locals;
  std::vector<std::unique_ptr<FaultInjectingEndpoint>> faulty;
  std::vector<Endpoint*> endpoints;

  FaultyFederation(const std::vector<const TripleStore*>& sources,
                   const FaultProfile& profile) {
    for (size_t i = 0; i < sources.size(); ++i) {
      locals.push_back(std::make_unique<LocalEndpoint>(sources[i]));
      faulty.push_back(std::make_unique<FaultInjectingEndpoint>(
          locals.back().get(), i, profile));
      endpoints.push_back(faulty.back().get());
    }
  }
};

struct SweepRow {
  double fault_rate = 0.0;
  double completeness = 0.0;  // fraction of queries returning complete
  double qps = 0.0;
  double ms = 0.0;
  uint64_t probes = 0;
  uint64_t retries = 0;
  uint64_t short_circuits = 0;
  uint64_t breaker_opens = 0;
  int64_t virtual_ms = 0;  // simulated endpoint time, milliseconds
  double p50_ms = 0.0;     // per-query wall latency percentiles
  double p90_ms = 0.0;
  double p99_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_federation_faults.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("dbpedia_nytimes");
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  (void)world.left.size();  // build indexes before timing
  (void)world.right.size();

  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);
  alex::fed::LinkSet links;
  for (const alex::linking::Link& link : initial) links.Add(link);

  alex::eval::WorkloadOptions workload_options;
  workload_options.num_queries = 250;
  std::vector<alex::eval::WorkloadQuery> workload =
      alex::eval::GenerateWorkload(world, workload_options);
  std::vector<const TripleStore*> sources = {&world.left, &world.right};

  std::cout << "== Federation fault tolerance ==\n"
            << "world dbpedia_nytimes: " << world.left.size() << " + "
            << world.right.size() << " triples, " << initial.size()
            << " links, " << workload.size() << " queries\n";

  // ---- Part 1: endpoint indirection at fault rate 0 ----
  FederatedEngine direct_engine(sources, &links);
  FaultyFederation zero_federation(sources, FaultProfile{});
  FederatedEngine wrapped_engine(zero_federation.endpoints, &links);

  bool identical_answers = true;
  uint64_t total_rows = 0;
  for (const alex::eval::WorkloadQuery& query : workload) {
    alex::Result<FederatedResult> direct =
        direct_engine.ExecuteText(query.text);
    alex::Result<FederatedResult> wrapped =
        wrapped_engine.ExecuteText(query.text);
    ALEX_CHECK(direct.ok() && wrapped.ok());
    bool same = direct->complete && wrapped->complete &&
                direct->answers.size() == wrapped->answers.size();
    for (size_t i = 0; same && i < direct->answers.size(); ++i) {
      same = direct->answers[i].binding == wrapped->answers[i].binding &&
             direct->answers[i].links_used == wrapped->answers[i].links_used;
    }
    if (!same) {
      identical_answers = false;
      std::cerr << "ANSWER MISMATCH: " << query.text << "\n";
      break;
    }
    total_rows += direct->answers.size();
  }
  std::cout << "  identity check: "
            << (identical_answers ? "wrapped == direct" : "MISMATCH") << " ("
            << total_rows << " total rows)\n";

  const int kRepeats = 5;
  auto time_workload = [&](FederatedEngine& engine) {
    double best_ms = -1.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      auto start = std::chrono::steady_clock::now();
      for (const alex::eval::WorkloadQuery& query : workload) {
        alex::Result<FederatedResult> result = engine.ExecuteText(query.text);
        ALEX_CHECK(result.ok());
      }
      double ms = MsSince(start);
      if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
    }
    return best_ms;
  };
  const double direct_ms = time_workload(direct_engine);
  const double wrapped_ms = time_workload(wrapped_engine);
  const double overhead_pct =
      direct_ms > 0.0 ? 100.0 * (wrapped_ms - direct_ms) / direct_ms : 0.0;
  std::cout << std::fixed << std::setprecision(2) << "  direct   "
            << direct_ms << " ms\n  wrapped  " << wrapped_ms
            << " ms  (indirection overhead " << overhead_pct << "%)\n";

  // ---- Part 2: completeness and throughput vs fault rate ----
  const std::vector<double> kFaultRates = {0.0, 0.05, 0.1, 0.2, 0.4};
  std::vector<SweepRow> sweep;
  std::cout << "== Completeness / throughput vs fault rate ==\n";
  for (double rate : kFaultRates) {
    FaultProfile profile;
    profile.seed = 0xfed5;
    profile.transient_error_rate = rate;
    profile.truncation_rate = rate / 2.0;
    profile.truncation_keep_fraction = 0.5;
    FaultyFederation federation(sources, profile);
    FederatedEngine engine(federation.endpoints, &links);

    SweepRow row;
    row.fault_rate = rate;
    size_t complete = 0;
    alex::LatencyHistogram latency;
    auto start = std::chrono::steady_clock::now();
    for (const alex::eval::WorkloadQuery& query : workload) {
      auto query_start = std::chrono::steady_clock::now();
      alex::Result<FederatedResult> result = engine.ExecuteText(query.text);
      ALEX_CHECK(result.ok());
      latency.Record(static_cast<int64_t>(MsSince(query_start) * 1000.0));
      if (result->complete) ++complete;
      row.probes += result->probes;
      row.retries += result->retries;
      row.short_circuits += result->short_circuits;
    }
    row.ms = MsSince(start);
    row.completeness =
        static_cast<double>(complete) / static_cast<double>(workload.size());
    row.qps = row.ms > 0.0 ? 1000.0 * workload.size() / row.ms : 0.0;
    row.breaker_opens = engine.TakeFaultStats().breaker_opens;
    row.virtual_ms = engine.virtual_now_micros() / 1000;
    row.p50_ms = latency.PercentileMicros(0.5) / 1000.0;
    row.p90_ms = latency.PercentileMicros(0.9) / 1000.0;
    row.p99_ms = latency.PercentileMicros(0.99) / 1000.0;
    sweep.push_back(row);
    std::cout << "  rate " << std::setprecision(2) << std::setw(4) << rate
              << ": completeness " << std::setprecision(3)
              << row.completeness << ", " << std::setprecision(0) << row.qps
              << " qps, " << row.retries << " retries, "
              << row.short_circuits << " short-circuits, "
              << row.breaker_opens << " breaker opens, p99 "
              << std::setprecision(2) << row.p99_ms << " ms\n";
  }
  // The sweep must show graceful degradation, not a cliff: the zero-rate
  // row stays fully complete while the most hostile rate still answers a
  // usable share of the workload.
  const bool graceful =
      !sweep.empty() && sweep.front().completeness == 1.0 &&
      sweep.back().completeness > 0.0 &&
      sweep.back().completeness < sweep.front().completeness;
  std::cout << (graceful ? "graceful degradation across the sweep\n"
                         : "DEGRADATION PROFILE UNEXPECTED\n");

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << std::fixed << std::setprecision(3);
  out << "{\n"
      << "  \"bench\": \"federation_faults\",\n"
      << "  \"world\": \"dbpedia_nytimes\",\n"
      << "  \"num_queries\": " << workload.size() << ",\n"
      << "  \"total_rows\": " << total_rows << ",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"identical_answers\": "
      << (identical_answers ? "true" : "false") << ",\n"
      << "  \"graceful_degradation\": " << (graceful ? "true" : "false")
      << ",\n"
      << "  \"direct_ms\": " << direct_ms << ",\n"
      << "  \"wrapped_ms\": " << wrapped_ms << ",\n"
      << "  \"indirection_overhead_pct\": " << overhead_pct << ",\n"
      << "  \"overhead_under_2pct\": "
      << (overhead_pct < 2.0 ? "true" : "false") << ",\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& row = sweep[i];
    out << "    {\"fault_rate\": " << row.fault_rate
        << ", \"completeness\": " << row.completeness << ", \"qps\": "
        << row.qps << ", \"ms\": " << row.ms << ", \"probes\": "
        << row.probes << ", \"retries\": " << row.retries
        << ", \"short_circuits\": " << row.short_circuits
        << ", \"breaker_opens\": " << row.breaker_opens
        << ", \"virtual_ms\": " << row.virtual_ms
        << ", \"p50_ms\": " << row.p50_ms << ", \"p90_ms\": " << row.p90_ms
        << ", \"p99_ms\": " << row.p99_ms << "}"
        << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << out_path << ")\n";
  return identical_answers && graceful ? 0 : 1;
}
