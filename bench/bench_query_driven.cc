// Query-driven vs. oracle-driven feedback (not a paper figure; it closes
// the gap between the paper's §3.2 system description — feedback arrives on
// federated query answers — and its §7.1 evaluation shortcut — feedback on
// uniformly sampled links). Expected: both improve the links dramatically;
// query-driven feedback converges on the links that queries actually
// exercise, so recall can plateau below the oracle-driven ceiling when the
// workload does not touch every entity.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "eval/query_workload.h"

int main() {
  alex::eval::ExperimentConfig config =
      alex::bench::MakeConfig("opencyc_nytimes");
  config.alex.max_episodes = 20;
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(config.profile);
  alex::feedback::GroundTruth truth(world.ground_truth);
  std::vector<alex::linking::Link> initial = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);

  // Oracle-driven (the paper's §7.1 methodology).
  alex::Result<alex::eval::ExperimentResult> oracle_run =
      alex::eval::RunExperimentOnWorld(config, world, initial);
  ALEX_CHECK(oracle_run.ok()) << oracle_run.status().ToString();

  // Query-driven (the paper's §3.2 system loop).
  alex::core::AlexEngine engine(&world.left, &world.right, config.alex);
  alex::Status st = engine.Initialize(initial);
  ALEX_CHECK(st.ok()) << st.ToString();
  alex::eval::QueryDrivenOptions qd;
  qd.workload.num_queries = 600;
  qd.episode_size = 1000;
  qd.max_episodes = 20;
  alex::eval::ExperimentResult query_run =
      alex::eval::RunQueryDrivenExperiment(&engine, world, truth, qd);

  alex::bench::PrintComparison(
      "Feedback source: oracle-sampled links vs federated query answers",
      "f-measure", {"oracle", "query-driven"},
      {alex::bench::Column(oracle_run.value(),
                           alex::bench::Metric::kFMeasure),
       alex::bench::Column(query_run, alex::bench::Metric::kFMeasure)});
  alex::bench::PrintComparison(
      "Recall under the two feedback sources", "recall",
      {"oracle", "query-driven"},
      {alex::bench::Column(oracle_run.value(),
                           alex::bench::Metric::kRecall),
       alex::bench::Column(query_run, alex::bench::Metric::kRecall)});

  auto best_f = [](const alex::eval::ExperimentResult& r) {
    double best = 0.0;
    for (const alex::eval::EpisodePoint& p : r.series) {
      best = std::max(best, p.quality.f_measure);
    }
    return best;
  };
  std::cout << std::fixed << std::setprecision(3)
            << "\noracle-driven:  best F = " << best_f(oracle_run.value())
            << ", final F = " << oracle_run->final_quality().f_measure
            << ", new links " << oracle_run->new_links_discovered << "\n"
            << "query-driven:   best F = " << best_f(query_run)
            << ", final F = " << query_run.final_quality().f_measure
            << ", new links " << query_run.new_links_discovered << "\n";
  return 0;
}
