// Shared helpers for the figure benchmarks.
#ifndef ALEX_BENCH_BENCH_COMMON_H_
#define ALEX_BENCH_BENCH_COMMON_H_

#include <cctype>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "datagen/profiles.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace alex::bench {

// Default experiment configuration for a named profile. Batch mode: episode
// size 1000 (§7.1).
inline eval::ExperimentConfig MakeConfig(const std::string& profile_name) {
  eval::ExperimentConfig config;
  ALEX_CHECK(datagen::ProfileByName(profile_name, &config.profile))
      << "unknown profile " << profile_name;
  config.alex.episode_size = 1000;
  config.alex.max_episodes = 40;
  config.alex.num_partitions = 8;
  return config;
}

// When non-empty (set from a bench's `--csv-dir <dir>` argument),
// RunAndPrint also drops a <slug>.csv per experiment into the directory.
inline std::string& CsvDir() {
  static std::string* dir = new std::string;
  return *dir;
}

inline void SetCsvDirFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--csv-dir" && i + 1 < argc) {
      CsvDir() = argv[i + 1];
    } else if (arg.rfind("--csv-dir=", 0) == 0) {
      CsvDir() = arg.substr(10);
    }
  }
}

// "Figure 2(a): DBpedia - NYTimes" -> "figure_2_a_dbpedia_nytimes".
inline std::string SlugFromTitle(const std::string& title) {
  std::string slug;
  bool last_sep = true;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
      last_sep = false;
    } else if (!last_sep) {
      slug.push_back('_');
      last_sep = true;
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

// Runs one experiment and prints its series and summary; optionally also
// writes a CSV (see CsvDir).
inline eval::ExperimentResult RunAndPrint(
    const std::string& title, const eval::ExperimentConfig& config) {
  Result<eval::ExperimentResult> result = eval::RunExperiment(config);
  ALEX_CHECK(result.ok()) << result.status().ToString();
  eval::PrintSeries(std::cout, title, result.value());
  eval::PrintSummary(std::cout, result.value());
  if (!CsvDir().empty()) {
    std::string path = CsvDir() + "/" + SlugFromTitle(title) + ".csv";
    if (eval::SaveSeriesCsv(path, result.value())) {
      std::cout << "(series written to " << path << ")\n";
    }
  }
  return std::move(result).value();
}

// Prints several runs side by side: one column group per labelled series,
// showing the chosen metric per episode (as Figures 6, 9, 10, 11 do).
inline void PrintComparison(
    const std::string& title, const std::string& metric_name,
    const std::vector<std::string>& labels,
    const std::vector<std::vector<double>>& series) {
  eval::PrintHeader(std::cout, title);
  std::cout << std::setw(8) << "episode";
  for (const std::string& label : labels) {
    std::cout << std::setw(14) << label;
  }
  std::cout << "   (" << metric_name << ")\n" << std::fixed;
  size_t rows = 0;
  for (const auto& s : series) rows = std::max(rows, s.size());
  for (size_t row = 0; row < rows; ++row) {
    std::cout << std::setw(8) << row;
    for (const auto& s : series) {
      if (row < s.size()) {
        std::cout << std::setprecision(3) << std::setw(14) << s[row];
      } else {
        std::cout << std::setw(14) << "-";
      }
    }
    std::cout << "\n";
  }
  std::cout.unsetf(std::ios::fixed);
  std::cout << std::setprecision(6);
}

// Extracts one metric column from an experiment series.
enum class Metric { kPrecision, kRecall, kFMeasure, kNegativePercent };

inline std::vector<double> Column(const eval::ExperimentResult& result,
                                  Metric metric) {
  std::vector<double> out;
  out.reserve(result.series.size());
  for (const eval::EpisodePoint& point : result.series) {
    switch (metric) {
      case Metric::kPrecision:
        out.push_back(point.quality.precision);
        break;
      case Metric::kRecall:
        out.push_back(point.quality.recall);
        break;
      case Metric::kFMeasure:
        out.push_back(point.quality.f_measure);
        break;
      case Metric::kNegativePercent:
        out.push_back(point.stats.NegativeFeedbackPercent());
        break;
    }
  }
  return out;
}

}  // namespace alex::bench

#endif  // ALEX_BENCH_BENCH_COMMON_H_
