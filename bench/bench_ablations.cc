// Ablations of ALEX's design choices (beyond the paper's own sensitivity
// study, which covers step size and episode size — Appendix D):
//   1. θ filtering threshold (§6.1): search-space size vs. quality.
//   2. ε of the ε-greedy policy and the rollback trigger threshold (§6.3).
//   3. Number of partitions (§6.2): the paper claims partitioning
//      parallelism does not sacrifice link quality.
//   4. Initial candidate generator: PARIS vs. the SILK-style rule matcher
//      vs. an empty start ("ALEX can work with any initial set of candidate
//      links", §2) — seeded with one correct link so exploration can start.
// All runs share one synthetic world (OpenCyc - NYTimes profile).
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "linking/rule_matcher.h"

namespace {

using alex::eval::ExperimentConfig;
using alex::eval::ExperimentResult;

void PrintRow(const std::string& label, const ExperimentResult& r) {
  std::cout << std::left << std::setw(26) << label << std::right
            << std::fixed << std::setprecision(3) << std::setw(8)
            << r.series[0].quality.f_measure << std::setw(8)
            << r.final_quality().precision << std::setw(8)
            << r.final_quality().recall << std::setw(8)
            << r.final_quality().f_measure << std::setw(10) << r.episodes
            << std::setw(12) << r.filtered_pairs << std::setw(9)
            << std::setprecision(2) << r.init_seconds << "\n";
  std::cout.unsetf(std::ios::fixed);
  std::cout << std::setprecision(6);
}

void PrintHeaderRow(const std::string& title) {
  std::cout << "\n== " << title << " ==\n"
            << std::left << std::setw(26) << "config" << std::right
            << std::setw(8) << "F0" << std::setw(8) << "P" << std::setw(8)
            << "R" << std::setw(8) << "F" << std::setw(10) << "episodes"
            << std::setw(12) << "space" << std::setw(9) << "init-s" << "\n";
}

}  // namespace

int main() {
  ExperimentConfig base = alex::bench::MakeConfig("opencyc_nytimes");
  base.alex.max_episodes = 25;
  alex::datagen::GeneratedWorld world =
      alex::datagen::Generate(base.profile);
  std::vector<alex::linking::Link> paris_links = alex::linking::FilterByScore(
      alex::linking::RunParis(world.left, world.right, base.paris),
      base.paris_threshold);

  auto run = [&](ExperimentConfig config,
                 const std::vector<alex::linking::Link>& initial) {
    alex::Result<ExperimentResult> result =
        alex::eval::RunExperimentOnWorld(config, world, initial);
    ALEX_CHECK(result.ok()) << result.status().ToString();
    return std::move(result).value();
  };

  // 1. θ threshold.
  PrintHeaderRow("Ablation 1: filtering threshold theta (paper uses 0.3)");
  for (double theta : {0.2, 0.3, 0.5}) {
    ExperimentConfig config = base;
    config.alex.space.theta = theta;
    PrintRow("theta=" + std::to_string(theta).substr(0, 4),
             run(config, paris_links));
  }

  // 2. ε and rollback threshold.
  PrintHeaderRow("Ablation 2: epsilon of the epsilon-greedy policy");
  for (double epsilon : {0.01, 0.05, 0.2}) {
    ExperimentConfig config = base;
    config.alex.epsilon = epsilon;
    PrintRow("epsilon=" + std::to_string(epsilon).substr(0, 4),
             run(config, paris_links));
  }
  PrintHeaderRow("Ablation 2b: rollback trigger threshold");
  for (int threshold : {1, 3, 10}) {
    ExperimentConfig config = base;
    config.alex.rollback_threshold = threshold;
    PrintRow("rollback_threshold=" + std::to_string(threshold),
             run(config, paris_links));
  }
  PrintHeaderRow(
      "Ablation 2c: negative reward magnitude (\"severely penalize wrong "
      "links\", section 4.3)");
  for (double reward : {-1.0, -2.0, -4.0}) {
    ExperimentConfig config = base;
    config.alex.negative_reward = reward;
    PrintRow("negative_reward=" + std::to_string(reward).substr(0, 4),
             run(config, paris_links));
  }

  // 3. Partition count: quality should be stable (§6.2).
  PrintHeaderRow("Ablation 3: equal-size partitions (quality invariance)");
  for (int partitions : {1, 4, 8, 16}) {
    ExperimentConfig config = base;
    config.alex.num_partitions = partitions;
    PrintRow("partitions=" + std::to_string(partitions),
             run(config, paris_links));
  }

  // Extension: cross-state feature prior (see AlexOptions).
  PrintHeaderRow(
      "Extension: cross-state feature prior for fresh states (off = "
      "Algorithm 1)");
  for (bool prior : {false, true}) {
    ExperimentConfig config = base;
    config.alex.use_feature_prior = prior;
    PrintRow(prior ? "feature prior ON" : "feature prior OFF (paper)",
             run(config, paris_links));
  }

  // 4. Initial candidate generator.
  PrintHeaderRow("Ablation 4: initial candidate link generator");
  PrintRow("paris (default)", run(base, paris_links));
  {
    alex::linking::RuleMatcherOptions options;
    options.rules.push_back(alex::linking::MatchRule{
        "http://www.w3.org/2000/01/rdf-schema#label",
        "http://data.nytimes.com/elements/name", 1.0, 0.5});
    options.accept_threshold = 0.9;
    std::vector<alex::linking::Link> rule_links =
        alex::linking::RunRuleMatcher(world.left, world.right, options);
    PrintRow("rule matcher", run(base, rule_links));
  }
  {
    // Cold start: a single correct seed link.
    std::vector<alex::linking::Link> seed = {world.ground_truth.front()};
    PrintRow("single seed link", run(base, seed));
  }
  return 0;
}
