#!/usr/bin/env python3
"""Render benchmark CSV series as ASCII charts.

The figure benchmarks accept `--csv-dir <dir>` and drop one CSV per
experiment (episode, precision, recall, f_measure, ...). This script plots
those series in the terminal so the paper's figure shapes can be eyeballed
without a plotting stack:

    build/bench/bench_fig2_batch_dbpedia --csv-dir /tmp/csv
    scripts/plot_series.py /tmp/csv/figure_2_a_dbpedia_nytimes_batch_mode.csv
"""

import csv
import sys

HEIGHT = 18
SYMBOLS = {"precision": "P", "recall": "R", "f_measure": "F"}


def load(path):
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    series = {name: [float(r[name]) for r in rows] for name in SYMBOLS}
    episodes = [int(r["episode"]) for r in rows]
    return episodes, series


def plot(episodes, series):
    width = len(episodes)
    grid = [[" "] * width for _ in range(HEIGHT + 1)]
    for name, symbol in SYMBOLS.items():
        for x, value in enumerate(series[name]):
            y = HEIGHT - round(max(0.0, min(1.0, value)) * HEIGHT)
            cell = grid[y][x]
            grid[y][x] = "*" if cell not in (" ", symbol) else symbol
    lines = []
    for y, row in enumerate(grid):
        axis = 1.0 - y / HEIGHT
        label = f"{axis:4.2f} |" if y % 3 == 0 else "     |"
        lines.append(label + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append("      episodes 0.." + str(episodes[-1]) +
                 "   (P=precision R=recall F=f-measure *=overlap)")
    return "\n".join(lines)


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    for path in argv[1:]:
        episodes, series = load(path)
        print(f"== {path} ==")
        print(plot(episodes, series))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
