#!/usr/bin/env bash
# Builds the test suites most exposed to the in-place index maintenance
# paths (tombstone/pending-buffer churn, bucket compaction, rollback
# resurrection, the parallel episode loop, epoch-snapshot reclamation in
# the serving tier, the sharded feedback aggregator's tally churn, and the
# live-ingest path's blocking-index sidecars and overflow arenas) under
# AddressSanitizer and runs them. Uses its own build directory so the
# regular build stays untouched. Override with BUILD_DIR=... .
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=${BUILD_DIR:-build-asan}
cmake -B "$build_dir" -S . -DALEX_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)" \
  --target core_tests system_tests serving_tests feedback_tests ingest_tests

"$build_dir"/tests/core_tests
"$build_dir"/tests/system_tests
"$build_dir"/tests/serving_tests
"$build_dir"/tests/feedback_tests
"$build_dir"/tests/ingest_tests
echo "asan: clean"
