#!/usr/bin/env bash
# Builds (Release) and runs the JSON-emitting benchmarks, writing their
# BENCH_*.json artifacts into the repo root and sanity-checking that each
# file appeared, parses, and carries its correctness-gate keys. Benchmarks
# exit nonzero themselves when an identity assertion fails, which fails this
# script too. Override the build directory with BUILD_DIR=... .
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=${BUILD_DIR:-build-bench}
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)" \
  --target bench_episode_loop bench_space_build bench_query_exec \
  bench_incremental_space bench_federation_faults bench_serving \
  bench_feedback bench_ingest

declare -A gate_key=(
  [bench_episode_loop]=identical_series
  [bench_space_build]=identical_spaces
  [bench_query_exec]=identical_rows
  [bench_incremental_space]=identical_fingerprints
  [bench_federation_faults]=identical_answers
  [bench_serving]=identity
  [bench_feedback]=identical_batches
  [bench_ingest]=identical_fingerprints
)
declare -A runs_key=(
  [bench_episode_loop]=runs
  [bench_space_build]=blocked
  [bench_query_exec]=runs
  [bench_incremental_space]=runs
  [bench_federation_faults]=runs
  [bench_serving]=runs
  [bench_feedback]=runs
  [bench_ingest]=runs
)

for bench in bench_episode_loop bench_space_build bench_query_exec \
    bench_incremental_space bench_federation_faults bench_serving \
    bench_feedback bench_ingest; do
  out="BENCH_${bench#bench_}.json"
  echo "== $bench -> $out =="
  "$build_dir/bench/$bench" --out "$out"
  python3 - "$out" "${gate_key[$bench]}" "${runs_key[$bench]}" <<'EOF'
import json, sys
path, gate, runs = sys.argv[1], sys.argv[2], sys.argv[3]
with open(path) as f:
    doc = json.load(f)
for required in ("bench", runs, gate):
    if required not in doc:
        sys.exit(f"{path}: missing key '{required}'")
if doc[gate] is not True:
    sys.exit(f"{path}: {gate} is {doc[gate]!r}, expected true")
if doc["bench"] == "query_exec":
    for key in ("speedup_planned_vs_greedy_multijoin", "plan_cache_hit_rate",
                "multijoin_identical_rows", "plan_cache_exact"):
        if key not in doc:
            sys.exit(f"{path}: missing key '{key}'")
    if doc["multijoin_identical_rows"] is not True:
        sys.exit(f"{path}: multijoin_identical_rows is not true")
    if doc["plan_cache_exact"] is not True:
        sys.exit(f"{path}: plan_cache_exact is not true")
    speedup = doc["speedup_planned_vs_greedy_multijoin"]
    if speedup < 1.3:
        sys.exit(f"{path}: planned vs greedy multijoin speedup {speedup} < 1.3")
if doc["bench"] == "feedback":
    for key in ("sharded_vs_single_speedup_peak", "sharded_not_slower",
                "uniform_episodes", "prioritized_episodes",
                "prioritized_not_slower"):
        if key not in doc:
            sys.exit(f"{path}: missing key '{key}'")
    if doc["sharded_not_slower"] is not True:
        sys.exit(f"{path}: sharded aggregator slower than single-lock "
                 f"({doc['sharded_vs_single_speedup_peak']}x at peak)")
    if doc["prioritized_not_slower"] is not True:
        sys.exit(f"{path}: prioritized sampling needed "
                 f"{doc['prioritized_episodes']} episodes vs uniform's "
                 f"{doc['uniform_episodes']}")
    for run in doc["runs"]:
        if run["verdicts_per_sec"] <= 0:
            sys.exit(f"{path}: no verdict throughput at "
                     f"{run['threads']} threads / {run['shards']} shards")
if doc["bench"] == "ingest":
    for key in ("speedup_ingest_vs_rebuild", "triples_ingested",
                "entities_added", "overflow_entries", "blocking_merges"):
        if key not in doc:
            sys.exit(f"{path}: missing key '{key}'")
    speedup = doc["speedup_ingest_vs_rebuild"]
    if speedup < 10.0:
        sys.exit(f"{path}: ingest vs rebuild speedup {speedup} < 10")
    if doc["triples_ingested"] <= 0 or doc["entities_added"] <= 0:
        sys.exit(f"{path}: ingest bench moved no data")
if doc["bench"] == "serving":
    for key in ("p99_ms", "answers_per_sec", "epochs_published",
                "indirection_overhead_pct", "overhead_under_5pct"):
        if key not in doc:
            sys.exit(f"{path}: missing key '{key}'")
    if doc["overhead_under_5pct"] is not True:
        sys.exit(f"{path}: snapshot indirection overhead "
                 f"{doc['indirection_overhead_pct']}% >= 5%")
    for run in doc["runs"]:
        if run["identity"] is not True:
            sys.exit(f"{path}: identity failed at {run['streams']} streams")
print(f"{path}: ok ({gate}=true, {len(doc[runs])} runs)")
EOF
done
echo "all benches ok"
