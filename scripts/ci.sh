#!/usr/bin/env bash
# Single CI entry point: tier-1 build + full ctest, then the sanitizer
# sweeps, then the gated benchmarks (identity, planned-vs-greedy speedup,
# and ingest-vs-rebuild speedup gates; see scripts/run_benches.sh). Each stage uses its own build
# directory (build-ci, build-asan, build-tsan, build-bench) so a local
# development build stays untouched.
#
#   scripts/ci.sh            # everything
#   SKIP_SANITIZERS=1 scripts/ci.sh   # skip the sanitizer sweeps
#   SKIP_BENCHES=1 scripts/ci.sh      # skip the benchmark gates
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=${BUILD_DIR:-build-ci}

echo "== tier 1: build + ctest =="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

if [[ "${SKIP_SANITIZERS:-0}" != "1" ]]; then
  echo "== tier 2: sanitizers =="
  scripts/check_asan.sh
  scripts/check_tsan.sh
fi

if [[ "${SKIP_BENCHES:-0}" != "1" ]]; then
  echo "== tier 3: benchmark gates =="
  scripts/run_benches.sh
fi

echo "ci: all stages passed"
