#!/usr/bin/env bash
# Builds the test suites most exposed to the parallel paths (feature-space
# construction, blocking-index build, parallel episodes, the shared oracle,
# the concurrent serving tier's reader streams, and the sharded feedback
# aggregator's concurrent vote writers, plus the ingest differential's
# multi-threaded engine pairs) under ThreadSanitizer and runs them. Uses its own build directory so the regular build stays untouched.
# Override with BUILD_DIR=... ; pass ALEX_SANITIZE=address the same way via
# CMake directly if needed.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=${BUILD_DIR:-build-tsan}
cmake -B "$build_dir" -S . -DALEX_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)" \
  --target core_tests system_tests serving_tests feedback_tests ingest_tests

"$build_dir"/tests/core_tests
"$build_dir"/tests/system_tests
"$build_dir"/tests/serving_tests
"$build_dir"/tests/feedback_tests
"$build_dir"/tests/ingest_tests
echo "tsan: clean"
