#include "datagen/world.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/profiles.h"
#include "rdf/dataset_stats.h"
#include "rdf/ntriples.h"

namespace alex::datagen {
namespace {

TEST(NoiseHelpersTest, ReorderName) {
  EXPECT_EQ(ReorderName("LeBron James"), "James, LeBron");
  EXPECT_EQ(ReorderName("One Two Three"), "Three, One Two");
  EXPECT_EQ(ReorderName("Single"), "Single");
  EXPECT_EQ(ReorderName(""), "");
}

TEST(NoiseHelpersTest, AbbreviateFirstToken) {
  EXPECT_EQ(AbbreviateFirstToken("LeBron James"), "L. James");
  EXPECT_EQ(AbbreviateFirstToken("Single"), "Single");
}

TEST(NoiseHelpersTest, ApplyTyposChangesString) {
  Rng rng(5);
  std::string original = "a reasonably long test value";
  std::string noisy = ApplyTypos(original, 0.3, &rng);
  EXPECT_NE(noisy, original);
  // Typos are local edits: length stays within the edit budget.
  EXPECT_NEAR(static_cast<double>(noisy.size()), original.size(), 8.0);
}

TEST(NoiseHelpersTest, ApplyTyposOnEmpty) {
  Rng rng(5);
  EXPECT_EQ(ApplyTypos("", 0.3, &rng), "");
}

TEST(NoiseHelpersTest, RandomWordIsPronounceableAscii) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::string word = RandomWord(&rng);
    EXPECT_GE(word.size(), 2u);
    for (char c : word) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << word;
    }
  }
}

TEST(NoiseHelpersTest, RandomNameHasTwoCapitalizedTokens) {
  Rng rng(5);
  std::string name = RandomName(&rng);
  size_t space = name.find(' ');
  ASSERT_NE(space, std::string::npos);
  EXPECT_TRUE(name[0] >= 'A' && name[0] <= 'Z');
  EXPECT_TRUE(name[space + 1] >= 'A' && name[space + 1] <= 'Z');
}

TEST(GenerateTest, GroundTruthMatchesOverlap) {
  WorldProfile profile = TinyTestProfile();
  GeneratedWorld world = Generate(profile);
  EXPECT_EQ(world.ground_truth.size(), profile.overlap_entities);
}

TEST(GenerateTest, EntityCountsMatchProfile) {
  WorldProfile profile = TinyTestProfile();
  GeneratedWorld world = Generate(profile);
  size_t left_expected = profile.overlap_entities +
                         profile.left_only_entities +
                         profile.confusable_pairs;
  size_t right_expected = profile.overlap_entities +
                          profile.right_only_entities +
                          profile.confusable_pairs;
  EXPECT_EQ(world.left.Subjects().size(), left_expected);
  EXPECT_EQ(world.right.Subjects().size(), right_expected);
}

TEST(GenerateTest, DeterministicPerSeed) {
  WorldProfile profile = TinyTestProfile();
  GeneratedWorld a = Generate(profile);
  GeneratedWorld b = Generate(profile);
  EXPECT_EQ(a.left.size(), b.left.size());
  EXPECT_EQ(a.right.size(), b.right.size());
  ASSERT_EQ(a.ground_truth.size(), b.ground_truth.size());
  for (size_t i = 0; i < a.ground_truth.size(); ++i) {
    EXPECT_EQ(a.ground_truth[i], b.ground_truth[i]);
  }
}

TEST(GenerateTest, DifferentSeedsDiffer) {
  WorldProfile profile = TinyTestProfile();
  GeneratedWorld a = Generate(profile);
  profile.seed += 1;
  GeneratedWorld b = Generate(profile);
  // The triple payloads differ even if the counts coincide.
  EXPECT_NE(rdf::WriteNTriples(a.left), rdf::WriteNTriples(b.left));
}

TEST(GenerateTest, GroundTruthLinksPointAtRealEntities) {
  GeneratedWorld world = Generate(TinyTestProfile());
  for (const linking::Link& link : world.ground_truth) {
    EXPECT_TRUE(world.left.dictionary()
                    .Lookup(rdf::Term::Iri(link.left))
                    .has_value())
        << link.left;
    EXPECT_TRUE(world.right.dictionary()
                    .Lookup(rdf::Term::Iri(link.right))
                    .has_value())
        << link.right;
  }
}

TEST(GenerateTest, VocabulariesDifferAcrossSides) {
  GeneratedWorld world = Generate(TinyTestProfile());
  std::set<std::string> left_preds, right_preds;
  for (rdf::TermId p : world.left.Predicates()) {
    left_preds.insert(world.left.dictionary().term(p).lexical());
  }
  for (rdf::TermId p : world.right.Predicates()) {
    right_preds.insert(world.right.dictionary().term(p).lexical());
  }
  // Apart from rdf:type, vocabularies are disjoint (semantic heterogeneity).
  size_t shared = 0;
  for (const std::string& p : left_preds) {
    if (right_preds.count(p)) ++shared;
  }
  EXPECT_LE(shared, 1u);
}

TEST(ProfilesTest, LookupByName) {
  WorldProfile profile;
  EXPECT_TRUE(ProfileByName("dbpedia_nytimes", &profile));
  EXPECT_EQ(profile.name, "dbpedia_nytimes");
  EXPECT_FALSE(ProfileByName("no_such_profile", &profile));
}

TEST(ProfilesTest, AllNamesResolve) {
  for (const std::string& name : AllProfileNames()) {
    WorldProfile profile;
    EXPECT_TRUE(ProfileByName(name, &profile)) << name;
    EXPECT_EQ(profile.name, name);
    EXPECT_FALSE(profile.attributes.empty()) << name;
  }
}

TEST(ProfilesTest, LeftIsTheLargerDataSet) {
  // AlexEngine partitions the left store; profiles must orient accordingly.
  for (const std::string& name : AllProfileNames()) {
    WorldProfile profile;
    ASSERT_TRUE(ProfileByName(name, &profile));
    size_t left = profile.overlap_entities + profile.left_only_entities +
                  profile.confusable_pairs;
    size_t right = profile.overlap_entities + profile.right_only_entities +
                   profile.confusable_pairs;
    EXPECT_GE(left, right) << name;
  }
}

TEST(GenerateTest, ConfusablePairsAreNotGroundTruth) {
  WorldProfile profile = TinyTestProfile();
  profile.confusable_pairs = 15;
  GeneratedWorld world = Generate(profile);
  // Ground truth still only counts the overlap entities.
  EXPECT_EQ(world.ground_truth.size(), profile.overlap_entities);
}

TEST(GenerateTest, StatsShapeIsPlausible) {
  GeneratedWorld world = Generate(TinyTestProfile());
  rdf::DatasetStats stats = rdf::ComputeStats(world.left);
  EXPECT_GT(stats.triples, stats.subjects);  // multiple attributes each
  EXPECT_GE(stats.predicates, 4u);
}

}  // namespace
}  // namespace alex::datagen
