// World-growth generation: GrowWorld schedules are deterministic, sized by
// the growth fraction, and ApplyGrowthEpoch extends the stores additively —
// fresh subjects intern past every pre-existing term (the TermId-watermark
// contract AlexEngine::IngestTriples relies on) and old triples never
// change.
#include "datagen/world.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/profiles.h"

namespace alex::datagen {
namespace {

bool SameEpoch(const GrowthEpoch& a, const GrowthEpoch& b) {
  auto same_triples = [](const std::vector<GrowthTriple>& x,
                         const std::vector<GrowthTriple>& y) {
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i].subject != y[i].subject || x[i].predicate != y[i].predicate ||
          x[i].object != y[i].object) {
        return false;
      }
    }
    return true;
  };
  return same_triples(a.left_triples, b.left_triples) &&
         same_triples(a.right_triples, b.right_triples) &&
         a.new_left_subjects == b.new_left_subjects &&
         a.new_right_subjects == b.new_right_subjects &&
         a.new_ground_truth == b.new_ground_truth;
}

TEST(GrowWorldTest, ScheduleIsDeterministic) {
  WorldProfile profile = TinyTestProfile();
  GrowthSchedule a = GrowWorld(profile, 7, 0.05, 4);
  GrowthSchedule b = GrowWorld(profile, 7, 0.05, 4);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_TRUE(SameEpoch(a.epochs[i], b.epochs[i])) << "epoch " << i;
  }
}

TEST(GrowWorldTest, DistinctSeedsDiverge) {
  WorldProfile profile = TinyTestProfile();
  GrowthSchedule a = GrowWorld(profile, 7, 0.05, 2);
  GrowthSchedule b = GrowWorld(profile, 8, 0.05, 2);
  ASSERT_FALSE(a.epochs.empty());
  // Subject IRIs are positional (same entity-id sequence), but the entity
  // payloads must differ between seeds.
  EXPECT_FALSE(SameEpoch(a.epochs[0], b.epochs[0]));
}

TEST(GrowWorldTest, EpochSizesFollowFraction) {
  WorldProfile profile = TinyTestProfile();
  const size_t per_epoch = std::max(
      size_t{1},
      static_cast<size_t>(0.1 * static_cast<double>(profile.overlap_entities)));
  GrowthSchedule schedule = GrowWorld(profile, 3, 0.1, 5);
  ASSERT_EQ(schedule.epochs.size(), 5u);
  for (const GrowthEpoch& epoch : schedule.epochs) {
    // Overlap-type growth: every new entity appears on BOTH sides and adds
    // exactly one ground-truth link.
    EXPECT_EQ(epoch.new_left_subjects.size(), per_epoch);
    EXPECT_EQ(epoch.new_right_subjects.size(), per_epoch);
    EXPECT_EQ(epoch.new_ground_truth.size(), per_epoch);
    EXPECT_FALSE(epoch.left_triples.empty());
    EXPECT_FALSE(epoch.right_triples.empty());
  }

  // A tiny fraction still grows by at least one entity per epoch.
  GrowthSchedule minimal = GrowWorld(profile, 3, 1e-9, 2);
  for (const GrowthEpoch& epoch : minimal.epochs) {
    EXPECT_EQ(epoch.new_left_subjects.size(), 1u);
  }
}

TEST(GrowWorldTest, SubjectsAreFreshAndUniqueAcrossEpochs) {
  WorldProfile profile = TinyTestProfile();
  std::set<std::string> seen;
  GrowthSchedule schedule = GrowWorld(profile, 11, 0.05, 4);
  for (const GrowthEpoch& epoch : schedule.epochs) {
    for (const std::string& iri : epoch.new_left_subjects) {
      EXPECT_TRUE(seen.insert(iri).second) << "duplicate subject " << iri;
    }
    for (const std::string& iri : epoch.new_right_subjects) {
      EXPECT_TRUE(seen.insert(iri).second) << "duplicate subject " << iri;
    }
    // Ground-truth links connect exactly the new subjects.
    for (const linking::Link& link : epoch.new_ground_truth) {
      EXPECT_TRUE(std::find(epoch.new_left_subjects.begin(),
                            epoch.new_left_subjects.end(),
                            link.left) != epoch.new_left_subjects.end());
      EXPECT_TRUE(std::find(epoch.new_right_subjects.begin(),
                            epoch.new_right_subjects.end(),
                            link.right) != epoch.new_right_subjects.end());
    }
  }
}

TEST(GrowWorldTest, ApplyGrowthEpochIsAdditive) {
  WorldProfile profile = TinyTestProfile();
  GeneratedWorld world = Generate(profile);
  GrowthSchedule schedule = GrowWorld(profile, 5, 0.05, 3);

  for (const GrowthEpoch& epoch : schedule.epochs) {
    const size_t old_left_size = world.left.size();
    const size_t old_right_size = world.right.size();
    const size_t old_left_terms = world.left.dictionary().size();
    const size_t old_right_terms = world.right.dictionary().size();
    std::vector<rdf::TermId> old_left_subjects = world.left.Subjects();
    const uint64_t old_epoch = world.left.ingest_epoch();

    ApplyGrowthEpoch(epoch, &world.left, &world.right);

    // Strictly additive: store sizes grow by the epoch's triples.
    EXPECT_EQ(world.left.size(), old_left_size + epoch.left_triples.size());
    EXPECT_EQ(world.right.size(),
              old_right_size + epoch.right_triples.size());
    EXPECT_EQ(world.left.ingest_epoch(), old_epoch + 1);

    // The watermark contract: every new subject interned past every
    // pre-existing term, and the old subject list is a strict prefix.
    std::vector<rdf::TermId> subjects = world.left.Subjects();
    ASSERT_EQ(subjects.size(),
              old_left_subjects.size() + epoch.new_left_subjects.size());
    for (size_t i = 0; i < old_left_subjects.size(); ++i) {
      ASSERT_EQ(subjects[i], old_left_subjects[i]) << "old subject moved";
    }
    for (size_t i = old_left_subjects.size(); i < subjects.size(); ++i) {
      EXPECT_GE(subjects[i], static_cast<rdf::TermId>(old_left_terms));
    }
    EXPECT_GT(world.right.dictionary().size(), old_right_terms);

    // The ingested triples are immediately queryable.
    for (const GrowthTriple& triple : epoch.left_triples) {
      rdf::TermId s = world.left.InternTerm(triple.subject);
      rdf::TermId p = world.left.InternTerm(triple.predicate);
      rdf::TermId o = world.left.InternTerm(triple.object);
      EXPECT_TRUE(world.left.Contains(s, p, o));
    }
  }
}

TEST(GrowWorldTest, GrowthIsIndependentOfStoreState) {
  // The schedule is a pure function of (profile, seed, fraction, epochs):
  // computing it before or after applying epochs to a world must not
  // matter. Apply schedule A to a world, then recompute — identical.
  WorldProfile profile = TinyTestProfile();
  GeneratedWorld world = Generate(profile);
  GrowthSchedule before = GrowWorld(profile, 13, 0.05, 2);
  ApplyGrowthEpoch(before.epochs[0], &world.left, &world.right);
  GrowthSchedule after = GrowWorld(profile, 13, 0.05, 2);
  for (size_t i = 0; i < before.epochs.size(); ++i) {
    EXPECT_TRUE(SameEpoch(before.epochs[i], after.epochs[i]))
        << "epoch " << i;
  }
}

}  // namespace
}  // namespace alex::datagen
