#include "rdf/term.h"

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

TEST(TermTest, IriConstruction) {
  Term t = Term::Iri("http://example.org/a");
  EXPECT_TRUE(t.is_iri());
  EXPECT_FALSE(t.is_literal());
  EXPECT_EQ(t.lexical(), "http://example.org/a");
  EXPECT_EQ(t.ToString(), "<http://example.org/a>");
}

TEST(TermTest, BlankNode) {
  Term t = Term::Blank("b0");
  EXPECT_TRUE(t.is_blank());
  EXPECT_EQ(t.ToString(), "_:b0");
}

TEST(TermTest, StringLiteral) {
  Term t = Term::StringLiteral("hello");
  EXPECT_TRUE(t.is_literal());
  EXPECT_EQ(t.literal_type(), LiteralType::kString);
  EXPECT_EQ(t.ToString(), "\"hello\"");
}

TEST(TermTest, IntegerLiteralRoundTrip) {
  Term t = Term::IntegerLiteral(-12345);
  EXPECT_EQ(t.literal_type(), LiteralType::kInteger);
  EXPECT_EQ(t.AsInteger(), -12345);
  EXPECT_DOUBLE_EQ(t.AsDouble(), -12345.0);
}

TEST(TermTest, DoubleLiteralRoundTrip) {
  Term t = Term::DoubleLiteral(2.5);
  EXPECT_EQ(t.literal_type(), LiteralType::kDouble);
  EXPECT_DOUBLE_EQ(t.AsDouble(), 2.5);
}

TEST(TermTest, BooleanLiteral) {
  EXPECT_TRUE(Term::BooleanLiteral(true).AsBoolean());
  EXPECT_FALSE(Term::BooleanLiteral(false).AsBoolean());
  EXPECT_EQ(Term::BooleanLiteral(true).lexical(), "true");
}

TEST(TermTest, DateLiteralDays) {
  Term epoch = Term::DateLiteral("1970-01-01");
  EXPECT_EQ(epoch.AsDateDays(), 0);
  Term next = Term::DateLiteral("1970-01-02");
  EXPECT_EQ(next.AsDateDays(), 1);
  Term before = Term::DateLiteral("1969-12-31");
  EXPECT_EQ(before.AsDateDays(), -1);
  // A known date: 2000-03-01 is 11017 days after the epoch.
  EXPECT_EQ(Term::DateLiteral("2000-03-01").AsDateDays(), 11017);
}

TEST(TermTest, EqualityAndOrdering) {
  Term a = Term::Iri("x");
  Term b = Term::Iri("x");
  Term c = Term::StringLiteral("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c);  // kIri < kLiteral
}

TEST(TermTest, EncodingKeyDistinguishesKindsAndTypes) {
  EXPECT_NE(Term::Iri("x").EncodingKey(),
            Term::StringLiteral("x").EncodingKey());
  EXPECT_NE(Term::IntegerLiteral(5).EncodingKey(),
            Term::StringLiteral("5").EncodingKey());
  EXPECT_EQ(Term::Iri("x").EncodingKey(), Term::Iri("x").EncodingKey());
}

TEST(CivilDateTest, KnownDates) {
  EXPECT_EQ(CivilDateToDays(1970, 1, 1), 0);
  EXPECT_EQ(CivilDateToDays(2000, 1, 1), 10957);
  EXPECT_EQ(CivilDateToDays(1969, 12, 31), -1);
  // Leap year: 2000-02-29 exists.
  EXPECT_EQ(CivilDateToDays(2000, 3, 1) - CivilDateToDays(2000, 2, 28), 2);
  // Non-leap year 1900 (divisible by 100, not by 400).
  EXPECT_EQ(CivilDateToDays(1900, 3, 1) - CivilDateToDays(1900, 2, 28), 1);
}

TEST(ParseIsoDateTest, ValidDates) {
  int y, m, d;
  EXPECT_TRUE(ParseIsoDate("2015-05-31", &y, &m, &d));
  EXPECT_EQ(y, 2015);
  EXPECT_EQ(m, 5);
  EXPECT_EQ(d, 31);
}

TEST(ParseIsoDateTest, RejectsMalformed) {
  int y, m, d;
  EXPECT_FALSE(ParseIsoDate("2015-5-31", &y, &m, &d));
  EXPECT_FALSE(ParseIsoDate("2015/05/31", &y, &m, &d));
  EXPECT_FALSE(ParseIsoDate("2015-13-01", &y, &m, &d));
  EXPECT_FALSE(ParseIsoDate("2015-00-01", &y, &m, &d));
  EXPECT_FALSE(ParseIsoDate("2015-01-32", &y, &m, &d));
  EXPECT_FALSE(ParseIsoDate("", &y, &m, &d));
  EXPECT_FALSE(ParseIsoDate("20150531", &y, &m, &d));
}

TEST(TermTest, MalformedNumericLexicalDefaultsToZero) {
  Term t = Term::DateLiteral("not-a-date");
  EXPECT_EQ(t.AsDateDays(), 0);
}

}  // namespace
}  // namespace alex::rdf
