#include "rdf/triple_store.h"

#include <gtest/gtest.h>

#include <set>

namespace alex::rdf {
namespace {

class TripleStoreTest : public ::testing::Test {
 protected:
  TripleStoreTest() : store_("test") {
    s1_ = store_.InternTerm(Term::Iri("http://x/s1"));
    s2_ = store_.InternTerm(Term::Iri("http://x/s2"));
    p1_ = store_.InternTerm(Term::Iri("http://x/p1"));
    p2_ = store_.InternTerm(Term::Iri("http://x/p2"));
    o1_ = store_.InternTerm(Term::StringLiteral("v1"));
    o2_ = store_.InternTerm(Term::StringLiteral("v2"));
    store_.Add(s1_, p1_, o1_);
    store_.Add(s1_, p2_, o2_);
    store_.Add(s2_, p1_, o1_);
    store_.Add(s2_, p1_, o2_);
  }

  TripleStore store_;
  TermId s1_, s2_, p1_, p2_, o1_, o2_;
};

TEST_F(TripleStoreTest, SizeDeduplicates) {
  EXPECT_EQ(store_.size(), 4u);
  store_.Add(s1_, p1_, o1_);  // duplicate
  EXPECT_EQ(store_.size(), 4u);
}

TEST_F(TripleStoreTest, MatchFullyUnbound) {
  EXPECT_EQ(store_.Match(std::nullopt, std::nullopt, std::nullopt).size(),
            4u);
}

TEST_F(TripleStoreTest, MatchBySubject) {
  auto rows = store_.Match(s1_, std::nullopt, std::nullopt);
  EXPECT_EQ(rows.size(), 2u);
  for (const Triple& t : rows) EXPECT_EQ(t.subject, s1_);
}

TEST_F(TripleStoreTest, MatchBySubjectPredicate) {
  auto rows = store_.Match(s2_, p1_, std::nullopt);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TripleStoreTest, MatchByPredicate) {
  EXPECT_EQ(store_.Match(std::nullopt, p1_, std::nullopt).size(), 3u);
  EXPECT_EQ(store_.Match(std::nullopt, p2_, std::nullopt).size(), 1u);
}

TEST_F(TripleStoreTest, MatchByPredicateObject) {
  auto rows = store_.Match(std::nullopt, p1_, o1_);
  EXPECT_EQ(rows.size(), 2u);
  std::set<TermId> subjects;
  for (const Triple& t : rows) subjects.insert(t.subject);
  EXPECT_EQ(subjects, (std::set<TermId>{s1_, s2_}));
}

TEST_F(TripleStoreTest, MatchByObjectOnly) {
  EXPECT_EQ(store_.Match(std::nullopt, std::nullopt, o2_).size(), 2u);
}

TEST_F(TripleStoreTest, MatchBySubjectObjectSkippingPredicate) {
  auto rows = store_.Match(s2_, std::nullopt, o2_);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].predicate, p1_);
}

TEST_F(TripleStoreTest, MatchFullyBound) {
  EXPECT_EQ(store_.Match(s1_, p1_, o1_).size(), 1u);
  EXPECT_EQ(store_.Match(s1_, p1_, o2_).size(), 0u);
}

TEST_F(TripleStoreTest, Contains) {
  EXPECT_TRUE(store_.Contains(s1_, p1_, o1_));
  EXPECT_FALSE(store_.Contains(s1_, p1_, o2_));
}

TEST_F(TripleStoreTest, SubjectsDistinctSorted) {
  auto subjects = store_.Subjects();
  ASSERT_EQ(subjects.size(), 2u);
  EXPECT_EQ(std::set<TermId>(subjects.begin(), subjects.end()),
            (std::set<TermId>{s1_, s2_}));
}

TEST_F(TripleStoreTest, PredicatesDistinct) {
  auto predicates = store_.Predicates();
  EXPECT_EQ(std::set<TermId>(predicates.begin(), predicates.end()),
            (std::set<TermId>{p1_, p2_}));
}

TEST_F(TripleStoreTest, Objects) {
  auto objects = store_.Objects(s2_, p1_);
  EXPECT_EQ(std::set<TermId>(objects.begin(), objects.end()),
            (std::set<TermId>{o1_, o2_}));
  EXPECT_TRUE(store_.Objects(s1_, store_.InternTerm(Term::Iri("nope")))
                  .empty());
}

TEST_F(TripleStoreTest, AddAfterReadReindexes) {
  EXPECT_EQ(store_.size(), 4u);
  TermId o3 = store_.InternTerm(Term::StringLiteral("v3"));
  store_.Add(s1_, p1_, o3);
  EXPECT_EQ(store_.size(), 5u);
  EXPECT_TRUE(store_.Contains(s1_, p1_, o3));
}

TEST(TripleStoreBasicTest, EmptyStore) {
  TripleStore store("empty");
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Subjects().empty());
  EXPECT_TRUE(store.Match(std::nullopt, std::nullopt, std::nullopt).empty());
}

TEST(TripleStoreBasicTest, TermConvenienceOverload) {
  TripleStore store("conv");
  store.Add(Term::Iri("s"), Term::Iri("p"), Term::StringLiteral("o"));
  EXPECT_EQ(store.size(), 1u);
  auto s = store.dictionary().Lookup(Term::Iri("s"));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(store.Match(*s, std::nullopt, std::nullopt).size(), 1u);
}

TEST(TripleStoreBasicTest, LargeScaleMatch) {
  TripleStore store("large");
  TermId p = store.InternTerm(Term::Iri("p"));
  for (int i = 0; i < 5000; ++i) {
    TermId s = store.InternTerm(Term::Iri("s" + std::to_string(i)));
    TermId o = store.InternTerm(Term::IntegerLiteral(i % 100));
    store.Add(s, p, o);
  }
  EXPECT_EQ(store.size(), 5000u);
  auto o42 = store.dictionary().Lookup(Term::IntegerLiteral(42));
  ASSERT_TRUE(o42.has_value());
  EXPECT_EQ(store.Match(std::nullopt, p, *o42).size(), 50u);
}

}  // namespace
}  // namespace alex::rdf
