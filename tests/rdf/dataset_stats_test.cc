#include "rdf/dataset_stats.h"

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

TEST(DatasetStatsTest, BasicCounts) {
  TripleStore store("stats");
  TermId s1 = store.InternTerm(Term::Iri("s1"));
  TermId s2 = store.InternTerm(Term::Iri("s2"));
  TermId name = store.InternTerm(Term::Iri("name"));
  TermId type = store.InternTerm(Term::Iri("type"));
  TermId thing = store.InternTerm(Term::StringLiteral("thing"));
  store.Add(s1, name, store.InternTerm(Term::StringLiteral("alpha")));
  store.Add(s2, name, store.InternTerm(Term::StringLiteral("beta")));
  store.Add(s1, type, thing);
  store.Add(s2, type, thing);

  DatasetStats stats = ComputeStats(store);
  EXPECT_EQ(stats.name, "stats");
  EXPECT_EQ(stats.triples, 4u);
  EXPECT_EQ(stats.subjects, 2u);
  EXPECT_EQ(stats.predicates, 2u);
  EXPECT_EQ(stats.distinct_objects, 3u);
}

TEST(DatasetStatsTest, FunctionalityOfUniqueValuedPredicate) {
  TripleStore store("f");
  TermId name = store.InternTerm(Term::Iri("name"));
  for (int i = 0; i < 10; ++i) {
    store.Add(store.InternTerm(Term::Iri("s" + std::to_string(i))), name,
              store.InternTerm(Term::StringLiteral("v" + std::to_string(i))));
  }
  DatasetStats stats = ComputeStats(store);
  const PredicateStats* ps = stats.Find(name);
  ASSERT_NE(ps, nullptr);
  EXPECT_DOUBLE_EQ(ps->Functionality(), 1.0);
  EXPECT_DOUBLE_EQ(ps->InverseFunctionality(), 1.0);
}

TEST(DatasetStatsTest, LowInverseFunctionalityForSharedValues) {
  TripleStore store("t");
  TermId type = store.InternTerm(Term::Iri("type"));
  TermId thing = store.InternTerm(Term::StringLiteral("thing"));
  for (int i = 0; i < 20; ++i) {
    store.Add(store.InternTerm(Term::Iri("s" + std::to_string(i))), type,
              thing);
  }
  DatasetStats stats = ComputeStats(store);
  const PredicateStats* ps = stats.Find(type);
  ASSERT_NE(ps, nullptr);
  EXPECT_DOUBLE_EQ(ps->Functionality(), 1.0);       // one value per subject
  EXPECT_DOUBLE_EQ(ps->InverseFunctionality(), 0.05);  // 1 object / 20
}

TEST(DatasetStatsTest, MultiValuedPredicateFunctionality) {
  TripleStore store("t");
  TermId p = store.InternTerm(Term::Iri("p"));
  TermId s = store.InternTerm(Term::Iri("s"));
  for (int i = 0; i < 4; ++i) {
    store.Add(s, p, store.InternTerm(Term::IntegerLiteral(i)));
  }
  DatasetStats stats = ComputeStats(store);
  const PredicateStats* ps = stats.Find(p);
  ASSERT_NE(ps, nullptr);
  EXPECT_DOUBLE_EQ(ps->Functionality(), 0.25);  // 1 subject / 4 triples
}

TEST(DatasetStatsTest, FindUnknownPredicate) {
  TripleStore store("t");
  store.Add(Term::Iri("s"), Term::Iri("p"), Term::StringLiteral("v"));
  DatasetStats stats = ComputeStats(store);
  EXPECT_EQ(stats.Find(999), nullptr);
}

TEST(DatasetStatsTest, EmptyStore) {
  TripleStore store("empty");
  DatasetStats stats = ComputeStats(store);
  EXPECT_EQ(stats.triples, 0u);
  EXPECT_EQ(stats.subjects, 0u);
  EXPECT_TRUE(stats.per_predicate.empty());
}

TEST(DatasetStatsTest, ZeroCountFunctionalityIsZero) {
  PredicateStats ps;
  EXPECT_DOUBLE_EQ(ps.Functionality(), 0.0);
  EXPECT_DOUBLE_EQ(ps.InverseFunctionality(), 0.0);
}

}  // namespace
}  // namespace alex::rdf
