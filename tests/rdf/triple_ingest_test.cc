// Streaming triple ingest (TripleStore::Ingest): epoch-stamped add/retract
// batches applied retracts-first, duplicate tolerance, eager re-indexing,
// and the MatchCursor generation/staleness contract (the regression test
// for cursors outliving a mutation).
#include "rdf/triple_store.h"

#include <algorithm>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

class TripleIngestTest : public ::testing::Test {
 protected:
  TripleIngestTest() : store_("ingest") {
    s1_ = store_.InternTerm(Term::Iri("http://ex/e1"));
    s2_ = store_.InternTerm(Term::Iri("http://ex/e2"));
    name_ = store_.InternTerm(Term::Iri("http://ex/name"));
    age_ = store_.InternTerm(Term::Iri("http://ex/age"));
    ada_ = store_.InternTerm(Term::StringLiteral("Ada"));
    alan_ = store_.InternTerm(Term::StringLiteral("Alan"));
    store_.Add(s1_, name_, ada_);
    store_.Add(s2_, name_, alan_);
    EXPECT_EQ(store_.size(), 2u);
  }

  TripleStore store_;
  TermId s1_, s2_, name_, age_, ada_, alan_;
};

TEST_F(TripleIngestTest, RetractsApplyBeforeAdds) {
  TermId forty = store_.InternTerm(Term::IntegerLiteral(40));
  IngestBatch batch;
  batch.retracts.push_back({s1_, name_, ada_});
  batch.adds.push_back({s1_, age_, forty});
  batch.adds.push_back({s2_, age_, forty});

  IngestResult result = store_.Ingest(batch);
  EXPECT_EQ(result.retracted, 1u);
  EXPECT_EQ(result.added, 2u);
  EXPECT_EQ(result.epoch, 1u);
  EXPECT_EQ(store_.size(), 3u);
  EXPECT_FALSE(store_.Contains(s1_, name_, ada_));
  EXPECT_TRUE(store_.Contains(s1_, age_, forty));
  EXPECT_TRUE(store_.Contains(s2_, age_, forty));
}

TEST_F(TripleIngestTest, DuplicateAddsCountOnce) {
  TermId forty = store_.InternTerm(Term::IntegerLiteral(40));
  IngestBatch batch;
  // The same new triple three times, plus one triple already in the store.
  batch.adds.push_back({s1_, age_, forty});
  batch.adds.push_back({s1_, age_, forty});
  batch.adds.push_back({s1_, age_, forty});
  batch.adds.push_back({s1_, name_, ada_});

  IngestResult result = store_.Ingest(batch);
  EXPECT_EQ(result.added, 1u);
  EXPECT_EQ(result.retracted, 0u);
  EXPECT_EQ(store_.size(), 3u);
}

TEST_F(TripleIngestTest, AbsentRetractsAreTolerated) {
  TermId forty = store_.InternTerm(Term::IntegerLiteral(40));
  IngestBatch batch;
  batch.retracts.push_back({s1_, age_, forty});  // never existed
  batch.retracts.push_back({s2_, name_, alan_});
  batch.retracts.push_back({s2_, name_, alan_});  // duplicate retract

  IngestResult result = store_.Ingest(batch);
  EXPECT_EQ(result.retracted, 1u);
  EXPECT_EQ(result.added, 0u);
  EXPECT_EQ(store_.size(), 1u);
  EXPECT_TRUE(store_.Contains(s1_, name_, ada_));
}

TEST_F(TripleIngestTest, RetractThenReAddInOneBatchKeepsTriple) {
  IngestBatch batch;
  batch.retracts.push_back({s1_, name_, ada_});
  batch.adds.push_back({s1_, name_, ada_});

  IngestResult result = store_.Ingest(batch);
  // Retracts apply first, so the add re-inserts and both are counted.
  EXPECT_EQ(result.retracted, 1u);
  EXPECT_EQ(result.added, 1u);
  EXPECT_TRUE(store_.Contains(s1_, name_, ada_));
  EXPECT_EQ(store_.size(), 2u);
}

TEST_F(TripleIngestTest, EpochAdvancesPerBatchOnly) {
  EXPECT_EQ(store_.ingest_epoch(), 0u);
  IngestBatch empty;
  IngestResult first = store_.Ingest(empty);
  EXPECT_EQ(first.added, 0u);
  EXPECT_EQ(first.retracted, 0u);
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_EQ(store_.ingest_epoch(), 1u);
  EXPECT_EQ(store_.size(), 2u);

  // Plain Add() bumps the mutation generation but not the ingest epoch.
  store_.Add(s1_, age_, store_.InternTerm(Term::IntegerLiteral(41)));
  EXPECT_EQ(store_.ingest_epoch(), 1u);
  EXPECT_EQ(store_.Ingest(empty).epoch, 2u);
}

TEST_F(TripleIngestTest, StoreIsFullyIndexedAfterIngest) {
  TermId s3 = store_.InternTerm(Term::Iri("http://ex/e3"));
  TermId grace = store_.InternTerm(Term::StringLiteral("Grace"));
  IngestBatch batch;
  batch.adds.push_back({s3, name_, grace});
  batch.adds.push_back({s3, age_, store_.InternTerm(Term::IntegerLiteral(36))});
  store_.Ingest(batch);

  // All three access paths see the new subject immediately.
  std::vector<TermId> subjects = store_.Subjects();
  EXPECT_TRUE(std::find(subjects.begin(), subjects.end(), s3) !=
              subjects.end());
  EXPECT_TRUE(std::is_sorted(subjects.begin(), subjects.end()));
  EXPECT_EQ(store_.CountMatches(std::nullopt, name_, std::nullopt), 3u);
  EXPECT_EQ(store_.Objects(s3, name_), std::vector<TermId>{grace});

  // Ordered scans still walk exact sorted ranges.
  MatchCursor cursor =
      store_.ScanOrdered(IndexOrder::kPos, std::nullopt, name_, std::nullopt);
  EXPECT_EQ(cursor.remaining(), 3u);
}

TEST_F(TripleIngestTest, CursorsGoStaleOnIngest) {
  MatchCursor cursor = store_.Scan(std::nullopt, name_, std::nullopt);
  EXPECT_FALSE(cursor.stale());
  EXPECT_EQ(cursor.remaining(), 2u);
  ASSERT_NE(cursor.Next(), nullptr);

  IngestBatch batch;
  batch.adds.push_back(
      {store_.InternTerm(Term::Iri("http://ex/e3")), name_,
       store_.InternTerm(Term::StringLiteral("Grace"))});
  store_.Ingest(batch);

  // The cursor captured the pre-ingest generation: it must now report
  // stale (walking it is UB; debug builds assert on Next()/remaining()).
  EXPECT_TRUE(cursor.stale());

  // A fresh cursor sees the post-ingest range.
  MatchCursor fresh = store_.Scan(std::nullopt, name_, std::nullopt);
  EXPECT_FALSE(fresh.stale());
  EXPECT_EQ(fresh.remaining(), 3u);
}

TEST_F(TripleIngestTest, CursorsGoStaleOnAdd) {
  // The original lifetime hazard: Add() resorts the index storage a live
  // cursor borrows. The generation counter must catch it too.
  MatchCursor cursor = store_.Scan(s1_, std::nullopt, std::nullopt);
  EXPECT_FALSE(cursor.stale());
  store_.Add(s1_, age_, store_.InternTerm(Term::IntegerLiteral(40)));
  EXPECT_TRUE(cursor.stale());
}

TEST_F(TripleIngestTest, DefaultCursorIsNeverStale) {
  MatchCursor cursor;
  EXPECT_FALSE(cursor.stale());
  EXPECT_EQ(cursor.Next(), nullptr);
  EXPECT_EQ(cursor.remaining(), 0u);
}

TEST_F(TripleIngestTest, GenerationAdvancesMonotonically) {
  uint64_t g0 = store_.generation();
  store_.Ingest(IngestBatch{});
  uint64_t g1 = store_.generation();
  EXPECT_GT(g1, g0);
  store_.Add(s2_, age_, store_.InternTerm(Term::IntegerLiteral(39)));
  EXPECT_GT(store_.generation(), g1);
}

}  // namespace
}  // namespace alex::rdf
