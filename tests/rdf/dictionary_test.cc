#include "rdf/dictionary.h"

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

TEST(DictionaryTest, InternReturnsStableIds) {
  Dictionary dict;
  TermId a = dict.Intern(Term::Iri("http://x/a"));
  TermId b = dict.Intern(Term::Iri("http://x/b"));
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern(Term::Iri("http://x/a")), a);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, IdsAreDenseFromZero) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern(Term::Iri("a")), 0u);
  EXPECT_EQ(dict.Intern(Term::Iri("b")), 1u);
  EXPECT_EQ(dict.Intern(Term::Iri("c")), 2u);
}

TEST(DictionaryTest, LookupWithoutInterning) {
  Dictionary dict;
  TermId a = dict.Intern(Term::StringLiteral("v"));
  EXPECT_EQ(dict.Lookup(Term::StringLiteral("v")), std::optional<TermId>(a));
  EXPECT_FALSE(dict.Lookup(Term::StringLiteral("w")).has_value());
  EXPECT_EQ(dict.size(), 1u);  // Lookup must not intern
}

TEST(DictionaryTest, TermRoundTrip) {
  Dictionary dict;
  Term original = Term::IntegerLiteral(99);
  TermId id = dict.Intern(original);
  EXPECT_EQ(dict.term(id), original);
}

TEST(DictionaryTest, DistinguishesKindAndLiteralType) {
  Dictionary dict;
  TermId iri = dict.Intern(Term::Iri("5"));
  TermId str = dict.Intern(Term::StringLiteral("5"));
  TermId num = dict.Intern(Term::IntegerLiteral(5));
  EXPECT_NE(iri, str);
  EXPECT_NE(str, num);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, ManyTerms) {
  Dictionary dict;
  for (int i = 0; i < 10000; ++i) {
    dict.Intern(Term::Iri("http://x/" + std::to_string(i)));
  }
  EXPECT_EQ(dict.size(), 10000u);
  EXPECT_EQ(dict.term(1234).lexical(), "http://x/1234");
}

}  // namespace
}  // namespace alex::rdf
