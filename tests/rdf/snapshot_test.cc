#include "rdf/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "datagen/profiles.h"
#include "rdf/ntriples.h"

namespace alex::rdf {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TripleStore SampleStore() {
  TripleStore store("sample");
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/name"),
            Term::StringLiteral("Ada \"Countess\" Lovelace\n"));
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/born"),
            Term::DateLiteral("1815-12-10"));
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/age"),
            Term::IntegerLiteral(36));
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/score"),
            Term::DoubleLiteral(-2.5));
  store.Add(Term::Blank("b"), Term::Iri("http://x/flag"),
            Term::BooleanLiteral(true));
  return store;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  TripleStore original = SampleStore();
  std::string path = TempPath("snapshot_roundtrip.bin");
  ASSERT_TRUE(SaveStoreSnapshot(original, path).ok());
  Result<TripleStore> loaded = LoadStoreSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "sample");
  EXPECT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->dictionary().size(), original.dictionary().size());
  // Same canonical serialization.
  EXPECT_EQ(WriteNTriples(*loaded), WriteNTriples(original));
  std::remove(path.c_str());
}

TEST(SnapshotTest, TermIdsPreserved) {
  TripleStore original = SampleStore();
  std::string path = TempPath("snapshot_ids.bin");
  ASSERT_TRUE(SaveStoreSnapshot(original, path).ok());
  Result<TripleStore> loaded = LoadStoreSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  for (TermId id = 0; id < original.dictionary().size(); ++id) {
    EXPECT_EQ(loaded->dictionary().term(id), original.dictionary().term(id))
        << "term id " << id;
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, GeneratedWorldRoundTrip) {
  datagen::GeneratedWorld world =
      datagen::Generate(datagen::TinyTestProfile());
  std::string path = TempPath("snapshot_world.bin");
  ASSERT_TRUE(SaveStoreSnapshot(world.left, path).ok());
  Result<TripleStore> loaded = LoadStoreSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(WriteNTriples(*loaded), WriteNTriples(world.left));
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadStoreSnapshot("/nonexistent/x.bin").status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotTest, GarbageFileIsParseError) {
  std::string path = TempPath("snapshot_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "this is definitely not a snapshot";
  }
  EXPECT_EQ(LoadStoreSnapshot(path).status().code(),
            StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncatedFileIsParseError) {
  TripleStore original = SampleStore();
  std::string path = TempPath("snapshot_trunc.bin");
  ASSERT_TRUE(SaveStoreSnapshot(original, path).ok());
  // Truncate at a few offsets; every cut must be a clean parse error.
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  for (size_t cut : {9ul, 15ul, 30ul, full.size() - 3}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(
                               std::min(cut, full.size())));
    out.close();
    Result<TripleStore> loaded = LoadStoreSnapshot(path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, TrailingBytesRejected) {
  TripleStore original = SampleStore();
  std::string path = TempPath("snapshot_trailing.bin");
  ASSERT_TRUE(SaveStoreSnapshot(original, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "junk";
  }
  EXPECT_EQ(LoadStoreSnapshot(path).status().code(),
            StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(SnapshotTest, EmptyStoreRoundTrip) {
  TripleStore empty("nothing");
  std::string path = TempPath("snapshot_empty.bin");
  ASSERT_TRUE(SaveStoreSnapshot(empty, path).ok());
  Result<TripleStore> loaded = LoadStoreSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->name(), "nothing");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace alex::rdf
