#include "rdf/ntriples.h"

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

TEST(NTriplesTest, ParsesIriTriple) {
  TripleStore store("t");
  Status st = ParseNTriples(
      "<http://x/s> <http://x/p> <http://x/o> .\n", &store);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(store.size(), 1u);
}

TEST(NTriplesTest, ParsesStringLiteral) {
  TripleStore store("t");
  ASSERT_TRUE(
      ParseNTriples("<s> <p> \"hello world\" .", &store).ok());
  auto triples = store.Match(std::nullopt, std::nullopt, std::nullopt);
  ASSERT_EQ(triples.size(), 1u);
  const Term& o = store.dictionary().term(triples[0].object);
  EXPECT_TRUE(o.is_literal());
  EXPECT_EQ(o.lexical(), "hello world");
}

TEST(NTriplesTest, ParsesTypedLiterals) {
  TripleStore store("t");
  const char* doc =
      "<s> <p1> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "<s> <p2> \"2.5\"^^<http://www.w3.org/2001/XMLSchema#double> .\n"
      "<s> <p3> \"2001-02-03\"^^<http://www.w3.org/2001/XMLSchema#date> .\n"
      "<s> <p4> \"true\"^^<http://www.w3.org/2001/XMLSchema#boolean> .\n";
  ASSERT_TRUE(ParseNTriples(doc, &store).ok());
  EXPECT_EQ(store.size(), 4u);
  EXPECT_TRUE(
      store.dictionary().Lookup(Term::IntegerLiteral(42)).has_value());
  EXPECT_TRUE(
      store.dictionary().Lookup(Term::DoubleLiteral(2.5)).has_value());
  EXPECT_TRUE(
      store.dictionary().Lookup(Term::DateLiteral("2001-02-03")).has_value());
  EXPECT_TRUE(
      store.dictionary().Lookup(Term::BooleanLiteral(true)).has_value());
}

TEST(NTriplesTest, UnknownDatatypeKeptAsString) {
  TripleStore store("t");
  ASSERT_TRUE(ParseNTriples(
                  "<s> <p> \"x\"^^<http://example.org/custom> .", &store)
                  .ok());
  EXPECT_TRUE(store.dictionary().Lookup(Term::StringLiteral("x")).has_value());
}

TEST(NTriplesTest, LanguageTagDropped) {
  TripleStore store("t");
  ASSERT_TRUE(ParseNTriples("<s> <p> \"bonjour\"@fr .", &store).ok());
  EXPECT_TRUE(
      store.dictionary().Lookup(Term::StringLiteral("bonjour")).has_value());
}

TEST(NTriplesTest, Escapes) {
  TripleStore store("t");
  ASSERT_TRUE(ParseNTriples(
                  R"(<s> <p> "a\tb\nc\"d\\e" .)", &store)
                  .ok());
  EXPECT_TRUE(store.dictionary()
                  .Lookup(Term::StringLiteral("a\tb\nc\"d\\e"))
                  .has_value());
}

TEST(NTriplesTest, BlankNodeSubject) {
  TripleStore store("t");
  ASSERT_TRUE(ParseNTriples("_:b0 <p> \"v\" .", &store).ok());
  auto triples = store.Match(std::nullopt, std::nullopt, std::nullopt);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_TRUE(store.dictionary().term(triples[0].subject).is_blank());
}

TEST(NTriplesTest, SkipsCommentsAndBlankLines) {
  TripleStore store("t");
  const char* doc =
      "# a comment\n"
      "\n"
      "<s> <p> <o> .\n"
      "   # indented comment\n";
  ASSERT_TRUE(ParseNTriples(doc, &store).ok());
  EXPECT_EQ(store.size(), 1u);
}

TEST(NTriplesTest, ErrorsCarryLineNumbers) {
  TripleStore store("t");
  Status st = ParseNTriples("<s> <p> <o> .\nbogus line\n", &store);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, RejectsMissingDot) {
  TripleStore store("t");
  EXPECT_FALSE(ParseNTriples("<s> <p> <o>", &store).ok());
}

TEST(NTriplesTest, RejectsLiteralSubject) {
  TripleStore store("t");
  EXPECT_FALSE(ParseNTriples("\"s\" <p> <o> .", &store).ok());
}

TEST(NTriplesTest, RejectsNonIriPredicate) {
  TripleStore store("t");
  EXPECT_FALSE(ParseNTriples("<s> \"p\" <o> .", &store).ok());
  EXPECT_FALSE(ParseNTriples("<s> _:p <o> .", &store).ok());
}

TEST(NTriplesTest, RoundTripThroughWriter) {
  TripleStore store("t");
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
            Term::StringLiteral("tab\there"));
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/q"),
            Term::IntegerLiteral(7));
  store.Add(Term::Blank("b1"), Term::Iri("http://x/p"),
            Term::DateLiteral("1999-12-31"));
  std::string doc = WriteNTriples(store);

  TripleStore reread("t2");
  ASSERT_TRUE(ParseNTriples(doc, &reread).ok()) << doc;
  EXPECT_EQ(reread.size(), store.size());
  // Round-trip again and compare serializations (canonical SPO order).
  EXPECT_EQ(WriteNTriples(reread), doc);
}

TEST(NTriplesTest, LoadMissingFileFails) {
  TripleStore store("t");
  Status st = LoadNTriplesFile("/nonexistent/path.nt", &store);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(NTriplesTest, TermToNTriplesEscaping) {
  EXPECT_EQ(TermToNTriples(Term::StringLiteral("a\"b")), "\"a\\\"b\"");
  EXPECT_EQ(TermToNTriples(Term::Iri("http://x")), "<http://x>");
  EXPECT_EQ(TermToNTriples(Term::Blank("n")), "_:n");
  EXPECT_EQ(TermToNTriples(Term::IntegerLiteral(3)),
            "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

}  // namespace
}  // namespace alex::rdf
