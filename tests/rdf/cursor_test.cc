// MatchCursor / CountMatches equivalence against Match() and a brute-force
// reference, over randomized stores and all eight bound-position
// combinations.
#include <algorithm>
#include <array>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rdf/triple_store.h"

namespace alex::rdf {
namespace {

std::vector<Triple> Collect(MatchCursor cursor) {
  std::vector<Triple> out;
  while (const Triple* t = cursor.Next()) out.push_back(*t);
  return out;
}

bool TripleLess(const Triple& a, const Triple& b) {
  if (a.subject != b.subject) return a.subject < b.subject;
  if (a.predicate != b.predicate) return a.predicate < b.predicate;
  return a.object < b.object;
}

std::vector<Triple> Sorted(std::vector<Triple> triples) {
  std::sort(triples.begin(), triples.end(), TripleLess);
  return triples;
}

// Scan(), Match(), CountMatches() and a brute-force filter over all triples
// must agree for the given pattern.
void CheckPattern(const TripleStore& store, TermPattern s, TermPattern p,
                  TermPattern o) {
  std::vector<Triple> all =
      store.Match(std::nullopt, std::nullopt, std::nullopt);
  std::vector<Triple> reference;
  for (const Triple& t : all) {
    if (s.has_value() && t.subject != *s) continue;
    if (p.has_value() && t.predicate != *p) continue;
    if (o.has_value() && t.object != *o) continue;
    reference.push_back(t);
  }

  MatchCursor cursor = store.Scan(s, p, o);
  EXPECT_EQ(cursor.remaining(), reference.size());
  std::vector<Triple> scanned = Collect(cursor);
  std::vector<Triple> matched = store.Match(s, p, o);

  // The cursor walks the same index range Match() copies: identical order.
  EXPECT_EQ(scanned, matched);
  // Against the reference, only the multiset is fixed (index order varies
  // with the bound positions).
  EXPECT_EQ(Sorted(scanned), Sorted(reference));
  EXPECT_EQ(store.CountMatches(s, p, o), reference.size());
}

TEST(MatchCursorTest, EmptyStore) {
  TripleStore store("empty");
  EXPECT_EQ(store.Scan(std::nullopt, std::nullopt, std::nullopt).remaining(),
            0u);
  EXPECT_EQ(store.Scan(std::nullopt, std::nullopt, std::nullopt).Next(),
            nullptr);
  EXPECT_EQ(store.CountMatches(std::nullopt, std::nullopt, std::nullopt), 0u);
}

TEST(MatchCursorTest, AllBoundCombinationsOnRandomStores) {
  Rng rng(0xc0ffee);
  for (int round = 0; round < 6; ++round) {
    TripleStore store("random");
    const size_t num_subjects = 3 + rng.NextBounded(8);
    const size_t num_predicates = 2 + rng.NextBounded(4);
    const size_t num_objects = 3 + rng.NextBounded(10);
    std::vector<TermId> subjects, predicates, objects;
    for (size_t i = 0; i < num_subjects; ++i) {
      subjects.push_back(store.InternTerm(
          Term::Iri("http://ex/s" + std::to_string(i))));
    }
    for (size_t i = 0; i < num_predicates; ++i) {
      predicates.push_back(store.InternTerm(
          Term::Iri("http://ex/p" + std::to_string(i))));
    }
    for (size_t i = 0; i < num_objects; ++i) {
      objects.push_back(store.InternTerm(
          Term::StringLiteral("o" + std::to_string(i))));
    }
    const size_t num_triples = 20 + rng.NextBounded(120);
    for (size_t i = 0; i < num_triples; ++i) {
      // Duplicates are intentional: the store must dedup at index build.
      store.Add(subjects[rng.NextBounded(subjects.size())],
                predicates[rng.NextBounded(predicates.size())],
                objects[rng.NextBounded(objects.size())]);
    }

    // A term id that exists in the dictionary but matches nothing.
    TermId absent = store.InternTerm(Term::Iri("http://ex/absent"));

    auto pick = [&](const std::vector<TermId>& pool) -> TermId {
      return rng.NextBounded(8) == 0 ? absent
                                     : pool[rng.NextBounded(pool.size())];
    };
    for (int probe = 0; probe < 40; ++probe) {
      const uint64_t mask = rng.NextBounded(8);  // which positions to bind
      TermPattern s = (mask & 1) ? TermPattern(pick(subjects)) : std::nullopt;
      TermPattern p =
          (mask & 2) ? TermPattern(pick(predicates)) : std::nullopt;
      TermPattern o = (mask & 4) ? TermPattern(pick(objects)) : std::nullopt;
      CheckPattern(store, s, p, o);
    }
    // Exhaustively cover all 8 combinations with known-present ids too.
    for (uint64_t mask = 0; mask < 8; ++mask) {
      TermPattern s = (mask & 1) ? TermPattern(subjects[0]) : std::nullopt;
      TermPattern p = (mask & 2) ? TermPattern(predicates[0]) : std::nullopt;
      TermPattern o = (mask & 4) ? TermPattern(objects[0]) : std::nullopt;
      CheckPattern(store, s, p, o);
    }
  }
}

TEST(MatchCursorTest, RemainingDecrementsAsConsumed) {
  TripleStore store("counted");
  TermId s = store.InternTerm(Term::Iri("http://ex/s"));
  TermId p = store.InternTerm(Term::Iri("http://ex/p"));
  for (int i = 0; i < 5; ++i) {
    store.Add(s, p, store.InternTerm(Term::StringLiteral(std::to_string(i))));
  }
  MatchCursor cursor = store.Scan(s, p, std::nullopt);
  size_t expected = 5;
  EXPECT_EQ(cursor.remaining(), expected);
  while (cursor.Next() != nullptr) {
    --expected;
    EXPECT_EQ(cursor.remaining(), expected);
  }
  EXPECT_EQ(expected, 0u);
  EXPECT_EQ(cursor.Next(), nullptr);  // stays exhausted
}

// True iff `triples` are sorted by the key sequence of `order`.
bool SortedByIndex(const std::vector<Triple>& triples, IndexOrder order) {
  const int* pos = IndexPositions(order);
  auto key = [&](const Triple& t) {
    const TermId fields[3] = {t.subject, t.predicate, t.object};
    return std::array<TermId, 3>{fields[pos[0]], fields[pos[1]],
                                 fields[pos[2]]};
  };
  for (size_t i = 1; i < triples.size(); ++i) {
    if (key(triples[i]) < key(triples[i - 1])) return false;
  }
  return true;
}

TEST(ScanOrderedTest, MatchesScanMultisetAndIndexSortOrder) {
  Rng rng(0xbead5);
  for (int round = 0; round < 4; ++round) {
    TripleStore store("ordered");
    std::vector<TermId> subjects, predicates, objects;
    for (size_t i = 0; i < 6; ++i) {
      subjects.push_back(
          store.InternTerm(Term::Iri("http://ex/s" + std::to_string(i))));
      objects.push_back(
          store.InternTerm(Term::StringLiteral("o" + std::to_string(i))));
    }
    for (size_t i = 0; i < 3; ++i) {
      predicates.push_back(
          store.InternTerm(Term::Iri("http://ex/p" + std::to_string(i))));
    }
    for (int i = 0; i < 80; ++i) {
      store.Add(subjects[rng.NextBounded(subjects.size())],
                predicates[rng.NextBounded(predicates.size())],
                objects[rng.NextBounded(objects.size())]);
    }

    struct Probe {
      IndexOrder order;
      TermPattern s, p, o;
    };
    // Every valid prefix binding of each index: none, first, first+second.
    std::vector<Probe> probes = {
        {IndexOrder::kSpo, std::nullopt, std::nullopt, std::nullopt},
        {IndexOrder::kSpo, subjects[0], std::nullopt, std::nullopt},
        {IndexOrder::kSpo, subjects[1], predicates[0], std::nullopt},
        {IndexOrder::kPos, std::nullopt, std::nullopt, std::nullopt},
        {IndexOrder::kPos, std::nullopt, predicates[1], std::nullopt},
        {IndexOrder::kPos, std::nullopt, predicates[2], objects[0]},
        {IndexOrder::kOsp, std::nullopt, std::nullopt, std::nullopt},
        {IndexOrder::kOsp, std::nullopt, std::nullopt, objects[1]},
        {IndexOrder::kOsp, subjects[2], std::nullopt, objects[2]},
    };
    for (const Probe& probe : probes) {
      std::vector<Triple> ordered =
          Collect(store.ScanOrdered(probe.order, probe.s, probe.p, probe.o));
      std::vector<Triple> plain =
          Collect(store.Scan(probe.s, probe.p, probe.o));
      EXPECT_EQ(Sorted(ordered), Sorted(plain));
      EXPECT_TRUE(SortedByIndex(ordered, probe.order));
    }
  }
}

TEST(ScanOrderedTest, NonPrefixBindingYieldsEmptyCursor) {
  TripleStore store("badprefix");
  TermId s = store.InternTerm(Term::Iri("http://ex/s"));
  TermId p = store.InternTerm(Term::Iri("http://ex/p"));
  TermId o = store.InternTerm(Term::StringLiteral("o"));
  store.Add(s, p, o);

  // SPO requires s before p/o; POS requires p before o/s; OSP requires o.
  EXPECT_EQ(
      store.ScanOrdered(IndexOrder::kSpo, std::nullopt, p, std::nullopt)
          .Next(),
      nullptr);
  EXPECT_EQ(
      store.ScanOrdered(IndexOrder::kSpo, std::nullopt, std::nullopt, o)
          .Next(),
      nullptr);
  EXPECT_EQ(
      store.ScanOrdered(IndexOrder::kPos, s, std::nullopt, std::nullopt)
          .Next(),
      nullptr);
  EXPECT_EQ(
      store.ScanOrdered(IndexOrder::kPos, std::nullopt, std::nullopt, o)
          .Next(),
      nullptr);
  EXPECT_EQ(
      store.ScanOrdered(IndexOrder::kOsp, std::nullopt, p, std::nullopt)
          .Next(),
      nullptr);
  // A gap in the prefix (first and third of the key bound, second not) is
  // also rejected: SPO with s and o bound but p free.
  EXPECT_EQ(store.ScanOrdered(IndexOrder::kSpo, s, std::nullopt, o).Next(),
            nullptr);
  // The same pattern through the generic Scan() still matches.
  EXPECT_EQ(store.Scan(s, std::nullopt, o).remaining(), 1u);
}

TEST(MatchCursorTest, CursorSurvivesReadOnlyStoreUse) {
  // Cursors borrow index storage; concurrent *reads* must not disturb them.
  TripleStore store("readonly");
  TermId s = store.InternTerm(Term::Iri("http://ex/s"));
  TermId p = store.InternTerm(Term::Iri("http://ex/p"));
  for (int i = 0; i < 10; ++i) {
    store.Add(s, p, store.InternTerm(Term::StringLiteral(std::to_string(i))));
  }
  (void)store.size();  // build indexes before taking cursors
  MatchCursor cursor = store.Scan(s, std::nullopt, std::nullopt);
  std::vector<Triple> via_match = store.Match(s, std::nullopt, std::nullopt);
  EXPECT_EQ(store.CountMatches(std::nullopt, p, std::nullopt), 10u);
  EXPECT_EQ(Collect(cursor), via_match);
}

}  // namespace
}  // namespace alex::rdf
