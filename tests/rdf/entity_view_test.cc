#include "rdf/entity_view.h"

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

TEST(EntityViewTest, GetEntityCollectsAttributes) {
  TripleStore store("t");
  TermId s = store.InternTerm(Term::Iri("s"));
  TermId p1 = store.InternTerm(Term::Iri("p1"));
  TermId p2 = store.InternTerm(Term::Iri("p2"));
  TermId o1 = store.InternTerm(Term::StringLiteral("a"));
  TermId o2 = store.InternTerm(Term::StringLiteral("b"));
  store.Add(s, p1, o1);
  store.Add(s, p2, o2);
  store.Add(store.InternTerm(Term::Iri("other")), p1, o1);

  Entity entity = GetEntity(store, s);
  EXPECT_EQ(entity.subject, s);
  EXPECT_EQ(entity.attributes.size(), 2u);
}

TEST(EntityViewTest, GetEntityForSubjectWithNoTriples) {
  TripleStore store("t");
  TermId orphan = store.InternTerm(Term::Iri("orphan"));
  store.Add(store.InternTerm(Term::Iri("s")),
            store.InternTerm(Term::Iri("p")),
            store.InternTerm(Term::StringLiteral("v")));
  Entity entity = GetEntity(store, orphan);
  EXPECT_TRUE(entity.attributes.empty());
}

TEST(EntityViewTest, AllEntitiesGroupsBySubject) {
  TripleStore store("t");
  TermId p = store.InternTerm(Term::Iri("p"));
  for (int i = 0; i < 10; ++i) {
    TermId s = store.InternTerm(Term::Iri("s" + std::to_string(i)));
    for (int j = 0; j <= i % 3; ++j) {
      store.Add(s, p,
                store.InternTerm(Term::IntegerLiteral(i * 10 + j)));
    }
  }
  std::vector<Entity> entities = AllEntities(store);
  EXPECT_EQ(entities.size(), 10u);
  size_t total_attributes = 0;
  for (const Entity& e : entities) total_attributes += e.attributes.size();
  EXPECT_EQ(total_attributes, store.size());
}

TEST(EntityViewTest, AllEntitiesEmptyStore) {
  TripleStore store("t");
  EXPECT_TRUE(AllEntities(store).empty());
}

TEST(EntityViewTest, MultiValuedPredicates) {
  TripleStore store("t");
  TermId s = store.InternTerm(Term::Iri("s"));
  TermId p = store.InternTerm(Term::Iri("p"));
  store.Add(s, p, store.InternTerm(Term::StringLiteral("x")));
  store.Add(s, p, store.InternTerm(Term::StringLiteral("y")));
  Entity entity = GetEntity(store, s);
  EXPECT_EQ(entity.attributes.size(), 2u);
  EXPECT_EQ(entity.attributes[0].predicate, p);
  EXPECT_EQ(entity.attributes[1].predicate, p);
}

}  // namespace
}  // namespace alex::rdf
