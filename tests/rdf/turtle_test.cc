#include "rdf/turtle.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "rdf/ntriples.h"

namespace alex::rdf {
namespace {

size_t ParseCount(const char* doc) {
  TripleStore store("t");
  Status st = ParseTurtle(doc, &store);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return st.ok() ? store.size() : 0;
}

TEST(TurtleTest, SimpleTriple) {
  EXPECT_EQ(ParseCount("<http://x/s> <http://x/p> <http://x/o> ."), 1u);
}

TEST(TurtleTest, PrefixDirective) {
  TripleStore store("t");
  ASSERT_TRUE(ParseTurtle(
                  "@prefix ex: <http://example.org/> .\n"
                  "ex:s ex:p ex:o .\n",
                  &store)
                  .ok());
  EXPECT_TRUE(store.dictionary()
                  .Lookup(Term::Iri("http://example.org/s"))
                  .has_value());
}

TEST(TurtleTest, SparqlStylePrefix) {
  TripleStore store("t");
  ASSERT_TRUE(ParseTurtle(
                  "PREFIX ex: <http://example.org/>\n"
                  "ex:s ex:p ex:o .\n",
                  &store)
                  .ok());
  EXPECT_EQ(store.size(), 1u);
}

TEST(TurtleTest, BaseResolution) {
  TripleStore store("t");
  ASSERT_TRUE(ParseTurtle(
                  "@base <http://example.org/> .\n"
                  "<s> <p> <o> .\n",
                  &store)
                  .ok());
  EXPECT_TRUE(store.dictionary()
                  .Lookup(Term::Iri("http://example.org/s"))
                  .has_value());
  // Absolute IRIs are not rewritten.
  TripleStore abs("t2");
  ASSERT_TRUE(ParseTurtle(
                  "@base <http://example.org/> .\n"
                  "<http://other/s> <http://other/p> <http://other/o> .\n",
                  &abs)
                  .ok());
  EXPECT_TRUE(
      abs.dictionary().Lookup(Term::Iri("http://other/s")).has_value());
}

TEST(TurtleTest, PredicateAndObjectLists) {
  const char* doc =
      "@prefix ex: <http://x/> .\n"
      "ex:s ex:p1 ex:a , ex:b ;\n"
      "     ex:p2 ex:c ;\n"
      "     a ex:Thing .\n";
  EXPECT_EQ(ParseCount(doc), 4u);
}

TEST(TurtleTest, RdfTypeShorthand) {
  TripleStore store("t");
  ASSERT_TRUE(ParseTurtle("@prefix ex: <http://x/> .\n"
                          "ex:s a ex:Class .\n",
                          &store)
                  .ok());
  EXPECT_TRUE(store.dictionary()
                  .Lookup(Term::Iri(
                      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"))
                  .has_value());
}

TEST(TurtleTest, Literals) {
  TripleStore store("t");
  const char* doc =
      "@prefix ex: <http://x/> .\n"
      "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
      "ex:s ex:name \"Ada \\\"Countess\\\" Lovelace\" ;\n"
      "     ex:born \"1815-12-10\"^^xsd:date ;\n"
      "     ex:age 36 ;\n"
      "     ex:score 9.75 ;\n"
      "     ex:famous true ;\n"
      "     ex:label \"Ada\"@en .\n";
  ASSERT_TRUE(ParseTurtle(doc, &store).ok());
  EXPECT_EQ(store.size(), 6u);
  EXPECT_TRUE(store.dictionary()
                  .Lookup(Term::StringLiteral("Ada \"Countess\" Lovelace"))
                  .has_value());
  EXPECT_TRUE(
      store.dictionary().Lookup(Term::DateLiteral("1815-12-10")).has_value());
  EXPECT_TRUE(
      store.dictionary().Lookup(Term::IntegerLiteral(36)).has_value());
  EXPECT_TRUE(
      store.dictionary().Lookup(Term::DoubleLiteral(9.75)).has_value());
  EXPECT_TRUE(
      store.dictionary().Lookup(Term::BooleanLiteral(true)).has_value());
  EXPECT_TRUE(store.dictionary().Lookup(Term::StringLiteral("Ada"))
                  .has_value());
}

TEST(TurtleTest, NegativeNumbers) {
  TripleStore store("t");
  ASSERT_TRUE(ParseTurtle("@prefix ex: <http://x/> .\n"
                          "ex:s ex:delta -42 ; ex:ratio -0.5 .\n",
                          &store)
                  .ok());
  EXPECT_TRUE(
      store.dictionary().Lookup(Term::IntegerLiteral(-42)).has_value());
  EXPECT_TRUE(
      store.dictionary().Lookup(Term::DoubleLiteral(-0.5)).has_value());
}

TEST(TurtleTest, BlankNodes) {
  TripleStore store("t");
  ASSERT_TRUE(ParseTurtle("_:a <http://x/p> _:b .", &store).ok());
  auto triples = store.Match(std::nullopt, std::nullopt, std::nullopt);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_TRUE(store.dictionary().term(triples[0].subject).is_blank());
  EXPECT_TRUE(store.dictionary().term(triples[0].object).is_blank());
}

TEST(TurtleTest, CommentsAnywhere) {
  const char* doc =
      "# leading comment\n"
      "@prefix ex: <http://x/> . # trailing\n"
      "ex:s ex:p ex:o . # done\n";
  EXPECT_EQ(ParseCount(doc), 1u);
}

TEST(TurtleTest, ErrorsCarryLineNumbers) {
  TripleStore store("t");
  Status st = ParseTurtle("<http://x/s> <http://x/p> <http://x/o> .\n"
                          "@bogus directive .\n",
                          &store);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

TEST(TurtleTest, UnknownPrefixIsError) {
  TripleStore store("t");
  EXPECT_FALSE(ParseTurtle("nope:s nope:p nope:o .", &store).ok());
}

TEST(TurtleTest, UnsupportedConstructsAreCleanErrors) {
  TripleStore store("t");
  EXPECT_FALSE(ParseTurtle("[] <http://x/p> <http://x/o> .", &store).ok());
  EXPECT_FALSE(
      ParseTurtle("<http://x/s> <http://x/p> ( 1 2 ) .", &store).ok());
  EXPECT_FALSE(ParseTurtle(
                   "<http://x/s> <http://x/p> \"\"\"multi\"\"\" .", &store)
                   .ok());
}

TEST(TurtleTest, MissingDotIsError) {
  TripleStore store("t");
  EXPECT_FALSE(
      ParseTurtle("<http://x/s> <http://x/p> <http://x/o>", &store).ok());
}

TEST(TurtleTest, EquivalentToNTriplesParse) {
  const char* turtle =
      "@prefix ex: <http://x/> .\n"
      "ex:s ex:p \"v\" ; ex:q 7 .\n";
  const char* ntriples =
      "<http://x/s> <http://x/p> \"v\" .\n"
      "<http://x/s> <http://x/q> "
      "\"7\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  TripleStore a("a"), b("b");
  ASSERT_TRUE(ParseTurtle(turtle, &a).ok());
  ASSERT_TRUE(ParseNTriples(ntriples, &b).ok());
  EXPECT_EQ(WriteNTriples(a), WriteNTriples(b));
}

TEST(TurtleTest, LoadRdfFileDispatchesByExtension) {
  std::string ttl_path = ::testing::TempDir() + "/turtle_test.ttl";
  {
    std::ofstream out(ttl_path, std::ios::trunc);
    out << "@prefix ex: <http://x/> .\nex:s ex:p ex:o .\n";
  }
  TripleStore store("t");
  ASSERT_TRUE(LoadRdfFile(ttl_path, &store).ok());
  EXPECT_EQ(store.size(), 1u);
  std::remove(ttl_path.c_str());

  std::string nt_path = ::testing::TempDir() + "/turtle_test.nt";
  {
    std::ofstream out(nt_path, std::ios::trunc);
    out << "<http://x/s> <http://x/p> <http://x/o> .\n";
  }
  TripleStore store2("t2");
  ASSERT_TRUE(LoadRdfFile(nt_path, &store2).ok());
  EXPECT_EQ(store2.size(), 1u);
  std::remove(nt_path.c_str());
}

TEST(TurtleTest, LoadMissingFile) {
  TripleStore store("t");
  EXPECT_EQ(LoadTurtleFile("/nonexistent/x.ttl", &store).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace alex::rdf
