#include "eval/metrics.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace alex::eval {
namespace {

using linking::Link;

TEST(MetricsTest, PerfectCandidates) {
  feedback::GroundTruth truth({{"a", "x", 1.0}, {"b", "y", 1.0}});
  Quality q = Evaluate({{"a", "x", 1.0}, {"b", "y", 1.0}}, truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f_measure, 1.0);
  EXPECT_EQ(q.correct, 2u);
}

TEST(MetricsTest, PartialOverlap) {
  feedback::GroundTruth truth(
      {{"a", "x", 1.0}, {"b", "y", 1.0}, {"c", "z", 1.0}, {"d", "w", 1.0}});
  // 2 correct out of 4 candidates, ground truth 4.
  Quality q = Evaluate(
      {{"a", "x", 1.0}, {"b", "y", 1.0}, {"b", "z", 1.0}, {"e", "v", 1.0}},
      truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_DOUBLE_EQ(q.f_measure, 0.5);
}

TEST(MetricsTest, EmptyCandidates) {
  feedback::GroundTruth truth({{"a", "x", 1.0}});
  Quality q = Evaluate({}, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.f_measure, 0.0);
}

TEST(MetricsTest, EmptyGroundTruth) {
  feedback::GroundTruth truth;
  Quality q = Evaluate({{"a", "x", 1.0}}, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
}

TEST(MetricsTest, FMeasureIsHarmonicMean) {
  feedback::GroundTruth truth({{"a", "x", 1.0}, {"b", "y", 1.0},
                               {"c", "z", 1.0}, {"d", "w", 1.0}});
  // P = 1.0 (1/1), R = 0.25 (1/4) -> F = 2*1*0.25/1.25 = 0.4
  Quality q = Evaluate({{"a", "x", 1.0}}, truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.25);
  EXPECT_DOUBLE_EQ(q.f_measure, 0.4);
}

TEST(MetricsTest, NewCorrectLinksExcludesInitial) {
  feedback::GroundTruth truth({{"a", "x", 1.0}, {"b", "y", 1.0},
                               {"c", "z", 1.0}});
  std::vector<Link> initial = {{"a", "x", 1.0}, {"q", "q", 1.0}};
  std::vector<Link> final_links = {{"a", "x", 1.0},
                                   {"b", "y", 1.0},
                                   {"c", "z", 1.0},
                                   {"bad", "bad", 1.0}};
  // b->y and c->z are new AND correct; a->x was initial; bad is incorrect.
  EXPECT_EQ(NewCorrectLinks(initial, final_links, truth), 2u);
}

TEST(MetricsTest, NewCorrectLinksEmptyInitial) {
  feedback::GroundTruth truth({{"a", "x", 1.0}});
  EXPECT_EQ(NewCorrectLinks({}, {{"a", "x", 1.0}}, truth), 1u);
}

void ExpectSnapshotEqualsEvaluate(const QualityTracker& tracker,
                                  const std::set<Link>& current,
                                  const feedback::GroundTruth& truth) {
  Quality inc = tracker.Snapshot();
  Quality full =
      Evaluate(std::vector<Link>(current.begin(), current.end()), truth);
  EXPECT_EQ(inc.candidates, full.candidates);
  EXPECT_EQ(inc.correct, full.correct);
  // Same counters through the same division expressions: bitwise equal.
  EXPECT_EQ(inc.precision, full.precision);
  EXPECT_EQ(inc.recall, full.recall);
  EXPECT_EQ(inc.f_measure, full.f_measure);
}

TEST(QualityTrackerTest, ResetThenSnapshotMatchesEvaluate) {
  feedback::GroundTruth truth({{"a", "x", 1.0}, {"b", "y", 1.0}});
  QualityTracker tracker(&truth);
  std::vector<Link> links = {{"a", "x", 1.0}, {"q", "w", 1.0}};
  tracker.Reset(links);
  EXPECT_EQ(tracker.candidates(), 2u);
  EXPECT_EQ(tracker.correct(), 1u);
  ExpectSnapshotEqualsEvaluate(tracker, {links.begin(), links.end()}, truth);
}

TEST(QualityTrackerTest, EdgeCasesMatchEvaluate) {
  // Empty candidates, empty truth, and the all-wrong case must reproduce
  // Evaluate's zero-guard behavior exactly.
  feedback::GroundTruth empty_truth;
  QualityTracker no_truth(&empty_truth);
  no_truth.Reset({{"a", "x", 1.0}});
  ExpectSnapshotEqualsEvaluate(no_truth, {{"a", "x", 1.0}}, empty_truth);

  feedback::GroundTruth truth({{"a", "x", 1.0}});
  QualityTracker emptied(&truth);
  emptied.Reset({{"a", "x", 1.0}});
  emptied.OnLinkChange({"a", "x", 1.0}, /*added=*/false);
  EXPECT_EQ(emptied.candidates(), 0u);
  ExpectSnapshotEqualsEvaluate(emptied, {}, truth);
}

TEST(QualityTrackerTest, MatchesEvaluateUnderRandomizedChurn) {
  // A universe of 60 links (half correct) churned by 400 random add/remove
  // toggles; after every step the incremental counters must agree with a
  // full rescan. This simulates the engine's per-episode delta stream,
  // including links that leave and later re-enter the candidate set.
  std::vector<Link> universe;
  feedback::GroundTruth truth;
  for (int i = 0; i < 60; ++i) {
    Link link{"left" + std::to_string(i), "right" + std::to_string(i), 1.0};
    universe.push_back(link);
    if (i % 2 == 0) truth.Add(link);
  }

  Rng rng(2024);
  std::set<Link> current;
  for (const Link& link : universe) {
    if (rng.NextBool(0.4)) current.insert(link);
  }
  QualityTracker tracker(&truth);
  tracker.Reset(std::vector<Link>(current.begin(), current.end()));
  ExpectSnapshotEqualsEvaluate(tracker, current, truth);

  for (int step = 0; step < 400; ++step) {
    const Link& link = universe[rng.NextBounded(universe.size())];
    if (current.count(link)) {
      current.erase(link);
      tracker.OnLinkChange(link, /*added=*/false);
    } else {
      current.insert(link);
      tracker.OnLinkChange(link, /*added=*/true);
    }
    ExpectSnapshotEqualsEvaluate(tracker, current, truth);
  }
}

}  // namespace
}  // namespace alex::eval
