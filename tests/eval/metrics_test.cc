#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace alex::eval {
namespace {

using linking::Link;

TEST(MetricsTest, PerfectCandidates) {
  feedback::GroundTruth truth({{"a", "x", 1.0}, {"b", "y", 1.0}});
  Quality q = Evaluate({{"a", "x", 1.0}, {"b", "y", 1.0}}, truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f_measure, 1.0);
  EXPECT_EQ(q.correct, 2u);
}

TEST(MetricsTest, PartialOverlap) {
  feedback::GroundTruth truth(
      {{"a", "x", 1.0}, {"b", "y", 1.0}, {"c", "z", 1.0}, {"d", "w", 1.0}});
  // 2 correct out of 4 candidates, ground truth 4.
  Quality q = Evaluate(
      {{"a", "x", 1.0}, {"b", "y", 1.0}, {"b", "z", 1.0}, {"e", "v", 1.0}},
      truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_DOUBLE_EQ(q.f_measure, 0.5);
}

TEST(MetricsTest, EmptyCandidates) {
  feedback::GroundTruth truth({{"a", "x", 1.0}});
  Quality q = Evaluate({}, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.f_measure, 0.0);
}

TEST(MetricsTest, EmptyGroundTruth) {
  feedback::GroundTruth truth;
  Quality q = Evaluate({{"a", "x", 1.0}}, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
}

TEST(MetricsTest, FMeasureIsHarmonicMean) {
  feedback::GroundTruth truth({{"a", "x", 1.0}, {"b", "y", 1.0},
                               {"c", "z", 1.0}, {"d", "w", 1.0}});
  // P = 1.0 (1/1), R = 0.25 (1/4) -> F = 2*1*0.25/1.25 = 0.4
  Quality q = Evaluate({{"a", "x", 1.0}}, truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.25);
  EXPECT_DOUBLE_EQ(q.f_measure, 0.4);
}

TEST(MetricsTest, NewCorrectLinksExcludesInitial) {
  feedback::GroundTruth truth({{"a", "x", 1.0}, {"b", "y", 1.0},
                               {"c", "z", 1.0}});
  std::vector<Link> initial = {{"a", "x", 1.0}, {"q", "q", 1.0}};
  std::vector<Link> final_links = {{"a", "x", 1.0},
                                   {"b", "y", 1.0},
                                   {"c", "z", 1.0},
                                   {"bad", "bad", 1.0}};
  // b->y and c->z are new AND correct; a->x was initial; bad is incorrect.
  EXPECT_EQ(NewCorrectLinks(initial, final_links, truth), 2u);
}

TEST(MetricsTest, NewCorrectLinksEmptyInitial) {
  feedback::GroundTruth truth({{"a", "x", 1.0}});
  EXPECT_EQ(NewCorrectLinks({}, {{"a", "x", 1.0}}, truth), 1u);
}

}  // namespace
}  // namespace alex::eval
