#include "eval/experiment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "datagen/profiles.h"
#include "eval/report.h"

namespace alex::eval {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  datagen::ProfileByName("tiny", &config.profile);
  config.alex.num_partitions = 2;
  config.alex.num_threads = 1;
  config.alex.episode_size = 100;
  config.alex.max_episodes = 40;
  return config;
}

TEST(ExperimentTest, TinyPipelineRunsAndImproves) {
  Result<ExperimentResult> result = RunExperiment(TinyConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExperimentResult& r = result.value();
  EXPECT_EQ(r.profile_name, "tiny");
  EXPECT_GT(r.ground_truth_size, 0u);
  ASSERT_GE(r.series.size(), 2u);
  EXPECT_EQ(r.series.front().episode, 0);
  // ALEX must not end below the initial quality.
  EXPECT_GE(r.final_quality().f_measure,
            r.series.front().quality.f_measure);
  EXPECT_GT(r.final_quality().f_measure, 0.8);
}

TEST(ExperimentTest, SeriesEpisodesAreSequential) {
  Result<ExperimentResult> result = RunExperiment(TinyConfig());
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->series.size(); ++i) {
    EXPECT_EQ(result->series[i].episode, static_cast<int>(i));
  }
}

TEST(ExperimentTest, CallbackObservesEveryPoint) {
  int points = 0;
  Result<ExperimentResult> result = RunExperiment(
      TinyConfig(), [&points](const EpisodePoint&) { ++points; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(points, static_cast<int>(result->series.size()));
}

TEST(ExperimentTest, ReusesWorldAcrossConfigs) {
  ExperimentConfig config = TinyConfig();
  datagen::GeneratedWorld world = datagen::Generate(config.profile);
  std::vector<linking::Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);
  Result<ExperimentResult> a =
      RunExperimentOnWorld(config, world, initial);
  ASSERT_TRUE(a.ok());
  config.alex.use_blacklist = false;
  Result<ExperimentResult> b =
      RunExperimentOnWorld(config, world, initial);
  ASSERT_TRUE(b.ok());
  // Same starting point regardless of the ALEX configuration.
  EXPECT_DOUBLE_EQ(a->series[0].quality.f_measure,
                   b->series[0].quality.f_measure);
  EXPECT_EQ(a->initial_link_count, b->initial_link_count);
}

TEST(ExperimentTest, IncorrectFeedbackStillImproves) {
  ExperimentConfig config = TinyConfig();
  config.feedback_error_rate = 0.1;
  // Cap the feedback volume at a realistic multiple of the candidate set:
  // with unbounded episodes every link is drawn hundreds of times and even
  // rare double-errors eventually bury correct links (Appendix C runs ~1-4
  // feedback items per link).
  config.alex.max_episodes = 12;
  Result<ExperimentResult> result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  // A single ε-exploration misstep can make any individual episode an
  // outlier at this tiny scale, so assert on the best quality reached in
  // the second half of the run rather than one arbitrary snapshot.
  double best_f = 0.0, best_recall = 0.0;
  for (size_t i = result->series.size() / 2; i < result->series.size();
       ++i) {
    best_f = std::max(best_f, result->series[i].quality.f_measure);
    best_recall = std::max(best_recall, result->series[i].quality.recall);
  }
  EXPECT_GT(best_recall, 0.7);
  EXPECT_GT(best_f, result->series[0].quality.f_measure);
}

TEST(ExperimentTest, DeterministicForFixedSeeds) {
  Result<ExperimentResult> a = RunExperiment(TinyConfig());
  Result<ExperimentResult> b = RunExperiment(TinyConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->episodes, b->episodes);
  EXPECT_DOUBLE_EQ(a->final_quality().f_measure,
                   b->final_quality().f_measure);
}

TEST(ExperimentTest, IncrementalQualityMatchesRescanEveryEpisode) {
  // Drive an engine the way RunExperimentOnWorld does — QualityTracker fed
  // by the link-change observer — and rescan with Evaluate after every
  // episode. A noisy oracle (15% flipped feedback) maximizes churn:
  // negative feedback on correct links exercises blacklisting, repeat
  // removals, rollbacks, and links re-added after removal. The counters
  // must agree with the full rescan bitwise at every point.
  ExperimentConfig config = TinyConfig();
  config.alex.max_episodes = 10;
  datagen::GeneratedWorld world = datagen::Generate(config.profile);
  std::vector<linking::Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);
  feedback::GroundTruth truth(world.ground_truth);

  core::AlexEngine engine(&world.left, &world.right, config.alex);
  ASSERT_TRUE(engine.Initialize(initial).ok());
  QualityTracker tracker(&truth);
  tracker.Reset(engine.CandidateLinks());
  engine.SetLinkChangeObserver(
      [&tracker](const linking::Link& link, bool added) {
        tracker.OnLinkChange(link, added);
      });
  feedback::Oracle oracle(&truth, /*error_rate=*/0.15, config.oracle_seed);

  int checked = 0;
  engine.Run(
      [&oracle](const linking::Link& link) { return oracle.Feedback(link); },
      [&](const core::EpisodeStats& stats) {
        Quality inc = tracker.Snapshot();
        Quality full = Evaluate(engine.CandidateLinks(), truth);
        EXPECT_EQ(inc.candidates, full.candidates)
            << "episode " << stats.episode;
        EXPECT_EQ(inc.correct, full.correct) << "episode " << stats.episode;
        EXPECT_EQ(inc.precision, full.precision)
            << "episode " << stats.episode;
        EXPECT_EQ(inc.recall, full.recall) << "episode " << stats.episode;
        EXPECT_EQ(inc.f_measure, full.f_measure)
            << "episode " << stats.episode;
        EXPECT_EQ(inc.candidates, engine.CandidateCount())
            << "episode " << stats.episode;
        ++checked;
      });
  EXPECT_GT(checked, 0);
  EXPECT_GT(oracle.errors(), 0u);
}

TEST(ExperimentTest, PreparedRightContextGivesIdenticalResults) {
  // The shared-right-context fast path must be observationally identical to
  // letting the engine prepare its own.
  ExperimentConfig config = TinyConfig();
  config.alex.max_episodes = 8;
  datagen::GeneratedWorld world = datagen::Generate(config.profile);
  std::vector<linking::Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right, config.paris),
      config.paris_threshold);

  Result<ExperimentResult> own = RunExperimentOnWorld(config, world, initial);
  ASSERT_TRUE(own.ok());
  config.right_context = core::RightContext::Prepare(
      world.right, world.right.Subjects(), config.alex.space);
  Result<ExperimentResult> shared =
      RunExperimentOnWorld(config, world, initial);
  ASSERT_TRUE(shared.ok());

  EXPECT_EQ(own->episodes, shared->episodes);
  EXPECT_EQ(own->converged, shared->converged);
  ASSERT_EQ(own->series.size(), shared->series.size());
  for (size_t i = 0; i < own->series.size(); ++i) {
    EXPECT_EQ(own->series[i].quality.candidates,
              shared->series[i].quality.candidates) << "episode " << i;
    EXPECT_EQ(own->series[i].quality.correct,
              shared->series[i].quality.correct) << "episode " << i;
    EXPECT_EQ(own->series[i].quality.f_measure,
              shared->series[i].quality.f_measure) << "episode " << i;
  }
}

TEST(ReportTest, PrintSeriesContainsRows) {
  Result<ExperimentResult> result = RunExperiment(TinyConfig());
  ASSERT_TRUE(result.ok());
  std::ostringstream os;
  PrintSeries(os, "Tiny test", result.value());
  PrintSummary(os, result.value());
  std::string text = os.str();
  EXPECT_NE(text.find("Tiny test"), std::string::npos);
  EXPECT_NE(text.find("precision"), std::string::npos);
  EXPECT_NE(text.find("ground truth links"), std::string::npos);
  // One row per series point plus headers.
  size_t lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_GT(lines, result->series.size());
}

}  // namespace
}  // namespace alex::eval
