#include "eval/query_workload.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/profiles.h"
#include "linking/paris.h"
#include "sparql/parser.h"

namespace alex::eval {
namespace {

datagen::GeneratedWorld SmallWorld() {
  datagen::WorldProfile profile = datagen::TinyTestProfile();
  return datagen::Generate(profile);
}

TEST(WorkloadTest, GeneratesRequestedNumberOfParsableQueries) {
  datagen::GeneratedWorld world = SmallWorld();
  WorkloadOptions options;
  options.num_queries = 50;
  std::vector<WorkloadQuery> workload = GenerateWorkload(world, options);
  EXPECT_EQ(workload.size(), 50u);
  for (const WorkloadQuery& query : workload) {
    Result<sparql::Query> parsed = sparql::ParseQuery(query.text);
    EXPECT_TRUE(parsed.ok())
        << query.text << ": " << parsed.status().ToString();
  }
}

TEST(WorkloadTest, QueriesAreDistinct) {
  datagen::GeneratedWorld world = SmallWorld();
  WorkloadOptions options;
  options.num_queries = 40;
  std::vector<WorkloadQuery> workload = GenerateWorkload(world, options);
  std::unordered_set<std::string> texts;
  for (const WorkloadQuery& query : workload) texts.insert(query.text);
  EXPECT_EQ(texts.size(), workload.size());
}

TEST(WorkloadTest, DeterministicPerSeed) {
  datagen::GeneratedWorld world = SmallWorld();
  WorkloadOptions options;
  options.num_queries = 20;
  std::vector<WorkloadQuery> a = GenerateWorkload(world, options);
  std::vector<WorkloadQuery> b = GenerateWorkload(world, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
}

TEST(WorkloadTest, QueriesSpanBothVocabularies) {
  datagen::GeneratedWorld world = SmallWorld();
  WorkloadOptions options;
  options.num_queries = 30;
  std::vector<WorkloadQuery> workload = GenerateWorkload(world, options);
  int cross_vocabulary = 0;
  for (const WorkloadQuery& query : workload) {
    if (query.text.find("left.example.org") != std::string::npos ||
        query.text.find("rdf-schema#label") != std::string::npos ||
        query.text.find("dbpedia.org") != std::string::npos) {
      // Constrains a left predicate; must project a right-side one for the
      // query to be answerable only across a link.
      ++cross_vocabulary;
    }
  }
  EXPECT_GT(cross_vocabulary, 0);
}

TEST(QueryDrivenTest, ImprovesLinksThroughQueries) {
  datagen::GeneratedWorld world = SmallWorld();
  feedback::GroundTruth truth(world.ground_truth);
  std::vector<linking::Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right), 0.95);

  core::AlexOptions alex_options;
  alex_options.num_partitions = 2;
  alex_options.num_threads = 1;
  core::AlexEngine engine(&world.left, &world.right, alex_options);
  ASSERT_TRUE(engine.Initialize(initial).ok());

  QueryDrivenOptions options;
  options.workload.num_queries = 150;
  options.episode_size = 120;
  options.max_episodes = 15;
  ExperimentResult result =
      RunQueryDrivenExperiment(&engine, world, truth, options);

  ASSERT_GE(result.series.size(), 2u);
  const Quality& start = result.series[0].quality;
  double best_f = 0.0;
  for (const EpisodePoint& point : result.series) {
    best_f = std::max(best_f, point.quality.f_measure);
  }
  EXPECT_GT(best_f, start.f_measure);
  EXPECT_GT(result.series.back().quality.recall, start.recall);
}

TEST(QueryDrivenTest, FeedbackCountsAreConsistent) {
  datagen::GeneratedWorld world = SmallWorld();
  feedback::GroundTruth truth(world.ground_truth);
  std::vector<linking::Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right), 0.95);
  core::AlexOptions alex_options;
  alex_options.num_partitions = 1;
  alex_options.num_threads = 1;
  core::AlexEngine engine(&world.left, &world.right, alex_options);
  ASSERT_TRUE(engine.Initialize(initial).ok());

  QueryDrivenOptions options;
  options.workload.num_queries = 60;
  options.episode_size = 50;
  options.max_episodes = 3;
  ExperimentResult result =
      RunQueryDrivenExperiment(&engine, world, truth, options);
  for (size_t i = 1; i < result.series.size(); ++i) {
    const core::EpisodeStats& stats = result.series[i].stats;
    EXPECT_EQ(stats.positive_feedback + stats.negative_feedback,
              stats.feedback_items);
    EXPECT_LE(stats.feedback_items, options.episode_size);
  }
}

}  // namespace
}  // namespace alex::eval
