#include "eval/vote_driven.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "datagen/profiles.h"
#include "linking/paris.h"

namespace alex::eval {
namespace {

datagen::GeneratedWorld SmallWorld() {
  datagen::WorldProfile profile = datagen::TinyTestProfile();
  return datagen::Generate(profile);
}

core::AlexOptions EngineOptions(bool prioritized) {
  core::AlexOptions options;
  options.num_partitions = 2;
  options.num_threads = 1;
  options.prioritized_sampling = prioritized;
  return options;
}

ExperimentResult RunOnce(const datagen::GeneratedWorld& world,
                         bool prioritized, int vote_threads,
                         size_t num_shards) {
  feedback::GroundTruth truth(world.ground_truth);
  std::vector<linking::Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right), 0.95);
  core::AlexEngine engine(&world.left, &world.right,
                          EngineOptions(prioritized));
  EXPECT_TRUE(engine.Initialize(initial).ok());

  VoteDrivenOptions options;
  options.links_per_episode = 150;
  options.users_per_link = 5;
  options.vote_error_rate = 0.1;
  options.max_episodes = 12;
  options.vote_threads = vote_threads;
  options.aggregator.quorum = 3;
  options.aggregator.num_shards = num_shards;
  return RunVoteDrivenExperiment(&engine, truth, options);
}

// A byte-exact textual fingerprint of everything the series decides:
// feedback flow, candidate counts, quality, and aggregator counters.
std::string SeriesFingerprint(const ExperimentResult& result) {
  std::ostringstream out;
  out.precision(17);
  out << result.episodes << '|' << result.converged << '|'
      << result.new_links_discovered << '\n';
  for (const EpisodePoint& point : result.series) {
    const core::EpisodeStats& s = point.stats;
    out << point.episode << ' ' << s.feedback_items << ' '
        << s.positive_feedback << ' ' << s.negative_feedback << ' '
        << s.candidate_count << ' ' << s.change_fraction << ' '
        << s.votes_recorded << ' ' << s.verdicts_emitted << ' '
        << s.aggregator_pending << ' ' << s.votes_suppressed << ' '
        << s.tallies_evicted << ' ' << point.quality.precision << ' '
        << point.quality.recall << ' ' << point.quality.f_measure << '\n';
  }
  return out.str();
}

TEST(VoteDrivenTest, ImprovesLinksThroughAggregatedVotes) {
  datagen::GeneratedWorld world = SmallWorld();
  ExperimentResult result = RunOnce(world, /*prioritized=*/false,
                                    /*vote_threads=*/1, /*num_shards=*/16);
  ASSERT_GE(result.series.size(), 2u);
  const Quality& start = result.series[0].quality;
  double best_f = 0.0;
  for (const EpisodePoint& point : result.series) {
    best_f = std::max(best_f, point.quality.f_measure);
  }
  EXPECT_GT(best_f, start.f_measure);
  // Verdicts flowed: users voted, quorums emitted, minorities suppressed.
  const core::EpisodeStats& last = result.series.back().stats;
  EXPECT_GT(last.votes_recorded, 0u);
  EXPECT_GT(last.verdicts_emitted, 0u);
  EXPECT_EQ(last.verdicts_emitted,
            static_cast<size_t>(
                [&] {
                  size_t total = 0;
                  for (const EpisodePoint& p : result.series) {
                    total += p.stats.feedback_items;
                  }
                  return total;
                }()));
}

TEST(VoteDrivenTest, SeriesIdenticalAcrossVoteThreadsAndShards) {
  // The full episode series — not just the verdict batches — must be
  // byte-identical whether votes are cast by 1, 2 or 4 threads, into a
  // single-lock or a 16-shard aggregator.
  datagen::GeneratedWorld world = SmallWorld();
  const std::string baseline = SeriesFingerprint(
      RunOnce(world, /*prioritized=*/false, /*vote_threads=*/1,
              /*num_shards=*/1));
  for (int threads : {1, 2, 4}) {
    for (size_t shards : {1u, 16u}) {
      if (threads == 1 && shards == 1u) continue;
      EXPECT_EQ(SeriesFingerprint(
                    RunOnce(world, /*prioritized=*/false, threads, shards)),
                baseline)
          << "threads " << threads << " shards " << shards;
    }
  }
}

TEST(VoteDrivenTest, PrioritizedSamplingIsDeterministicAndConverges) {
  datagen::GeneratedWorld world = SmallWorld();
  ExperimentResult a = RunOnce(world, /*prioritized=*/true,
                               /*vote_threads=*/2, /*num_shards=*/16);
  ExperimentResult b = RunOnce(world, /*prioritized=*/true,
                               /*vote_threads=*/4, /*num_shards=*/16);
  EXPECT_EQ(SeriesFingerprint(a), SeriesFingerprint(b));
  // Prioritized runs must still learn.
  ASSERT_GE(a.series.size(), 2u);
  double best_f = 0.0;
  for (const EpisodePoint& point : a.series) {
    best_f = std::max(best_f, point.quality.f_measure);
  }
  EXPECT_GT(best_f, a.series[0].quality.f_measure);
}

}  // namespace
}  // namespace alex::eval
