#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "eval/report.h"

namespace alex::eval {
namespace {

ExperimentResult SampleResult() {
  ExperimentResult result;
  result.profile_name = "sample";
  result.ground_truth_size = 10;
  EpisodePoint p0;
  p0.episode = 0;
  p0.quality.precision = 0.5;
  p0.quality.recall = 0.25;
  p0.quality.f_measure = 1.0 / 3.0;
  p0.quality.candidates = 5;
  result.series.push_back(p0);
  EpisodePoint p1;
  p1.episode = 1;
  p1.quality.precision = 1.0;
  p1.quality.recall = 0.9;
  p1.quality.f_measure = 2 * 1.0 * 0.9 / 1.9;
  p1.quality.candidates = 9;
  p1.stats.episode = 1;
  p1.stats.feedback_items = 100;
  p1.stats.negative_feedback = 25;
  p1.stats.positive_feedback = 75;
  p1.stats.seconds = 0.125;
  result.series.push_back(p1);
  result.episodes = 1;
  result.relaxed_episode = 1;
  return result;
}

TEST(ReportCsvTest, HeaderAndRows) {
  std::ostringstream os;
  WriteSeriesCsv(os, SampleResult());
  std::string csv = os.str();
  EXPECT_EQ(csv.find("episode,precision,recall,f_measure,"
                     "neg_feedback_pct,candidates,seconds,"
                     "incomplete_queries,skipped_feedback,query_retries,"
                     "breaker_opens,epochs_published,snapshots_retired,"
                     "max_concurrent_readers,votes_recorded,"
                     "verdicts_emitted,aggregator_pending,votes_suppressed,"
                     "tallies_evicted,triples_ingested,entities_added,"
                     "blocking_merges,space_overflow_pairs,ingest_epochs"),
            0u);
  // One header + two data rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("\n0,0.5,0.25,"), std::string::npos);
  EXPECT_NE(csv.find(",25,"), std::string::npos);  // 25% negative feedback
}

TEST(ReportCsvTest, SaveAndReadBack) {
  std::string path = ::testing::TempDir() + "/report_series.csv";
  ASSERT_TRUE(SaveSeriesCsv(path, SampleResult()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.find("episode,"), 0u);
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 2);
  std::remove(path.c_str());
}

TEST(ReportCsvTest, SaveToBadPathFails) {
  EXPECT_FALSE(SaveSeriesCsv("/nonexistent/dir/x.csv", SampleResult()));
}

TEST(ReportTest, SummaryMentionsRelaxedEpisode) {
  std::ostringstream os;
  PrintSummary(os, SampleResult());
  EXPECT_NE(os.str().find("episode 1"), std::string::npos);
}

TEST(ReportTest, SummaryNeverConverged) {
  ExperimentResult result = SampleResult();
  result.relaxed_episode = -1;
  std::ostringstream os;
  PrintSummary(os, result);
  EXPECT_NE(os.str().find("never"), std::string::npos);
  EXPECT_NE(os.str().find("max episodes reached"), std::string::npos);
}

TEST(ReportTest, SummaryShowsServingBlockOnlyWhenServed) {
  ExperimentResult plain = SampleResult();
  std::ostringstream without;
  PrintSummary(without, plain);
  EXPECT_EQ(without.str().find("epochs published"), std::string::npos);

  ExperimentResult served = SampleResult();
  served.series.back().stats.epochs_published = 7;
  served.series.back().stats.snapshots_retired = 5;
  served.series.back().stats.max_concurrent_readers = 4;
  std::ostringstream with;
  PrintSummary(with, served);
  EXPECT_NE(with.str().find("epochs published:        7"), std::string::npos);
  EXPECT_NE(with.str().find("snapshots retired:       5"), std::string::npos);
  EXPECT_NE(with.str().find("max concurrent readers:  4"), std::string::npos);
}

TEST(ReportTest, SummaryShowsFeedbackBlockOnlyWhenVotesFlowed) {
  ExperimentResult plain = SampleResult();
  std::ostringstream without;
  PrintSummary(without, plain);
  EXPECT_EQ(without.str().find("votes recorded"), std::string::npos);

  ExperimentResult voted = SampleResult();
  voted.series.back().stats.votes_recorded = 2000;
  voted.series.back().stats.verdicts_emitted = 380;
  voted.series.back().stats.votes_suppressed = 190;
  voted.series.back().stats.tallies_evicted = 3;
  voted.series.back().stats.aggregator_pending = 17;
  std::ostringstream with;
  PrintSummary(with, voted);
  EXPECT_NE(with.str().find("votes recorded:          2000"),
            std::string::npos);
  EXPECT_NE(with.str().find("verdicts emitted:        380"),
            std::string::npos);
  EXPECT_NE(with.str().find("votes suppressed:        190"),
            std::string::npos);
  EXPECT_NE(with.str().find("tallies evicted:         3 (17 still pending)"),
            std::string::npos);
}

TEST(ReportCsvTest, RowsCarryIngestCounters) {
  ExperimentResult result = SampleResult();
  core::EpisodeStats& stats = result.series.back().stats;
  stats.triples_ingested = 640;
  stats.entities_added = 32;
  stats.blocking_merges = 5;
  stats.space_overflow_pairs = 77;
  stats.ingest_epochs = 4;
  std::ostringstream os;
  WriteSeriesCsv(os, result);
  std::string csv = os.str();
  // The ingest counters are the trailing five columns of the episode row.
  EXPECT_NE(csv.find(",640,32,5,77,4\n"), std::string::npos);
  // Episode 0 (the pre-growth baseline) reports zeros.
  EXPECT_NE(csv.find(",0,0,0,0,0\n"), std::string::npos);
}

TEST(ReportTest, SummaryShowsIngestBlockOnlyWhenStoresGrew) {
  ExperimentResult plain = SampleResult();
  std::ostringstream without;
  PrintSummary(without, plain);
  EXPECT_EQ(without.str().find("triples ingested"), std::string::npos);

  ExperimentResult grown = SampleResult();
  grown.series.back().stats.ingest_epochs = 4;
  grown.series.back().stats.triples_ingested = 640;
  grown.series.back().stats.entities_added = 32;
  grown.series.back().stats.blocking_merges = 5;
  grown.series.back().stats.space_overflow_pairs = 77;
  std::ostringstream with;
  PrintSummary(with, grown);
  EXPECT_NE(with.str().find("ingest epochs:           4"), std::string::npos);
  EXPECT_NE(with.str().find("triples ingested:        640"),
            std::string::npos);
  EXPECT_NE(with.str().find("entities added:          32"),
            std::string::npos);
  EXPECT_NE(with.str().find("blocking merges:         5"), std::string::npos);
  EXPECT_NE(with.str().find("space overflow entries:  77"),
            std::string::npos);
}

TEST(ReportTest, SeriesMarksRelaxedConvergence) {
  std::ostringstream os;
  PrintSeries(os, "T", SampleResult());
  EXPECT_NE(os.str().find("<- relaxed convergence"), std::string::npos);
}

}  // namespace
}  // namespace alex::eval
