// The ingest-differential harness — the gate for live triple ingest.
//
// Twin engines run the same grow-ingest-learn schedule over identically
// generated (and identically mutated) worlds, one with incremental ingest
// (sidecar AddRights + FeatureSpace::Grow) and one with the from-scratch
// rebuild baseline. After EVERY ingest epoch the shared blocking-index
// fingerprint, every per-partition feature-space fingerprint, the episode
// statistics and the full candidate-link set must agree — across feature
// compaction thresholds {0, 1, 32} and at 1/2/4 worker threads (the thread
// sweep must be bitwise-identical, timing aside). A serving-tier test pins
// two reader streams across live ingest epochs, and the plan cache must
// recompile exactly when a store's mutation generation moves.
#include "eval/ingest_driven.h"

#include <barrier>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/alex_engine.h"
#include "datagen/profiles.h"
#include "datagen/world.h"
#include "feedback/oracle.h"
#include "linking/paris.h"
#include "rdf/dataset_stats.h"
#include "rdf/triple_store.h"
#include "serving/serving_engine.h"
#include "serving/serving_loop.h"
#include "sparql/plan_cache.h"

namespace alex::eval {
namespace {

using core::AlexEngine;
using core::AlexOptions;
using linking::Link;
using rdf::Term;

// Everything observable about one ingest epoch + the episode that follows:
// structural fingerprints, ingest accounting, episode stats, candidates.
struct EpochObservation {
  AlexEngine::IngestStats ingest;
  uint64_t right_fingerprint = 0;
  std::vector<uint64_t> partition_fingerprints;
  core::EpisodeStats episode;
  std::vector<Link> candidates;
};

struct RunConfig {
  bool incremental = true;
  size_t compaction_threshold = 32;
  int threads = 1;
  int epochs = 3;
};

AlexOptions MakeOptions(const RunConfig& config) {
  AlexOptions options;
  options.num_partitions = 3;
  options.num_threads = config.threads;
  options.episode_size = 60;
  options.incremental_ingest = config.incremental;
  options.space.compaction_threshold = config.compaction_threshold;
  options.space.blocking.pending_merge_threshold = config.compaction_threshold;
  return options;
}

// One full grow-ingest-learn run. The world is regenerated per run and the
// growth schedule is a pure function of (profile, seed, fraction, epochs),
// so every run over the same RunConfig-independent inputs mutates its
// stores identically — the differential needs no shared state.
std::vector<EpochObservation> RunGrowingRun(const RunConfig& config) {
  datagen::WorldProfile profile = datagen::TinyTestProfile();
  datagen::GeneratedWorld world = datagen::Generate(profile);
  feedback::GroundTruth truth(world.ground_truth);
  std::vector<Link> initial =
      linking::FilterByScore(linking::RunParis(world.left, world.right), 0.95);

  AlexEngine engine(&world.left, &world.right, MakeOptions(config));
  Status init = engine.Initialize(initial);
  EXPECT_TRUE(init.ok()) << init.message();
  if (!init.ok()) return {};

  datagen::GrowthSchedule schedule =
      datagen::GrowWorld(profile, 21, 0.05, config.epochs);
  feedback::Oracle oracle(&truth, 0.0, 99);
  core::FeedbackFn feedback = [&oracle](const Link& link) {
    return oracle.Feedback(link);
  };

  std::vector<EpochObservation> series;
  for (const datagen::GrowthEpoch& epoch : schedule.epochs) {
    datagen::ApplyGrowthEpoch(epoch, &world.left, &world.right);
    for (const Link& link : epoch.new_ground_truth) truth.Add(link);

    EpochObservation obs;
    Status status = engine.IngestTriples(&obs.ingest);
    EXPECT_TRUE(status.ok()) << status.message();
    if (!status.ok()) return series;
    obs.right_fingerprint = engine.right_context()->index.Fingerprint();
    for (const core::PartitionAlex& partition : engine.partitions()) {
      obs.partition_fingerprints.push_back(partition.space().Fingerprint());
    }
    obs.episode = engine.RunEpisode(feedback);
    obs.candidates = engine.CandidateLinks();
    series.push_back(std::move(obs));
  }
  return series;
}

// The mode-independent contract: same structures, same learning, same
// candidates. Cumulative overflow/merge counters legitimately differ
// between the incremental and rebuild modes and are checked separately.
void ExpectSameLogicalSeries(const std::vector<EpochObservation>& inc,
                             const std::vector<EpochObservation>& reb) {
  ASSERT_EQ(inc.size(), reb.size());
  for (size_t i = 0; i < inc.size(); ++i) {
    SCOPED_TRACE("epoch " + std::to_string(i));
    EXPECT_EQ(inc[i].right_fingerprint, reb[i].right_fingerprint);
    EXPECT_EQ(inc[i].partition_fingerprints, reb[i].partition_fingerprints);

    EXPECT_EQ(inc[i].ingest.triples_ingested, reb[i].ingest.triples_ingested);
    EXPECT_EQ(inc[i].ingest.new_left_entities,
              reb[i].ingest.new_left_entities);
    EXPECT_EQ(inc[i].ingest.new_right_entities,
              reb[i].ingest.new_right_entities);
    EXPECT_EQ(inc[i].ingest.new_pairs, reb[i].ingest.new_pairs);
    EXPECT_EQ(inc[i].ingest.ingest_epoch, reb[i].ingest.ingest_epoch);

    EXPECT_EQ(inc[i].episode.feedback_items, reb[i].episode.feedback_items);
    EXPECT_EQ(inc[i].episode.positive_feedback,
              reb[i].episode.positive_feedback);
    EXPECT_EQ(inc[i].episode.negative_feedback,
              reb[i].episode.negative_feedback);
    EXPECT_EQ(inc[i].episode.links_added, reb[i].episode.links_added);
    EXPECT_EQ(inc[i].episode.links_removed, reb[i].episode.links_removed);
    EXPECT_EQ(inc[i].episode.rollbacks, reb[i].episode.rollbacks);
    EXPECT_EQ(inc[i].episode.candidate_count, reb[i].episode.candidate_count);
    EXPECT_EQ(inc[i].episode.change_fraction, reb[i].episode.change_fraction);
    EXPECT_EQ(inc[i].candidates, reb[i].candidates);
  }
}

// The thread-sweep contract within one mode: EVERYTHING except wall-clock
// timing is bitwise-identical, cumulative ingest counters included.
void ExpectIdenticalSeries(const std::vector<EpochObservation>& a,
                           const std::vector<EpochObservation>& b) {
  ExpectSameLogicalSeries(a, b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("epoch " + std::to_string(i));
    EXPECT_EQ(a[i].ingest.overflow_entries, b[i].ingest.overflow_entries);
    EXPECT_EQ(a[i].ingest.blocking_merges, b[i].ingest.blocking_merges);
    EXPECT_EQ(a[i].episode.triples_ingested, b[i].episode.triples_ingested);
    EXPECT_EQ(a[i].episode.entities_added, b[i].episode.entities_added);
    EXPECT_EQ(a[i].episode.blocking_merges, b[i].episode.blocking_merges);
    EXPECT_EQ(a[i].episode.space_overflow_pairs,
              b[i].episode.space_overflow_pairs);
    EXPECT_EQ(a[i].episode.ingest_epochs, b[i].episode.ingest_epochs);
  }
}

TEST(IngestDifferentialTest, IncrementalMatchesRebuildAcrossThresholds) {
  for (size_t threshold : {size_t{0}, size_t{1}, size_t{32}}) {
    SCOPED_TRACE("compaction threshold " + std::to_string(threshold));
    RunConfig incremental{/*incremental=*/true, threshold, /*threads=*/1,
                          /*epochs=*/3};
    RunConfig rebuild{/*incremental=*/false, threshold, /*threads=*/1,
                      /*epochs=*/3};
    std::vector<EpochObservation> inc = RunGrowingRun(incremental);
    std::vector<EpochObservation> reb = RunGrowingRun(rebuild);
    ASSERT_EQ(inc.size(), 3u);
    ExpectSameLogicalSeries(inc, reb);

    // The schedule genuinely grew the spaces every epoch, and the rebuild
    // baseline never parks score entries in sidecars.
    for (const EpochObservation& obs : inc) {
      EXPECT_GT(obs.ingest.new_pairs, 0u);
      EXPECT_GT(obs.ingest.triples_ingested, 0u);
    }
    for (const EpochObservation& obs : reb) {
      EXPECT_EQ(obs.ingest.overflow_entries, 0u);
    }
    // And the incremental runs really exercised the sidecar path.
    EXPECT_GT(inc.back().episode.space_overflow_pairs, 0u);
  }
}

TEST(IngestDifferentialTest, SeriesBitwiseIdenticalAcrossThreadCounts) {
  std::vector<EpochObservation> inc_base =
      RunGrowingRun({/*incremental=*/true, 32, /*threads=*/1, /*epochs=*/3});
  std::vector<EpochObservation> reb_base =
      RunGrowingRun({/*incremental=*/false, 32, /*threads=*/1, /*epochs=*/3});
  ASSERT_EQ(inc_base.size(), 3u);
  for (int threads : {2, 4}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ExpectIdenticalSeries(
        inc_base, RunGrowingRun({/*incremental=*/true, 32, threads, 3}));
    ExpectIdenticalSeries(
        reb_base, RunGrowingRun({/*incremental=*/false, 32, threads, 3}));
  }
}

TEST(IngestDifferentialTest, IngestRejectsChangesToPreexistingSubjects) {
  datagen::GeneratedWorld world =
      datagen::Generate(datagen::TinyTestProfile());
  std::vector<Link> initial =
      linking::FilterByScore(linking::RunParis(world.left, world.right), 0.95);
  AlexEngine engine(&world.left, &world.right, MakeOptions(RunConfig{}));
  ASSERT_TRUE(engine.Initialize(initial).ok());

  // Retract every triple of a pre-existing subject: the old subject prefix
  // shrinks and the additive-growth contract is violated.
  rdf::TermId victim = world.left.Subjects().front();
  rdf::IngestBatch batch;
  rdf::MatchCursor cursor =
      world.left.Scan(victim, std::nullopt, std::nullopt);
  while (const rdf::Triple* triple = cursor.Next()) {
    batch.retracts.push_back(*triple);
  }
  ASSERT_FALSE(batch.retracts.empty());
  world.left.Ingest(batch);

  Status status = engine.IngestTriples();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(IngestDifferentialTest, IngestRequiresEngineOwnedRightContext) {
  datagen::WorldProfile profile = datagen::TinyTestProfile();
  datagen::GeneratedWorld world = datagen::Generate(profile);
  std::vector<Link> initial =
      linking::FilterByScore(linking::RunParis(world.left, world.right), 0.95);
  AlexOptions options = MakeOptions(RunConfig{});
  std::shared_ptr<const core::RightContext> prepared =
      core::RightContext::Prepare(world.right, world.right.Subjects(),
                                  options.space);
  AlexEngine engine(&world.left, &world.right, options);
  ASSERT_TRUE(engine.Initialize(initial, prepared).ok());

  datagen::GrowthSchedule schedule = datagen::GrowWorld(profile, 21, 0.05, 1);
  datagen::ApplyGrowthEpoch(schedule.epochs[0], &world.left, &world.right);
  Status status = engine.IngestTriples();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(IngestDifferentialTest, IngestDrivenExperimentCarriesCounters) {
  ExperimentConfig config;
  config.profile = datagen::TinyTestProfile();
  config.alex.num_partitions = 2;
  config.alex.num_threads = 1;
  config.alex.episode_size = 60;
  IngestDrivenOptions ingest;
  ingest.epochs = 3;
  ingest.growth_fraction = 0.05;
  ingest.growth_seed = 21;

  datagen::GeneratedWorld world = datagen::Generate(config.profile);
  const size_t base_truth = world.ground_truth.size();
  std::vector<Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right), config.paris_threshold);

  Result<ExperimentResult> result =
      RunIngestDrivenExperiment(config, ingest, &world, initial);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->series.size(), static_cast<size_t>(ingest.epochs) + 1);
  EXPECT_EQ(result->episodes, ingest.epochs);
  // The world grew in place, and the growing truth was evaluated against.
  EXPECT_GT(result->ground_truth_size, base_truth);

  // Episode 0 is the pre-growth baseline; the counters then accumulate
  // monotonically and the final episode accounts for every epoch.
  EXPECT_EQ(result->series.front().stats.ingest_epochs, 0u);
  for (size_t i = 1; i < result->series.size(); ++i) {
    const core::EpisodeStats& prev = result->series[i - 1].stats;
    const core::EpisodeStats& curr = result->series[i].stats;
    EXPECT_EQ(curr.ingest_epochs, static_cast<size_t>(i));
    EXPECT_GE(curr.triples_ingested, prev.triples_ingested);
    EXPECT_GE(curr.entities_added, prev.entities_added);
    EXPECT_GT(curr.triples_ingested, 0u);
    EXPECT_GT(curr.entities_added, 0u);
  }
}

// -- Serving across live ingest ---------------------------------------------

struct IngestRound {
  std::string player;
  std::string award;
  std::string article;
  std::string person;
  Link link;
};

void ApplyServingIngest(rdf::TripleStore* dbpedia, rdf::TripleStore* nytimes,
                        const IngestRound& round) {
  rdf::IngestBatch db;
  db.adds.push_back({dbpedia->InternTerm(Term::Iri(round.player)),
                     dbpedia->InternTerm(Term::Iri("http://dbpedia.org/award")),
                     dbpedia->InternTerm(Term::StringLiteral(round.award))});
  dbpedia->Ingest(db);
  rdf::IngestBatch ny;
  ny.adds.push_back({nytimes->InternTerm(Term::Iri(round.article)),
                     nytimes->InternTerm(Term::Iri("http://nyt.com/about")),
                     nytimes->InternTerm(Term::Iri(round.person))});
  nytimes->Ingest(ny);
}

std::string AwardQuery(const std::string& award) {
  return "SELECT ?article WHERE { "
         "?player <http://dbpedia.org/award> \"" +
         award +
         "\" . "
         "?article <http://nyt.com/about> ?player }";
}

// Two reader streams stay pinned to epoch 0 across two live ingest epochs.
// Readers quiesce (via barrier) while the publisher mutates the stores;
// their pinned snapshot must keep answering bitwise-identically, new pins
// must see each published epoch, and NoteSourceIngest must start the next
// epoch with a COLD query cache (delta invalidation is unsound once the
// stores themselves changed).
TEST(ServingIngestTest, ReadersStayPinnedAcrossIngestEpochs) {
  rdf::TripleStore dbpedia("dbpedia");
  rdf::TripleStore nytimes("nytimes");
  dbpedia.Add(Term::Iri("http://dbpedia.org/LeBron_James"),
              Term::Iri("http://dbpedia.org/award"),
              Term::StringLiteral("NBA MVP 2013"));
  nytimes.Add(Term::Iri("http://nyt.com/article/1"),
              Term::Iri("http://nyt.com/about"),
              Term::Iri("http://nyt.com/person/lebron"));
  (void)dbpedia.size();  // warm the lazy indexes before concurrent reads
  (void)nytimes.size();

  const std::vector<IngestRound> rounds = {
      {"http://dbpedia.org/Nikola_Jokic", "NBA MVP 2021",
       "http://nyt.com/article/5", "http://nyt.com/person/jokic",
       Link{"http://dbpedia.org/Nikola_Jokic", "http://nyt.com/person/jokic",
            1.0}},
      {"http://dbpedia.org/Joel_Embiid", "NBA MVP 2023",
       "http://nyt.com/article/7", "http://nyt.com/person/embiid",
       Link{"http://dbpedia.org/Joel_Embiid", "http://nyt.com/person/embiid",
            1.0}},
  };

  serving::ServingOptions options;
  options.sources = {&dbpedia, &nytimes};
  serving::ServingEngine serving(
      options, std::vector<Link>{Link{"http://dbpedia.org/LeBron_James",
                                      "http://nyt.com/person/lebron", 0.99}});

  // Warm the epoch-0 query cache on the publisher thread.
  const std::string lebron_q = AwardQuery("NBA MVP 2013");
  auto warm_miss = serving.ExecuteText(lebron_q);
  ASSERT_TRUE(warm_miss.ok());
  EXPECT_FALSE(warm_miss->from_cache);
  auto warm_hit = serving.ExecuteText(lebron_q);
  ASSERT_TRUE(warm_hit.ok());
  EXPECT_TRUE(warm_hit->from_cache);

  constexpr int kReaders = 2;
  std::barrier<> sync(kReaders + 1);
  std::vector<std::string> errors(kReaders);

  auto reader = [&](int id) {
    std::shared_ptr<const serving::EpochSnapshot> pinned = serving.Pin();
    auto fail = [&](const std::string& what) { errors[id] = what; };
    if (pinned->epoch() != 0) return fail("reader pinned a non-zero epoch");
    auto baseline = pinned->ExecuteText(lebron_q);
    if (!baseline.ok()) return fail("baseline query failed");
    const uint64_t baseline_hash = serving::HashAnswers(baseline->answers);

    for (size_t r = 0; r < rounds.size(); ++r) {
      sync.arrive_and_wait();  // A: quiesced; the publisher ingests now
      sync.arrive_and_wait();  // B: mutation + publish done, reads are safe

      // The pinned snapshot still answers bitwise-identically: the new
      // entities' links belong to later epochs.
      auto replay = pinned->ExecuteText(lebron_q);
      if (!replay.ok()) return fail("pinned replay failed");
      if (serving::HashAnswers(replay->answers) != baseline_hash) {
        return fail("pinned answers changed under ingest");
      }
      auto stale = pinned->ExecuteText(AwardQuery(rounds[r].award));
      if (!stale.ok()) return fail("pinned new-award query failed");
      if (!stale->answers.empty()) {
        return fail("pinned epoch sees a link published after it");
      }

      // A fresh pin sees the newly published epoch and its new link.
      std::shared_ptr<const serving::EpochSnapshot> fresh = serving.Pin();
      if (fresh->epoch() != r + 1) return fail("fresh pin missed an epoch");
      auto grown = fresh->ExecuteText(AwardQuery(rounds[r].award));
      if (!grown.ok()) return fail("fresh new-award query failed");
      if (grown->answers.size() != 1) {
        return fail("new entity not answerable after publish");
      }
      sync.arrive_and_wait();  // C: round done
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int id = 0; id < kReaders; ++id) threads.emplace_back(reader, id);

  for (const IngestRound& round : rounds) {
    sync.arrive_and_wait();  // A: readers quiesced (pins held, no queries)
    ApplyServingIngest(&dbpedia, &nytimes, round);
    std::vector<rdf::DatasetStats> fresh = {rdf::ComputeStats(dbpedia),
                                            rdf::ComputeStats(nytimes)};
    serving.NoteSourceIngest(fresh);
    serving.StageLink(round.link, true);
    (void)serving.Publish();

    // The ingested epoch starts with a cold query cache: even the warmed
    // query re-executes (its cached answers were computed against the
    // pre-ingest stores).
    auto cold = serving.ExecuteText(lebron_q);
    ASSERT_TRUE(cold.ok());
    EXPECT_FALSE(cold->from_cache);
    EXPECT_EQ(serving::HashAnswers(cold->answers),
              serving::HashAnswers(warm_miss->answers));
    sync.arrive_and_wait();  // B: release the readers
    sync.arrive_and_wait();  // C: their reads finished
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::string& error : errors) EXPECT_EQ(error, "");

  EXPECT_EQ(serving.stats().epochs_published, rounds.size() + 1);
  EXPECT_GE(serving.stats().max_concurrent_readers, 1u);
}

TEST(ServingIngestTest, PlanCacheRecompilesWhenStoreGenerationMoves) {
  rdf::TripleStore store("src");
  store.Add(Term::Iri("http://ex/e1"), Term::Iri("http://ex/name"),
            Term::StringLiteral("Ada"));
  const std::string query =
      "SELECT ?s WHERE { ?s <http://ex/name> \"Ada\" }";

  sparql::PlanCache cache;
  ASSERT_TRUE(cache.GetPlan(query, store, nullptr).ok());
  ASSERT_TRUE(cache.GetPlan(query, store, nullptr).ok());
  sparql::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_hits, 1u);
  EXPECT_EQ(stats.invalidations, 0u);

  // Live ingest mutates the store in place: same pointer, new generation.
  rdf::IngestBatch batch;
  batch.adds.push_back({store.InternTerm(Term::Iri("http://ex/e2")),
                        store.InternTerm(Term::Iri("http://ex/name")),
                        store.InternTerm(Term::StringLiteral("Alan"))});
  store.Ingest(batch);

  ASSERT_TRUE(cache.GetPlan(query, store, nullptr).ok());
  stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  // And the recompiled plan is fresh again.
  ASSERT_TRUE(cache.GetPlan(query, store, nullptr).ok());
  EXPECT_EQ(cache.stats().plan_hits, 2u);
}

}  // namespace
}  // namespace alex::eval
