// Fault-tolerant federation: endpoint abstraction, deterministic fault
// injection, retry/backoff, circuit breaking, and partial-result semantics.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "federation/endpoint.h"
#include "federation/fault_injection.h"
#include "federation/federated_engine.h"
#include "federation/health.h"
#include "federation/link_set.h"
#include "federation/query_cache.h"
#include "federation/retry_policy.h"
#include "sparql/parser.h"

namespace alex::fed {
namespace {

using linking::Link;
using rdf::Term;
using rdf::TripleStore;

// -------------------------------------------------------------------------
// Unit: LocalEndpoint

TEST(LocalEndpointTest, ProbeMatchesStoreExactly) {
  TripleStore store("s");
  store.Add(Term::Iri("http://a"), Term::Iri("http://p"), Term::Iri("http://b"));
  store.Add(Term::Iri("http://a"), Term::Iri("http://p"), Term::Iri("http://c"));
  LocalEndpoint endpoint(&store);
  EXPECT_TRUE(endpoint.reliable());
  EXPECT_EQ(endpoint.name(), "s");

  ProbeResult result;
  ASSERT_TRUE(endpoint
                  .Probe(std::nullopt, std::nullopt, std::nullopt,
                         /*query_salt=*/7, /*attempt=*/0, &result)
                  .ok());
  EXPECT_EQ(result.triples.size(), store.Match({}, {}, {}).size());
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.latency_micros, 0);
}

// -------------------------------------------------------------------------
// Unit: retry policy

TEST(RetryPolicyTest, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryable(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryable(StatusCode::kOk));
}

TEST(RetryPolicyTest, BackoffGrowsIsCappedAndJitterIsDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 1000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_micros = 3000;
  policy.jitter_fraction = 0.5;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const int64_t base =
        std::min<int64_t>(1000 * (int64_t{1} << (attempt - 1)), 3000);
    const int64_t delay = BackoffMicros(policy, attempt, /*jitter_key=*/42);
    EXPECT_GE(delay, base / 2) << "attempt " << attempt;
    EXPECT_LE(delay, base + base / 2) << "attempt " << attempt;
    // Pure function of (policy, attempt, key).
    EXPECT_EQ(delay, BackoffMicros(policy, attempt, 42));
  }
  // Different keys draw different jitter (with overwhelming probability for
  // these two particular keys — this is a fixed, deterministic check).
  EXPECT_NE(BackoffMicros(policy, 1, 1), BackoffMicros(policy, 1, 2));
}

TEST(RetryPolicyTest, ZeroJitterIsExact) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 100;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff_micros = 100000;
  policy.jitter_fraction = 0.0;
  EXPECT_EQ(BackoffMicros(policy, 1, 9), 100);
  EXPECT_EQ(BackoffMicros(policy, 2, 9), 300);
  EXPECT_EQ(BackoffMicros(policy, 3, 9), 900);
}

// -------------------------------------------------------------------------
// Unit: circuit breaker state machine

TEST(EndpointHealthTest, OpensAfterConsecutiveFailuresAndRecovers) {
  BreakerOptions options;
  options.failure_threshold = 2;
  options.cooldown_micros = 10;
  options.half_open_successes = 1;
  EndpointHealth health(options);

  EXPECT_EQ(health.state(), BreakerState::kClosed);
  health.ReportQuery(false, 0);
  EXPECT_EQ(health.state(), BreakerState::kClosed);
  health.ReportQuery(false, 1);
  EXPECT_EQ(health.state(), BreakerState::kOpen);
  EXPECT_FALSE(health.AllowProbe(5));  // cooldown not elapsed
  EXPECT_TRUE(health.AllowProbe(11));  // open -> half-open
  EXPECT_EQ(health.state(), BreakerState::kHalfOpen);
  health.ReportQuery(true, 12);  // half-open -> closed
  EXPECT_EQ(health.state(), BreakerState::kClosed);
  EXPECT_EQ(health.counters().opens, 1u);
  EXPECT_EQ(health.counters().half_opens, 1u);
  EXPECT_EQ(health.counters().closes, 1u);
}

TEST(EndpointHealthTest, HalfOpenFailureReopensAndSuccessResetsStreak) {
  BreakerOptions options;
  options.failure_threshold = 3;
  options.cooldown_micros = 10;
  EndpointHealth health(options);

  // A healthy query resets the consecutive-failure streak.
  health.ReportQuery(false, 0);
  health.ReportQuery(false, 1);
  health.ReportQuery(true, 2);
  EXPECT_EQ(health.consecutive_failures(), 0);
  EXPECT_EQ(health.state(), BreakerState::kClosed);

  for (int i = 0; i < 3; ++i) health.ReportQuery(false, 3 + i);
  EXPECT_EQ(health.state(), BreakerState::kOpen);
  EXPECT_TRUE(health.AllowProbe(20));  // -> half-open
  health.ReportQuery(false, 21);       // half-open failure reopens
  EXPECT_EQ(health.state(), BreakerState::kOpen);
  EXPECT_EQ(health.counters().opens, 2u);
}

TEST(BreakerStateNameTest, NamesAllStates) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half_open");
}

// -------------------------------------------------------------------------
// Unit: fault injection

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : store_("src"), local_(&store_) {
    store_.Add(Term::Iri("http://a"), Term::Iri("http://p"),
               Term::Iri("http://b"));
    store_.Add(Term::Iri("http://a"), Term::Iri("http://p"),
               Term::Iri("http://c"));
    store_.Add(Term::Iri("http://a"), Term::Iri("http://p"),
               Term::Iri("http://d"));
    store_.Add(Term::Iri("http://a"), Term::Iri("http://p"),
               Term::Iri("http://e"));
  }

  TripleStore store_;
  LocalEndpoint local_;
};

TEST_F(FaultInjectionTest, ZeroProfileIsReliablePassthrough) {
  FaultProfile profile;
  EXPECT_TRUE(profile.IsZero());
  FaultInjectingEndpoint endpoint(&local_, 0, profile);
  EXPECT_TRUE(endpoint.reliable());
  EXPECT_FALSE(endpoint.permanently_down());
  ProbeResult result;
  ASSERT_TRUE(
      endpoint.Probe(std::nullopt, std::nullopt, std::nullopt, 1, 0, &result)
          .ok());
  EXPECT_EQ(result.triples.size(), 4u);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.latency_micros, 0);
}

TEST_F(FaultInjectionTest, DecisionsAreAPureFunctionOfTheProbeIdentity) {
  FaultProfile profile;
  profile.seed = 99;
  profile.transient_error_rate = 0.5;
  profile.base_latency_micros = 10;
  profile.latency_jitter_micros = 100;
  FaultInjectingEndpoint a(&local_, 1, profile);
  FaultInjectingEndpoint b(&local_, 1, profile);  // separate instance
  for (uint64_t salt = 0; salt < 32; ++salt) {
    ProbeResult ra, rb;
    Status sa = a.Probe(std::nullopt, std::nullopt, std::nullopt, salt,
                        /*attempt=*/0, &ra);
    Status sb = b.Probe(std::nullopt, std::nullopt, std::nullopt, salt,
                        /*attempt=*/0, &rb);
    EXPECT_EQ(sa.code(), sb.code()) << salt;
    EXPECT_EQ(ra.latency_micros, rb.latency_micros) << salt;
    EXPECT_EQ(ra.triples.size(), rb.triples.size()) << salt;
  }
}

TEST_F(FaultInjectionTest, AttemptOrdinalRedrawsTransientFate) {
  FaultProfile profile;
  profile.seed = 7;
  profile.transient_error_rate = 0.5;
  FaultInjectingEndpoint endpoint(&local_, 0, profile);
  // Across many (salt, attempt) draws both outcomes must occur — retrying
  // a transient failure can genuinely succeed.
  int failures = 0, successes = 0;
  for (uint64_t salt = 0; salt < 64; ++salt) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      ProbeResult result;
      Status st = endpoint.Probe(std::nullopt, std::nullopt, std::nullopt,
                                 salt, attempt, &result);
      (st.ok() ? successes : failures)++;
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);
}

TEST_F(FaultInjectionTest, PermanentOutageFailsEveryProbe) {
  FaultProfile profile;
  profile.seed = 3;
  profile.permanent_outage_rate = 1.0;
  FaultInjectingEndpoint endpoint(&local_, 0, profile);
  EXPECT_TRUE(endpoint.permanently_down());
  for (uint64_t salt = 0; salt < 8; ++salt) {
    ProbeResult result;
    Status st = endpoint.Probe(std::nullopt, std::nullopt, std::nullopt,
                               salt, 0, &result);
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(result.triples.empty());
  }
}

TEST_F(FaultInjectionTest, TruncationKeepsAPrefixAndFlagsIt) {
  FaultProfile profile;
  profile.seed = 11;
  profile.truncation_rate = 1.0;
  profile.truncation_keep_fraction = 0.5;
  FaultInjectingEndpoint endpoint(&local_, 0, profile);
  ProbeResult result;
  ASSERT_TRUE(
      endpoint.Probe(std::nullopt, std::nullopt, std::nullopt, 1, 0, &result)
          .ok());
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.triples.size(), 2u);  // floor(4 * 0.5)
  // The kept triples are a prefix of the full result.
  std::vector<rdf::Triple> full = store_.Match({}, {}, {});
  for (size_t i = 0; i < result.triples.size(); ++i) {
    EXPECT_TRUE(result.triples[i] == full[i]);
  }
}

TEST_F(FaultInjectionTest, LatencyOverTimeoutBecomesDeadlineExceeded) {
  FaultProfile profile;
  profile.seed = 5;
  profile.base_latency_micros = 500;
  profile.probe_timeout_micros = 100;
  FaultInjectingEndpoint endpoint(&local_, 0, profile);
  EXPECT_FALSE(endpoint.reliable());
  ProbeResult result;
  Status st =
      endpoint.Probe(std::nullopt, std::nullopt, std::nullopt, 1, 0, &result);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  // The caller waited out the full timeout before giving up.
  EXPECT_EQ(result.latency_micros, 100);
}

// -------------------------------------------------------------------------
// Engine-level: resilient execution over unreliable endpoints.

// Fails the first `fail_probes` probes with kUnavailable, then recovers.
// Stateful on purpose (unit tests drive the engine sequentially): it lets
// the breaker walk closed -> open -> half-open -> closed against a source
// that actually heals.
class ScriptedEndpoint final : public Endpoint {
 public:
  ScriptedEndpoint(const TripleStore* store, int fail_probes)
      : store_(store), fail_probes_(fail_probes) {}

  const TripleStore& store() const override { return *store_; }

  Status Probe(rdf::TermPattern s, rdf::TermPattern p, rdf::TermPattern o,
               uint64_t, int, ProbeResult* out) override {
    out->triples.clear();
    out->truncated = false;
    out->latency_micros = 0;
    if (fail_probes_ > 0) {
      --fail_probes_;
      return Status::Unavailable("scripted failure");
    }
    out->triples = store_->Match(s, p, o);
    return Status::Ok();
  }

  bool reliable() const override { return false; }
  const std::string& name() const override { return store_->name(); }

 private:
  const TripleStore* store_;
  int fail_probes_;
};

class FaultyEngineTest : public ::testing::Test {
 protected:
  FaultyEngineTest() : dbpedia_("dbpedia"), nytimes_("nytimes") {
    dbpedia_.Add(Term::Iri("http://dbpedia.org/LeBron_James"),
                 Term::Iri("http://dbpedia.org/award"),
                 Term::StringLiteral("NBA MVP 2013"));
    nytimes_.Add(Term::Iri("http://nyt.com/article/1"),
                 Term::Iri("http://nyt.com/about"),
                 Term::Iri("http://nyt.com/person/lebron"));
    nytimes_.Add(Term::Iri("http://nyt.com/article/2"),
                 Term::Iri("http://nyt.com/about"),
                 Term::Iri("http://nyt.com/person/lebron"));
    links_.Add(Link{"http://dbpedia.org/LeBron_James",
                    "http://nyt.com/person/lebron", 0.99});
    lebron_q_ =
        "SELECT ?article WHERE { "
        "?player <http://dbpedia.org/award> \"NBA MVP 2013\" . "
        "?article <http://nyt.com/about> ?player }";
  }

  TripleStore dbpedia_;
  TripleStore nytimes_;
  LinkSet links_;
  std::string lebron_q_;
};

TEST_F(FaultyEngineTest, ZeroFaultEndpointsAreBitwiseIdenticalToSeedEngine) {
  FederatedEngine seed_engine({&dbpedia_, &nytimes_}, &links_);

  LocalEndpoint local0(&dbpedia_), local1(&nytimes_);
  FaultProfile zero;
  FaultInjectingEndpoint faulty0(&local0, 0, zero), faulty1(&local1, 1, zero);
  std::vector<Endpoint*> endpoints = {&faulty0, &faulty1};
  FederatedEngine wrapped_engine(endpoints, &links_);
  EXPECT_FALSE(wrapped_engine.resilient());

  for (const std::string& text :
       {lebron_q_,
        std::string("SELECT ?s ?p ?o WHERE { ?s ?p ?o }"),
        std::string("ASK WHERE { ?a <http://nyt.com/about> ?p }")}) {
    auto a = seed_engine.ExecuteText(text);
    auto b = wrapped_engine.ExecuteText(text);
    ASSERT_TRUE(a.ok() && b.ok()) << text;
    EXPECT_TRUE(a->complete && b->complete) << text;
    ASSERT_EQ(a->answers.size(), b->answers.size()) << text;
    for (size_t i = 0; i < a->answers.size(); ++i) {
      EXPECT_TRUE(a->answers[i].binding == b->answers[i].binding) << text;
      EXPECT_TRUE(a->answers[i].links_used == b->answers[i].links_used)
          << text;
    }
  }
}

TEST_F(FaultyEngineTest, DownEndpointYieldsIncompleteResultNotAnError) {
  LocalEndpoint local0(&dbpedia_), local1(&nytimes_);
  FaultProfile down;
  down.seed = 21;
  down.permanent_outage_rate = 1.0;
  FaultInjectingEndpoint faulty1(&local1, 1, down);  // nytimes is down
  std::vector<Endpoint*> endpoints = {&local0, &faulty1};
  FederatedEngine engine(endpoints, &links_);
  EXPECT_TRUE(engine.resilient());

  auto result = engine.ExecuteText(lebron_q_);
  ASSERT_TRUE(result.ok());  // degraded, not a hard error
  EXPECT_FALSE(result->complete);
  EXPECT_TRUE(result->answers.empty());  // the join needed nytimes
  ASSERT_EQ(result->failed_sources.size(), 1u);
  EXPECT_EQ(result->failed_sources[0], 1u);
  // Retried up to the policy's max attempts.
  EXPECT_GT(result->retries, 0u);
  EXPECT_GT(result->probes, result->retries);
}

TEST_F(FaultyEngineTest, TruncatedProbeMarksResultIncomplete) {
  LocalEndpoint local0(&dbpedia_), local1(&nytimes_);
  FaultProfile truncating;
  truncating.seed = 4;
  truncating.truncation_rate = 1.0;
  truncating.truncation_keep_fraction = 0.5;
  FaultInjectingEndpoint faulty1(&local1, 1, truncating);
  std::vector<Endpoint*> endpoints = {&local0, &faulty1};
  FederatedEngine engine(endpoints, &links_);

  auto result = engine.ExecuteText(lebron_q_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_FALSE(result->complete);
  // Partial answers: the probe kept 1 of the 2 matching articles.
  EXPECT_EQ(result->answers.size(), 1u);
  ASSERT_EQ(result->failed_sources.size(), 1u);
  EXPECT_EQ(result->failed_sources[0], 1u);
}

TEST_F(FaultyEngineTest, DeadlineBudgetMarksSlowQueriesIncomplete) {
  LocalEndpoint local0(&dbpedia_), local1(&nytimes_);
  FaultProfile slow;
  slow.seed = 8;
  slow.base_latency_micros = 1000;
  FaultInjectingEndpoint faulty0(&local0, 0, slow), faulty1(&local1, 1, slow);
  std::vector<Endpoint*> endpoints = {&faulty0, &faulty1};
  FederatedEngine engine(endpoints, &links_);

  FederatedOptions relaxed;
  relaxed.deadline_micros = 0;  // unlimited
  auto ok_result = engine.ExecuteText(lebron_q_, relaxed);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_TRUE(ok_result->complete);
  EXPECT_GT(ok_result->virtual_micros, 0);

  FederatedOptions tight;
  tight.deadline_micros = 1;  // smaller than one probe's latency
  auto late = engine.ExecuteText(lebron_q_, tight);
  ASSERT_TRUE(late.ok());
  EXPECT_TRUE(late->deadline_exceeded);
  EXPECT_FALSE(late->complete);
  // The deadline is an accounting budget: answers are still produced.
  EXPECT_EQ(late->answers.size(), ok_result->answers.size());
}

TEST_F(FaultyEngineTest, BreakerOpensShortCircuitsAndRecovers) {
  LocalEndpoint local0(&dbpedia_);
  // nytimes fails its first 2 probes, then heals.
  ScriptedEndpoint flaky1(&nytimes_, /*fail_probes=*/2);
  std::vector<Endpoint*> endpoints = {&local0, &flaky1};
  FederatedEngine engine(endpoints, &links_);
  FederatedEngine::Resilience resilience;
  resilience.retry.max_attempts = 1;  // one probe per pattern, no backoff
  resilience.breaker.failure_threshold = 2;
  resilience.breaker.cooldown_micros = 3;
  resilience.breaker.half_open_successes = 1;
  engine.set_resilience(resilience);

  sparql::Query query;
  {
    auto parsed = sparql::ParseQuery(lebron_q_);
    ASSERT_TRUE(parsed.ok());
    query = std::move(parsed).value();
  }
  FederatedOptions options;

  // Queries 1-2: probes fail -> two failed verdicts -> breaker opens.
  options.fault_salt = 1;
  auto q1 = engine.Execute(query, options);
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(q1->complete);
  EXPECT_EQ(q1->short_circuits, 0u);
  options.fault_salt = 2;
  auto q2 = engine.Execute(query, options);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(engine.health().endpoint(1).state(), BreakerState::kOpen);

  // Query 3: inside the cooldown -> short-circuited, endpoint not probed.
  options.fault_salt = 3;
  auto q3 = engine.Execute(query, options);
  ASSERT_TRUE(q3.ok());
  EXPECT_GT(q3->short_circuits, 0u);
  EXPECT_FALSE(q3->complete);

  // Let virtual time pass (each query advances the clock) until the
  // cooldown elapses; the endpoint has healed, so the half-open probe
  // succeeds and the breaker closes again.
  bool recovered = false;
  for (int i = 4; i < 12 && !recovered; ++i) {
    options.fault_salt = static_cast<uint64_t>(i);
    auto q = engine.Execute(query, options);
    ASSERT_TRUE(q.ok());
    recovered = q->complete;
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(engine.health().endpoint(1).state(), BreakerState::kClosed);

  FederatedEngine::FaultStats stats = engine.TakeFaultStats();
  EXPECT_GE(stats.breaker_opens, 1u);
  EXPECT_GE(stats.breaker_half_opens, 1u);
  EXPECT_GE(stats.breaker_closes, 1u);
  EXPECT_GT(stats.degraded, 0u);
  // TakeFaultStats resets.
  EXPECT_EQ(engine.TakeFaultStats().queries, 0u);
}

TEST_F(FaultyEngineTest, IncompleteResultsAreNeverCached) {
  LocalEndpoint local0(&dbpedia_), local1(&nytimes_);
  FaultProfile flaky;
  flaky.seed = 13;
  flaky.transient_error_rate = 1.0;  // every probe fails, retries exhausted
  FaultInjectingEndpoint faulty0(&local0, 0, flaky), faulty1(&local1, 1, flaky);
  std::vector<Endpoint*> endpoints = {&faulty0, &faulty1};
  FederatedEngine engine(endpoints, &links_);
  FederatedQueryCache cache;
  engine.set_cache(&cache);

  auto first = engine.ExecuteText(lebron_q_);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->complete);
  EXPECT_EQ(cache.size(), 0u);

  auto second = engine.ExecuteText(lebron_q_);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_cache);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

// With a fixed fault seed, the full result — answers, fault counters,
// virtual time — is identical whether branches run inline or on 2/4-thread
// pools, and across repeated runs on fresh engines.
TEST_F(FaultyEngineTest, FaultSeededExecutionIsThreadCountInvariant) {
  FaultProfile profile;
  profile.seed = 777;
  profile.transient_error_rate = 0.3;
  profile.truncation_rate = 0.2;
  profile.truncation_keep_fraction = 0.5;
  profile.base_latency_micros = 50;
  profile.latency_jitter_micros = 200;
  profile.spike_rate = 0.1;
  profile.spike_latency_micros = 5000;
  profile.probe_timeout_micros = 4000;

  const std::vector<std::string> queries = {
      lebron_q_,
      "SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
      "SELECT ?award WHERE { ?article <http://nyt.com/about> ?person . "
      "?person <http://dbpedia.org/award> ?award }",
  };

  auto run_series = [&](ThreadPool* pool) {
    LocalEndpoint local0(&dbpedia_), local1(&nytimes_);
    FaultInjectingEndpoint faulty0(&local0, 0, profile);
    FaultInjectingEndpoint faulty1(&local1, 1, profile);
    std::vector<Endpoint*> endpoints = {&faulty0, &faulty1};
    FederatedEngine engine(endpoints, &links_);
    FederatedOptions options;
    options.pool = pool;
    std::ostringstream series;
    for (const std::string& text : queries) {
      auto result = engine.ExecuteText(text, options);
      if (!result.ok()) {
        series << "err(" << result.status().ToString() << ");";
        continue;
      }
      series << "q[" << result->answers.size() << "," << result->complete
             << "," << result->truncated << "," << result->probes << ","
             << result->retries << "," << result->short_circuits << ","
             << result->virtual_micros << ",f=";
      for (size_t s : result->failed_sources) series << s << "+";
      for (const FederatedAnswer& answer : result->answers) {
        for (const auto& [var, term] : answer.binding) {
          series << var << "=" << term.lexical() << "|";
        }
        series << "/" << answer.links_used.size() << ";";
      }
      series << "]";
    }
    series << "clock=" << engine.virtual_now_micros();
    return series.str();
  };

  const std::string sequential = run_series(nullptr);
  ThreadPool pool2(2), pool4(4);
  EXPECT_EQ(sequential, run_series(&pool2));
  EXPECT_EQ(sequential, run_series(&pool4));
  // Determinism across repeated runs, too.
  EXPECT_EQ(sequential, run_series(nullptr));
}

}  // namespace
}  // namespace alex::fed
