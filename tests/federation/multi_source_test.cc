// Federated evaluation across more than two sources, plus the extended
// SPARQL constructs in the federated setting (UNION, ASK, ORDER BY).
#include <gtest/gtest.h>

#include "federation/federated_engine.h"
#include "sparql/parser.h"

namespace alex::fed {
namespace {

using linking::Link;
using rdf::Term;
using rdf::TripleStore;

class MultiSourceTest : public ::testing::Test {
 protected:
  MultiSourceTest()
      : kb_("kb"), news_("news"), reviews_("reviews") {
    kb_.Add(Term::Iri("http://kb/turing"), Term::Iri("http://kb/field"),
            Term::StringLiteral("computing"));
    kb_.Add(Term::Iri("http://kb/curie"), Term::Iri("http://kb/field"),
            Term::StringLiteral("physics"));

    news_.Add(Term::Iri("http://news/a1"), Term::Iri("http://news/about"),
              Term::Iri("http://news/p/turing"));
    news_.Add(Term::Iri("http://news/a2"), Term::Iri("http://news/about"),
              Term::Iri("http://news/p/curie"));

    reviews_.Add(Term::Iri("http://rev/r1"), Term::Iri("http://rev/of"),
                 Term::Iri("http://rev/person/turing"));
    reviews_.Add(Term::Iri("http://rev/r1"),
                 Term::Iri("http://rev/stars"), Term::IntegerLiteral(5));

    links_.Add(Link{"http://kb/turing", "http://news/p/turing", 1.0});
    links_.Add(Link{"http://kb/curie", "http://news/p/curie", 1.0});
    links_.Add(Link{"http://kb/turing", "http://rev/person/turing", 1.0});
  }

  std::vector<FederatedAnswer> Run(const std::string& text) {
    FederatedEngine engine({&kb_, &news_, &reviews_}, &links_);
    Result<FederatedResult> result = engine.ExecuteText(text);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result.value().answers)
                       : std::vector<FederatedAnswer>{};
  }

  TripleStore kb_;
  TripleStore news_;
  TripleStore reviews_;
  LinkSet links_;
};

TEST_F(MultiSourceTest, ThreeWayJoinThroughTwoLinks) {
  auto answers = Run(
      "SELECT ?article ?stars WHERE { "
      "?p <http://kb/field> \"computing\" . "
      "?article <http://news/about> ?p . "
      "?review <http://rev/of> ?p . "
      "?review <http://rev/stars> ?stars }");
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].binding.at("stars").AsInteger(), 5);
  // Both bridging links appear in the provenance.
  EXPECT_EQ(answers[0].links_used.size(), 2u);
}

TEST_F(MultiSourceTest, UnionAcrossSources) {
  auto answers = Run(
      "SELECT ?x WHERE { "
      "{ ?x <http://news/about> ?p } UNION { ?x <http://rev/of> ?p } }");
  EXPECT_EQ(answers.size(), 3u);  // 2 articles + 1 review
}

TEST_F(MultiSourceTest, AskFederated) {
  FederatedEngine engine({&kb_, &news_, &reviews_}, &links_);
  Result<sparql::Query> ask = sparql::ParseQuery(
      "ASK WHERE { ?p <http://kb/field> \"computing\" . "
      "?r <http://rev/of> ?p }");
  ASSERT_TRUE(ask.ok());
  Result<FederatedResult> answers = engine.Execute(ask.value());
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->complete);
  EXPECT_EQ(answers->answers.size(), 1u);  // stops after the first proof
}

TEST_F(MultiSourceTest, OrderByAppliesToAnswers) {
  auto answers = Run(
      "SELECT ?field WHERE { ?p <http://kb/field> ?field } "
      "ORDER BY DESC(?field)");
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0].binding.at("field").lexical(), "physics");
  EXPECT_EQ(answers[1].binding.at("field").lexical(), "computing");
}

TEST_F(MultiSourceTest, OptionalLeftJoinsAcrossSources) {
  // Reviews exist only for Turing; Curie keeps her row without ?stars.
  auto answers = Run(
      "SELECT ?p ?stars WHERE { ?p <http://kb/field> ?f . "
      "OPTIONAL { ?r <http://rev/of> ?p . ?r <http://rev/stars> ?stars } }");
  ASSERT_EQ(answers.size(), 2u);
  int with_stars = 0;
  for (const FederatedAnswer& a : answers) {
    if (a.binding.count("stars") > 0) {
      ++with_stars;
      EXPECT_EQ(a.binding.at("p").lexical(), "http://kb/turing");
      // The optional hop used the kb->reviews link: provenance recorded.
      EXPECT_FALSE(a.links_used.empty());
    }
  }
  EXPECT_EQ(with_stars, 1);
}

TEST_F(MultiSourceTest, AggregatesRejectedFederated) {
  FederatedEngine engine({&kb_, &news_}, &links_);
  Result<FederatedResult> answers = engine.ExecuteText(
      "SELECT (COUNT(*) AS ?n) WHERE { ?p <http://kb/field> ?f }");
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kUnimplemented);
}

TEST_F(MultiSourceTest, RemovedLinkBreaksOnlyItsPath) {
  links_.Remove("http://kb/turing", "http://rev/person/turing");
  auto with_news = Run(
      "SELECT ?article WHERE { ?p <http://kb/field> \"computing\" . "
      "?article <http://news/about> ?p }");
  EXPECT_EQ(with_news.size(), 1u);  // news path still works
  auto with_reviews = Run(
      "SELECT ?review WHERE { ?p <http://kb/field> \"computing\" . "
      "?review <http://rev/of> ?p }");
  EXPECT_TRUE(with_reviews.empty());  // reviews path is now unreachable
}

}  // namespace
}  // namespace alex::fed
