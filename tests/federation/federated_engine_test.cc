#include "federation/federated_engine.h"

#include <gtest/gtest.h>

#include "federation/source_selection.h"
#include "sparql/parser.h"

namespace alex::fed {
namespace {

using linking::Link;
using rdf::Term;
using rdf::TripleStore;

// The paper's motivating example (§1): find New York Times articles about
// the NBA MVP of 2013. DBpedia knows who the MVP is; NYTimes has articles
// about people; an owl:sameAs link bridges the two representations of
// LeBron James.
class FederatedEngineTest : public ::testing::Test {
 protected:
  FederatedEngineTest() : dbpedia_("dbpedia"), nytimes_("nytimes") {
    dbpedia_.Add(Term::Iri("http://dbpedia.org/LeBron_James"),
                 Term::Iri("http://dbpedia.org/award"),
                 Term::StringLiteral("NBA MVP 2013"));
    dbpedia_.Add(Term::Iri("http://dbpedia.org/LeBron_James"),
                 Term::Iri("http://dbpedia.org/name"),
                 Term::StringLiteral("LeBron James"));
    dbpedia_.Add(Term::Iri("http://dbpedia.org/Kevin_Durant"),
                 Term::Iri("http://dbpedia.org/award"),
                 Term::StringLiteral("NBA MVP 2014"));

    nytimes_.Add(Term::Iri("http://nyt.com/article/1"),
                 Term::Iri("http://nyt.com/about"),
                 Term::Iri("http://nyt.com/person/lebron"));
    nytimes_.Add(Term::Iri("http://nyt.com/article/2"),
                 Term::Iri("http://nyt.com/about"),
                 Term::Iri("http://nyt.com/person/lebron"));
    nytimes_.Add(Term::Iri("http://nyt.com/article/3"),
                 Term::Iri("http://nyt.com/about"),
                 Term::Iri("http://nyt.com/person/durant"));

    links_.Add(Link{"http://dbpedia.org/LeBron_James",
                    "http://nyt.com/person/lebron", 0.99});
  }

  std::vector<FederatedAnswer> Run(const std::string& text) {
    FederatedEngine engine({&dbpedia_, &nytimes_}, &links_);
    Result<FederatedResult> result = engine.ExecuteText(text);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result.value().answers)
                       : std::vector<FederatedAnswer>{};
  }

  TripleStore dbpedia_;
  TripleStore nytimes_;
  LinkSet links_;
};

TEST_F(FederatedEngineTest, MotivatingExampleBridgesSameAs) {
  auto answers = Run(
      "SELECT ?article WHERE { "
      "?player <http://dbpedia.org/award> \"NBA MVP 2013\" . "
      "?article <http://nyt.com/about> ?player }");
  ASSERT_EQ(answers.size(), 2u);
  for (const FederatedAnswer& answer : answers) {
    ASSERT_EQ(answer.links_used.size(), 1u);
    EXPECT_EQ(answer.links_used[0].left, "http://dbpedia.org/LeBron_James");
    EXPECT_EQ(answer.links_used[0].right, "http://nyt.com/person/lebron");
  }
}

TEST_F(FederatedEngineTest, NoLinkNoAnswer) {
  // Durant has no sameAs link, so his articles are unreachable.
  auto answers = Run(
      "SELECT ?article WHERE { "
      "?player <http://dbpedia.org/award> \"NBA MVP 2014\" . "
      "?article <http://nyt.com/about> ?player }");
  EXPECT_TRUE(answers.empty());
}

TEST_F(FederatedEngineTest, LinkMutationIsVisible) {
  links_.Add(Link{"http://dbpedia.org/Kevin_Durant",
                  "http://nyt.com/person/durant", 1.0});
  auto answers = Run(
      "SELECT ?article WHERE { "
      "?player <http://dbpedia.org/award> \"NBA MVP 2014\" . "
      "?article <http://nyt.com/about> ?player }");
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].binding.at("article").lexical(),
            "http://nyt.com/article/3");

  links_.Remove("http://dbpedia.org/Kevin_Durant",
                "http://nyt.com/person/durant");
  EXPECT_TRUE(Run("SELECT ?article WHERE { "
                  "?player <http://dbpedia.org/award> \"NBA MVP 2014\" . "
                  "?article <http://nyt.com/about> ?player }")
                  .empty());
}

TEST_F(FederatedEngineTest, SingleSourceAnswersHaveNoProvenance) {
  auto answers = Run(
      "SELECT ?p WHERE { ?p <http://dbpedia.org/award> \"NBA MVP 2013\" }");
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers[0].links_used.empty());
}

TEST_F(FederatedEngineTest, BridgeWorksInBothDirections) {
  // Start from the NYTimes side and hop to DBpedia.
  auto answers = Run(
      "SELECT ?award WHERE { "
      "?article <http://nyt.com/about> ?person . "
      "?person <http://dbpedia.org/award> ?award }");
  ASSERT_EQ(answers.size(), 2u);
  for (const auto& a : answers) {
    EXPECT_EQ(a.binding.at("award").lexical(), "NBA MVP 2013");
  }
}

TEST_F(FederatedEngineTest, DistinctCollapsesDuplicates) {
  auto answers = Run(
      "SELECT DISTINCT ?award WHERE { "
      "?article <http://nyt.com/about> ?person . "
      "?person <http://dbpedia.org/award> ?award }");
  EXPECT_EQ(answers.size(), 1u);
}

TEST_F(FederatedEngineTest, FilterAppliesAcrossSources) {
  auto answers = Run(
      "SELECT ?article ?award WHERE { "
      "?player <http://dbpedia.org/award> ?award . "
      "?article <http://nyt.com/about> ?player . "
      "FILTER(CONTAINS(?award, \"2013\")) }");
  EXPECT_EQ(answers.size(), 2u);
}

TEST_F(FederatedEngineTest, ParseErrorPropagates) {
  FederatedEngine engine({&dbpedia_, &nytimes_}, &links_);
  EXPECT_FALSE(engine.ExecuteText("SELECT bogus").ok());
}

TEST(SourceSelectionTest, PredicateExistenceFilters) {
  TripleStore a("a"), b("b");
  a.Add(Term::Iri("s"), Term::Iri("http://only-in-a"),
        Term::StringLiteral("v"));
  b.Add(Term::Iri("s"), Term::Iri("http://only-in-b"),
        Term::StringLiteral("v"));
  Result<sparql::Query> q = sparql::ParseQuery(
      "SELECT ?x WHERE { ?x <http://only-in-a> ?v . "
      "?x <http://only-in-b> ?w . ?x ?p ?o }");
  ASSERT_TRUE(q.ok());
  auto selected = SelectSources(q.value(), {&a, &b});
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0], (std::vector<size_t>{0}));
  EXPECT_EQ(selected[1], (std::vector<size_t>{1}));
  EXPECT_EQ(selected[2], (std::vector<size_t>{0, 1}));  // variable predicate
}

}  // namespace
}  // namespace alex::fed
