#include "federation/query_cache.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "datagen/profiles.h"
#include "eval/query_workload.h"
#include "federation/federated_engine.h"
#include "linking/paris.h"
#include "sparql/compiler.h"
#include "sparql/executor.h"
#include "sparql/parser.h"

namespace alex::fed {
namespace {

using linking::Link;
using rdf::Term;
using rdf::TripleStore;

bool SameAnswers(const std::vector<FederatedAnswer>& a,
                 const std::vector<FederatedAnswer>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].binding != b[i].binding) return false;
    if (a[i].links_used.size() != b[i].links_used.size()) return false;
    for (size_t j = 0; j < a[i].links_used.size(); ++j) {
      if (!(a[i].links_used[j] == b[i].links_used[j])) return false;
    }
  }
  return true;
}

FederatedAnswer MakeAnswer(const std::string& var, const std::string& value) {
  FederatedAnswer answer;
  answer.binding[var] = Term::StringLiteral(value);
  return answer;
}

TEST(QueryFingerprintTest, DistinguishesTextAndRowCap) {
  const uint64_t a = QueryFingerprint("SELECT ?x WHERE { ?x ?p ?o }", 100);
  EXPECT_EQ(a, QueryFingerprint("SELECT ?x WHERE { ?x ?p ?o }", 100));
  EXPECT_NE(a, QueryFingerprint("SELECT ?y WHERE { ?y ?p ?o }", 100));
  EXPECT_NE(a, QueryFingerprint("SELECT ?x WHERE { ?x ?p ?o }", 99));
}

TEST(FederatedQueryCacheTest, LookupInsertRoundTrip) {
  FederatedQueryCache cache;
  const uint64_t fp = QueryFingerprint("q", 10);
  EXPECT_EQ(cache.Lookup(fp), nullptr);
  cache.Insert(fp, {MakeAnswer("x", "v")}, {"http://ex/a"});
  const auto hit = cache.Lookup(fp);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ(hit->at(0).binding.at("x").lexical(), "v");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(FederatedQueryCacheTest, InvalidationIsExact) {
  FederatedQueryCache cache;
  const uint64_t fp_a = QueryFingerprint("about-a", 10);
  const uint64_t fp_b = QueryFingerprint("about-b", 10);
  const uint64_t fp_ab = QueryFingerprint("about-both", 10);
  cache.Insert(fp_a, {MakeAnswer("x", "a")}, {"http://ex/a"});
  cache.Insert(fp_b, {MakeAnswer("x", "b")}, {"http://ex/b"});
  cache.Insert(fp_ab, {MakeAnswer("x", "ab")},
               {"http://ex/a", "http://ex/b"});
  ASSERT_EQ(cache.size(), 3u);

  // A link touching IRI a (as left endpoint) drops exactly the entries that
  // consulted a; the b-only entry is replay-exact and must survive.
  cache.InvalidateLink(Link{"http://ex/a", "http://other/z", 1.0});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(fp_a), nullptr);
  EXPECT_NE(cache.Lookup(fp_b), nullptr);
  EXPECT_EQ(cache.Lookup(fp_ab), nullptr);
  EXPECT_EQ(cache.stats().invalidated, 2u);

  // The right endpoint invalidates too.
  cache.InvalidateLink(Link{"http://other/z", "http://ex/b", 1.0});
  EXPECT_EQ(cache.size(), 0u);

  // A link touching nothing consulted is a no-op.
  cache.Insert(fp_a, {MakeAnswer("x", "a")}, {"http://ex/a"});
  cache.InvalidateLink(Link{"http://unrelated/1", "http://unrelated/2", 1.0});
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FederatedQueryCacheTest, InsertReplacesAndReindexes) {
  FederatedQueryCache cache;
  const uint64_t fp = QueryFingerprint("q", 10);
  cache.Insert(fp, {MakeAnswer("x", "old")}, {"http://ex/old"});
  cache.Insert(fp, {MakeAnswer("x", "new")}, {"http://ex/new"});
  ASSERT_EQ(cache.size(), 1u);
  // The old consulted IRI must no longer invalidate the replaced entry.
  cache.InvalidateLink(Link{"http://ex/old", "http://other/z", 1.0});
  ASSERT_NE(cache.Lookup(fp), nullptr);
  EXPECT_EQ(cache.Lookup(fp)->at(0).binding.at("x").lexical(), "new");
  cache.InvalidateLink(Link{"http://ex/new", "http://other/z", 1.0});
  EXPECT_EQ(cache.Lookup(fp), nullptr);
}

TEST(FederatedQueryCacheTest, TakeStatsResetsCountersKeepsEntries) {
  FederatedQueryCache cache;
  const uint64_t fp = QueryFingerprint("q", 10);
  cache.Lookup(fp);
  cache.Insert(fp, {}, {"http://ex/a"});
  cache.Lookup(fp);
  FederatedQueryCache::Stats stats = cache.TakeStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.size(), 1u);  // entries survive the counter reset
}

TEST(FederatedQueryCacheTest, SnapshotHandleClonesMinusDelta) {
  FederatedQueryCache parent;
  const uint64_t fp_a = QueryFingerprint("about-a", 10);
  const uint64_t fp_b = QueryFingerprint("about-b", 10);
  parent.Insert(fp_a, {MakeAnswer("x", "a")}, {"http://ex/a"});
  parent.Insert(fp_b, {MakeAnswer("x", "b")}, {"http://ex/b"});

  const std::vector<Link> delta = {Link{"http://ex/a", "http://other/z", 1.0}};
  FederatedQueryCache child(parent, delta);
  // The parent keeps everything; the child carries forward exactly the
  // entries the staged delta leaves replay-exact.
  EXPECT_EQ(parent.size(), 2u);
  EXPECT_EQ(child.size(), 1u);
  EXPECT_EQ(child.Lookup(fp_a), nullptr);
  EXPECT_NE(child.Lookup(fp_b), nullptr);
  EXPECT_EQ(child.stats().invalidated, 1u);
}

TEST(FederatedQueryCacheTest, LookupResultSurvivesInvalidation) {
  FederatedQueryCache cache;
  const uint64_t fp = QueryFingerprint("q", 10);
  cache.Insert(fp, {MakeAnswer("x", "v")}, {"http://ex/a"});
  const auto hit = cache.Lookup(fp);
  ASSERT_NE(hit, nullptr);
  // A concurrent invalidation must not pull the answers out from under a
  // reader that already holds them.
  cache.InvalidateLink(Link{"http://ex/a", "http://other/z", 1.0});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(hit->at(0).binding.at("x").lexical(), "v");
}

// End-to-end: a cached ExecuteText returns the exact rows of the uncached
// run, is invalidated by exactly the relevant link change, and answers the
// changed query correctly afterwards.
class CachedEngineTest : public ::testing::Test {
 protected:
  CachedEngineTest() : dbpedia_("dbpedia"), nytimes_("nytimes") {
    dbpedia_.Add(Term::Iri("http://dbpedia.org/LeBron_James"),
                 Term::Iri("http://dbpedia.org/award"),
                 Term::StringLiteral("NBA MVP 2013"));
    dbpedia_.Add(Term::Iri("http://dbpedia.org/Kevin_Durant"),
                 Term::Iri("http://dbpedia.org/award"),
                 Term::StringLiteral("NBA MVP 2014"));
    nytimes_.Add(Term::Iri("http://nyt.com/article/1"),
                 Term::Iri("http://nyt.com/about"),
                 Term::Iri("http://nyt.com/person/lebron"));
    nytimes_.Add(Term::Iri("http://nyt.com/article/3"),
                 Term::Iri("http://nyt.com/about"),
                 Term::Iri("http://nyt.com/person/durant"));
    links_.Add(Link{"http://dbpedia.org/LeBron_James",
                    "http://nyt.com/person/lebron", 0.99});
  }

  TripleStore dbpedia_;
  TripleStore nytimes_;
  LinkSet links_;
};

TEST_F(CachedEngineTest, HitReturnsIdenticalRowsAndInvalidationIsExact) {
  FederatedEngine engine({&dbpedia_, &nytimes_}, &links_);
  FederatedQueryCache cache;
  engine.set_cache(&cache);

  const std::string lebron_q =
      "SELECT ?article WHERE { "
      "?player <http://dbpedia.org/award> \"NBA MVP 2013\" . "
      "?article <http://nyt.com/about> ?player }";
  const std::string durant_q =
      "SELECT ?article WHERE { "
      "?player <http://dbpedia.org/award> \"NBA MVP 2014\" . "
      "?article <http://nyt.com/about> ?player }";

  auto first = engine.ExecuteText(lebron_q);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->answers.size(), 1u);
  EXPECT_TRUE(first->complete);
  EXPECT_FALSE(first->from_cache);
  auto second = engine.ExecuteText(lebron_q);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_TRUE(SameAnswers(first->answers, second->answers));
  EXPECT_EQ(cache.stats().hits, 1u);

  auto durant_before = engine.ExecuteText(durant_q);
  ASSERT_TRUE(durant_before.ok());
  EXPECT_TRUE(durant_before->answers.empty());
  EXPECT_EQ(cache.size(), 2u);

  // Adding Durant's link must invalidate the Durant query (its evaluator
  // consulted Durant's neighborhood and found nothing) but NOT the LeBron
  // query, whose consulted neighborhoods are untouched.
  const Link durant_link{"http://dbpedia.org/Kevin_Durant",
                         "http://nyt.com/person/durant", 1.0};
  links_.Add(durant_link);
  cache.InvalidateLink(durant_link);
  EXPECT_NE(cache.Lookup(QueryFingerprint(lebron_q, FederatedOptions().max_rows)),
            nullptr);

  auto durant_after = engine.ExecuteText(durant_q);
  ASSERT_TRUE(durant_after.ok());
  ASSERT_EQ(durant_after->answers.size(), 1u);
  EXPECT_EQ(durant_after->answers[0].binding.at("article").lexical(),
            "http://nyt.com/article/3");
}

// Precondition for the ROADMAP plan-caching item: a CompiledQuery reused
// via ExecuteOptions::plan depends only on the (immutable) store — a link
// delta that invalidates the FederatedQueryCache entry must not change the
// rows a reused plan produces, so plans can be cached across link churn
// while only the federated result cache is invalidated.
TEST_F(CachedEngineTest, CompiledPlanReuseSurvivesLinkInvalidation) {
  FederatedEngine engine({&dbpedia_, &nytimes_}, &links_);
  FederatedQueryCache cache;
  engine.set_cache(&cache);

  // Warm the federated cache with a query that consults LeBron's links.
  const std::string lebron_q =
      "SELECT ?article WHERE { "
      "?player <http://dbpedia.org/award> \"NBA MVP 2013\" . "
      "?article <http://nyt.com/about> ?player }";
  auto fed_before = engine.ExecuteText(lebron_q);
  ASSERT_TRUE(fed_before.ok());
  const uint64_t fp = QueryFingerprint(lebron_q, FederatedOptions().max_rows);
  ASSERT_NE(cache.Lookup(fp), nullptr);

  // Compile a single-source query once and execute it through the reused
  // plan.
  const std::string text =
      "SELECT ?s ?o WHERE { ?s <http://dbpedia.org/award> ?o } ORDER BY ?s";
  Result<sparql::Query> parsed = sparql::ParseQuery(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  sparql::CompiledQuery plan = sparql::CompileQuery(*parsed, dbpedia_);
  sparql::ExecuteOptions exec_options;
  exec_options.plan = &plan;
  auto first = sparql::Execute(*parsed, dbpedia_, exec_options);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().size(), 2u);

  // A link delta touching LeBron invalidates exactly the cached federated
  // entry.
  const Link churned{"http://dbpedia.org/LeBron_James",
                     "http://nyt.com/person/lebron2", 0.5};
  links_.Add(churned);
  cache.InvalidateLink(churned);
  EXPECT_EQ(cache.Lookup(fp), nullptr);

  // The same plan object, executed again after the delta, returns identical
  // rows — including order.
  auto second = sparql::Execute(*parsed, dbpedia_, exec_options);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().size(), first.value().size());
  for (size_t i = 0; i < first.value().size(); ++i) {
    EXPECT_TRUE(first.value()[i] == second.value()[i]) << "row " << i;
  }

  // And the federated query re-executes (cache miss) to the same answers.
  auto fed_after = engine.ExecuteText(lebron_q);
  ASSERT_TRUE(fed_after.ok());
  EXPECT_TRUE(SameAnswers(fed_before->answers, fed_after->answers));
}

TEST_F(CachedEngineTest, ParallelExecutionMatchesSequential) {
  FederatedEngine engine({&dbpedia_, &nytimes_}, &links_);
  ThreadPool pool(4);
  // Warm the lazily built indexes before sharing the stores across workers.
  (void)dbpedia_.size();
  (void)nytimes_.size();

  const std::vector<std::string> queries = {
      "SELECT ?article WHERE { "
      "?player <http://dbpedia.org/award> \"NBA MVP 2013\" . "
      "?article <http://nyt.com/about> ?player }",
      "SELECT ?award WHERE { "
      "?article <http://nyt.com/about> ?person . "
      "?person <http://dbpedia.org/award> ?award }",
      "SELECT ?s ?o WHERE { ?s <http://dbpedia.org/award> ?o }",
      "ASK WHERE { ?player <http://dbpedia.org/award> \"NBA MVP 2013\" . "
      "?article <http://nyt.com/about> ?player }",
  };
  for (const std::string& text : queries) {
    FederatedOptions sequential;
    FederatedOptions parallel;
    parallel.pool = &pool;
    auto seq = engine.ExecuteText(text, sequential);
    auto par = engine.ExecuteText(text, parallel);
    ASSERT_TRUE(seq.ok()) << text;
    ASSERT_TRUE(par.ok()) << text;
    // Bitwise-identical including row ORDER: branches merge in ascending
    // source order, which is the sequential enumeration order.
    EXPECT_TRUE(SameAnswers(seq->answers, par->answers)) << text;
  }
}

TEST_F(CachedEngineTest, ParallelRespectsMaxRows) {
  ThreadPool pool(4);
  (void)dbpedia_.size();
  (void)nytimes_.size();
  FederatedEngine engine({&dbpedia_, &nytimes_}, &links_);
  const std::string text = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }";
  for (size_t cap : {1u, 2u, 3u, 100u}) {
    FederatedOptions sequential;
    sequential.max_rows = cap;
    FederatedOptions parallel = sequential;
    parallel.pool = &pool;
    auto seq = engine.ExecuteText(text, sequential);
    auto par = engine.ExecuteText(text, parallel);
    ASSERT_TRUE(seq.ok());
    ASSERT_TRUE(par.ok());
    EXPECT_TRUE(SameAnswers(seq->answers, par->answers)) << "cap=" << cap;
  }
}

// A result truncated by max_rows is incomplete and must never enter the
// cache: a later execution with the same fingerprint would otherwise be
// served the capped rows as if they were the full answer set.
TEST_F(CachedEngineTest, RowCappedResultIsIncompleteAndBypassesCache) {
  FederatedEngine engine({&dbpedia_, &nytimes_}, &links_);
  FederatedQueryCache cache;
  engine.set_cache(&cache);
  const std::string text = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }";
  FederatedOptions capped;
  capped.max_rows = 2;  // the full scan has more rows than this

  auto first = engine.ExecuteText(text, capped);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->answers.size(), 2u);
  EXPECT_TRUE(first->row_capped);
  EXPECT_FALSE(first->complete);
  EXPECT_EQ(cache.size(), 0u);  // never admitted

  // Re-execution misses the cache and recomputes identically.
  auto again = engine.ExecuteText(text, capped);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->from_cache);
  EXPECT_TRUE(SameAnswers(first->answers, again->answers));
  EXPECT_EQ(cache.stats().hits, 0u);

  // An uncapped run of the same query IS complete and gets cached (the
  // fingerprint includes max_rows, so the capped variant never aliases it).
  auto full = engine.ExecuteText(text);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->complete);
  EXPECT_FALSE(full->row_capped);
  EXPECT_GT(full->answers.size(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

// The query-driven experiment series must be bitwise-identical with the
// cache on or off — the cache only removes redundant re-execution — and the
// cached run must actually hit once episodes repeat queries.
TEST(QueryDrivenCacheTest, SeriesIdenticalWithAndWithoutCache) {
  datagen::GeneratedWorld world =
      datagen::Generate(datagen::TinyTestProfile());
  feedback::GroundTruth truth(world.ground_truth);
  std::vector<Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right), 0.95);

  auto run = [&](bool use_cache, ThreadPool* pool) {
    core::AlexOptions alex_options;
    alex_options.num_partitions = 2;
    alex_options.num_threads = 1;
    core::AlexEngine engine(&world.left, &world.right, alex_options);
    EXPECT_TRUE(engine.Initialize(initial).ok());
    eval::QueryDrivenOptions options;
    options.workload.num_queries = 80;
    options.episode_size = 60;
    options.max_episodes = 6;
    options.use_query_cache = use_cache;
    options.pool = pool;
    return eval::RunQueryDrivenExperiment(&engine, world, truth, options);
  };

  eval::ExperimentResult cached = run(true, nullptr);
  eval::ExperimentResult uncached = run(false, nullptr);
  ThreadPool pool(4);
  eval::ExperimentResult parallel = run(true, &pool);

  auto check_same_series = [](const eval::ExperimentResult& a,
                              const eval::ExperimentResult& b) {
    ASSERT_EQ(a.series.size(), b.series.size());
    for (size_t i = 0; i < a.series.size(); ++i) {
      const core::EpisodeStats& sa = a.series[i].stats;
      const core::EpisodeStats& sb = b.series[i].stats;
      EXPECT_EQ(sa.feedback_items, sb.feedback_items) << "episode " << i;
      EXPECT_EQ(sa.positive_feedback, sb.positive_feedback) << "episode " << i;
      EXPECT_EQ(sa.negative_feedback, sb.negative_feedback) << "episode " << i;
      EXPECT_EQ(sa.candidate_count, sb.candidate_count) << "episode " << i;
      EXPECT_EQ(a.series[i].quality.precision, b.series[i].quality.precision)
          << "episode " << i;
      EXPECT_EQ(a.series[i].quality.recall, b.series[i].quality.recall)
          << "episode " << i;
    }
  };
  check_same_series(cached, uncached);
  check_same_series(cached, parallel);

  size_t total_hits = 0;
  size_t uncached_hits = 0;
  for (size_t i = 1; i < cached.series.size(); ++i) {
    total_hits += cached.series[i].stats.query_cache_hits;
    uncached_hits += uncached.series[i].stats.query_cache_hits;
  }
  if (cached.series.size() > 2) {
    EXPECT_GT(total_hits, 0u);  // repeated episodes must reuse results
  }
  EXPECT_EQ(uncached_hits, 0u);
}

// Same property for the sparql::PlanCache: parsed queries reused across
// episodes must not change a single number in the series, at any thread
// count, and the cached run must actually hit once query texts repeat.
TEST(QueryDrivenCacheTest, PlanCacheSeriesIdenticalOnOrOff) {
  datagen::GeneratedWorld world =
      datagen::Generate(datagen::TinyTestProfile());
  feedback::GroundTruth truth(world.ground_truth);
  std::vector<Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right), 0.95);

  auto run = [&](bool use_plan_cache, ThreadPool* pool) {
    core::AlexOptions alex_options;
    alex_options.num_partitions = 2;
    alex_options.num_threads = 1;
    core::AlexEngine engine(&world.left, &world.right, alex_options);
    EXPECT_TRUE(engine.Initialize(initial).ok());
    eval::QueryDrivenOptions options;
    options.workload.num_queries = 80;
    options.episode_size = 60;
    options.max_episodes = 6;
    options.use_plan_cache = use_plan_cache;
    options.pool = pool;
    return eval::RunQueryDrivenExperiment(&engine, world, truth, options);
  };

  eval::ExperimentResult with_cache = run(true, nullptr);
  eval::ExperimentResult without_cache = run(false, nullptr);
  ThreadPool pool(4);
  eval::ExperimentResult parallel = run(true, &pool);

  auto check_same_series = [](const eval::ExperimentResult& a,
                              const eval::ExperimentResult& b) {
    ASSERT_EQ(a.series.size(), b.series.size());
    for (size_t i = 0; i < a.series.size(); ++i) {
      const core::EpisodeStats& sa = a.series[i].stats;
      const core::EpisodeStats& sb = b.series[i].stats;
      EXPECT_EQ(sa.feedback_items, sb.feedback_items) << "episode " << i;
      EXPECT_EQ(sa.positive_feedback, sb.positive_feedback) << "episode " << i;
      EXPECT_EQ(sa.negative_feedback, sb.negative_feedback) << "episode " << i;
      EXPECT_EQ(sa.candidate_count, sb.candidate_count) << "episode " << i;
      EXPECT_EQ(a.series[i].quality.precision, b.series[i].quality.precision)
          << "episode " << i;
      EXPECT_EQ(a.series[i].quality.recall, b.series[i].quality.recall)
          << "episode " << i;
    }
  };
  check_same_series(with_cache, without_cache);
  check_same_series(with_cache, parallel);

  size_t cached_hits = 0;
  size_t uncached_hits = 0;
  for (size_t i = 1; i < with_cache.series.size(); ++i) {
    cached_hits += with_cache.series[i].stats.plan_cache_hits;
    uncached_hits += without_cache.series[i].stats.plan_cache_hits;
  }
  if (with_cache.series.size() > 2) {
    EXPECT_GT(cached_hits, 0u);  // repeated texts must reuse parses
  }
  EXPECT_EQ(uncached_hits, 0u);
}

}  // namespace
}  // namespace alex::fed
