#include "federation/link_set.h"

#include <gtest/gtest.h>

namespace alex::fed {
namespace {

using linking::Link;

TEST(LinkSetTest, AddAndContains) {
  LinkSet links;
  EXPECT_TRUE(links.Add(Link{"a", "x", 0.9}));
  EXPECT_TRUE(links.Contains("a", "x"));
  EXPECT_FALSE(links.Contains("x", "a"));  // directional
  EXPECT_EQ(links.size(), 1u);
}

TEST(LinkSetTest, DuplicateAddReturnsFalse) {
  LinkSet links;
  links.Add(Link{"a", "x", 0.9});
  EXPECT_FALSE(links.Add(Link{"a", "x", 0.5}));
  EXPECT_EQ(links.size(), 1u);
}

TEST(LinkSetTest, DuplicateAddKeepsHigherScore) {
  LinkSet links;
  links.Add(Link{"a", "x", 0.5});
  links.Add(Link{"a", "x", 0.9});
  auto all = links.All();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_DOUBLE_EQ(all[0].score, 0.9);
  links.Add(Link{"a", "x", 0.2});
  all = links.All();
  EXPECT_DOUBLE_EQ(all[0].score, 0.9);
}

TEST(LinkSetTest, Remove) {
  LinkSet links;
  links.Add(Link{"a", "x", 1.0});
  links.Add(Link{"a", "y", 1.0});
  EXPECT_TRUE(links.Remove("a", "x"));
  EXPECT_FALSE(links.Remove("a", "x"));
  EXPECT_FALSE(links.Contains("a", "x"));
  EXPECT_TRUE(links.Contains("a", "y"));
  EXPECT_EQ(links.size(), 1u);
}

TEST(LinkSetTest, RightsOfAndLeftsOf) {
  LinkSet links;
  links.Add(Link{"a", "x", 1.0});
  links.Add(Link{"a", "y", 1.0});
  links.Add(Link{"b", "x", 1.0});
  EXPECT_EQ(links.RightsOf("a"), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(links.LeftsOf("x"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(links.RightsOf("zzz").empty());
  EXPECT_TRUE(links.LeftsOf("zzz").empty());
}

TEST(LinkSetTest, RemoveCleansIndexes) {
  LinkSet links;
  links.Add(Link{"a", "x", 1.0});
  links.Remove("a", "x");
  EXPECT_TRUE(links.RightsOf("a").empty());
  EXPECT_TRUE(links.LeftsOf("x").empty());
  EXPECT_TRUE(links.empty());
}

TEST(LinkSetTest, AllSnapshot) {
  LinkSet links;
  for (int i = 0; i < 5; ++i) {
    links.Add(Link{"l" + std::to_string(i), "r" + std::to_string(i), 1.0});
  }
  EXPECT_EQ(links.All().size(), 5u);
}

}  // namespace
}  // namespace alex::fed
