// Differential oracle for incremental feature-space maintenance: random
// add/remove churn applied through ApplyDelta must leave the space
// logically identical — Fingerprint(), PairsInRange answers, and
// PairsInRangeSpan contents — to applying the same liveness flags and
// rebuilding the score index from scratch, across compaction thresholds.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/feature_space.h"

namespace alex::core {
namespace {

using rdf::Term;
using rdf::TripleStore;

// A store pair rich enough for non-trivial churn: left/right names drawn
// from overlapping pools so many cross pairs clear θ with varied scores.
class IncrementalSpaceTest : public ::testing::Test {
 protected:
  IncrementalSpaceTest() : left_("l"), right_("r") {
    const char* first[] = {"Ada",  "Alan",  "Grace", "Edsger",
                           "John", "Barbara", "Donald", "Edith"};
    const char* last[] = {"Lovelace", "Turing", "Hopper", "Dijkstra"};
    int n = 0;
    for (const char* f : first) {
      for (const char* l : last) {
        std::string name = std::string(f) + " " + l;
        std::string left_iri = "http://l/e" + std::to_string(n);
        left_.Add(Term::Iri(left_iri), Term::Iri("http://l/name"),
                  Term::StringLiteral(name));
        left_.Add(Term::Iri(left_iri), Term::Iri("http://l/age"),
                  Term::StringLiteral(std::to_string(20 + n)));
        if (n % 2 == 0) {
          std::string right_iri = "http://r/x" + std::to_string(n);
          right_.Add(Term::Iri(right_iri), Term::Iri("http://r/label"),
                     Term::StringLiteral(name));
          right_.Add(Term::Iri(right_iri), Term::Iri("http://r/years"),
                     Term::StringLiteral(std::to_string(20 + n)));
        }
        ++n;
      }
    }
  }

  FeatureSpace Build(size_t compaction_threshold) {
    FeatureSpaceOptions options;
    options.theta = 0.2;
    options.compaction_threshold = compaction_threshold;
    return FeatureSpace::Build(left_, left_.Subjects(), right_,
                               right_.Subjects(), &catalog_, options);
  }

  // Asserts `actual` (maintained incrementally) is logically identical to
  // `expected` (same liveness, freshly rebuilt indexes).
  void ExpectLogicallyEqual(const FeatureSpace& actual,
                            const FeatureSpace& expected,
                            const std::string& context) {
    ASSERT_EQ(actual.live_pair_count(), expected.live_pair_count())
        << context;
    EXPECT_EQ(actual.Fingerprint(), expected.Fingerprint()) << context;
    for (FeatureId feature = 0; feature < catalog_.size(); ++feature) {
      for (double lo : {-1.0, 0.0, 0.25, 0.5, 0.8, 1.0}) {
        for (double width : {0.1, 0.4, 2.0}) {
          const double hi = lo + width;
          std::vector<PairId> got = actual.PairsInRange(feature, lo, hi);
          std::vector<PairId> want = expected.PairsInRange(feature, lo, hi);
          ASSERT_EQ(got, want) << context << " feature " << feature
                               << " band [" << lo << "," << hi << "]";
          // Span contents: same entries, in (score, pair) order.
          FeatureSpace::ScoreSpan got_span =
              actual.PairsInRangeSpan(feature, lo, hi);
          FeatureSpace::ScoreSpan want_span =
              expected.PairsInRangeSpan(feature, lo, hi);
          auto git = got_span.begin();
          auto wit = want_span.begin();
          while (wit != want_span.end()) {
            ASSERT_NE(git, got_span.end()) << context;
            EXPECT_EQ((*git).pair, (*wit).pair) << context;
            EXPECT_DOUBLE_EQ((*git).score, (*wit).score) << context;
            ++git;
            ++wit;
          }
          EXPECT_EQ(git, got_span.end()) << context;
        }
      }
    }
  }

  TripleStore left_;
  TripleStore right_;
  FeatureCatalog catalog_;
};

// The core randomized differential: K random deltas against a from-scratch
// rebuild, across compaction thresholds {0, 1, default}.
TEST_F(IncrementalSpaceTest, RandomChurnMatchesRebuild) {
  for (size_t threshold : {size_t{0}, size_t{1}, size_t{32}}) {
    FeatureSpace incremental = Build(threshold);
    FeatureSpace rebuilt = Build(threshold);
    ASSERT_GE(incremental.pairs().size(), 30u)
        << "fixture too small for meaningful churn";
    ASSERT_EQ(incremental.Fingerprint(), rebuilt.Fingerprint());

    Rng rng(0xc0ffee + threshold);
    std::vector<uint8_t> live(incremental.pairs().size(), 1);
    for (int round = 0; round < 40; ++round) {
      // Draw distinct pair ids, then toggle each one's membership.
      std::vector<PairId> touched;
      const size_t moves = 1 + rng.NextBounded(8);
      for (size_t m = 0; m < moves; ++m) {
        PairId id = static_cast<PairId>(rng.NextBounded(live.size()));
        if (std::find(touched.begin(), touched.end(), id) == touched.end()) {
          touched.push_back(id);
        }
      }
      std::vector<PairId> added;
      std::vector<PairId> removed;
      for (PairId id : touched) {
        (live[id] ? removed : added).push_back(id);
        live[id] ^= 1;
      }
      std::sort(added.begin(), added.end());
      std::sort(removed.begin(), removed.end());

      incremental.ApplyDelta(added, removed);
      rebuilt.SetLiveness(added, removed);
      rebuilt.RebuildIndexes();
      ExpectLogicallyEqual(
          incremental, rebuilt,
          "threshold " + std::to_string(threshold) + " round " +
              std::to_string(round));
    }
    // Thresholds actually change physical behavior: eager compaction fires
    // under threshold 0 for this workload.
    if (threshold == 0) EXPECT_GT(incremental.compaction_count(), 0u);
  }
}

TEST_F(IncrementalSpaceTest, ApplyDeltaIsIdempotent) {
  FeatureSpace space = Build(0);
  FeatureSpace oracle = Build(0);
  ASSERT_GE(space.pairs().size(), 4u);
  std::vector<PairId> ids = {0, 1, 2, 3};

  space.ApplyDelta({}, ids);
  space.ApplyDelta({}, ids);  // removing dead pairs is a no-op
  oracle.SetLiveness({}, ids);
  oracle.RebuildIndexes();
  ExpectLogicallyEqual(space, oracle, "double remove");

  space.ApplyDelta(ids, {});
  space.ApplyDelta(ids, {});  // adding live pairs is a no-op
  oracle.SetLiveness(ids, {});
  oracle.RebuildIndexes();
  ExpectLogicallyEqual(space, oracle, "double add");
}

TEST_F(IncrementalSpaceTest, EmptyDeltaIsNoOp) {
  FeatureSpace space = Build(32);
  const uint64_t before = space.Fingerprint();
  space.ApplyDelta({}, {});
  EXPECT_EQ(space.Fingerprint(), before);
  EXPECT_EQ(space.compaction_count(), 0u);
}

TEST_F(IncrementalSpaceTest, RemoveAllThenResurrectAllRestoresFingerprint) {
  for (size_t threshold : {size_t{0}, size_t{1}, size_t{32}}) {
    FeatureSpace space = Build(threshold);
    FeatureSpace pristine = Build(threshold);
    const uint64_t initial = space.Fingerprint();
    std::vector<PairId> all(space.pairs().size());
    for (PairId id = 0; id < all.size(); ++id) all[id] = id;

    space.ApplyDelta({}, all);
    EXPECT_EQ(space.live_pair_count(), 0u);
    for (FeatureId feature = 0; feature < catalog_.size(); ++feature) {
      EXPECT_TRUE(space.PairsInRange(feature, -1.0, 2.0).empty());
    }
    EXPECT_NE(space.Fingerprint(), initial);

    space.ApplyDelta(all, {});
    EXPECT_EQ(space.live_pair_count(), space.pairs().size());
    EXPECT_EQ(space.Fingerprint(), initial);
    ExpectLogicallyEqual(space, pristine,
                         "full cycle threshold " + std::to_string(threshold));
  }
}

TEST_F(IncrementalSpaceTest, RemovedPairStaysResolvableButNotLive) {
  FeatureSpace space = Build(32);
  ASSERT_FALSE(space.pairs().empty());
  const PairId id = 0;
  const std::string left = space.LeftIri(id);
  const std::string right = space.RightIri(id);
  space.ApplyDelta({}, {id});
  // FindPair and the pair accessors are membership-agnostic: the engine
  // still resolves feedback on links that are current candidates (and thus
  // outside the explorable frontier).
  EXPECT_EQ(space.FindPair(left, right), id);
  EXPECT_FALSE(space.IsLive(id));
  EXPECT_EQ(space.LeftIri(id), left);
  for (const auto& [feature, score] : space.pair(id).features.features) {
    for (PairId in_band : space.PairsInRange(feature, score, score)) {
      EXPECT_NE(in_band, id);
    }
  }
}

TEST_F(IncrementalSpaceTest, MarkAllLiveResetsChurn) {
  FeatureSpace space = Build(0);
  FeatureSpace pristine = Build(0);
  Rng rng(99);
  std::vector<PairId> removed;
  for (PairId id = 0; id < space.pairs().size(); ++id) {
    if (rng.NextBool(0.5)) removed.push_back(id);
  }
  space.ApplyDelta({}, removed);
  space.MarkAllLive();
  EXPECT_EQ(space.tombstone_count(), 0u);
  EXPECT_EQ(space.pending_entry_count(), 0u);
  ExpectLogicallyEqual(space, pristine, "after MarkAllLive");
}

TEST_F(IncrementalSpaceTest, RemapFeaturesPreservesLiveness) {
  FeatureSpace space = Build(0);
  ASSERT_GE(space.pairs().size(), 2u);
  space.ApplyDelta({}, {0});
  // Identity permutation: the remap machinery must keep pair 0 dead.
  std::vector<FeatureId> identity(catalog_.size());
  for (FeatureId f = 0; f < identity.size(); ++f) identity[f] = f;
  const uint64_t before = space.Fingerprint();
  space.RemapFeatures(identity);
  EXPECT_FALSE(space.IsLive(0));
  EXPECT_EQ(space.Fingerprint(), before);
}

}  // namespace
}  // namespace alex::core
