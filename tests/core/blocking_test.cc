#include "core/blocking.h"

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/feature_space.h"
#include "datagen/profiles.h"
#include "datagen/world.h"

namespace alex::core {
namespace {

PreparedValue Prepare(const char* text) {
  return PrepareValue(rdf::Term::StringLiteral(text));
}

std::vector<std::string> KeysOf(const PreparedValue& value,
                                bool probe_neighbors) {
  std::vector<std::string> keys;
  AppendBlockKeys(value, BlockingOptions{}, sim::SimilarityOptions{},
                  probe_neighbors, &keys);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

bool ShareKey(const PreparedValue& probe, const PreparedValue& indexed) {
  std::vector<std::string> a = KeysOf(probe, /*probe_neighbors=*/true);
  std::vector<std::string> b = KeysOf(indexed, /*probe_neighbors=*/false);
  std::vector<std::string> shared;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(shared));
  return !shared.empty();
}

TEST(BlockKeysTest, IdenticalValuesShareKeys) {
  EXPECT_TRUE(ShareKey(Prepare("Ada Lovelace"), Prepare("Ada Lovelace")));
  EXPECT_TRUE(ShareKey(Prepare(""), Prepare("")));
  EXPECT_TRUE(ShareKey(Prepare("42"), Prepare("42")));
}

TEST(BlockKeysTest, SharedTokenSharesKeys) {
  // Any token-Jaccard score > 0 must collide via the token channel.
  EXPECT_TRUE(ShareKey(Prepare("Ada Lovelace"), Prepare("Ada Byron")));
  EXPECT_TRUE(ShareKey(Prepare("alpha beta gamma"), Prepare("gamma delta")));
}

TEST(BlockKeysTest, SingleEditTyposShareKeys) {
  // "smith" / "smyth" share no trigram; the single-deletion channel
  // (both emit the variant "smth") must cover them.
  EXPECT_TRUE(ShareKey(Prepare("smith"), Prepare("smyth")));
  // Deletion typo.
  EXPECT_TRUE(ShareKey(Prepare("smith"), Prepare("smih")));
  // Insertion typo.
  EXPECT_TRUE(ShareKey(Prepare("smith"), Prepare("smiith")));
  // Longer words with one typo still share trigrams.
  EXPECT_TRUE(ShareKey(Prepare("lovelace"), Prepare("lovelqce")));
}

TEST(BlockKeysTest, NearbyNumbersShareKeysUnderTolerance) {
  auto num = [](int64_t value) {
    return PrepareValue(rdf::Term::IntegerLiteral(value));
  };
  // Default numeric_tolerance scores these > 0, so they must collide.
  EXPECT_TRUE(ShareKey(num(1000), num(1001)));
  EXPECT_TRUE(ShareKey(num(999), num(1001)));
  EXPECT_TRUE(ShareKey(num(5), num(5)));
  EXPECT_TRUE(ShareKey(num(0), num(1)));
  EXPECT_TRUE(ShareKey(num(-1000), num(-1001)));
  // Values straddling the ±1 magnitude boundary.
  EXPECT_TRUE(ShareKey(num(-1), num(1)));
}

TEST(BlockKeysTest, NearbyDatesShareKeys) {
  auto date = [](const char* text) {
    return PrepareValue(rdf::Term::DateLiteral(text));
  };
  EXPECT_TRUE(ShareKey(date("1969-07-20"), date("1969-07-21")));
  EXPECT_TRUE(ShareKey(date("1969-12-31"), date("1970-01-01")));
}

TEST(BlockingIndexTest, CandidatesAreSortedUniqueAndComplete) {
  std::vector<PreparedEntity> rights(3);
  auto add_attr = [](PreparedEntity* e, const char* pred, const char* text) {
    PreparedAttribute attr;
    attr.predicate = pred;
    attr.value = Prepare(text);
    e->attributes.push_back(std::move(attr));
  };
  add_attr(&rights[0], "p", "Ada Lovelace");
  add_attr(&rights[1], "p", "Zyx Wvu");
  add_attr(&rights[2], "p", "Ada Byron");

  BlockingIndex index =
      BlockingIndex::Build(rights, BlockingOptions{}, sim::SimilarityOptions{});
  EXPECT_FALSE(index.empty());
  EXPECT_GT(index.block_count(), 0u);
  EXPECT_GT(index.posting_count(), 0u);

  PreparedEntity probe;
  add_attr(&probe, "q", "Ada");
  std::vector<uint32_t> candidates;
  index.Candidates(probe, &candidates);
  // "Ada" occurs in entities 0 and 2; both must be candidates, 1 must not
  // (no shared token, trigram, deletion variant, or value).
  EXPECT_EQ(candidates, (std::vector<uint32_t>{0, 2}));
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
}

// ---------------------------------------------------------------------------
// Blocked == exhaustive on generated worlds.

// Everything observable about a space, keyed by IRIs and FeatureKeys so the
// comparison is independent of PairId / FeatureId assignment order.
using PairScores =
    std::map<std::pair<std::string, std::string>,
             std::map<std::pair<std::string, std::string>, double>>;

PairScores Flatten(const FeatureSpace& space) {
  PairScores out;
  for (PairId id = 0; id < space.pairs().size(); ++id) {
    auto& scores = out[{space.LeftIri(id), space.RightIri(id)}];
    for (const auto& [feature, score] : space.pair(id).features.features) {
      FeatureKey key = space.catalog()->Key(feature);
      scores[{key.left_predicate, key.right_predicate}] = score;
    }
  }
  return out;
}

void ExpectSameSpace(const FeatureSpace& blocked,
                     const FeatureSpace& exhaustive) {
  EXPECT_EQ(blocked.pairs().size(), exhaustive.pairs().size());
  PairScores a = Flatten(blocked);
  PairScores b = Flatten(exhaustive);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [iris, scores] : a) {
    auto it = b.find(iris);
    ASSERT_NE(it, b.end()) << "missing pair " << iris.first << " / "
                           << iris.second;
    ASSERT_EQ(scores.size(), it->second.size())
        << "feature count differs for " << iris.first;
    for (const auto& [key, score] : scores) {
      auto jt = it->second.find(key);
      ASSERT_NE(jt, it->second.end())
          << "missing feature (" << key.first << ", " << key.second << ")";
      EXPECT_DOUBLE_EQ(score, jt->second)
          << "score differs for (" << key.first << ", " << key.second << ")";
    }
  }
}

void CheckBlockedEqualsExhaustive(const datagen::WorldProfile& profile) {
  datagen::GeneratedWorld world = datagen::Generate(profile);
  std::vector<rdf::TermId> left_subjects = world.left.Subjects();
  std::vector<rdf::TermId> right_subjects = world.right.Subjects();

  FeatureSpaceOptions blocked_options;
  FeatureCatalog blocked_catalog;
  FeatureSpace blocked =
      FeatureSpace::Build(world.left, left_subjects, world.right,
                          right_subjects, &blocked_catalog, blocked_options);

  FeatureSpaceOptions exhaustive_options;
  exhaustive_options.blocking.enabled = false;
  FeatureCatalog exhaustive_catalog;
  FeatureSpace exhaustive = FeatureSpace::Build(
      world.left, left_subjects, world.right, right_subjects,
      &exhaustive_catalog, exhaustive_options);

  EXPECT_EQ(exhaustive.scored_pair_count(), exhaustive.total_pair_count());
  EXPECT_LT(blocked.scored_pair_count(), blocked.total_pair_count());
  EXPECT_EQ(blocked.pruned_pair_count(),
            blocked.total_pair_count() - blocked.scored_pair_count());
  ExpectSameSpace(blocked, exhaustive);
}

TEST(BlockedBuildTest, MatchesExhaustiveOnTinyWorld) {
  CheckBlockedEqualsExhaustive(datagen::TinyTestProfile());
}

TEST(BlockedBuildTest, MatchesExhaustiveOnNoisyMediaWorld) {
  // The dbpedia_nytimes regime (heavy right-side noise), scaled down so the
  // exhaustive reference stays test-sized.
  datagen::WorldProfile profile = datagen::DbpediaNytimesProfile();
  profile.overlap_entities = 150;
  profile.left_only_entities = 100;
  profile.right_only_entities = 60;
  CheckBlockedEqualsExhaustive(profile);
}

TEST(BlockedBuildTest, MatchesExhaustiveOnConfusableWorld) {
  datagen::WorldProfile profile = datagen::TinyTestProfile();
  profile.confusable_pairs = 20;
  profile.seed = 99;
  CheckBlockedEqualsExhaustive(profile);
}

TEST(ParallelBuildTest, OutputIdenticalAcrossThreadCounts) {
  datagen::GeneratedWorld world = datagen::Generate(datagen::TinyTestProfile());
  std::vector<rdf::TermId> left_subjects = world.left.Subjects();
  FeatureSpaceOptions options;
  auto right_context = RightContext::Prepare(
      world.right, world.right.Subjects(), options);

  FeatureCatalog serial_catalog;
  FeatureSpace serial = FeatureSpace::Build(
      world.left, left_subjects, right_context, &serial_catalog, options);
  PairScores expected = Flatten(serial);

  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    FeatureCatalog catalog;
    FeatureSpace space = FeatureSpace::Build(
        world.left, left_subjects, right_context, &catalog, options, &pool);
    // Pair order (and thus PairIds) must not depend on the thread count.
    ASSERT_EQ(space.pairs().size(), serial.pairs().size());
    for (PairId id = 0; id < space.pairs().size(); ++id) {
      EXPECT_EQ(space.LeftIri(id), serial.LeftIri(id)) << "pair " << id;
      EXPECT_EQ(space.RightIri(id), serial.RightIri(id)) << "pair " << id;
    }
    PairScores actual = Flatten(space);
    EXPECT_EQ(actual, expected) << threads << " threads";
  }
}

TEST(ParallelBlockingBuildTest, FingerprintIdenticalAcrossThreadCounts) {
  // The blocking index bytes (hash table slots + postings) must be a pure
  // function of the entities, never of the worker count: a noisy world with
  // plenty of shared tokens exercises the chunked extract/merge path.
  datagen::WorldProfile profile = datagen::DbpediaNytimesProfile();
  profile.overlap_entities = 120;
  profile.left_only_entities = 40;
  profile.right_only_entities = 60;
  datagen::GeneratedWorld world = datagen::Generate(profile);
  std::vector<PreparedEntity> rights;
  for (rdf::TermId subject : world.right.Subjects()) {
    rights.push_back(PrepareEntity(world.right, subject));
  }

  BlockingIndex serial = BlockingIndex::Build(rights, BlockingOptions{},
                                              sim::SimilarityOptions{});
  const uint64_t expected = serial.Fingerprint();
  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    BlockingIndex parallel = BlockingIndex::Build(
        rights, BlockingOptions{}, sim::SimilarityOptions{}, &pool);
    EXPECT_EQ(parallel.block_count(), serial.block_count())
        << threads << " threads";
    EXPECT_EQ(parallel.posting_count(), serial.posting_count())
        << threads << " threads";
    EXPECT_EQ(parallel.Fingerprint(), expected) << threads << " threads";
    // Identical bytes imply identical probes; spot-check a few entities.
    std::vector<uint32_t> from_serial, from_parallel;
    for (size_t i = 0; i < rights.size(); i += 17) {
      serial.Candidates(rights[i], &from_serial);
      parallel.Candidates(rights[i], &from_parallel);
      EXPECT_EQ(from_parallel, from_serial) << "probe " << i;
    }
  }
}

TEST(ParallelBlockingBuildTest, FingerprintDetectsContentChange) {
  std::vector<PreparedEntity> rights(2);
  auto add_attr = [](PreparedEntity* e, const char* pred, const char* text) {
    PreparedAttribute attr;
    attr.predicate = pred;
    attr.value = Prepare(text);
    e->attributes.push_back(std::move(attr));
  };
  add_attr(&rights[0], "p", "Ada Lovelace");
  add_attr(&rights[1], "p", "Alan Turing");
  BlockingIndex a = BlockingIndex::Build(rights, BlockingOptions{},
                                         sim::SimilarityOptions{});
  add_attr(&rights[1], "p", "Enigma");
  BlockingIndex b = BlockingIndex::Build(rights, BlockingOptions{},
                                         sim::SimilarityOptions{});
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(CatalogMemoTest, MemoizedInterningMatchesCatalog) {
  FeatureCatalog catalog;
  CatalogMemo memo(&catalog);
  FeatureId a = memo.Intern({"p1", "q1"});
  FeatureId b = memo.Intern({"p2", "q2"});
  EXPECT_NE(a, b);
  // Cache hits return the same id without growing the catalog.
  EXPECT_EQ(memo.Intern({"p1", "q1"}), a);
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(memo.cache_size(), 2u);
  // Direct catalog interning agrees with the memo.
  EXPECT_EQ(catalog.Intern({"p1", "q1"}), a);
}

TEST(CatalogMemoTest, ConcurrentMemosAgreeOnIds) {
  FeatureCatalog catalog;
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  std::vector<std::vector<FeatureId>> ids(kThreads,
                                          std::vector<FeatureId>(kKeys));
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&catalog, &ids, t] {
      CatalogMemo memo(&catalog);
      for (int round = 0; round < 3; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          // Interleave orders per thread so first-seen races are exercised.
          int key = (t % 2 == 0) ? k : kKeys - 1 - k;
          ids[t][key] =
              memo.Intern({"left" + std::to_string(key), "right"});
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(catalog.size(), static_cast<size_t>(kKeys));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]) << "thread " << t;
  }
  // Every id maps back to its key.
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(catalog.Key(ids[0][k]).left_predicate,
              "left" + std::to_string(k));
  }
}

}  // namespace
}  // namespace alex::core
