#include "core/partitioner.h"

#include <gtest/gtest.h>

#include <set>

namespace alex::core {
namespace {

std::vector<rdf::TermId> Ids(int n) {
  std::vector<rdf::TermId> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = static_cast<rdf::TermId>(i);
  return ids;
}

TEST(PartitionerTest, RoundRobinAssignment) {
  auto partitions = EqualSizePartition(Ids(10), 3);
  ASSERT_EQ(partitions.size(), 3u);
  // The i-th entity is in partition i mod n (§6.2).
  EXPECT_EQ(partitions[0], (std::vector<rdf::TermId>{0, 3, 6, 9}));
  EXPECT_EQ(partitions[1], (std::vector<rdf::TermId>{1, 4, 7}));
  EXPECT_EQ(partitions[2], (std::vector<rdf::TermId>{2, 5, 8}));
}

TEST(PartitionerTest, SizesDifferByAtMostOne) {
  auto partitions = EqualSizePartition(Ids(100), 7);
  size_t min_size = 1000, max_size = 0;
  for (const auto& p : partitions) {
    min_size = std::min(min_size, p.size());
    max_size = std::max(max_size, p.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(PartitionerTest, CoversEverySubjectExactlyOnce) {
  auto subjects = Ids(57);
  auto partitions = EqualSizePartition(subjects, 8);
  std::multiset<rdf::TermId> seen;
  for (const auto& p : partitions) seen.insert(p.begin(), p.end());
  EXPECT_EQ(seen.size(), subjects.size());
  for (rdf::TermId id : subjects) EXPECT_EQ(seen.count(id), 1u);
}

TEST(PartitionerTest, SinglePartition) {
  auto partitions = EqualSizePartition(Ids(5), 1);
  ASSERT_EQ(partitions.size(), 1u);
  EXPECT_EQ(partitions[0].size(), 5u);
}

TEST(PartitionerTest, NonPositiveCountTreatedAsOne) {
  auto partitions = EqualSizePartition(Ids(5), 0);
  ASSERT_EQ(partitions.size(), 1u);
  partitions = EqualSizePartition(Ids(5), -3);
  ASSERT_EQ(partitions.size(), 1u);
}

TEST(PartitionerTest, MorePartitionsThanSubjects) {
  auto partitions = EqualSizePartition(Ids(3), 10);
  ASSERT_EQ(partitions.size(), 10u);
  size_t non_empty = 0;
  for (const auto& p : partitions) {
    if (!p.empty()) ++non_empty;
  }
  EXPECT_EQ(non_empty, 3u);
}

TEST(PartitionerTest, EmptyInput) {
  auto partitions = EqualSizePartition({}, 4);
  ASSERT_EQ(partitions.size(), 4u);
  for (const auto& p : partitions) EXPECT_TRUE(p.empty());
}

}  // namespace
}  // namespace alex::core
