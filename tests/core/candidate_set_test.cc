#include "core/candidate_set.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace alex::core {
namespace {

TEST(CandidateSetTest, AddRemoveContains) {
  CandidateSet set;
  EXPECT_TRUE(set.Add(5));
  EXPECT_FALSE(set.Add(5));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Remove(5));
  EXPECT_FALSE(set.Remove(5));
  EXPECT_FALSE(set.Contains(5));
  EXPECT_TRUE(set.empty());
}

TEST(CandidateSetTest, SwapPopKeepsConsistency) {
  CandidateSet set;
  for (PairId id = 0; id < 10; ++id) set.Add(id);
  set.Remove(0);  // removes head, swaps in tail
  set.Remove(9);
  set.Remove(4);
  EXPECT_EQ(set.size(), 7u);
  std::set<PairId> expected = {1, 2, 3, 5, 6, 7, 8};
  std::set<PairId> actual(set.items().begin(), set.items().end());
  EXPECT_EQ(actual, expected);
  for (PairId id : expected) EXPECT_TRUE(set.Contains(id));
}

TEST(CandidateSetTest, SampleIsUniformish) {
  CandidateSet set;
  for (PairId id = 0; id < 10; ++id) set.Add(id);
  Rng rng(5);
  std::map<PairId, int> counts;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++counts[set.Sample(&rng)];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [id, count] : counts) {
    EXPECT_NEAR(count, draws / 10, draws / 10 * 0.2) << "pair " << id;
  }
}

TEST(CandidateSetTest, SortedSnapshot) {
  CandidateSet set;
  set.Add(9);
  set.Add(1);
  set.Add(5);
  EXPECT_EQ(set.SortedSnapshot(), (std::vector<PairId>{1, 5, 9}));
}

TEST(CandidateSetTest, ReAddAfterRemove) {
  CandidateSet set;
  set.Add(3);
  set.Remove(3);
  EXPECT_TRUE(set.Add(3));
  EXPECT_TRUE(set.Contains(3));
}

TEST(CandidateSetTest, EpochChangesCountNetMembership) {
  CandidateSet set;
  set.Add(1);
  set.Add(2);
  EXPECT_EQ(set.EpochChangeCount(), 2u);
  EXPECT_EQ(set.TakeEpochChanges(), 2u);
  EXPECT_EQ(set.EpochChangeCount(), 0u);

  // Add then remove within an epoch nets to zero.
  set.Add(3);
  set.Remove(3);
  EXPECT_EQ(set.EpochChangeCount(), 0u);

  // Remove then re-add of a baseline member also nets to zero.
  set.Remove(1);
  EXPECT_EQ(set.EpochChangeCount(), 1u);
  set.Add(1);
  EXPECT_EQ(set.EpochChangeCount(), 0u);

  // Mixed: one removal, one addition.
  set.Remove(2);
  set.Add(7);
  EXPECT_EQ(set.TakeEpochChanges(), 2u);
  EXPECT_EQ(set.EpochChangeCount(), 0u);
}

TEST(CandidateSetTest, EpochChangesMatchSymmetricDifference) {
  CandidateSet set;
  Rng rng(23);
  for (PairId id = 0; id < 100; id += 2) set.Add(id);
  set.TakeEpochChanges();
  std::set<PairId> baseline(set.items().begin(), set.items().end());
  for (int i = 0; i < 5000; ++i) {
    PairId id = static_cast<PairId>(rng.NextBounded(120));
    if (rng.NextBool(0.5)) {
      set.Add(id);
    } else {
      set.Remove(id);
    }
  }
  std::set<PairId> current(set.items().begin(), set.items().end());
  size_t symdiff = 0;
  for (PairId id : baseline) symdiff += current.count(id) == 0;
  for (PairId id : current) symdiff += baseline.count(id) == 0;
  EXPECT_EQ(set.EpochChangeCount(), symdiff);
}

TEST(CandidateSetTest, StressAddRemove) {
  CandidateSet set;
  Rng rng(11);
  std::set<PairId> reference;
  for (int i = 0; i < 20000; ++i) {
    PairId id = static_cast<PairId>(rng.NextBounded(500));
    if (rng.NextBool(0.5)) {
      EXPECT_EQ(set.Add(id), reference.insert(id).second);
    } else {
      EXPECT_EQ(set.Remove(id), reference.erase(id) > 0);
    }
  }
  EXPECT_EQ(set.size(), reference.size());
  for (PairId id : reference) EXPECT_TRUE(set.Contains(id));
}

}  // namespace
}  // namespace alex::core
