#include "core/feature_set.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "similarity/string_metrics.h"

namespace alex::core {
namespace {

using rdf::Term;
using rdf::TripleStore;

TEST(FeatureCatalogTest, InternIsIdempotent) {
  FeatureCatalog catalog;
  FeatureId a = catalog.Intern({"http://l/name", "http://r/label"});
  FeatureId b = catalog.Intern({"http://l/name", "http://r/label"});
  EXPECT_EQ(a, b);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(FeatureCatalogTest, DirectionMatters) {
  FeatureCatalog catalog;
  FeatureId ab = catalog.Intern({"a", "b"});
  FeatureId ba = catalog.Intern({"b", "a"});
  EXPECT_NE(ab, ba);
}

TEST(FeatureCatalogTest, KeyRoundTrip) {
  FeatureCatalog catalog;
  FeatureId id = catalog.Intern({"left", "right"});
  FeatureKey key = catalog.Key(id);
  EXPECT_EQ(key.left_predicate, "left");
  EXPECT_EQ(key.right_predicate, "right");
}

TEST(FeatureCatalogTest, CanonicalizeSortsKeysAndReturnsPermutation) {
  FeatureCatalog catalog;
  FeatureId c = catalog.Intern({"c", "z"});
  FeatureId a = catalog.Intern({"a", "x"});
  FeatureId b = catalog.Intern({"b", "y"});
  std::vector<FeatureId> old_to_new = catalog.Canonicalize();
  ASSERT_EQ(old_to_new.size(), 3u);
  // After canonicalization ids follow (left, right) lexicographic order.
  EXPECT_EQ(old_to_new[a], 0u);
  EXPECT_EQ(old_to_new[b], 1u);
  EXPECT_EQ(old_to_new[c], 2u);
  EXPECT_EQ(catalog.Key(0).left_predicate, "a");
  EXPECT_EQ(catalog.Key(1).left_predicate, "b");
  EXPECT_EQ(catalog.Key(2).left_predicate, "c");
  EXPECT_EQ(catalog.Key(2).right_predicate, "z");
  // Interning an existing key resolves to its NEW id without growing.
  EXPECT_EQ(catalog.Intern({"c", "z"}), old_to_new[c]);
  EXPECT_EQ(catalog.size(), 3u);
}

TEST(FeatureCatalogTest, CanonicalizeMakesIdsInterningOrderIndependent) {
  // Two catalogs fed the same keys in different orders agree id-for-id
  // after canonicalization — the property Initialize relies on to make
  // FeatureIds independent of parallel build timing.
  std::vector<FeatureKey> keys = {
      {"p3", "q1"}, {"p1", "q2"}, {"p2", "q9"}, {"p1", "q1"}, {"p3", "q0"}};
  FeatureCatalog forward, backward;
  for (const FeatureKey& key : keys) forward.Intern(key);
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    backward.Intern(*it);
  }
  forward.Canonicalize();
  backward.Canonicalize();
  ASSERT_EQ(forward.size(), backward.size());
  for (FeatureId id = 0; id < forward.size(); ++id) {
    EXPECT_EQ(forward.Key(id).left_predicate,
              backward.Key(id).left_predicate);
    EXPECT_EQ(forward.Key(id).right_predicate,
              backward.Key(id).right_predicate);
  }
  for (const FeatureKey& key : keys) {
    EXPECT_EQ(forward.Intern(key), backward.Intern(key));
  }
}

TEST(FeatureSetTest, GetAndSetMax) {
  FeatureSet set;
  set.SetMax(3, 0.5);
  set.SetMax(1, 0.7);
  set.SetMax(3, 0.4);  // lower: ignored
  set.SetMax(3, 0.9);  // higher: kept
  EXPECT_DOUBLE_EQ(set.Get(1), 0.7);
  EXPECT_DOUBLE_EQ(set.Get(3), 0.9);
  EXPECT_DOUBLE_EQ(set.Get(2), 0.0);
  EXPECT_EQ(set.size(), 2u);
  // Sorted by feature id.
  EXPECT_EQ(set.features[0].first, 1u);
  EXPECT_EQ(set.features[1].first, 3u);
}

TEST(PrepareValueTest, StringValue) {
  PreparedValue v = PrepareValue(Term::StringLiteral("LeBron  James"));
  EXPECT_FALSE(v.is_iri);
  EXPECT_EQ(v.lowered, "lebron  james");
  ASSERT_EQ(v.tokens.size(), 2u);
  EXPECT_EQ(v.tokens[0], "james");  // sorted
  EXPECT_EQ(v.tokens[1], "lebron");
}

TEST(PrepareValueTest, NumericString) {
  PreparedValue v = PrepareValue(Term::StringLiteral("1984"));
  EXPECT_TRUE(v.has_numeric);
  EXPECT_DOUBLE_EQ(v.numeric, 1984.0);
}

TEST(PrepareValueTest, IriUsesLocalName) {
  PreparedValue v = PrepareValue(Term::Iri("http://x/LeBron_James"));
  EXPECT_TRUE(v.is_iri);
  EXPECT_EQ(v.lowered, "lebron_james");
}

TEST(PrepareValueTest, DateDays) {
  PreparedValue v = PrepareValue(Term::DateLiteral("1970-01-02"));
  EXPECT_EQ(v.date_days, 1);
}

TEST(PreparedSimilarityTest, MatchesValueSimilaritySemantics) {
  sim::SimilarityOptions options;
  struct Case {
    Term a, b;
  };
  std::vector<Case> cases = {
      {Term::StringLiteral("alpha beta"), Term::StringLiteral("beta alpha")},
      {Term::IntegerLiteral(100), Term::IntegerLiteral(101)},
      {Term::DateLiteral("2000-01-01"), Term::DateLiteral("2000-06-01")},
      {Term::StringLiteral("42"), Term::IntegerLiteral(42)},
      {Term::BooleanLiteral(true), Term::BooleanLiteral(false)},
      {Term::StringLiteral("same text here"),
       Term::StringLiteral("same text here")},
  };
  for (const Case& c : cases) {
    double fast = PreparedSimilarity(PrepareValue(c.a), PrepareValue(c.b),
                                     options);
    double slow = sim::ValueSimilarity(c.a, c.b, options);
    EXPECT_NEAR(fast, slow, 1e-9)
        << c.a.ToString() << " vs " << c.b.ToString();
  }
}

TEST(PreparedSimilarityTest, RandomStringsBelowTheta) {
  double s = PreparedSimilarity(PrepareValue(Term::StringLiteral("brouzit")),
                                PrepareValue(Term::StringLiteral("keldana")));
  EXPECT_LT(s, 0.3);
}

class FeatureSetBuilderTest : public ::testing::Test {
 protected:
  FeatureSetBuilderTest() : left_("l"), right_("r") {}

  PreparedEntity MakeLeft(
      const std::vector<std::pair<std::string, Term>>& attrs) {
    Term subject = Term::Iri("http://l/e");
    for (const auto& [pred, obj] : attrs) {
      left_.Add(subject, Term::Iri(pred), obj);
    }
    return PrepareEntity(left_, *left_.dictionary().Lookup(subject));
  }
  PreparedEntity MakeRight(
      const std::vector<std::pair<std::string, Term>>& attrs) {
    Term subject = Term::Iri("http://r/x");
    for (const auto& [pred, obj] : attrs) {
      right_.Add(subject, Term::Iri(pred), obj);
    }
    return PrepareEntity(right_, *right_.dictionary().Lookup(subject));
  }

  TripleStore left_;
  TripleStore right_;
  FeatureCatalog catalog_;
};

TEST_F(FeatureSetBuilderTest, PairsUpMatchingAttributes) {
  PreparedEntity l = MakeLeft({{"http://l/name",
                                Term::StringLiteral("Marie Curie")},
                               {"http://l/born", Term::IntegerLiteral(1867)}});
  PreparedEntity r = MakeRight(
      {{"http://r/label", Term::StringLiteral("Marie Curie")},
       {"http://r/birthYear", Term::IntegerLiteral(1867)}});
  FeatureSet set = BuildFeatureSet(l, r, &catalog_, 0.3);
  EXPECT_EQ(set.size(), 2u);
  FeatureId name = catalog_.Intern({"http://l/name", "http://r/label"});
  FeatureId year = catalog_.Intern({"http://l/born", "http://r/birthYear"});
  EXPECT_DOUBLE_EQ(set.Get(name), 1.0);
  EXPECT_DOUBLE_EQ(set.Get(year), 1.0);
}

TEST_F(FeatureSetBuilderTest, ThetaFiltersWeakFeatures) {
  PreparedEntity l = MakeLeft({{"http://l/name",
                                Term::StringLiteral("xyzzy plugh")}});
  PreparedEntity r = MakeRight(
      {{"http://r/label", Term::StringLiteral("unrelated words")}});
  FeatureSet set = BuildFeatureSet(l, r, &catalog_, 0.3);
  EXPECT_TRUE(set.empty());
}

TEST_F(FeatureSetBuilderTest, EmptyEntityYieldsEmptySet) {
  PreparedEntity l = MakeLeft({{"http://l/name",
                                Term::StringLiteral("a")}});
  PreparedEntity empty;
  FeatureSet set = BuildFeatureSet(l, empty, &catalog_, 0.3);
  EXPECT_TRUE(set.empty());
}

TEST_F(FeatureSetBuilderTest, RowMaximaWhenLeftLarger) {
  // Left has 2 attributes, right has 1: one feature per left attribute that
  // clears θ against the single right attribute.
  PreparedEntity l =
      MakeLeft({{"http://l/name", Term::StringLiteral("alpha")},
                {"http://l/alias", Term::StringLiteral("alpha")}});
  PreparedEntity r =
      MakeRight({{"http://r/label", Term::StringLiteral("alpha")}});
  FeatureSet set = BuildFeatureSet(l, r, &catalog_, 0.3);
  EXPECT_EQ(set.size(), 2u);
}

TEST_F(FeatureSetBuilderTest, ColumnMaximaWhenRightLarger) {
  PreparedEntity l =
      MakeLeft({{"http://l/name", Term::StringLiteral("alpha")}});
  PreparedEntity r =
      MakeRight({{"http://r/label", Term::StringLiteral("alpha")},
                 {"http://r/alias", Term::StringLiteral("alpha")}});
  FeatureSet set = BuildFeatureSet(l, r, &catalog_, 0.3);
  EXPECT_EQ(set.size(), 2u);
}

TEST_F(FeatureSetBuilderTest, DuplicateFeatureKeyKeepsMax) {
  // Two left attributes with the same predicate, both matching the same
  // right attribute at different scores: one feature with the max.
  PreparedEntity l =
      MakeLeft({{"http://l/name", Term::StringLiteral("alpha beta")},
                {"http://l/name", Term::StringLiteral("alpha")}});
  PreparedEntity r =
      MakeRight({{"http://r/label", Term::StringLiteral("alpha")}});
  FeatureSet set = BuildFeatureSet(l, r, &catalog_, 0.3);
  FeatureId id = catalog_.Intern({"http://l/name", "http://r/label"});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.Get(id), 1.0);
}

TEST_F(FeatureSetBuilderTest, MemoOverloadMatchesCatalogOverload) {
  PreparedEntity l =
      MakeLeft({{"http://l/name", Term::StringLiteral("alpha beta")},
                {"http://l/born", Term::IntegerLiteral(1912)}});
  PreparedEntity r =
      MakeRight({{"http://r/label", Term::StringLiteral("alpha betta")},
                 {"http://r/birthYear", Term::IntegerLiteral(1912)}});
  FeatureSet direct = BuildFeatureSet(l, r, &catalog_, 0.3);
  CatalogMemo memo(&catalog_);
  FeatureSet memoized = BuildFeatureSet(l, r, &memo, 0.3);
  ASSERT_EQ(direct.size(), memoized.size());
  for (size_t i = 0; i < direct.features.size(); ++i) {
    EXPECT_EQ(direct.features[i].first, memoized.features[i].first);
    EXPECT_DOUBLE_EQ(direct.features[i].second, memoized.features[i].second);
  }
}

std::string RandomString(Rng* rng, size_t max_length) {
  // A 3-letter alphabet makes small distances (and ties) common.
  std::string s;
  size_t length = rng->NextBounded(max_length + 1);
  for (size_t i = 0; i < length; ++i) {
    s.push_back(static_cast<char>('a' + rng->NextBounded(3)));
  }
  return s;
}

TEST(FastLevenshteinTest, ExactWithoutCutoff) {
  const std::pair<const char*, const char*> kCases[] = {
      {"", ""},           {"", "abc"},        {"abc", ""},
      {"abc", "abc"},     {"kitten", "sitting"}, {"smith", "smyth"},
      {"cuglia", "hugia"}, {"a", "b"},        {"ab", "ba"},
  };
  for (const auto& [a, b] : kCases) {
    EXPECT_DOUBLE_EQ(FastNormalizedLevenshtein(a, b),
                     sim::NormalizedLevenshtein(a, b))
        << "'" << a << "' vs '" << b << "'";
  }
  Rng rng(1234);
  for (int i = 0; i < 500; ++i) {
    std::string a = RandomString(&rng, 12);
    std::string b = RandomString(&rng, 12);
    EXPECT_DOUBLE_EQ(FastNormalizedLevenshtein(a, b),
                     sim::NormalizedLevenshtein(a, b))
        << "'" << a << "' vs '" << b << "'";
  }
}

TEST(FastLevenshteinTest, CutoffContractExactAboveUnderestimateBelow) {
  // Contract: with a cutoff, the result is exact whenever the true
  // similarity is >= the cutoff; otherwise it may be any value below the
  // cutoff (the caller only learns "not interesting").
  Rng rng(99);
  const double kCutoffs[] = {0.3, 0.5, 0.58, 0.7, 0.9};
  for (int i = 0; i < 500; ++i) {
    std::string a = RandomString(&rng, 12);
    std::string b = RandomString(&rng, 12);
    double exact = sim::NormalizedLevenshtein(a, b);
    for (double cutoff : kCutoffs) {
      double fast = FastNormalizedLevenshtein(a, b, cutoff);
      if (exact >= cutoff) {
        EXPECT_DOUBLE_EQ(fast, exact)
            << "'" << a << "' vs '" << b << "' cutoff " << cutoff;
      } else {
        EXPECT_LT(fast, cutoff)
            << "'" << a << "' vs '" << b << "' cutoff " << cutoff;
        EXPECT_GE(fast, 0.0);
      }
    }
  }
}

TEST(FastLevenshteinTest, LengthDifferenceEarlyExit) {
  // |10 - 2| = 8 edits minimum; with cutoff 0.5 the band is skipped
  // entirely but the result must still be below the cutoff and sane.
  double fast = FastNormalizedLevenshtein("ab", "abcdefghij", 0.5);
  EXPECT_LT(fast, 0.5);
  EXPECT_GE(fast, 0.0);
  // Without a cutoff the same pair is computed exactly.
  EXPECT_DOUBLE_EQ(FastNormalizedLevenshtein("ab", "abcdefghij"),
                   sim::NormalizedLevenshtein("ab", "abcdefghij"));
}

TEST(SortedTokenJaccardTest, MergeWalkEdges) {
  using Tokens = std::vector<std::string>;
  EXPECT_DOUBLE_EQ(SortedTokenJaccard(Tokens{}, Tokens{}), 1.0);
  EXPECT_DOUBLE_EQ(SortedTokenJaccard(Tokens{"a"}, Tokens{}), 0.0);
  EXPECT_DOUBLE_EQ(SortedTokenJaccard(Tokens{}, Tokens{"a"}), 0.0);
  EXPECT_DOUBLE_EQ(SortedTokenJaccard(Tokens{"a", "b"}, Tokens{"a", "b"}),
                   1.0);
  EXPECT_DOUBLE_EQ(SortedTokenJaccard(Tokens{"a", "b"}, Tokens{"c", "d"}),
                   0.0);
  // 2 shared of 4 distinct.
  EXPECT_DOUBLE_EQ(
      SortedTokenJaccard(Tokens{"a", "b", "c"}, Tokens{"b", "c", "d"}), 0.5);
  // Prefix tokens are not equal tokens.
  EXPECT_DOUBLE_EQ(SortedTokenJaccard(Tokens{"a"}, Tokens{"ab"}), 0.0);
  // Trailing-run handling on both sides of the walk.
  EXPECT_DOUBLE_EQ(SortedTokenJaccard(Tokens{"a"}, Tokens{"a", "b", "c"}),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(SortedTokenJaccard(Tokens{"a", "b", "c"}, Tokens{"c"}),
                   1.0 / 3.0);
}

TEST(PrepareEntityTest, MaxAttributesCap) {
  TripleStore store("t");
  Term subject = Term::Iri("s");
  for (int i = 0; i < 20; ++i) {
    store.Add(subject, Term::Iri("p" + std::to_string(i)),
              Term::IntegerLiteral(i));
  }
  PreparedEntity capped =
      PrepareEntity(store, *store.dictionary().Lookup(subject), 5);
  EXPECT_EQ(capped.attributes.size(), 5u);
  PreparedEntity full =
      PrepareEntity(store, *store.dictionary().Lookup(subject), 0);
  EXPECT_EQ(full.attributes.size(), 20u);
}

}  // namespace
}  // namespace alex::core
