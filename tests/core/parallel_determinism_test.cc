// Parallel episodes must be a pure performance knob: the full observable
// result of a run — every EpisodeStats field except wall-clock timings, the
// candidate links, the per-episode quality stream, convergence — has to be
// identical at any thread count (see DESIGN.md, "The episode loop").
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/alex_engine.h"
#include "datagen/profiles.h"
#include "datagen/world.h"
#include "eval/metrics.h"
#include "feedback/oracle.h"
#include "linking/paris.h"

namespace alex::core {
namespace {

void AppendBits(std::ostringstream* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  *out << bits << ' ';
}

// Runs one engine to completion and serializes everything observable about
// the run. Wall-clock fields (seconds, max/avg_partition_seconds) are the
// only EpisodeStats members excluded.
std::string RunSerialized(const datagen::GeneratedWorld& world,
                          const std::vector<linking::Link>& initial,
                          const feedback::GroundTruth& truth,
                          AlexOptions options, int threads,
                          double error_rate) {
  options.num_threads = threads;
  AlexEngine engine(&world.left, &world.right, options);
  Status status = engine.Initialize(initial);
  EXPECT_TRUE(status.ok()) << status.ToString();

  eval::QualityTracker tracker(&truth);
  tracker.Reset(engine.CandidateLinks());
  engine.SetLinkChangeObserver(
      [&tracker](const linking::Link& link, bool added) {
        tracker.OnLinkChange(link, added);
      });
  feedback::Oracle oracle(&truth, error_rate, options.seed + 17);

  std::ostringstream out;
  AlexEngine::RunResult result = engine.Run(
      [&oracle](const linking::Link& link) { return oracle.Feedback(link); },
      [&](const EpisodeStats& stats) {
        out << stats.episode << ' ' << stats.feedback_items << ' '
            << stats.positive_feedback << ' ' << stats.negative_feedback
            << ' ' << stats.links_added << ' ' << stats.links_removed << ' '
            << stats.rollbacks << ' ' << stats.rolled_back_links << ' '
            << stats.candidate_count << ' ';
        AppendBits(&out, stats.change_fraction);
        eval::Quality quality = tracker.Snapshot();
        out << quality.candidates << ' ' << quality.correct << ' ';
        AppendBits(&out, quality.precision);
        AppendBits(&out, quality.recall);
        AppendBits(&out, quality.f_measure);
        out << '\n';
      });
  out << "converged " << result.converged << " episodes " << result.episodes
      << " relaxed " << result.relaxed_episode << '\n';
  std::vector<linking::Link> links = engine.CandidateLinks();
  std::sort(links.begin(), links.end());
  for (const linking::Link& link : links) {
    out << link.left << " -> " << link.right << '\n';
  }
  out << "oracle " << oracle.items() << ' ' << oracle.errors() << '\n';
  return out.str();
}

void CheckProfile(datagen::WorldProfile profile, double error_rate) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    profile.seed += seed;  // vary the data along with the engine seed
    datagen::GeneratedWorld world = datagen::Generate(profile);
    linking::ParisOptions paris;
    std::vector<linking::Link> initial = linking::FilterByScore(
        linking::RunParis(world.left, world.right, paris), 0.95);
    feedback::GroundTruth truth(world.ground_truth);

    AlexOptions options;
    options.num_partitions = 4;
    options.episode_size = 200;
    options.max_episodes = 6;
    options.seed = 42 + seed;

    std::string serial =
        RunSerialized(world, initial, truth, options, 1, error_rate);
    for (int threads : {2, 4}) {
      std::string parallel =
          RunSerialized(world, initial, truth, options, threads, error_rate);
      EXPECT_EQ(parallel, serial)
          << "seed " << seed << ", " << threads << " threads";
    }
  }
}

TEST(ParallelEpisodeDeterminismTest, TinyWorldIdenticalSeries) {
  CheckProfile(datagen::TinyTestProfile(), /*error_rate=*/0.0);
}

TEST(ParallelEpisodeDeterminismTest, NbaWorldIdenticalSeries) {
  datagen::WorldProfile profile = datagen::DbpediaNbaNytimesProfile();
  // Scale to test size while keeping the profile's noise character.
  profile.overlap_entities = 120;
  profile.left_only_entities = 60;
  profile.right_only_entities = 40;
  CheckProfile(profile, /*error_rate=*/0.0);
}

TEST(ParallelEpisodeDeterminismTest, NoisyFeedbackStaysDeterministic) {
  // 10% flipped feedback routes negative feedback through blacklisting and
  // rollbacks; the per-link flip sequences (and hence the whole run) must
  // still be interleaving-independent.
  CheckProfile(datagen::TinyTestProfile(), /*error_rate=*/0.1);
}

}  // namespace
}  // namespace alex::core
