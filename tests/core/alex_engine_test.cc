#include "core/alex_engine.h"

#include <gtest/gtest.h>

#include <string>

namespace alex::core {
namespace {

using linking::Link;
using rdf::Term;
using rdf::TripleStore;

// A controlled micro-world: N left/right entities with a single "name"
// attribute whose similarity is dialed in so exploration bands are exactly
// predictable.
class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture() : left_("l"), right_("r") {}

  void AddPair(int id, const std::string& left_name,
               const std::string& right_name) {
    left_.Add(Term::Iri(LeftIri(id)), Term::Iri("http://l/name"),
              Term::StringLiteral(left_name));
    right_.Add(Term::Iri(RightIri(id)), Term::Iri("http://r/label"),
               Term::StringLiteral(right_name));
  }

  static std::string LeftIri(int id) {
    return "http://l/e" + std::to_string(id);
  }
  static std::string RightIri(int id) {
    return "http://r/x" + std::to_string(id);
  }

  AlexOptions SmallOptions() {
    AlexOptions options;
    options.num_partitions = 1;
    options.num_threads = 1;
    options.episode_size = 50;
    options.max_episodes = 20;
    options.seed = 1234;
    return options;
  }

  TripleStore left_;
  TripleStore right_;
};

TEST_F(EngineFixture, InitializeRequiresNonEmptyStores) {
  AlexOptions options = SmallOptions();
  AlexEngine engine(&left_, &right_, options);
  Status st = engine.Initialize({});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineFixture, DoubleInitializeFails) {
  AddPair(0, "Ada Lovelace", "Ada Lovelace");
  AlexOptions options = SmallOptions();
  AlexEngine engine(&left_, &right_, options);
  ASSERT_TRUE(engine.Initialize({}).ok());
  EXPECT_EQ(engine.Initialize({}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(EngineFixture, InitialLinksBecomeCandidates) {
  for (int i = 0; i < 4; ++i) AddPair(i, "Name" + std::to_string(i),
                                      "Name" + std::to_string(i));
  AlexOptions options = SmallOptions();
  AlexEngine engine(&left_, &right_, options);
  std::vector<Link> initial = {{LeftIri(0), RightIri(0), 1.0},
                               {LeftIri(1), RightIri(1), 1.0}};
  ASSERT_TRUE(engine.Initialize(initial).ok());
  EXPECT_EQ(engine.CandidateCount(), 2u);
  std::vector<Link> candidates = engine.CandidateLinks();
  EXPECT_EQ(candidates.size(), 2u);
}

TEST_F(EngineFixture, SpacelessInitialLinksKeptAsExtras) {
  AddPair(0, "Ada Lovelace", "Ada Lovelace");
  AddPair(1, "totally unrelated", "different thing");  // filtered out
  AlexOptions options = SmallOptions();
  AlexEngine engine(&left_, &right_, options);
  std::vector<Link> initial = {{LeftIri(1), RightIri(1), 1.0}};
  ASSERT_TRUE(engine.Initialize(initial).ok());
  // The pair is not in the feature space but must survive as a candidate.
  EXPECT_EQ(engine.CandidateCount(), 1u);
  // Negative feedback removes it.
  engine.ApplyLinkFeedback(initial[0], false);
  EXPECT_EQ(engine.CandidateCount(), 0u);
}

TEST_F(EngineFixture, PositiveFeedbackDiscoversSimilarLinks) {
  // Ten true pairs with identical names: all in one exploration band.
  for (int i = 0; i < 10; ++i) {
    AddPair(i, "Common Name" + std::to_string(i),
            "Common Name" + std::to_string(i));
  }
  AlexOptions options = SmallOptions();
  AlexEngine engine(&left_, &right_, options);
  // Seed with one correct link only.
  ASSERT_TRUE(engine.Initialize({{LeftIri(0), RightIri(0), 1.0}}).ok());
  EXPECT_EQ(engine.CandidateCount(), 1u);
  engine.BeginExternalEpisode();
  engine.ApplyLinkFeedback({LeftIri(0), RightIri(0), 1.0}, true);
  engine.EndExternalEpisode();
  // The action explored around score 1.0 and pulled in the other pairs
  // whose (name, label) score is within the step (all the exact matches).
  EXPECT_GT(engine.CandidateCount(), 1u);
}

TEST_F(EngineFixture, NegativeFeedbackRemovesLink) {
  AddPair(0, "Ada Lovelace", "Ada Lovelace");
  AddPair(1, "Alan Turing", "Alan Turing");
  AlexOptions options = SmallOptions();
  AlexEngine engine(&left_, &right_, options);
  std::vector<Link> initial = {{LeftIri(0), RightIri(0), 1.0},
                               {LeftIri(0), RightIri(1), 1.0}};
  ASSERT_TRUE(engine.Initialize(initial).ok());
  // The wrong pair (e0, x1) has no features -> it is an extra.
  engine.ApplyLinkFeedback({LeftIri(0), RightIri(1), 1.0}, false);
  EXPECT_EQ(engine.CandidateCount(), 1u);
}

TEST_F(EngineFixture, RunAgainstPerfectOracleConverges) {
  for (int i = 0; i < 20; ++i) {
    AddPair(i, "Person Number" + std::to_string(i),
            "Person Number" + std::to_string(i));
  }
  // Ground truth: the identity mapping.
  auto feedback = [](const Link& link) {
    // iri suffixes match: .../eK <-> .../xK
    std::string l = link.left.substr(link.left.find_last_of('e') + 1);
    std::string r = link.right.substr(link.right.find_last_of('x') + 1);
    return l == r;
  };
  AlexOptions options = SmallOptions();
  AlexEngine engine(&left_, &right_, options);
  ASSERT_TRUE(engine.Initialize({{LeftIri(0), RightIri(0), 1.0}}).ok());
  AlexEngine::RunResult result = engine.Run(feedback);
  EXPECT_TRUE(result.converged);
  // All 20 true links found; wrong ones pruned.
  std::vector<Link> links = engine.CandidateLinks();
  size_t correct = 0;
  for (const Link& link : links) {
    if (feedback(link)) ++correct;
  }
  EXPECT_EQ(correct, 20u);
  EXPECT_EQ(links.size(), correct);  // perfect precision at convergence
}

TEST_F(EngineFixture, EpisodeStatsAreConsistent) {
  for (int i = 0; i < 8; ++i) {
    AddPair(i, "Entity" + std::to_string(i), "Entity" + std::to_string(i));
  }
  AlexOptions options = SmallOptions();
  options.episode_size = 30;
  AlexEngine engine(&left_, &right_, options);
  ASSERT_TRUE(engine.Initialize({{LeftIri(0), RightIri(0), 1.0}}).ok());
  EpisodeStats stats = engine.RunEpisode([](const Link&) { return true; });
  EXPECT_EQ(stats.episode, 1);
  EXPECT_EQ(stats.feedback_items, 30u);
  EXPECT_EQ(stats.positive_feedback, 30u);
  EXPECT_EQ(stats.negative_feedback, 0u);
  EXPECT_EQ(stats.candidate_count, engine.CandidateCount());
  EXPECT_GE(stats.seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.NegativeFeedbackPercent(), 0.0);
}

TEST_F(EngineFixture, AllNegativeFeedbackEmptiesCandidates) {
  for (int i = 0; i < 5; ++i) {
    AddPair(i, "E" + std::to_string(i), "E" + std::to_string(i));
  }
  AlexOptions options = SmallOptions();
  AlexEngine engine(&left_, &right_, options);
  std::vector<Link> initial;
  for (int i = 0; i < 5; ++i) initial.push_back({LeftIri(i), RightIri(i),
                                                 1.0});
  ASSERT_TRUE(engine.Initialize(initial).ok());
  engine.RunEpisode([](const Link&) { return false; });
  EXPECT_EQ(engine.CandidateCount(), 0u);
  // With no candidates, episodes terminate immediately.
  EpisodeStats stats = engine.RunEpisode([](const Link&) { return false; });
  EXPECT_EQ(stats.feedback_items, 0u);
}

TEST_F(EngineFixture, BlacklistPreventsRediscovery) {
  // Pair (e0, x1) is similar to (e0, x0) — a trap. After negative feedback
  // it must never come back.
  AddPair(0, "Twin Name", "Twin Name");
  left_.Add(Term::Iri(LeftIri(1)), Term::Iri("http://l/name"),
            Term::StringLiteral("Twin Name"));
  right_.Add(Term::Iri(RightIri(1)), Term::Iri("http://r/label"),
             Term::StringLiteral("Twin Name"));
  AlexOptions options = SmallOptions();
  options.use_blacklist = true;
  AlexEngine engine(&left_, &right_, options);
  ASSERT_TRUE(engine.Initialize({{LeftIri(0), RightIri(0), 1.0}}).ok());

  // Reject everything that is not the identity mapping.
  auto feedback = [](const Link& link) {
    return link.left == LeftIri(0) ? link.right == RightIri(0)
                                   : link.right == RightIri(1);
  };
  AlexEngine::RunResult result = engine.Run(feedback);
  EXPECT_TRUE(result.converged);
  for (const Link& link : engine.CandidateLinks()) {
    EXPECT_TRUE(feedback(link)) << link.left << " -> " << link.right;
  }
}

TEST_F(EngineFixture, DeterministicUnderSameSeed) {
  for (int i = 0; i < 10; ++i) {
    AddPair(i, "Det" + std::to_string(i), "Det" + std::to_string(i));
  }
  auto run = [&]() {
    AlexOptions options = SmallOptions();
    AlexEngine engine(&left_, &right_, options);
    EXPECT_TRUE(engine.Initialize({{LeftIri(0), RightIri(0), 1.0}}).ok());
    engine.RunEpisode([](const Link&) { return true; });
    std::vector<Link> links = engine.CandidateLinks();
    std::sort(links.begin(), links.end());
    return links;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(EngineFixture, MultiplePartitionsCoverAllSubjects) {
  for (int i = 0; i < 12; ++i) {
    AddPair(i, "Part" + std::to_string(i), "Part" + std::to_string(i));
  }
  AlexOptions options = SmallOptions();
  options.num_partitions = 4;
  AlexEngine engine(&left_, &right_, options);
  std::vector<Link> initial;
  for (int i = 0; i < 12; ++i) {
    initial.push_back({LeftIri(i), RightIri(i), 1.0});
  }
  ASSERT_TRUE(engine.Initialize(initial).ok());
  EXPECT_EQ(engine.partitions().size(), 4u);
  EXPECT_EQ(engine.CandidateCount(), 12u);
  size_t left_total = 0;
  for (const PartitionAlex& partition : engine.partitions()) {
    left_total += partition.space().left_entities().size();
  }
  EXPECT_EQ(left_total, 12u);
}

TEST_F(EngineFixture, RollbackToggleMatters) {
  // With rollback disabled, junk introduced by a bad action lingers far
  // longer (Figure 7's premise). We only verify the mechanism toggles.
  for (int i = 0; i < 10; ++i) {
    AddPair(i, "Same Exact Name", "Same Exact Name");  // everything matches
  }
  auto run = [&](bool use_rollback) {
    AlexOptions options = SmallOptions();
    options.use_rollback = use_rollback;
    options.use_blacklist = false;
    options.max_episodes = 3;
    AlexEngine engine(&left_, &right_, options);
    EXPECT_TRUE(engine.Initialize({{LeftIri(0), RightIri(0), 1.0}}).ok());
    auto feedback = [](const Link& link) {
      std::string l = link.left.substr(link.left.find_last_of('e') + 1);
      std::string r = link.right.substr(link.right.find_last_of('x') + 1);
      return l == r;
    };
    size_t rollbacks = 0;
    engine.Run(feedback, [&](const EpisodeStats& stats) {
      rollbacks += stats.rollbacks;
    });
    return rollbacks;
  };
  EXPECT_EQ(run(false), 0u);
  EXPECT_GT(run(true), 0u);
}

}  // namespace
}  // namespace alex::core
