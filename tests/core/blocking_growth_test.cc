// Randomized differential for incremental BlockingIndex maintenance:
// growing an index with AddRights() must leave it logically identical —
// Fingerprint(), probe results, per-cell channel masks — to a fresh
// Build() over the same entities, after every batch, across all key
// channels (value/token/deletion/gram/numeric/date), the gram tier
// boundaries, and pending-merge thresholds from eager to never.
#include "core/blocking.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/feature_set.h"
#include "rdf/term.h"

namespace alex::core {
namespace {

using rdf::Term;

void AddAttr(PreparedEntity* entity, const std::string& pred,
             const Term& term) {
  PreparedAttribute attr;
  attr.predicate = pred;
  attr.value = PrepareValue(term);
  entity->attributes.push_back(std::move(attr));
}

// Builds `count` entities with 1-3 attributes drawn from `pool`.
// Deterministic in `seed`; entity ids continue the caller's numbering.
std::vector<PreparedEntity> MakeEntities(const std::vector<Term>& pool,
                                         size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<PreparedEntity> entities;
  entities.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    PreparedEntity entity;
    entity.iri = "http://r/x" + std::to_string(i);
    entity.subject = static_cast<rdf::TermId>(i);
    const size_t attrs = 1 + rng.NextBounded(3);
    for (size_t a = 0; a < attrs; ++a) {
      AddAttr(&entity, "p" + std::to_string(rng.NextBounded(3)),
              pool[rng.NextBounded(pool.size())]);
    }
    entities.push_back(std::move(entity));
  }
  return entities;
}

// Value pools per key channel. Near-duplicates are deliberate: blocks must
// actually collide for the differential to exercise non-trivial postings.
std::vector<Term> ValuePool() {
  return {Term::StringLiteral("alpha"), Term::StringLiteral("beta"),
          Term::StringLiteral("gamma"), Term::StringLiteral("Alpha"),
          Term::StringLiteral("")};
}

std::vector<Term> TokenPool() {
  return {Term::StringLiteral("alpha beta gamma"),
          Term::StringLiteral("gamma delta"),
          Term::StringLiteral("beta epsilon zeta"),
          Term::StringLiteral("delta alpha"),
          Term::StringLiteral("zeta eta theta")};
}

std::vector<Term> DeletionPool() {
  // Short tokens within the deletion-variant channel's length cap, at edit
  // distance 1-2 of each other ("smith"/"smyth" share no trigram).
  return {Term::StringLiteral("smith"),  Term::StringLiteral("smyth"),
          Term::StringLiteral("smih"),   Term::StringLiteral("smiith"),
          Term::StringLiteral("jones"),  Term::StringLiteral("jomes"),
          Term::StringLiteral("kay"),    Term::StringLiteral("kai")};
}

std::vector<Term> GramTierPool() {
  // Value lengths straddling both gram tiers of the default options:
  // single_gram_value_length = 12 (11/12/13) and trigram_value_length = 18
  // (17/18/19), plus a long 4-gram-tier value. Perturbed copies keep most
  // grams shared while the whole-value channel misses.
  return {Term::StringLiteral("abcdefghijk"),          // 11
          Term::StringLiteral("abcdefghijkl"),         // 12
          Term::StringLiteral("abcdefghijklm"),        // 13
          Term::StringLiteral("abcdefghiXkl"),         // 12, perturbed
          Term::StringLiteral("qrstuvwxyzabcdefg"),    // 17
          Term::StringLiteral("qrstuvwxyzabcdefgh"),   // 18
          Term::StringLiteral("qrstuvwxyzabcdefghi"),  // 19
          Term::StringLiteral("qrstuvwxyZabcdefgh"),   // 18, perturbed
          Term::StringLiteral("the quick brown fox jumps over"),   // 30
          Term::StringLiteral("the quick brawn fox jumps over")};  // 30
}

std::vector<Term> NumericPool() {
  std::vector<Term> pool;
  for (int64_t v : {0, 1, -1, 9, 10, 11, 99, 100, 101, 999, 1000, 1001,
                    -999, -1000, -1001}) {
    pool.push_back(Term::IntegerLiteral(v));
  }
  return pool;
}

std::vector<Term> DatePool() {
  // Dates hugging bucket boundaries (month and year rollovers).
  return {Term::DateLiteral("1969-12-31"), Term::DateLiteral("1970-01-01"),
          Term::DateLiteral("1970-01-02"), Term::DateLiteral("1999-12-31"),
          Term::DateLiteral("2000-01-01"), Term::DateLiteral("1940-06-15"),
          Term::DateLiteral("2010-06-15")};
}

std::vector<Term> MixedPool() {
  std::vector<Term> pool;
  for (auto maker : {ValuePool, TokenPool, DeletionPool, GramTierPool,
                     NumericPool, DatePool}) {
    std::vector<Term> part = maker();
    pool.insert(pool.end(), part.begin(), part.end());
  }
  return pool;
}

// Asserts the two indexes answer every probe identically: same candidate
// set, same per-cell channel bitmasks.
void ExpectSameProbes(const BlockingIndex& grown, const BlockingIndex& fresh,
                      const std::vector<PreparedEntity>& probes,
                      const std::string& context) {
  ProbeScratch grown_scratch, fresh_scratch;
  for (size_t i = 0; i < probes.size(); i += 5) {
    grown.Probe(probes[i], &grown_scratch);
    fresh.Probe(probes[i], &fresh_scratch);
    ASSERT_EQ(grown_scratch.touched(), fresh_scratch.touched())
        << context << " probe " << i;
    for (uint32_t r : grown_scratch.touched()) {
      ASSERT_EQ(std::memcmp(grown_scratch.cell_channels(r),
                            fresh_scratch.cell_channels(r), kCellCount),
                0)
          << context << " probe " << i << " candidate " << r;
    }
  }
}

// Grows an index batch-by-batch from `base` covered entities and checks it
// against a fresh Build() after EVERY batch. Returns the grown index for
// counter assertions.
BlockingIndex GrowAndCheck(const std::vector<PreparedEntity>& all,
                           size_t base, size_t batch, size_t threshold) {
  sim::SimilarityOptions sim_options;
  BlockingOptions options;
  options.pending_merge_threshold = threshold;

  std::vector<PreparedEntity> covered(all.begin(),
                                      all.begin() + std::min(base, all.size()));
  BlockingIndex grown = BlockingIndex::Build(covered, options, sim_options);
  while (covered.size() < all.size()) {
    const size_t first_new = covered.size();
    const size_t next = std::min(all.size(), first_new + batch);
    covered.insert(covered.end(), all.begin() + first_new, all.begin() + next);
    grown.AddRights(covered, first_new);

    BlockingIndex fresh = BlockingIndex::Build(covered, options, sim_options);
    const std::string context = "threshold " + std::to_string(threshold) +
                                " covered " + std::to_string(covered.size());
    EXPECT_EQ(grown.num_rights(), fresh.num_rights()) << context;
    EXPECT_EQ(grown.posting_count(), fresh.posting_count()) << context;
    EXPECT_EQ(grown.Fingerprint(), fresh.Fingerprint()) << context;
    ExpectSameProbes(grown, fresh, covered, context);
  }
  return grown;
}

constexpr size_t kNeverMerge = size_t{1} << 30;

TEST(BlockingGrowthTest, MixedChannelsMatchFreshBuildAcrossThresholds) {
  std::vector<PreparedEntity> all = MakeEntities(MixedPool(), 90, 0xb10c);
  for (size_t threshold : {size_t{0}, size_t{1}, size_t{32}, kNeverMerge}) {
    GrowAndCheck(all, /*base=*/20, /*batch=*/7, threshold);
  }
}

TEST(BlockingGrowthTest, EveryChannelMatchesFreshBuildThroughGrowth) {
  struct Channel {
    const char* name;
    std::vector<Term> pool;
  };
  const Channel channels[] = {
      {"value", ValuePool()},     {"token", TokenPool()},
      {"deletion", DeletionPool()}, {"gram", GramTierPool()},
      {"numeric", NumericPool()}, {"date", DatePool()},
  };
  for (const Channel& channel : channels) {
    SCOPED_TRACE(channel.name);
    std::vector<PreparedEntity> all =
        MakeEntities(channel.pool, 40, 0x5eed);
    for (size_t threshold : {size_t{0}, kNeverMerge}) {
      BlockingIndex grown = GrowAndCheck(all, /*base=*/8, /*batch=*/5,
                                         threshold);
      EXPECT_GT(grown.posting_count(), 0u);
    }
  }
}

TEST(BlockingGrowthTest, ThresholdsSteerSidecarMerges) {
  std::vector<PreparedEntity> all = MakeEntities(MixedPool(), 80, 0xfeed);

  // Eager merging: the sidecar is folded into the CSR as it grows.
  BlockingIndex eager = GrowAndCheck(all, 10, 10, /*threshold=*/0);
  EXPECT_GT(eager.merge_count(), 0u);

  // Never merging: everything added after the base Build stays pending.
  BlockingIndex never = GrowAndCheck(all, 10, 10, kNeverMerge);
  EXPECT_EQ(never.merge_count(), 0u);
  EXPECT_GT(never.pending_count(), 0u);
}

TEST(BlockingGrowthTest, GrowthFromEmptyIndexMatchesFreshBuild) {
  std::vector<PreparedEntity> all = MakeEntities(MixedPool(), 30, 0xe0);
  sim::SimilarityOptions sim_options;
  BlockingOptions options;
  BlockingIndex grown =
      BlockingIndex::Build(std::vector<PreparedEntity>{}, options, sim_options);
  EXPECT_TRUE(grown.empty());
  grown.AddRights(all, 0);
  BlockingIndex fresh = BlockingIndex::Build(all, options, sim_options);
  EXPECT_EQ(grown.Fingerprint(), fresh.Fingerprint());
  ExpectSameProbes(grown, fresh, all, "from empty");
}

TEST(BlockingGrowthTest, MinRightProbeEqualsRestrictedFullProbe) {
  std::vector<PreparedEntity> all = MakeEntities(MixedPool(), 60, 0x3141);
  sim::SimilarityOptions sim_options;
  BlockingOptions options;
  options.pending_merge_threshold = kNeverMerge;  // keep a live sidecar

  std::vector<PreparedEntity> base(all.begin(), all.begin() + 40);
  BlockingIndex index = BlockingIndex::Build(base, options, sim_options);
  index.AddRights(all, 40);
  ASSERT_GT(index.pending_count(), 0u)
      << "fixture must exercise the pending-sidecar probe path";

  ProbeScratch full_scratch, restricted_scratch;
  for (size_t i = 0; i < all.size(); i += 7) {
    index.Probe(all[i], &full_scratch);
    for (uint32_t min_right : {0u, 10u, 40u, 55u,
                               static_cast<uint32_t>(all.size())}) {
      index.Probe(all[i], &restricted_scratch, min_right);
      std::vector<uint32_t> expected;
      for (uint32_t r : full_scratch.touched()) {
        if (r >= min_right) expected.push_back(r);
      }
      ASSERT_EQ(restricted_scratch.touched(), expected)
          << "probe " << i << " min_right " << min_right;
      for (uint32_t r : expected) {
        ASSERT_EQ(std::memcmp(restricted_scratch.cell_channels(r),
                              full_scratch.cell_channels(r), kCellCount),
                  0)
            << "probe " << i << " min_right " << min_right << " candidate "
            << r;
      }
    }
  }
}

TEST(BlockingGrowthTest, CandidatesAgreeAfterGrowth) {
  std::vector<PreparedEntity> all = MakeEntities(MixedPool(), 50, 0x777);
  sim::SimilarityOptions sim_options;
  BlockingOptions options;
  options.pending_merge_threshold = 1;

  std::vector<PreparedEntity> base(all.begin(), all.begin() + 25);
  BlockingIndex grown = BlockingIndex::Build(base, options, sim_options);
  grown.AddRights(all, 25);
  BlockingIndex fresh = BlockingIndex::Build(all, options, sim_options);

  ProbeScratch scratch;
  std::vector<uint32_t> grown_out, fresh_out;
  std::vector<uint8_t> grown_channels, fresh_channels;
  for (size_t i = 0; i < all.size(); i += 3) {
    grown.Candidates(all[i], &scratch, &grown_out, &grown_channels);
    fresh.Candidates(all[i], &scratch, &fresh_out, &fresh_channels);
    ASSERT_EQ(grown_out, fresh_out) << "probe " << i;
    ASSERT_EQ(grown_channels, fresh_channels) << "probe " << i;
    EXPECT_TRUE(std::is_sorted(grown_out.begin(), grown_out.end()));
  }
}

}  // namespace
}  // namespace alex::core
