#include "core/rollback_log.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace alex::core {
namespace {

TEST(RollbackLogTest, ParentsTracked) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5, 6, 7});
  EXPECT_EQ(log.ParentsOf(5).size(), 1u);
  EXPECT_EQ(log.ParentsOf(5)[0], (StateAction{1, 10}));
  EXPECT_TRUE(log.ParentsOf(99).empty());
}

TEST(RollbackLogTest, MultipleGenerators) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5});
  log.RecordGeneration({2, 20}, {5});
  EXPECT_EQ(log.ParentsOf(5).size(), 2u);
}

TEST(RollbackLogTest, AncestorsWalkTheChain) {
  // s1 --a1--> s2 --a2--> s3: feedback on s3 reaches both generators
  // (the paper's return-propagation example in §4.4.1).
  RollbackLog log;
  log.RecordGeneration({1, 10}, {2});
  log.RecordGeneration({2, 20}, {3});
  std::vector<StateAction> ancestors = log.AncestorsOf(3);
  ASSERT_EQ(ancestors.size(), 2u);
  EXPECT_NE(std::find(ancestors.begin(), ancestors.end(),
                      (StateAction{2, 20})),
            ancestors.end());
  EXPECT_NE(std::find(ancestors.begin(), ancestors.end(),
                      (StateAction{1, 10})),
            ancestors.end());
}

TEST(RollbackLogTest, AncestorsHandleCycles) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {2});
  log.RecordGeneration({2, 20}, {1});  // cycle
  std::vector<StateAction> ancestors = log.AncestorsOf(1);
  EXPECT_EQ(ancestors.size(), 2u);  // terminates, visits each SA once
}

TEST(RollbackLogTest, AncestorsOfRoot) {
  RollbackLog log;
  EXPECT_TRUE(log.AncestorsOf(42).empty());
}

TEST(RollbackLogTest, NegativeThresholdFires) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5, 6});
  EXPECT_TRUE(log.AddNegative(5, 3).empty());
  EXPECT_TRUE(log.AddNegative(6, 3).empty());
  std::vector<StateAction> fired = log.AddNegative(5, 3);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], (StateAction{1, 10}));
}

TEST(RollbackLogTest, CounterResetsAfterFiring) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5});
  log.AddNegative(5, 2);
  EXPECT_EQ(log.AddNegative(5, 2).size(), 1u);  // second hit fires
  EXPECT_TRUE(log.AddNegative(5, 2).empty());   // counter was reset
}

TEST(RollbackLogTest, TakeGeneratedReturnsAndClears) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5, 6});
  log.RecordGeneration({1, 10}, {7});  // same generator, appended
  std::vector<PairId> generated = log.TakeGenerated({1, 10});
  std::sort(generated.begin(), generated.end());
  EXPECT_EQ(generated, (std::vector<PairId>{5, 6, 7}));
  EXPECT_TRUE(log.TakeGenerated({1, 10}).empty());
}

TEST(RollbackLogTest, TakeGeneratedDetachesParents) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5});
  log.RecordGeneration({2, 20}, {5});
  log.TakeGenerated({1, 10});
  ASSERT_EQ(log.ParentsOf(5).size(), 1u);
  EXPECT_EQ(log.ParentsOf(5)[0], (StateAction{2, 20}));
  // Negative feedback after the rollback is attributed only to the
  // remaining generator.
  std::vector<StateAction> fired = log.AddNegative(5, 1);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], (StateAction{2, 20}));
}

TEST(RollbackLogTest, EmptyGenerationIgnored) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {});
  EXPECT_EQ(log.generation_count(), 0u);
  EXPECT_TRUE(log.TakeGenerated({1, 10}).empty());
}

TEST(RollbackLogTest, NegativeOnUnknownPairIsNoop) {
  RollbackLog log;
  EXPECT_TRUE(log.AddNegative(123, 1).empty());
}

}  // namespace
}  // namespace alex::core
