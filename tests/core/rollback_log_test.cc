#include "core/rollback_log.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/alex_engine.h"
#include "core/feature_space.h"

namespace alex::core {
namespace {

TEST(RollbackLogTest, ParentsTracked) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5, 6, 7});
  EXPECT_EQ(log.ParentsOf(5).size(), 1u);
  EXPECT_EQ(log.ParentsOf(5)[0], (StateAction{1, 10}));
  EXPECT_TRUE(log.ParentsOf(99).empty());
}

TEST(RollbackLogTest, MultipleGenerators) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5});
  log.RecordGeneration({2, 20}, {5});
  EXPECT_EQ(log.ParentsOf(5).size(), 2u);
}

TEST(RollbackLogTest, AncestorsWalkTheChain) {
  // s1 --a1--> s2 --a2--> s3: feedback on s3 reaches both generators
  // (the paper's return-propagation example in §4.4.1).
  RollbackLog log;
  log.RecordGeneration({1, 10}, {2});
  log.RecordGeneration({2, 20}, {3});
  std::vector<StateAction> ancestors = log.AncestorsOf(3);
  ASSERT_EQ(ancestors.size(), 2u);
  EXPECT_NE(std::find(ancestors.begin(), ancestors.end(),
                      (StateAction{2, 20})),
            ancestors.end());
  EXPECT_NE(std::find(ancestors.begin(), ancestors.end(),
                      (StateAction{1, 10})),
            ancestors.end());
}

TEST(RollbackLogTest, AncestorsHandleCycles) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {2});
  log.RecordGeneration({2, 20}, {1});  // cycle
  std::vector<StateAction> ancestors = log.AncestorsOf(1);
  EXPECT_EQ(ancestors.size(), 2u);  // terminates, visits each SA once
}

TEST(RollbackLogTest, AncestorsOfRoot) {
  RollbackLog log;
  EXPECT_TRUE(log.AncestorsOf(42).empty());
}

TEST(RollbackLogTest, NegativeThresholdFires) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5, 6});
  EXPECT_TRUE(log.AddNegative(5, 3).empty());
  EXPECT_TRUE(log.AddNegative(6, 3).empty());
  std::vector<StateAction> fired = log.AddNegative(5, 3);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], (StateAction{1, 10}));
}

TEST(RollbackLogTest, CounterResetsAfterFiring) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5});
  log.AddNegative(5, 2);
  EXPECT_EQ(log.AddNegative(5, 2).size(), 1u);  // second hit fires
  EXPECT_TRUE(log.AddNegative(5, 2).empty());   // counter was reset
}

TEST(RollbackLogTest, TakeGeneratedReturnsAndClears) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5, 6});
  log.RecordGeneration({1, 10}, {7});  // same generator, appended
  std::vector<PairId> generated = log.TakeGenerated({1, 10});
  std::sort(generated.begin(), generated.end());
  EXPECT_EQ(generated, (std::vector<PairId>{5, 6, 7}));
  EXPECT_TRUE(log.TakeGenerated({1, 10}).empty());
}

TEST(RollbackLogTest, TakeGeneratedDetachesParents) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {5});
  log.RecordGeneration({2, 20}, {5});
  log.TakeGenerated({1, 10});
  ASSERT_EQ(log.ParentsOf(5).size(), 1u);
  EXPECT_EQ(log.ParentsOf(5)[0], (StateAction{2, 20}));
  // Negative feedback after the rollback is attributed only to the
  // remaining generator.
  std::vector<StateAction> fired = log.AddNegative(5, 1);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], (StateAction{2, 20}));
}

TEST(RollbackLogTest, EmptyGenerationIgnored) {
  RollbackLog log;
  log.RecordGeneration({1, 10}, {});
  EXPECT_EQ(log.generation_count(), 0u);
  EXPECT_TRUE(log.TakeGenerated({1, 10}).empty());
}

TEST(RollbackLogTest, NegativeOnUnknownPairIsNoop) {
  RollbackLog log;
  EXPECT_TRUE(log.AddNegative(123, 1).empty());
}

// ---- RollbackLog × incremental frontier indexes ----------------------
//
// A rollback undoes a multi-link exploration action by removing its
// generated candidates; after the next space sync, the partition's
// explorable frontier must be EXACTLY what it was before the action —
// verified by FeatureSpace::Fingerprint().

class RollbackFingerprintTest : public ::testing::Test {
 protected:
  RollbackFingerprintTest() : left_("l"), right_("r") {
    // Identical names: every cross pair scores 1.0 on the name feature, so
    // one positive feedback generates every other pair in one action.
    for (int i = 0; i < 5; ++i) {
      left_.Add(rdf::Term::Iri("http://l/e" + std::to_string(i)),
                rdf::Term::Iri("http://l/name"),
                rdf::Term::StringLiteral("Ada Lovelace"));
    }
    for (int i = 0; i < 4; ++i) {
      right_.Add(rdf::Term::Iri("http://r/x" + std::to_string(i)),
                 rdf::Term::Iri("http://r/label"),
                 rdf::Term::StringLiteral("Ada Lovelace"));
    }
  }

  PartitionAlex MakePartition(uint64_t seed = 7) {
    FeatureSpace space =
        FeatureSpace::Build(left_, left_.Subjects(), right_,
                            right_.Subjects(), &catalog_, options_.space);
    return PartitionAlex(std::move(space), &options_, seed);
  }

  // Episode-boundary sync exactly as the engine performs it: fold the
  // epoch delta into the space, then consume it.
  static void Sync(PartitionAlex* part) {
    part->SyncSpaceToCandidates();
    part->mutable_candidates().TakeEpochChanges();
  }

  // Smallest candidate pair other than `seed` (a deterministic victim).
  static PairId PickGenerated(const PartitionAlex& part, PairId seed) {
    PairId victim = kInvalidPairId;
    for (PairId pair : part.candidates().items()) {
      if (pair != seed && pair < victim) victim = pair;
    }
    return victim;
  }

  rdf::TripleStore left_;
  rdf::TripleStore right_;
  FeatureCatalog catalog_;
  AlexOptions options_;  // rollback_threshold = 3 (default)
};

TEST_F(RollbackFingerprintTest, RollbackRestoresPreActionFingerprint) {
  PartitionAlex part = MakePartition();
  PairId seed = part.space().FindPair("http://l/e0", "http://r/x0");
  ASSERT_NE(seed, kInvalidPairId);
  part.AddInitialCandidate(seed);
  Sync(&part);
  const uint64_t pre_action = part.space().Fingerprint();

  part.BeginEpisode();
  PartitionAlex::FeedbackOutcome outcome = part.ProcessFeedback(seed, true);
  ASSERT_GE(outcome.added, 2u) << "needs a multi-link action";
  Sync(&part);
  EXPECT_NE(part.space().Fingerprint(), pre_action)
      << "generated links must leave the frontier";

  PairId victim = PickGenerated(part, seed);
  ASSERT_NE(victim, kInvalidPairId);
  size_t rollbacks = 0;
  for (int strike = 0; strike < options_.rollback_threshold; ++strike) {
    rollbacks += part.ProcessFeedback(victim, false).rollbacks;
  }
  ASSERT_EQ(rollbacks, 1u);
  ASSERT_EQ(part.candidates().size(), 1u);  // only the seed survives
  Sync(&part);
  EXPECT_EQ(part.space().Fingerprint(), pre_action);
}

TEST_F(RollbackFingerprintTest, RestoresFingerprintAcrossMidEpisodeSyncs) {
  // Sync after EVERY feedback item with eager compaction, so the rollback's
  // resurrections hit compacted buckets (the pending-buffer path).
  options_.space.compaction_threshold = 0;
  PartitionAlex part = MakePartition();
  PairId seed = part.space().FindPair("http://l/e0", "http://r/x0");
  ASSERT_NE(seed, kInvalidPairId);
  part.AddInitialCandidate(seed);
  Sync(&part);
  const uint64_t pre_action = part.space().Fingerprint();

  part.BeginEpisode();
  ASSERT_GE(part.ProcessFeedback(seed, true).added, 2u);
  Sync(&part);
  PairId victim = PickGenerated(part, seed);
  size_t rollbacks = 0;
  for (int strike = 0; strike < options_.rollback_threshold; ++strike) {
    rollbacks += part.ProcessFeedback(victim, false).rollbacks;
    Sync(&part);
  }
  ASSERT_EQ(rollbacks, 1u);
  EXPECT_GT(part.space().compaction_count(), 0u);
  EXPECT_EQ(part.space().Fingerprint(), pre_action);
}

TEST_F(RollbackFingerprintTest, ConfirmedLinkSurvivesRollbackInFrontier) {
  PartitionAlex part = MakePartition();
  PairId seed = part.space().FindPair("http://l/e0", "http://r/x0");
  PairId kept = part.space().FindPair("http://l/e1", "http://r/x1");
  ASSERT_NE(seed, kInvalidPairId);
  ASSERT_NE(kept, kInvalidPairId);
  part.AddInitialCandidate(seed);
  Sync(&part);
  const uint64_t pre_action = part.space().Fingerprint();

  part.BeginEpisode();
  ASSERT_GE(part.ProcessFeedback(seed, true).added, 2u);
  ASSERT_TRUE(part.candidates().Contains(kept));
  part.ProcessFeedback(kept, true);  // user confirms this generated link
  PairId victim = kInvalidPairId;
  for (PairId pair : part.candidates().items()) {
    if (pair != seed && pair != kept && pair < victim) victim = pair;
  }
  ASSERT_NE(victim, kInvalidPairId);
  size_t rollbacks = 0;
  for (int strike = 0; strike < options_.rollback_threshold; ++strike) {
    rollbacks += part.ProcessFeedback(victim, false).rollbacks;
  }
  ASSERT_EQ(rollbacks, 1u);
  Sync(&part);
  // The confirmed link stays a candidate, so the fingerprint differs from
  // the pre-action frontier by exactly that link.
  EXPECT_EQ(part.candidates().size(), 2u);
  EXPECT_FALSE(part.space().IsLive(kept));
  EXPECT_NE(part.space().Fingerprint(), pre_action);
  part.mutable_candidates().Remove(kept);
  Sync(&part);
  EXPECT_EQ(part.space().Fingerprint(), pre_action);
}

TEST_F(RollbackFingerprintTest, IncrementalMatchesRebuildUnderRollback) {
  // Two identically-seeded partitions, one maintaining its frontier with
  // ApplyDelta, one rebuilding from liveness flags, driven through the
  // same explore-confirm-rollback sequence: fingerprints agree at every
  // sync point.
  AlexOptions rebuild_options = options_;
  rebuild_options.incremental_space_maintenance = false;
  FeatureSpace inc_space =
      FeatureSpace::Build(left_, left_.Subjects(), right_, right_.Subjects(),
                          &catalog_, options_.space);
  FeatureSpace reb_space =
      FeatureSpace::Build(left_, left_.Subjects(), right_, right_.Subjects(),
                          &catalog_, rebuild_options.space);
  PartitionAlex inc(std::move(inc_space), &options_, 7);
  PartitionAlex reb(std::move(reb_space), &rebuild_options, 7);

  PairId seed = inc.space().FindPair("http://l/e0", "http://r/x0");
  ASSERT_NE(seed, kInvalidPairId);
  for (PartitionAlex* part : {&inc, &reb}) {
    part->AddInitialCandidate(seed);
    Sync(part);
    part->BeginEpisode();
    ASSERT_GE(part->ProcessFeedback(seed, true).added, 2u);
    Sync(part);
  }
  ASSERT_EQ(inc.space().Fingerprint(), reb.space().Fingerprint());
  PairId victim = PickGenerated(inc, seed);
  ASSERT_EQ(victim, PickGenerated(reb, seed));
  for (int strike = 0; strike < options_.rollback_threshold; ++strike) {
    inc.ProcessFeedback(victim, false);
    reb.ProcessFeedback(victim, false);
    Sync(&inc);
    Sync(&reb);
    EXPECT_EQ(inc.space().Fingerprint(), reb.space().Fingerprint());
  }
}

}  // namespace
}  // namespace alex::core
