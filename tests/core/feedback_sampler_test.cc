#include "core/feedback_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"

namespace alex::core {
namespace {

TEST(FeedbackSamplerTest, EmptySamplerReturnsInvalid) {
  FeedbackSampler sampler;
  Rng rng(1);
  EXPECT_EQ(sampler.Sample(&rng), kInvalidPairId);
  EXPECT_TRUE(sampler.empty());
}

TEST(FeedbackSamplerTest, AddRemoveContains) {
  FeedbackSampler sampler;
  sampler.Add(7, 0.5);
  sampler.Add(9, 0.9);
  EXPECT_EQ(sampler.size(), 2u);
  EXPECT_TRUE(sampler.Contains(7));
  sampler.Remove(7);
  EXPECT_FALSE(sampler.Contains(7));
  EXPECT_EQ(sampler.Weight(7), 0.0);
  EXPECT_EQ(sampler.size(), 1u);
  // Re-adding a removed pair starts a fresh tally.
  sampler.Add(7, 0.5);
  EXPECT_TRUE(sampler.Contains(7));
  // Duplicate adds and removes of absentees are no-ops.
  sampler.Add(7, 0.1);
  sampler.Remove(1234);
  EXPECT_EQ(sampler.size(), 2u);
}

TEST(FeedbackSamplerTest, WeightsFollowEntropyAndProximity) {
  FeedbackSamplerOptions options;
  options.theta = 0.3;
  options.min_weight = 1e-3;
  FeedbackSampler sampler(options);
  // Fresh pair at the boundary: full entropy (1.0) * full proximity (1.0).
  sampler.Add(1, 0.3);
  EXPECT_NEAR(sampler.Weight(1), 1.0, 1e-12);
  // Fresh pair with a perfect score: proximity 0 → floored at min_weight.
  sampler.Add(2, 1.0);
  EXPECT_NEAR(sampler.Weight(2), 1e-3, 1e-12);
  // Midway score: proximity (1 - (0.65-0.3)/0.7) = 0.5.
  sampler.Add(3, 0.65);
  EXPECT_NEAR(sampler.Weight(3), 0.5, 1e-12);
  // Unanimous feedback kills the entropy term → floor.
  sampler.RecordFeedback(1, true);
  sampler.RecordFeedback(1, true);
  EXPECT_NEAR(sampler.Weight(1), 1e-3, 1e-12);
  // A split tally restores full entropy.
  sampler.RecordFeedback(1, false);
  sampler.RecordFeedback(1, false);
  EXPECT_NEAR(sampler.Weight(1), 1.0, 1e-12);
  // Entropy of a 3:1 split is ~0.811.
  sampler.RecordFeedback(3, true);
  sampler.RecordFeedback(3, true);
  sampler.RecordFeedback(3, true);
  sampler.RecordFeedback(3, false);
  EXPECT_NEAR(sampler.Weight(3), 0.5 * 0.811278124, 1e-6);
}

TEST(FeedbackSamplerTest, SamplingIsDeterministicGivenSeed) {
  auto build = [] {
    FeedbackSampler sampler;
    for (PairId p = 0; p < 50; ++p) {
      sampler.Add(p, 0.3 + 0.01 * static_cast<double>(p));
    }
    return sampler;
  };
  FeedbackSampler a = build();
  FeedbackSampler b = build();
  Rng rng_a(7);
  Rng rng_b(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Sample(&rng_a), b.Sample(&rng_b));
  }
}

TEST(FeedbackSamplerTest, WeightedArmPrefersUncertainPairs) {
  FeedbackSamplerOptions options;
  options.uniform_mix = 0.0;  // isolate the weighted arm
  options.theta = 0.3;
  FeedbackSampler sampler(options);
  sampler.Add(1, 0.3);  // weight 1.0
  sampler.Add(2, 1.0);  // weight min_weight (1e-3)
  Rng rng(11);
  std::map<PairId, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[sampler.Sample(&rng)];
  // P(2) = 1e-3 / 1.001 — a handful of draws at most.
  EXPECT_GT(counts[1], 4900);
  EXPECT_LT(counts[2], 100);
}

TEST(FeedbackSamplerTest, UniformMixFloorStatistics) {
  // With uniform_mix = 0.25 and one dominant-weight pair, the low-weight
  // pairs must still collectively receive about uniform_mix * (n-1)/n of
  // the draws — the floor that keeps prioritization from starving links.
  FeedbackSamplerOptions options;
  options.uniform_mix = 0.25;
  options.theta = 0.3;
  FeedbackSampler sampler(options);
  sampler.Add(0, 0.3);  // weight 1.0: takes nearly every weighted draw
  const size_t n = 10;
  for (PairId p = 1; p < n; ++p) sampler.Add(p, 1.0);  // floor weights
  Rng rng(23);
  const int draws = 40000;
  int low_weight_hits = 0;
  for (int i = 0; i < draws; ++i) {
    if (sampler.Sample(&rng) != 0) ++low_weight_hits;
  }
  // Expected ≈ uniform_mix * 9/10 + weighted-arm leakage (~0.9%) ≈ 0.232.
  const double fraction =
      static_cast<double>(low_weight_hits) / static_cast<double>(draws);
  EXPECT_GT(fraction, 0.19);
  EXPECT_LT(fraction, 0.28);
  // The mix accounting matches the configured floor.
  const double uniform_fraction =
      static_cast<double>(sampler.uniform_draws()) /
      static_cast<double>(sampler.uniform_draws() +
                          sampler.weighted_draws());
  EXPECT_NEAR(uniform_fraction, 0.25, 0.02);
}

TEST(FeedbackSamplerTest, TotalWeightSurvivesChurn) {
  // Fenwick bookkeeping under heavy add/remove/reweight churn: the scalar
  // total must track the exact sum of live weights.
  FeedbackSampler sampler;
  Rng rng(5);
  std::map<PairId, bool> live;
  for (int step = 0; step < 5000; ++step) {
    PairId p = static_cast<PairId>(rng.NextBounded(200));
    switch (rng.NextBounded(3)) {
      case 0:
        sampler.Add(p, 0.3 + 0.7 * rng.NextDouble());
        live[p] = true;
        break;
      case 1:
        sampler.Remove(p);
        live[p] = false;
        break;
      default:
        sampler.RecordFeedback(p, rng.NextBool(0.5));
        break;
    }
  }
  double expected = 0.0;
  size_t expected_size = 0;
  for (const auto& [pair, is_live] : live) {
    if (!is_live) continue;
    ++expected_size;
    expected += sampler.Weight(pair);
  }
  EXPECT_EQ(sampler.size(), expected_size);
  EXPECT_NEAR(sampler.total_weight(), expected, 1e-9);
  // Sampling still lands on live pairs only.
  for (int i = 0; i < 500; ++i) {
    PairId drawn = sampler.Sample(&rng);
    ASSERT_TRUE(live.count(drawn) > 0 && live[drawn]);
  }
}

TEST(FeedbackSamplerTest, ClearDropsEverything) {
  FeedbackSampler sampler;
  for (PairId p = 0; p < 20; ++p) sampler.Add(p, 0.5);
  sampler.Clear();
  EXPECT_TRUE(sampler.empty());
  EXPECT_EQ(sampler.total_weight(), 0.0);
  Rng rng(3);
  EXPECT_EQ(sampler.Sample(&rng), kInvalidPairId);
  sampler.Add(4, 0.4);
  EXPECT_EQ(sampler.Sample(&rng), 4u);
}

}  // namespace
}  // namespace alex::core
