#include "core/policy.h"

#include <gtest/gtest.h>

#include <map>

namespace alex::core {
namespace {

FeatureSet MakeActions(std::initializer_list<std::pair<FeatureId, double>>
                           features) {
  FeatureSet set;
  for (const auto& [id, score] : features) set.SetMax(id, score);
  return set;
}

TEST(PolicyTest, UnimprovedStateChoosesUniformly) {
  EpsilonGreedyPolicy policy(0.1);
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.6}, {3, 0.7}});
  Rng rng(1);
  std::map<FeatureId, int> counts;
  const int draws = 30000;
  for (int i = 0; i < draws; ++i) {
    ++counts[policy.ChooseAction(7, actions, &rng)];
  }
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [id, count] : counts) {
    EXPECT_NEAR(count, draws / 3, draws * 0.02) << "action " << id;
  }
}

TEST(PolicyTest, GreedyActionDominatesAfterImprovement) {
  EpsilonGreedyPolicy policy(0.1);
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.6}, {3, 0.7}});
  policy.SetGreedy(7, 2);
  Rng rng(2);
  std::map<FeatureId, int> counts;
  const int draws = 30000;
  for (int i = 0; i < draws; ++i) {
    ++counts[policy.ChooseAction(7, actions, &rng)];
  }
  // P(greedy) = 1 - ε + ε/|A| ≈ 0.9333.
  EXPECT_NEAR(counts[2], draws * (0.9 + 0.1 / 3.0), draws * 0.02);
  // Non-greedy actions each get ε/|A| ≈ 0.0333 > 0: continuous exploration.
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[3], 0);
  EXPECT_NEAR(counts[1], draws * 0.1 / 3.0, draws * 0.02);
}

TEST(PolicyTest, ActionProbabilityUnimproved) {
  EpsilonGreedyPolicy policy(0.1);
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.6}});
  EXPECT_DOUBLE_EQ(policy.ActionProbability(3, actions, 1), 0.5);
  EXPECT_DOUBLE_EQ(policy.ActionProbability(3, actions, 2), 0.5);
  EXPECT_DOUBLE_EQ(policy.ActionProbability(3, actions, 99), 0.0);
}

TEST(PolicyTest, ActionProbabilityGreedy) {
  EpsilonGreedyPolicy policy(0.2);
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.6}, {3, 0.1},
                                    {4, 0.9}});
  policy.SetGreedy(5, 4);
  // Greedy: 1 - ε + ε/|A| = 0.8 + 0.05.
  EXPECT_DOUBLE_EQ(policy.ActionProbability(5, actions, 4), 0.85);
  // Others: ε/|A| = 0.05.
  EXPECT_DOUBLE_EQ(policy.ActionProbability(5, actions, 1), 0.05);
  // Probabilities sum to 1.
  double total = 0.0;
  for (FeatureId a : {1, 2, 3, 4}) {
    total += policy.ActionProbability(5, actions, a);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PolicyTest, EveryActionHasNonZeroProbability) {
  // π(s, a) ≥ ε/|A(s)| > 0 (§4.4.1) — the Monte Carlo method requires it.
  EpsilonGreedyPolicy policy(0.05);
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.6}, {3, 0.7},
                                    {4, 0.8}});
  policy.SetGreedy(1, 1);
  for (FeatureId a : {1, 2, 3, 4}) {
    EXPECT_GE(policy.ActionProbability(1, actions, a),
              0.05 / 4.0 - 1e-12);
  }
}

TEST(PolicyTest, GreedyActionAccessor) {
  EpsilonGreedyPolicy policy(0.1);
  EXPECT_FALSE(policy.GreedyAction(1).has_value());
  policy.SetGreedy(1, 42);
  ASSERT_TRUE(policy.GreedyAction(1).has_value());
  EXPECT_EQ(*policy.GreedyAction(1), 42u);
  EXPECT_EQ(policy.improved_state_count(), 1u);
}

TEST(PolicyTest, ImprovementOverwrites) {
  EpsilonGreedyPolicy policy(0.1);
  policy.SetGreedy(1, 42);
  policy.SetGreedy(1, 43);
  EXPECT_EQ(*policy.GreedyAction(1), 43u);
  EXPECT_EQ(policy.improved_state_count(), 1u);
}

TEST(PolicyTest, StatesAreIndependent) {
  EpsilonGreedyPolicy policy(0.0);  // fully greedy for determinism
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.6}});
  policy.SetGreedy(10, 1);
  policy.SetGreedy(20, 2);
  Rng rng(3);
  EXPECT_EQ(policy.ChooseAction(10, actions, &rng), 1u);
  EXPECT_EQ(policy.ChooseAction(20, actions, &rng), 2u);
}

TEST(PolicyTest, SingleActionState) {
  EpsilonGreedyPolicy policy(0.5);
  FeatureSet actions = MakeActions({{9, 0.8}});
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.ChooseAction(1, actions, &rng), 9u);
  }
  EXPECT_DOUBLE_EQ(policy.ActionProbability(1, actions, 9), 1.0);
}

}  // namespace
}  // namespace alex::core
