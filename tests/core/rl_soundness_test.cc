// Empirical checks of the soundness claims in §5: alternating first-visit
// Monte-Carlo policy evaluation and ε-greedy policy improvement converges
// to a policy whose value dominates the arbitrary starting policy, on a toy
// controlled environment where the true action values are known.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/mc_learner.h"
#include "core/policy.h"

namespace alex::core {
namespace {

FeatureSet MakeActions(std::initializer_list<std::pair<FeatureId, double>>
                           features) {
  FeatureSet set;
  for (const auto& [id, score] : features) set.SetMax(id, score);
  return set;
}

// A toy environment: one state with three actions whose rewards are
// Bernoulli with known means. This mirrors ALEX's situation at one link:
// each feature-exploration action yields some expected return (fraction of
// correct links in its band).
struct ToyEnvironment {
  std::map<FeatureId, double> expected_reward;
  Rng rng{12345};

  double Sample(FeatureId action) {
    return rng.NextBool(expected_reward.at(action)) ? 1.0 : -1.0;
  }
};

TEST(RlSoundnessTest, QEstimatesConvergeToExpectedReturns) {
  ToyEnvironment env;
  env.expected_reward = {{1, 0.9}, {2, 0.5}, {3, 0.1}};
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.5}, {3, 0.5}});
  McLearner learner;
  EpsilonGreedyPolicy policy(0.1);
  Rng rng(6);
  const PairId state = 0;
  for (int step = 0; step < 20000; ++step) {
    FeatureId action = policy.ChooseAction(state, actions, &rng);
    learner.AppendReturn({state, action}, env.Sample(action));
  }
  // E[reward] for p(success)=p is 2p-1.
  EXPECT_NEAR(learner.Q({state, 1}), 0.8, 0.05);
  EXPECT_NEAR(learner.Q({state, 2}), 0.0, 0.05);
  EXPECT_NEAR(learner.Q({state, 3}), -0.8, 0.05);
}

TEST(RlSoundnessTest, PolicyIterationFindsTheBestAction) {
  // Algorithm 1's loop: evaluate under the current policy for an episode,
  // improve greedily, repeat. The greedy action must end up on the best
  // arm regardless of the arbitrary start.
  ToyEnvironment env;
  env.expected_reward = {{1, 0.2}, {2, 0.85}, {3, 0.4}};
  FeatureSet actions = MakeActions({{1, 0.9}, {2, 0.3}, {3, 0.6}});
  McLearner learner;
  EpsilonGreedyPolicy policy(0.1);
  Rng rng(7);
  const PairId state = 0;
  for (int episode = 0; episode < 30; ++episode) {
    learner.BeginEpisode();
    for (int item = 0; item < 200; ++item) {
      FeatureId action = policy.ChooseAction(state, actions, &rng);
      learner.AppendReturn({state, action}, env.Sample(action));
    }
    for (PairId s : learner.TakeStatesToImprove()) {
      FeatureId best = learner.ArgmaxAction(s, actions);
      ASSERT_NE(best, kInvalidFeatureId);
      policy.SetGreedy(s, best);
    }
  }
  ASSERT_TRUE(policy.GreedyAction(state).has_value());
  EXPECT_EQ(*policy.GreedyAction(state), 2u);
}

TEST(RlSoundnessTest, ImprovedPolicyDominatesArbitraryPolicy) {
  // V^π'(s) >= V^π(s) (Equation 14): the learned ε-greedy policy collects
  // at least the expected reward of the uniform starting policy.
  ToyEnvironment env;
  env.expected_reward = {{1, 0.7}, {2, 0.3}, {3, 0.5}, {4, 0.1}};
  FeatureSet actions =
      MakeActions({{1, 0.5}, {2, 0.5}, {3, 0.5}, {4, 0.5}});
  const PairId state = 0;

  auto value_of = [&](EpsilonGreedyPolicy& policy, uint64_t seed) {
    Rng rng(seed);
    ToyEnvironment eval_env = env;
    eval_env.rng.Reseed(seed + 1);
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      total += eval_env.Sample(policy.ChooseAction(state, actions, &rng));
    }
    return total / n;
  };

  EpsilonGreedyPolicy uniform(0.1);  // never improved -> arbitrary/uniform
  double v_uniform = value_of(uniform, 11);

  EpsilonGreedyPolicy learned(0.1);
  McLearner learner;
  Rng rng(13);
  for (int episode = 0; episode < 20; ++episode) {
    learner.BeginEpisode();
    for (int item = 0; item < 200; ++item) {
      FeatureId action = learned.ChooseAction(state, actions, &rng);
      learner.AppendReturn({state, action}, env.Sample(action));
    }
    for (PairId s : learner.TakeStatesToImprove()) {
      learned.SetGreedy(s, learner.ArgmaxAction(s, actions));
    }
  }
  double v_learned = value_of(learned, 17);
  EXPECT_GT(v_learned, v_uniform);
  // The learned value approaches the optimal arm's value (2*0.7-1 = 0.4)
  // up to the ε exploration tax.
  EXPECT_GT(v_learned, 0.3);
}

TEST(RlSoundnessTest, ContinuousExplorationRevisitsEveryAction) {
  // π(s,a) >= ε/|A(s)| > 0 for all actions (§4.4.1): over a long run every
  // action is tried, so a changed environment can be re-learned.
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.5}, {3, 0.5}});
  EpsilonGreedyPolicy policy(0.05);
  policy.SetGreedy(0, 1);
  Rng rng(19);
  std::map<FeatureId, int> counts;
  for (int i = 0; i < 30000; ++i) {
    ++counts[policy.ChooseAction(0, actions, &rng)];
  }
  for (FeatureId a : {1, 2, 3}) {
    EXPECT_GT(counts[a], 0) << "action " << a << " never tried";
  }
  // Non-greedy actions are each taken with probability ε/|A| ≈ 1.67%.
  EXPECT_NEAR(counts[2], 30000 * 0.05 / 3, 200);
}

TEST(RlSoundnessTest, RelearnsAfterEnvironmentShift) {
  // The candidate-link environment is non-stationary (bands get cleaned by
  // blacklisting); continuous exploration lets the policy recover when the
  // best action changes.
  ToyEnvironment env;
  env.expected_reward = {{1, 0.9}, {2, 0.2}};
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.5}});
  McLearner learner;
  EpsilonGreedyPolicy policy(0.2);
  Rng rng(23);
  const PairId state = 0;
  auto train = [&](int episodes) {
    for (int e = 0; e < episodes; ++e) {
      learner.BeginEpisode();
      for (int i = 0; i < 100; ++i) {
        FeatureId action = policy.ChooseAction(state, actions, &rng);
        learner.AppendReturn({state, action}, env.Sample(action));
      }
      for (PairId s : learner.TakeStatesToImprove()) {
        policy.SetGreedy(s, learner.ArgmaxAction(s, actions));
      }
    }
  };
  train(10);
  EXPECT_EQ(*policy.GreedyAction(state), 1u);
  // Invert the environment; averages must eventually cross over.
  env.expected_reward = {{1, 0.05}, {2, 0.95}};
  train(200);
  EXPECT_EQ(*policy.GreedyAction(state), 2u);
}

}  // namespace
}  // namespace alex::core
