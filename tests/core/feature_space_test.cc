#include "core/feature_space.h"

#include <cmath>

#include <gtest/gtest.h>

namespace alex::core {
namespace {

using rdf::Term;
using rdf::TripleStore;

class FeatureSpaceTest : public ::testing::Test {
 protected:
  FeatureSpaceTest() : left_("l"), right_("r") {
    // Three left entities, two right entities; e0/x0 and e1/x1 match.
    AddEntity(&left_, "http://l/e0", "http://l/name", "Ada Lovelace");
    AddEntity(&left_, "http://l/e1", "http://l/name", "Alan Turing");
    AddEntity(&left_, "http://l/e2", "http://l/name", "Completely Other");
    AddEntity(&right_, "http://r/x0", "http://r/label", "Ada Lovelace");
    AddEntity(&right_, "http://r/x1", "http://r/label", "Alan Turing");
  }

  static void AddEntity(TripleStore* store, const char* iri,
                        const char* pred, const char* name) {
    store->Add(Term::Iri(iri), Term::Iri(pred), Term::StringLiteral(name));
  }

  FeatureSpace Build(double theta = 0.3) {
    FeatureSpaceOptions options;
    options.theta = theta;
    return FeatureSpace::Build(left_, left_.Subjects(), right_,
                               right_.Subjects(), &catalog_, options);
  }

  TripleStore left_;
  TripleStore right_;
  FeatureCatalog catalog_;
};

TEST_F(FeatureSpaceTest, TotalPairCountIsCrossProduct) {
  FeatureSpace space = Build();
  EXPECT_EQ(space.total_pair_count(), 6u);
}

TEST_F(FeatureSpaceTest, FilteringDropsDissimilarPairs) {
  FeatureSpace space = Build();
  // Matching pairs survive; "Completely Other" has no counterpart.
  EXPECT_LT(space.pairs().size(), 6u);
  EXPECT_NE(space.FindPair("http://l/e0", "http://r/x0"), kInvalidPairId);
  EXPECT_NE(space.FindPair("http://l/e1", "http://r/x1"), kInvalidPairId);
}

TEST_F(FeatureSpaceTest, FindPairUnknownReturnsInvalid) {
  FeatureSpace space = Build();
  EXPECT_EQ(space.FindPair("http://l/none", "http://r/x0"), kInvalidPairId);
}

TEST_F(FeatureSpaceTest, IriAccessors) {
  FeatureSpace space = Build();
  PairId pair = space.FindPair("http://l/e0", "http://r/x0");
  ASSERT_NE(pair, kInvalidPairId);
  EXPECT_EQ(space.LeftIri(pair), "http://l/e0");
  EXPECT_EQ(space.RightIri(pair), "http://r/x0");
}

TEST_F(FeatureSpaceTest, PairsInRangeFindsByScore) {
  FeatureSpace space = Build();
  FeatureId name = catalog_.Intern({"http://l/name", "http://r/label"});
  // Exact matches have score 1.0.
  std::vector<PairId> exact = space.PairsInRange(name, 0.95, 1.05);
  EXPECT_GE(exact.size(), 2u);
  for (PairId pair : exact) {
    EXPECT_DOUBLE_EQ(space.pair(pair).features.Get(name), 1.0);
  }
}

TEST_F(FeatureSpaceTest, PairsInRangeEmptyForUnknownFeature) {
  FeatureSpace space = Build();
  EXPECT_TRUE(space.PairsInRange(9999, 0.0, 1.0).empty());
}

TEST_F(FeatureSpaceTest, PairsInRangeRespectsBounds) {
  FeatureSpace space = Build();
  FeatureId name = catalog_.Intern({"http://l/name", "http://r/label"});
  EXPECT_TRUE(space.PairsInRange(name, 0.0, 0.1).empty());
  std::vector<PairId> all = space.PairsInRange(name, 0.0, 1.0);
  std::vector<PairId> none = space.PairsInRange(name, 1.01, 2.0);
  EXPECT_TRUE(none.empty());
  EXPECT_FALSE(all.empty());
}

TEST_F(FeatureSpaceTest, HighThetaFiltersEverythingWeak) {
  FeatureSpace space = Build(/*theta=*/0.99);
  // Only the two exact-match pairs survive.
  EXPECT_EQ(space.pairs().size(), 2u);
}

TEST_F(FeatureSpaceTest, SubsetOfSubjects) {
  FeatureSpaceOptions options;
  std::vector<rdf::TermId> one_left = {left_.Subjects()[0]};
  FeatureSpace space = FeatureSpace::Build(left_, one_left, right_,
                                           right_.Subjects(), &catalog_,
                                           options);
  EXPECT_EQ(space.total_pair_count(), 2u);
  EXPECT_EQ(space.left_entities().size(), 1u);
}

TEST_F(FeatureSpaceTest, PairsInRangeBoundsAreInclusive) {
  FeatureSpace space = Build();
  FeatureId name = catalog_.Intern({"http://l/name", "http://r/label"});
  // Both exact-match pairs score exactly 1.0: a degenerate [1.0, 1.0] band
  // must include them (lo and hi are both inclusive).
  std::vector<PairId> at_boundary = space.PairsInRange(name, 1.0, 1.0);
  EXPECT_EQ(at_boundary.size(), 2u);
  // Nudging lo above / hi below the score excludes them.
  EXPECT_TRUE(space.PairsInRange(name, std::nextafter(1.0, 2.0), 2.0).empty());
  EXPECT_TRUE(
      space.PairsInRange(name, 0.9, std::nextafter(1.0, 0.0)).empty());
}

TEST_F(FeatureSpaceTest, PairsInRangeEqualScoresTieBreakByPairId) {
  FeatureSpace space = Build();
  FeatureId name = catalog_.Intern({"http://l/name", "http://r/label"});
  std::vector<PairId> ties = space.PairsInRange(name, 1.0, 1.0);
  ASSERT_EQ(ties.size(), 2u);
  // Equal scores are ordered by ascending PairId (the ScoreEntry
  // tie-break), so the range result is deterministic.
  EXPECT_LT(ties[0], ties[1]);
  EXPECT_DOUBLE_EQ(space.pair(ties[0]).features.Get(name), 1.0);
  EXPECT_DOUBLE_EQ(space.pair(ties[1]).features.Get(name), 1.0);
}

TEST_F(FeatureSpaceTest, ScoredPairCountsExhaustiveAndBlocked) {
  FeatureSpaceOptions exhaustive;
  exhaustive.blocking.enabled = false;
  FeatureSpace space = FeatureSpace::Build(
      left_, left_.Subjects(), right_, right_.Subjects(), &catalog_,
      exhaustive);
  EXPECT_EQ(space.scored_pair_count(), space.total_pair_count());
  EXPECT_EQ(space.pruned_pair_count(), 0u);

  FeatureSpace blocked = Build();
  EXPECT_LE(blocked.scored_pair_count(), blocked.total_pair_count());
  // "Completely Other" shares no block with either right entity.
  EXPECT_GT(blocked.pruned_pair_count(), 0u);
}

TEST_F(FeatureSpaceTest, RangeQueryMatchesLinearScan) {
  FeatureSpace space = Build(/*theta=*/0.1);
  FeatureId name = catalog_.Intern({"http://l/name", "http://r/label"});
  for (double lo : {0.0, 0.2, 0.5, 0.9}) {
    double hi = lo + 0.3;
    std::vector<PairId> indexed = space.PairsInRange(name, lo, hi);
    size_t scanned = 0;
    for (PairId id = 0; id < space.pairs().size(); ++id) {
      double score = space.pair(id).features.Get(name);
      if (score >= lo && score <= hi && score > 0.0) ++scanned;
    }
    EXPECT_EQ(indexed.size(), scanned) << "band [" << lo << "," << hi << "]";
  }
}

TEST_F(FeatureSpaceTest, PairsInRangeSpanMatchesVectorOverload) {
  FeatureSpace space = Build(/*theta=*/0.1);
  FeatureId name = catalog_.Intern({"http://l/name", "http://r/label"});
  for (double lo : {0.0, 0.2, 0.5, 0.9, 1.0}) {
    double hi = lo + 0.3;
    FeatureSpace::ScoreSpan span = space.PairsInRangeSpan(name, lo, hi);
    std::vector<PairId> expected = space.PairsInRange(name, lo, hi);
    ASSERT_EQ(span.size(), expected.size())
        << "band [" << lo << "," << hi << "]";
    for (size_t i = 0; i < span.size(); ++i) {
      EXPECT_EQ(span[i].pair, expected[i]);
      double score = space.pair(span[i].pair).features.Get(name);
      EXPECT_DOUBLE_EQ(span[i].score, score);
      EXPECT_GE(span[i].score, lo);
      EXPECT_LE(span[i].score, hi);
    }
  }
}

TEST_F(FeatureSpaceTest, PairsInRangeSpanEmptyCases) {
  FeatureSpace space = Build();
  FeatureId name = catalog_.Intern({"http://l/name", "http://r/label"});
  EXPECT_TRUE(space.PairsInRangeSpan(9999, 0.0, 1.0).empty());
  EXPECT_TRUE(space.PairsInRangeSpan(name, 1.01, 2.0).empty());
  // An inverted band is empty, not undefined.
  EXPECT_TRUE(space.PairsInRangeSpan(name, 1.0, 0.5).empty());
  EXPECT_EQ(space.PairsInRangeSpan(name, 1.0, 0.5).size(), 0u);
}

TEST_F(FeatureSpaceTest, PairsInRangeScratchOverwritesPreviousResult) {
  FeatureSpace space = Build(/*theta=*/0.1);
  FeatureId name = catalog_.Intern({"http://l/name", "http://r/label"});
  std::vector<PairId> scratch;
  space.PairsInRange(name, 0.0, 1.0, &scratch);
  EXPECT_EQ(scratch, space.PairsInRange(name, 0.0, 1.0));
  // A second probe into the same buffer replaces, never appends.
  space.PairsInRange(name, 1.0, 1.0, &scratch);
  EXPECT_EQ(scratch, space.PairsInRange(name, 1.0, 1.0));
  space.PairsInRange(name, 2.0, 3.0, &scratch);
  EXPECT_TRUE(scratch.empty());
}

TEST_F(FeatureSpaceTest, ScoreIndexIsSortedByScoreThenPairId) {
  FeatureSpace space = Build(/*theta=*/0.1);
  for (FeatureId feature = 0; feature < catalog_.size(); ++feature) {
    FeatureSpace::ScoreSpan span =
        space.PairsInRangeSpan(feature, -1.0, 2.0);
    for (size_t i = 1; i < span.size(); ++i) {
      EXPECT_LT(span[i - 1], span[i])
          << "feature " << feature << " entry " << i;
    }
    // Every indexed score is a real, positive feature value of its pair.
    for (const ScoreEntry& entry : span) {
      EXPECT_FALSE(std::isnan(entry.score));
      EXPECT_GT(entry.score, 0.0);
      EXPECT_DOUBLE_EQ(entry.score,
                       space.pair(entry.pair).features.Get(feature));
    }
  }
}

}  // namespace
}  // namespace alex::core
