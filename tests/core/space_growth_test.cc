// Differential oracle for feature-space frontier growth: after the stores
// grow, FeatureSpace::Grow in incremental mode (pending-sidecar score
// entries, deferred arena compaction) must yield the same logical space —
// same PairIds, Fingerprint(), range answers — as rebuild mode, and both
// must match a from-scratch Build over the grown stores.
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/feature_space.h"
#include "rdf/triple_store.h"

namespace alex::core {
namespace {

using rdf::Term;
using rdf::TripleStore;

constexpr const char* kFirst[] = {"Ada",  "Alan",    "Grace",  "Edsger",
                                  "John", "Barbara", "Donald", "Edith"};
constexpr const char* kLast[] = {"Lovelace", "Turing", "Hopper", "Dijkstra"};

std::string NameFor(int n) {
  return std::string(kFirst[n % 8]) + " " + kLast[(n / 8) % 4];
}

struct Stores {
  TripleStore left{"l"};
  TripleStore right{"r"};
};

void AddLeftEntity(Stores* stores, int n) {
  const std::string iri = "http://l/e" + std::to_string(n);
  stores->left.Add(Term::Iri(iri), Term::Iri("http://l/name"),
                   Term::StringLiteral(NameFor(n)));
  stores->left.Add(Term::Iri(iri), Term::Iri("http://l/age"),
                   Term::StringLiteral(std::to_string(20 + n % 30)));
}

void AddRightEntity(Stores* stores, int n) {
  const std::string iri = "http://r/x" + std::to_string(n);
  stores->right.Add(Term::Iri(iri), Term::Iri("http://r/label"),
                    Term::StringLiteral(NameFor(n)));
  stores->right.Add(Term::Iri(iri), Term::Iri("http://r/years"),
                    Term::StringLiteral(std::to_string(20 + n % 30)));
}

// Base population: 8 lefts, 6 rights with overlapping names so plenty of
// pairs clear θ = 0.2.
Stores MakeBaseStores() {
  Stores stores;
  for (int n = 0; n < 8; ++n) AddLeftEntity(&stores, n);
  for (int n = 0; n < 12; n += 2) AddRightEntity(&stores, n);
  return stores;
}

FeatureSpaceOptions MakeOptions(size_t compaction_threshold) {
  FeatureSpaceOptions options;
  options.theta = 0.2;
  options.compaction_threshold = compaction_threshold;
  return options;
}

// Appends the entities that joined `right` since the context last covered
// it, then extends the blocking index — incrementally (AddRights) or by a
// fresh Build (the rebuild twin). Mirrors AlexEngine::IngestTriples'
// handling of its owned right context.
void ExtendContext(const std::shared_ptr<const RightContext>& ctx,
                   const TripleStore& right,
                   const FeatureSpaceOptions& options, bool rebuild) {
  auto* mut = const_cast<RightContext*>(ctx.get());
  const size_t old_count = mut->entities.size();
  std::vector<rdf::TermId> subjects = right.Subjects();
  for (size_t i = old_count; i < subjects.size(); ++i) {
    mut->entities.push_back(
        PrepareEntity(right, subjects[i], options.max_attributes));
  }
  if (rebuild) {
    mut->index =
        BlockingIndex::Build(mut->entities, options.blocking,
                             options.similarity);
  } else {
    mut->index.AddRights(mut->entities, old_count);
  }
}

std::vector<rdf::TermId> SubjectSuffix(const TripleStore& store,
                                       size_t old_count) {
  std::vector<rdf::TermId> subjects = store.Subjects();
  return std::vector<rdf::TermId>(subjects.begin() + old_count,
                                  subjects.end());
}

void ExpectSameRangeAnswers(const FeatureSpace& a, const FeatureSpace& b,
                            size_t num_features, const std::string& context) {
  for (FeatureId feature = 0; feature < num_features; ++feature) {
    for (double lo : {-1.0, 0.0, 0.3, 0.6}) {
      for (double width : {0.2, 0.5, 2.0}) {
        ASSERT_EQ(a.PairsInRange(feature, lo, lo + width),
                  b.PairsInRange(feature, lo, lo + width))
            << context << " feature " << feature << " band [" << lo << ","
            << lo + width << "]";
      }
    }
  }
}

// PairId-order-independent view of a space: IRIs -> feature-key scores
// (same idea as the blocked-vs-exhaustive comparison in blocking_test).
using PairScores =
    std::map<std::pair<std::string, std::string>,
             std::map<std::pair<std::string, std::string>, double>>;

PairScores Flatten(const FeatureSpace& space) {
  PairScores out;
  for (PairId id = 0; id < space.pairs().size(); ++id) {
    auto& scores = out[{space.LeftIri(id), space.RightIri(id)}];
    for (const auto& [feature, score] : space.pair(id).features.features) {
      FeatureKey key = space.catalog()->Key(feature);
      scores[{key.left_predicate, key.right_predicate}] = score;
    }
  }
  return out;
}

// One epoch of store growth shared by both twins: two new lefts, two new
// rights, names drawn from the same cyclic pool as the base.
void GrowStores(Stores* stores, int epoch) {
  AddLeftEntity(stores, 8 + 2 * epoch);
  AddLeftEntity(stores, 9 + 2 * epoch);
  AddRightEntity(stores, 1 + 2 * epoch);  // odd ids: new on the right
  AddRightEntity(stores, 20 + 2 * epoch);
}

TEST(SpaceGrowthTest, IncrementalGrowthMatchesRebuildAcrossThresholds) {
  for (size_t threshold : {size_t{0}, size_t{1}, size_t{32}}) {
    SCOPED_TRACE("threshold " + std::to_string(threshold));
    Stores stores = MakeBaseStores();
    FeatureSpaceOptions options = MakeOptions(threshold);

    std::vector<rdf::TermId> left_subjects = stores.left.Subjects();
    auto ctx_inc = RightContext::Prepare(stores.right,
                                         stores.right.Subjects(), options);
    auto ctx_reb = RightContext::Prepare(stores.right,
                                         stores.right.Subjects(), options);
    FeatureCatalog cat_inc, cat_reb;
    FeatureSpace inc = FeatureSpace::Build(stores.left, left_subjects,
                                           ctx_inc, &cat_inc, options);
    FeatureSpace reb = FeatureSpace::Build(stores.left, left_subjects,
                                           ctx_reb, &cat_reb, options);
    ASSERT_GT(inc.pairs().size(), 0u);
    ASSERT_EQ(inc.Fingerprint(), reb.Fingerprint());

    size_t total_overflow = 0;
    for (int epoch = 0; epoch < 3; ++epoch) {
      const size_t old_left_count = stores.left.Subjects().size();
      const size_t old_right_count = ctx_inc->entities.size();
      GrowStores(&stores, epoch);

      ExtendContext(ctx_inc, stores.right, options, /*rebuild=*/false);
      ExtendContext(ctx_reb, stores.right, options, /*rebuild=*/true);
      ASSERT_EQ(ctx_inc->index.Fingerprint(), ctx_reb->index.Fingerprint());

      std::vector<rdf::TermId> new_lefts =
          SubjectSuffix(stores.left, old_left_count);
      ASSERT_EQ(new_lefts.size(), 2u);

      FeatureSpace::GrowthResult inc_result =
          inc.Grow(stores.left, new_lefts, nullptr, old_right_count, &cat_inc,
                   options, /*rebuild_indexes=*/false);
      FeatureSpace::GrowthResult reb_result =
          reb.Grow(stores.left, new_lefts, nullptr, old_right_count, &cat_reb,
                   options, /*rebuild_indexes=*/true);

      const std::string context = "epoch " + std::to_string(epoch);
      EXPECT_EQ(inc_result.new_pairs, reb_result.new_pairs) << context;
      EXPECT_GT(inc_result.new_pairs, 0u) << context;
      EXPECT_EQ(reb_result.overflow_entries, 0u) << context;
      total_overflow += inc_result.overflow_entries;

      ASSERT_EQ(inc.pairs().size(), reb.pairs().size()) << context;
      ASSERT_EQ(cat_inc.size(), cat_reb.size()) << context;
      EXPECT_EQ(inc.Fingerprint(), reb.Fingerprint()) << context;
      // PairId identity, not just logical equality: both modes must append
      // pairs in the same canonical (left, right) order.
      for (PairId id = 0; id < inc.pairs().size(); ++id) {
        ASSERT_EQ(inc.LeftIri(id), reb.LeftIri(id)) << context << " " << id;
        ASSERT_EQ(inc.RightIri(id), reb.RightIri(id)) << context << " " << id;
      }
      ExpectSameRangeAnswers(inc, reb, cat_inc.size(), context);
    }
    // Incremental growth routes entries through the pending sidecars.
    EXPECT_GT(total_overflow, 0u);

    // Episode-boundary arena compaction folds the growth back into the CSR
    // without changing the logical space.
    const uint64_t before = inc.Fingerprint();
    inc.MaybeCompactArena();
    EXPECT_EQ(inc.Fingerprint(), before);
    ExpectSameRangeAnswers(inc, reb, cat_inc.size(), "after compaction");
    if (threshold == 0) {
      EXPECT_GT(inc.arena_compaction_count(), 0u);
      EXPECT_EQ(inc.grown_entry_count(), 0u);
    }
  }
}

TEST(SpaceGrowthTest, GrownSpaceLogicallyMatchesFromScratchBuild) {
  Stores stores = MakeBaseStores();
  FeatureSpaceOptions options = MakeOptions(32);

  auto ctx = RightContext::Prepare(stores.right, stores.right.Subjects(),
                                   options);
  FeatureCatalog catalog;
  FeatureSpace grown = FeatureSpace::Build(stores.left, stores.left.Subjects(),
                                           ctx, &catalog, options);
  for (int epoch = 0; epoch < 2; ++epoch) {
    const size_t old_left_count = stores.left.Subjects().size();
    const size_t old_right_count = ctx->entities.size();
    GrowStores(&stores, epoch);
    ExtendContext(ctx, stores.right, options, /*rebuild=*/false);
    grown.Grow(stores.left, SubjectSuffix(stores.left, old_left_count),
               nullptr, old_right_count, &catalog, options,
               /*rebuild_indexes=*/false);
  }

  // A from-scratch Build over the grown stores enumerates pairs in a
  // different PairId order, so compare the PairId-independent projection.
  FeatureCatalog fresh_catalog;
  FeatureSpace fresh = FeatureSpace::Build(
      stores.left, stores.left.Subjects(), stores.right,
      stores.right.Subjects(), &fresh_catalog, options);
  EXPECT_EQ(grown.pairs().size(), fresh.pairs().size());
  EXPECT_EQ(Flatten(grown), Flatten(fresh));
}

TEST(SpaceGrowthTest, FullCandidateListMatchesNullptr) {
  Stores stores = MakeBaseStores();
  FeatureSpaceOptions options = MakeOptions(32);

  auto ctx_a = RightContext::Prepare(stores.right, stores.right.Subjects(),
                                     options);
  auto ctx_b = RightContext::Prepare(stores.right, stores.right.Subjects(),
                                     options);
  FeatureCatalog cat_a, cat_b;
  FeatureSpace with_list = FeatureSpace::Build(
      stores.left, stores.left.Subjects(), ctx_a, &cat_a, options);
  FeatureSpace without = FeatureSpace::Build(
      stores.left, stores.left.Subjects(), ctx_b, &cat_b, options);

  const size_t old_left_count = stores.left.Subjects().size();
  const size_t old_right_count = ctx_a->entities.size();
  GrowStores(&stores, 0);
  ExtendContext(ctx_a, stores.right, options, false);
  ExtendContext(ctx_b, stores.right, options, false);
  std::vector<rdf::TermId> new_lefts =
      SubjectSuffix(stores.left, old_left_count);

  // The trivial superset — every old left is a candidate — must be exactly
  // equivalent to passing no candidate list at all.
  std::vector<uint32_t> all_old(old_left_count);
  for (uint32_t i = 0; i < all_old.size(); ++i) all_old[i] = i;
  with_list.Grow(stores.left, new_lefts, &all_old, old_right_count, &cat_a,
                 options, false);
  without.Grow(stores.left, new_lefts, nullptr, old_right_count, &cat_b,
               options, false);

  ASSERT_EQ(with_list.pairs().size(), without.pairs().size());
  EXPECT_EQ(with_list.Fingerprint(), without.Fingerprint());
}

TEST(SpaceGrowthTest, EmptyGrowthIsNoOp) {
  Stores stores = MakeBaseStores();
  FeatureSpaceOptions options = MakeOptions(32);
  auto ctx = RightContext::Prepare(stores.right, stores.right.Subjects(),
                                   options);
  FeatureCatalog catalog;
  FeatureSpace space = FeatureSpace::Build(
      stores.left, stores.left.Subjects(), ctx, &catalog, options);
  const uint64_t before = space.Fingerprint();

  FeatureSpace::GrowthResult result =
      space.Grow(stores.left, {}, nullptr, ctx->entities.size(), &catalog,
                 options, /*rebuild_indexes=*/false);
  EXPECT_EQ(result.new_pairs, 0u);
  EXPECT_EQ(result.overflow_entries, 0u);
  EXPECT_EQ(space.Fingerprint(), before);
}

TEST(SpaceGrowthTest, ChurnAfterGrowthStaysDifferentiallyCorrect) {
  // Grown pairs must behave exactly like built pairs under the existing
  // ApplyDelta maintenance: toggle a mix of old and new pairs on the
  // incremental twin, mirror on a rebuild twin, compare.
  Stores stores = MakeBaseStores();
  FeatureSpaceOptions options = MakeOptions(1);
  auto ctx_a = RightContext::Prepare(stores.right, stores.right.Subjects(),
                                     options);
  auto ctx_b = RightContext::Prepare(stores.right, stores.right.Subjects(),
                                     options);
  FeatureCatalog cat_a, cat_b;
  FeatureSpace inc = FeatureSpace::Build(
      stores.left, stores.left.Subjects(), ctx_a, &cat_a, options);
  FeatureSpace reb = FeatureSpace::Build(
      stores.left, stores.left.Subjects(), ctx_b, &cat_b, options);

  const size_t old_left_count = stores.left.Subjects().size();
  const size_t old_right_count = ctx_a->entities.size();
  const PairId first_new_pair = static_cast<PairId>(inc.pairs().size());
  GrowStores(&stores, 0);
  ExtendContext(ctx_a, stores.right, options, false);
  ExtendContext(ctx_b, stores.right, options, true);
  std::vector<rdf::TermId> new_lefts =
      SubjectSuffix(stores.left, old_left_count);
  inc.Grow(stores.left, new_lefts, nullptr, old_right_count, &cat_a, options,
           false);
  reb.Grow(stores.left, new_lefts, nullptr, old_right_count, &cat_b, options,
           true);
  ASSERT_GT(inc.pairs().size(), first_new_pair);

  // Remove one old and one new pair, then resurrect them.
  std::vector<PairId> touched = {0, first_new_pair};
  inc.ApplyDelta({}, touched);
  reb.SetLiveness({}, touched);
  reb.RebuildIndexes();
  EXPECT_EQ(inc.Fingerprint(), reb.Fingerprint());
  ExpectSameRangeAnswers(inc, reb, cat_a.size(), "after removal");

  inc.ApplyDelta(touched, {});
  reb.SetLiveness(touched, {});
  reb.RebuildIndexes();
  EXPECT_EQ(inc.Fingerprint(), reb.Fingerprint());
  ExpectSameRangeAnswers(inc, reb, cat_a.size(), "after resurrection");
}

}  // namespace
}  // namespace alex::core
