#include "core/engine_state.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/alex_engine.h"
#include "datagen/profiles.h"
#include "eval/metrics.h"
#include "feedback/oracle.h"
#include "linking/paris.h"

namespace alex::core {
namespace {

using linking::Link;

struct SessionParts {
  datagen::GeneratedWorld world;
  feedback::GroundTruth truth;
  std::vector<Link> initial;
};

SessionParts MakeSession() {
  SessionParts parts;
  parts.world = datagen::Generate(datagen::TinyTestProfile());
  parts.truth = feedback::GroundTruth(parts.world.ground_truth);
  parts.initial = linking::FilterByScore(
      linking::RunParis(parts.world.left, parts.world.right), 0.95);
  return parts;
}

AlexOptions SmallOptions() {
  AlexOptions options;
  options.num_partitions = 2;
  options.num_threads = 1;
  options.episode_size = 100;
  options.max_episodes = 4;  // learn a bit, stop before convergence
  return options;
}

TEST(EngineStateTest, ExportCapturesLearnedState) {
  SessionParts parts = MakeSession();
  AlexEngine engine(&parts.world.left, &parts.world.right, SmallOptions());
  ASSERT_TRUE(engine.Initialize(parts.initial).ok());
  feedback::Oracle oracle(&parts.truth, 0.0, 7);
  engine.Run([&oracle](const Link& link) { return oracle.Feedback(link); });

  EngineState state = ExportEngineState(engine);
  EXPECT_EQ(state.candidates.size(), engine.CandidateCount());
  EXPECT_FALSE(state.policy.empty());
  EXPECT_FALSE(state.returns.empty());
}

TEST(EngineStateTest, TextRoundTrip) {
  EngineState state;
  state.candidates = {{"http://l/a", "http://r/x", 1.0}};
  state.blacklist = {{"http://l/b", "http://r/y", 1.0}};
  state.policy.push_back(
      {{"http://l/a", "http://r/x", 1.0}, {"http://l/name", "http://r/n"}});
  state.returns.push_back({{"http://l/a", "http://r/x", 1.0},
                           {"http://l/name", "http://r/n"},
                           2.5,
                           4});
  Result<EngineState> parsed = ParseEngineState(WriteEngineState(state));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->candidates.size(), 1u);
  EXPECT_EQ(parsed->candidates[0].left, "http://l/a");
  ASSERT_EQ(parsed->blacklist.size(), 1u);
  ASSERT_EQ(parsed->policy.size(), 1u);
  EXPECT_EQ(parsed->policy[0].action.left_predicate, "http://l/name");
  ASSERT_EQ(parsed->returns.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->returns[0].sum, 2.5);
  EXPECT_EQ(parsed->returns[0].count, 4u);
}

TEST(EngineStateTest, ParseErrors) {
  EXPECT_FALSE(ParseEngineState("data before header\n").ok());
  EXPECT_FALSE(ParseEngineState("#bogus\n").ok());
  EXPECT_FALSE(ParseEngineState("#policy\nonlyleft\n").ok());
  EXPECT_FALSE(ParseEngineState("#policy\nl\tr\n").ok());  // 2 < 4 fields
  EXPECT_FALSE(
      ParseEngineState("#returns\nl\tr\tf1\tf2\tnot-a-number\t3\n").ok());
}

TEST(EngineStateTest, ResumedSessionMatchesContinuousRun) {
  SessionParts parts = MakeSession();

  // Session A: run a few episodes, export, "shut down".
  AlexOptions options = SmallOptions();
  AlexEngine first(&parts.world.left, &parts.world.right, options);
  ASSERT_TRUE(first.Initialize(parts.initial).ok());
  feedback::Oracle oracle_a(&parts.truth, 0.0, 11);
  first.Run([&](const Link& link) { return oracle_a.Feedback(link); });
  EngineState saved = ExportEngineState(first);
  eval::Quality at_save = eval::Evaluate(first.CandidateLinks(),
                                         parts.truth);

  // Session B: fresh process, re-initialize from the same data, import.
  AlexOptions more = options;
  more.max_episodes = 30;
  AlexEngine resumed(&parts.world.left, &parts.world.right, more);
  ASSERT_TRUE(resumed.Initialize(parts.initial).ok());
  ASSERT_TRUE(ImportEngineState(saved, &resumed).ok());
  eval::Quality after_import =
      eval::Evaluate(resumed.CandidateLinks(), parts.truth);
  // The imported session starts exactly where the saved one stopped.
  EXPECT_EQ(after_import.candidates, at_save.candidates);
  EXPECT_DOUBLE_EQ(after_import.f_measure, at_save.f_measure);

  // And learning continues to convergence-quality results.
  feedback::Oracle oracle_b(&parts.truth, 0.0, 13);
  resumed.Run([&](const Link& link) { return oracle_b.Feedback(link); });
  eval::Quality final_quality =
      eval::Evaluate(resumed.CandidateLinks(), parts.truth);
  EXPECT_GE(final_quality.f_measure, at_save.f_measure - 1e-9);
  EXPECT_GT(final_quality.f_measure, 0.9);
}

TEST(EngineStateTest, FileRoundTrip) {
  SessionParts parts = MakeSession();
  AlexEngine engine(&parts.world.left, &parts.world.right, SmallOptions());
  ASSERT_TRUE(engine.Initialize(parts.initial).ok());
  engine.RunEpisode(
      [&parts](const Link& link) { return parts.truth.Contains(link); });
  EngineState state = ExportEngineState(engine);
  std::string path = ::testing::TempDir() + "/engine_state_test.state";
  ASSERT_TRUE(SaveEngineState(state, path).ok());
  Result<EngineState> loaded = LoadEngineState(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->candidates.size(), state.candidates.size());
  EXPECT_EQ(loaded->policy.size(), state.policy.size());
  EXPECT_EQ(loaded->returns.size(), state.returns.size());
  std::remove(path.c_str());
}

TEST(EngineStateTest, ImportSkipsUnknownEntries) {
  SessionParts parts = MakeSession();
  AlexEngine engine(&parts.world.left, &parts.world.right, SmallOptions());
  ASSERT_TRUE(engine.Initialize(parts.initial).ok());
  EngineState state;
  state.candidates = {{"http://unknown/a", "http://unknown/b", 1.0}};
  state.policy.push_back(
      {{"http://unknown/a", "http://unknown/b", 1.0}, {"p", "q"}});
  state.returns.push_back(
      {{"http://unknown/a", "http://unknown/b", 1.0}, {"p", "q"}, 1.0, 1});
  state.blacklist = {{"http://unknown/c", "http://unknown/d", 1.0}};
  ASSERT_TRUE(ImportEngineState(state, &engine).ok());
  // The unknown candidate survives as a spaceless extra; the rest were
  // silently skipped.
  EXPECT_EQ(engine.CandidateCount(), 1u);
}

}  // namespace
}  // namespace alex::core
