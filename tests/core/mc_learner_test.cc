#include "core/mc_learner.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace alex::core {
namespace {

FeatureSet MakeActions(std::initializer_list<std::pair<FeatureId, double>>
                           features) {
  FeatureSet set;
  for (const auto& [id, score] : features) set.SetMax(id, score);
  return set;
}

TEST(McLearnerTest, QIsAverageOfReturns) {
  McLearner learner;
  StateAction sa{1, 2};
  learner.AppendReturn(sa, 1.0);
  learner.AppendReturn(sa, -1.0);
  learner.AppendReturn(sa, 1.0);
  bool defined = false;
  EXPECT_NEAR(learner.Q(sa, &defined), 1.0 / 3.0, 1e-12);
  EXPECT_TRUE(defined);
}

TEST(McLearnerTest, UndefinedQ) {
  McLearner learner;
  bool defined = true;
  EXPECT_DOUBLE_EQ(learner.Q(StateAction{1, 1}, &defined), 0.0);
  EXPECT_FALSE(defined);
}

TEST(McLearnerTest, ArgmaxPrefersHigherQ) {
  McLearner learner;
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.6}, {3, 0.7}});
  learner.AppendReturn({9, 1}, 0.5);
  learner.AppendReturn({9, 2}, 0.9);
  learner.AppendReturn({9, 3}, -0.5);
  EXPECT_EQ(learner.ArgmaxAction(9, actions), 2u);
}

TEST(McLearnerTest, ArgmaxTreatsUntriedAsNeutral) {
  // A state whose only sampled action has a negative return must not
  // greedily re-take it: untried actions count as Q = 0.
  McLearner learner;
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.9}});
  learner.AppendReturn({9, 1}, -1.0);
  EXPECT_EQ(learner.ArgmaxAction(9, actions), 2u);
}

TEST(McLearnerTest, ArgmaxTieBreaksOnFeatureScore) {
  McLearner learner;
  FeatureSet actions = MakeActions({{1, 0.5}, {2, 0.9}, {3, 0.7}});
  // All untried -> all Q=0 -> prefer the strongest feature.
  EXPECT_EQ(learner.ArgmaxAction(9, actions), 2u);
}

TEST(McLearnerTest, ArgmaxOnEmptyActionSet) {
  McLearner learner;
  FeatureSet empty;
  EXPECT_EQ(learner.ArgmaxAction(9, empty), kInvalidFeatureId);
}

TEST(McLearnerTest, FirstVisitPerEpisode) {
  McLearner learner;
  learner.BeginEpisode();
  EXPECT_TRUE(learner.IsFirstVisit(4));
  EXPECT_FALSE(learner.IsFirstVisit(4));
  EXPECT_TRUE(learner.IsFirstVisit(5));
  // New episode resets the marks ("a new first visit", §4.4.1).
  learner.BeginEpisode();
  EXPECT_TRUE(learner.IsFirstVisit(4));
}

TEST(McLearnerTest, StatesToImproveCollectsAndClears) {
  McLearner learner;
  learner.AppendReturn({1, 10}, 1.0);
  learner.AppendReturn({2, 20}, -1.0);
  learner.AppendReturn({1, 11}, 1.0);
  std::vector<PairId> states = learner.TakeStatesToImprove();
  std::sort(states.begin(), states.end());
  EXPECT_EQ(states, (std::vector<PairId>{1, 2}));
  EXPECT_TRUE(learner.TakeStatesToImprove().empty());
}

TEST(McLearnerTest, ReturnsPersistAcrossEpisodes) {
  // Returns accumulate across episodes; only the first-visit marks reset.
  McLearner learner;
  learner.BeginEpisode();
  learner.AppendReturn({1, 1}, 1.0);
  learner.BeginEpisode();
  learner.AppendReturn({1, 1}, 0.0);
  EXPECT_NEAR(learner.Q(StateAction{1, 1}), 0.5, 1e-12);
}

TEST(McLearnerTest, QConvergesToMeanUnderManySamples) {
  McLearner learner;
  StateAction sa{3, 3};
  // 70% of rewards +1, 30% -1 -> mean 0.4.
  for (int i = 0; i < 1000; ++i) {
    learner.AppendReturn(sa, i % 10 < 7 ? 1.0 : -1.0);
  }
  EXPECT_NEAR(learner.Q(sa), 0.4, 1e-9);
}

TEST(StateActionTest, HashAndEquality) {
  StateActionHash hash;
  StateAction a{1, 2};
  StateAction b{1, 2};
  StateAction c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace alex::core
