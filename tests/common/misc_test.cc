#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace alex {
namespace {

TEST(LoggingTest, MinLevelRoundTrip) {
  LogLevel original = GetMinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(GetMinLogLevel(), LogLevel::kError);
  SetMinLogLevel(original);
}

TEST(LoggingTest, BelowThresholdMessagesAreCheap) {
  LogLevel original = GetMinLogLevel();
  SetMinLogLevel(LogLevel::kFatal);
  // These must not crash or print.
  ALEX_LOG(DEBUG) << "hidden";
  ALEX_LOG(INFO) << "hidden";
  ALEX_LOG(WARNING) << "hidden";
  ALEX_LOG(ERROR) << "hidden";
  SetMinLogLevel(original);
  SUCCEED();
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  ALEX_CHECK(1 + 1 == 2) << "never printed";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ ALEX_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ ALEX_LOG(FATAL) << "fatal message"; }, "fatal message");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 100);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 0.015);
}

TEST(SplitWordsNormalizedTest, StripsEdgePunctuation) {
  std::vector<std::string> words =
      SplitWordsNormalized("James, LeBron (MVP)!");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "James");
  EXPECT_EQ(words[1], "LeBron");
  EXPECT_EQ(words[2], "MVP");
}

TEST(SplitWordsNormalizedTest, DropsPurePunctuationTokens) {
  std::vector<std::string> words = SplitWordsNormalized("a -- b");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "a");
  EXPECT_EQ(words[1], "b");
}

TEST(SplitWordsNormalizedTest, KeepsInteriorPunctuation) {
  std::vector<std::string> words = SplitWordsNormalized("o'neil 12-34");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "o'neil");
  EXPECT_EQ(words[1], "12-34");
}

}  // namespace
}  // namespace alex
