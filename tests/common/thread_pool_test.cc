#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace alex {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksCanWriteDistinctSlots) {
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.Schedule([&results, i] { results[i] = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPoolTest, DestructorJoinsWithPendingWorkDone) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace alex
