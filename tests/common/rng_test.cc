#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace alex {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t value = rng.NextInt(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.06);
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng parent(29);
  Rng child = parent.Fork();
  // Child should not replay the parent's stream.
  Rng parent_copy(29);
  parent_copy.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == parent.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = values;
  rng.Shuffle(&values);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

}  // namespace
}  // namespace alex
