#include "common/strings.h"

#include <gtest/gtest.h>

namespace alex {
namespace {

TEST(StringsTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AbC dEf"), "abc def");
  EXPECT_EQ(ToLowerAscii(""), "");
  EXPECT_EQ(ToLowerAscii("123-XYZ"), "123-xyz");
}

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripAsciiWhitespace("\t\nhi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("hi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  std::vector<std::string> pieces = Split("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
}

TEST(StringsTest, SplitSinglePiece) {
  std::vector<std::string> pieces = Split("abc", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(StringsTest, SplitWordsDropsEmpty) {
  std::vector<std::string> words = SplitWords("  foo   bar\tbaz\n");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "foo");
  EXPECT_EQ(words[2], "baz");
  EXPECT_TRUE(SplitWords("   ").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", ".nt"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(StringsTest, ParseDouble) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &value));
  EXPECT_DOUBLE_EQ(value, 3.5);
  EXPECT_TRUE(ParseDouble("  -2e3 ", &value));
  EXPECT_DOUBLE_EQ(value, -2000.0);
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("1.5x", &value));
  EXPECT_FALSE(ParseDouble("", &value));
}

TEST(StringsTest, ParseInt64) {
  long long value = 0;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &value));
  EXPECT_EQ(value, -7);
  EXPECT_FALSE(ParseInt64("4.2", &value));
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("12a", &value));
}

}  // namespace
}  // namespace alex
