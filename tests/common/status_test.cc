#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace alex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  std::vector<Case> cases = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "invalid_argument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "not_found"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "already_exists"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "out_of_range"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "failed_precondition"},
      {Status::Internal("f"), StatusCode::kInternal, "internal"},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented,
       "unimplemented"},
      {Status::ParseError("h"), StatusCode::kParseError, "parse_error"},
      {Status::Unavailable("i"), StatusCode::kUnavailable, "unavailable"},
      {Status::DeadlineExceeded("j"), StatusCode::kDeadlineExceeded,
       "deadline_exceeded"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status status = Status::NotFound("missing widget");
  EXPECT_EQ(status.ToString(), "not_found: missing widget");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(*result, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> result(std::vector<int>{1, 2});
  result->push_back(3);
  EXPECT_EQ(result.value().size(), 3u);
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::Ok(); }

Status UsesMacro(bool fail) {
  ALEX_RETURN_IF_ERROR(Succeeds());
  if (fail) ALEX_RETURN_IF_ERROR(Fails());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesMacro(false).ok());
  EXPECT_EQ(UsesMacro(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace alex
