#include "common/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace alex {
namespace {

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_micros(), 0u);
  EXPECT_DOUBLE_EQ(h.PercentileMicros(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 0.0);
}

TEST(LatencyHistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_micros(), 1000u);
  EXPECT_EQ(h.sum_micros(), 1000u);
  // The only sample is both p0+ and p100; estimates clamp to the max.
  EXPECT_LE(h.PercentileMicros(0.99), 1000.0);
  EXPECT_GT(h.PercentileMicros(0.99), 0.0);
}

TEST(LatencyHistogramTest, PercentilesBracketTrueValues) {
  LatencyHistogram h;
  // 1..1000 micros uniformly: p50 ~ 500, p99 ~ 990.
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const double p50 = h.PercentileMicros(0.5);
  const double p99 = h.PercentileMicros(0.99);
  // log2 buckets guarantee at worst a factor-of-two bracket.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 495.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_LE(p50, p99);
  EXPECT_EQ(h.max_micros(), 1000u);
  EXPECT_NEAR(h.MeanMicros(), 500.5, 0.01);
}

TEST(LatencyHistogramTest, PercentileIsMonotoneInQ) {
  LatencyHistogram h;
  for (int64_t v : {3, 17, 90, 1024, 5000, 70000}) h.Record(v);
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = h.PercentileMicros(q);
    EXPECT_GE(value, previous);
    previous = value;
  }
  EXPECT_LE(previous, static_cast<double>(h.max_micros()));
}

TEST(LatencyHistogramTest, NonPositiveSamplesLandInBucketZero) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(-5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum_micros(), 0u);
  EXPECT_EQ(h.max_micros(), 0u);
  EXPECT_DOUBLE_EQ(h.PercentileMicros(0.99), 0.0);
}

TEST(LatencyHistogramTest, MergePreservesTotals) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int64_t v = 1; v <= 100; ++v) a.Record(v);
  for (int64_t v = 1000; v <= 1100; ++v) b.Record(v);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 201u);
  EXPECT_EQ(a.max_micros(), 1100u);
  // The merged p99 must come from b's range.
  EXPECT_GE(a.PercentileMicros(0.99), 500.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsCountEverySample) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record((t + 1) * 100 + i % 7);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GE(h.max_micros(), 400u);
}

}  // namespace
}  // namespace alex
