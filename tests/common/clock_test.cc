#include "common/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/stopwatch.h"

namespace alex {
namespace {

TEST(VirtualClockTest, StartsAtConstructionValue) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  VirtualClock offset(12345);
  EXPECT_EQ(offset.NowMicros(), 12345);
}

TEST(VirtualClockTest, AdvanceMovesTimeAndReturnsNewNow) {
  VirtualClock clock;
  EXPECT_EQ(clock.Advance(100), 100);
  EXPECT_EQ(clock.Advance(50), 150);
  EXPECT_EQ(clock.NowMicros(), 150);
  EXPECT_EQ(clock.Advance(0), 150);
}

TEST(VirtualClockTest, ConcurrentAdvancesAccumulateExactly) {
  VirtualClock clock;
  constexpr int kThreads = 8;
  constexpr int kAdvancesPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < kAdvancesPerThread; ++i) clock.Advance(3);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(clock.NowMicros(), int64_t{3} * kThreads * kAdvancesPerThread);
}

TEST(SystemClockTest, IsMonotonicNonDecreasing) {
  const SystemClock* clock = SystemClock::Get();
  ASSERT_NE(clock, nullptr);
  int64_t previous = clock->NowMicros();
  for (int i = 0; i < 1000; ++i) {
    int64_t now = clock->NowMicros();
    EXPECT_GE(now, previous);
    previous = now;
  }
  EXPECT_EQ(SystemClock::Get(), clock);  // shared instance
}

TEST(StopwatchTest, ReadsVirtualClock) {
  VirtualClock clock;
  Stopwatch watch(&clock);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 0.0);
  clock.Advance(2500000);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 2.5);
  EXPECT_DOUBLE_EQ(watch.ElapsedMillis(), 2500.0);
  watch.Reset();
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 0.0);
  clock.Advance(1);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 1e-6);
}

TEST(StopwatchTest, WallClockModeStillTicksForward) {
  Stopwatch watch;
  double first = watch.ElapsedSeconds();
  double second = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  watch.Reset();
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace alex
