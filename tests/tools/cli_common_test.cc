#include "cli_common.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

namespace alex::tools {
namespace {

CommandLine Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return ParseArgs(static_cast<int>(args.size()),
                   const_cast<char**>(args.data()));
}

TEST(CommandLineTest, PositionalArguments) {
  CommandLine cmd = Parse({"explore", "left.nt", "right.nt"});
  ASSERT_EQ(cmd.positional.size(), 3u);
  EXPECT_EQ(cmd.positional[0], "explore");
  EXPECT_EQ(cmd.positional[2], "right.nt");
  EXPECT_TRUE(cmd.flags.empty());
}

TEST(CommandLineTest, FlagWithSeparateValue) {
  CommandLine cmd = Parse({"--links", "a.tsv"});
  EXPECT_TRUE(cmd.Has("links"));
  EXPECT_EQ(cmd.GetString("links"), "a.tsv");
}

TEST(CommandLineTest, FlagWithEqualsValue) {
  CommandLine cmd = Parse({"--threshold=0.9"});
  EXPECT_DOUBLE_EQ(cmd.GetDouble("threshold", 0.0), 0.9);
}

TEST(CommandLineTest, BooleanFlagBeforeAnotherFlag) {
  CommandLine cmd = Parse({"--verbose", "--out", "x.tsv"});
  EXPECT_EQ(cmd.GetString("verbose"), "true");
  EXPECT_EQ(cmd.GetString("out"), "x.tsv");
}

TEST(CommandLineTest, BooleanFlagAtEnd) {
  CommandLine cmd = Parse({"--list"});
  EXPECT_EQ(cmd.GetString("list"), "true");
}

TEST(CommandLineTest, RepeatedFlagsAccumulate) {
  CommandLine cmd = Parse({"--rule", "a,b", "--rule", "c,d"});
  ASSERT_EQ(cmd.GetAll("rule").size(), 2u);
  EXPECT_EQ(cmd.GetAll("rule")[0], "a,b");
  EXPECT_EQ(cmd.GetAll("rule")[1], "c,d");
  // GetString takes the last occurrence.
  EXPECT_EQ(cmd.GetString("rule"), "c,d");
}

TEST(CommandLineTest, NumericAccessorsFallBack) {
  CommandLine cmd = Parse({"--episodes", "12"});
  EXPECT_EQ(cmd.GetInt("episodes", 40), 12);
  EXPECT_EQ(cmd.GetInt("missing", 40), 40);
  EXPECT_DOUBLE_EQ(cmd.GetDouble("missing", 0.05), 0.05);
  CommandLine bad = Parse({"--episodes", "not-a-number"});
  EXPECT_EQ(bad.GetInt("episodes", 40), 40);  // parse failure keeps default
}

TEST(CommandLineTest, MixedPositionalAndFlags) {
  CommandLine cmd =
      Parse({"paris", "l.nt", "--threshold", "0.8", "r.nt", "--tsv=o.tsv"});
  ASSERT_EQ(cmd.positional.size(), 3u);
  EXPECT_EQ(cmd.positional[1], "l.nt");
  EXPECT_EQ(cmd.positional[2], "r.nt");
  EXPECT_DOUBLE_EQ(cmd.GetDouble("threshold", 0.0), 0.8);
  EXPECT_EQ(cmd.GetString("tsv"), "o.tsv");
}

TEST(CommandLineTest, GetAllOnUnknownIsEmpty) {
  CommandLine cmd = Parse({});
  EXPECT_TRUE(cmd.GetAll("nothing").empty());
  EXPECT_FALSE(cmd.Has("nothing"));
  EXPECT_EQ(cmd.GetString("nothing", "dflt"), "dflt");
}

}  // namespace
}  // namespace alex::tools
