#include "feedback/oracle.h"

#include <gtest/gtest.h>

namespace alex::feedback {
namespace {

using linking::Link;

TEST(GroundTruthTest, ContainsExactPairs) {
  GroundTruth truth({{"a", "x", 1.0}, {"b", "y", 1.0}});
  EXPECT_EQ(truth.size(), 2u);
  EXPECT_TRUE(truth.Contains({"a", "x", 0.5}));  // score ignored
  EXPECT_FALSE(truth.Contains({"a", "y", 1.0}));
  EXPECT_FALSE(truth.Contains({"x", "a", 1.0}));  // directional
}

TEST(GroundTruthTest, AddIsIdempotent) {
  GroundTruth truth;
  truth.Add({"a", "x", 1.0});
  truth.Add({"a", "x", 0.9});
  EXPECT_EQ(truth.size(), 1u);
}

TEST(OracleTest, PerfectOracleMatchesTruth) {
  GroundTruth truth({{"a", "x", 1.0}});
  Oracle oracle(&truth, 0.0, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(oracle.Feedback({"a", "x", 1.0}));
    EXPECT_FALSE(oracle.Feedback({"a", "z", 1.0}));
  }
  EXPECT_EQ(oracle.items(), 200u);
  EXPECT_EQ(oracle.errors(), 0u);
}

TEST(OracleTest, ErrorRateFlipsApproximatelyThatFraction) {
  GroundTruth truth({{"a", "x", 1.0}});
  Oracle oracle(&truth, 0.1, 7);
  int wrong = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!oracle.Feedback({"a", "x", 1.0})) ++wrong;
  }
  EXPECT_NEAR(static_cast<double>(wrong) / n, 0.1, 0.01);
  EXPECT_EQ(oracle.errors(), static_cast<size_t>(wrong));
}

TEST(OracleTest, AlwaysWrongAtErrorRateOne) {
  GroundTruth truth({{"a", "x", 1.0}});
  Oracle oracle(&truth, 1.0, 3);
  EXPECT_FALSE(oracle.Feedback({"a", "x", 1.0}));
  EXPECT_TRUE(oracle.Feedback({"a", "z", 1.0}));
}

TEST(OracleTest, DeterministicPerSeed) {
  GroundTruth truth({{"a", "x", 1.0}});
  Oracle o1(&truth, 0.5, 99);
  Oracle o2(&truth, 0.5, 99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(o1.Feedback({"a", "x", 1.0}), o2.Feedback({"a", "x", 1.0}));
  }
}

}  // namespace
}  // namespace alex::feedback
