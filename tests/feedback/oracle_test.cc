#include "feedback/oracle.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace alex::feedback {
namespace {

using linking::Link;

TEST(GroundTruthTest, ContainsExactPairs) {
  GroundTruth truth({{"a", "x", 1.0}, {"b", "y", 1.0}});
  EXPECT_EQ(truth.size(), 2u);
  EXPECT_TRUE(truth.Contains({"a", "x", 0.5}));  // score ignored
  EXPECT_FALSE(truth.Contains({"a", "y", 1.0}));
  EXPECT_FALSE(truth.Contains({"x", "a", 1.0}));  // directional
}

TEST(GroundTruthTest, AddIsIdempotent) {
  GroundTruth truth;
  truth.Add({"a", "x", 1.0});
  truth.Add({"a", "x", 0.9});
  EXPECT_EQ(truth.size(), 1u);
}

TEST(OracleTest, PerfectOracleMatchesTruth) {
  GroundTruth truth({{"a", "x", 1.0}});
  Oracle oracle(&truth, 0.0, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(oracle.Feedback({"a", "x", 1.0}));
    EXPECT_FALSE(oracle.Feedback({"a", "z", 1.0}));
  }
  EXPECT_EQ(oracle.items(), 200u);
  EXPECT_EQ(oracle.errors(), 0u);
}

TEST(OracleTest, ErrorRateFlipsApproximatelyThatFraction) {
  GroundTruth truth({{"a", "x", 1.0}});
  Oracle oracle(&truth, 0.1, 7);
  int wrong = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!oracle.Feedback({"a", "x", 1.0})) ++wrong;
  }
  EXPECT_NEAR(static_cast<double>(wrong) / n, 0.1, 0.01);
  EXPECT_EQ(oracle.errors(), static_cast<size_t>(wrong));
}

TEST(OracleTest, AlwaysWrongAtErrorRateOne) {
  GroundTruth truth({{"a", "x", 1.0}});
  Oracle oracle(&truth, 1.0, 3);
  EXPECT_FALSE(oracle.Feedback({"a", "x", 1.0}));
  EXPECT_TRUE(oracle.Feedback({"a", "z", 1.0}));
}

TEST(OracleTest, DeterministicPerSeed) {
  GroundTruth truth({{"a", "x", 1.0}});
  Oracle o1(&truth, 0.5, 99);
  Oracle o2(&truth, 0.5, 99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(o1.Feedback({"a", "x", 1.0}), o2.Feedback({"a", "x", 1.0}));
  }
}

TEST(OracleTest, FlipSequenceDependsOnlyOnPerLinkQueryOrder) {
  // Interleaving queries of different links arbitrarily must not change any
  // link's flip sequence: the k-th query of a link gets the same answer no
  // matter what was asked in between. This is what makes parallel episodes
  // deterministic — each link lives in one partition, so its per-link order
  // is fixed even though the global order varies with thread timing.
  GroundTruth truth({{"a", "x", 1.0}, {"b", "y", 1.0}});
  const Link links[] = {{"a", "x", 1.0}, {"b", "y", 1.0}, {"c", "z", 1.0}};
  const int kPerLink = 50;

  std::vector<std::vector<bool>> grouped(3), interleaved(3);
  Oracle o1(&truth, 0.4, 11);
  for (int l = 0; l < 3; ++l) {
    for (int i = 0; i < kPerLink; ++i) {
      grouped[l].push_back(o1.Feedback(links[l]));
    }
  }
  Oracle o2(&truth, 0.4, 11);
  for (int i = 0; i < kPerLink; ++i) {
    // A different global order (round-robin, reversed link order).
    for (int l = 2; l >= 0; --l) {
      interleaved[l].push_back(o2.Feedback(links[l]));
    }
  }
  for (int l = 0; l < 3; ++l) {
    EXPECT_EQ(interleaved[l], grouped[l]) << "link " << l;
  }
  EXPECT_EQ(o1.items(), o2.items());
  EXPECT_EQ(o1.errors(), o2.errors());
}

TEST(OracleTest, ConcurrentFeedbackMatchesSerialPerLink) {
  GroundTruth truth({{"l0", "r0", 1.0}, {"l2", "r2", 1.0}});
  const int kThreads = 4;
  const int kPerLink = 500;
  Oracle concurrent(&truth, 0.3, 21);
  std::vector<std::vector<bool>> outcomes(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    // One link per thread: per-link order is then deterministic even
    // though threads interleave freely on the shared oracle.
    workers.emplace_back([&concurrent, &outcomes, t] {
      Link link{"l" + std::to_string(t), "r" + std::to_string(t), 1.0};
      for (int i = 0; i < kPerLink; ++i) {
        outcomes[t].push_back(concurrent.Feedback(link));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(concurrent.items(),
            static_cast<size_t>(kThreads) * kPerLink);

  Oracle serial(&truth, 0.3, 21);
  for (int t = 0; t < kThreads; ++t) {
    Link link{"l" + std::to_string(t), "r" + std::to_string(t), 1.0};
    for (int i = 0; i < kPerLink; ++i) {
      EXPECT_EQ(serial.Feedback(link), outcomes[t][i])
          << "link " << t << " draw " << i;
    }
  }
  EXPECT_EQ(concurrent.errors(), serial.errors());
}

}  // namespace
}  // namespace alex::feedback
