#include "feedback/aggregator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace alex::feedback {
namespace {

using linking::Link;

const Link kLink{"http://l/a", "http://r/x", 1.0};

// Applies one drain's worth of votes and returns the batch.
std::vector<LinkVerdict> DrainOnce(FeedbackAggregator* agg, uint64_t epoch) {
  return agg->DrainVerdicts(epoch);
}

TEST(AggregatorTest, NoVerdictBeforeQuorum) {
  FeedbackAggregator agg({.quorum = 3});
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, true);
  EXPECT_EQ(agg.PositiveVotes(kLink), 2);
  EXPECT_TRUE(DrainOnce(&agg, 0).empty());
  EXPECT_EQ(agg.pending(), 1u);
}

TEST(AggregatorTest, UnanimousQuorumEmitsVerdict) {
  FeedbackAggregator agg({.quorum = 3});
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, true);
  std::vector<LinkVerdict> batch = DrainOnce(&agg, 0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].approve);
  EXPECT_EQ(batch[0].positive, 3u);
  EXPECT_EQ(batch[0].negative, 0u);
  EXPECT_EQ(agg.verdicts_emitted(), 1u);
}

TEST(AggregatorTest, MajorityWinsDespiteDissent) {
  FeedbackAggregator agg({.quorum = 3});
  agg.AddVote(kLink, false);
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, true);
  std::vector<LinkVerdict> batch = DrainOnce(&agg, 0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].approve);
  // The dissenting vote was suppressed by the quorum.
  EXPECT_EQ(agg.stats().votes_suppressed, 1u);
}

TEST(AggregatorTest, NegativeMajority) {
  FeedbackAggregator agg({.quorum = 3});
  agg.AddVote(kLink, false);
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, false);
  std::vector<LinkVerdict> batch = DrainOnce(&agg, 0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FALSE(batch[0].approve);
}

TEST(AggregatorTest, TieKeepsAccumulating) {
  FeedbackAggregator agg({.quorum = 2});
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, false);
  EXPECT_TRUE(DrainOnce(&agg, 0).empty());  // 1-1 tie
  agg.AddVote(kLink, true);                 // breaks the tie
  std::vector<LinkVerdict> batch = DrainOnce(&agg, 1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].approve);
}

TEST(AggregatorTest, ResetAfterVerdict) {
  FeedbackAggregator agg({.quorum = 2});
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, true);
  EXPECT_EQ(DrainOnce(&agg, 0).size(), 1u);
  EXPECT_EQ(agg.PositiveVotes(kLink), 0);  // tally cleared
  EXPECT_EQ(agg.pending(), 0u);
}

TEST(AggregatorTest, KeepTallyReEmitsOnlyOnFreshVotes) {
  FeedbackAggregator agg(
      {.quorum = 2, .majority = 0.5, .reset_after_verdict = false});
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, true);
  EXPECT_EQ(DrainOnce(&agg, 0).size(), 1u);
  EXPECT_EQ(agg.PositiveVotes(kLink), 2);  // tally kept
  // No new votes: the same tally must not re-emit.
  EXPECT_TRUE(DrainOnce(&agg, 1).empty());
  // A fresh vote re-opens it.
  agg.AddVote(kLink, true);
  std::vector<LinkVerdict> batch = DrainOnce(&agg, 2);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].positive, 3u);
}

TEST(AggregatorTest, LinksAreIndependentAndBatchSorted) {
  FeedbackAggregator agg({.quorum = 1});
  Link b{"http://l/b", "http://r/y", 1.0};
  // Insert in descending link order; the batch must come back ascending.
  agg.AddVote(b, false);
  agg.AddVote(kLink, true);
  std::vector<LinkVerdict> batch = DrainOnce(&agg, 0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].link, kLink);
  EXPECT_TRUE(batch[0].approve);
  EXPECT_EQ(batch[1].link, b);
  EXPECT_FALSE(batch[1].approve);
}

TEST(AggregatorTest, SupermajorityThreshold) {
  // With majority = 0.66, a 3-2 split (60%) does not pass but 4-2 (66.7%)
  // does.
  FeedbackAggregator agg({.quorum = 5, .majority = 0.66});
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, false);
  agg.AddVote(kLink, false);
  EXPECT_TRUE(DrainOnce(&agg, 0).empty());
  agg.AddVote(kLink, true);
  std::vector<LinkVerdict> batch = DrainOnce(&agg, 1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].approve);
}

TEST(AggregatorTest, StaleTalliesAreEvicted) {
  FeedbackAggregator agg({.quorum = 5, .stale_after_epochs = 3});
  agg.AddVote(kLink, true);  // stamped epoch 0, never reaches quorum
  EXPECT_TRUE(agg.DrainVerdicts(0).empty());
  EXPECT_EQ(agg.pending(), 1u);
  EXPECT_TRUE(agg.DrainVerdicts(1).empty());
  EXPECT_TRUE(agg.DrainVerdicts(2).empty());
  EXPECT_EQ(agg.pending(), 1u);  // epoch 2 < 0 + 3: still alive
  EXPECT_TRUE(agg.DrainVerdicts(3).empty());
  EXPECT_EQ(agg.pending(), 0u);  // evicted at its TTL
  AggregatorStats stats = agg.stats();
  EXPECT_EQ(stats.tallies_evicted, 1u);
  EXPECT_EQ(stats.votes_suppressed, 1u);
}

TEST(AggregatorTest, FreshVotesRefreshTheTtl) {
  FeedbackAggregator agg({.quorum = 5, .stale_after_epochs = 3});
  agg.AddVote(kLink, true);
  agg.DrainVerdicts(0);
  agg.DrainVerdicts(1);
  agg.AddVote(kLink, true);  // stamped epoch 2 by the vote clock
  agg.DrainVerdicts(2);
  agg.DrainVerdicts(3);
  agg.DrainVerdicts(4);
  EXPECT_EQ(agg.pending(), 1u);  // epoch 4 < 2 + 3
  agg.DrainVerdicts(5);
  EXPECT_EQ(agg.pending(), 0u);
}

TEST(AggregatorTest, MaxPendingEvictsOldestThenSmallestLink) {
  // Unbounded-growth regression: a stream of never-quorate links must not
  // grow the tally population past the cap, and the victims are
  // deterministic (oldest vote epoch first, then ascending link).
  AggregatorOptions options;
  options.quorum = 100;  // nothing ever emits
  options.stale_after_epochs = 0;
  options.max_pending = 8;
  FeedbackAggregator agg(options);
  for (int epoch = 0; epoch < 50; ++epoch) {
    for (int i = 0; i < 4; ++i) {
      Link link{"l" + std::to_string(epoch * 4 + i),
                "r" + std::to_string(epoch * 4 + i), 1.0};
      agg.AddVote(link, true);
    }
    agg.DrainVerdicts(static_cast<uint64_t>(epoch));
    EXPECT_LE(agg.pending(), options.max_pending);
  }
  // The survivors are exactly the youngest tallies.
  EXPECT_EQ(agg.pending(), 8u);
  EXPECT_EQ(agg.PositiveVotes(Link{"l196", "r196", 1.0}), 1);
  EXPECT_EQ(agg.PositiveVotes(Link{"l199", "r199", 1.0}), 1);
  EXPECT_EQ(agg.PositiveVotes(Link{"l0", "r0", 1.0}), 0);
  EXPECT_EQ(agg.stats().tallies_evicted, 50u * 4u - 8u);
}

// Independently-implemented single-map reference: verdicts from per-link
// vote multisets, majority-checked at drain time, sorted by link.
std::vector<LinkVerdict> ReferenceVerdicts(
    const std::vector<std::pair<Link, bool>>& votes, int quorum,
    double majority) {
  std::map<Link, std::pair<uint32_t, uint32_t>> tallies;
  for (const auto& [link, approve] : votes) {
    if (approve) {
      ++tallies[link].first;
    } else {
      ++tallies[link].second;
    }
  }
  std::vector<LinkVerdict> out;
  for (const auto& [link, tally] : tallies) {
    const uint32_t total = tally.first + tally.second;
    if (total < static_cast<uint32_t>(quorum)) continue;
    const double threshold = majority * total;
    LinkVerdict v;
    v.link = link;
    v.positive = tally.first;
    v.negative = tally.second;
    if (tally.first > threshold) {
      v.approve = true;
    } else if (tally.second > threshold) {
      v.approve = false;
    } else {
      continue;  // tie
    }
    out.push_back(v);
  }
  return out;  // std::map iterates in ascending link order
}

bool SameBatch(const std::vector<LinkVerdict>& a,
               const std::vector<LinkVerdict>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].link == b[i].link) || a[i].approve != b[i].approve ||
        a[i].positive != b[i].positive || a[i].negative != b[i].negative) {
      return false;
    }
  }
  return true;
}

TEST(AggregatorDifferentialTest, RandomStreamsMatchReferenceAnyShardCount) {
  Rng rng(2026);
  for (int round = 0; round < 20; ++round) {
    // A random vote stream over a small link universe (lots of collisions).
    std::vector<std::pair<Link, bool>> votes;
    const size_t universe = 1 + rng.NextBounded(30);
    const size_t count = rng.NextBounded(400);
    for (size_t v = 0; v < count; ++v) {
      size_t id = rng.NextBounded(universe);
      votes.push_back({Link{"l" + std::to_string(id),
                            "r" + std::to_string(id), 1.0},
                       rng.NextBool(0.6)});
    }
    const int quorum = 1 + static_cast<int>(rng.NextBounded(5));
    std::vector<LinkVerdict> expected =
        ReferenceVerdicts(votes, quorum, 0.5);
    for (size_t shards : {1u, 4u, 16u}) {
      AggregatorOptions options;
      options.quorum = quorum;
      options.num_shards = shards;
      FeedbackAggregator agg(options);
      // Feed in a fresh shuffled order per shard count: the batch depends
      // only on the multiset.
      std::vector<std::pair<Link, bool>> shuffled = votes;
      rng.Shuffle(&shuffled);
      for (const auto& [link, approve] : shuffled) {
        agg.AddVote(link, approve);
      }
      std::vector<LinkVerdict> batch = agg.DrainVerdicts(0);
      EXPECT_TRUE(SameBatch(batch, expected))
          << "round " << round << " shards " << shards;
    }
  }
}

TEST(AggregatorThreadTest, ConcurrentVoteStreamsDrainIdentically) {
  // The same vote multiset cast by 1, 2 and 4 threads must drain to the
  // same verdict batch, for both the sharded and the single-lock layout.
  Rng rng(99);
  std::vector<std::pair<Link, bool>> votes;
  for (size_t v = 0; v < 2000; ++v) {
    size_t id = rng.NextBounded(64);
    votes.push_back({Link{"l" + std::to_string(id),
                          "r" + std::to_string(id), 1.0},
                     rng.NextBool(0.7)});
  }
  for (size_t shards : {1u, 16u}) {
    std::vector<LinkVerdict> baseline;
    for (int threads : {1, 2, 4}) {
      AggregatorOptions options;
      options.quorum = 3;
      options.num_shards = shards;
      FeedbackAggregator agg(options);
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          for (size_t v = static_cast<size_t>(t); v < votes.size();
               v += static_cast<size_t>(threads)) {
            agg.AddVote(votes[v].first, votes[v].second);
          }
        });
      }
      for (std::thread& w : workers) w.join();
      std::vector<LinkVerdict> batch = agg.DrainVerdicts(0);
      if (threads == 1) {
        baseline = batch;
      } else {
        EXPECT_TRUE(SameBatch(batch, baseline))
            << "shards " << shards << " threads " << threads;
      }
    }
  }
}

TEST(AggregatorTest, SuppressesNoisyUsersStatistically) {
  // 100 links, each voted on by 5 users who are wrong 20% of the time:
  // the aggregated verdicts should have far fewer errors than the raw
  // votes. (The mechanism §6.3 alludes to for pre-cleaning feedback.)
  Rng rng(77);
  FeedbackAggregator agg({.quorum = 5});
  int wrong_verdicts = 0;
  for (int i = 0; i < 100; ++i) {
    Link link{"l" + std::to_string(i), "r" + std::to_string(i), 1.0};
    bool truth = i % 2 == 0;
    for (int user = 0; user < 5; ++user) {
      bool vote = rng.NextBool(0.2) ? !truth : truth;
      agg.AddVote(link, vote);
    }
  }
  std::vector<LinkVerdict> batch = agg.DrainVerdicts(0);
  EXPECT_GT(batch.size(), 80u);
  for (const LinkVerdict& verdict : batch) {
    bool truth = std::stoi(verdict.link.left.substr(1)) % 2 == 0;
    if (verdict.approve != truth) ++wrong_verdicts;
  }
  // Raw error rate would be ~20%; aggregated should be well under 10%.
  EXPECT_LT(static_cast<double>(wrong_verdicts) /
                static_cast<double>(batch.size()),
            0.1);
}

TEST(AggregatorTest, StatsTrackTheWholeLifecycle) {
  AggregatorOptions options;
  options.quorum = 3;
  options.stale_after_epochs = 1;
  FeedbackAggregator agg(options);
  Link quorate{"l/q", "r/q", 1.0};
  Link stale{"l/s", "r/s", 1.0};
  agg.AddVote(quorate, true);
  agg.AddVote(quorate, true);
  agg.AddVote(quorate, false);
  agg.AddVote(stale, true);
  agg.DrainVerdicts(0);  // emits quorate (suppressing 1 dissent)
  agg.DrainVerdicts(1);  // evicts stale (suppressing its 1 vote)
  AggregatorStats stats = agg.stats();
  EXPECT_EQ(stats.votes_recorded, 4u);
  EXPECT_EQ(stats.verdicts_emitted, 1u);
  EXPECT_EQ(stats.votes_suppressed, 2u);
  EXPECT_EQ(stats.tallies_evicted, 1u);
  EXPECT_EQ(stats.pending, 0u);
}

}  // namespace
}  // namespace alex::feedback
