#include "feedback/aggregator.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace alex::feedback {
namespace {

using linking::Link;

const Link kLink{"http://l/a", "http://r/x", 1.0};

TEST(AggregatorTest, NoVerdictBeforeQuorum) {
  FeedbackAggregator agg({.quorum = 3});
  EXPECT_FALSE(agg.AddVote(kLink, true).has_value());
  EXPECT_FALSE(agg.AddVote(kLink, true).has_value());
  EXPECT_EQ(agg.PositiveVotes(kLink), 2);
  EXPECT_EQ(agg.pending(), 1u);
}

TEST(AggregatorTest, UnanimousQuorumEmitsVerdict) {
  FeedbackAggregator agg({.quorum = 3});
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, true);
  std::optional<bool> verdict = agg.AddVote(kLink, true);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
  EXPECT_EQ(agg.verdicts_emitted(), 1u);
}

TEST(AggregatorTest, MajorityWinsDespiteDissent) {
  FeedbackAggregator agg({.quorum = 3});
  agg.AddVote(kLink, false);
  agg.AddVote(kLink, true);
  std::optional<bool> verdict = agg.AddVote(kLink, true);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
}

TEST(AggregatorTest, NegativeMajority) {
  FeedbackAggregator agg({.quorum = 3});
  agg.AddVote(kLink, false);
  agg.AddVote(kLink, true);
  std::optional<bool> verdict = agg.AddVote(kLink, false);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
}

TEST(AggregatorTest, TieKeepsAccumulating) {
  FeedbackAggregator agg({.quorum = 2});
  agg.AddVote(kLink, true);
  EXPECT_FALSE(agg.AddVote(kLink, false).has_value());  // 1-1 tie
  // The next vote breaks the tie.
  std::optional<bool> verdict = agg.AddVote(kLink, true);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
}

TEST(AggregatorTest, ResetAfterVerdict) {
  FeedbackAggregator agg({.quorum = 2});
  agg.AddVote(kLink, true);
  ASSERT_TRUE(agg.AddVote(kLink, true).has_value());
  EXPECT_EQ(agg.PositiveVotes(kLink), 0);  // tally cleared
  EXPECT_EQ(agg.pending(), 0u);
}

TEST(AggregatorTest, KeepTallyWhenConfigured) {
  FeedbackAggregator agg({.quorum = 2, .majority = 0.5,
                          .reset_after_verdict = false});
  agg.AddVote(kLink, true);
  ASSERT_TRUE(agg.AddVote(kLink, true).has_value());
  EXPECT_EQ(agg.PositiveVotes(kLink), 2);
}

TEST(AggregatorTest, LinksAreIndependent) {
  FeedbackAggregator agg({.quorum = 2});
  Link other{"http://l/b", "http://r/y", 1.0};
  agg.AddVote(kLink, true);
  agg.AddVote(other, false);
  EXPECT_EQ(agg.PositiveVotes(kLink), 1);
  EXPECT_EQ(agg.NegativeVotes(other), 1);
  EXPECT_EQ(agg.pending(), 2u);
}

TEST(AggregatorTest, SupermajorityThreshold) {
  // With majority = 0.66, a 2-1 split (66.7% > 66%) barely passes but a
  // 3-2 split (60%) does not.
  FeedbackAggregator agg({.quorum = 5, .majority = 0.66});
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, true);
  agg.AddVote(kLink, false);
  EXPECT_FALSE(agg.AddVote(kLink, false).has_value());  // 3-2: no verdict
  // One more positive vote reaches 4-2 (66.7% > 66%).
  std::optional<bool> verdict = agg.AddVote(kLink, true);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
}

TEST(AggregatorTest, SuppressesNoisyUsersStatistically) {
  // 100 links, each voted on by 5 users who are wrong 20% of the time:
  // the aggregated verdicts should have far fewer errors than the raw
  // votes. (The mechanism §6.3 alludes to for pre-cleaning feedback.)
  Rng rng(77);
  FeedbackAggregator agg({.quorum = 5});
  int wrong_verdicts = 0;
  int verdicts = 0;
  for (int i = 0; i < 100; ++i) {
    Link link{"l" + std::to_string(i), "r" + std::to_string(i), 1.0};
    bool truth = i % 2 == 0;
    for (int user = 0; user < 5; ++user) {
      bool vote = rng.NextBool(0.2) ? !truth : truth;
      std::optional<bool> verdict = agg.AddVote(link, vote);
      if (verdict.has_value()) {
        ++verdicts;
        if (*verdict != truth) ++wrong_verdicts;
      }
    }
  }
  EXPECT_GT(verdicts, 80);
  // Raw error rate would be ~20%; aggregated should be well under 10%.
  EXPECT_LT(static_cast<double>(wrong_verdicts) / verdicts, 0.1);
}

}  // namespace
}  // namespace alex::feedback
