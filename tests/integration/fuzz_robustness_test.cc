// Robustness "fuzz" tests: the parsers and executors must never crash or
// hang on malformed input — they return parse errors (Status) instead.
// Deterministic pseudo-random mutation keeps these reproducible.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "linking/link_io.h"
#include "rdf/ntriples.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/tokenizer.h"

namespace alex {
namespace {

// Mutates `text` with random splices, truncations and character noise.
std::string Mutate(const std::string& text, Rng* rng) {
  std::string out = text;
  int edits = 1 + static_cast<int>(rng->NextBounded(6));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng->NextBounded(out.size());
    switch (rng->NextBounded(4)) {
      case 0:
        out[pos] = static_cast<char>(rng->NextBounded(256));
        break;
      case 1:
        out.erase(pos, 1 + rng->NextBounded(4));
        break;
      case 2:
        out.insert(pos, std::string(1 + rng->NextBounded(3),
                                    static_cast<char>(
                                        32 + rng->NextBounded(95))));
        break;
      default:
        out.resize(pos);  // truncate
        break;
    }
  }
  return out;
}

TEST(FuzzTest, NTriplesParserNeverCrashes) {
  const std::string seed_doc =
      "<http://x/s> <http://x/p> \"v\\\"esc\"^^"
      "<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "_:b0 <http://x/q> <http://x/o> .\n"
      "# comment\n";
  Rng rng(101);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = Mutate(seed_doc, &rng);
    rdf::TripleStore store("fuzz");
    Status st = rdf::ParseNTriples(mutated, &store);
    // OK or a parse error; anything else is a bug.
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kParseError) << mutated;
    }
  }
}

TEST(FuzzTest, SparqlParserNeverCrashes) {
  const std::string seed_query =
      "PREFIX ex: <http://x/> SELECT DISTINCT ?a ?b WHERE { "
      "?a ex:p ?b ; ex:q \"lit\" . { ?a ex:r 5 } UNION { ?a ex:s 2.5 } "
      "OPTIONAL { ?b ex:t ?c } FILTER(?b > 1 && !(?c = \"x\")) } "
      "ORDER BY DESC(?a) LIMIT 10 OFFSET 2";
  Rng rng(202);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = Mutate(seed_query, &rng);
    Result<sparql::Query> query = sparql::ParseQuery(mutated);
    if (!query.ok()) {
      EXPECT_EQ(query.status().code(), StatusCode::kParseError) << mutated;
    }
  }
}

TEST(FuzzTest, MutatedQueriesExecuteSafely) {
  rdf::TripleStore store("data");
  for (int i = 0; i < 20; ++i) {
    store.Add(rdf::Term::Iri("http://x/s" + std::to_string(i)),
              rdf::Term::Iri("http://x/p" + std::to_string(i % 3)),
              rdf::Term::IntegerLiteral(i));
  }
  const std::string seed_query =
      "SELECT ?s ?o WHERE { ?s <http://x/p0> ?o . "
      "FILTER(?o >= 0) } ORDER BY ?o LIMIT 5";
  Rng rng(303);
  int executed = 0;
  for (int i = 0; i < 300; ++i) {
    Result<sparql::Query> query = sparql::ParseQuery(
        Mutate(seed_query, &rng));
    if (!query.ok()) continue;
    Result<std::vector<sparql::Binding>> rows =
        sparql::Execute(query.value(), store);
    if (rows.ok()) ++executed;
  }
  // Many mutants still parse and run; none may crash.
  EXPECT_GT(executed, 0);
}

TEST(FuzzTest, LinksTsvParserNeverCrashes) {
  const std::string seed = "http://l/a\thttp://r/x\t0.97\n# c\nl\tr\n";
  Rng rng(404);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = Mutate(seed, &rng);
    Result<std::vector<linking::Link>> links =
        linking::ParseLinksTsv(mutated);
    if (!links.ok()) {
      EXPECT_EQ(links.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(FuzzTest, TokenizerHandlesAllByteValues) {
  for (int c = 0; c < 256; ++c) {
    std::string one(1, static_cast<char>(c));
    sparql::Tokenize(one);   // must not crash
    rdf::TripleStore store("t");
    rdf::ParseNTriples(one, &store);  // must not crash
  }
  SUCCEED();
}

}  // namespace
}  // namespace alex
