// Robustness "fuzz" tests: the parsers and executors must never crash or
// hang on malformed input — they return parse errors (Status) instead, and
// the engine's incremental frontier maintenance must survive arbitrary link
// churn bit-identically to a rebuild-every-epoch engine.
// Deterministic pseudo-random mutation keeps these reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/alex_engine.h"
#include "datagen/profiles.h"
#include "eval/query_workload.h"
#include "federation/fault_injection.h"
#include "feedback/oracle.h"
#include "linking/link_io.h"
#include "linking/paris.h"
#include "rdf/ntriples.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/tokenizer.h"

namespace alex {
namespace {

// Mutates `text` with random splices, truncations and character noise.
std::string Mutate(const std::string& text, Rng* rng) {
  std::string out = text;
  int edits = 1 + static_cast<int>(rng->NextBounded(6));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng->NextBounded(out.size());
    switch (rng->NextBounded(4)) {
      case 0:
        out[pos] = static_cast<char>(rng->NextBounded(256));
        break;
      case 1:
        out.erase(pos, 1 + rng->NextBounded(4));
        break;
      case 2:
        out.insert(pos, std::string(1 + rng->NextBounded(3),
                                    static_cast<char>(
                                        32 + rng->NextBounded(95))));
        break;
      default:
        out.resize(pos);  // truncate
        break;
    }
  }
  return out;
}

TEST(FuzzTest, NTriplesParserNeverCrashes) {
  const std::string seed_doc =
      "<http://x/s> <http://x/p> \"v\\\"esc\"^^"
      "<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "_:b0 <http://x/q> <http://x/o> .\n"
      "# comment\n";
  Rng rng(101);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = Mutate(seed_doc, &rng);
    rdf::TripleStore store("fuzz");
    Status st = rdf::ParseNTriples(mutated, &store);
    // OK or a parse error; anything else is a bug.
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kParseError) << mutated;
    }
  }
}

TEST(FuzzTest, SparqlParserNeverCrashes) {
  const std::string seed_query =
      "PREFIX ex: <http://x/> SELECT DISTINCT ?a ?b WHERE { "
      "?a ex:p ?b ; ex:q \"lit\" . { ?a ex:r 5 } UNION { ?a ex:s 2.5 } "
      "OPTIONAL { ?b ex:t ?c } FILTER(?b > 1 && !(?c = \"x\")) } "
      "ORDER BY DESC(?a) LIMIT 10 OFFSET 2";
  Rng rng(202);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = Mutate(seed_query, &rng);
    Result<sparql::Query> query = sparql::ParseQuery(mutated);
    if (!query.ok()) {
      EXPECT_EQ(query.status().code(), StatusCode::kParseError) << mutated;
    }
  }
}

TEST(FuzzTest, MutatedQueriesExecuteSafely) {
  rdf::TripleStore store("data");
  for (int i = 0; i < 20; ++i) {
    store.Add(rdf::Term::Iri("http://x/s" + std::to_string(i)),
              rdf::Term::Iri("http://x/p" + std::to_string(i % 3)),
              rdf::Term::IntegerLiteral(i));
  }
  const std::string seed_query =
      "SELECT ?s ?o WHERE { ?s <http://x/p0> ?o . "
      "FILTER(?o >= 0) } ORDER BY ?o LIMIT 5";
  Rng rng(303);
  int executed = 0;
  for (int i = 0; i < 300; ++i) {
    Result<sparql::Query> query = sparql::ParseQuery(
        Mutate(seed_query, &rng));
    if (!query.ok()) continue;
    Result<std::vector<sparql::Binding>> rows =
        sparql::Execute(query.value(), store);
    if (rows.ok()) ++executed;
  }
  // Many mutants still parse and run; none may crash.
  EXPECT_GT(executed, 0);
}

TEST(FuzzTest, LinksTsvParserNeverCrashes) {
  const std::string seed = "http://l/a\thttp://r/x\t0.97\n# c\nl\tr\n";
  Rng rng(404);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = Mutate(seed, &rng);
    Result<std::vector<linking::Link>> links =
        linking::ParseLinksTsv(mutated);
    if (!links.ok()) {
      EXPECT_EQ(links.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(FuzzTest, TokenizerHandlesAllByteValues) {
  for (int c = 0; c < 256; ++c) {
    std::string one(1, static_cast<char>(c));
    sparql::Tokenize(one);   // must not crash
    rdf::TripleStore store("t");
    rdf::ParseNTriples(one, &store);  // must not crash
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Link-churn fuzz regime: a noisy oracle drives episodes full of negative
// feedback, rollbacks and blacklist hits, and the engine maintaining its
// explorable frontier incrementally (ApplyDelta) must produce an episode
// series — stats, quality-relevant counts, per-partition frontier
// fingerprints, and the final link set — byte-identical to an engine that
// rebuilds its score indexes from liveness flags every epoch, at every
// thread count.

void AppendBits(std::ostringstream* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  *out << bits << ' ';
}

struct ChurnOutcome {
  std::string series;
  uint64_t negative_feedback = 0;
  uint64_t rollbacks = 0;
  size_t blacklist_entries = 0;
  uint64_t compactions = 0;
};

// One full run of the churn regime. `incremental` selects the maintenance
// strategy under test; everything else is held fixed.
ChurnOutcome RunChurnRegime(const datagen::GeneratedWorld& world,
                            const std::vector<linking::Link>& initial,
                            const feedback::GroundTruth& truth,
                            bool incremental, int threads) {
  core::AlexOptions options;
  options.num_partitions = 4;
  options.num_threads = threads;
  options.episode_size = 40;
  options.max_episodes = 10;
  options.blacklist_strikes = 2;
  options.seed = 77;
  options.incremental_space_maintenance = incremental;
  // Eager compaction: every tombstone/pending entry beyond the live/8 slack
  // triggers a bucket rewrite, maximizing physical churn under test. The
  // threshold only affects physical layout, never logical contents.
  options.space.compaction_threshold = 0;

  core::AlexEngine engine(&world.left, &world.right, options);
  Status status = engine.Initialize(initial);
  ALEX_CHECK(status.ok()) << status.ToString();

  // error_rate 0.2 makes the oracle contradict itself on revisited links:
  // positives that later turn negative trigger rollbacks, repeat negatives
  // trigger blacklist hits. The flip decision is per-link-deterministic, so
  // every run sees the same noise regardless of visit order.
  feedback::Oracle oracle(&truth, 0.2, options.seed + 1);
  auto feedback_fn = [&oracle](const linking::Link& link) {
    return oracle.Feedback(link);
  };

  ChurnOutcome outcome;
  std::ostringstream series;
  core::AlexEngine::RunResult run =
      engine.Run(feedback_fn, [&](const core::EpisodeStats& stats) {
        series << stats.episode << ' ' << stats.feedback_items << ' '
               << stats.positive_feedback << ' ' << stats.negative_feedback
               << ' ' << stats.links_added << ' ' << stats.links_removed
               << ' ' << stats.rollbacks << ' ' << stats.rolled_back_links
               << ' ' << stats.candidate_count << ' ';
        AppendBits(&series, stats.change_fraction);
        for (const core::PartitionAlex& partition : engine.partitions()) {
          series << partition.space().Fingerprint() << ' '
                 << partition.space().live_pair_count() << ' ';
        }
        series << '\n';
        outcome.negative_feedback += stats.negative_feedback;
        outcome.rollbacks += stats.rollbacks;
      });
  series << "converged " << run.converged << " episodes " << run.episodes
         << '\n';

  std::vector<linking::Link> links = engine.CandidateLinks();
  std::sort(links.begin(), links.end(),
            [](const linking::Link& a, const linking::Link& b) {
              return std::tie(a.left, a.right) < std::tie(b.left, b.right);
            });
  for (const linking::Link& link : links) {
    series << link.left << '\t' << link.right << '\n';
  }
  for (const core::PartitionAlex& partition : engine.partitions()) {
    outcome.blacklist_entries += partition.blacklist().size();
    outcome.compactions += partition.space().compaction_count();
  }
  outcome.series = series.str();
  return outcome;
}

TEST(FuzzTest, LinkChurnIncrementalMatchesRebuildEngine) {
  datagen::WorldProfile profile = datagen::TinyTestProfile();
  profile.confusable_pairs = 6;
  datagen::GeneratedWorld world = datagen::Generate(profile);
  feedback::GroundTruth truth(world.ground_truth);
  std::vector<linking::Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right), 0.9);
  ASSERT_GE(initial.size(), 10u) << "profile too small for churn regime";

  std::string reference;
  for (bool incremental : {true, false}) {
    for (int threads : {1, 2, 4}) {
      ChurnOutcome outcome =
          RunChurnRegime(world, initial, truth, incremental, threads);
      if (reference.empty()) {
        reference = outcome.series;
        // The regime must actually exercise churn, not just confirm links:
        // noisy feedback has to produce negatives, rollbacks, and repeat
        // offenders hitting the blacklist.
        EXPECT_GT(outcome.negative_feedback, 0u);
        EXPECT_GT(outcome.rollbacks, 0u);
        EXPECT_GT(outcome.blacklist_entries, 0u);
      } else {
        EXPECT_EQ(outcome.series, reference)
            << (incremental ? "incremental" : "rebuild") << " engine at "
            << threads << " thread(s) diverged";
      }
      if (incremental) {
        // The incremental engine really maintained in place: with the eager
        // threshold, churn must have forced bucket compactions rather than
        // quietly falling back to full rebuilds.
        EXPECT_GT(outcome.compactions, 0u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Endpoint-fault fuzz regime: random fault profiles drawn from the fuzz seed
// drive the query-driven feedback loop over unreliable federation endpoints.
// The invariant under test is the repo-wide determinism contract extended to
// the failure domain: with a fixed fault seed, the full episode series —
// quality, feedback counts, AND the fault bookkeeping (incomplete queries,
// skipped verdicts, retries, breaker transitions) — is bitwise-identical at
// every thread count; and fault modes that cannot change answers (pure
// latency) leave the quality series exactly at the reliable baseline.

struct FaultRegimeOutcome {
  std::string full_series;    // everything, fault counters included
  std::string stable_series;  // quality + feedback + degradation only
  uint64_t incomplete_queries = 0;
  uint64_t skipped_feedback = 0;
  uint64_t query_retries = 0;
  uint64_t breaker_opens = 0;
  uint64_t breaker_short_circuits = 0;
};

// One full query-driven run under `profile`. Everything except the fault
// profile, thread count, and cache switch is held fixed.
FaultRegimeOutcome RunFaultRegime(const datagen::GeneratedWorld& world,
                                  const std::vector<linking::Link>& initial,
                                  const feedback::GroundTruth& truth,
                                  const fed::FaultProfile& profile,
                                  int threads, bool use_cache) {
  core::AlexOptions options;
  options.num_partitions = 2;
  options.num_threads = threads;
  options.seed = 55;
  core::AlexEngine engine(&world.left, &world.right, options);
  Status status = engine.Initialize(initial);
  ALEX_CHECK(status.ok()) << status.ToString();

  eval::QueryDrivenOptions query_options;
  query_options.workload.num_queries = 80;
  query_options.episode_size = 60;
  query_options.max_episodes = 6;
  query_options.use_query_cache = use_cache;
  query_options.fault_profile = profile;
  ThreadPool pool(threads);
  query_options.pool = threads > 1 ? &pool : nullptr;

  eval::ExperimentResult result =
      eval::RunQueryDrivenExperiment(&engine, world, truth, query_options);

  FaultRegimeOutcome outcome;
  std::ostringstream stable;
  std::ostringstream full;
  for (const eval::EpisodePoint& point : result.series) {
    const core::EpisodeStats& stats = point.stats;
    stable << point.episode << ' ';
    AppendBits(&stable, point.quality.precision);
    AppendBits(&stable, point.quality.recall);
    AppendBits(&stable, point.quality.f_measure);
    stable << point.quality.candidates << ' ' << stats.feedback_items << ' '
           << stats.positive_feedback << ' ' << stats.negative_feedback << ' '
           << stats.links_added << ' ' << stats.links_removed << ' '
           << stats.incomplete_queries << ' ' << stats.skipped_feedback
           << '\n';
    // Probe/retry/breaker counters are part of the thread-invariance
    // contract but legitimately differ with the cache on or off (a cache
    // hit skips the probes a fresh execution would issue), so they go into
    // full_series only.
    full << stats.query_probes << ' ' << stats.query_retries << ' '
         << stats.breaker_short_circuits << ' ' << stats.breaker_opens << ' '
         << stats.breaker_half_opens << ' ' << stats.breaker_closes << '\n';
    outcome.incomplete_queries += stats.incomplete_queries;
    outcome.skipped_feedback += stats.skipped_feedback;
    outcome.query_retries += stats.query_retries;
    outcome.breaker_opens += stats.breaker_opens;
    outcome.breaker_short_circuits += stats.breaker_short_circuits;
  }
  outcome.stable_series = stable.str();
  outcome.full_series = outcome.stable_series + full.str();
  return outcome;
}

class EndpointFaultFuzzTest : public ::testing::Test {
 protected:
  EndpointFaultFuzzTest()
      : world_(datagen::Generate(datagen::TinyTestProfile())),
        truth_(world_.ground_truth),
        initial_(linking::FilterByScore(
            linking::RunParis(world_.left, world_.right), 0.95)) {}

  datagen::GeneratedWorld world_;
  feedback::GroundTruth truth_;
  std::vector<linking::Link> initial_;
};

TEST_F(EndpointFaultFuzzTest, FaultSeededSeriesIsThreadCountInvariant) {
  ASSERT_GE(initial_.size(), 5u) << "profile too small for fault regime";

  // Random fault universes from the fuzz seed. Rates are kept below 0.5 so
  // retries usually rescue transient failures and episodes keep making
  // progress; one universe gets an aggressive breaker to force opens.
  Rng rng(505);
  uint64_t total_incomplete = 0;
  uint64_t total_skipped = 0;
  uint64_t total_retries = 0;
  for (int universe = 0; universe < 3; ++universe) {
    fed::FaultProfile profile;
    profile.seed = rng.NextUint64();
    profile.transient_error_rate = 0.05 + 0.1 * universe;
    profile.truncation_rate = static_cast<double>(rng.NextBounded(30)) / 100.0;
    profile.truncation_keep_fraction = 0.5;
    profile.base_latency_micros = static_cast<int64_t>(rng.NextBounded(200));
    profile.latency_jitter_micros =
        static_cast<int64_t>(rng.NextBounded(500));
    profile.spike_rate = static_cast<double>(rng.NextBounded(10)) / 100.0;
    profile.spike_latency_micros = 5000;

    std::string reference;
    for (int threads : {1, 2, 4}) {
      FaultRegimeOutcome outcome = RunFaultRegime(
          world_, initial_, truth_, profile, threads, /*use_cache=*/true);
      if (reference.empty()) {
        reference = outcome.full_series;
        total_incomplete += outcome.incomplete_queries;
        total_skipped += outcome.skipped_feedback;
        total_retries += outcome.query_retries;
      } else {
        EXPECT_EQ(outcome.full_series, reference)
            << "fault universe " << universe << " diverged at " << threads
            << " thread(s)";
      }
    }
  }
  // The regime must actually exercise the failure domain: degraded queries,
  // withheld verdicts, and retries all have to occur somewhere.
  EXPECT_GT(total_incomplete, 0u);
  EXPECT_GT(total_skipped, 0u);
  EXPECT_GT(total_retries, 0u);
}

TEST_F(EndpointFaultFuzzTest, FaultSeriesIsIdenticalWithCacheOnOrOff) {
  // Incomplete results must never be served from or admitted into the
  // query cache, so caching can only skip redundant *complete* executions:
  // quality, feedback, and degradation accounting must be bitwise-identical
  // with the cache on or off (probe/retry totals legitimately drop when
  // cache hits skip execution).
  fed::FaultProfile profile;
  profile.seed = 606;
  profile.transient_error_rate = 0.15;
  profile.truncation_rate = 0.1;
  profile.truncation_keep_fraction = 0.5;
  FaultRegimeOutcome with_cache = RunFaultRegime(
      world_, initial_, truth_, profile, /*threads=*/1, /*use_cache=*/true);
  FaultRegimeOutcome without_cache = RunFaultRegime(
      world_, initial_, truth_, profile, /*threads=*/1, /*use_cache=*/false);
  EXPECT_EQ(with_cache.stable_series, without_cache.stable_series);
  EXPECT_GT(with_cache.incomplete_queries, 0u);
}

TEST_F(EndpointFaultFuzzTest, LatencyOnlyFaultsPreserveReliableQuality) {
  // A latency-only universe costs virtual time but never perturbs answers:
  // the resilient path must reproduce the reliable baseline's quality and
  // feedback series exactly, with zero degradation.
  fed::FaultProfile latency_only;
  latency_only.seed = 707;
  latency_only.base_latency_micros = 100;
  latency_only.latency_jitter_micros = 300;
  ASSERT_FALSE(latency_only.IsZero());

  FaultRegimeOutcome baseline =
      RunFaultRegime(world_, initial_, truth_, fed::FaultProfile{},
                     /*threads=*/1, /*use_cache=*/true);
  FaultRegimeOutcome slow = RunFaultRegime(
      world_, initial_, truth_, latency_only, /*threads=*/1,
      /*use_cache=*/true);
  EXPECT_EQ(slow.stable_series, baseline.stable_series);
  EXPECT_EQ(slow.incomplete_queries, 0u);
  EXPECT_EQ(slow.skipped_feedback, 0u);
  EXPECT_EQ(slow.breaker_opens, 0u);
}

TEST_F(EndpointFaultFuzzTest, PermanentOutageStillConvergesOnSurvivors) {
  // Even with one source permanently dark some queries still complete on
  // the surviving endpoint(s) — the loop keeps training on those instead of
  // halting, and every dark-source query is accounted as skipped, never
  // silently fed back.
  fed::FaultProfile outage;
  // With a 0.5 outage rate this seed's per-endpoint draws condemn source 1
  // (the right store) and spare source 0 — a fixed, deterministic universe
  // with one dark endpoint and one survivor.
  outage.seed = 806;
  outage.permanent_outage_rate = 0.5;
  FaultRegimeOutcome outcome = RunFaultRegime(
      world_, initial_, truth_, outage, /*threads=*/1, /*use_cache=*/true);
  EXPECT_GT(outcome.incomplete_queries, 0u);
  EXPECT_GT(outcome.breaker_short_circuits, 0u);
  EXPECT_GT(outcome.breaker_opens, 0u);
}

}  // namespace
}  // namespace alex
