// Parameterized sweep over the data set profiles: for each pair the full
// PARIS -> ALEX pipeline must (a) start in the intended quality regime and
// (b) end with a large improvement. Profiles are scaled down ~4x from the
// benchmark sizes so the whole sweep stays fast.
#include <gtest/gtest.h>

#include <string>

#include "datagen/profiles.h"
#include "eval/experiment.h"

namespace alex::eval {
namespace {

struct RegimeCase {
  const char* profile;
  // Expected starting regime for PARIS links (loose bounds).
  double max_initial_precision = 1.01;  // for confusable regimes
  double max_initial_recall = 1.01;     // for noisy regimes
  // Required final quality.
  double min_final_f = 0.9;
};

class ProfileRegimeTest : public ::testing::TestWithParam<RegimeCase> {};

TEST_P(ProfileRegimeTest, PipelineImprovesLinks) {
  const RegimeCase& c = GetParam();
  ExperimentConfig config;
  ASSERT_TRUE(datagen::ProfileByName(c.profile, &config.profile));
  // Scale down ~4x for test speed, preserving the ratios.
  config.profile.overlap_entities /= 4;
  config.profile.left_only_entities /= 4;
  config.profile.right_only_entities /= 4;
  config.profile.confusable_pairs /= 4;
  ASSERT_GE(config.profile.overlap_entities, 8u);
  config.alex.num_partitions = 2;
  config.alex.num_threads = 1;
  config.alex.episode_size = 250;
  config.alex.max_episodes = 30;

  Result<ExperimentResult> result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExperimentResult& r = result.value();

  const Quality& start = r.series[0].quality;
  EXPECT_LE(start.precision, c.max_initial_precision)
      << c.profile << ": starting precision out of regime";
  EXPECT_LE(start.recall, c.max_initial_recall)
      << c.profile << ": starting recall out of regime";

  // ALEX must improve substantially over the PARIS starting point.
  double best_f = 0.0;
  for (size_t i = r.series.size() / 2; i < r.series.size(); ++i) {
    best_f = std::max(best_f, r.series[i].quality.f_measure);
  }
  EXPECT_GE(best_f, c.min_final_f) << c.profile;
  EXPECT_GT(best_f, start.f_measure) << c.profile;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ProfileRegimeTest,
    ::testing::Values(
        // Noisy pairs: PARIS recall must start low.
        RegimeCase{"dbpedia_nytimes", 1.01, 0.75, 0.9},
        RegimeCase{"opencyc_nytimes", 1.01, 0.8, 0.9},
        RegimeCase{"dbpedia_swdf", 1.01, 0.85, 0.9},
        RegimeCase{"dbpedia_nba_nytimes", 1.01, 0.85, 0.85},
        // Confusable pairs: PARIS precision must start low.
        RegimeCase{"dbpedia_drugbank", 0.6, 1.01, 0.9},
        RegimeCase{"opencyc_drugbank", 0.6, 1.01, 0.9},
        // Mixed regimes.
        RegimeCase{"dbpedia_lexvo", 0.85, 0.95, 0.85},
        RegimeCase{"dbpedia_opencyc", 0.95, 0.9, 0.9}),
    [](const ::testing::TestParamInfo<RegimeCase>& info) {
      return std::string(info.param.profile);
    });

}  // namespace
}  // namespace alex::eval
