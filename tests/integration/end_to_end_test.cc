// End-to-end integration: the full paper pipeline wired together —
// synthetic linked data sets -> PARIS candidate links -> federated SPARQL
// queries whose answers carry link provenance -> user feedback on answers ->
// ALEX exploration improving the link set -> better federated answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/alex_engine.h"
#include "datagen/profiles.h"
#include "eval/metrics.h"
#include "federation/federated_engine.h"
#include "feedback/oracle.h"
#include "linking/paris.h"
#include "rdf/ntriples.h"

namespace alex {
namespace {

using core::AlexEngine;
using core::AlexOptions;
using fed::FederatedAnswer;
using fed::FederatedEngine;
using fed::LinkSet;
using linking::Link;
using rdf::Term;

TEST(EndToEndTest, FeedbackOnFederatedAnswersImprovesLinks) {
  // Generate a small noisy world.
  datagen::WorldProfile profile = datagen::TinyTestProfile();
  profile.confusable_pairs = 6;
  datagen::GeneratedWorld world = datagen::Generate(profile);
  feedback::GroundTruth truth(world.ground_truth);

  // Initial candidate links from PARIS.
  std::vector<Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right), 0.95);

  AlexOptions options;
  options.num_partitions = 2;
  options.num_threads = 1;
  options.episode_size = 60;
  options.max_episodes = 40;
  AlexEngine alex(&world.left, &world.right, options);
  ASSERT_TRUE(alex.Initialize(initial).ok());

  eval::Quality before = eval::Evaluate(alex.CandidateLinks(), truth);

  // Drive episodes through a federated query loop: each episode issues
  // queries whose answers use candidate links, and the user approves or
  // rejects each answer (which ALEX maps to link feedback).
  const std::string kLabel = "http://www.w3.org/2000/01/rdf-schema#label";
  for (int episode = 0; episode < 40; ++episode) {
    // Mirror the candidate links into the federation link set.
    LinkSet link_set;
    for (const Link& link : alex.CandidateLinks()) link_set.Add(link);
    FederatedEngine fed({&world.left, &world.right}, &link_set);

    alex.BeginExternalEpisode();
    size_t feedback_given = 0;
    // A federated query per left entity with a label: fetch the counterpart
    // entity's name on the right side via sameAs bridging.
    Result<fed::FederatedResult> answers = fed.ExecuteText(
        "SELECT ?name WHERE { ?e <" + kLabel + "> ?l . "
        "?e <http://data.nytimes.com/elements/name> ?name }");
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    EXPECT_TRUE(answers->complete);
    for (const FederatedAnswer& answer : answers->answers) {
      for (const Link& used : answer.links_used) {
        alex.ApplyLinkFeedback(used, truth.Contains(used));
        ++feedback_given;
      }
    }
    alex.EndExternalEpisode();
    if (feedback_given == 0) break;
  }

  eval::Quality after = eval::Evaluate(alex.CandidateLinks(), truth);
  EXPECT_GE(after.recall, before.recall);
  EXPECT_GT(after.f_measure, before.f_measure);
  EXPECT_GT(after.precision, 0.9);
}

TEST(EndToEndTest, OracleDrivenRunBeatsInitialQuality) {
  datagen::GeneratedWorld world =
      datagen::Generate(datagen::TinyTestProfile());
  feedback::GroundTruth truth(world.ground_truth);
  std::vector<Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right), 0.95);

  AlexOptions options;
  options.num_partitions = 2;
  options.num_threads = 1;
  options.episode_size = 100;
  options.max_episodes = 40;
  AlexEngine alex(&world.left, &world.right, options);
  ASSERT_TRUE(alex.Initialize(initial).ok());
  eval::Quality before = eval::Evaluate(alex.CandidateLinks(), truth);

  feedback::Oracle oracle(&truth, 0.0, 5);
  alex.Run([&oracle](const Link& link) { return oracle.Feedback(link); });

  eval::Quality after = eval::Evaluate(alex.CandidateLinks(), truth);
  EXPECT_GT(after.f_measure, before.f_measure);
  EXPECT_GT(after.recall, 0.9);
  EXPECT_GT(after.precision, 0.9);
}

TEST(EndToEndTest, DataRoundTripsThroughNTriples) {
  // The generated stores serialize and reload without loss, so the pipeline
  // can run on on-disk N-Triples data too.
  datagen::GeneratedWorld world =
      datagen::Generate(datagen::TinyTestProfile());
  std::string doc = rdf::WriteNTriples(world.left);
  rdf::TripleStore reloaded("reloaded");
  ASSERT_TRUE(rdf::ParseNTriples(doc, &reloaded).ok());
  EXPECT_EQ(reloaded.size(), world.left.size());
  EXPECT_EQ(rdf::WriteNTriples(reloaded), doc);
}

TEST(EndToEndTest, BlacklistReducesRepeatNegatives) {
  // Figure 6(b)'s mechanism at miniature scale: with the blacklist, the
  // user is asked about fewer already-rejected links.
  datagen::WorldProfile profile = datagen::TinyTestProfile();
  profile.confusable_pairs = 20;
  datagen::GeneratedWorld world = datagen::Generate(profile);
  feedback::GroundTruth truth(world.ground_truth);
  std::vector<Link> initial = linking::FilterByScore(
      linking::RunParis(world.left, world.right), 0.95);

  auto run = [&](bool use_blacklist) {
    AlexOptions options;
    options.num_partitions = 2;
    options.num_threads = 1;
    options.episode_size = 100;
    options.max_episodes = 12;
    options.use_blacklist = use_blacklist;
    AlexEngine alex(&world.left, &world.right, options);
    EXPECT_TRUE(alex.Initialize(initial).ok());
    feedback::Oracle oracle(&truth, 0.0, 5);
    size_t negatives = 0;
    alex.Run([&](const Link& link) { return oracle.Feedback(link); },
             [&](const core::EpisodeStats& stats) {
               negatives += stats.negative_feedback;
             });
    return negatives;
  };
  size_t with_blacklist = run(true);
  size_t without_blacklist = run(false);
  EXPECT_LE(with_blacklist, without_blacklist);
}

}  // namespace
}  // namespace alex
