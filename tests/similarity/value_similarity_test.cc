#include "similarity/value_similarity.h"

#include <gtest/gtest.h>

namespace alex::sim {
namespace {

using rdf::Term;

TEST(NumericSimilarityTest, EqualValues) {
  EXPECT_DOUBLE_EQ(NumericSimilarity(5.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity(0.0, 0.0), 1.0);
}

TEST(NumericSimilarityTest, ToleranceCutsOff) {
  // rel = 0.2 with tolerance 0.1 -> 0.
  EXPECT_DOUBLE_EQ(NumericSimilarity(100.0, 80.0, 0.1), 0.0);
  // rel = 0.05 with tolerance 0.1 -> 0.5.
  EXPECT_NEAR(NumericSimilarity(100.0, 95.0, 0.1), 0.5, 1e-9);
}

TEST(NumericSimilarityTest, SmallMagnitudesUseUnitDenominator) {
  // denom = max(|a|,|b|,1) = 1.
  EXPECT_NEAR(NumericSimilarity(0.0, 0.05, 0.1), 0.5, 1e-9);
}

TEST(NumericSimilarityTest, Symmetric) {
  EXPECT_DOUBLE_EQ(NumericSimilarity(3.0, 4.0), NumericSimilarity(4.0, 3.0));
}

TEST(DateSimilarityTest, SameDay) {
  EXPECT_DOUBLE_EQ(DateSimilarity(100, 100, 1200.0), 1.0);
}

TEST(DateSimilarityTest, LinearDecay) {
  EXPECT_NEAR(DateSimilarity(0, 600, 1200.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(DateSimilarity(0, 1300, 1200.0), 0.0);
}

TEST(IriLocalNameTest, Extraction) {
  EXPECT_EQ(IriLocalName("http://x/a/b#frag"), "frag");
  EXPECT_EQ(IriLocalName("http://x/a/b"), "b");
  EXPECT_EQ(IriLocalName("no-separators"), "no-separators");
  EXPECT_EQ(IriLocalName("http://x/trailing/"), "http://x/trailing/");
}

TEST(RescaleTest, FloorBehaviour) {
  EXPECT_DOUBLE_EQ(RescaleAboveFloor(0.3, 0.4), 0.0);
  EXPECT_DOUBLE_EQ(RescaleAboveFloor(0.4, 0.4), 0.0);
  EXPECT_DOUBLE_EQ(RescaleAboveFloor(1.0, 0.4), 1.0);
  EXPECT_NEAR(RescaleAboveFloor(0.7, 0.4), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(RescaleAboveFloor(0.25, 0.0), 0.25);
}

TEST(ValueSimilarityTest, IdenticalIris) {
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Term::Iri("http://x/a"), Term::Iri("http://x/a")), 1.0);
}

TEST(ValueSimilarityTest, IrisWithSameLocalName) {
  double s = ValueSimilarity(Term::Iri("http://left/Nadal"),
                             Term::Iri("http://right/Nadal"));
  EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(ValueSimilarityTest, NumericLiterals) {
  EXPECT_DOUBLE_EQ(ValueSimilarity(Term::IntegerLiteral(10),
                                   Term::IntegerLiteral(10)),
                   1.0);
  EXPECT_GT(ValueSimilarity(Term::IntegerLiteral(1000),
                            Term::DoubleLiteral(1001.0)),
            0.9);
}

TEST(ValueSimilarityTest, MixedNumericAndStringParsesNumbers) {
  double s = ValueSimilarity(Term::StringLiteral("1984"),
                             Term::IntegerLiteral(1984));
  EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(ValueSimilarityTest, DateLiterals) {
  EXPECT_DOUBLE_EQ(ValueSimilarity(Term::DateLiteral("1984-12-30"),
                                   Term::DateLiteral("1984-12-30")),
                   1.0);
  EXPECT_GT(ValueSimilarity(Term::DateLiteral("1984-12-30"),
                            Term::DateLiteral("1985-01-05")),
            0.9);
}

TEST(ValueSimilarityTest, DateVsStringOnlyExactLexical) {
  EXPECT_DOUBLE_EQ(ValueSimilarity(Term::DateLiteral("1984-12-30"),
                                   Term::StringLiteral("1984-12-30")),
                   1.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity(Term::DateLiteral("1984-12-30"),
                                   Term::StringLiteral("1984-12-31")),
                   0.0);
}

TEST(ValueSimilarityTest, Booleans) {
  EXPECT_DOUBLE_EQ(ValueSimilarity(Term::BooleanLiteral(true),
                                   Term::BooleanLiteral(true)),
                   1.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity(Term::BooleanLiteral(true),
                                   Term::BooleanLiteral(false)),
                   0.0);
}

TEST(ValueSimilarityTest, StringsCaseInsensitive) {
  EXPECT_DOUBLE_EQ(ValueSimilarity(Term::StringLiteral("LeBron James"),
                                   Term::StringLiteral("lebron james")),
                   1.0);
}

TEST(ValueSimilarityTest, RandomStringsScoreLow) {
  // The calibrated floor keeps unrelated strings below the θ=0.3 filter.
  double s = ValueSimilarity(Term::StringLiteral("katrouna velize"),
                             Term::StringLiteral("bromid stozzu"));
  EXPECT_LT(s, 0.3);
}

TEST(ValueSimilarityTest, IriVsLiteralComparesLocalName) {
  double s = ValueSimilarity(Term::Iri("http://x/LeBron_James"),
                             Term::StringLiteral("LeBron_James"));
  EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(ValueSimilarityTest, BlankNodesScoreZero) {
  EXPECT_DOUBLE_EQ(ValueSimilarity(Term::Blank("a"), Term::Blank("a")), 0.0);
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Term::Blank("a"), Term::StringLiteral("a")), 0.0);
}

// Property sweep: range and symmetry over heterogeneous term pairs.
class ValueSimilarityPropertyTest
    : public ::testing::TestWithParam<std::pair<Term, Term>> {};

TEST_P(ValueSimilarityPropertyTest, RangeAndSymmetry) {
  const auto& [a, b] = GetParam();
  double ab = ValueSimilarity(a, b);
  double ba = ValueSimilarity(b, a);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
  EXPECT_DOUBLE_EQ(ab, ba);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ValueSimilarityPropertyTest,
    ::testing::Values(
        std::make_pair(Term::Iri("http://a/x"), Term::Iri("http://b/y")),
        std::make_pair(Term::StringLiteral("alpha"), Term::Iri("http://b/y")),
        std::make_pair(Term::IntegerLiteral(3), Term::DoubleLiteral(3.5)),
        std::make_pair(Term::DateLiteral("2000-01-01"),
                       Term::DateLiteral("2001-01-01")),
        std::make_pair(Term::StringLiteral("42"), Term::IntegerLiteral(41)),
        std::make_pair(Term::BooleanLiteral(true),
                       Term::StringLiteral("true")),
        std::make_pair(Term::Blank("b"), Term::IntegerLiteral(0)),
        std::make_pair(Term::StringLiteral(""), Term::StringLiteral("x"))));

}  // namespace
}  // namespace alex::sim
