#include "similarity/string_metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

namespace alex::sim {
namespace {

TEST(LevenshteinTest, IdenticalStringsScoreOne) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 1.0);
}

TEST(LevenshteinTest, EmptyVsNonEmptyScoresZero) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", ""), 0.0);
}

TEST(LevenshteinTest, SingleEdit) {
  // one substitution in a 4-char string: 1 - 1/4
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abcd", "abxd"), 0.75);
  // one insertion: distance 1, max length 5
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abcd", "abcde"), 0.8);
}

TEST(LevenshteinTest, CompletelyDifferent) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("aaaa", "bbbb"), 0.0);
}

TEST(LevenshteinTest, Symmetry) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("kitten", "sitting"),
                   NormalizedLevenshtein("sitting", "kitten"));
}

TEST(JaroWinklerTest, IdenticalScoresOne) {
  EXPECT_DOUBLE_EQ(JaroWinkler("martha", "martha"), 1.0);
}

TEST(JaroWinklerTest, KnownValue) {
  // Classic example: JW("MARTHA","MARHTA") = 0.961.
  EXPECT_NEAR(JaroWinkler("martha", "marhta"), 0.961, 0.001);
}

TEST(JaroWinklerTest, NoCommonCharacters) {
  EXPECT_DOUBLE_EQ(JaroWinkler("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBonusHelps) {
  double with_prefix = JaroWinkler("prefixed", "prefixxx");
  double without_prefix = JaroWinkler("edprefix", "xxprefix");
  EXPECT_GT(with_prefix, without_prefix);
}

TEST(TokenJaccardTest, IdenticalTokenSets) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a b c", "c b a"), 1.0);
}

TEST(TokenJaccardTest, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(TokenJaccard("Hello World", "hello world"), 1.0);
}

TEST(TokenJaccardTest, PartialOverlap) {
  // {a,b} vs {b,c}: 1 shared / 3 union.
  EXPECT_NEAR(TokenJaccard("a b", "b c"), 1.0 / 3.0, 1e-9);
}

TEST(TokenJaccardTest, EmptyCases) {
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a", ""), 0.0);
}

TEST(TokenJaccardTest, DuplicateTokensCollapse) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a a a", "a"), 1.0);
}

TEST(StringSimilarityTest, ReorderedNameScoresHigh) {
  // Token overlap saves reordered names where edit distance fails.
  EXPECT_GT(StringSimilarity("LeBron James", "James LeBron"), 0.9);
}

TEST(StringSimilarityTest, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(StringSimilarity("ABC", "abc"), 1.0);
}

// Property sweep: all metrics stay within [0, 1], are symmetric, and give 1
// for identical inputs.
class StringMetricPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(StringMetricPropertyTest, RangeSymmetryIdentity) {
  const auto& [a, b] = GetParam();
  for (auto metric : {NormalizedLevenshtein, JaroWinkler, TokenJaccard,
                      StringSimilarity}) {
    double ab = metric(a, b);
    double ba = metric(b, a);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_DOUBLE_EQ(metric(a, a), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, StringMetricPropertyTest,
    ::testing::Values(
        std::make_tuple("", ""), std::make_tuple("a", ""),
        std::make_tuple("abc", "abd"), std::make_tuple("hello", "world"),
        std::make_tuple("New York Times", "The New York Times"),
        std::make_tuple("LeBron James", "James, LeBron"),
        std::make_tuple("aaaaaaaaaa", "aaaaaaaaab"),
        std::make_tuple("short", "a considerably longer string entirely"),
        std::make_tuple("123 456", "456 123"),
        std::make_tuple("x", "x")));

}  // namespace
}  // namespace alex::sim
