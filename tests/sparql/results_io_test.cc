#include "sparql/results_io.h"

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace alex::sparql {
namespace {

using rdf::Term;

std::vector<Binding> SampleRows() {
  Binding row1;
  row1.emplace("name", Term::StringLiteral("Ada, \"the first\""));
  row1.emplace("born", Term::IntegerLiteral(1815));
  row1.emplace("home", Term::Iri("http://x/london"));
  Binding row2;
  row2.emplace("name", Term::StringLiteral("Alan"));
  // row2 leaves ?born and ?home unbound.
  return {row1, row2};
}

TEST(ResultsIoTest, VariablesFromExplicitProjection) {
  Result<Query> query =
      ParseQuery("SELECT ?a ?b WHERE { ?a ?p ?b }");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(ResultVariables(query.value(), {}),
            (std::vector<std::string>{"a", "b"}));
}

TEST(ResultsIoTest, VariablesIncludeAggregateOutputs) {
  Result<Query> query = ParseQuery(
      "SELECT ?g (COUNT(*) AS ?n) WHERE { ?g ?p ?o } GROUP BY ?g");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(ResultVariables(query.value(), {}),
            (std::vector<std::string>{"g", "n"}));
}

TEST(ResultsIoTest, VariablesFromRowsForSelectStar) {
  Result<Query> query = ParseQuery("SELECT * WHERE { ?s ?p ?o }");
  ASSERT_TRUE(query.ok());
  std::vector<std::string> vars =
      ResultVariables(query.value(), SampleRows());
  EXPECT_EQ(vars, (std::vector<std::string>{"born", "home", "name"}));
}

TEST(ResultsIoTest, CsvEscapingAndUnboundCells) {
  std::string csv = ResultsToCsv(SampleRows(), {"name", "born"});
  EXPECT_EQ(csv,
            "name,born\r\n"
            "\"Ada, \"\"the first\"\"\",1815\r\n"
            "Alan,\r\n");
}

TEST(ResultsIoTest, TsvUsesTurtleTerms) {
  std::string tsv = ResultsToTsv(SampleRows(), {"home", "born"});
  EXPECT_NE(tsv.find("?home\t?born"), std::string::npos);
  EXPECT_NE(tsv.find("<http://x/london>\t"), std::string::npos);
  EXPECT_NE(tsv.find("XMLSchema#integer"), std::string::npos);
}

TEST(ResultsIoTest, JsonShape) {
  std::string json = ResultsToJson(SampleRows(), {"name", "born", "home"});
  EXPECT_NE(json.find("\"head\":{\"vars\":[\"name\",\"born\",\"home\"]}"),
            std::string::npos);
  EXPECT_NE(json.find("\"type\":\"uri\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"literal\""), std::string::npos);
  EXPECT_NE(json.find(
                "\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\""),
            std::string::npos);
  // Escapes inside values.
  EXPECT_NE(json.find("Ada, \\\"the first\\\""), std::string::npos);
  // Unbound variables are omitted from the second binding object.
  size_t second = json.find("Alan");
  ASSERT_NE(second, std::string::npos);
  EXPECT_EQ(json.find("born", second), std::string::npos);
}

TEST(ResultsIoTest, JsonEmptyResults) {
  std::string json = ResultsToJson({}, {"x"});
  EXPECT_EQ(json,
            "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":[]}}");
}

TEST(ResultsIoTest, AskJson) {
  EXPECT_EQ(AskResultToJson(true), "{\"head\":{},\"boolean\":true}");
  EXPECT_EQ(AskResultToJson(false), "{\"head\":{},\"boolean\":false}");
}

TEST(ResultsIoTest, JsonControlCharacterEscaping) {
  Binding row;
  row.emplace("v", Term::StringLiteral("line1\nline2\x01" "end"));
  std::string json = ResultsToJson({row}, {"v"});
  EXPECT_NE(json.find("line1\\nline2\\u0001end"), std::string::npos);
}

TEST(ResultsIoTest, BlankNodeJsonType) {
  Binding row;
  row.emplace("b", Term::Blank("node7"));
  std::string json = ResultsToJson({row}, {"b"});
  EXPECT_NE(json.find("\"type\":\"bnode\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":\"node7\""), std::string::npos);
}

}  // namespace
}  // namespace alex::sparql
