// Tests for the extended SPARQL constructs: UNION, OPTIONAL, ORDER BY,
// OFFSET, and ASK.
#include <gtest/gtest.h>

#include "sparql/executor.h"
#include "sparql/parser.h"

namespace alex::sparql {
namespace {

using rdf::Term;
using rdf::TripleStore;

class ExtendedSparqlTest : public ::testing::Test {
 protected:
  ExtendedSparqlTest() : store_("library") {
    auto add = [this](const char* s, const char* p, Term o) {
      store_.Add(Term::Iri(std::string("http://x/") + s),
                 Term::Iri(std::string("http://x/") + p), std::move(o));
    };
    add("book1", "title", Term::StringLiteral("Dune"));
    add("book1", "year", Term::IntegerLiteral(1965));
    add("book1", "author", Term::Iri("http://x/herbert"));
    add("book2", "title", Term::StringLiteral("Hyperion"));
    add("book2", "year", Term::IntegerLiteral(1989));
    add("book3", "title", Term::StringLiteral("Accelerando"));
    add("book3", "year", Term::IntegerLiteral(2005));
    add("movie1", "label", Term::StringLiteral("Arrival"));
    add("movie1", "year", Term::IntegerLiteral(2016));
  }

  std::vector<Binding> Run(const std::string& text) {
    Result<Query> query = ParseQuery(text);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    if (!query.ok()) return {};
    Result<std::vector<Binding>> rows = Execute(query.value(), store_);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? std::move(rows).value() : std::vector<Binding>{};
  }

  TripleStore store_;
};

TEST_F(ExtendedSparqlTest, UnionParses) {
  Result<Query> q = ParseQuery(
      "SELECT ?n WHERE { { ?s <http://x/title> ?n } UNION "
      "{ ?s <http://x/label> ?n } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->more_alternatives.size(), 1u);
  EXPECT_EQ(q->Alternatives().size(), 2u);
}

TEST_F(ExtendedSparqlTest, UnionCombinesBranches) {
  auto rows = Run(
      "SELECT ?n WHERE { { ?s <http://x/title> ?n } UNION "
      "{ ?s <http://x/label> ?n } }");
  EXPECT_EQ(rows.size(), 4u);  // 3 books + 1 movie
}

TEST_F(ExtendedSparqlTest, ThreeWayUnion) {
  auto rows = Run(
      "SELECT ?s WHERE { { ?s <http://x/title> \"Dune\" } UNION "
      "{ ?s <http://x/title> \"Hyperion\" } UNION "
      "{ ?s <http://x/label> \"Arrival\" } }");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(ExtendedSparqlTest, UnionSharesOuterPatterns) {
  // The year pattern applies to both branches.
  auto rows = Run(
      "SELECT ?s ?y WHERE { ?s <http://x/year> ?y . "
      "{ ?s <http://x/title> \"Dune\" } UNION "
      "{ ?s <http://x/label> \"Arrival\" } }");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(ExtendedSparqlTest, OptionalKeepsUnmatchedSolutions) {
  auto rows = Run(
      "SELECT ?s ?a WHERE { ?s <http://x/title> ?t . "
      "OPTIONAL { ?s <http://x/author> ?a } }");
  ASSERT_EQ(rows.size(), 3u);
  int with_author = 0;
  for (const Binding& row : rows) {
    if (row.count("a") > 0) ++with_author;
  }
  EXPECT_EQ(with_author, 1);  // only book1 has an author
}

TEST_F(ExtendedSparqlTest, OptionalExtendsMatchedSolutions) {
  auto rows = Run(
      "SELECT ?a WHERE { ?s <http://x/title> \"Dune\" . "
      "OPTIONAL { ?s <http://x/author> ?a } }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("a").lexical(), "http://x/herbert");
}

TEST_F(ExtendedSparqlTest, OrderByAscending) {
  auto rows = Run(
      "SELECT ?t ?y WHERE { ?s <http://x/title> ?t . "
      "?s <http://x/year> ?y } ORDER BY ?y");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].at("t").lexical(), "Dune");
  EXPECT_EQ(rows[2].at("t").lexical(), "Accelerando");
}

TEST_F(ExtendedSparqlTest, OrderByDescending) {
  auto rows = Run(
      "SELECT ?t ?y WHERE { ?s <http://x/title> ?t . "
      "?s <http://x/year> ?y } ORDER BY DESC(?y)");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].at("t").lexical(), "Accelerando");
}

TEST_F(ExtendedSparqlTest, OrderByWithLimitTakesSmallest) {
  auto rows = Run(
      "SELECT ?y WHERE { ?s <http://x/year> ?y } ORDER BY ?y LIMIT 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("y").AsInteger(), 1965);
}

TEST_F(ExtendedSparqlTest, Offset) {
  auto rows = Run(
      "SELECT ?y WHERE { ?s <http://x/year> ?y } ORDER BY ?y "
      "LIMIT 2 OFFSET 1");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at("y").AsInteger(), 1989);
  EXPECT_EQ(rows[1].at("y").AsInteger(), 2005);
}

TEST_F(ExtendedSparqlTest, OffsetBeyondEnd) {
  auto rows = Run("SELECT ?y WHERE { ?s <http://x/year> ?y } OFFSET 100");
  EXPECT_TRUE(rows.empty());
}

TEST_F(ExtendedSparqlTest, AskTrue) {
  Result<Query> q =
      ParseQuery("ASK WHERE { ?s <http://x/title> \"Dune\" }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->is_ask);
  Result<bool> answer = Ask(q.value(), store_);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer.value());
}

TEST_F(ExtendedSparqlTest, AskFalse) {
  Result<Query> q =
      ParseQuery("ASK WHERE { ?s <http://x/title> \"Neuromancer\" }");
  ASSERT_TRUE(q.ok());
  Result<bool> answer = Ask(q.value(), store_);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer.value());
}

TEST_F(ExtendedSparqlTest, AskOnSelectQueryIsError) {
  Result<Query> q = ParseQuery("SELECT ?s WHERE { ?s ?p ?o }");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Ask(q.value(), store_).ok());
}

TEST_F(ExtendedSparqlTest, OrderByRequiresKeys) {
  EXPECT_FALSE(
      ParseQuery("SELECT ?s WHERE { ?s ?p ?o } ORDER BY LIMIT 2").ok());
}

TEST_F(ExtendedSparqlTest, NestedGroupInsideUnionBranchRejected) {
  EXPECT_FALSE(ParseQuery(
                   "SELECT ?s WHERE { { { ?s ?p ?o } } UNION { ?s ?p ?o } }")
                   .ok());
}

TEST_F(ExtendedSparqlTest, ToStringRendersModifiers) {
  Result<Query> q = ParseQuery(
      "SELECT ?t WHERE { ?s <http://x/title> ?t . "
      "OPTIONAL { ?s <http://x/author> ?a } } "
      "ORDER BY DESC(?t) LIMIT 5 OFFSET 2");
  ASSERT_TRUE(q.ok());
  std::string text = q->ToString();
  EXPECT_NE(text.find("OPTIONAL"), std::string::npos);
  EXPECT_NE(text.find("ORDER BY DESC(?t)"), std::string::npos);
  EXPECT_NE(text.find("LIMIT 5"), std::string::npos);
  EXPECT_NE(text.find("OFFSET 2"), std::string::npos);
}

TEST_F(ExtendedSparqlTest, UnionWithDistinct) {
  auto rows = Run(
      "SELECT DISTINCT ?y WHERE { { ?s <http://x/title> \"Dune\" . "
      "?s <http://x/year> ?y } UNION { ?s <http://x/title> \"Dune\" . "
      "?s <http://x/year> ?y } }");
  EXPECT_EQ(rows.size(), 1u);
}

}  // namespace
}  // namespace alex::sparql
