#include "sparql/tokenizer.h"

#include <gtest/gtest.h>

namespace alex::sparql {
namespace {

std::vector<Token> MustTokenize(std::string_view query) {
  Result<std::vector<Token>> tokens = Tokenize(query);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? tokens.value() : std::vector<Token>{};
}

TEST(TokenizerTest, EmptyInputYieldsEof) {
  auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

TEST(TokenizerTest, KeywordsAreCaseInsensitive) {
  auto tokens = MustTokenize("select Select SELECT where");
  ASSERT_EQ(tokens.size(), 5u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kKeyword);
    EXPECT_EQ(tokens[i].text, "SELECT");
  }
  EXPECT_EQ(tokens[3].text, "WHERE");
}

TEST(TokenizerTest, Variables) {
  auto tokens = MustTokenize("?x $y ?long_name");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kVariable);
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].text, "y");
  EXPECT_EQ(tokens[2].text, "long_name");
}

TEST(TokenizerTest, Iri) {
  auto tokens = MustTokenize("<http://example.org/a#b>");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kIri);
  EXPECT_EQ(tokens[0].text, "http://example.org/a#b");
}

TEST(TokenizerTest, LessThanOperatorNotConfusedWithIri) {
  auto tokens = MustTokenize("?a < 5");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[1].Is(TokenType::kPunct, "<"));
  EXPECT_EQ(tokens[2].type, TokenType::kNumber);
}

TEST(TokenizerTest, StringWithEscapes) {
  auto tokens = MustTokenize(R"("a\"b\nc")");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "a\"b\nc");
}

TEST(TokenizerTest, StringWithLanguageTag) {
  auto tokens = MustTokenize("\"bonjour\"@fr .");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "bonjour");
  EXPECT_TRUE(tokens[1].Is(TokenType::kPunct, "."));
}

TEST(TokenizerTest, StringWithDatatype) {
  auto tokens = MustTokenize(
      "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer> }");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_TRUE(tokens[1].Is(TokenType::kPunct, "}"));
}

TEST(TokenizerTest, Numbers) {
  auto tokens = MustTokenize("42 3.14 -7");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].text, "3.14");
  EXPECT_EQ(tokens[2].text, "-7");
}

TEST(TokenizerTest, PrefixedNames) {
  auto tokens = MustTokenize("foaf:name ex:Thing");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kPrefixedName);
  EXPECT_EQ(tokens[0].text, "foaf:name");
}

TEST(TokenizerTest, TwoCharOperators) {
  auto tokens = MustTokenize("!= <= >= && ||");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].text, "!=");
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[2].text, ">=");
  EXPECT_EQ(tokens[3].text, "&&");
  EXPECT_EQ(tokens[4].text, "||");
}

TEST(TokenizerTest, CommentsSkipped) {
  auto tokens = MustTokenize("SELECT # a comment\n ?x");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::kVariable);
}

TEST(TokenizerTest, RdfTypeShorthand) {
  auto tokens = MustTokenize("?x a ?type");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[1].Is(TokenType::kKeyword, "A"));
}

TEST(TokenizerTest, ErrorOnUnknownWord) {
  EXPECT_FALSE(Tokenize("bogusword").ok());
}

TEST(TokenizerTest, ErrorOnUnterminatedString) {
  EXPECT_FALSE(Tokenize("\"never closed").ok());
}

TEST(TokenizerTest, ErrorOnBadCharacter) {
  EXPECT_FALSE(Tokenize("@@@").ok());
}

TEST(TokenizerTest, OffsetsPointIntoQuery) {
  auto tokens = MustTokenize("SELECT ?x");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 7u);
}

}  // namespace
}  // namespace alex::sparql
