#include "sparql/algebra.h"

#include <gtest/gtest.h>

namespace alex::sparql {
namespace {

using rdf::Term;

FilterExpr Comparison(FilterOp op, PatternNode lhs, PatternNode rhs) {
  FilterExpr expr;
  expr.op = op;
  expr.lhs_node = std::move(lhs);
  expr.rhs_node = std::move(rhs);
  return expr;
}

TEST(AlgebraTest, PatternNodeToString) {
  EXPECT_EQ(PatternNode::Var("x").ToString(), "?x");
  EXPECT_EQ(PatternNode::Const(Term::Iri("http://a")).ToString(),
            "<http://a>");
}

TEST(AlgebraTest, UnboundCount) {
  TriplePattern pattern;
  pattern.subject = PatternNode::Var("s");
  pattern.predicate = PatternNode::Const(Term::Iri("p"));
  pattern.object = PatternNode::Var("o");
  Binding empty;
  EXPECT_EQ(pattern.UnboundCount(empty), 2);
  Binding partial;
  partial.emplace("s", Term::Iri("x"));
  EXPECT_EQ(pattern.UnboundCount(partial), 1);
  partial.emplace("o", Term::Iri("y"));
  EXPECT_EQ(pattern.UnboundCount(partial), 0);
}

TEST(AlgebraTest, EvalFilterNumericComparison) {
  Binding binding;
  binding.emplace("a", Term::IntegerLiteral(5));
  FilterExpr lt = Comparison(FilterOp::kLt, PatternNode::Var("a"),
                             PatternNode::Const(Term::IntegerLiteral(9)));
  EXPECT_TRUE(EvalFilter(lt, binding));
  FilterExpr gt = Comparison(FilterOp::kGt, PatternNode::Var("a"),
                             PatternNode::Const(Term::IntegerLiteral(9)));
  EXPECT_FALSE(EvalFilter(gt, binding));
}

TEST(AlgebraTest, EvalFilterNumericBeatsLexical) {
  // "10" < "9" lexically, but numeric interpretation wins: 10 < 9 is
  // false.
  Binding binding;
  binding.emplace("a", Term::StringLiteral("10"));
  FilterExpr lt = Comparison(FilterOp::kLt, PatternNode::Var("a"),
                             PatternNode::Const(Term::StringLiteral("9")));
  EXPECT_FALSE(EvalFilter(lt, binding));
  FilterExpr gt = Comparison(FilterOp::kGt, PatternNode::Var("a"),
                             PatternNode::Const(Term::StringLiteral("9")));
  EXPECT_TRUE(EvalFilter(gt, binding));
}

TEST(AlgebraTest, EvalFilterUnboundVariableIsFalse) {
  Binding empty;
  FilterExpr eq = Comparison(FilterOp::kEq, PatternNode::Var("missing"),
                             PatternNode::Const(Term::IntegerLiteral(1)));
  EXPECT_FALSE(EvalFilter(eq, empty));
}

TEST(AlgebraTest, EvalFilterContainsCaseInsensitive) {
  Binding binding;
  binding.emplace("n", Term::StringLiteral("LeBron James"));
  FilterExpr contains =
      Comparison(FilterOp::kContains, PatternNode::Var("n"),
                 PatternNode::Const(Term::StringLiteral("JAMES")));
  EXPECT_TRUE(EvalFilter(contains, binding));
}

TEST(AlgebraTest, EvalFilterLogicalTree) {
  Binding binding;
  binding.emplace("a", Term::IntegerLiteral(5));
  auto make = [](FilterOp op, int value) {
    auto node = std::make_unique<FilterExpr>();
    *node = Comparison(op, PatternNode::Var("a"),
                       PatternNode::Const(Term::IntegerLiteral(value)));
    return node;
  };
  FilterExpr and_node;
  and_node.op = FilterOp::kAnd;
  and_node.children.push_back(make(FilterOp::kGt, 1));
  and_node.children.push_back(make(FilterOp::kLt, 9));
  EXPECT_TRUE(EvalFilter(and_node, binding));

  FilterExpr or_node;
  or_node.op = FilterOp::kOr;
  or_node.children.push_back(make(FilterOp::kGt, 100));
  or_node.children.push_back(make(FilterOp::kEq, 5));
  EXPECT_TRUE(EvalFilter(or_node, binding));

  FilterExpr not_node;
  not_node.op = FilterOp::kNot;
  not_node.children.push_back(make(FilterOp::kEq, 5));
  EXPECT_FALSE(EvalFilter(not_node, binding));
}

TEST(AlgebraTest, CompareBindingsNumericKeys) {
  Binding a, b;
  a.emplace("y", Term::IntegerLiteral(1990));
  b.emplace("y", Term::IntegerLiteral(2005));
  std::vector<OrderKey> asc = {{"y", false}};
  std::vector<OrderKey> desc = {{"y", true}};
  EXPECT_LT(CompareBindingsForOrder(a, b, asc), 0);
  EXPECT_GT(CompareBindingsForOrder(a, b, desc), 0);
  EXPECT_EQ(CompareBindingsForOrder(a, a, asc), 0);
}

TEST(AlgebraTest, CompareBindingsUnboundSortsFirst) {
  Binding bound, unbound;
  bound.emplace("y", Term::IntegerLiteral(1));
  std::vector<OrderKey> keys = {{"y", false}};
  EXPECT_GT(CompareBindingsForOrder(bound, unbound, keys), 0);
  EXPECT_LT(CompareBindingsForOrder(unbound, bound, keys), 0);
}

TEST(AlgebraTest, CompareBindingsSecondaryKey) {
  Binding a, b;
  a.emplace("x", Term::StringLiteral("same"));
  a.emplace("y", Term::StringLiteral("alpha"));
  b.emplace("x", Term::StringLiteral("same"));
  b.emplace("y", Term::StringLiteral("beta"));
  std::vector<OrderKey> keys = {{"x", false}, {"y", false}};
  EXPECT_LT(CompareBindingsForOrder(a, b, keys), 0);
}

TEST(AlgebraTest, QueryAlternativesIncludesPrimary) {
  Query query;
  query.patterns.push_back(TriplePattern{PatternNode::Var("a"),
                                         PatternNode::Var("b"),
                                         PatternNode::Var("c")});
  EXPECT_EQ(query.Alternatives().size(), 1u);
  query.more_alternatives.push_back(query.patterns);
  EXPECT_EQ(query.Alternatives().size(), 2u);
}

TEST(AlgebraTest, AskToString) {
  Query query;
  query.is_ask = true;
  query.patterns.push_back(TriplePattern{PatternNode::Var("s"),
                                         PatternNode::Var("p"),
                                         PatternNode::Var("o")});
  EXPECT_EQ(query.ToString(), "ASK WHERE { ?s ?p ?o . }");
}

}  // namespace
}  // namespace alex::sparql
