// Differential testing of the three query engines: the planned physical-
// operator executor (default) must agree with both oracles — the greedy
// compiled enumerator and the legacy term-space matcher — on randomized
// queries over generated worlds. Enumeration ORDER may differ between
// engines, so result multisets are compared canonically sorted; LIMIT
// without a total order is checked by size plus inclusion in the unlimited
// result. A separate test runs the same workload on 1 / 2 / 4 threads and
// requires bitwise-identical row vectors per query.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/profiles.h"
#include "datagen/world.h"
#include "rdf/dataset_stats.h"
#include "sparql/executor.h"
#include "sparql/parser.h"

namespace alex::sparql {
namespace {

struct Vocab {
  std::vector<std::string> predicates;  // IRIs
  std::vector<std::string> subjects;    // IRIs
  std::vector<rdf::Term> objects;       // literals and IRIs
};

Vocab CollectVocab(const rdf::TripleStore& store) {
  Vocab vocab;
  const rdf::Dictionary& dict = store.dictionary();
  for (rdf::TermId p : store.Predicates()) {
    vocab.predicates.push_back(dict.term(p).lexical());
  }
  for (rdf::TermId s : store.Subjects()) {
    vocab.subjects.push_back(dict.term(s).lexical());
    if (vocab.subjects.size() >= 200) break;
  }
  for (const rdf::Triple& t :
       store.Match(std::nullopt, std::nullopt, std::nullopt)) {
    vocab.objects.push_back(dict.term(t.object));
    if (vocab.objects.size() >= 400) break;
  }
  return vocab;
}

std::string QuoteLiteral(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

std::string TermText(const rdf::Term& term) {
  return term.is_iri() ? "<" + term.lexical() + ">"
                       : QuoteLiteral(term.lexical());
}

// One randomized query: the full text plus a LIMIT/OFFSET-free variant used
// as the reference superset when the cut is not totally ordered.
struct GeneratedQuery {
  std::string text;
  std::string unlimited_text;
  bool has_cut = false;        // LIMIT and/or OFFSET present
  bool is_aggregate = false;   // GROUP BY + aggregate projections
};

GeneratedQuery GenerateQuery(const Vocab& vocab, Rng* rng) {
  const std::vector<std::string> vars = {"?a", "?b", "?c", "?d"};
  auto var = [&] { return vars[rng->NextBounded(vars.size())]; };
  auto predicate = [&] {
    return "<" + vocab.predicates[rng->NextBounded(vocab.predicates.size())] +
           ">";
  };
  auto node = [&]() -> std::string {
    switch (rng->NextBounded(4)) {
      case 0:
        return "<" + vocab.subjects[rng->NextBounded(vocab.subjects.size())] +
               ">";
      case 1:
        return TermText(vocab.objects[rng->NextBounded(vocab.objects.size())]);
      default:
        return var();
    }
  };
  auto pattern = [&] {
    // Subjects lean toward variables so patterns join; predicates are
    // occasionally variables to exercise POS-less scans.
    std::string s = rng->NextBounded(4) == 0 ? node() : var();
    std::string p = rng->NextBounded(8) == 0 ? var() : predicate();
    return s + " " + p + " " + node();
  };
  auto group = [&](size_t max_patterns) {
    std::string out = pattern();
    for (size_t i = rng->NextBounded(max_patterns); i > 0; --i) {
      out += " . " + pattern();
    }
    return out;
  };

  std::string where = "{ " + group(2) + " }";
  if (rng->NextBounded(4) == 0) {
    where = "{ " + where + " UNION { " + group(2) + " } }";
  }
  std::string body = where.substr(1, where.size() - 2);
  if (rng->NextBounded(3) == 0) {
    body += " OPTIONAL { " + group(1) + " }";
  }
  if (rng->NextBounded(3) == 0) {
    const std::string v = var();
    switch (rng->NextBounded(3)) {
      case 0:
        body += " FILTER(" + v + " != " +
                TermText(vocab.objects[rng->NextBounded(
                    vocab.objects.size())]) +
                ")";
        break;
      case 1:
        body += " FILTER(CONTAINS(" + v + ", \"a\"))";
        break;
      default:
        body += " FILTER(" + v + " = " + var() + ")";
    }
  }

  GeneratedQuery out;
  if (rng->NextBounded(5) == 0) {
    // Aggregation: GROUP BY one variable, COUNT another (COUNT is
    // enumeration-order-invariant; MIN/MAX tie-breaking is covered by the
    // deterministic literal test below).
    std::string key = var();
    std::string counted = var();
    std::string head = "SELECT " + key + " (COUNT(" + counted + ") AS ?n)";
    if (rng->NextBounded(2) == 0) head += " (COUNT(*) AS ?rows)";
    out.unlimited_text =
        head + " WHERE { " + body + " } GROUP BY " + key;
    out.text = out.unlimited_text;
    out.is_aggregate = true;
    return out;
  }

  std::string select = rng->NextBounded(4) == 0 ? "*" : var() + " " + var();
  std::string head = "SELECT ";
  if (rng->NextBounded(4) == 0) head += "DISTINCT ";
  out.unlimited_text = head + select + " WHERE { " + body + " }";
  out.text = out.unlimited_text;
  if (rng->NextBounded(3) == 0) {
    out.text += " ORDER BY " + var();
  }
  if (rng->NextBounded(3) == 0) {
    out.text += " LIMIT " + std::to_string(1 + rng->NextBounded(5));
    out.has_cut = true;
  }
  if (rng->NextBounded(6) == 0) {
    out.text += " OFFSET " + std::to_string(rng->NextBounded(3));
    out.has_cut = true;
  }
  return out;
}

std::vector<Binding> RunEngine(const std::string& text,
                               const rdf::TripleStore& store,
                               ExecutorKind engine,
                               const rdf::DatasetStats* stats) {
  Result<Query> query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << text << ": " << query.status().ToString();
  ExecuteOptions options;
  options.engine = engine;
  options.stats = stats;
  Result<std::vector<Binding>> rows =
      Execute(query.value(), store, options);
  EXPECT_TRUE(rows.ok()) << text << ": " << rows.status().ToString();
  return rows.ok() ? std::move(rows).value() : std::vector<Binding>{};
}

// `subset` must be contained in `superset` as a multiset.
bool MultisetContained(std::vector<Binding> subset,
                       std::vector<Binding> superset) {
  std::sort(subset.begin(), subset.end());
  std::sort(superset.begin(), superset.end());
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

void CheckWorld(const datagen::WorldProfile& profile, uint64_t seed,
                int num_queries) {
  datagen::GeneratedWorld world = datagen::Generate(profile);
  const rdf::TripleStore& store = world.left;
  Vocab vocab = CollectVocab(store);
  ASSERT_FALSE(vocab.predicates.empty());
  ASSERT_FALSE(vocab.objects.empty());
  rdf::DatasetStats stats = rdf::ComputeStats(store);

  Rng rng(seed);
  for (int i = 0; i < num_queries; ++i) {
    GeneratedQuery generated = GenerateQuery(vocab, &rng);
    std::vector<Binding> legacy =
        RunEngine(generated.text, store, ExecutorKind::kLegacy, nullptr);
    std::vector<Binding> greedy =
        RunEngine(generated.text, store, ExecutorKind::kGreedy, &stats);
    std::vector<Binding> planned =
        RunEngine(generated.text, store, ExecutorKind::kPlanned, nullptr);
    // Statistics only reorder joins; the result multiset is invariant.
    std::vector<Binding> planned_stats =
        RunEngine(generated.text, store, ExecutorKind::kPlanned, &stats);

    ASSERT_EQ(greedy.size(), legacy.size()) << generated.text;
    ASSERT_EQ(planned.size(), legacy.size()) << generated.text;
    ASSERT_EQ(planned_stats.size(), legacy.size()) << generated.text;
    if (generated.has_cut) {
      // A cut without a total order may legitimately keep different rows;
      // every engine's picks must come from the same unlimited multiset.
      std::vector<Binding> unlimited = RunEngine(
          generated.unlimited_text, store, ExecutorKind::kLegacy, nullptr);
      EXPECT_TRUE(MultisetContained(legacy, unlimited)) << generated.text;
      EXPECT_TRUE(MultisetContained(greedy, unlimited)) << generated.text;
      EXPECT_TRUE(MultisetContained(planned, unlimited)) << generated.text;
      EXPECT_TRUE(MultisetContained(planned_stats, unlimited))
          << generated.text;
    } else {
      std::sort(legacy.begin(), legacy.end());
      std::sort(greedy.begin(), greedy.end());
      std::sort(planned.begin(), planned.end());
      std::sort(planned_stats.begin(), planned_stats.end());
      EXPECT_EQ(greedy, legacy) << generated.text;
      EXPECT_EQ(planned, legacy) << generated.text;
      EXPECT_EQ(planned_stats, legacy) << generated.text;
    }
  }
}

TEST(DifferentialTest, EnginesAgreeOnTinyWorld) {
  CheckWorld(datagen::TinyTestProfile(), /*seed=*/7, /*num_queries=*/150);
}

TEST(DifferentialTest, EnginesAgreeOnNoisyWorld) {
  datagen::WorldProfile profile = datagen::DbpediaNytimesProfile();
  profile.overlap_entities = 80;
  profile.left_only_entities = 40;
  profile.right_only_entities = 30;
  CheckWorld(profile, /*seed=*/11, /*num_queries=*/120);
}

TEST(DifferentialTest, AskAgreesAcrossEngines) {
  datagen::GeneratedWorld world = datagen::Generate(datagen::TinyTestProfile());
  Vocab vocab = CollectVocab(world.left);
  Rng rng(23);
  for (int i = 0; i < 60; ++i) {
    GeneratedQuery generated = GenerateQuery(vocab, &rng);
    // GROUP BY cannot follow ASK; reuse only plain WHERE clauses.
    if (generated.is_aggregate) continue;
    size_t where = generated.unlimited_text.find("WHERE");
    ASSERT_NE(where, std::string::npos);
    std::string ask_text = "ASK " + generated.unlimited_text.substr(where);
    Result<Query> query = ParseQuery(ask_text);
    ASSERT_TRUE(query.ok()) << ask_text << ": " << query.status().ToString();
    ExecuteOptions legacy_options;
    legacy_options.engine = ExecutorKind::kLegacy;
    Result<bool> legacy = Ask(query.value(), world.left, legacy_options);
    ExecuteOptions greedy_options;
    greedy_options.engine = ExecutorKind::kGreedy;
    Result<bool> greedy = Ask(query.value(), world.left, greedy_options);
    Result<bool> planned = Ask(query.value(), world.left);
    ASSERT_TRUE(legacy.ok());
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(planned.ok());
    EXPECT_EQ(greedy.value(), legacy.value()) << ask_text;
    EXPECT_EQ(planned.value(), legacy.value()) << ask_text;
  }
}

// Every engine is deterministic and shares nothing mutable across queries,
// so the same workload must produce bitwise-identical row vectors (values
// AND order) no matter how many threads execute it.
TEST(DifferentialTest, WorkloadBitwiseIdenticalAcrossThreadCounts) {
  datagen::GeneratedWorld world = datagen::Generate(datagen::TinyTestProfile());
  const rdf::TripleStore& store = world.left;
  (void)store.size();  // pre-build indexes: lazy build is not thread-safe
  Vocab vocab = CollectVocab(store);
  rdf::DatasetStats stats = rdf::ComputeStats(store);

  Rng rng(41);
  std::vector<GeneratedQuery> queries;
  for (int i = 0; i < 60; ++i) queries.push_back(GenerateQuery(vocab, &rng));

  const std::vector<ExecutorKind> engines = {
      ExecutorKind::kLegacy, ExecutorKind::kGreedy, ExecutorKind::kPlanned};
  for (ExecutorKind engine : engines) {
    std::vector<std::vector<Binding>> baseline(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      baseline[i] = RunEngine(queries[i].text, store, engine, &stats);
    }
    for (int threads : {1, 2, 4}) {
      ThreadPool pool(threads);
      std::vector<std::vector<Binding>> got(queries.size());
      pool.ParallelFor(queries.size(), /*min_chunk=*/1,
                       [&](size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) {
                           got[i] = RunEngine(queries[i].text, store, engine,
                                              &stats);
                         }
                       });
      for (size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(got[i], baseline[i])
            << queries[i].text << " (threads=" << threads << ")";
      }
    }
  }
}

// MIN/MAX over distinct integer literals has a unique extremum per group, so
// all three engines must decode the same winning term.
TEST(DifferentialTest, MinMaxAggregatesAgreeOnDistinctIntegers) {
  rdf::TripleStore store("minmax");
  const rdf::Term score = rdf::Term::Iri("http://x/score");
  const rdf::Term group = rdf::Term::Iri("http://x/group");
  int value = 1;
  for (int g = 0; g < 5; ++g) {
    const rdf::Term subject = rdf::Term::Iri("http://x/s" + std::to_string(g));
    const rdf::Term bucket =
        rdf::Term::StringLiteral("g" + std::to_string(g % 2));
    store.Add(subject, group, bucket);
    for (int k = 0; k < 4; ++k) {
      // Distinct values everywhere: no ties for MIN or MAX.
      store.Add(subject, score, rdf::Term::IntegerLiteral(value++));
    }
  }

  const std::string text =
      "SELECT ?g (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) (SUM(?v) AS ?total) "
      "(AVG(?v) AS ?mean) (COUNT(?v) AS ?n) WHERE { ?s <http://x/group> ?g . "
      "?s <http://x/score> ?v } GROUP BY ?g";
  std::vector<Binding> legacy =
      RunEngine(text, store, ExecutorKind::kLegacy, nullptr);
  std::vector<Binding> greedy =
      RunEngine(text, store, ExecutorKind::kGreedy, nullptr);
  std::vector<Binding> planned =
      RunEngine(text, store, ExecutorKind::kPlanned, nullptr);
  ASSERT_EQ(legacy.size(), 2u);
  std::sort(legacy.begin(), legacy.end());
  std::sort(greedy.begin(), greedy.end());
  std::sort(planned.begin(), planned.end());
  EXPECT_EQ(greedy, legacy);
  EXPECT_EQ(planned, legacy);
}

}  // namespace
}  // namespace alex::sparql
