// Differential testing of the two query engines: the compiled
// TermId-space executor (cursors, slot bindings, stats-driven join order)
// must agree with the legacy term-space matcher on randomized queries over
// generated worlds. Enumeration ORDER may differ between the engines, so
// result multisets are compared canonically sorted; LIMIT without a total
// order is checked by size plus inclusion in the unlimited result.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/profiles.h"
#include "datagen/world.h"
#include "rdf/dataset_stats.h"
#include "sparql/executor.h"
#include "sparql/parser.h"

namespace alex::sparql {
namespace {

struct Vocab {
  std::vector<std::string> predicates;  // IRIs
  std::vector<std::string> subjects;    // IRIs
  std::vector<rdf::Term> objects;       // literals and IRIs
};

Vocab CollectVocab(const rdf::TripleStore& store) {
  Vocab vocab;
  const rdf::Dictionary& dict = store.dictionary();
  for (rdf::TermId p : store.Predicates()) {
    vocab.predicates.push_back(dict.term(p).lexical());
  }
  for (rdf::TermId s : store.Subjects()) {
    vocab.subjects.push_back(dict.term(s).lexical());
    if (vocab.subjects.size() >= 200) break;
  }
  for (const rdf::Triple& t :
       store.Match(std::nullopt, std::nullopt, std::nullopt)) {
    vocab.objects.push_back(dict.term(t.object));
    if (vocab.objects.size() >= 400) break;
  }
  return vocab;
}

std::string QuoteLiteral(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

std::string TermText(const rdf::Term& term) {
  return term.is_iri() ? "<" + term.lexical() + ">"
                       : QuoteLiteral(term.lexical());
}

// One randomized query: the full text plus a LIMIT/OFFSET-free variant used
// as the reference superset when the cut is not totally ordered.
struct GeneratedQuery {
  std::string text;
  std::string unlimited_text;
  bool has_cut = false;  // LIMIT and/or OFFSET present
};

GeneratedQuery GenerateQuery(const Vocab& vocab, Rng* rng) {
  const std::vector<std::string> vars = {"?a", "?b", "?c", "?d"};
  auto var = [&] { return vars[rng->NextBounded(vars.size())]; };
  auto predicate = [&] {
    return "<" + vocab.predicates[rng->NextBounded(vocab.predicates.size())] +
           ">";
  };
  auto node = [&]() -> std::string {
    switch (rng->NextBounded(4)) {
      case 0:
        return "<" + vocab.subjects[rng->NextBounded(vocab.subjects.size())] +
               ">";
      case 1:
        return TermText(vocab.objects[rng->NextBounded(vocab.objects.size())]);
      default:
        return var();
    }
  };
  auto pattern = [&] {
    // Subjects lean toward variables so patterns join; predicates are
    // occasionally variables to exercise POS-less scans.
    std::string s = rng->NextBounded(4) == 0 ? node() : var();
    std::string p = rng->NextBounded(8) == 0 ? var() : predicate();
    return s + " " + p + " " + node();
  };
  auto group = [&](size_t max_patterns) {
    std::string out = pattern();
    for (size_t i = rng->NextBounded(max_patterns); i > 0; --i) {
      out += " . " + pattern();
    }
    return out;
  };

  std::string where = "{ " + group(2) + " }";
  if (rng->NextBounded(4) == 0) {
    where = "{ " + where + " UNION { " + group(2) + " } }";
  }
  std::string body = where.substr(1, where.size() - 2);
  if (rng->NextBounded(3) == 0) {
    body += " OPTIONAL { " + group(1) + " }";
  }
  if (rng->NextBounded(3) == 0) {
    const std::string v = var();
    switch (rng->NextBounded(3)) {
      case 0:
        body += " FILTER(" + v + " != " +
                TermText(vocab.objects[rng->NextBounded(
                    vocab.objects.size())]) +
                ")";
        break;
      case 1:
        body += " FILTER(CONTAINS(" + v + ", \"a\"))";
        break;
      default:
        body += " FILTER(" + v + " = " + var() + ")";
    }
  }

  std::string select = rng->NextBounded(4) == 0 ? "*" : var() + " " + var();
  std::string head = "SELECT ";
  if (rng->NextBounded(4) == 0) head += "DISTINCT ";
  GeneratedQuery out;
  out.unlimited_text = head + select + " WHERE { " + body + " }";
  out.text = out.unlimited_text;
  if (rng->NextBounded(3) == 0) {
    out.text += " ORDER BY " + var();
  }
  if (rng->NextBounded(3) == 0) {
    out.text += " LIMIT " + std::to_string(1 + rng->NextBounded(5));
    out.has_cut = true;
  }
  if (rng->NextBounded(6) == 0) {
    out.text += " OFFSET " + std::to_string(rng->NextBounded(3));
    out.has_cut = true;
  }
  return out;
}

std::vector<Binding> RunEngine(const std::string& text,
                               const rdf::TripleStore& store,
                               ExecEngine engine,
                               const rdf::DatasetStats* stats) {
  Result<Query> query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << text << ": " << query.status().ToString();
  ExecuteOptions options;
  options.engine = engine;
  options.stats = stats;
  Result<std::vector<Binding>> rows =
      Execute(query.value(), store, options);
  EXPECT_TRUE(rows.ok()) << text << ": " << rows.status().ToString();
  return rows.ok() ? std::move(rows).value() : std::vector<Binding>{};
}

// `subset` must be contained in `superset` as a multiset.
bool MultisetContained(std::vector<Binding> subset,
                       std::vector<Binding> superset) {
  std::sort(subset.begin(), subset.end());
  std::sort(superset.begin(), superset.end());
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

void CheckWorld(const datagen::WorldProfile& profile, uint64_t seed,
                int num_queries) {
  datagen::GeneratedWorld world = datagen::Generate(profile);
  const rdf::TripleStore& store = world.left;
  Vocab vocab = CollectVocab(store);
  ASSERT_FALSE(vocab.predicates.empty());
  ASSERT_FALSE(vocab.objects.empty());
  rdf::DatasetStats stats = rdf::ComputeStats(store);

  Rng rng(seed);
  for (int i = 0; i < num_queries; ++i) {
    GeneratedQuery generated = GenerateQuery(vocab, &rng);
    std::vector<Binding> legacy =
        RunEngine(generated.text, store, ExecEngine::kLegacy, nullptr);
    std::vector<Binding> compiled =
        RunEngine(generated.text, store, ExecEngine::kCompiled, nullptr);
    // Statistics only reorder the join; the result multiset is invariant.
    std::vector<Binding> compiled_stats =
        RunEngine(generated.text, store, ExecEngine::kCompiled, &stats);

    ASSERT_EQ(compiled.size(), legacy.size()) << generated.text;
    ASSERT_EQ(compiled_stats.size(), legacy.size()) << generated.text;
    if (generated.has_cut) {
      // A cut without a total order may legitimately keep different rows;
      // both engines' picks must come from the same unlimited multiset.
      std::vector<Binding> unlimited = RunEngine(
          generated.unlimited_text, store, ExecEngine::kLegacy, nullptr);
      EXPECT_TRUE(MultisetContained(compiled, unlimited)) << generated.text;
      EXPECT_TRUE(MultisetContained(compiled_stats, unlimited))
          << generated.text;
      EXPECT_TRUE(MultisetContained(legacy, unlimited)) << generated.text;
    } else {
      std::sort(legacy.begin(), legacy.end());
      std::sort(compiled.begin(), compiled.end());
      std::sort(compiled_stats.begin(), compiled_stats.end());
      EXPECT_EQ(compiled, legacy) << generated.text;
      EXPECT_EQ(compiled_stats, legacy) << generated.text;
    }
  }
}

TEST(DifferentialTest, CompiledMatchesLegacyOnTinyWorld) {
  CheckWorld(datagen::TinyTestProfile(), /*seed=*/7, /*num_queries=*/150);
}

TEST(DifferentialTest, CompiledMatchesLegacyOnNoisyWorld) {
  datagen::WorldProfile profile = datagen::DbpediaNytimesProfile();
  profile.overlap_entities = 80;
  profile.left_only_entities = 40;
  profile.right_only_entities = 30;
  CheckWorld(profile, /*seed=*/11, /*num_queries=*/120);
}

TEST(DifferentialTest, AskAgreesAcrossEngines) {
  datagen::GeneratedWorld world = datagen::Generate(datagen::TinyTestProfile());
  Vocab vocab = CollectVocab(world.left);
  Rng rng(23);
  for (int i = 0; i < 60; ++i) {
    GeneratedQuery generated = GenerateQuery(vocab, &rng);
    // Reuse the generated WHERE clause as an ASK query.
    size_t where = generated.unlimited_text.find("WHERE");
    ASSERT_NE(where, std::string::npos);
    std::string ask_text = "ASK " + generated.unlimited_text.substr(where);
    Result<Query> query = ParseQuery(ask_text);
    ASSERT_TRUE(query.ok()) << ask_text << ": " << query.status().ToString();
    ExecuteOptions legacy_options;
    legacy_options.engine = ExecEngine::kLegacy;
    Result<bool> legacy = Ask(query.value(), world.left, legacy_options);
    Result<bool> compiled = Ask(query.value(), world.left);
    ASSERT_TRUE(legacy.ok());
    ASSERT_TRUE(compiled.ok());
    EXPECT_EQ(compiled.value(), legacy.value()) << ask_text;
  }
}

}  // namespace
}  // namespace alex::sparql
