// Tests for SPARQL aggregates: COUNT / SUM / AVG / MIN / MAX with GROUP BY.
#include <gtest/gtest.h>

#include "sparql/executor.h"
#include "sparql/parser.h"

namespace alex::sparql {
namespace {

using rdf::Term;
using rdf::TripleStore;

class AggregateTest : public ::testing::Test {
 protected:
  AggregateTest() : store_("sales") {
    auto add = [this](const char* s, const char* region, int amount) {
      Term subject = Term::Iri(std::string("http://x/") + s);
      store_.Add(subject, Term::Iri("http://x/region"),
                 Term::StringLiteral(region));
      store_.Add(subject, Term::Iri("http://x/amount"),
                 Term::IntegerLiteral(amount));
    };
    add("sale1", "east", 10);
    add("sale2", "east", 30);
    add("sale3", "west", 5);
    add("sale4", "west", 15);
    add("sale5", "west", 25);
  }

  std::vector<Binding> Run(const std::string& text) {
    Result<Query> query = ParseQuery(text);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    if (!query.ok()) return {};
    Result<std::vector<Binding>> rows = Execute(query.value(), store_);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? std::move(rows).value() : std::vector<Binding>{};
  }

  TripleStore store_;
};

TEST_F(AggregateTest, CountStar) {
  auto rows = Run(
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://x/amount> ?a }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("n").AsInteger(), 5);
}

TEST_F(AggregateTest, CountVariableCountsBoundOnly) {
  // Only sale subjects have amounts; region rows bind ?a too via join, so
  // use OPTIONAL-free direct patterns.
  auto rows = Run(
      "SELECT (COUNT(?a) AS ?n) WHERE { ?s <http://x/region> \"east\" . "
      "OPTIONAL { ?s <http://x/amount> ?a } }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("n").AsInteger(), 2);
}

TEST_F(AggregateTest, CountOfEmptyResultIsZero) {
  auto rows = Run(
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://x/region> \"north\" }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("n").AsInteger(), 0);
}

TEST_F(AggregateTest, SumAvgMinMax) {
  auto rows = Run(
      "SELECT (SUM(?a) AS ?total) (AVG(?a) AS ?mean) (MIN(?a) AS ?lo) "
      "(MAX(?a) AS ?hi) WHERE { ?s <http://x/amount> ?a }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].at("total").AsDouble(), 85.0);
  EXPECT_DOUBLE_EQ(rows[0].at("mean").AsDouble(), 17.0);
  EXPECT_EQ(rows[0].at("lo").AsInteger(), 5);
  EXPECT_EQ(rows[0].at("hi").AsInteger(), 30);
}

TEST_F(AggregateTest, GroupByRegion) {
  auto rows = Run(
      "SELECT ?r (COUNT(*) AS ?n) (SUM(?a) AS ?total) WHERE { "
      "?s <http://x/region> ?r . ?s <http://x/amount> ?a } GROUP BY ?r "
      "ORDER BY ?r");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at("r").lexical(), "east");
  EXPECT_EQ(rows[0].at("n").AsInteger(), 2);
  EXPECT_DOUBLE_EQ(rows[0].at("total").AsDouble(), 40.0);
  EXPECT_EQ(rows[1].at("r").lexical(), "west");
  EXPECT_EQ(rows[1].at("n").AsInteger(), 3);
  EXPECT_DOUBLE_EQ(rows[1].at("total").AsDouble(), 45.0);
}

TEST_F(AggregateTest, OrderByAggregateOutput) {
  auto rows = Run(
      "SELECT ?r (SUM(?a) AS ?total) WHERE { ?s <http://x/region> ?r . "
      "?s <http://x/amount> ?a } GROUP BY ?r ORDER BY DESC(?total)");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at("r").lexical(), "west");
}

TEST_F(AggregateTest, LimitAppliesToGroups) {
  auto rows = Run(
      "SELECT ?r (COUNT(*) AS ?n) WHERE { ?s <http://x/region> ?r . "
      "?s <http://x/amount> ?a } GROUP BY ?r ORDER BY ?r LIMIT 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("r").lexical(), "east");
}

TEST_F(AggregateTest, MinMaxOfEmptyGroupOmitted) {
  auto rows = Run(
      "SELECT (MIN(?a) AS ?lo) WHERE { ?s <http://x/region> \"north\" . "
      "?s <http://x/amount> ?a }");
  // One (global) group with zero rows: ?lo stays unbound.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].count("lo"), 0u);
}

TEST_F(AggregateTest, FilterAppliesBeforeAggregation) {
  auto rows = Run(
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://x/amount> ?a . "
      "FILTER(?a >= 15) }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("n").AsInteger(), 3);
}

TEST_F(AggregateTest, ParserRejectsUngroupedProjection) {
  EXPECT_FALSE(ParseQuery(
                   "SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
                   .ok());
}

TEST_F(AggregateTest, ParserRejectsGroupByWithoutAggregates) {
  EXPECT_FALSE(
      ParseQuery("SELECT ?s WHERE { ?s ?p ?o } GROUP BY ?s").ok());
}

TEST_F(AggregateTest, ParserRejectsStarInSum) {
  EXPECT_FALSE(
      ParseQuery("SELECT (SUM(*) AS ?t) WHERE { ?s ?p ?o }").ok());
}

TEST_F(AggregateTest, ToStringRendersAggregates) {
  Result<Query> query = ParseQuery(
      "SELECT ?r (COUNT(?a) AS ?n) WHERE { ?s <http://x/region> ?r . "
      "?s <http://x/amount> ?a } GROUP BY ?r");
  ASSERT_TRUE(query.ok());
  std::string text = query->ToString();
  EXPECT_NE(text.find("(COUNT(?a) AS ?n)"), std::string::npos);
  EXPECT_NE(text.find("GROUP BY ?r"), std::string::npos);
}

TEST_F(AggregateTest, FederatedAggregatesRejected) {
  // Covered in federation tests for OPTIONAL; aggregates follow the same
  // path — verified via the parser + engine wiring in multi_source_test.
  SUCCEED();
}

}  // namespace
}  // namespace alex::sparql
