#include "sparql/parser.h"

#include <gtest/gtest.h>

namespace alex::sparql {
namespace {

Query MustParse(std::string_view text) {
  Result<Query> query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return query.ok() ? std::move(query).value() : Query{};
}

TEST(ParserTest, MinimalSelect) {
  Query q = MustParse("SELECT ?x WHERE { ?x <http://p> ?y . }");
  EXPECT_FALSE(q.distinct);
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0], "x");
  ASSERT_EQ(q.patterns.size(), 1u);
  EXPECT_TRUE(q.patterns[0].subject.is_variable);
  EXPECT_FALSE(q.patterns[0].predicate.is_variable);
  EXPECT_EQ(q.patterns[0].predicate.term.lexical(), "http://p");
}

TEST(ParserTest, SelectStar) {
  Query q = MustParse("SELECT * WHERE { ?x ?p ?y }");
  EXPECT_TRUE(q.select_all);
}

TEST(ParserTest, Distinct) {
  Query q = MustParse("SELECT DISTINCT ?x WHERE { ?x ?p ?y }");
  EXPECT_TRUE(q.distinct);
}

TEST(ParserTest, MultipleVariablesAndPatterns) {
  Query q = MustParse(
      "SELECT ?a ?b WHERE { ?a <http://p1> ?b . ?b <http://p2> \"v\" . }");
  EXPECT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.patterns.size(), 2u);
  EXPECT_FALSE(q.patterns[1].object.is_variable);
  EXPECT_EQ(q.patterns[1].object.term.lexical(), "v");
}

TEST(ParserTest, PrefixExpansion) {
  Query q = MustParse(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?x WHERE { ?x ex:name \"n\" }");
  ASSERT_EQ(q.patterns.size(), 1u);
  EXPECT_EQ(q.patterns[0].predicate.term.lexical(),
            "http://example.org/name");
}

TEST(ParserTest, UnknownPrefixFails) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ex:name ?y }").ok());
}

TEST(ParserTest, SemicolonContinuation) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://p1> ?a ; <http://p2> ?b . }");
  ASSERT_EQ(q.patterns.size(), 2u);
  // Both patterns share the subject.
  EXPECT_EQ(q.patterns[0].subject.variable, "x");
  EXPECT_EQ(q.patterns[1].subject.variable, "x");
  EXPECT_EQ(q.patterns[1].predicate.term.lexical(), "http://p2");
}

TEST(ParserTest, CommaContinuation) {
  Query q = MustParse("SELECT ?x WHERE { ?x <http://p> ?a , ?b . }");
  ASSERT_EQ(q.patterns.size(), 2u);
  EXPECT_EQ(q.patterns[0].object.variable, "a");
  EXPECT_EQ(q.patterns[1].object.variable, "b");
}

TEST(ParserTest, RdfTypeShorthand) {
  Query q = MustParse("SELECT ?x WHERE { ?x a <http://Class> }");
  ASSERT_EQ(q.patterns.size(), 1u);
  EXPECT_EQ(q.patterns[0].predicate.term.lexical(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(ParserTest, NumericObjects) {
  Query q = MustParse("SELECT ?x WHERE { ?x <http://p> 42 . "
                      "?x <http://q> 2.5 }");
  EXPECT_EQ(q.patterns[0].object.term.literal_type(),
            rdf::LiteralType::kInteger);
  EXPECT_EQ(q.patterns[1].object.term.literal_type(),
            rdf::LiteralType::kDouble);
}

TEST(ParserTest, Limit) {
  Query q = MustParse("SELECT ?x WHERE { ?x ?p ?y } LIMIT 10");
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 10u);
}

TEST(ParserTest, FilterComparison) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://age> ?a . FILTER(?a >= 18) }");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0]->op, FilterOp::kGe);
}

TEST(ParserTest, FilterLogical) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://age> ?a . "
      "FILTER(?a > 1 && (?a < 9 || !(?a = 5))) }");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0]->op, FilterOp::kAnd);
  ASSERT_EQ(q.filters[0]->children.size(), 2u);
  EXPECT_EQ(q.filters[0]->children[1]->op, FilterOp::kOr);
}

TEST(ParserTest, FilterContains) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://name> ?n . "
      "FILTER(CONTAINS(?n, \"james\")) }");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0]->op, FilterOp::kContains);
}

TEST(ParserTest, ErrorMissingWhere) {
  EXPECT_FALSE(ParseQuery("SELECT ?x { ?x ?p ?y }").ok());
}

TEST(ParserTest, ErrorUnterminatedBlock) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ?p ?y").ok());
}

TEST(ParserTest, ErrorTrailingTokens) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ?p ?y } ?z").ok());
}

TEST(ParserTest, ErrorNoProjection) {
  EXPECT_FALSE(ParseQuery("SELECT WHERE { ?x ?p ?y }").ok());
}

TEST(ParserTest, ToStringRoundTripParses) {
  Query q = MustParse(
      "SELECT DISTINCT ?x WHERE { ?x <http://p> \"v\" . } LIMIT 3");
  Result<Query> reparsed = ParseQuery(q.ToString());
  ASSERT_TRUE(reparsed.ok()) << q.ToString();
  EXPECT_EQ(reparsed->patterns.size(), 1u);
  EXPECT_TRUE(reparsed->distinct);
  EXPECT_EQ(*reparsed->limit, 3u);
}

}  // namespace
}  // namespace alex::sparql
