// Targeted tests for the DP plan generator, the Explain rendering, and the
// plan cache: join-method selection on shapes designed to make one method
// clearly cheapest, aggregated-scan elimination under DISTINCT, and the
// cache's hit / recompile / drift-invalidation behavior. Identity between
// the planned engine and the legacy oracle is asserted on every executed
// query; the randomized cross-engine sweep lives in differential_test.cc.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/dataset_stats.h"
#include "rdf/triple_store.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/plan_cache.h"
#include "sparql/plangen.h"

namespace alex::sparql {
namespace {

rdf::Term Iri(const std::string& suffix) {
  return rdf::Term::Iri("http://ex/" + suffix);
}

// Compiles `text` with physical plans and returns the compiled form.
CompiledQuery CompileText(const Query& query, const rdf::TripleStore& store,
                          const rdf::DatasetStats* stats) {
  CompileOptions options;
  options.stats = stats;
  options.build_physical_plans = true;
  return CompileQuery(query, store, options);
}

bool PlanContains(const PhysicalPlan& plan, PlanOpKind kind) {
  for (const PlanOp& op : plan.ops) {
    if (op.kind == kind) return true;
  }
  return false;
}

// Runs `text` under `engine` and returns the canonically sorted rows.
std::vector<Binding> SortedRows(const std::string& text,
                                const rdf::TripleStore& store,
                                ExecutorKind engine) {
  Result<Query> query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << text << ": " << query.status().ToString();
  ExecuteOptions options;
  options.engine = engine;
  Result<std::vector<Binding>> rows = Execute(query.value(), store, options);
  EXPECT_TRUE(rows.ok()) << text << ": " << rows.status().ToString();
  std::vector<Binding> out =
      rows.ok() ? std::move(rows).value() : std::vector<Binding>{};
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectPlannedMatchesLegacy(const std::string& text,
                                const rdf::TripleStore& store) {
  EXPECT_EQ(SortedRows(text, store, ExecutorKind::kPlanned),
            SortedRows(text, store, ExecutorKind::kLegacy))
      << text;
}

TEST(PlanGenTest, MergeJoinChosenWhenOrdersAlign) {
  // Both patterns are full-prefix POS ranges (predicate and object
  // constant), so each scan comes back sorted on ?s. With symmetric sides
  // of 60 rows the merge (cost 4N + R) beats both the lookup join
  // (cost 5N + R) and the hash join (cost 5N + R), so the DP must pick it.
  rdf::TripleStore store("merge");
  for (int i = 0; i < 60; ++i) {
    rdf::Term subject = Iri("s" + std::to_string(i));
    store.Add(subject, Iri("p1"), rdf::Term::StringLiteral("v1"));
    store.Add(subject, Iri("p2"), rdf::Term::StringLiteral("v2"));
  }
  const std::string text =
      "SELECT ?s WHERE { ?s <http://ex/p1> \"v1\" . "
      "?s <http://ex/p2> \"v2\" }";
  Result<Query> query = ParseQuery(text);
  ASSERT_TRUE(query.ok());
  rdf::DatasetStats stats = rdf::ComputeStats(store);
  CompiledQuery compiled = CompileText(query.value(), store, &stats);
  ASSERT_EQ(compiled.plans.size(), 1u);
  ASSERT_GE(compiled.plans[0].root, 0);
  EXPECT_TRUE(PlanContains(compiled.plans[0], PlanOpKind::kMergeJoin))
      << RenderPlan(compiled.plans[0], compiled, 0);
  ExpectPlannedMatchesLegacy(text, store);
}

TEST(PlanGenTest, LookupJoinChosenForAnchoredPattern) {
  // One pattern is anchored to a single subject (1 row); probing the wide
  // pattern once is far cheaper than scanning its 200 rows for a merge or
  // hash build.
  rdf::TripleStore store("anchored");
  for (int i = 0; i < 200; ++i) {
    store.Add(Iri("s" + std::to_string(i)), Iri("name"),
              rdf::Term::StringLiteral("n" + std::to_string(i)));
  }
  store.Add(Iri("root"), Iri("child"), Iri("s7"));
  const std::string text =
      "SELECT ?n WHERE { <http://ex/root> <http://ex/child> ?c . "
      "?c <http://ex/name> ?n }";
  Result<Query> query = ParseQuery(text);
  ASSERT_TRUE(query.ok());
  rdf::DatasetStats stats = rdf::ComputeStats(store);
  CompiledQuery compiled = CompileText(query.value(), store, &stats);
  ASSERT_EQ(compiled.plans.size(), 1u);
  ASSERT_GE(compiled.plans[0].root, 0);
  EXPECT_TRUE(PlanContains(compiled.plans[0], PlanOpKind::kIndexLookupJoin))
      << RenderPlan(compiled.plans[0], compiled, 0);
  ExpectPlannedMatchesLegacy(text, store);
}

TEST(PlanGenTest, AggregatedScanForDistinctProjection) {
  // ?x occurs once and is never observed, and it sits in the trailing key
  // position of p1's POS index (p, o, s): the pattern's 30-row range
  // collapses to its 3 distinct ?a values under an aggregated scan. The
  // aggregated leaf costs the same as the plain scan (the range is walked
  // either way) but feeds 10x fewer rows into the join above, so the DP
  // must prefer it.
  rdf::TripleStore store("distinct");
  for (int j = 0; j < 200; ++j) {
    store.Add(Iri("a" + std::to_string(j)), Iri("p2"),
              rdf::Term::StringLiteral("c"));
  }
  for (int i = 0; i < 30; ++i) {
    store.Add(Iri("x" + std::to_string(i)), Iri("p1"),
              Iri("a" + std::to_string(i % 3)));
  }
  const std::string text =
      "SELECT DISTINCT ?a WHERE { ?x <http://ex/p1> ?a . "
      "?a <http://ex/p2> \"c\" }";
  Result<Query> query = ParseQuery(text);
  ASSERT_TRUE(query.ok());
  rdf::DatasetStats stats = rdf::ComputeStats(store);
  CompiledQuery compiled = CompileText(query.value(), store, &stats);
  ASSERT_EQ(compiled.plans.size(), 1u);
  ASSERT_GE(compiled.plans[0].root, 0);
  EXPECT_TRUE(
      PlanContains(compiled.plans[0], PlanOpKind::kAggregatedIndexScan))
      << RenderPlan(compiled.plans[0], compiled, 0);
  std::vector<Binding> planned =
      SortedRows(text, store, ExecutorKind::kPlanned);
  EXPECT_EQ(planned.size(), 3u);
  EXPECT_EQ(planned, SortedRows(text, store, ExecutorKind::kLegacy));
}

TEST(PlanGenTest, ExplainReportsEstimatesAndActuals) {
  rdf::TripleStore store("explain");
  for (int i = 0; i < 10; ++i) {
    rdf::Term subject = Iri("s" + std::to_string(i));
    store.Add(subject, Iri("type"), Iri("T"));
    store.Add(subject, Iri("name"),
              rdf::Term::StringLiteral("n" + std::to_string(i)));
  }
  Result<Query> query = ParseQuery(
      "SELECT ?n WHERE { ?s <http://ex/type> <http://ex/T> . "
      "?s <http://ex/name> ?n }");
  ASSERT_TRUE(query.ok());
  Result<std::string> text = Explain(query.value(), store);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("IndexScan"), std::string::npos) << *text;
  EXPECT_NE(text->find("est_rows="), std::string::npos) << *text;
  EXPECT_NE(text->find("actual_rows="), std::string::npos) << *text;
  EXPECT_NE(text->find("rows returned: 10"), std::string::npos) << *text;
}

TEST(PlanGenTest, GroupByAggregatesMatchLegacy) {
  // Id-space aggregation (COUNT / SUM / AVG / MIN / MAX) must reproduce
  // the legacy term-space results exactly, including group order.
  rdf::TripleStore store("agg");
  for (int i = 0; i < 12; ++i) {
    rdf::Term subject = Iri("s" + std::to_string(i));
    store.Add(subject, Iri("bucket"), Iri("b" + std::to_string(i % 3)));
    store.Add(subject, Iri("score"), rdf::Term::IntegerLiteral(i * 7 % 11));
  }
  ExpectPlannedMatchesLegacy(
      "SELECT ?b (COUNT(?s) AS ?n) (SUM(?v) AS ?sum) (AVG(?v) AS ?avg) "
      "(MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { "
      "?s <http://ex/bucket> ?b . ?s <http://ex/score> ?v } GROUP BY ?b",
      store);
}

TEST(PlanCacheTest, ParseAndPlanHitsAccumulate) {
  rdf::TripleStore store("cache");
  store.Add(Iri("s"), Iri("p"), rdf::Term::StringLiteral("v"));
  rdf::DatasetStats stats = rdf::ComputeStats(store);
  PlanCache cache;
  const std::string text = "SELECT ?s WHERE { ?s <http://ex/p> ?o }";

  Result<const Query*> first = cache.GetParsed(text);
  ASSERT_TRUE(first.ok());
  Result<const Query*> second = cache.GetParsed(text);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());  // pointer-stable

  Result<const CompiledQuery*> plan1 = cache.GetPlan(text, store, &stats);
  ASSERT_TRUE(plan1.ok());
  Result<const CompiledQuery*> plan2 = cache.GetPlan(text, store, &stats);
  ASSERT_TRUE(plan2.ok());
  EXPECT_EQ(plan1.value(), plan2.value());
  EXPECT_FALSE(plan1.value()->plans.empty());

  PlanCache::Stats counters = cache.TakeStats();
  EXPECT_EQ(counters.parse_misses, 1u);
  // GetPlan resolves the parsed form through the same entry, so the two
  // GetPlan calls also count as parse hits.
  EXPECT_EQ(counters.parse_hits, 3u);
  EXPECT_EQ(counters.plan_misses, 1u);
  EXPECT_EQ(counters.plan_hits, 1u);
  EXPECT_EQ(counters.invalidations, 0u);
  EXPECT_EQ(cache.size(), 1u);

  // TakeStats resets: a further hit starts the counters from zero.
  (void)cache.GetPlan(text, store, &stats);
  counters = cache.TakeStats();
  EXPECT_EQ(counters.plan_hits, 1u);
  EXPECT_EQ(counters.plan_misses, 0u);
}

TEST(PlanCacheTest, ParseErrorsAreCached) {
  PlanCache cache;
  const std::string bad = "SELECT WHERE {";
  EXPECT_FALSE(cache.GetParsed(bad).ok());
  EXPECT_FALSE(cache.GetParsed(bad).ok());
  PlanCache::Stats counters = cache.TakeStats();
  EXPECT_EQ(counters.parse_misses, 1u);
  EXPECT_EQ(counters.parse_hits, 1u);
}

TEST(PlanCacheTest, DriftPastThresholdRecompiles) {
  rdf::TripleStore store("drift");
  for (int i = 0; i < 10; ++i) {
    store.Add(Iri("s" + std::to_string(i)), Iri("p"),
              rdf::Term::StringLiteral(std::to_string(i)));
  }
  rdf::DatasetStats stats = rdf::ComputeStats(store);
  PlanCache cache(/*drift_threshold=*/0.2);
  const std::string text = "SELECT ?s WHERE { ?s <http://ex/p> ?o }";

  ASSERT_TRUE(cache.GetPlan(text, store, &stats).ok());
  (void)cache.TakeStats();

  // Small drift (10% more triples): the cached plan is reused.
  rdf::DatasetStats near = stats;
  near.triples = stats.triples + stats.triples / 10;
  ASSERT_TRUE(cache.GetPlan(text, store, &near).ok());
  PlanCache::Stats counters = cache.TakeStats();
  EXPECT_EQ(counters.plan_hits, 1u);
  EXPECT_EQ(counters.invalidations, 0u);

  // Large drift (3x the triples): recompile, counted as an invalidation.
  rdf::DatasetStats far = stats;
  far.triples = stats.triples * 3;
  ASSERT_TRUE(cache.GetPlan(text, store, &far).ok());
  counters = cache.TakeStats();
  EXPECT_EQ(counters.plan_misses, 1u);
  EXPECT_EQ(counters.invalidations, 1u);

  // The recompiled plan was costed with `far`: presenting `far` again hits.
  ASSERT_TRUE(cache.GetPlan(text, store, &far).ok());
  counters = cache.TakeStats();
  EXPECT_EQ(counters.plan_hits, 1u);
  EXPECT_EQ(counters.invalidations, 0u);
}

TEST(PlanCacheTest, StoreChangeRecompiles) {
  rdf::TripleStore left("left");
  left.Add(Iri("a"), Iri("p"), rdf::Term::StringLiteral("x"));
  rdf::TripleStore right("right");
  right.Add(Iri("b"), Iri("p"), rdf::Term::StringLiteral("y"));
  PlanCache cache;
  const std::string text = "SELECT ?s WHERE { ?s <http://ex/p> ?o }";

  Result<const CompiledQuery*> on_left = cache.GetPlan(text, left, nullptr);
  ASSERT_TRUE(on_left.ok());
  EXPECT_EQ(on_left.value()->store, &left);
  Result<const CompiledQuery*> on_right = cache.GetPlan(text, right, nullptr);
  ASSERT_TRUE(on_right.ok());
  EXPECT_EQ(on_right.value()->store, &right);
  PlanCache::Stats counters = cache.TakeStats();
  EXPECT_EQ(counters.plan_misses, 2u);
  EXPECT_EQ(counters.invalidations, 1u);
}

}  // namespace
}  // namespace alex::sparql
