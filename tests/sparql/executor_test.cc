#include "sparql/executor.h"

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace alex::sparql {
namespace {

using rdf::Term;
using rdf::TripleStore;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : store_("people") {
    auto add = [this](const char* s, const char* p, Term o) {
      store_.Add(Term::Iri(std::string("http://x/") + s),
                 Term::Iri(std::string("http://x/") + p), std::move(o));
    };
    add("alice", "name", Term::StringLiteral("Alice"));
    add("alice", "age", Term::IntegerLiteral(30));
    add("alice", "knows", Term::Iri("http://x/bob"));
    add("bob", "name", Term::StringLiteral("Bob"));
    add("bob", "age", Term::IntegerLiteral(25));
    add("bob", "knows", Term::Iri("http://x/carol"));
    add("carol", "name", Term::StringLiteral("Carol"));
    add("carol", "age", Term::IntegerLiteral(35));
  }

  std::vector<Binding> Run(const std::string& text) {
    Result<Query> query = ParseQuery(text);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    Result<std::vector<Binding>> rows = Execute(query.value(), store_);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? std::move(rows).value() : std::vector<Binding>{};
  }

  TripleStore store_;
};

TEST_F(ExecutorTest, SinglePattern) {
  auto rows = Run("SELECT ?s WHERE { ?s <http://x/name> ?n }");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(ExecutorTest, BoundObject) {
  auto rows = Run("SELECT ?s WHERE { ?s <http://x/name> \"Bob\" }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("s").lexical(), "http://x/bob");
}

TEST_F(ExecutorTest, JoinAcrossPatterns) {
  auto rows = Run(
      "SELECT ?n WHERE { ?a <http://x/knows> ?b . "
      "?b <http://x/name> ?n }");
  ASSERT_EQ(rows.size(), 2u);
}

TEST_F(ExecutorTest, ChainJoin) {
  auto rows = Run(
      "SELECT ?c WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("c").lexical(), "http://x/carol");
}

TEST_F(ExecutorTest, SharedVariableMustUnify) {
  // ?x knows ?x: nobody knows themselves.
  auto rows = Run("SELECT ?x WHERE { ?x <http://x/knows> ?x }");
  EXPECT_TRUE(rows.empty());
}

TEST_F(ExecutorTest, FilterNumeric) {
  auto rows = Run(
      "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(?a > 28) }");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(ExecutorTest, FilterConjunction) {
  auto rows = Run(
      "SELECT ?s WHERE { ?s <http://x/age> ?a . "
      "FILTER(?a > 28 && ?a < 33) }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("s").lexical(), "http://x/alice");
}

TEST_F(ExecutorTest, FilterContains) {
  auto rows = Run(
      "SELECT ?s WHERE { ?s <http://x/name> ?n . "
      "FILTER(CONTAINS(?n, \"aro\")) }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("s").lexical(), "http://x/carol");
}

TEST_F(ExecutorTest, FilterNotEqual) {
  auto rows = Run(
      "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(?n != \"Bob\") }");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(ExecutorTest, Limit) {
  auto rows = Run("SELECT ?s WHERE { ?s <http://x/name> ?n } LIMIT 2");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(ExecutorTest, Distinct) {
  auto rows = Run("SELECT DISTINCT ?p WHERE { ?s ?p ?o }");
  EXPECT_EQ(rows.size(), 3u);  // name, age, knows
}

TEST_F(ExecutorTest, SelectStarBindsAllVariables) {
  auto rows = Run("SELECT * WHERE { ?s <http://x/age> ?a } LIMIT 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 2u);
}

TEST_F(ExecutorTest, UnknownConstantYieldsEmpty) {
  auto rows = Run("SELECT ?s WHERE { ?s <http://x/nonexistent> ?o }");
  EXPECT_TRUE(rows.empty());
}

TEST_F(ExecutorTest, ProjectionDropsUnselectedVariables) {
  auto rows = Run("SELECT ?s WHERE { ?s <http://x/age> ?a }");
  for (const Binding& row : rows) {
    EXPECT_EQ(row.size(), 1u);
    EXPECT_TRUE(row.count("s"));
  }
}

TEST_F(ExecutorTest, CartesianProductOfDisconnectedPatterns) {
  auto rows = Run(
      "SELECT ?a ?b WHERE { ?a <http://x/age> 30 . ?b <http://x/age> 25 }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("a").lexical(), "http://x/alice");
  EXPECT_EQ(rows[0].at("b").lexical(), "http://x/bob");
}

TEST_F(ExecutorTest, MaxRowsCap) {
  ExecuteOptions options;
  options.max_rows = 2;
  Result<Query> query = ParseQuery("SELECT ?s ?p ?o WHERE { ?s ?p ?o }");
  ASSERT_TRUE(query.ok());
  auto rows = Execute(query.value(), store_, options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

}  // namespace
}  // namespace alex::sparql
