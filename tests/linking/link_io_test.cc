#include "linking/link_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace alex::linking {
namespace {

std::vector<Link> SampleLinks() {
  return {{"http://l/a", "http://r/x", 0.99},
          {"http://l/b", "http://r/y", 0.5},
          {"http://l/c", "http://r/z", 1.0}};
}

TEST(LinkIoTest, TsvRoundTrip) {
  std::string tsv = WriteLinksTsv(SampleLinks());
  Result<std::vector<Link>> parsed = ParseLinksTsv(tsv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].left, "http://l/a");
  EXPECT_EQ((*parsed)[0].right, "http://r/x");
  EXPECT_DOUBLE_EQ((*parsed)[0].score, 0.99);
  EXPECT_DOUBLE_EQ((*parsed)[1].score, 0.5);
}

TEST(LinkIoTest, TsvScoreOptional) {
  Result<std::vector<Link>> parsed = ParseLinksTsv("a\tb\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_DOUBLE_EQ((*parsed)[0].score, 1.0);
}

TEST(LinkIoTest, TsvSkipsCommentsAndBlank) {
  Result<std::vector<Link>> parsed =
      ParseLinksTsv("# header\n\na\tb\t0.7\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(LinkIoTest, TsvRejectsMalformed) {
  EXPECT_FALSE(ParseLinksTsv("only-one-field\n").ok());
  EXPECT_FALSE(ParseLinksTsv("a\tb\tnot-a-number\n").ok());
  Result<std::vector<Link>> bad = ParseLinksTsv("ok\tfine\nbroken\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(LinkIoTest, NTriplesRoundTrip) {
  std::string nt = WriteLinksNTriples(SampleLinks());
  EXPECT_NE(nt.find("owl#sameAs"), std::string::npos);
  Result<std::vector<Link>> parsed = ParseLinksNTriples(nt);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 3u);
  for (const Link& link : *parsed) {
    EXPECT_DOUBLE_EQ(link.score, 1.0);  // scores are not representable
  }
}

TEST(LinkIoTest, NTriplesIgnoresOtherPredicates) {
  const char* doc =
      "<http://l/a> <http://www.w3.org/2002/07/owl#sameAs> <http://r/x> .\n"
      "<http://l/a> <http://other/pred> <http://r/y> .\n";
  Result<std::vector<Link>> parsed = ParseLinksNTriples(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(LinkIoTest, NTriplesIgnoresLiteralObjects) {
  const char* doc =
      "<http://l/a> <http://www.w3.org/2002/07/owl#sameAs> \"oops\" .\n";
  Result<std::vector<Link>> parsed = ParseLinksNTriples(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(LinkIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/links_io_test.tsv";
  ASSERT_TRUE(SaveLinksTsv(SampleLinks(), path).ok());
  Result<std::vector<Link>> loaded = LoadLinksTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  std::remove(path.c_str());
}

TEST(LinkIoTest, LoadMissingFileIsNotFound) {
  EXPECT_EQ(LoadLinksTsv("/nonexistent/x.tsv").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LoadLinksNTriples("/nonexistent/x.nt").status().code(),
            StatusCode::kNotFound);
}

TEST(LinkIoTest, NTriplesFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/links_io_test.nt";
  ASSERT_TRUE(SaveLinksNTriples(SampleLinks(), path).ok());
  Result<std::vector<Link>> loaded = LoadLinksNTriples(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace alex::linking
