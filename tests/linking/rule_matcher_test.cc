#include "linking/rule_matcher.h"

#include <gtest/gtest.h>

namespace alex::linking {
namespace {

using rdf::Term;
using rdf::TripleStore;

class RuleMatcherTest : public ::testing::Test {
 protected:
  RuleMatcherTest() : left_("l"), right_("r") {
    Add(&left_, "http://l/e1", "http://l/name", "Roger Federer");
    Add(&left_, "http://l/e2", "http://l/name", "Rafael Nadal");
    Add(&left_, "http://l/e3", "http://l/name", "Serena Williams");
    Add(&right_, "http://r/x1", "http://r/label", "Roger Federer");
    Add(&right_, "http://r/x2", "http://r/label", "Rafael Nadal Parera");
    Add(&right_, "http://r/x3", "http://r/label", "Venus Williams");
  }

  static void Add(TripleStore* store, const char* s, const char* p,
                  const char* v) {
    store->Add(Term::Iri(s), Term::Iri(p), Term::StringLiteral(v));
  }

  RuleMatcherOptions NameRule(double threshold) {
    RuleMatcherOptions options;
    options.rules.push_back(
        MatchRule{"http://l/name", "http://r/label", 1.0, 0.5});
    options.accept_threshold = threshold;
    return options;
  }

  TripleStore left_;
  TripleStore right_;
};

TEST_F(RuleMatcherTest, ExactNameMatches) {
  std::vector<Link> links = RunRuleMatcher(left_, right_, NameRule(0.95));
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].left, "http://l/e1");
  EXPECT_EQ(links[0].right, "http://r/x1");
}

TEST_F(RuleMatcherTest, LowerThresholdFindsFuzzyMatches) {
  std::vector<Link> links = RunRuleMatcher(left_, right_, NameRule(0.6));
  // Nadal vs "Rafael Nadal Parera" shares 2/3 tokens.
  bool nadal = false;
  for (const Link& link : links) {
    if (link.left == "http://l/e2" && link.right == "http://r/x2") {
      nadal = true;
    }
  }
  EXPECT_TRUE(nadal);
}

TEST_F(RuleMatcherTest, BlockingRequiresSharedToken) {
  // "Serena Williams" and "Venus Williams" share a token, so they are
  // candidates but score only 1/3 — below threshold.
  std::vector<Link> links = RunRuleMatcher(left_, right_, NameRule(0.9));
  for (const Link& link : links) {
    EXPECT_NE(link.left, "http://l/e3");
  }
}

TEST_F(RuleMatcherTest, ScoresSortedDescending) {
  std::vector<Link> links = RunRuleMatcher(left_, right_, NameRule(0.1));
  for (size_t i = 1; i < links.size(); ++i) {
    EXPECT_GE(links[i - 1].score, links[i].score);
  }
}

TEST_F(RuleMatcherTest, EmptyRulesYieldNothing) {
  RuleMatcherOptions options;
  EXPECT_TRUE(RunRuleMatcher(left_, right_, options).empty());
}

TEST_F(RuleMatcherTest, UnknownPredicatesYieldNothing) {
  RuleMatcherOptions options;
  options.rules.push_back(MatchRule{"http://l/none", "http://r/none", 1.0,
                                    0.5});
  options.accept_threshold = 0.1;
  EXPECT_TRUE(RunRuleMatcher(left_, right_, options).empty());
}

TEST_F(RuleMatcherTest, MultipleWeightedRules) {
  TripleStore left("l"), right("r");
  Add(&left, "http://l/a", "http://l/name", "Alpha Beta");
  left.Add(Term::Iri("http://l/a"), Term::Iri("http://l/year"),
           Term::IntegerLiteral(1999));
  Add(&right, "http://r/b", "http://r/label", "Alpha Beta");
  right.Add(Term::Iri("http://r/b"), Term::Iri("http://r/founded"),
            Term::IntegerLiteral(1999));

  RuleMatcherOptions options;
  options.rules.push_back(
      MatchRule{"http://l/name", "http://r/label", 2.0, 0.5});
  options.rules.push_back(
      MatchRule{"http://l/year", "http://r/founded", 1.0, 0.5});
  options.accept_threshold = 0.9;
  std::vector<Link> links = RunRuleMatcher(left, right, options);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_NEAR(links[0].score, 1.0, 1e-9);
}

TEST_F(RuleMatcherTest, MaxBlockSkipsHugeTokenGroups) {
  TripleStore left("l"), right("r");
  for (int i = 0; i < 50; ++i) {
    Add(&left, ("http://l/e" + std::to_string(i)).c_str(), "http://l/name",
        "common token");
    Add(&right, ("http://r/x" + std::to_string(i)).c_str(), "http://r/label",
        "common token");
  }
  RuleMatcherOptions options;
  options.rules.push_back(
      MatchRule{"http://l/name", "http://r/label", 1.0, 0.5});
  options.accept_threshold = 0.5;
  options.max_block = 10;  // 50 > 10, every block is skipped
  EXPECT_TRUE(RunRuleMatcher(left, right, options).empty());
}

}  // namespace
}  // namespace alex::linking
