#include "linking/paris.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "datagen/profiles.h"
#include "datagen/world.h"
#include "feedback/oracle.h"

namespace alex::linking {
namespace {

using rdf::Term;
using rdf::TripleStore;

// Two tiny hand-built data sets with an obvious alignment.
class ParisTest : public ::testing::Test {
 protected:
  ParisTest() : left_("l"), right_("r") {
    AddPerson(&left_, "http://l/e1", "http://l/name", "Marie Curie",
              "http://l/born", 1867);
    AddPerson(&left_, "http://l/e2", "http://l/name", "Albert Einstein",
              "http://l/born", 1879);
    AddPerson(&left_, "http://l/e3", "http://l/name", "Paul Dirac",
              "http://l/born", 1902);
    AddPerson(&right_, "http://r/x1", "http://r/label", "Marie Curie",
              "http://r/birthYear", 1867);
    AddPerson(&right_, "http://r/x2", "http://r/label", "Albert Einstein",
              "http://r/birthYear", 1879);
    AddPerson(&right_, "http://r/x3", "http://r/label", "Niels Bohr",
              "http://r/birthYear", 1885);
  }

  static void AddPerson(TripleStore* store, const char* iri,
                        const char* name_pred, const char* name,
                        const char* year_pred, int year) {
    store->Add(Term::Iri(iri), Term::Iri(name_pred),
               Term::StringLiteral(name));
    store->Add(Term::Iri(iri), Term::Iri(year_pred),
               Term::IntegerLiteral(year));
  }

  TripleStore left_;
  TripleStore right_;
};

TEST_F(ParisTest, FindsExactMatches) {
  std::vector<Link> links = RunParis(left_, right_);
  ASSERT_GE(links.size(), 2u);
  bool curie = false, einstein = false;
  for (const Link& link : links) {
    if (link.left == "http://l/e1" && link.right == "http://r/x1") {
      curie = true;
    }
    if (link.left == "http://l/e2" && link.right == "http://r/x2") {
      einstein = true;
    }
    // No link should involve the unmatched entities.
    EXPECT_NE(link.left, "http://l/e3");
    EXPECT_NE(link.right, "http://r/x3");
  }
  EXPECT_TRUE(curie);
  EXPECT_TRUE(einstein);
}

TEST_F(ParisTest, ScoresAreProbabilities) {
  for (const Link& link : RunParis(left_, right_)) {
    EXPECT_GT(link.score, 0.0);
    EXPECT_LE(link.score, 1.0);
  }
}

TEST_F(ParisTest, OutputSortedByScore) {
  std::vector<Link> links = RunParis(left_, right_);
  for (size_t i = 1; i < links.size(); ++i) {
    EXPECT_GE(links[i - 1].score, links[i].score);
  }
}

TEST_F(ParisTest, MutualBestKeepsOneLinkPerEntity) {
  std::vector<Link> links = RunParis(left_, right_);
  std::set<std::string> lefts, rights;
  for (const Link& link : links) {
    EXPECT_TRUE(lefts.insert(link.left).second) << link.left;
    EXPECT_TRUE(rights.insert(link.right).second) << link.right;
  }
}

TEST(ParisValueTest, CaseAndWhitespaceInsensitive) {
  TripleStore left("l"), right("r");
  left.Add(Term::Iri("http://l/a"), Term::Iri("http://l/name"),
           Term::StringLiteral("New  York TIMES"));
  right.Add(Term::Iri("http://r/b"), Term::Iri("http://r/label"),
            Term::StringLiteral("new york times"));
  std::vector<Link> links = RunParis(left, right);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].left, "http://l/a");
}

TEST(ParisValueTest, NumericLexicalVariantsMatch) {
  TripleStore left("l"), right("r");
  left.Add(Term::Iri("http://l/a"), Term::Iri("http://l/v"),
           Term::IntegerLiteral(5));
  right.Add(Term::Iri("http://r/b"), Term::Iri("http://r/v"),
            Term::DoubleLiteral(5.0));
  std::vector<Link> links = RunParis(left, right);
  ASSERT_EQ(links.size(), 1u);
}

TEST(ParisValueTest, NoisyValuesDoNotMatch) {
  // PARIS needs exact values: typos break its evidence (this is exactly the
  // recall gap ALEX exploits).
  TripleStore left("l"), right("r");
  left.Add(Term::Iri("http://l/a"), Term::Iri("http://l/name"),
           Term::StringLiteral("Marie Curie"));
  right.Add(Term::Iri("http://r/b"), Term::Iri("http://r/label"),
            Term::StringLiteral("Marie Curei"));
  EXPECT_TRUE(RunParis(left, right).empty());
}

TEST(ParisStopValueTest, OverlyCommonValuesIgnored) {
  TripleStore left("l"), right("r");
  // 60 subjects share the same value on both sides (> max_value_group).
  for (int i = 0; i < 60; ++i) {
    left.Add(Term::Iri("http://l/e" + std::to_string(i)),
             Term::Iri("http://l/type"), Term::StringLiteral("thing"));
    right.Add(Term::Iri("http://r/x" + std::to_string(i)),
              Term::Iri("http://r/type"), Term::StringLiteral("thing"));
  }
  EXPECT_TRUE(RunParis(left, right).empty());
}

TEST(ParisSymmetryTest, SwappedInputsFindMirroredLinks) {
  // Running PARIS with left/right swapped must find the same correct
  // pairs, mirrored. (Scores can differ slightly because functionalities
  // are computed per side.)
  datagen::WorldProfile profile = datagen::TinyTestProfile();
  profile.confusable_pairs = 0;
  datagen::GeneratedWorld world = datagen::Generate(profile);
  std::vector<Link> forward =
      FilterByScore(RunParis(world.left, world.right), 0.95);
  std::vector<Link> backward =
      FilterByScore(RunParis(world.right, world.left), 0.95);
  std::set<std::pair<std::string, std::string>> fwd, bwd;
  for (const Link& link : forward) fwd.insert({link.left, link.right});
  for (const Link& link : backward) bwd.insert({link.right, link.left});
  // Strong overlap between the two directions.
  size_t common = 0;
  for (const auto& pair : fwd) {
    if (bwd.count(pair) > 0) ++common;
  }
  ASSERT_FALSE(fwd.empty());
  EXPECT_GE(static_cast<double>(common) / fwd.size(), 0.9);
}

TEST(ParisFilterTest, FilterByScoreKeepsStrictlyAbove) {
  std::vector<Link> links = {{"a", "x", 0.99}, {"b", "y", 0.95},
                             {"c", "z", 0.50}};
  std::vector<Link> kept = FilterByScore(links, 0.95);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].left, "a");
}

TEST(ParisRegimeTest, NoisyProfileGivesHighPrecisionLowRecall) {
  // The DBpedia-NYTimes regime (Figure 2a starting point).
  datagen::WorldProfile profile = datagen::DbpediaNytimesProfile();
  profile.overlap_entities = 150;
  profile.left_only_entities = 100;
  profile.right_only_entities = 50;
  datagen::GeneratedWorld world = datagen::Generate(profile);
  std::vector<Link> links =
      FilterByScore(RunParis(world.left, world.right), 0.95);
  feedback::GroundTruth truth(world.ground_truth);
  size_t correct = 0;
  for (const Link& link : links) {
    if (truth.Contains(link)) ++correct;
  }
  ASSERT_FALSE(links.empty());
  double precision = static_cast<double>(correct) / links.size();
  double recall = static_cast<double>(correct) / truth.size();
  EXPECT_GT(precision, 0.8);
  EXPECT_LT(recall, 0.75);
}

TEST(ParisRegimeTest, ConfusableProfileGivesLowPrecisionHighRecall) {
  // The DBpedia-Drugbank regime (Figure 2b starting point).
  datagen::WorldProfile profile = datagen::DbpediaDrugbankProfile();
  profile.overlap_entities = 80;
  profile.left_only_entities = 60;
  profile.right_only_entities = 30;
  profile.confusable_pairs = 180;
  datagen::GeneratedWorld world = datagen::Generate(profile);
  std::vector<Link> links =
      FilterByScore(RunParis(world.left, world.right), 0.95);
  feedback::GroundTruth truth(world.ground_truth);
  size_t correct = 0;
  for (const Link& link : links) {
    if (truth.Contains(link)) ++correct;
  }
  ASSERT_FALSE(links.empty());
  double precision = static_cast<double>(correct) / links.size();
  double recall = static_cast<double>(correct) / truth.size();
  EXPECT_LT(precision, 0.6);
  EXPECT_GT(recall, 0.9);
}

}  // namespace
}  // namespace alex::linking
