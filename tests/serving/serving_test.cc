#include "serving/serving_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "datagen/profiles.h"
#include "eval/query_workload.h"
#include "linking/paris.h"
#include "rdf/dataset_stats.h"
#include "rdf/triple_store.h"
#include "serving/serving_loop.h"

namespace alex::serving {
namespace {

using linking::Link;
using rdf::Term;

// Two tiny stores bridged by owl:sameAs links — the paper's §1 example
// shape. The serving engine is built over them with LeBron's link as the
// epoch-0 content.
class ServingEngineTest : public ::testing::Test {
 protected:
  ServingEngineTest() : dbpedia_("dbpedia"), nytimes_("nytimes") {
    dbpedia_.Add(Term::Iri("http://dbpedia.org/LeBron_James"),
                 Term::Iri("http://dbpedia.org/award"),
                 Term::StringLiteral("NBA MVP 2013"));
    dbpedia_.Add(Term::Iri("http://dbpedia.org/Kevin_Durant"),
                 Term::Iri("http://dbpedia.org/award"),
                 Term::StringLiteral("NBA MVP 2014"));
    nytimes_.Add(Term::Iri("http://nyt.com/article/1"),
                 Term::Iri("http://nyt.com/about"),
                 Term::Iri("http://nyt.com/person/lebron"));
    nytimes_.Add(Term::Iri("http://nyt.com/article/3"),
                 Term::Iri("http://nyt.com/about"),
                 Term::Iri("http://nyt.com/person/durant"));
    // Warm the lazy store indexes before any concurrent access.
    (void)dbpedia_.size();
    (void)nytimes_.size();
  }

  ServingOptions Options() {
    ServingOptions options;
    options.sources = {&dbpedia_, &nytimes_};
    return options;
  }

  static Link LebronLink() {
    return Link{"http://dbpedia.org/LeBron_James",
                "http://nyt.com/person/lebron", 0.99};
  }
  static Link DurantLink() {
    return Link{"http://dbpedia.org/Kevin_Durant",
                "http://nyt.com/person/durant", 1.0};
  }
  static std::string AwardQuery(const std::string& award) {
    return "SELECT ?article WHERE { "
           "?player <http://dbpedia.org/award> \"" +
           award +
           "\" . "
           "?article <http://nyt.com/about> ?player }";
  }

  rdf::TripleStore dbpedia_;
  rdf::TripleStore nytimes_;
};

TEST_F(ServingEngineTest, PinnedEpochSurvivesPublish) {
  ServingEngine serving(Options(), std::vector<Link>{LebronLink()});
  std::shared_ptr<const EpochSnapshot> epoch0 = serving.Pin();
  ASSERT_NE(epoch0, nullptr);
  EXPECT_EQ(epoch0->epoch(), 0u);

  auto before = epoch0->ExecuteText(AwardQuery("NBA MVP 2013"));
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->answers.size(), 1u);

  // The learner retracts LeBron's link and adds Durant's, then publishes.
  serving.StageLink(LebronLink(), false);
  serving.StageLink(DurantLink(), true);
  std::shared_ptr<const EpochSnapshot> epoch1 = serving.Publish();
  EXPECT_EQ(epoch1->epoch(), 1u);
  EXPECT_EQ(serving.Pin()->epoch(), 1u);

  // A query that pinned epoch 0 before the publish still sees epoch 0's
  // links — bitwise the same answers as before.
  auto pinned_after = epoch0->ExecuteText(AwardQuery("NBA MVP 2013"));
  ASSERT_TRUE(pinned_after.ok());
  ASSERT_EQ(pinned_after->answers.size(), 1u);
  EXPECT_EQ(HashAnswers(pinned_after->answers), HashAnswers(before->answers));
  auto pinned_durant = epoch0->ExecuteText(AwardQuery("NBA MVP 2014"));
  ASSERT_TRUE(pinned_durant.ok());
  EXPECT_TRUE(pinned_durant->answers.empty());

  // The new epoch sees the new membership.
  auto fresh_lebron = epoch1->ExecuteText(AwardQuery("NBA MVP 2013"));
  ASSERT_TRUE(fresh_lebron.ok());
  EXPECT_TRUE(fresh_lebron->answers.empty());
  auto fresh_durant = epoch1->ExecuteText(AwardQuery("NBA MVP 2014"));
  ASSERT_TRUE(fresh_durant.ok());
  EXPECT_EQ(fresh_durant->answers.size(), 1u);
}

TEST_F(ServingEngineTest, SnapshotsRetireExactlyWhenLastReaderDrains) {
  ServingEngine serving(Options(), std::vector<Link>{LebronLink()});
  EXPECT_EQ(serving.stats().snapshots_retired, 0u);

  std::shared_ptr<const EpochSnapshot> pinned = serving.Pin();  // epoch 0
  serving.StageLink(DurantLink(), true);
  (void)serving.Publish();  // epoch 1 current; epoch 0 alive through pin
  EXPECT_EQ(serving.stats().snapshots_retired, 0u);

  serving.StageLink(DurantLink(), false);
  (void)serving.Publish();  // epoch 2 current; epoch 1 had no readers
  EXPECT_EQ(serving.stats().snapshots_retired, 1u);

  // Epoch 0 must stay fully usable while pinned (ASan would flag a free).
  auto result = pinned->ExecuteText(AwardQuery("NBA MVP 2013"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 1u);

  pinned.reset();  // last reader drains -> epoch 0 retires now
  EXPECT_EQ(serving.stats().snapshots_retired, 2u);
  EXPECT_EQ(serving.stats().epochs_published, 3u);
}

TEST_F(ServingEngineTest, QueryCacheCarriesForwardMinusEpochDelta) {
  ServingEngine serving(Options(), std::vector<Link>{LebronLink()});
  const std::string lebron_q = AwardQuery("NBA MVP 2013");

  auto miss = serving.ExecuteText(lebron_q);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->from_cache);
  auto hit = serving.ExecuteText(lebron_q);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->from_cache);

  // Durant's link touches neither of the neighborhoods the LeBron query
  // consulted: the next epoch serves the carried-forward entry on its
  // first execution.
  serving.StageLink(DurantLink(), true);
  (void)serving.Publish();
  auto carried = serving.ExecuteText(lebron_q);
  ASSERT_TRUE(carried.ok());
  EXPECT_TRUE(carried->from_cache);
  EXPECT_EQ(HashAnswers(carried->answers), HashAnswers(miss->answers));

  // Retracting LeBron's link invalidates exactly that entry: the next
  // epoch re-executes and sees the shrunk answer set.
  serving.StageLink(LebronLink(), false);
  (void)serving.Publish();
  auto invalidated = serving.ExecuteText(lebron_q);
  ASSERT_TRUE(invalidated.ok());
  EXPECT_FALSE(invalidated->from_cache);
  EXPECT_TRUE(invalidated->answers.empty());
}

TEST_F(ServingEngineTest, PlanCacheSharedAcrossEpochsUntilDrift) {
  ServingEngine serving(Options(), std::vector<Link>{LebronLink()});
  std::shared_ptr<const EpochSnapshot> epoch0 = serving.Pin();
  serving.StageLink(DurantLink(), true);
  std::shared_ptr<const EpochSnapshot> epoch1 = serving.Publish();
  // Statistics did not drift (stores are immutable): one shared plan cache.
  ASSERT_NE(epoch0->plan_cache(), nullptr);
  EXPECT_EQ(epoch0->plan_cache(), epoch1->plan_cache());

  // Small drift: still shared.
  std::vector<rdf::DatasetStats> near = {rdf::ComputeStats(dbpedia_),
                                         rdf::ComputeStats(nytimes_)};
  EXPECT_FALSE(serving.NoteFreshStats(near));
  std::shared_ptr<const EpochSnapshot> epoch2 = serving.Publish();
  EXPECT_EQ(epoch1->plan_cache(), epoch2->plan_cache());

  // Drift past the threshold: the NEXT publish starts a fresh plan cache;
  // already-published epochs keep the one they hold.
  std::vector<rdf::DatasetStats> far = near;
  far[0].triples = near[0].triples * 10;
  EXPECT_TRUE(serving.NoteFreshStats(far));
  std::shared_ptr<const EpochSnapshot> epoch3 = serving.Publish();
  EXPECT_NE(epoch3->plan_cache(), epoch2->plan_cache());
  EXPECT_EQ(epoch0->plan_cache(), epoch2->plan_cache());
}

TEST_F(ServingEngineTest, ReaderAccountingTracksQueries) {
  ServingEngine serving(Options(), std::vector<Link>{LebronLink()});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(serving.ExecuteText(AwardQuery("NBA MVP 2013")).ok());
  }
  ServingEngine::Stats stats = serving.stats();
  EXPECT_EQ(stats.queries_served, 5u);
  EXPECT_GE(stats.max_concurrent_readers, 1u);
  EXPECT_EQ(serving.latency().count(), 5u);
}

// -- Live-learner regimes over a generated world ---------------------------

struct LoopFixture {
  LoopFixture()
      : world(datagen::Generate(datagen::TinyTestProfile())),
        truth(world.ground_truth),
        initial(linking::FilterByScore(
            linking::RunParis(world.left, world.right), 0.95)) {}

  // A fresh, identically-initialized engine per run (the series must depend
  // only on the run configuration).
  std::unique_ptr<core::AlexEngine> MakeEngine() {
    core::AlexOptions options;
    options.num_partitions = 2;
    options.num_threads = 1;
    auto engine =
        std::make_unique<core::AlexEngine>(&world.left, &world.right, options);
    EXPECT_TRUE(engine->Initialize(initial).ok());
    return engine;
  }

  ServingLoopOptions LoopOptions() {
    ServingLoopOptions options;
    options.workload.num_queries = 80;
    options.episode_size = 60;
    options.max_episodes = 5;
    return options;
  }

  datagen::GeneratedWorld world;
  feedback::GroundTruth truth;
  std::vector<linking::Link> initial;
};

// The serving loop's learner series must be bitwise-identical to the plain
// query-driven run (serving off) and invariant to the stream count.
TEST(ServingLoopTest, EpisodeSeriesUnchangedServingOnOrOff) {
  LoopFixture fixture;

  eval::QueryDrivenOptions plain_options;
  plain_options.workload.num_queries = 80;
  plain_options.episode_size = 60;
  plain_options.max_episodes = 5;
  auto plain_engine = fixture.MakeEngine();
  eval::ExperimentResult plain = eval::RunQueryDrivenExperiment(
      plain_engine.get(), fixture.world, fixture.truth, plain_options);

  for (size_t streams : {size_t{0}, size_t{2}, size_t{4}}) {
    ServingLoopOptions options = fixture.LoopOptions();
    options.num_streams = streams;
    options.verify_identity = false;
    auto engine = fixture.MakeEngine();
    ServingRunResult served = RunServingExperiment(
        engine.get(), fixture.world, fixture.truth, options);

    ASSERT_EQ(served.experiment.series.size(), plain.series.size())
        << streams << " streams";
    for (size_t i = 0; i < plain.series.size(); ++i) {
      const eval::EpisodePoint& a = plain.series[i];
      const eval::EpisodePoint& b = served.experiment.series[i];
      EXPECT_EQ(a.quality.precision, b.quality.precision) << "ep " << i;
      EXPECT_EQ(a.quality.recall, b.quality.recall) << "ep " << i;
      EXPECT_EQ(a.quality.f_measure, b.quality.f_measure) << "ep " << i;
      EXPECT_EQ(a.quality.candidates, b.quality.candidates) << "ep " << i;
      EXPECT_EQ(a.stats.feedback_items, b.stats.feedback_items) << "ep " << i;
      EXPECT_EQ(a.stats.positive_feedback, b.stats.positive_feedback);
      EXPECT_EQ(a.stats.negative_feedback, b.stats.negative_feedback);
      EXPECT_EQ(a.stats.candidate_count, b.stats.candidate_count);
    }
    EXPECT_EQ(served.experiment.new_links_discovered,
              plain.new_links_discovered);
  }
}

// Concurrent streams over a live learner: every recorded answer set is
// bitwise-identical to a sequential replay against the same epoch, at
// 1, 2 and 4 stream threads. (Run under TSan by scripts/check_tsan.sh.)
TEST(ServingLoopTest, ConcurrentStreamsAreBitwiseIdenticalToReplay) {
  LoopFixture fixture;
  for (size_t streams : {size_t{1}, size_t{2}, size_t{4}}) {
    ServingLoopOptions options = fixture.LoopOptions();
    options.num_streams = streams;
    options.verify_identity = true;
    auto engine = fixture.MakeEngine();
    ServingRunResult result = RunServingExperiment(
        engine.get(), fixture.world, fixture.truth, options);

    EXPECT_GT(result.stream_queries, 0u) << streams << " streams";
    EXPECT_GT(result.identity_replayed, 0u) << streams << " streams";
    EXPECT_EQ(result.identity_verified, result.identity_replayed)
        << streams << " streams";
    EXPECT_TRUE(result.identity_ok());
    // One epoch per episode boundary plus epoch 0.
    EXPECT_EQ(result.serving.epochs_published,
              static_cast<uint64_t>(result.experiment.episodes) + 1);
    EXPECT_GE(result.serving.max_concurrent_readers, 1u);
    EXPECT_GT(result.serving.queries_served, 0u);
  }
}

// The per-episode series surfaces the serving counters (satellite of the
// eval::report CSV columns).
TEST(ServingLoopTest, EpisodeStatsCarryServingCounters) {
  LoopFixture fixture;
  ServingLoopOptions options = fixture.LoopOptions();
  options.num_streams = 2;
  options.verify_identity = false;
  auto engine = fixture.MakeEngine();
  ServingRunResult result = RunServingExperiment(engine.get(), fixture.world,
                                                 fixture.truth, options);

  ASSERT_GE(result.experiment.series.size(), 2u);
  for (size_t i = 1; i < result.experiment.series.size(); ++i) {
    const core::EpisodeStats& stats = result.experiment.series[i].stats;
    // Episode i closes with epoch i published on top of epoch 0.
    EXPECT_EQ(stats.epochs_published, i + 1);
  }
  // Without retention, every superseded epoch retires once streams drain.
  EXPECT_EQ(result.serving.snapshots_retired,
            result.serving.epochs_published - 1);
}

// Crowd votes riding on stream traffic: readers cast noisy votes on the
// provenance links of every answer they serve; the learner drains one
// verdict batch per epoch boundary. Epoch-pinned answer identity must
// survive the extra (timing-dependent) feedback source.
TEST(ServingLoopTest, StreamVotesFlowThroughAggregatorIntoTheLearner) {
  LoopFixture fixture;
  ServingLoopOptions options = fixture.LoopOptions();
  options.num_streams = 2;
  options.verify_identity = true;
  options.votes_per_answer_link = 3;
  options.vote_error_rate = 0.1;
  options.aggregator.quorum = 3;
  auto engine = fixture.MakeEngine();
  ServingRunResult result = RunServingExperiment(engine.get(), fixture.world,
                                                 fixture.truth, options);

  // The streams served traffic; every answer with provenance links votes.
  EXPECT_GT(result.stream_queries, 0u);
  EXPECT_GT(result.stream_votes, 0u);
  // Identity of pinned-epoch replays is independent of the vote pipeline.
  EXPECT_GT(result.identity_replayed, 0u);
  EXPECT_TRUE(result.identity_ok());
  // Cumulative aggregator counters surface in the final episode's stats.
  const core::EpisodeStats& last = result.experiment.series.back().stats;
  EXPECT_EQ(result.crowd_verdicts, last.verdicts_emitted);
  EXPECT_LE(last.verdicts_emitted * 3, last.votes_recorded);
}

}  // namespace
}  // namespace alex::serving
