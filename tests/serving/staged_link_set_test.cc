#include "serving/staged_link_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "federation/link_set.h"
#include "linking/link.h"

namespace alex::serving {
namespace {

using linking::Link;

std::string L(int i) { return "http://left/" + std::to_string(i); }
std::string R(int i) { return "http://right/" + std::to_string(i); }

// A view must answer byte-identically to a LinkSet materialized from the
// same membership — including neighbor order.
void ExpectSameAnswers(const fed::LinkView& view, const fed::LinkSet& expect,
                       int iris) {
  for (int i = 0; i < iris; ++i) {
    EXPECT_EQ(view.RightsOf(L(i)), expect.RightsOf(L(i))) << "left " << i;
    EXPECT_EQ(view.LeftsOf(R(i)), expect.LeftsOf(R(i))) << "right " << i;
    for (int j = 0; j < iris; ++j) {
      EXPECT_EQ(view.Contains(L(i), R(j)), expect.Contains(L(i), R(j)));
    }
  }
}

TEST(StagedLinkSetTest, OverlayMatchesMaterializedUnderRandomChurn) {
  constexpr int kIris = 12;
  Rng rng(7);
  StagedLinkSet staged;
  fed::LinkSet expect;

  // Seed epoch 0 and force the base to materialize it (fraction 0).
  for (int i = 0; i < kIris; ++i) {
    Link link{L(i), R(i), 1.0};
    staged.Stage(link, true);
    expect.Add(link);
  }
  std::shared_ptr<const fed::LinkView> epoch0 = staged.Publish(0.0);
  ExpectSameAnswers(*epoch0, expect, kIris);

  // Random churn, published as overlays (huge fraction: never compact).
  for (int round = 0; round < 5; ++round) {
    for (int step = 0; step < 8; ++step) {
      Link link{L(static_cast<int>(rng.NextBounded(kIris))),
                R(static_cast<int>(rng.NextBounded(kIris))), 1.0};
      bool add = rng.NextBool(0.5);
      staged.Stage(link, add);
      if (add) {
        expect.Add(link);
      } else {
        expect.Remove(link.left, link.right);
      }
    }
    std::shared_ptr<const fed::LinkView> view = staged.Publish(1e18);
    ExpectSameAnswers(*view, expect, kIris);
  }
  EXPECT_EQ(staged.merges(), 1u);  // only the epoch-0 publish compacted
  EXPECT_EQ(staged.size(), expect.size());
}

TEST(StagedLinkSetTest, PublishedViewsAreImmutableUnderLaterStaging) {
  StagedLinkSet staged;
  staged.Stage(Link{L(1), R(1), 1.0}, true);
  std::shared_ptr<const fed::LinkView> epoch0 = staged.Publish();

  staged.Stage(Link{L(1), R(1), 1.0}, false);
  staged.Stage(Link{L(2), R(2), 1.0}, true);
  std::shared_ptr<const fed::LinkView> epoch1 = staged.Publish(1e18);

  // Epoch 0 still answers its own state; epoch 1 the new one.
  EXPECT_TRUE(epoch0->Contains(L(1), R(1)));
  EXPECT_FALSE(epoch0->Contains(L(2), R(2)));
  EXPECT_FALSE(epoch1->Contains(L(1), R(1)));
  EXPECT_TRUE(epoch1->Contains(L(2), R(2)));
  EXPECT_EQ(epoch0->RightsOf(L(1)), std::vector<std::string>{R(1)});
  EXPECT_TRUE(epoch1->RightsOf(L(1)).empty());
}

TEST(StagedLinkSetTest, CompactionPreservesContentAndCounts) {
  StagedLinkSet staged;
  fed::LinkSet expect;
  for (int i = 0; i < 10; ++i) {
    staged.Stage(Link{L(i), R(i), 1.0}, true);
    expect.Add(Link{L(i), R(i), 1.0});
  }
  (void)staged.Publish(0.0);  // compact epoch 0
  ASSERT_EQ(staged.merges(), 1u);

  staged.Stage(Link{L(0), R(0), 1.0}, false);
  expect.Remove(L(0), R(0));
  staged.Stage(Link{L(3), R(7), 1.0}, true);
  expect.Add(Link{L(3), R(7), 1.0});
  std::shared_ptr<const fed::LinkView> compacted = staged.Publish(0.0);
  EXPECT_EQ(staged.merges(), 2u);
  EXPECT_EQ(staged.pending_adds(), 0u);
  EXPECT_EQ(staged.pending_removes(), 0u);
  ExpectSameAnswers(*compacted, expect, 10);
}

TEST(StagedLinkSetTest, EpochDeltaIsSortedAndClearedByPublish) {
  StagedLinkSet staged;
  staged.Stage(Link{L(3), R(3), 1.0}, true);
  staged.Stage(Link{L(1), R(1), 1.0}, true);
  staged.Stage(Link{L(2), R(2), 1.0}, false);  // remove of absent: net no-op
  std::vector<Link> delta = staged.TakeEpochDelta();
  ASSERT_EQ(delta.size(), 3u);  // every touched pair reported once
  EXPECT_TRUE(std::is_sorted(delta.begin(), delta.end()));
  EXPECT_TRUE(staged.TakeEpochDelta().empty());

  staged.Stage(Link{L(9), R(9), 1.0}, true);
  (void)staged.Publish();
  // Publish clears the pending epoch delta too.
  EXPECT_TRUE(staged.TakeEpochDelta().empty());
}

TEST(StagedLinkSetTest, AddThenRemoveWithinEpochCancels) {
  StagedLinkSet staged;
  staged.Stage(Link{L(5), R(5), 1.0}, true);
  staged.Stage(Link{L(5), R(5), 1.0}, false);
  EXPECT_EQ(staged.pending_adds(), 0u);
  EXPECT_EQ(staged.pending_removes(), 0u);
  std::shared_ptr<const fed::LinkView> view = staged.Publish(1e18);
  EXPECT_FALSE(view->Contains(L(5), R(5)));
  EXPECT_EQ(staged.size(), 0u);
}

TEST(StagedLinkSetTest, ViewOutlivesStagedSet) {
  std::shared_ptr<const fed::LinkView> view;
  {
    StagedLinkSet staged;
    staged.Stage(Link{L(1), R(1), 1.0}, true);
    view = staged.Publish(1e18);  // overlay holds the base alive
  }
  EXPECT_TRUE(view->Contains(L(1), R(1)));
}

}  // namespace
}  // namespace alex::serving
