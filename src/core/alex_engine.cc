#include "core/alex_engine.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace alex::core {

PartitionAlex::PartitionAlex(FeatureSpace space, const AlexOptions* options,
                             uint64_t seed)
    : space_(std::move(space)),
      options_(options),
      policy_(options->epsilon),
      rng_(seed) {}

double PartitionAlex::TopFeatureScore(PairId pair) const {
  double best = 0.0;
  for (const auto& [feature, score] : space_.pair(pair).features.features) {
    best = std::max(best, score);
  }
  return best;
}

PartitionAlex::FeedbackOutcome PartitionAlex::ProcessFeedback(PairId pair,
                                                              bool positive) {
  FeedbackOutcome outcome;
  const double reward =
      positive ? options_->positive_reward : options_->negative_reward;
  // Fold the item into the pair's uncertainty tally (prioritized sampling
  // only; no-op for unregistered pairs).
  if (options_->prioritized_sampling) {
    sampler_.RecordFeedback(pair, positive);
  }

  // First-visit Monte Carlo: the first feedback on a link within an episode
  // contributes the reward to every state-action pair that led to it.
  if (learner_.IsFirstVisit(pair)) {
    rollback_.AncestorsOf(pair, &ancestors_scratch_);
    for (const StateAction& sa : ancestors_scratch_) {
      learner_.AppendReturn(sa, reward);
    }
  }

  if (positive) {
    confirmed_.insert(pair);
    // A positive observation clears earlier (possibly erroneous) negative
    // strikes; see AlexOptions::blacklist_strikes.
    negative_strikes_.erase(pair);
    if (!candidates_.Contains(pair)) return outcome;
    const FeatureSet& actions = space_.pair(pair).features;
    if (actions.empty()) return outcome;
    // Take an action: pick a feature by the current policy and explore the
    // band [score - step, score + step] around the approved link (§4.2).
    // States without a learned policy consult the cross-state feature prior
    // (see AlexOptions::use_feature_prior).
    FeatureId action;
    if (options_->use_feature_prior && !policy_.GreedyAction(pair) &&
        !rng_.NextBool(options_->epsilon)) {
      action = learner_.ArgmaxFeaturePrior(actions);
    } else {
      action = policy_.ChooseAction(pair, actions, &rng_);
    }
    double score = actions.Get(action);
    // Span probe straight into the CSR score arena — no per-probe heap
    // traffic; added_scratch_ reuses its capacity across feedback items.
    // The span covers the explorable frontier as of the last episode
    // boundary (SyncSpaceToCandidates): current candidates are excluded by
    // liveness, and candidates_.Add dedups the links that became candidates
    // mid-episode.
    FeatureSpace::ScoreSpan in_range = space_.PairsInRangeSpan(
        action, score - options_->step_size, score + options_->step_size);
    added_scratch_.clear();
    for (const ScoreEntry& entry : in_range) {
      if (entry.pair == pair) continue;
      if (options_->use_blacklist && blacklist_.count(entry.pair) > 0) {
        continue;  // known-incorrect links are never re-proposed (§6.3)
      }
      if (candidates_.Add(entry.pair)) {
        added_scratch_.push_back(entry.pair);
        SamplerAdd(entry.pair);
      }
    }
    outcome.added = added_scratch_.size();
    rollback_.RecordGeneration(StateAction{pair, action}, added_scratch_);
    return outcome;
  }

  // Negative feedback: remove the incorrect link (§3.2).
  outcome.removed = candidates_.Remove(pair);
  if (outcome.removed) SamplerRemove(pair);
  confirmed_.erase(pair);
  if (options_->use_blacklist &&
      ++negative_strikes_[pair] >= options_->blacklist_strikes) {
    blacklist_.insert(pair);
  }
  if (options_->use_rollback) {
    for (const StateAction& sa :
         rollback_.AddNegative(pair, options_->rollback_threshold)) {
      ++outcome.rollbacks;
      for (PairId generated : rollback_.TakeGenerated(sa)) {
        if (generated == pair) continue;
        // Links the user approved are kept; links removed here are NOT
        // blacklisted — they may be correct and rediscoverable (§6.3).
        if (confirmed_.count(generated) > 0) continue;
        if (candidates_.Remove(generated)) {
          ++outcome.rolled_back_links;
          SamplerRemove(generated);
        }
      }
    }
  }
  return outcome;
}

void PartitionAlex::SyncSpaceToCandidates() {
  // Episode-boundary background compaction: fold ingest-grown score entries
  // back into the CSR arena once they outgrow the dirt threshold. Runs
  // before the delta fold (and regardless of candidate churn) so the next
  // episode's span probes walk a compact arena. No-op when nothing grew;
  // physical-only, so the logical fingerprint is unchanged.
  space_.MaybeCompactArena();
  candidates_.SortedEpochDelta(&delta_added_scratch_, &delta_removed_scratch_);
  if (delta_added_scratch_.empty() && delta_removed_scratch_.empty()) return;
  // Polarity flips at this boundary: a link that BECAME a candidate leaves
  // the explorable frontier (space removal), one that was removed returns
  // to it (space addition).
  if (options_->incremental_space_maintenance) {
    space_.ApplyDelta(/*added=*/delta_removed_scratch_,
                      /*removed=*/delta_added_scratch_);
  } else {
    space_.SetLiveness(/*added=*/delta_removed_scratch_,
                       /*removed=*/delta_added_scratch_);
    space_.RebuildIndexes();
  }
}

void PartitionAlex::BeginEpisode() { learner_.BeginEpisode(); }

void PartitionAlex::EndEpisode() {
  // Policy improvement: greedy with respect to the current action-value
  // estimates at every state visited in the episode (Algorithm 1).
  learner_.TakeStatesToImprove(&improve_scratch_);
  for (PairId state : improve_scratch_) {
    const FeatureSet& actions = space_.pair(state).features;
    FeatureId best = learner_.ArgmaxAction(state, actions);
    if (best != kInvalidFeatureId) policy_.SetGreedy(state, best);
  }
}

void PartitionAlex::RunEpisodeItems(size_t items, const FeedbackFn& feedback,
                                    ShardStats* stats) {
  BeginEpisode();
  for (size_t item = 0; item < items; ++item) {
    PairId pair = SampleFeedbackPair();
    if (pair == kInvalidPairId) break;
    linking::Link link;
    link.left = space_.LeftIri(pair);
    link.right = space_.RightIri(pair);
    bool approved = feedback(link);
    ++stats->feedback_items;
    if (approved) {
      ++stats->positive_feedback;
    } else {
      ++stats->negative_feedback;
    }
    FeedbackOutcome outcome = ProcessFeedback(pair, approved);
    stats->links_added += outcome.added;
    if (outcome.removed) ++stats->links_removed;
    stats->rollbacks += outcome.rollbacks;
    stats->links_removed += outcome.rolled_back_links;
    stats->rolled_back_links += outcome.rolled_back_links;
  }
  EndEpisode();
}

PairId PartitionAlex::SampleFeedbackPair() {
  if (candidates_.empty()) return kInvalidPairId;
  if (options_->prioritized_sampling) {
    PairId pair = sampler_.Sample(&rng_);
    // The sampler mirrors every engine-side candidate mutation; the guard
    // only matters if candidates were mutated behind the engine's back.
    if (pair != kInvalidPairId && candidates_.Contains(pair)) return pair;
  }
  return candidates_.Sample(&rng_);
}

AlexEngine::AlexEngine(const rdf::TripleStore* left,
                       const rdf::TripleStore* right, AlexOptions options)
    : left_(left), right_(right), options_(options), rng_(options.seed) {}

Status AlexEngine::Initialize(
    const std::vector<linking::Link>& initial_links,
    std::shared_ptr<const RightContext> prepared_right) {
  if (initialized_) {
    return Status::FailedPrecondition("engine already initialized");
  }
  Stopwatch timer;

  std::vector<rdf::TermId> left_subjects = left_->Subjects();
  std::vector<rdf::TermId> right_subjects = right_->Subjects();
  if (left_subjects.empty() || right_subjects.empty()) {
    return Status::InvalidArgument("both data sets must be non-empty");
  }
  std::vector<std::vector<rdf::TermId>> partitions =
      EqualSizePartition(left_subjects, options_.num_partitions);

  // The pool is engine-owned and outlives Initialize: the same workers that
  // build the feature spaces later run the parallel episode shards.
  int threads = options_.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);

  // Prepare the right data set ONCE — preprocessed entities plus the
  // blocking index — and share it across every partition (the seed
  // re-prepared all right entities per partition). A caller that runs many
  // engines over one right store can hand in the prepared context instead.
  std::shared_ptr<const RightContext> right_context =
      std::move(prepared_right);
  if (right_context != nullptr) {
    if (right_context->entities.size() != right_subjects.size()) {
      return Status::InvalidArgument(
          "prepared right context does not match the right store");
    }
    owns_right_context_ = false;
  } else {
    right_context = RightContext::Prepare(*right_, right_subjects,
                                          options_.space, pool_.get());
    owns_right_context_ = true;
  }
  right_context_ = right_context;

  // Live-ingest baseline: record the subject/term watermarks that separate
  // the initialized world from later growth, and (incremental mode with
  // blocking) build the reverse-probe index over the left entities.
  left_term_watermark_ = static_cast<rdf::TermId>(left_->dictionary().size());
  right_term_watermark_ =
      static_cast<rdf::TermId>(right_->dictionary().size());
  left_subject_count_ = left_subjects.size();
  right_subject_count_ = right_subjects.size();
  known_left_triples_ = left_->size();
  known_right_triples_ = right_->size();

  // Partition spaces are built one after another with the left-entity loop
  // of each build sharded across the pool (§6.2), which keeps all workers
  // busy even when partitions are fewer than threads.
  std::vector<FeatureSpace> spaces;
  spaces.reserve(partitions.size());
  for (const std::vector<rdf::TermId>& partition : partitions) {
    spaces.push_back(FeatureSpace::Build(*left_, partition, right_context,
                                         &catalog_, options_.space,
                                         pool_.get()));
  }

  // FeatureIds were interned in whatever order the build's worker threads
  // first saw the keys — a run-to-run accident. Canonicalize them (and
  // everything downstream that is keyed on them, like ε-greedy action
  // order) into a pure function of the data, so episode trajectories are
  // reproducible at any thread count.
  std::vector<FeatureId> old_to_new = catalog_.Canonicalize();
  if (pool_ != nullptr && spaces.size() > 1) {
    for (FeatureSpace& space : spaces) {
      pool_->Schedule([&space, &old_to_new] {
        space.RemapFeatures(old_to_new);
      });
    }
    pool_->Wait();
  } else {
    for (FeatureSpace& space : spaces) space.RemapFeatures(old_to_new);
  }

  partitions_.reserve(spaces.size());
  for (size_t i = 0; i < spaces.size(); ++i) {
    total_pair_count_ += spaces[i].total_pair_count();
    filtered_pair_count_ += spaces[i].pairs().size();
    scored_pair_count_ += spaces[i].scored_pair_count();
    partitions_.emplace_back(std::move(spaces[i]), &options_,
                             rng_.NextUint64());
  }
  for (uint32_t p = 0; p < partitions_.size(); ++p) {
    for (const PreparedEntity& entity :
         partitions_[p].space().left_entities()) {
      partition_by_left_iri_.emplace(entity.iri, p);
    }
  }

  // Seed the candidate links.
  for (const linking::Link& link : initial_links) {
    auto it = partition_by_left_iri_.find(link.left);
    PairId pair = kInvalidPairId;
    uint32_t partition = 0;
    if (it != partition_by_left_iri_.end()) {
      partition = it->second;
      pair = partitions_[partition].space().FindPair(link.left, link.right);
    }
    if (pair != kInvalidPairId) {
      partitions_[partition].AddInitialCandidate(pair);
    } else {
      // Outside every feature space: kept, but cannot be explored around.
      PairId extra_id = static_cast<PairId>(extras_links_.size());
      extras_links_.push_back(link);
      extras_alive_.Add(extra_id);
    }
  }

  MarkCandidateBaseline();
  init_seconds_ = timer.ElapsedSeconds();
  initialized_ = true;
  return Status::Ok();
}

void AlexEngine::MarkCandidateBaseline() {
  for (PartitionAlex& partition : partitions_) {
    partition.SyncSpaceToCandidates();
    partition.mutable_candidates().TakeEpochChanges();
  }
  extras_alive_.TakeEpochChanges();
  prev_candidate_count_ = CandidateCount();
}

Status AlexEngine::IngestTriples(IngestStats* stats_out) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }
  std::vector<rdf::TermId> left_subjects = left_->Subjects();
  std::vector<rdf::TermId> right_subjects = right_->Subjects();
  // Subjects() is TermId-ascending, and every term interned after the
  // previous epoch has an id at or above the watermark — so the new
  // subjects are exactly the suffix, and a changed old-prefix length means
  // some pre-existing subject gained or lost all its triples.
  const size_t left_old = static_cast<size_t>(
      std::lower_bound(left_subjects.begin(), left_subjects.end(),
                       left_term_watermark_) -
      left_subjects.begin());
  const size_t right_old = static_cast<size_t>(
      std::lower_bound(right_subjects.begin(), right_subjects.end(),
                       right_term_watermark_) -
      right_subjects.begin());
  if (left_old != left_subject_count_ || right_old != right_subject_count_) {
    return Status::InvalidArgument(
        "ingest changed pre-existing subjects; engine growth is additive "
        "(new entities only)");
  }
  std::vector<rdf::TermId> new_lefts(left_subjects.begin() + left_old,
                                     left_subjects.end());
  std::vector<rdf::TermId> new_rights(right_subjects.begin() + right_old,
                                      right_subjects.end());

  IngestStats stats;
  stats.triples_ingested = (left_->size() - known_left_triples_) +
                           (right_->size() - known_right_triples_);
  stats.new_left_entities = new_lefts.size();
  stats.new_right_entities = new_rights.size();

  const size_t old_left_count = left_subject_count_;
  const size_t old_right_count = right_subject_count_;
  const size_t num_partitions = partitions_.size();
  const bool rebuild = !options_.incremental_ingest;
  const bool reverse_probe =
      options_.incremental_ingest && options_.space.blocking.enabled;

  // Lazily build the left-side reverse-probe index over the OLD lefts (the
  // prefix below the watermark), in global subject order.
  if (reverse_probe && !left_probe_built_) {
    left_probe_entities_.resize(old_left_count);
    auto prepare_range = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        left_probe_entities_[i] = PrepareEntity(
            *left_, left_subjects[i], options_.space.max_attributes);
      }
    };
    if (pool_ != nullptr && pool_->num_threads() > 1) {
      pool_->ParallelFor(old_left_count, 16, prepare_range);
    } else {
      prepare_range(0, old_left_count);
    }
    // Relaxed gram filter: min_gram_matches is the only asymmetric channel
    // (every other channel's collision relation is symmetric), so relaxing
    // it makes the reverse probe a superset of the forward one.
    BlockingOptions relaxed = options_.space.blocking;
    relaxed.min_gram_matches = 1;
    left_probe_index_ = BlockingIndex::Build(
        left_probe_entities_, relaxed, options_.space.similarity, pool_.get());
    left_probe_built_ = true;
    // Warm the forward probe-key caches too: from here on, every ingest
    // epoch's phase-1 probes reuse cached keys instead of re-extracting.
    for (PartitionAlex& partition : partitions_) {
      partition.PrepareForwardProbes();
    }
  }

  // 1. Extend the shared right context: append the prepared new rights and
  // grow the blocking index over them (sidecar AddRights, or a fresh Build
  // in the rebuild baseline).
  if (!new_rights.empty()) {
    if (!owns_right_context_ || right_context_ == nullptr) {
      return Status::FailedPrecondition(
          "cannot ingest into a caller-shared right context; initialize "
          "without prepared_right");
    }
    // The context was created mutable by RightContext::Prepare and is only
    // shared within this engine; ingest never runs concurrently with
    // episodes, and the mutation is append-only.
    auto* context = const_cast<RightContext*>(right_context_.get());
    for (rdf::TermId subject : new_rights) {
      context->entities.push_back(
          PrepareEntity(*right_, subject, options_.space.max_attributes));
    }
    if (options_.space.blocking.enabled) {
      if (options_.incremental_ingest) {
        context->index.AddRights(context->entities, old_right_count);
      } else {
        context->index =
            BlockingIndex::Build(context->entities, options_.space.blocking,
                                 options_.space.similarity, pool_.get());
      }
    }
  }

  // 2. Reverse probe: every new right probes the left index; the touched
  // lefts are a superset of the old lefts whose forward probe can reach a
  // new right, so only they are re-probed during growth — O(new entities)
  // instead of O(store). The rebuild baseline forward-probes every old
  // left, so a superset violation would surface as a fingerprint mismatch
  // in the ingest-differential suite.
  std::vector<std::vector<uint32_t>> candidate_lefts(num_partitions);
  if (reverse_probe && !new_rights.empty()) {
    ProbeScratch scratch;
    std::vector<uint8_t> hit(old_left_count, 0);
    const std::vector<PreparedEntity>& rights = right_context_->entities;
    for (size_t j = old_right_count; j < rights.size(); ++j) {
      left_probe_index_.Probe(rights[j], &scratch);
      for (uint32_t g : scratch.touched()) hit[g] = 1;
    }
    for (uint32_t g = 0; g < hit.size(); ++g) {
      if (hit[g] == 0) continue;
      // Global subject order is round-robin over the partitions, so global
      // index g sits at within-partition slot g / P of partition g % P.
      candidate_lefts[g % num_partitions].push_back(
          g / static_cast<uint32_t>(num_partitions));
    }
  }

  // 2b. Delta blocking index over only the new rights (globally numbered):
  // phase-1 growth probes hit this tiny table instead of the full index, so
  // a candidate left whose forward probe reaches no new right costs nearly
  // nothing. Shared read-only by every partition's GrowSpace below.
  BlockingIndex delta_index;
  const BlockingIndex* delta = nullptr;
  if (reverse_probe && !new_rights.empty()) {
    delta_index =
        BlockingIndex::Build({}, options_.space.blocking,
                             options_.space.similarity);
    delta_index.AddRights(right_context_->entities, old_right_count);
    delta = &delta_index;
  }

  // 3. Bucket the new left subjects round-robin, continuing the global
  // sequence exactly where EqualSizePartition of the grown store would
  // place them.
  std::vector<std::vector<rdf::TermId>> new_lefts_by_partition(num_partitions);
  for (size_t k = 0; k < new_lefts.size(); ++k) {
    new_lefts_by_partition[(old_left_count + k) % num_partitions].push_back(
        new_lefts[k]);
  }

  // 4. Grow every partition space, serial and in partition order: new
  // PairIds and the catalog's intern order for first-seen feature keys are
  // canonical at any thread count and across maintenance modes.
  std::vector<size_t> lefts_before(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    lefts_before[p] = partitions_[p].space().left_entities().size();
  }
  for (size_t p = 0; p < num_partitions; ++p) {
    const std::vector<uint32_t>* candidates =
        reverse_probe ? &candidate_lefts[p] : nullptr;
    FeatureSpace::GrowthResult grown = partitions_[p].GrowSpace(
        *left_, new_lefts_by_partition[p], candidates, old_right_count,
        &catalog_, rebuild, delta);
    stats.new_pairs += grown.new_pairs;
    stats.overflow_entries += grown.overflow_entries;
  }

  // 5. Register the new lefts: IRI -> partition routing and the reverse-
  // probe index (appended in global subject order).
  for (uint32_t p = 0; p < num_partitions; ++p) {
    const std::vector<PreparedEntity>& entities =
        partitions_[p].space().left_entities();
    for (size_t i = lefts_before[p]; i < entities.size(); ++i) {
      partition_by_left_iri_.emplace(entities[i].iri, p);
    }
  }
  if (left_probe_built_ && !new_lefts.empty()) {
    for (rdf::TermId subject : new_lefts) {
      left_probe_entities_.push_back(
          PrepareEntity(*left_, subject, options_.space.max_attributes));
    }
    left_probe_index_.AddRights(left_probe_entities_, old_left_count);
  }

  // 6. Refresh the preprocessing totals and advance the watermarks.
  total_pair_count_ = 0;
  filtered_pair_count_ = 0;
  scored_pair_count_ = 0;
  for (const PartitionAlex& partition : partitions_) {
    total_pair_count_ += partition.space().total_pair_count();
    filtered_pair_count_ += partition.space().pairs().size();
    scored_pair_count_ += partition.space().scored_pair_count();
  }
  left_term_watermark_ = static_cast<rdf::TermId>(left_->dictionary().size());
  right_term_watermark_ =
      static_cast<rdf::TermId>(right_->dictionary().size());
  left_subject_count_ = left_subjects.size();
  right_subject_count_ = right_subjects.size();
  known_left_triples_ = left_->size();
  known_right_triples_ = right_->size();

  triples_ingested_ += stats.triples_ingested;
  entities_added_ += new_lefts.size() + new_rights.size();
  space_overflow_pairs_ += stats.overflow_entries;
  stats.ingest_epoch = ++ingest_epochs_;
  stats.blocking_merges = BlockingMergeCount();
  if (stats_out != nullptr) *stats_out = stats;
  return Status::Ok();
}

void AlexEngine::ProcessExtras(size_t quota, const FeedbackFn& feedback,
                               EpisodeStats* stats) {
  for (size_t item = 0; item < quota; ++item) {
    if (extras_alive_.empty()) break;
    PairId extra = extras_alive_.Sample(&rng_);
    bool approved = feedback(extras_links_[extra]);
    ++stats->feedback_items;
    if (approved) {
      ++stats->positive_feedback;
    } else {
      ++stats->negative_feedback;
      extras_alive_.Remove(extra);
      ++stats->links_removed;
    }
  }
}

EpisodeStats AlexEngine::RunEpisode(const FeedbackFn& feedback) {
  ALEX_CHECK(initialized_) << "call Initialize() first";
  Stopwatch episode_timer;
  EpisodeStats stats;
  stats.episode = ++episodes_run_;

  // Allocate each shard's feedback quota up front: episode_size multinomial
  // draws from the engine RNG, weighted by the episode-START candidate
  // counts (partitions first, spaceless extras last). After this, each
  // shard's work is a pure function of its own state and RNG stream, so
  // shards can run concurrently — and the serial path, which runs the same
  // per-shard code in partition order, produces bitwise-identical results.
  // Within its quota a partition still samples LIVE from its own evolving
  // candidate set, preserving the paper's uniform-over-candidates feedback
  // model within each shard.
  std::vector<size_t> sizes(partitions_.size() + 1, 0);
  for (size_t p = 0; p < partitions_.size(); ++p) {
    sizes[p] = partitions_[p].candidates().size();
  }
  sizes.back() = extras_alive_.size();
  size_t total = 0;
  for (size_t size : sizes) total += size;
  std::vector<size_t> quota(sizes.size(), 0);
  if (total > 0) {
    for (size_t item = 0; item < options_.episode_size; ++item) {
      uint64_t r = rng_.NextBounded(total);
      for (size_t s = 0; s < sizes.size(); ++s) {
        if (r < sizes[s]) {
          ++quota[s];
          break;
        }
        r -= sizes[s];
      }
    }
  }

  std::vector<PartitionAlex::ShardStats> shard(partitions_.size());
  std::vector<double> partition_seconds(partitions_.size(), 0.0);
  auto run_partition = [&](size_t p) {
    Stopwatch partition_timer;
    partitions_[p].RunEpisodeItems(quota[p], feedback, &shard[p]);
    partition_seconds[p] = partition_timer.ElapsedSeconds();
  };

  if (pool_ != nullptr && partitions_.size() > 1) {
    for (size_t p = 0; p < partitions_.size(); ++p) {
      pool_->Schedule([&run_partition, p] { run_partition(p); });
    }
    // Extras have no partition; process them on this thread while the
    // partition shards run.
    ProcessExtras(quota.back(), feedback, &stats);
    pool_->Wait();
  } else {
    for (size_t p = 0; p < partitions_.size(); ++p) run_partition(p);
    ProcessExtras(quota.back(), feedback, &stats);
  }

  // Deterministic partition-ordered merge of the shard stats.
  for (const PartitionAlex::ShardStats& s : shard) {
    stats.feedback_items += s.feedback_items;
    stats.positive_feedback += s.positive_feedback;
    stats.negative_feedback += s.negative_feedback;
    stats.links_added += s.links_added;
    stats.links_removed += s.links_removed;
    stats.rollbacks += s.rollbacks;
    stats.rolled_back_links += s.rolled_back_links;
  }

  // Walk the net membership deltas (partitions in order, then extras)
  // through the link-change observer, fold the same deltas into each
  // partition's feature-space frontier (main thread, ascending-PairId
  // order — identical physical index state at any thread count), then fold
  // them into change_fraction. The candidate sets tracked their own net
  // changes during the episode, so the symmetric difference with the
  // episode-start state is a counter read, not a rebuild-sort-diff over
  // every candidate.
  size_t changed = 0;
  for (PartitionAlex& partition : partitions_) {
    if (link_observer_) {
      const FeatureSpace& space = partition.space();
      for (const auto& [pair, net] : partition.candidates().epoch_delta()) {
        link_observer_({space.LeftIri(pair), space.RightIri(pair)}, net > 0);
      }
    }
    partition.SyncSpaceToCandidates();
    changed += partition.mutable_candidates().TakeEpochChanges();
  }
  if (link_observer_) {
    for (const auto& [extra, net] : extras_alive_.epoch_delta()) {
      link_observer_(extras_links_[extra], net > 0);
    }
  }
  changed += extras_alive_.TakeEpochChanges();
  stats.change_fraction =
      static_cast<double>(changed) /
      static_cast<double>(std::max<size_t>(1, prev_candidate_count_));
  prev_candidate_count_ = CandidateCount();
  stats.candidate_count = CandidateCount();
  // Cumulative live-ingest accounting (zero for engines never driven
  // through IngestTriples).
  stats.triples_ingested = triples_ingested_;
  stats.entities_added = entities_added_;
  stats.blocking_merges = static_cast<size_t>(BlockingMergeCount());
  stats.space_overflow_pairs = space_overflow_pairs_;
  stats.ingest_epochs = ingest_epochs_;
  stats.seconds = episode_timer.ElapsedSeconds();
  double sum = 0.0;
  for (double s : partition_seconds) {
    sum += s;
    stats.max_partition_seconds = std::max(stats.max_partition_seconds, s);
  }
  stats.avg_partition_seconds =
      partition_seconds.empty() ? 0.0 : sum / partition_seconds.size();
  return stats;
}

AlexEngine::RunResult AlexEngine::Run(
    const FeedbackFn& feedback,
    const std::function<void(const EpisodeStats&)>& on_episode) {
  RunResult result;
  for (int episode = 0; episode < options_.max_episodes; ++episode) {
    EpisodeStats stats = RunEpisode(feedback);
    ++result.episodes;
    if (on_episode) on_episode(stats);
    result.history.push_back(stats);
    if (result.relaxed_episode < 0 &&
        stats.change_fraction < options_.relaxed_change_fraction) {
      result.relaxed_episode = stats.episode;
    }
    if (stats.change_fraction == 0.0) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<linking::Link> AlexEngine::CandidateLinks() const {
  std::vector<linking::Link> links;
  links.reserve(CandidateCount());
  for (const PartitionAlex& partition : partitions_) {
    const FeatureSpace& space = partition.space();
    for (PairId pair : partition.candidates().items()) {
      linking::Link link;
      link.left = space.LeftIri(pair);
      link.right = space.RightIri(pair);
      links.push_back(std::move(link));
    }
  }
  for (PairId extra : extras_alive_.items()) {
    links.push_back(extras_links_[extra]);
  }
  return links;
}

size_t AlexEngine::CandidateCount() const {
  size_t total = extras_alive_.size();
  for (const PartitionAlex& partition : partitions_) {
    total += partition.candidates().size();
  }
  return total;
}

std::vector<AlexEngine::FeatureUsage> AlexEngine::FeatureUsageSummary()
    const {
  struct Accumulated {
    size_t greedy = 0;
    double sum = 0.0;
    uint64_t count = 0;
  };
  std::unordered_map<FeatureId, Accumulated> by_feature;
  for (const PartitionAlex& partition : partitions_) {
    for (const auto& [state, action] : partition.policy().greedy_map()) {
      ++by_feature[action].greedy;
    }
    for (const auto& [feature, prior] :
         partition.learner().FeaturePriors()) {
      Accumulated& acc = by_feature[feature];
      acc.sum += prior.first * static_cast<double>(prior.second);
      acc.count += prior.second;
    }
  }
  std::vector<FeatureUsage> out;
  out.reserve(by_feature.size());
  for (const auto& [feature, acc] : by_feature) {
    FeatureUsage usage;
    usage.key = catalog_.Key(feature);
    usage.greedy_states = acc.greedy;
    usage.return_samples = acc.count;
    usage.average_return =
        acc.count == 0 ? 0.0 : acc.sum / static_cast<double>(acc.count);
    out.push_back(std::move(usage));
  }
  std::sort(out.begin(), out.end(),
            [](const FeatureUsage& a, const FeatureUsage& b) {
              if (a.greedy_states != b.greedy_states) {
                return a.greedy_states > b.greedy_states;
              }
              return a.return_samples > b.return_samples;
            });
  return out;
}

void AlexEngine::SampleFeedbackLinks(size_t count,
                                     std::vector<linking::Link>* out) {
  ALEX_CHECK(initialized_) << "call Initialize() first";
  // RunEpisode's quota schedule: count multinomial draws from the engine
  // RNG, weighted by current candidate counts, partitions first and the
  // spaceless extras last.
  std::vector<size_t> sizes(partitions_.size() + 1, 0);
  for (size_t p = 0; p < partitions_.size(); ++p) {
    sizes[p] = partitions_[p].candidates().size();
  }
  sizes.back() = extras_alive_.size();
  size_t total = 0;
  for (size_t size : sizes) total += size;
  if (total == 0) return;
  std::vector<size_t> quota(sizes.size(), 0);
  for (size_t item = 0; item < count; ++item) {
    uint64_t r = rng_.NextBounded(total);
    for (size_t s = 0; s < sizes.size(); ++s) {
      if (r < sizes[s]) {
        ++quota[s];
        break;
      }
      r -= sizes[s];
    }
  }
  // Links are drawn DISTINCT within one call (rejection with a bounded
  // attempt budget): an epoch's judgment sample is a set of links handed to
  // the user population, and duplicates would only burn vote budget past
  // the quorum. Partitions own disjoint pair spaces, so per-partition
  // dedup is global dedup.
  std::unordered_set<PairId> seen;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    PartitionAlex& partition = partitions_[p];
    const FeatureSpace& space = partition.space();
    seen.clear();
    size_t attempts = 0;
    const size_t max_attempts = quota[p] * 8 + 16;
    while (seen.size() < quota[p] && attempts < max_attempts) {
      ++attempts;
      PairId pair = partition.SampleFeedbackPair();
      if (pair == kInvalidPairId) break;
      if (!seen.insert(pair).second) continue;
      out->push_back({space.LeftIri(pair), space.RightIri(pair)});
    }
  }
  seen.clear();
  size_t attempts = 0;
  const size_t max_attempts = quota.back() * 8 + 16;
  while (seen.size() < quota.back() && attempts < max_attempts) {
    ++attempts;
    if (extras_alive_.empty()) break;
    PairId extra = extras_alive_.Sample(&rng_);
    if (!seen.insert(extra).second) continue;
    out->push_back(extras_links_[extra]);
  }
}

void AlexEngine::ApplyLinkFeedback(const linking::Link& link, bool positive) {
  auto it = partition_by_left_iri_.find(link.left);
  if (it != partition_by_left_iri_.end()) {
    PartitionAlex& partition = partitions_[it->second];
    PairId pair = partition.space().FindPair(link.left, link.right);
    if (pair != kInvalidPairId && partition.candidates().Contains(pair)) {
      partition.ProcessFeedback(pair, positive);
      return;
    }
  }
  // Spaceless extras: negative feedback removes them.
  if (!positive) {
    for (PairId extra : extras_alive_.items()) {
      if (extras_links_[extra] == link) {
        extras_alive_.Remove(extra);
        return;
      }
    }
  }
}

void AlexEngine::ReplaceCandidates(
    const std::vector<linking::Link>& links) {
  for (PartitionAlex& partition : partitions_) partition.ClearCandidates();
  extras_links_.clear();
  extras_alive_ = CandidateSet();
  for (const linking::Link& link : links) {
    auto it = partition_by_left_iri_.find(link.left);
    PairId pair = kInvalidPairId;
    uint32_t partition = 0;
    if (it != partition_by_left_iri_.end()) {
      partition = it->second;
      pair = partitions_[partition].space().FindPair(link.left, link.right);
    }
    if (pair != kInvalidPairId) {
      partitions_[partition].AddInitialCandidate(pair);
    } else {
      PairId extra_id = static_cast<PairId>(extras_links_.size());
      extras_links_.push_back(link);
      extras_alive_.Add(extra_id);
    }
  }
  MarkCandidateBaseline();
}

namespace {

// Locates the (partition, pair) of a link; false if outside every space.
bool FindPartitionPair(
    const std::vector<PartitionAlex>& partitions,
    const std::unordered_map<std::string, uint32_t>& by_left_iri,
    const linking::Link& link, uint32_t* partition, PairId* pair) {
  auto it = by_left_iri.find(link.left);
  if (it == by_left_iri.end()) return false;
  *partition = it->second;
  *pair = partitions[*partition].space().FindPair(link.left, link.right);
  return *pair != kInvalidPairId;
}

}  // namespace

void AlexEngine::RestoreBlacklistEntry(const linking::Link& link) {
  uint32_t partition = 0;
  PairId pair = kInvalidPairId;
  if (FindPartitionPair(partitions_, partition_by_left_iri_, link,
                        &partition, &pair)) {
    partitions_[partition].RestoreBlacklistEntry(pair);
  }
}

void AlexEngine::RestorePolicyEntry(const linking::Link& state,
                                    const FeatureKey& action) {
  uint32_t partition = 0;
  PairId pair = kInvalidPairId;
  if (FindPartitionPair(partitions_, partition_by_left_iri_, state,
                        &partition, &pair)) {
    partitions_[partition].RestorePolicyEntry(pair, catalog_.Intern(action));
  }
}

void AlexEngine::RestoreReturnEntry(const linking::Link& state,
                                    const FeatureKey& action, double sum,
                                    uint64_t count) {
  uint32_t partition = 0;
  PairId pair = kInvalidPairId;
  if (FindPartitionPair(partitions_, partition_by_left_iri_, state,
                        &partition, &pair)) {
    partitions_[partition].RestoreReturnEntry(
        StateAction{pair, catalog_.Intern(action)}, sum, count);
  }
}

void AlexEngine::BeginExternalEpisode() {
  for (PartitionAlex& partition : partitions_) partition.BeginEpisode();
}

size_t AlexEngine::EndExternalEpisode() {
  for (PartitionAlex& partition : partitions_) partition.EndEpisode();
  // Same delta walk as RunEpisode: notify the observer of every net
  // membership change, sync each partition's frontier index, all in
  // deterministic partition order, and consume the epoch counters.
  size_t changed = 0;
  for (PartitionAlex& partition : partitions_) {
    if (link_observer_) {
      const FeatureSpace& space = partition.space();
      for (const auto& [pair, net] : partition.candidates().epoch_delta()) {
        link_observer_({space.LeftIri(pair), space.RightIri(pair)}, net > 0);
      }
    }
    partition.SyncSpaceToCandidates();
    changed += partition.mutable_candidates().TakeEpochChanges();
  }
  if (link_observer_) {
    for (const auto& [extra, net] : extras_alive_.epoch_delta()) {
      link_observer_(extras_links_[extra], net > 0);
    }
  }
  changed += extras_alive_.TakeEpochChanges();
  return changed;
}

}  // namespace alex::core
