// Persistence of an engine's *learned* state across sessions.
//
// Pre-processing (feature-space construction) is deterministic from the
// data, but everything learned from feedback — the candidate link set, the
// blacklist, the greedy policy, and the Monte-Carlo return estimates — is
// expensive to re-acquire (it cost real user feedback). EngineState
// captures exactly that learned state in a data-independent form (IRIs and
// predicate names, not internal ids), so a session can be saved, the
// process restarted, the engine re-initialized from the same stores, and
// learning resumed where it stopped.
//
// Not persisted: the rollback log's generation provenance (session-local
// bookkeeping; rollbacks only make sense for actions taken in the current
// session) and the per-episode first-visit marks.
//
// Serialization is a line-oriented text format with one section per
// component:
//   #candidates\n left<TAB>right
//   #blacklist\n  left<TAB>right
//   #policy\n     left<TAB>right<TAB>feature_left<TAB>feature_right
//   #returns\n    left<TAB>right<TAB>feature_left<TAB>feature_right
//                 <TAB>sum<TAB>count
#ifndef ALEX_CORE_ENGINE_STATE_H_
#define ALEX_CORE_ENGINE_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/feature_set.h"
#include "linking/link.h"

namespace alex::core {

class AlexEngine;

struct EngineState {
  struct PolicyEntry {
    linking::Link state;  // the link acting as the RL state
    FeatureKey action;    // its greedy feature
  };
  struct ReturnEntry {
    linking::Link state;
    FeatureKey action;
    double sum = 0.0;
    uint64_t count = 0;
  };

  std::vector<linking::Link> candidates;
  std::vector<linking::Link> blacklist;
  std::vector<PolicyEntry> policy;
  std::vector<ReturnEntry> returns;
};

// Captures the learned state of an initialized engine.
EngineState ExportEngineState(const AlexEngine& engine);

// Applies `state` to a freshly Initialize()d engine over the same data.
// The engine's current candidates are REPLACED by the saved ones; entries
// referring to entity pairs outside the engine's feature spaces are kept as
// spaceless candidates (candidates section) or skipped (policy/returns).
// Each partition's explorable-frontier index is reset to the imported
// candidate set (full liveness reset + rebuild — the per-pair delta trail
// does not survive a replace), so FeatureSpace::Fingerprint() after an
// import equals the fingerprint of an engine that acquired the same
// candidates through episodes.
Status ImportEngineState(const EngineState& state, AlexEngine* engine);

// Text serialization (format in the file comment).
std::string WriteEngineState(const EngineState& state);
Result<EngineState> ParseEngineState(std::string_view text);
Status SaveEngineState(const EngineState& state, const std::string& path);
Result<EngineState> LoadEngineState(const std::string& path);

}  // namespace alex::core

#endif  // ALEX_CORE_ENGINE_STATE_H_
