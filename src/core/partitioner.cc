#include "core/partitioner.h"

namespace alex::core {

std::vector<std::vector<rdf::TermId>> EqualSizePartition(
    const std::vector<rdf::TermId>& subjects, int num_partitions) {
  if (num_partitions < 1) num_partitions = 1;
  std::vector<std::vector<rdf::TermId>> partitions(num_partitions);
  for (auto& partition : partitions) {
    partition.reserve(subjects.size() / num_partitions + 1);
  }
  for (size_t i = 0; i < subjects.size(); ++i) {
    partitions[i % num_partitions].push_back(subjects[i]);
  }
  return partitions;
}

}  // namespace alex::core
