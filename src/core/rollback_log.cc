#include "core/rollback_log.h"

#include <deque>
#include <unordered_set>

namespace alex::core {

void RollbackLog::RecordGeneration(const StateAction& sa,
                                   const std::vector<PairId>& pairs) {
  if (pairs.empty()) return;
  std::vector<PairId>& generated = generated_by_[sa];
  generated.insert(generated.end(), pairs.begin(), pairs.end());
  for (PairId pair : pairs) parents_[pair].push_back(sa);
}

const std::vector<StateAction>& RollbackLog::ParentsOf(PairId pair) const {
  auto it = parents_.find(pair);
  if (it == parents_.end()) return empty_;
  return it->second;
}

std::vector<StateAction> RollbackLog::AncestorsOf(PairId pair) const {
  std::vector<StateAction> out;
  AncestorsOf(pair, &out);
  return out;
}

void RollbackLog::AncestorsOf(PairId pair,
                              std::vector<StateAction>* out) const {
  out->clear();
  std::unordered_set<StateAction, StateActionHash> seen;
  std::unordered_set<PairId> visited_states;
  std::deque<PairId> frontier;
  frontier.push_back(pair);
  visited_states.insert(pair);
  while (!frontier.empty()) {
    PairId current = frontier.front();
    frontier.pop_front();
    for (const StateAction& sa : ParentsOf(current)) {
      if (seen.insert(sa).second) out->push_back(sa);
      if (visited_states.insert(sa.state).second) {
        frontier.push_back(sa.state);
      }
    }
  }
}

std::vector<StateAction> RollbackLog::AddNegative(PairId pair,
                                                  int threshold) {
  std::vector<StateAction> fired;
  for (const StateAction& sa : ParentsOf(pair)) {
    int& count = negative_counts_[sa];
    ++count;
    if (count >= threshold) {
      count = 0;
      fired.push_back(sa);
    }
  }
  return fired;
}

std::vector<PairId> RollbackLog::TakeGenerated(const StateAction& sa) {
  auto it = generated_by_.find(sa);
  if (it == generated_by_.end()) return {};
  std::vector<PairId> out = std::move(it->second);
  generated_by_.erase(it);
  // Remove `sa` from the parent lists of the pairs it generated so that
  // future negative feedback is not attributed to a generator that has
  // already been rolled back.
  for (PairId pair : out) {
    auto pit = parents_.find(pair);
    if (pit == parents_.end()) continue;
    std::vector<StateAction>& list = pit->second;
    for (size_t i = 0; i < list.size();) {
      if (list[i] == sa) {
        list[i] = list.back();
        list.pop_back();
      } else {
        ++i;
      }
    }
    if (list.empty()) parents_.erase(pit);
  }
  return out;
}

}  // namespace alex::core
