// Prioritized (uncertainty-weighted) feedback sampling.
//
// The paper's experiments draw feedback links uniformly from the candidate
// set (§7.1), which wastes most of a large user population's votes on links
// the learner is already sure about. Following the feature-ranking /
// quality-weighting direction of Ruback et al. (PAPERS.md), this sampler
// draws candidates in proportion to an uncertainty weight
//
//   weight(pair) = max(min_weight, entropy(tally) * proximity(score, θ))
//
//   entropy:   binary entropy of the pair's positive/negative feedback
//              tally — 1.0 for never-judged pairs, 0 for unanimous ones.
//   proximity: how close the pair's best feature score sits to the
//              exploration boundary θ — 1.0 at the boundary (the most
//              ambiguous links), falling linearly to 0 at score 1.0
//              (near-certain duplicates).
//
// A uniform-mix floor keeps every candidate reachable: with probability
// `uniform_mix` the draw falls back to a uniform pick over all live pairs,
// so prioritization can never starve a region of the candidate set (and the
// uniform baseline remains a special case: the engine simply bypasses the
// sampler when AlexOptions::prioritized_sampling is off).
//
// Internals: a Fenwick (binary indexed) tree over dense slots holds the
// weights, giving O(log n) insert / remove / reweight and O(log n)
// weighted draws; a parallel dense vector serves the uniform arm in O(1).
// All state is maintained incrementally from the candidate-set mutations
// the engine already performs — no per-episode rebuild. Every operation is
// deterministic given the call sequence, so prioritized runs are exactly
// reproducible from a seed like everything else in ALEX.
#ifndef ALEX_CORE_FEEDBACK_SAMPLER_H_
#define ALEX_CORE_FEEDBACK_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/feature_space.h"

namespace alex::core {

struct FeedbackSamplerOptions {
  // Probability that a draw is uniform over all live pairs instead of
  // weight-proportional (the exploration floor). Clamped to [0, 1].
  double uniform_mix = 0.25;
  // The exploration boundary θ of the feature space; scores at θ get full
  // proximity weight, scores at 1.0 get none.
  double theta = 0.3;
  // Floor on a pair's weight, keeping unanimous / far-from-θ pairs
  // reachable in the weighted arm too.
  double min_weight = 1e-3;
};

class FeedbackSampler {
 public:
  explicit FeedbackSampler(const FeedbackSamplerOptions& options = {});

  // Registers `pair` with its best feature score (the proximity input).
  // No-op if already present. Fresh pairs start at full entropy weight.
  void Add(PairId pair, double top_score);

  // Unregisters `pair`; its tally is forgotten. No-op if absent.
  void Remove(PairId pair);

  // Folds one feedback item on `pair` into its tally and reweights it.
  // No-op if `pair` is not registered.
  void RecordFeedback(PairId pair, bool positive);

  // Draws one pair: uniform with probability uniform_mix, else
  // weight-proportional via the Fenwick tree. Returns kInvalidPairId when
  // empty. Consumes one or two Rng values; deterministic given the
  // mutation + draw history.
  PairId Sample(Rng* rng);

  // Drops all pairs and tallies (candidate-set replacement).
  void Clear();

  bool Contains(PairId pair) const { return slot_of_.count(pair) > 0; }
  size_t size() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

  // Current weight of `pair` (0 if absent). Test/diagnostic accessor.
  double Weight(PairId pair) const;
  double total_weight() const { return total_weight_; }

  // How the mix floor actually split the draws (for the floor-statistics
  // tests): uniform-arm draws include forced fallbacks on degenerate
  // weights, weighted-arm draws are Fenwick descents that landed.
  uint64_t uniform_draws() const { return uniform_draws_; }
  uint64_t weighted_draws() const { return weighted_draws_; }

 private:
  struct SlotState {
    PairId pair = kInvalidPairId;
    double proximity = 0.0;
    uint32_t positive = 0;
    uint32_t negative = 0;
    double weight = 0.0;
  };

  double ComputeWeight(const SlotState& slot) const;
  // Point-update of slot (0-based) to `weight`, via the Fenwick tree.
  void SetSlotWeight(size_t slot, double weight);
  // Rebuilds the tree (and the exact scalar total) from slot weights;
  // called on capacity growth and periodically to cancel float drift.
  void RebuildTree();
  // Fenwick descent: the slot owning cumulative-weight position `r`.
  // Returns slots_.size() when `r` falls past the last weighted slot.
  size_t DescendTree(double r) const;

  FeedbackSamplerOptions options_;
  std::vector<SlotState> slots_;
  // 1-indexed Fenwick tree over capacity_ (a power of two) slots.
  std::vector<double> tree_;
  size_t capacity_ = 0;
  std::unordered_map<PairId, uint32_t> slot_of_;
  std::vector<uint32_t> free_slots_;
  // Dense live list + positions for the O(1) uniform arm (swap-remove).
  std::vector<PairId> live_;
  std::unordered_map<PairId, size_t> live_pos_;
  double total_weight_ = 0.0;
  uint64_t updates_since_rebuild_ = 0;
  uint64_t uniform_draws_ = 0;
  uint64_t weighted_draws_ = 0;
};

}  // namespace alex::core

#endif  // ALEX_CORE_FEEDBACK_SAMPLER_H_
