#include "core/feature_set.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "similarity/string_metrics.h"

namespace alex::core {

FeatureId FeatureCatalog::Intern(const FeatureKey& key) {
  std::string encoded = key.left_predicate + '\x01' + key.right_predicate;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(encoded);
  if (it != index_.end()) return it->second;
  FeatureId id = static_cast<FeatureId>(keys_.size());
  keys_.push_back(key);
  index_.emplace(std::move(encoded), id);
  return id;
}

FeatureKey FeatureCatalog::Key(FeatureId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_[id];
}

size_t FeatureCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.size();
}

std::vector<FeatureId> FeatureCatalog::Canonicalize() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FeatureId> order(keys_.size());
  for (FeatureId id = 0; id < order.size(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [this](FeatureId a, FeatureId b) {
    if (keys_[a].left_predicate != keys_[b].left_predicate) {
      return keys_[a].left_predicate < keys_[b].left_predicate;
    }
    return keys_[a].right_predicate < keys_[b].right_predicate;
  });
  std::vector<FeatureId> old_to_new(keys_.size());
  std::vector<FeatureKey> sorted(keys_.size());
  for (FeatureId new_id = 0; new_id < order.size(); ++new_id) {
    old_to_new[order[new_id]] = new_id;
    sorted[new_id] = std::move(keys_[order[new_id]]);
  }
  keys_ = std::move(sorted);
  for (auto& [encoded, id] : index_) id = old_to_new[id];
  return old_to_new;
}

FeatureId CatalogMemo::Intern(const FeatureKey& key) {
  std::string encoded = key.left_predicate + '\x01' + key.right_predicate;
  auto it = cache_.find(encoded);
  if (it != cache_.end()) return it->second;
  FeatureId id = catalog_->Intern(key);
  cache_.emplace(std::move(encoded), id);
  return id;
}

double FeatureSet::Get(FeatureId id) const {
  auto it = std::lower_bound(
      features.begin(), features.end(), id,
      [](const std::pair<FeatureId, double>& f, FeatureId i) {
        return f.first < i;
      });
  if (it == features.end() || it->first != id) return 0.0;
  return it->second;
}

void FeatureSet::SetMax(FeatureId id, double score) {
  auto it = std::lower_bound(
      features.begin(), features.end(), id,
      [](const std::pair<FeatureId, double>& f, FeatureId i) {
        return f.first < i;
      });
  if (it != features.end() && it->first == id) {
    it->second = std::max(it->second, score);
    return;
  }
  features.insert(it, {id, score});
}

PreparedValue PrepareValue(const rdf::Term& term) {
  PreparedValue v;
  if (term.is_iri()) {
    v.is_iri = true;
    v.lowered = ToLowerAscii(sim::IriLocalName(term.lexical()));
  } else if (term.is_literal()) {
    v.type = term.literal_type();
    v.lowered = ToLowerAscii(term.lexical());
    switch (v.type) {
      case rdf::LiteralType::kInteger:
      case rdf::LiteralType::kDouble:
        v.numeric = term.AsDouble();
        v.has_numeric = true;
        break;
      case rdf::LiteralType::kDate:
        v.date_days = term.AsDateDays();
        break;
      case rdf::LiteralType::kString: {
        double parsed = 0.0;
        if (ParseDouble(v.lowered, &parsed)) {
          v.numeric = parsed;
          v.has_numeric = true;
        }
        break;
      }
      case rdf::LiteralType::kBoolean:
        break;
    }
  } else {
    v.lowered = ToLowerAscii(term.lexical());
  }
  v.tokens = SplitWordsNormalized(v.lowered);
  std::sort(v.tokens.begin(), v.tokens.end());
  v.tokens.erase(std::unique(v.tokens.begin(), v.tokens.end()),
                 v.tokens.end());
  return v;
}

PreparedEntity PrepareEntity(const rdf::TripleStore& store,
                             rdf::TermId subject, size_t max_attributes) {
  PreparedEntity entity;
  entity.subject = subject;
  entity.iri = store.dictionary().term(subject).lexical();
  rdf::Entity raw = rdf::GetEntity(store, subject);
  for (const rdf::Attribute& attr : raw.attributes) {
    if (max_attributes > 0 && entity.attributes.size() >= max_attributes) {
      break;
    }
    PreparedAttribute prepared;
    prepared.predicate = store.dictionary().term(attr.predicate).lexical();
    prepared.value = PrepareValue(store.dictionary().term(attr.object));
    entity.attributes.push_back(std::move(prepared));
  }
  return entity;
}

// Sorted-unique-token Jaccard via merge walk.
double SortedTokenJaccard(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    int cmp = a[i].compare(b[j]);
    if (cmp == 0) {
      ++inter;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

// Levenshtein on pre-lowered strings with reusable buffers. Exact above
// min_interesting; may exit early (returning < min_interesting) below it.
double FastNormalizedLevenshtein(const std::string& a, const std::string& b,
                                 double min_interesting) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return 0.0;
  const size_t longest = std::max(n, m);
  // Bit-identical to sim::NormalizedLevenshtein: 1 - dist / longest (a
  // reciprocal-multiply differs in the last ulp, which the blocked ==
  // exhaustive score-equality tests would notice).
  auto to_similarity = [longest](size_t dist) {
    return 1.0 -
           static_cast<double>(dist) / static_cast<double>(longest);
  };
  // A similarity of min_interesting allows at most k edits; the band below
  // never needs to leave the diagonal corridor of half-width k.
  size_t k = longest;
  if (min_interesting > 0.0) {
    double approx =
        std::floor((1.0 - min_interesting) * static_cast<double>(longest));
    k = approx <= 0.0 ? 0 : static_cast<size_t>(approx);
    if (k > longest) k = longest;
    // The float product can land one off around ties (e.g. (1-0.9)*10 < 1).
    // Pin k to the largest distance whose similarity still compares
    // >= min_interesting in double arithmetic, so boundary scores are
    // computed exactly and every early exit is strictly below the cutoff.
    while (k < longest && to_similarity(k + 1) >= min_interesting) ++k;
    while (k > 0 && to_similarity(k) < min_interesting) --k;
  }
  // Cheap lower bound: the length difference alone is already that many
  // edits, so the similarity can't reach min_interesting.
  const size_t length_diff = n > m ? n - m : m - n;
  if (length_diff > k) {
    return std::max(0.0, to_similarity(length_diff));
  }
  static thread_local std::vector<size_t> prev;
  static thread_local std::vector<size_t> curr;
  prev.resize(m + 1);
  curr.resize(m + 1);
  const size_t kInf = n + m + 1;  // larger than any real distance
  for (size_t j = 0; j <= m; ++j) prev[j] = j <= k ? j : kInf;
  for (size_t i = 1; i <= n; ++i) {
    // Ukkonen band: only cells with |i - j| <= k can end <= k edits.
    const size_t j_lo = i > k ? i - k : 1;
    const size_t j_hi = std::min(m, i + k);
    if (j_lo > j_hi) return 0.0;
    curr[0] = i <= k ? i : kInf;
    if (j_lo > 1) curr[j_lo - 1] = kInf;
    if (j_hi < m) curr[j_hi + 1] = kInf;
    size_t row_min = kInf;
    for (size_t j = j_lo; j <= j_hi; ++j) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost});
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > k) {
      // Every continuation costs > k edits; the true similarity is below
      // min_interesting, and so is this bound.
      return std::max(0.0, to_similarity(row_min));
    }
    std::swap(prev, curr);
  }
  return to_similarity(prev[m]);
}

namespace {

bool IsDate(const PreparedValue& v) {
  return !v.is_iri && v.type == rdf::LiteralType::kDate;
}
bool IsBoolean(const PreparedValue& v) {
  return !v.is_iri && v.type == rdf::LiteralType::kBoolean;
}
bool IsTypedNumeric(const PreparedValue& v) {
  return !v.is_iri && (v.type == rdf::LiteralType::kInteger ||
                       v.type == rdf::LiteralType::kDouble);
}

}  // namespace

double PreparedSimilarity(const PreparedValue& a, const PreparedValue& b,
                          const sim::SimilarityOptions& options,
                          double min_interesting,
                          const SimilarityChannelMask& mask) {
  auto calibrated_string = [&options, min_interesting, &mask](
                               const PreparedValue& x,
                               const PreparedValue& y) {
    // Token Jaccard is cheap; compute it first so the Levenshtein pass can
    // stop as soon as it provably cannot beat max(jaccard, min_interesting).
    double jaccard =
        mask.jaccard ? SortedTokenJaccard(x.tokens, y.tokens) : 0.0;
    if (!mask.levenshtein) return jaccard;
    const double floor = options.string_noise_floor;
    double raw_cutoff = std::max(jaccard, min_interesting);
    if (floor > 0.0) raw_cutoff = floor + raw_cutoff * (1.0 - floor);
    double lev = sim::RescaleAboveFloor(
        FastNormalizedLevenshtein(x.lowered, y.lowered, raw_cutoff), floor);
    return std::max(lev, jaccard);
  };
  if (a.is_iri && b.is_iri) {
    if (mask.equality && a.lowered == b.lowered) return 1.0;
    return calibrated_string(a, b);
  }
  if (!a.is_iri && !b.is_iri) {
    if (IsTypedNumeric(a) && IsTypedNumeric(b)) {
      if (!mask.numeric) return 0.0;
      return sim::NumericSimilarity(a.numeric, b.numeric,
                                    options.numeric_tolerance);
    }
    if (IsDate(a) && IsDate(b)) {
      if (!mask.dates) return 0.0;
      return sim::DateSimilarity(a.date_days, b.date_days,
                                 options.date_scale_days);
    }
    if (IsBoolean(a) && IsBoolean(b)) {
      if (!mask.equality) return 0.0;
      return a.lowered == b.lowered ? 1.0 : 0.0;
    }
    // Mixed numeric/string where both parse as numbers.
    if (a.has_numeric && b.has_numeric &&
        (IsTypedNumeric(a) != IsTypedNumeric(b))) {
      if (!mask.numeric) return 0.0;
      return sim::NumericSimilarity(a.numeric, b.numeric,
                                    options.numeric_tolerance);
    }
    if (IsDate(a) != IsDate(b)) {
      if (!mask.equality) return 0.0;
      return a.lowered == b.lowered ? 1.0 : 0.0;
    }
  }
  // Everything else: fuzzy string comparison of the lowered forms.
  return calibrated_string(a, b);
}

FeatureSet BuildFeatureSet(const PreparedEntity& left,
                           const PreparedEntity& right,
                           FeatureCatalog* catalog, double theta,
                           const sim::SimilarityOptions& options,
                           const SimilarityChannelMask& mask) {
  return BuildFeatureSetWithMasks(left, right, catalog, theta, options,
                                  UniformMaskProvider{mask});
}

FeatureSet BuildFeatureSet(const PreparedEntity& left,
                           const PreparedEntity& right, CatalogMemo* memo,
                           double theta,
                           const sim::SimilarityOptions& options,
                           const SimilarityChannelMask& mask) {
  return BuildFeatureSetWithMasks(left, right, memo, theta, options,
                                  UniformMaskProvider{mask});
}

}  // namespace alex::core
