#include "core/feature_set.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "similarity/string_metrics.h"

namespace alex::core {

FeatureId FeatureCatalog::Intern(const FeatureKey& key) {
  std::string encoded = key.left_predicate + '\x01' + key.right_predicate;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(encoded);
  if (it != index_.end()) return it->second;
  FeatureId id = static_cast<FeatureId>(keys_.size());
  keys_.push_back(key);
  index_.emplace(std::move(encoded), id);
  return id;
}

FeatureKey FeatureCatalog::Key(FeatureId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_[id];
}

size_t FeatureCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.size();
}

double FeatureSet::Get(FeatureId id) const {
  auto it = std::lower_bound(
      features.begin(), features.end(), id,
      [](const std::pair<FeatureId, double>& f, FeatureId i) {
        return f.first < i;
      });
  if (it == features.end() || it->first != id) return 0.0;
  return it->second;
}

void FeatureSet::SetMax(FeatureId id, double score) {
  auto it = std::lower_bound(
      features.begin(), features.end(), id,
      [](const std::pair<FeatureId, double>& f, FeatureId i) {
        return f.first < i;
      });
  if (it != features.end() && it->first == id) {
    it->second = std::max(it->second, score);
    return;
  }
  features.insert(it, {id, score});
}

PreparedValue PrepareValue(const rdf::Term& term) {
  PreparedValue v;
  if (term.is_iri()) {
    v.is_iri = true;
    v.lowered = ToLowerAscii(sim::IriLocalName(term.lexical()));
  } else if (term.is_literal()) {
    v.type = term.literal_type();
    v.lowered = ToLowerAscii(term.lexical());
    switch (v.type) {
      case rdf::LiteralType::kInteger:
      case rdf::LiteralType::kDouble:
        v.numeric = term.AsDouble();
        v.has_numeric = true;
        break;
      case rdf::LiteralType::kDate:
        v.date_days = term.AsDateDays();
        break;
      case rdf::LiteralType::kString: {
        double parsed = 0.0;
        if (ParseDouble(v.lowered, &parsed)) {
          v.numeric = parsed;
          v.has_numeric = true;
        }
        break;
      }
      case rdf::LiteralType::kBoolean:
        break;
    }
  } else {
    v.lowered = ToLowerAscii(term.lexical());
  }
  v.tokens = SplitWordsNormalized(v.lowered);
  std::sort(v.tokens.begin(), v.tokens.end());
  v.tokens.erase(std::unique(v.tokens.begin(), v.tokens.end()),
                 v.tokens.end());
  return v;
}

PreparedEntity PrepareEntity(const rdf::TripleStore& store,
                             rdf::TermId subject, size_t max_attributes) {
  PreparedEntity entity;
  entity.subject = subject;
  entity.iri = store.dictionary().term(subject).lexical();
  rdf::Entity raw = rdf::GetEntity(store, subject);
  for (const rdf::Attribute& attr : raw.attributes) {
    if (max_attributes > 0 && entity.attributes.size() >= max_attributes) {
      break;
    }
    PreparedAttribute prepared;
    prepared.predicate = store.dictionary().term(attr.predicate).lexical();
    prepared.value = PrepareValue(store.dictionary().term(attr.object));
    entity.attributes.push_back(std::move(prepared));
  }
  return entity;
}

namespace {

// Sorted-unique-token Jaccard via merge walk.
double SortedTokenJaccard(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    int cmp = a[i].compare(b[j]);
    if (cmp == 0) {
      ++inter;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

// Levenshtein on pre-lowered strings with reusable buffers.
double FastNormalizedLevenshtein(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return 0.0;
  // Cheap lower bound: length difference alone may already disqualify.
  static thread_local std::vector<size_t> prev;
  static thread_local std::vector<size_t> curr;
  prev.resize(m + 1);
  curr.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, curr);
  }
  return 1.0 -
         static_cast<double>(prev[m]) / static_cast<double>(std::max(n, m));
}

bool IsDate(const PreparedValue& v) {
  return !v.is_iri && v.type == rdf::LiteralType::kDate;
}
bool IsBoolean(const PreparedValue& v) {
  return !v.is_iri && v.type == rdf::LiteralType::kBoolean;
}
bool IsTypedNumeric(const PreparedValue& v) {
  return !v.is_iri && (v.type == rdf::LiteralType::kInteger ||
                       v.type == rdf::LiteralType::kDouble);
}

}  // namespace

double PreparedSimilarity(const PreparedValue& a, const PreparedValue& b,
                          const sim::SimilarityOptions& options) {
  auto calibrated_string = [&options](const PreparedValue& x,
                                      const PreparedValue& y) {
    double lev = sim::RescaleAboveFloor(
        FastNormalizedLevenshtein(x.lowered, y.lowered),
        options.string_noise_floor);
    return std::max(lev, SortedTokenJaccard(x.tokens, y.tokens));
  };
  if (a.is_iri && b.is_iri) {
    if (a.lowered == b.lowered) return 1.0;
    return calibrated_string(a, b);
  }
  if (!a.is_iri && !b.is_iri) {
    if (IsTypedNumeric(a) && IsTypedNumeric(b)) {
      return sim::NumericSimilarity(a.numeric, b.numeric,
                                    options.numeric_tolerance);
    }
    if (IsDate(a) && IsDate(b)) {
      return sim::DateSimilarity(a.date_days, b.date_days,
                                 options.date_scale_days);
    }
    if (IsBoolean(a) && IsBoolean(b)) {
      return a.lowered == b.lowered ? 1.0 : 0.0;
    }
    // Mixed numeric/string where both parse as numbers.
    if (a.has_numeric && b.has_numeric &&
        (IsTypedNumeric(a) != IsTypedNumeric(b))) {
      return sim::NumericSimilarity(a.numeric, b.numeric,
                                    options.numeric_tolerance);
    }
    if (IsDate(a) != IsDate(b)) {
      return a.lowered == b.lowered ? 1.0 : 0.0;
    }
  }
  // Everything else: fuzzy string comparison of the lowered forms.
  return calibrated_string(a, b);
}

FeatureSet BuildFeatureSet(const PreparedEntity& left,
                           const PreparedEntity& right,
                           FeatureCatalog* catalog, double theta,
                           const sim::SimilarityOptions& options) {
  FeatureSet set;
  const size_t n = left.attributes.size();
  const size_t m = right.attributes.size();
  if (n == 0 || m == 0) return set;
  // Row maxima when the left entity has at least as many attributes,
  // column maxima otherwise (§4.1).
  const bool rows_from_left = n >= m;
  const size_t outer = rows_from_left ? n : m;
  const size_t inner = rows_from_left ? m : n;
  for (size_t i = 0; i < outer; ++i) {
    double best = 0.0;
    size_t best_j = 0;
    for (size_t j = 0; j < inner; ++j) {
      const PreparedAttribute& la =
          left.attributes[rows_from_left ? i : j];
      const PreparedAttribute& ra =
          right.attributes[rows_from_left ? j : i];
      double score = PreparedSimilarity(la.value, ra.value, options);
      if (score > best) {
        best = score;
        best_j = j;
      }
    }
    if (best < theta) continue;  // θ-filtering (§6.1)
    const PreparedAttribute& la =
        left.attributes[rows_from_left ? i : best_j];
    const PreparedAttribute& ra =
        right.attributes[rows_from_left ? best_j : i];
    FeatureId id =
        catalog->Intern(FeatureKey{la.predicate, ra.predicate});
    set.SetMax(id, best);
  }
  return set;
}

}  // namespace alex::core
