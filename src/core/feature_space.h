// The pre-processed space of feature sets (paper §3.2: "ALEX explores links
// in a space of feature sets. This space is populated in a pre-processing
// step, with a feature set for every pair of entities in the two data
// sets.").
//
// A FeatureSpace is built for one partition of the left data set against the
// whole right data set (§6.2). Pairs whose feature set is empty after
// θ-filtering are dropped (§6.1), which removes ~95% of the raw cross
// product. Each feature gets a score-sorted index so that an ALEX action —
// "find all links whose value for feature f lies in [v − step, v + step]" —
// is a binary-search range query.
//
// Construction is organized for scale:
//   * The right data set is prepared ONCE into a shared RightContext
//     (preprocessed entities + the inverted blocking index) instead of once
//     per partition.
//   * With blocking enabled (the default), only pairs sharing at least one
//     block key are scored; everything else is provably-or-empirically below
//     θ and skipped (see core/blocking.h). `blocking.enabled = false`
//     restores the paper's literal exhaustive cross product.
//   * When given a ThreadPool, Build shards the left-entity loop across it.
//     Chunks are reassembled in order, so the surviving pairs — and thus
//     PairIds — come out in (left, right) lexicographic order regardless of
//     the thread count.
#ifndef ALEX_CORE_FEATURE_SPACE_H_
#define ALEX_CORE_FEATURE_SPACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/blocking.h"
#include "core/feature_set.h"

namespace alex::core {

// Index of a pair within a FeatureSpace.
using PairId = uint32_t;
inline constexpr PairId kInvalidPairId = 0xffffffffu;

struct EntityPairFeatures {
  uint32_t left_index = 0;   // into FeatureSpace::left_entities()
  uint32_t right_index = 0;  // into FeatureSpace::right_entities()
  FeatureSet features;
};

struct FeatureSpaceOptions {
  // Similarity scores below theta are zeroed (§6.1; default from the paper).
  double theta = 0.3;
  // Cap on attributes considered per entity (0 = unlimited).
  size_t max_attributes = 16;
  sim::SimilarityOptions similarity;
  // Candidate blocking for the pairwise scoring loop (see core/blocking.h).
  BlockingOptions blocking;
};

// The right data set prepared once and shared (immutably) by every
// partition's Build: preprocessed entities plus, when blocking is enabled,
// the inverted block-key index over them.
struct RightContext {
  std::vector<PreparedEntity> entities;
  BlockingIndex index;  // empty when blocking is disabled

  // With a pool, entity preparation and the index build are sharded across
  // its workers; the resulting context is identical to the serial one.
  static std::shared_ptr<const RightContext> Prepare(
      const rdf::TripleStore& right,
      const std::vector<rdf::TermId>& right_subjects,
      const FeatureSpaceOptions& options, ThreadPool* pool = nullptr);
};

// One (score, pair) entry of the per-feature score index. Entries with equal
// scores are ordered by PairId so every index build yields the same bytes.
struct ScoreEntry {
  double score;
  PairId pair;
  friend bool operator<(const ScoreEntry& a, const ScoreEntry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.pair < b.pair;
  }
};

class FeatureSpace {
 public:
  // Non-owning view into the score-index arena. Valid until the space is
  // destroyed or its features are remapped.
  class ScoreSpan {
   public:
    ScoreSpan() = default;
    ScoreSpan(const ScoreEntry* data, size_t size)
        : data_(data), size_(size) {}
    const ScoreEntry* begin() const { return data_; }
    const ScoreEntry* end() const { return data_ + size_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const ScoreEntry& operator[](size_t i) const { return data_[i]; }

   private:
    const ScoreEntry* data_ = nullptr;
    size_t size_ = 0;
  };

  FeatureSpace() = default;
  FeatureSpace(FeatureSpace&&) = default;
  FeatureSpace& operator=(FeatureSpace&&) = default;
  FeatureSpace(const FeatureSpace&) = delete;
  FeatureSpace& operator=(const FeatureSpace&) = delete;

  const std::vector<PreparedEntity>& left_entities() const {
    return left_entities_;
  }
  const std::vector<PreparedEntity>& right_entities() const {
    static const std::vector<PreparedEntity> kNone;
    return right_ ? right_->entities : kNone;
  }
  const std::vector<EntityPairFeatures>& pairs() const { return pairs_; }
  const EntityPairFeatures& pair(PairId id) const { return pairs_[id]; }

  // IRIs of the pair's two entities.
  const std::string& LeftIri(PairId id) const {
    return left_entities_[pairs_[id].left_index].iri;
  }
  const std::string& RightIri(PairId id) const {
    return right_->entities[pairs_[id].right_index].iri;
  }

  // Pair lookup by entity IRIs; kInvalidPairId when the pair was filtered
  // out of the space (or never existed).
  PairId FindPair(const std::string& left_iri,
                  const std::string& right_iri) const;

  // All pairs whose score for `feature` lies in [lo, hi] (the exploration
  // action primitive). O(log n + answer) and allocation-free: the returned
  // span points into the CSR score arena, sorted by (score, pair).
  ScoreSpan PairsInRangeSpan(FeatureId feature, double lo, double hi) const;

  // Same query into a caller-owned scratch buffer (cleared first).
  void PairsInRange(FeatureId feature, double lo, double hi,
                    std::vector<PairId>* out) const;

  // Convenience allocating overload.
  std::vector<PairId> PairsInRange(FeatureId feature, double lo,
                                   double hi) const;

  // Applies an old-id -> new-id permutation (from FeatureCatalog::
  // Canonicalize) to every pair's feature set and rebuilds the score index.
  void RemapFeatures(const std::vector<FeatureId>& old_to_new);

  // Raw size of the cross product this space was built from (before
  // θ-filtering); pairs().size() is the filtered size. Figure 5 reports
  // both.
  uint64_t total_pair_count() const { return total_pair_count_; }

  // Pairs actually sent to BuildFeatureSet. Equal to total_pair_count()
  // when exhaustive; with blocking, total - scored pairs were pruned
  // without scoring.
  uint64_t scored_pair_count() const { return scored_pair_count_; }
  uint64_t pruned_pair_count() const {
    return total_pair_count_ - scored_pair_count_;
  }

  // The catalog is shared and owned by the caller of Build.
  const FeatureCatalog* catalog() const { return catalog_; }

  // Builds the space for `left_subjects` × `right` (a RightContext shared
  // across partitions). With a pool, the left-entity loop is sharded across
  // its workers; output is identical to the serial build.
  static FeatureSpace Build(const rdf::TripleStore& left,
                            const std::vector<rdf::TermId>& left_subjects,
                            std::shared_ptr<const RightContext> right,
                            FeatureCatalog* catalog,
                            const FeatureSpaceOptions& options,
                            ThreadPool* pool = nullptr);

  // Convenience overload that prepares the right side itself.
  static FeatureSpace Build(const rdf::TripleStore& left,
                            const std::vector<rdf::TermId>& left_subjects,
                            const rdf::TripleStore& right,
                            const std::vector<rdf::TermId>& right_subjects,
                            FeatureCatalog* catalog,
                            const FeatureSpaceOptions& options,
                            ThreadPool* pool = nullptr);

 private:
  void BuildIndexes();
  void BuildScoreIndex();

  std::vector<PreparedEntity> left_entities_;
  std::shared_ptr<const RightContext> right_;
  std::vector<EntityPairFeatures> pairs_;
  std::unordered_map<std::string, PairId> pair_by_iris_;
  // CSR score index: score_entries_ holds every (score, pair), grouped by
  // feature and sorted by (score, pair) within each group; feature f's
  // entries are [feature_begin_[f], feature_begin_[f + 1]).
  std::vector<ScoreEntry> score_entries_;
  std::vector<uint32_t> feature_begin_;
  uint64_t total_pair_count_ = 0;
  uint64_t scored_pair_count_ = 0;
  const FeatureCatalog* catalog_ = nullptr;
};

}  // namespace alex::core

#endif  // ALEX_CORE_FEATURE_SPACE_H_
