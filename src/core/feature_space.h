// The pre-processed space of feature sets (paper §3.2: "ALEX explores links
// in a space of feature sets. This space is populated in a pre-processing
// step, with a feature set for every pair of entities in the two data
// sets.").
//
// A FeatureSpace is built for one partition of the left data set against the
// whole right data set (§6.2). Pairs whose feature set is empty after
// θ-filtering are dropped (§6.1), which removes ~95% of the raw cross
// product. Each feature gets a score-sorted index so that an ALEX action —
// "find all links whose value for feature f lies in [v − step, v + step]" —
// is a binary-search range query.
//
// Construction is organized for scale:
//   * The right data set is prepared ONCE into a shared RightContext
//     (preprocessed entities + the inverted blocking index) instead of once
//     per partition.
//   * With blocking enabled (the default), only pairs sharing at least one
//     block key are scored; everything else is provably-or-empirically below
//     θ and skipped (see core/blocking.h). `blocking.enabled = false`
//     restores the paper's literal exhaustive cross product.
//   * When given a ThreadPool, Build shards the left-entity loop across it.
//     Chunks are reassembled in order, so the surviving pairs — and thus
//     PairIds — come out in (left, right) lexicographic order regardless of
//     the thread count.
//
// Incremental maintenance (§4's feedback loop adds/removes links every
// episode): each pair carries a liveness flag, and ApplyDelta() updates the
// per-feature score indexes in place — tombstones for removals, per-feature
// sorted pending buffers for re-insertions after compaction, and
// threshold-triggered per-bucket compaction — so churn costs O(changed
// pairs), not O(space). Probes stay allocation-free: PairsInRangeSpan
// merges the bucket range (skipping tombstones) with the pending range
// lazily. See DESIGN.md, "Incremental feature-space maintenance".
#ifndef ALEX_CORE_FEATURE_SPACE_H_
#define ALEX_CORE_FEATURE_SPACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/blocking.h"
#include "core/feature_set.h"

namespace alex::core {

// Index of a pair within a FeatureSpace.
using PairId = uint32_t;
inline constexpr PairId kInvalidPairId = 0xffffffffu;

struct EntityPairFeatures {
  uint32_t left_index = 0;   // into FeatureSpace::left_entities()
  uint32_t right_index = 0;  // into FeatureSpace::right_entities()
  FeatureSet features;
};

struct FeatureSpaceOptions {
  // Similarity scores below theta are zeroed (§6.1; default from the paper).
  double theta = 0.3;
  // Cap on attributes considered per entity (0 = unlimited).
  size_t max_attributes = 16;
  sim::SimilarityOptions similarity;
  // Candidate blocking for the pairwise scoring loop (see core/blocking.h).
  BlockingOptions blocking;
  // A score bucket is compacted when its tombstone + pending-entry count
  // exceeds compaction_threshold + live_size/8 (see FeatureSpace::
  // ApplyDelta). 0 compacts eagerly; larger values amortize more churn per
  // compaction.
  size_t compaction_threshold = 32;
};

// The right data set prepared once and shared (immutably) by every
// partition's Build: preprocessed entities plus, when blocking is enabled,
// the inverted block-key index over them.
struct RightContext {
  std::vector<PreparedEntity> entities;
  BlockingIndex index;  // empty when blocking is disabled

  // With a pool, entity preparation and the index build are sharded across
  // its workers; the resulting context is identical to the serial one.
  static std::shared_ptr<const RightContext> Prepare(
      const rdf::TripleStore& right,
      const std::vector<rdf::TermId>& right_subjects,
      const FeatureSpaceOptions& options, ThreadPool* pool = nullptr);
};

// One (score, pair) entry of the per-feature score index. Entries with equal
// scores are ordered by PairId so every index build yields the same bytes.
struct ScoreEntry {
  double score;
  PairId pair;
  friend bool operator<(const ScoreEntry& a, const ScoreEntry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.pair < b.pair;
  }
  friend bool operator==(const ScoreEntry& a, const ScoreEntry& b) {
    return a.score == b.score && a.pair == b.pair;
  }
};

class FeatureSpace {
 public:
  // Non-owning, allocation-free view of one feature's live entries in a
  // score band: a lazy (score, pair)-ordered merge of the CSR bucket range
  // (tombstoned entries skipped via the liveness flags) and the bucket's
  // sorted pending-insert range. Valid until the space is destroyed,
  // mutated (ApplyDelta / RebuildIndexes / MarkAllLive), or remapped.
  class ScoreSpan {
   public:
    class Iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = ScoreEntry;
      using difference_type = std::ptrdiff_t;
      using pointer = const ScoreEntry*;
      using reference = const ScoreEntry&;

      Iterator() = default;
      Iterator(const ScoreEntry* bucket, const ScoreEntry* bucket_end,
               const ScoreEntry* pending, const ScoreEntry* pending_end,
               const uint8_t* alive)
          : bucket_(bucket),
            bucket_end_(bucket_end),
            pending_(pending),
            pending_end_(pending_end),
            alive_(alive) {
        SkipDead();
      }

      const ScoreEntry& operator*() const {
        return TakeBucket() ? *bucket_ : *pending_;
      }
      const ScoreEntry* operator->() const { return &**this; }
      Iterator& operator++() {
        if (TakeBucket()) {
          ++bucket_;
          SkipDead();
        } else {
          ++pending_;
        }
        return *this;
      }
      Iterator operator++(int) {
        Iterator copy = *this;
        ++*this;
        return copy;
      }
      friend bool operator==(const Iterator& a, const Iterator& b) {
        return a.bucket_ == b.bucket_ && a.pending_ == b.pending_;
      }
      friend bool operator!=(const Iterator& a, const Iterator& b) {
        return !(a == b);
      }

     private:
      bool TakeBucket() const {
        if (bucket_ == bucket_end_) return false;
        if (pending_ == pending_end_) return true;
        return *bucket_ < *pending_;
      }
      void SkipDead() {
        if (alive_ == nullptr) return;  // no tombstones in this bucket
        while (bucket_ != bucket_end_ && !alive_[bucket_->pair]) ++bucket_;
      }

      const ScoreEntry* bucket_ = nullptr;
      const ScoreEntry* bucket_end_ = nullptr;
      const ScoreEntry* pending_ = nullptr;
      const ScoreEntry* pending_end_ = nullptr;
      const uint8_t* alive_ = nullptr;
    };

    ScoreSpan() = default;
    ScoreSpan(const ScoreEntry* bucket, const ScoreEntry* bucket_end,
              const ScoreEntry* pending, const ScoreEntry* pending_end,
              const uint8_t* alive)
        : bucket_(bucket),
          bucket_end_(bucket_end),
          pending_(pending),
          pending_end_(pending_end),
          alive_(alive) {}

    Iterator begin() const {
      return Iterator(bucket_, bucket_end_, pending_, pending_end_, alive_);
    }
    Iterator end() const {
      return Iterator(bucket_end_, bucket_end_, pending_end_, pending_end_,
                      nullptr);
    }
    bool empty() const { return begin() == end(); }
    // O(entries in the band) — the merge is lazy, so the live count is not
    // known up front. The hot exploration loop iterates and never calls
    // size(); it is here for tests and diagnostics.
    size_t size() const {
      size_t n = 0;
      for (Iterator it = begin(), stop = end(); it != stop; ++it) ++n;
      return n;
    }
    // O(i); test/diagnostic convenience, not for hot loops.
    const ScoreEntry& operator[](size_t i) const {
      Iterator it = begin();
      while (i-- > 0) ++it;
      return *it;
    }

   private:
    const ScoreEntry* bucket_ = nullptr;
    const ScoreEntry* bucket_end_ = nullptr;
    const ScoreEntry* pending_ = nullptr;
    const ScoreEntry* pending_end_ = nullptr;
    const uint8_t* alive_ = nullptr;
  };

  FeatureSpace() = default;
  FeatureSpace(FeatureSpace&&) = default;
  FeatureSpace& operator=(FeatureSpace&&) = default;
  FeatureSpace(const FeatureSpace&) = delete;
  FeatureSpace& operator=(const FeatureSpace&) = delete;

  const std::vector<PreparedEntity>& left_entities() const {
    return left_entities_;
  }
  const std::vector<PreparedEntity>& right_entities() const {
    static const std::vector<PreparedEntity> kNone;
    return right_ ? right_->entities : kNone;
  }
  const std::vector<EntityPairFeatures>& pairs() const { return pairs_; }
  const EntityPairFeatures& pair(PairId id) const { return pairs_[id]; }

  // IRIs of the pair's two entities.
  const std::string& LeftIri(PairId id) const {
    return left_entities_[pairs_[id].left_index].iri;
  }
  const std::string& RightIri(PairId id) const {
    return right_->entities[pairs_[id].right_index].iri;
  }

  // Pair lookup by entity IRIs; kInvalidPairId when the pair was filtered
  // out of the space (or never existed). Membership-agnostic: tombstoned
  // (non-live) pairs are still found — callers that care about liveness
  // check IsLive().
  PairId FindPair(const std::string& left_iri,
                  const std::string& right_iri) const;

  // All LIVE pairs whose score for `feature` lies in [lo, hi] (the
  // exploration action primitive). O(log n + answer) and allocation-free:
  // the returned span lazily merges the CSR bucket range with the bucket's
  // pending inserts, sorted by (score, pair).
  ScoreSpan PairsInRangeSpan(FeatureId feature, double lo, double hi) const;

  // Same query into a caller-owned scratch buffer (cleared first).
  void PairsInRange(FeatureId feature, double lo, double hi,
                    std::vector<PairId>* out) const;

  // Convenience allocating overload.
  std::vector<PairId> PairsInRange(FeatureId feature, double lo,
                                   double hi) const;

  // ---- Incremental maintenance under link churn ----------------------
  //
  // Every pair is live after Build. ApplyDelta flips liveness and updates
  // the score indexes in place: a removal tombstones the pair's bucket
  // entries (or erases them from pending buffers); an addition resurrects
  // the tombstoned entries in place, or — when compaction already reclaimed
  // them — inserts into the bucket's sorted pending buffer. A bucket whose
  // tombstone + pending count exceeds compaction_threshold + live_size/8 is
  // compacted (live entries and pending merged back into the CSR arena;
  // the arena keeps the Build-time capacity, so compaction never
  // reallocates). All decisions are pure functions of the delta sequence —
  // the physical index state is bit-identical for identical delta
  // histories, whatever thread count produced them.
  //
  // Pairs already in the requested state are ignored (idempotent); removals
  // are applied before additions.
  void ApplyDelta(const std::vector<PairId>& added,
                  const std::vector<PairId>& removed);

  // Flips liveness flags only, leaving the score indexes stale — the
  // rebuild baseline's first half. Callers MUST follow with
  // RebuildIndexes() before probing.
  void SetLiveness(const std::vector<PairId>& added,
                   const std::vector<PairId>& removed);

  // From-scratch score-index rebuild from the current liveness flags: the
  // O(space) baseline ApplyDelta is differential-tested against. Resets all
  // tombstone / pending / compaction state.
  void RebuildIndexes();

  // Marks every pair live and rebuilds (the ReplaceCandidates reset path,
  // where per-pair deltas are not available).
  void MarkAllLive();

  // ---- Frontier growth under triple ingest ---------------------------
  //
  // Extends the space after the stores grew: `new_left_subjects` are this
  // partition's newly ingested left entities (appended to left_entities()
  // in order), and right_->entities has already been extended past
  // `old_right_count`. New pairs are discovered in canonical (left, right)
  // lexicographic order — old lefts against the new rights first, then new
  // lefts against all rights — and appended with fresh PairIds, live.
  //
  // With `rebuild_indexes` the score arena is rebuilt from scratch (the
  // O(space) baseline); otherwise new entries land in the per-feature
  // pending sidecars in O(new pairs) — buckets whose Build-time capacity
  // they exceed keep them pending until MaybeCompactArena() folds the
  // growth back into the CSR arena. Both modes yield the same logical
  // space (same PairIds, same Fingerprint()).
  //
  // `candidate_old_lefts` (sorted, indices into left_entities()) restricts
  // the old-left probing to a known superset of the lefts that can reach a
  // new right — the engine derives it from a reverse probe over a left-side
  // blocking index. Pass nullptr to probe every old left (the rebuild
  // baseline; also the exhaustive no-blocking mode).
  struct GrowthResult {
    size_t new_pairs = 0;
    // Score entries parked in pending sidecars (incremental mode only).
    size_t overflow_entries = 0;
  };
  // `delta_index` (optional, incremental mode only) is a blocking index
  // covering ONLY the new rights but numbered globally (an empty Build
  // followed by AddRights(rights, old_right_count)). Phase-1 probes hit it
  // instead of the full index: the resulting scratch state is identical to
  // a min_right-restricted probe of the full index — the new rights'
  // postings are the same entries — but each key lands in a table that only
  // holds the epoch's delta, so a probe that matches nothing costs nearly
  // nothing. Pass nullptr to probe the full index.
  GrowthResult Grow(const rdf::TripleStore& left,
                    const std::vector<rdf::TermId>& new_left_subjects,
                    const std::vector<uint32_t>* candidate_old_lefts,
                    size_t old_right_count, FeatureCatalog* catalog,
                    const FeatureSpaceOptions& options, bool rebuild_indexes,
                    const BlockingIndex* delta_index = nullptr);

  // Precomputes and caches the probe-side block keys of every current left
  // entity (BlockingIndex::PrepareProbe). Key extraction — gram hashing and
  // deletion-variant expansion — dominates the cost of a rights-restricted
  // probe, and the keys depend only on the blocking/similarity options, not
  // on the index contents, so the cache stays valid across ingest epochs.
  // Only the incremental Grow path consults it; the rebuild baseline stays
  // a true from-scratch O(store) pass. Cached and uncached probes populate
  // bit-identical scratch state, so the modes keep yielding the same pairs.
  void PrepareForwardProbes();

  // Folds growth-pending score entries back into the CSR arena (a full,
  // counting-sort rebuild) once they outgrow compaction_threshold +
  // arena/8 — the episode-boundary "background compaction" hook. No-op
  // when nothing grew.
  void MaybeCompactArena();
  uint64_t arena_compaction_count() const { return arena_compaction_count_; }
  // Growth entries currently outside the CSR arena.
  size_t grown_entry_count() const { return grown_entries_; }

  bool IsLive(PairId id) const { return pair_alive_[id] != 0; }
  size_t live_pair_count() const { return live_pair_count_; }

  // Order-independent hash of the LOGICAL live contents — live pairs, their
  // entity indexes and feature sets — independent of physical index state
  // (tombstones, pending buffers, compaction history). Two spaces with the
  // same live contents fingerprint equal regardless of how churn was
  // applied.
  uint64_t Fingerprint() const;

  // Compaction tuning/telemetry (see FeatureSpaceOptions::
  // compaction_threshold; the setter serves threshold-sweep tests).
  void set_compaction_threshold(size_t threshold) {
    compaction_threshold_ = threshold;
  }
  size_t compaction_threshold() const { return compaction_threshold_; }
  uint64_t compaction_count() const { return compaction_count_; }
  size_t tombstone_count() const;
  size_t pending_entry_count() const;

  // Applies an old-id -> new-id permutation (from FeatureCatalog::
  // Canonicalize) to every pair's feature set and rebuilds the score index
  // (maintenance state is reset; liveness flags are preserved).
  void RemapFeatures(const std::vector<FeatureId>& old_to_new);

  // Raw size of the cross product this space was built from (before
  // θ-filtering); pairs().size() is the filtered size. Figure 5 reports
  // both.
  uint64_t total_pair_count() const { return total_pair_count_; }

  // Pairs actually sent to BuildFeatureSet. Equal to total_pair_count()
  // when exhaustive; with blocking, total - scored pairs were pruned
  // without scoring.
  uint64_t scored_pair_count() const { return scored_pair_count_; }
  uint64_t pruned_pair_count() const {
    return total_pair_count_ - scored_pair_count_;
  }

  // The catalog is shared and owned by the caller of Build.
  const FeatureCatalog* catalog() const { return catalog_; }

  // Builds the space for `left_subjects` × `right` (a RightContext shared
  // across partitions). With a pool, the left-entity loop is sharded across
  // its workers; output is identical to the serial build.
  static FeatureSpace Build(const rdf::TripleStore& left,
                            const std::vector<rdf::TermId>& left_subjects,
                            std::shared_ptr<const RightContext> right,
                            FeatureCatalog* catalog,
                            const FeatureSpaceOptions& options,
                            ThreadPool* pool = nullptr);

  // Convenience overload that prepares the right side itself.
  static FeatureSpace Build(const rdf::TripleStore& left,
                            const std::vector<rdf::TermId>& left_subjects,
                            const rdf::TripleStore& right,
                            const std::vector<rdf::TermId>& right_subjects,
                            FeatureCatalog* catalog,
                            const FeatureSpaceOptions& options,
                            ThreadPool* pool = nullptr);

 private:
  void BuildIndexes();
  void BuildScoreIndex();
  // Re-derives feature_live_end_ / dead_in_bucket_ / pending_ after a full
  // score-index (re)build: buckets hold every entry, dead ones tombstoned.
  void ResetMaintenanceState();
  void CompactBucket(FeatureId feature);
  void MaybeCompactBucket(FeatureId feature);
  // Bucket region of one feature: [begin, live_end).
  size_t NumFeatures() const {
    return feature_begin_.empty() ? 0 : feature_begin_.size() - 1;
  }

  std::vector<PreparedEntity> left_entities_;
  std::shared_ptr<const RightContext> right_;
  std::vector<EntityPairFeatures> pairs_;
  std::unordered_map<std::string, PairId> pair_by_iris_;
  // CSR score index: score_entries_ holds every (score, pair), grouped by
  // feature and sorted by (score, pair) within each group; feature f's
  // entries occupy [feature_begin_[f], feature_live_end_[f]) — the tail up
  // to feature_begin_[f + 1] is capacity reclaimed by compaction. A bucket
  // entry whose pair is not live is a tombstone (skipped by probes, counted
  // in dead_in_bucket_); live entries whose slot was compacted away sit in
  // pending_[f], sorted by (score, pair).
  std::vector<ScoreEntry> score_entries_;
  std::vector<uint32_t> feature_begin_;
  std::vector<uint32_t> feature_live_end_;
  std::vector<uint32_t> dead_in_bucket_;
  std::vector<std::vector<ScoreEntry>> pending_;
  // Liveness flags (uint8_t for cheap random access in probe loops).
  std::vector<uint8_t> pair_alive_;
  size_t live_pair_count_ = 0;
  size_t compaction_threshold_ = 32;
  uint64_t compaction_count_ = 0;
  // Per-left-entity cached probe keys (index-aligned with left_entities_);
  // filled by PrepareForwardProbes() or lazily by the incremental Grow path.
  std::vector<std::optional<PreparedProbe>> probe_cache_;
  // Entries added by Grow() that have no CSR arena slot yet; reset by any
  // full BuildScoreIndex().
  size_t grown_entries_ = 0;
  uint64_t arena_compaction_count_ = 0;
  std::vector<ScoreEntry> compact_scratch_;
  uint64_t total_pair_count_ = 0;
  uint64_t scored_pair_count_ = 0;
  const FeatureCatalog* catalog_ = nullptr;
};

}  // namespace alex::core

#endif  // ALEX_CORE_FEATURE_SPACE_H_
