// The set of candidate links of one partition, as PairIds into that
// partition's FeatureSpace. Supports O(1) add / remove / contains and O(1)
// uniform random sampling (the feedback oracle draws random candidate
// links, paper §7.1).
#ifndef ALEX_CORE_CANDIDATE_SET_H_
#define ALEX_CORE_CANDIDATE_SET_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/feature_space.h"

namespace alex::core {

class CandidateSet {
 public:
  CandidateSet() = default;

  // Returns true if `pair` was not present.
  bool Add(PairId pair);
  // Returns true if `pair` was present.
  bool Remove(PairId pair);
  bool Contains(PairId pair) const { return positions_.count(pair) > 0; }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  // Uniform random member. Must not be empty.
  PairId Sample(Rng* rng) const;

  // Unordered view of the members.
  const std::vector<PairId>& items() const { return items_; }

  // Sorted snapshot (for set-difference-based convergence checks).
  std::vector<PairId> SortedSnapshot() const;

 private:
  std::vector<PairId> items_;
  std::unordered_map<PairId, size_t> positions_;
};

}  // namespace alex::core

#endif  // ALEX_CORE_CANDIDATE_SET_H_
