// The set of candidate links of one partition, as PairIds into that
// partition's FeatureSpace. Supports O(1) add / remove / contains and O(1)
// uniform random sampling (the feedback oracle draws random candidate
// links, paper §7.1).
#ifndef ALEX_CORE_CANDIDATE_SET_H_
#define ALEX_CORE_CANDIDATE_SET_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/feature_space.h"

namespace alex::core {

class CandidateSet {
 public:
  CandidateSet() = default;

  // Returns true if `pair` was not present.
  bool Add(PairId pair);
  // Returns true if `pair` was present.
  bool Remove(PairId pair);
  bool Contains(PairId pair) const { return positions_.count(pair) > 0; }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  // Uniform random member. Must not be empty.
  PairId Sample(Rng* rng) const;

  // Unordered view of the members.
  const std::vector<PairId>& items() const { return items_; }

  // Sorted snapshot (for set-difference-based convergence checks).
  std::vector<PairId> SortedSnapshot() const;

  // Number of pairs whose membership differs from the last epoch mark
  // (construction or the last TakeEpochChanges call). An add that cancels
  // an earlier remove — or vice versa — nets to zero, so this is exactly
  // the size of the symmetric difference with the epoch-start contents,
  // maintained in O(1) per mutation instead of by snapshot + sort + diff.
  size_t EpochChangeCount() const { return delta_.size(); }

  // Returns EpochChangeCount() and marks the current contents as the new
  // epoch baseline.
  size_t TakeEpochChanges();

  // The net membership changes since the epoch mark (see delta_ below);
  // consumed by the engine's link-change observer before TakeEpochChanges.
  const std::unordered_map<PairId, int>& epoch_delta() const {
    return delta_;
  }

  // The same net changes split into ascending-PairId lists (added = net +1,
  // removed = net -1), into caller-owned scratch buffers (cleared first).
  // This is the canonical delta order consumed by FeatureSpace::ApplyDelta:
  // sorted, so the physical index state after the sync is a pure function
  // of the membership history, never of hash-map iteration order.
  void SortedEpochDelta(std::vector<PairId>* added,
                        std::vector<PairId>* removed) const;

 private:
  void BumpDelta(PairId pair, int direction);

  std::vector<PairId> items_;
  std::unordered_map<PairId, size_t> positions_;
  // Net membership change per pair since the epoch mark: +1 added, -1
  // removed; pairs at net zero are erased.
  std::unordered_map<PairId, int> delta_;
};

}  // namespace alex::core

#endif  // ALEX_CORE_CANDIDATE_SET_H_
