// The ALEX engine: feedback-driven link exploration with Monte Carlo
// reinforcement learning (paper §3-§6).
//
// Usage:
//   AlexOptions options;
//   AlexEngine engine(&left_store, &right_store, options);
//   engine.Initialize(paris_links);                 // pre-processing
//   auto feedback = [&](const linking::Link& l) {   // the "user"
//     return ground_truth.Contains(l);
//   };
//   AlexEngine::RunResult result = engine.Run(feedback, on_episode);
//
// The engine partitions the left data set round-robin (§6.2), builds one
// feature space per partition (§3.2, §6.1), and alternates policy
// evaluation (one feedback episode) with policy improvement (§4.4) until
// the candidate link set stops changing or `max_episodes` is reached.
//
// By convention the LEFT store is the larger data set (the one that is
// partitioned); callers should orient their inputs accordingly.
#ifndef ALEX_CORE_ALEX_ENGINE_H_
#define ALEX_CORE_ALEX_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/candidate_set.h"
#include "core/feature_space.h"
#include "core/feedback_sampler.h"
#include "core/mc_learner.h"
#include "core/partitioner.h"
#include "core/policy.h"
#include "core/rollback_log.h"
#include "linking/link.h"
#include "rdf/triple_store.h"

namespace alex::core {

struct AlexOptions {
  // Feature space construction (θ filtering, attribute caps).
  FeatureSpaceOptions space;
  // Exploration offset around the chosen feature's score (§4.2; default
  // from §7.1).
  double step_size = 0.05;
  // Feedback items per episode (§7.1: 1000 batch mode, 10 specific
  // domains).
  size_t episode_size = 1000;
  // ε of the ε-greedy policy.
  double epsilon = 0.05;
  // Rewards translated from feedback (§4.3; negative feedback may be
  // penalized more by increasing its magnitude).
  double positive_reward = 1.0;
  double negative_reward = -1.0;
  // Optimizations (§6.3).
  bool use_blacklist = true;
  bool use_rollback = true;
  // Generalize returns across states: when a state has no policy of its
  // own yet, pick the feature with the best average return across all
  // states (instead of a uniformly random feature), with probability
  // 1 - ε. This generalizes §4.2's "ALEX can learn that this feature is
  // not distinctive and avoid exploring around it in the future" across
  // states. OFF by default: Algorithm 1 prescribes an arbitrary initial
  // action, and the paper's precision-dip-then-recover curves (Fig. 2)
  // only arise without the prior. Measured as an extension in
  // bench_ablations.
  bool use_feature_prior = false;
  // Negative feedback items on the same link before it is blacklisted.
  // 1 blacklists immediately (the paper's literal description); the default
  // of 2 tolerates isolated incorrect negative feedback (Appendix C): one
  // erroneous rejection then cannot permanently bury a correct link,
  // because exploration can re-discover it and a later positive clears the
  // strike.
  int blacklist_strikes = 2;
  // Negative feedback items attributed to one state-action pair before its
  // generated links are rolled back.
  int rollback_threshold = 3;
  // "or when a maximum number of iterations is reached" — the paper uses
  // 100 (§7.3, rollback experiment).
  int max_episodes = 100;
  // Relaxed convergence: change in candidate links below this fraction.
  double relaxed_change_fraction = 0.05;
  // Equal-size partitions of the left data set (§6.2). The paper used 27 on
  // a 64-core machine; scaled down here.
  int num_partitions = 8;
  // Keep each partition's explorable frontier — the feature-space pairs
  // that are NOT current candidates — indexed incrementally: at every
  // episode boundary the candidate set's net epoch delta is folded into the
  // partition's FeatureSpace with ApplyDelta (O(changed links), tombstones
  // + pending buffers + threshold compaction). When false, the liveness
  // flags are applied and the score index rebuilt from scratch instead —
  // the O(space) baseline; both modes yield bitwise-identical episode
  // series (asserted by the link-churn fuzz regime).
  bool incremental_space_maintenance = true;
  // Live triple ingest (IngestTriples): when true, the engine folds newly
  // ingested entities into its structures incrementally — AddRights on the
  // shared right-side blocking index, reverse probes over a left-side
  // blocking index to find the old lefts that can reach a new right, and
  // per-partition FeatureSpace::Grow with pending-sidecar score entries.
  // When false, every ingest epoch rebuilds the blocking index and the
  // score arenas from scratch — the O(store) baseline the differential
  // suite compares against. Both modes yield the same logical state (same
  // PairIds, same fingerprints, bitwise-identical episode series).
  bool incremental_ingest = true;
  // Prioritized feedback sampling: draw each episode's feedback links by
  // uncertainty weight (tally entropy × proximity of the pair's best
  // feature score to θ; see core/feedback_sampler.h) instead of uniformly
  // over the candidate set. OFF by default: the paper's uniform feedback
  // model (§7.1) — and every bitwise-identity baseline built on it — stays
  // the default behavior, with the prioritized path opt-in.
  bool prioritized_sampling = false;
  // Fraction of prioritized draws that remain uniform over all candidates
  // (the exploration floor of the sampler; clamped to [0, 1]).
  double sampler_uniform_mix = 0.25;
  // Floor on a candidate's uncertainty weight; keeps unanimous or
  // far-from-θ links reachable in the weighted arm too.
  double sampler_min_weight = 1e-3;
  // Worker threads (0 = one per hardware thread) for parallel feature-space
  // construction AND parallel episode execution. During Initialize the
  // left-entity loop of every partition build is sharded across these
  // workers; during RunEpisode each partition processes its feedback quota
  // on its own worker. Episode results are bitwise-identical at any thread
  // count (see DESIGN.md, "The episode loop").
  int num_threads = 0;
  uint64_t seed = 42;
};

// Per-episode statistics (also the raw material for the paper's figures).
struct EpisodeStats {
  int episode = 0;  // 1-based
  size_t feedback_items = 0;
  size_t positive_feedback = 0;
  size_t negative_feedback = 0;
  size_t links_added = 0;
  size_t links_removed = 0;
  size_t rollbacks = 0;           // rollback events fired
  size_t rolled_back_links = 0;   // links removed by rollbacks
  size_t candidate_count = 0;     // after the episode
  double change_fraction = 1.0;   // |candidates Δ prev| / max(1, |prev|)
  double seconds = 0.0;           // wall clock for the episode
  double max_partition_seconds = 0.0;  // busiest partition (§7.3)
  double avg_partition_seconds = 0.0;
  // Federated query cache traffic during the episode (query-driven loop
  // only; zero when the episode was not query-driven or no cache was used).
  size_t query_cache_hits = 0;
  size_t query_cache_misses = 0;
  // SPARQL plan-cache traffic during the episode (query-driven loop only;
  // parsed-query reuse across epochs — zero when no plan cache attached).
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
  // Fault-tolerant federation accounting (query-driven loop over unreliable
  // endpoints only; all zero otherwise). Probes count endpoint attempts,
  // retries included; short circuits are probes skipped by an open breaker.
  size_t query_probes = 0;
  size_t query_retries = 0;
  size_t breaker_short_circuits = 0;
  size_t breaker_opens = 0;
  size_t breaker_half_opens = 0;
  size_t breaker_closes = 0;
  // Queries whose answer set was incomplete (failed / truncating / blocked
  // sources, deadline overruns), and provenance links that consequently
  // received no feedback this episode — the loop never trains the policy on
  // degraded evidence.
  size_t incomplete_queries = 0;
  size_t skipped_feedback = 0;
  // Serving-tier accounting (serving::RunServingExperiment only; all zero
  // otherwise). Cumulative as of this episode's boundary: epochs published
  // so far, snapshots whose last in-flight reader drained, and the
  // high-water mark of concurrent reader executions.
  size_t epochs_published = 0;
  size_t snapshots_retired = 0;
  size_t max_concurrent_readers = 0;
  // Feedback-aggregation accounting (vote-driven loops over a
  // feedback::FeedbackAggregator only; all zero otherwise). Cumulative as
  // of this episode's drain, except aggregator_pending which is the open
  // tally count right after it. Suppressed votes are minority votes inside
  // emitted verdicts plus every vote of an evicted tally.
  size_t votes_recorded = 0;
  size_t verdicts_emitted = 0;
  size_t aggregator_pending = 0;
  size_t votes_suppressed = 0;
  size_t tallies_evicted = 0;
  // Live-ingest accounting (engines driven through IngestTriples only; all
  // zero otherwise). Cumulative as of this episode's boundary: triples
  // accepted by the stores, entities that joined either side, sidecar-into-
  // CSR merges across the blocking indexes, score entries parked in
  // feature-bucket overflow sidecars, and ingest epochs applied.
  size_t triples_ingested = 0;
  size_t entities_added = 0;
  size_t blocking_merges = 0;
  size_t space_overflow_pairs = 0;
  size_t ingest_epochs = 0;

  double NegativeFeedbackPercent() const {
    return feedback_items == 0
               ? 0.0
               : 100.0 * static_cast<double>(negative_feedback) /
                     static_cast<double>(feedback_items);
  }
};

// The "user": maps a candidate link to approve (true) / reject (false).
// With num_threads > 1 the engine calls this concurrently from several
// partition workers, so the callable must be thread-safe (feedback::Oracle
// is; a capture-by-reference lambda over mutable state is not unless
// synchronized).
using FeedbackFn = std::function<bool(const linking::Link&)>;

// Observes net candidate-link membership changes, called by the engine once
// per episode per changed link (on the main thread, in deterministic order):
// `added` is true when the link entered the candidate set this episode,
// false when it left. Used for incremental quality evaluation (see
// eval::QualityTracker).
using LinkChangeFn = std::function<void(const linking::Link&, bool added)>;

// One partition of the search space with its own candidate links, policy,
// learner, blacklist and rollback log. Public mainly for white-box tests;
// most callers use AlexEngine.
class PartitionAlex {
 public:
  PartitionAlex(FeatureSpace space, const AlexOptions* options,
                uint64_t seed);

  PartitionAlex(PartitionAlex&&) = default;

  void AddInitialCandidate(PairId pair) {
    if (candidates_.Add(pair)) SamplerAdd(pair);
  }

  struct FeedbackOutcome {
    size_t added = 0;
    bool removed = false;
    size_t rollbacks = 0;
    size_t rolled_back_links = 0;
  };

  // Handles one feedback item on `pair` (which should currently be a
  // candidate). Positive feedback triggers an exploration action; negative
  // feedback removes the link and may fire rollbacks.
  FeedbackOutcome ProcessFeedback(PairId pair, bool positive);

  // Per-partition slice of an episode's statistics, merged by the engine in
  // partition order.
  struct ShardStats {
    size_t feedback_items = 0;
    size_t positive_feedback = 0;
    size_t negative_feedback = 0;
    size_t links_added = 0;
    size_t links_removed = 0;
    size_t rollbacks = 0;
    size_t rolled_back_links = 0;
  };

  // Runs this partition's share of one episode: BeginEpisode, then up to
  // `items` feedback draws sampled live from the partition's own candidate
  // set with the partition's own RNG (stopping early if the set empties),
  // then EndEpisode. Touches no engine state, so partitions run their
  // shares concurrently; the result depends only on this partition's
  // history, never on thread interleaving.
  void RunEpisodeItems(size_t items, const FeedbackFn& feedback,
                       ShardStats* stats);

  // One feedback draw from this partition's candidates, with the
  // partition's own RNG: the prioritized uncertainty sampler when
  // AlexOptions::prioritized_sampling is on (uniform-mix floor included),
  // a uniform pick otherwise — the same single NextBounded the paper's
  // feedback model always consumed, so default-mode episode series are
  // bit-for-bit unchanged. Returns kInvalidPairId when the candidate set
  // is empty.
  PairId SampleFeedbackPair();

  // Episode lifecycle (Algorithm 1).
  void BeginEpisode();
  void EndEpisode();  // policy improvement at all states visited

  // Folds the candidate set's net epoch delta into the feature space's
  // live set (new candidates leave the explorable frontier, removed ones
  // return to it), in ascending-PairId order. Called by the engine on the
  // main thread at every episode boundary, BEFORE TakeEpochChanges; the
  // exploration span probes of the next episode then see the updated
  // frontier. Honors AlexOptions::incremental_space_maintenance. Public
  // mainly for white-box tests driving ProcessFeedback directly.
  void SyncSpaceToCandidates();

  // Extends this partition's feature space after a triple-ingest epoch (see
  // FeatureSpace::Grow; called by AlexEngine::IngestTriples on the main
  // thread, in partition order).
  FeatureSpace::GrowthResult GrowSpace(
      const rdf::TripleStore& left,
      const std::vector<rdf::TermId>& new_left_subjects,
      const std::vector<uint32_t>* candidate_old_lefts,
      size_t old_right_count, FeatureCatalog* catalog, bool rebuild_indexes,
      const BlockingIndex* delta_index = nullptr) {
    return space_.Grow(left, new_left_subjects, candidate_old_lefts,
                       old_right_count, catalog, options_->space,
                       rebuild_indexes, delta_index);
  }

  // Warms the space's per-left probe-key cache (incremental ingest only;
  // see FeatureSpace::PrepareForwardProbes).
  void PrepareForwardProbes() { space_.PrepareForwardProbes(); }

  // Persistence hooks (see core/engine_state.h). ClearCandidates also
  // restores the full feature space as explorable frontier, since the
  // per-pair delta trail is lost with the set.
  void ClearCandidates() {
    candidates_ = CandidateSet();
    space_.MarkAllLive();
    sampler_.Clear();
  }
  void RestoreBlacklistEntry(PairId pair) { blacklist_.insert(pair); }
  void RestorePolicyEntry(PairId state, FeatureId action) {
    policy_.SetGreedy(state, action);
  }
  void RestoreReturnEntry(const StateAction& sa, double sum,
                          uint64_t count) {
    learner_.RestoreReturn(sa, sum, count);
  }

  const FeatureSpace& space() const { return space_; }
  const CandidateSet& candidates() const { return candidates_; }
  CandidateSet& mutable_candidates() { return candidates_; }
  const EpsilonGreedyPolicy& policy() const { return policy_; }
  const McLearner& learner() const { return learner_; }
  const std::unordered_set<PairId>& blacklist() const { return blacklist_; }
  const FeedbackSampler& sampler() const { return sampler_; }
  Rng* rng() { return &rng_; }

 private:
  // Best feature score of `pair` (the sampler's proximity input).
  double TopFeatureScore(PairId pair) const;
  // Sampler maintenance shims; no-ops when prioritized sampling is off, so
  // the default path pays nothing. Called at every candidate mutation the
  // engine performs (AddInitialCandidate, exploration adds, negative
  // removals, rollbacks); candidates mutated behind the engine's back via
  // mutable_candidates() are not tracked — prioritized runs must mutate
  // through engine paths only.
  void SamplerAdd(PairId pair) {
    if (options_->prioritized_sampling) {
      sampler_.Add(pair, TopFeatureScore(pair));
    }
  }
  void SamplerRemove(PairId pair) {
    if (options_->prioritized_sampling) sampler_.Remove(pair);
  }

  FeatureSpace space_;
  const AlexOptions* options_;
  CandidateSet candidates_;
  FeedbackSampler sampler_;
  std::unordered_set<PairId> blacklist_;
  std::unordered_map<PairId, int> negative_strikes_;
  std::unordered_set<PairId> confirmed_;  // links with positive feedback
  EpsilonGreedyPolicy policy_;
  McLearner learner_;
  RollbackLog rollback_;
  Rng rng_;
  // Hot-loop scratch buffers (capacity reused across feedback items).
  std::vector<PairId> added_scratch_;
  std::vector<StateAction> ancestors_scratch_;
  std::vector<PairId> improve_scratch_;
  // Epoch-delta scratch for SyncSpaceToCandidates.
  std::vector<PairId> delta_added_scratch_;
  std::vector<PairId> delta_removed_scratch_;
};

class AlexEngine {
 public:
  // `left` and `right` must outlive the engine.
  AlexEngine(const rdf::TripleStore* left, const rdf::TripleStore* right,
             AlexOptions options);

  // Pre-processing: partitions the left data set, builds the feature space
  // of every partition (in parallel), and seeds the candidate set with
  // `initial_links` (e.g., PARIS output). Initial links whose entity pair
  // was filtered out of the space are kept as spaceless candidates: they
  // can be removed by negative feedback but not explored around.
  //
  // `prepared_right` optionally supplies an already-prepared RightContext
  // for the engine's right store (from RightContext::Prepare with the same
  // FeatureSpaceOptions), so multiple engines over one right store — e.g.
  // bench configs — skip re-preparing it. Pass nullptr to prepare
  // internally.
  Status Initialize(const std::vector<linking::Link>& initial_links,
                    std::shared_ptr<const RightContext> prepared_right =
                        nullptr);

  // Per-call accounting of one IngestTriples epoch. blocking_merges and
  // ingest_epoch are cumulative over the engine's lifetime; the rest count
  // this call only.
  struct IngestStats {
    size_t triples_ingested = 0;
    size_t new_left_entities = 0;
    size_t new_right_entities = 0;
    size_t new_pairs = 0;           // pairs that joined the feature spaces
    size_t overflow_entries = 0;    // score entries parked in sidecars
    uint64_t blocking_merges = 0;   // sidecar-into-CSR merges so far
    uint64_t ingest_epoch = 0;      // 1-based engine ingest epoch
  };

  // Folds triples ingested into the underlying stores (after Initialize)
  // into the engine: newly appeared subjects on either side are prepared,
  // the shared right blocking index is extended (AddRights, or a fresh
  // Build when options.incremental_ingest is false), each partition's
  // feature space grows by the new pairs in canonical (left, right) order,
  // and new left entities join the partitions round-robin — exactly where a
  // from-scratch EqualSizePartition of the grown store would place them.
  //
  // The growth contract is additive: triples of PRE-EXISTING subjects must
  // not change between ingest epochs (InvalidArgument otherwise). Consumes
  // no engine RNG, so episode series stay aligned across maintenance modes.
  // Requires the engine to own its right context (Initialize without
  // `prepared_right`); a shared context cannot be mutated safely.
  Status IngestTriples(IngestStats* stats = nullptr);

  // The engine's shared right-side context (null before Initialize). The
  // differential suite fingerprints right_context()->index through this.
  const RightContext* right_context() const { return right_context_.get(); }

  // Runs one feedback episode of options.episode_size items. With
  // num_threads > 1, partitions process their shares concurrently (see
  // DESIGN.md); the episode result is identical at any thread count.
  EpisodeStats RunEpisode(const FeedbackFn& feedback);

  // Registers an observer of net candidate-link changes, invoked once per
  // changed link at the end of every episode (main thread, deterministic
  // order). Pass nullptr to unregister.
  void SetLinkChangeObserver(LinkChangeFn observer) {
    link_observer_ = std::move(observer);
  }

  struct RunResult {
    bool converged = false;          // strict: no change in candidate links
    int episodes = 0;                // episodes actually run
    int relaxed_episode = -1;        // first episode with <5% change
    std::vector<EpisodeStats> history;
  };

  // Alternates policy evaluation and improvement until strict convergence
  // or options.max_episodes. `on_episode` (optional) observes each episode.
  RunResult Run(const FeedbackFn& feedback,
                const std::function<void(const EpisodeStats&)>& on_episode =
                    nullptr);

  // Current candidate links across all partitions plus spaceless extras.
  std::vector<linking::Link> CandidateLinks() const;
  size_t CandidateCount() const;

  // Draws up to `count` candidate links for externally-driven feedback
  // (the vote-driven loop in eval/vote_driven.h): the quota is split
  // across partitions + spaceless extras by a candidate-count-weighted
  // multinomial from the engine RNG — exactly RunEpisode's schedule — then
  // each partition draws its share with its own RNG, prioritized when
  // AlexOptions::prioritized_sampling is on and uniform otherwise.
  // Appends to `out` in deterministic partition-then-extras order. Unlike
  // RunEpisode's with-replacement draws, the returned links are DISTINCT
  // within one call (an epoch's judgment sample is a set handed to the
  // user population; duplicates would only burn vote budget past the
  // quorum), so fewer than `count` may come back when candidates run low.
  // Consumes the same RNG streams as RunEpisode, so a given engine should
  // be driven through one entry point, not both interleaved.
  void SampleFeedbackLinks(size_t count, std::vector<linking::Link>* out);

  // Feedback entry point for integration with the federated query engine:
  // attributes approve/reject of a query answer to one of its provenance
  // links. Unknown or non-candidate links are ignored.
  void ApplyLinkFeedback(const linking::Link& link, bool positive);

  // When driving feedback externally (ApplyLinkFeedback), call these to
  // delimit episodes. EndExternalEpisode fires the link-change observer
  // once per net candidate membership change since the previous episode
  // boundary (exactly like RunEpisode) and returns the number of changes,
  // so external drivers can maintain a LinkSet / query cache incrementally
  // and compute change fractions without re-materializing CandidateLinks().
  void BeginExternalEpisode();
  size_t EndExternalEpisode();

  // Persistence support (see core/engine_state.h). These operate on an
  // initialized engine; links outside every feature space become spaceless
  // candidates (ReplaceCandidates) or are ignored (the others).
  void ReplaceCandidates(const std::vector<linking::Link>& links);
  void RestoreBlacklistEntry(const linking::Link& link);
  void RestorePolicyEntry(const linking::Link& state,
                          const FeatureKey& action);
  void RestoreReturnEntry(const linking::Link& state,
                          const FeatureKey& action, double sum,
                          uint64_t count);

  const std::vector<PartitionAlex>& partitions() const { return partitions_; }
  std::vector<PartitionAlex>& mutable_partitions() { return partitions_; }
  const AlexOptions& options() const { return options_; }
  const FeatureCatalog& catalog() const { return catalog_; }

  // What the policies learned, aggregated across partitions: for every
  // feature, how many states chose it as their greedy action and the
  // average return it collected. Sorted by descending greedy_states. This
  // is §4.2's claim made observable — distinctive features accumulate
  // greedy states and positive returns, traps (rdf:type-like features)
  // accumulate negative returns.
  struct FeatureUsage {
    FeatureKey key;
    size_t greedy_states = 0;
    double average_return = 0.0;
    uint64_t return_samples = 0;
  };
  std::vector<FeatureUsage> FeatureUsageSummary() const;

  // Pre-processing statistics (Figure 5).
  double init_seconds() const { return init_seconds_; }
  uint64_t total_pair_count() const { return total_pair_count_; }
  uint64_t filtered_pair_count() const { return filtered_pair_count_; }
  // Pairs actually scored during Initialize; total - scored were pruned by
  // the blocking index without being scored.
  uint64_t scored_pair_count() const { return scored_pair_count_; }
  uint64_t pruned_pair_count() const {
    return total_pair_count_ - scored_pair_count_;
  }

 private:
  // Resets the incremental change tracking (candidate-set epoch deltas and
  // the baseline count) to the current candidate state.
  void MarkCandidateBaseline();

  // Processes up to `quota` feedback items on the spaceless extras,
  // sampling live with the engine RNG (extras have no partition worker;
  // they run on the calling thread).
  void ProcessExtras(size_t quota, const FeedbackFn& feedback,
                     EpisodeStats* stats);

  // Total sidecar-into-CSR merge compactions across the engine's blocking
  // indexes (the shared right index plus the left reverse-probe index).
  uint64_t BlockingMergeCount() const {
    uint64_t merges = left_probe_index_.merge_count();
    if (right_context_ != nullptr) {
      merges += right_context_->index.merge_count();
    }
    return merges;
  }

  const rdf::TripleStore* left_;
  const rdf::TripleStore* right_;
  AlexOptions options_;
  FeatureCatalog catalog_;
  std::vector<PartitionAlex> partitions_;
  std::unordered_map<std::string, uint32_t> partition_by_left_iri_;

  // Live-ingest state. The right context is shared immutably with every
  // partition space; IngestTriples may extend it (append-only: existing
  // entities and the logical index contents over them never change) only
  // when the engine prepared it itself.
  std::shared_ptr<const RightContext> right_context_;
  bool owns_right_context_ = false;
  // New-entity watermarks: a subject TermId >= the watermark was interned
  // after the previous ingest epoch (Subjects() is TermId-ascending, so the
  // new subjects are exactly the suffix past the old count).
  rdf::TermId left_term_watermark_ = 0;
  rdf::TermId right_term_watermark_ = 0;
  size_t left_subject_count_ = 0;
  size_t right_subject_count_ = 0;
  size_t known_left_triples_ = 0;
  size_t known_right_triples_ = 0;
  // Reverse-probe acceleration (incremental_ingest && blocking only; built
  // lazily on the first ingest epoch so engines that never ingest pay
  // nothing): a blocking index over ALL left entities in global subject
  // order, built with a relaxed gram filter (min_gram_matches = 1) so that
  // a new right
  // probing it reaches a SUPERSET of the old lefts whose forward probe
  // could touch it. Only those lefts are forward-probed per epoch — O(new
  // entities), not O(store). The rebuild baseline probes every old left,
  // so any superset violation surfaces as a fingerprint mismatch in the
  // ingest-differential suite.
  std::vector<PreparedEntity> left_probe_entities_;
  BlockingIndex left_probe_index_;
  bool left_probe_built_ = false;
  // Cumulative ingest counters surfaced through EpisodeStats.
  size_t triples_ingested_ = 0;
  size_t entities_added_ = 0;
  size_t space_overflow_pairs_ = 0;
  size_t ingest_epochs_ = 0;

  // Spaceless candidates: initial links outside every feature space.
  std::vector<linking::Link> extras_links_;
  CandidateSet extras_alive_;  // ids index extras_links_

  Rng rng_;
  // Episode + build workers, created in Initialize when the resolved thread
  // count is > 1; null means fully serial execution.
  std::unique_ptr<ThreadPool> pool_;
  LinkChangeFn link_observer_;
  bool initialized_ = false;
  double init_seconds_ = 0.0;
  uint64_t total_pair_count_ = 0;
  uint64_t filtered_pair_count_ = 0;
  uint64_t scored_pair_count_ = 0;
  // Candidate count at the start of the current episode (the denominator of
  // change_fraction); the numerator comes from the candidate sets' epoch
  // deltas, so no full snapshot is rebuilt per episode.
  size_t prev_candidate_count_ = 0;
  int episodes_run_ = 0;
};

}  // namespace alex::core

#endif  // ALEX_CORE_ALEX_ENGINE_H_
