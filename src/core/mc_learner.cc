#include "core/mc_learner.h"

#include <cmath>

namespace alex::core {

void McLearner::AppendReturn(const StateAction& sa, double reward) {
  Accumulated& acc = returns_[sa];
  acc.sum += reward;
  acc.count += 1;
  Accumulated& feature_acc = feature_returns_[sa.action];
  feature_acc.sum += reward;
  feature_acc.count += 1;
  states_to_improve_.insert(sa.state);
}

double McLearner::FeaturePrior(FeatureId feature, bool* defined) const {
  auto it = feature_returns_.find(feature);
  if (it == feature_returns_.end() || it->second.count == 0) {
    if (defined != nullptr) *defined = false;
    return 0.0;
  }
  if (defined != nullptr) *defined = true;
  return it->second.sum / static_cast<double>(it->second.count);
}

FeatureId McLearner::ArgmaxFeaturePrior(const FeatureSet& actions) const {
  FeatureId best = kInvalidFeatureId;
  double best_prior = 0.0;
  double best_score = 0.0;
  for (const auto& [feature, score] : actions.features) {
    double prior = FeaturePrior(feature);
    if (best == kInvalidFeatureId || prior > best_prior ||
        (prior == best_prior && score > best_score)) {
      best = feature;
      best_prior = prior;
      best_score = score;
    }
  }
  return best;
}

double McLearner::Q(const StateAction& sa, bool* defined) const {
  auto it = returns_.find(sa);
  if (it == returns_.end() || it->second.count == 0) {
    if (defined != nullptr) *defined = false;
    return 0.0;
  }
  if (defined != nullptr) *defined = true;
  return it->second.sum / static_cast<double>(it->second.count);
}

FeatureId McLearner::ArgmaxAction(PairId state,
                                  const FeatureSet& actions) const {
  // Untried actions count as Q = 0 (neutral). Without this, a state whose
  // only sampled action earned a negative return would greedily re-take
  // that action. Ties (e.g., among untried actions) break toward the
  // feature with the higher similarity score.
  FeatureId best = kInvalidFeatureId;
  double best_q = 0.0;
  double best_score = 0.0;
  for (const auto& [feature, score] : actions.features) {
    double q = Q(StateAction{state, feature});
    if (best == kInvalidFeatureId || q > best_q ||
        (q == best_q && score > best_score)) {
      best = feature;
      best_q = q;
      best_score = score;
    }
  }
  return best;
}

std::unordered_map<FeatureId, std::pair<double, uint64_t>>
McLearner::FeaturePriors() const {
  std::unordered_map<FeatureId, std::pair<double, uint64_t>> out;
  for (const auto& [feature, acc] : feature_returns_) {
    if (acc.count == 0) continue;
    out.emplace(feature, std::make_pair(
                             acc.sum / static_cast<double>(acc.count),
                             acc.count));
  }
  return out;
}

std::vector<std::tuple<StateAction, double, uint64_t>>
McLearner::ExportReturns() const {
  std::vector<std::tuple<StateAction, double, uint64_t>> out;
  out.reserve(returns_.size());
  for (const auto& [sa, acc] : returns_) {
    out.emplace_back(sa, acc.sum, acc.count);
  }
  return out;
}

void McLearner::RestoreReturn(const StateAction& sa, double sum,
                              uint64_t count) {
  Accumulated& acc = returns_[sa];
  acc.sum += sum;
  acc.count += count;
  Accumulated& feature_acc = feature_returns_[sa.action];
  feature_acc.sum += sum;
  feature_acc.count += count;
}

void McLearner::BeginEpisode() { visited_this_episode_.clear(); }

bool McLearner::IsFirstVisit(PairId pair) {
  return visited_this_episode_.insert(pair).second;
}

std::vector<PairId> McLearner::TakeStatesToImprove() {
  std::vector<PairId> out;
  TakeStatesToImprove(&out);
  return out;
}

void McLearner::TakeStatesToImprove(std::vector<PairId>* out) {
  out->assign(states_to_improve_.begin(), states_to_improve_.end());
  states_to_improve_.clear();
}

}  // namespace alex::core
