#include "core/feedback_sampler.h"

#include <algorithm>
#include <cmath>

namespace alex::core {

namespace {

// Rebuild cadence: often enough that incremental double rounding can never
// visibly skew the weights, rare enough to stay amortized O(1) per update.
constexpr uint64_t kRebuildEvery = 1 << 16;

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

}  // namespace

FeedbackSampler::FeedbackSampler(const FeedbackSamplerOptions& options)
    : options_(options) {
  options_.uniform_mix = std::clamp(options_.uniform_mix, 0.0, 1.0);
  options_.min_weight = std::max(options_.min_weight, 0.0);
}

double FeedbackSampler::ComputeWeight(const SlotState& slot) const {
  const uint32_t total = slot.positive + slot.negative;
  // Never-judged pairs carry maximal tally uncertainty.
  const double entropy =
      total == 0
          ? 1.0
          : BinaryEntropy(static_cast<double>(slot.positive) /
                          static_cast<double>(total));
  return std::max(options_.min_weight, entropy * slot.proximity);
}

void FeedbackSampler::SetSlotWeight(size_t slot, double weight) {
  const double delta = weight - slots_[slot].weight;
  slots_[slot].weight = weight;
  total_weight_ += delta;
  for (size_t i = slot + 1; i <= capacity_; i += i & (~i + 1)) {
    tree_[i] += delta;
  }
  if (++updates_since_rebuild_ >= kRebuildEvery) RebuildTree();
}

void FeedbackSampler::RebuildTree() {
  tree_.assign(capacity_ + 1, 0.0);
  total_weight_ = 0.0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const double w = slots_[i].weight;
    total_weight_ += w;
    tree_[i + 1] += w;
    const size_t parent = (i + 1) + ((i + 1) & (~(i + 1) + 1));
    if (parent <= capacity_) tree_[parent] += tree_[i + 1];
  }
  updates_since_rebuild_ = 0;
}

size_t FeedbackSampler::DescendTree(double r) const {
  // Largest prefix strictly below r; the owning slot is the next one.
  size_t pos = 0;
  for (size_t step = capacity_; step > 0; step >>= 1) {
    const size_t next = pos + step;
    if (next <= capacity_ && tree_[next] < r) {
      pos = next;
      r -= tree_[next];
    }
  }
  return pos;  // 0-based slot index (== slots_.size() when past the end)
}

void FeedbackSampler::Add(PairId pair, double top_score) {
  if (slot_of_.count(pair) > 0) return;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    if (slots_.size() > capacity_) {
      capacity_ = std::max<size_t>(1, capacity_ * 2);
      while (capacity_ < slots_.size()) capacity_ *= 2;
      RebuildTree();
    }
  }
  SlotState& state = slots_[slot];
  state.pair = pair;
  state.positive = 0;
  state.negative = 0;
  // Proximity to the exploration boundary: 1 at θ (and below — spaceless
  // scores clamp up), linearly down to 0 at a perfect score.
  const double span = std::max(1e-9, 1.0 - options_.theta);
  state.proximity =
      std::clamp(1.0 - (top_score - options_.theta) / span, 0.0, 1.0);
  slot_of_.emplace(pair, slot);
  live_pos_.emplace(pair, live_.size());
  live_.push_back(pair);
  SetSlotWeight(slot, ComputeWeight(state));
}

void FeedbackSampler::Remove(PairId pair) {
  auto it = slot_of_.find(pair);
  if (it == slot_of_.end()) return;
  const uint32_t slot = it->second;
  SetSlotWeight(slot, 0.0);
  slots_[slot] = SlotState{};
  slot_of_.erase(it);
  free_slots_.push_back(slot);
  // Swap-remove from the dense uniform-arm list.
  const size_t pos = live_pos_.at(pair);
  const PairId moved = live_.back();
  live_[pos] = moved;
  live_pos_[moved] = pos;
  live_.pop_back();
  live_pos_.erase(pair);
}

void FeedbackSampler::RecordFeedback(PairId pair, bool positive) {
  auto it = slot_of_.find(pair);
  if (it == slot_of_.end()) return;
  SlotState& state = slots_[it->second];
  if (positive) {
    ++state.positive;
  } else {
    ++state.negative;
  }
  SetSlotWeight(it->second, ComputeWeight(state));
}

PairId FeedbackSampler::Sample(Rng* rng) {
  if (live_.empty()) return kInvalidPairId;
  if (rng->NextDouble() >= options_.uniform_mix && total_weight_ > 0.0) {
    const size_t slot = DescendTree(rng->NextDouble() * total_weight_);
    // Float drift can push the draw past the last weighted slot, or onto a
    // freed one; those rare edges fall back to the uniform arm.
    if (slot < slots_.size() && slots_[slot].weight > 0.0 &&
        slots_[slot].pair != kInvalidPairId) {
      ++weighted_draws_;
      return slots_[slot].pair;
    }
  }
  ++uniform_draws_;
  return live_[rng->NextBounded(live_.size())];
}

void FeedbackSampler::Clear() {
  slots_.clear();
  tree_.clear();
  capacity_ = 0;
  slot_of_.clear();
  free_slots_.clear();
  live_.clear();
  live_pos_.clear();
  total_weight_ = 0.0;
  updates_since_rebuild_ = 0;
}

double FeedbackSampler::Weight(PairId pair) const {
  auto it = slot_of_.find(pair);
  return it == slot_of_.end() ? 0.0 : slots_[it->second].weight;
}

}  // namespace alex::core
