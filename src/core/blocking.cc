#include "core/blocking.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>
#include <limits>
#include <string_view>
#include <unordered_set>

namespace alex::core {
namespace {

// Key namespaces, kept to one tag byte + '\x01' so keys from different
// channels can never collide.
constexpr char kValueTag = 'v';
constexpr char kTokenTag = 't';
constexpr char kGramTag = 'g';
constexpr char kDeletionTag = 'd';
constexpr char kNumericTag = 'n';
constexpr char kDateTag = 'D';

std::string MakeKey(char tag, std::string_view body) {
  std::string key;
  key.reserve(body.size() + 2);
  key.push_back(tag);
  key.push_back('\x01');
  key.append(body);
  return key;
}

// FNV-1a for string-bodied keys, seeded with the channel tag.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t HashKey(char tag, std::string_view body) {
  uint64_t h = kFnvOffset;
  h = (h ^ static_cast<uint8_t>(tag)) * kFnvPrime;
  for (char c : body) h = (h ^ static_cast<uint8_t>(c)) * kFnvPrime;
  return h;
}

// SplitMix64 for integer-bodied keys (numeric/date buckets).
uint64_t MixInt(char tag, uint64_t x) {
  x += 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(tag) * kFnvPrime;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Logarithmic magnitude bucket: values whose NumericSimilarity can be
// positive (|a-b| <= tolerance * max(|a|, |b|, 1)) land at most two buckets
// apart, so the query probes ±2.
int64_t NumericBucket(double v, double tolerance) {
  double magnitude = std::max(std::fabs(v), 1.0);
  if (tolerance <= 0.0) {
    // Only exact equality scores; bucket by bit pattern.
    int64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  return static_cast<int64_t>(
      std::floor(std::log(magnitude) / std::log1p(tolerance)));
}

// Shared channel walk behind both the human-readable (string) and hashed
// key emitters: calls `emit(tag, body)` for every string-bodied key and
// `emit_int(tag, negative, bucket)` for numeric/date bucket keys.
template <typename EmitStr, typename EmitInt>
void ForEachValueKey(const PreparedValue& value,
                     const BlockingOptions& options,
                     const sim::SimilarityOptions& sim, bool probe_neighbors,
                     EmitStr&& emit, EmitInt&& emit_int) {
  // Exact-match catch-all (covers booleans, date-vs-string equality, and
  // values whose normalization leaves no tokens, e.g. empty strings).
  emit(kValueTag, std::string_view(value.lowered));
  // Size-tiered q-grams of the WHOLE lowered value (not per token): the
  // Levenshtein similarity channel compares whole values, so near-threshold
  // matches can share only substrings that straddle token boundaries. Each
  // INDEXED value emits exactly one gram family, chosen by its own length —
  // short and mid values need trigrams to survive borderline edit rates
  // (e.g. 7 vs 10 chars at distance 4 destroys every 4-gram), long values
  // afford the more selective `gram_length`-grams, and one family per value
  // keeps the posting lists small. The PROBE side emits the gram length of
  // every tier a Levenshtein-matchable counterpart could be indexed under:
  // raw similarity is at most min_len/max_len, so clearing the noise floor
  // requires the counterpart's length in [floor * len, len / floor].
  const size_t len = value.lowered.size();
  if (len >= options.min_gram_token_length) {
    auto emit_grams = [&](size_t q) {
      if (len < q) return;
      for (size_t i = 0; i + q <= len; ++i) {
        emit(kGramTag, std::string_view(value.lowered).substr(i, q));
      }
    };
    const double tier_bound =
        static_cast<double>(options.trigram_value_length);
    if (!probe_neighbors) {
      emit_grams(len <= options.trigram_value_length ? 3
                                                     : options.gram_length);
    } else {
      const double floor = sim.string_noise_floor;
      const double lo =
          floor > 0.0 ? floor * static_cast<double>(len) : 0.0;
      const double hi = floor > 0.0
                            ? static_cast<double>(len) / floor
                            : std::numeric_limits<double>::infinity();
      if (lo <= tier_bound) emit_grams(3);
      if (hi > tier_bound) emit_grams(options.gram_length);
    }
  }
  if (value.has_numeric) {
    const double tolerance = sim.numeric_tolerance;
    const bool negative = value.numeric < -1.0;
    const int64_t bucket = NumericBucket(value.numeric, tolerance);
    if (!probe_neighbors || tolerance <= 0.0) {
      emit_int(kNumericTag, negative, bucket);
    } else {
      for (int64_t b = bucket - 2; b <= bucket + 2; ++b) {
        if (b >= 0) emit_int(kNumericTag, negative, b);
      }
      // Near the ±1 magnitude boundary, near-equal values can sit on
      // opposite sides of the sign split; cover the other sign's smallest
      // buckets.
      if (bucket <= 2) {
        for (int64_t b = 0; b <= 2; ++b) emit_int(kNumericTag, !negative, b);
      }
    }
  }
  if (!value.is_iri && value.type == rdf::LiteralType::kDate) {
    const double scale = sim.date_scale_days;
    int64_t bucket =
        scale > 0.0 ? static_cast<int64_t>(std::floor(
                          static_cast<double>(value.date_days) / scale))
                    : value.date_days;
    int64_t radius = (probe_neighbors && scale > 0.0) ? 1 : 0;
    for (int64_t b = bucket - radius; b <= bucket + radius; ++b) {
      emit_int(kDateTag, false, b);
    }
  }
}

// Walks every distinct string reachable from `token` by up to
// `max_distance` single-character deletions (the token itself included).
// Empty cores are skipped: a pair that could only collide on the empty
// variant has edit distance >= max(len_a, len_b), far below any θ of
// interest, and the empty block would join every short token together.
template <typename Emit>
void ForEachDeletionVariant(const std::string& token, size_t max_distance,
                            Emit&& emit) {
  emit(token);
  std::vector<std::string> frontier{token};
  std::unordered_set<std::string> seen{token};
  for (size_t depth = 0; depth < max_distance; ++depth) {
    std::vector<std::string> next;
    for (const std::string& s : frontier) {
      if (s.size() <= 1) continue;
      for (size_t i = 0; i < s.size(); ++i) {
        std::string variant;
        variant.reserve(s.size() - 1);
        variant.append(s, 0, i);
        variant.append(s, i + 1, std::string::npos);
        if (seen.insert(variant).second) {
          emit(variant);
          next.push_back(std::move(variant));
        }
      }
    }
    frontier = std::move(next);
  }
}

uint64_t MixIntKey(char tag, bool negative, int64_t bucket) {
  return MixInt(tag, static_cast<uint64_t>(bucket) * 2 +
                         static_cast<uint64_t>(negative));
}

// Posting layout: (right_index << 4) | short_flag << 3 | min(attr_index, 7).
// The short flag marks values no longer than single_gram_value_length; a
// gram collision between two short values counts double toward
// min_gram_matches (see Probe).
constexpr uint32_t kPostingShortBit = 1u << 3;

uint8_t ChannelOf(char tag) {
  switch (tag) {
    case kValueTag:
      return kBlockValue;
    case kTokenTag:
      return kBlockToken;
    case kGramTag:
      return kBlockGram;
    case kDeletionTag:
      return kBlockDeletion;
    case kNumericTag:
      return kBlockNumeric;
    default:
      return kBlockDate;
  }
}

// Appends the (key hash, packed posting) entries of right entity `r` —
// shared by the chunked Build() extraction and the AddRights() delta path
// so both derive the exact same entry multiset per entity.
void AppendEntityEntries(const PreparedEntity& right, uint32_t r,
                         const BlockingOptions& options,
                         const sim::SimilarityOptions& sim,
                         ProbeScratch* scratch,
                         std::vector<TaggedKeyHash>* keys,
                         std::vector<std::pair<uint64_t, uint32_t>>* entries) {
  for (size_t a = 0; a < right.attributes.size(); ++a) {
    const uint32_t attr_slot =
        static_cast<uint32_t>(a < kCellAttrCap - 1 ? a : kCellAttrCap - 1);
    const bool is_short = right.attributes[a].value.lowered.size() <=
                          options.single_gram_value_length;
    const uint32_t posting =
        (r << 4) | (is_short ? kPostingShortBit : 0u) | attr_slot;
    keys->clear();
    AppendBlockKeyHashes(right.attributes[a].value, options, sim,
                         /*probe_neighbors=*/false, scratch, keys);
    // The same key can repeat within one value (duplicate grams); post it
    // once.
    std::sort(keys->begin(), keys->end(),
              [](const TaggedKeyHash& a, const TaggedKeyHash& b) {
                return a.hash < b.hash;
              });
    auto end = std::unique(keys->begin(), keys->end(),
                           [](const TaggedKeyHash& a, const TaggedKeyHash& b) {
                             return a.hash == b.hash;
                           });
    for (auto it = keys->begin(); it != end; ++it) {
      entries->emplace_back(it->hash, posting);
    }
  }
}

}  // namespace

void AppendBlockKeys(const PreparedValue& value,
                     const BlockingOptions& options,
                     const sim::SimilarityOptions& sim, bool probe_neighbors,
                     std::vector<std::string>* keys) {
  ForEachValueKey(
      value, options, sim, probe_neighbors,
      [keys](char tag, std::string_view body) {
        keys->push_back(MakeKey(tag, body));
      },
      [keys](char tag, bool negative, int64_t bucket) {
        std::string body;
        body.push_back(negative ? '-' : '+');
        body += std::to_string(bucket);
        keys->push_back(MakeKey(tag, body));
      });
  for (const std::string& token : value.tokens) {
    keys->push_back(MakeKey(kTokenTag, token));
    if (token.size() <= options.max_deletion_token_length) {
      ForEachDeletionVariant(token, options.max_deletion_distance,
                             [keys](const std::string& variant) {
                               keys->push_back(
                                   MakeKey(kDeletionTag, variant));
                             });
    }
  }
}

void AppendBlockKeyHashes(const PreparedValue& value,
                          const BlockingOptions& options,
                          const sim::SimilarityOptions& sim,
                          bool probe_neighbors, ProbeScratch* scratch,
                          std::vector<TaggedKeyHash>* keys) {
  ForEachValueKey(
      value, options, sim, probe_neighbors,
      [keys](char tag, std::string_view body) {
        keys->push_back({HashKey(tag, body), ChannelOf(tag)});
      },
      [keys](char tag, bool negative, int64_t bucket) {
        keys->push_back({MixIntKey(tag, negative, bucket), ChannelOf(tag)});
      });
  // Token and deletion-variant keys never depend on probe_neighbors, so
  // they are memoized per token: the deletion-variant expansion is the
  // expensive part of key generation, and real data sets repeat tokens
  // across entities constantly.
  for (const std::string& token : value.tokens) {
    auto [it, inserted] = scratch->token_memo_.try_emplace(token);
    if (inserted) {
      std::vector<TaggedKeyHash>& memo = it->second;
      memo.push_back({HashKey(kTokenTag, token), kBlockToken});
      if (token.size() <= options.max_deletion_token_length) {
        ForEachDeletionVariant(token, options.max_deletion_distance,
                               [&memo](const std::string& variant) {
                                 memo.push_back(
                                     {HashKey(kDeletionTag, variant),
                                      kBlockDeletion});
                               });
      }
    }
    keys->insert(keys->end(), it->second.begin(), it->second.end());
  }
}

BlockingIndex BlockingIndex::Build(const std::vector<PreparedEntity>& rights,
                                   const BlockingOptions& options,
                                   const sim::SimilarityOptions& sim,
                                   ThreadPool* pool) {
  BlockingIndex index;
  index.options_ = options;
  index.sim_ = sim;
  index.num_rights_ = static_cast<uint32_t>(rights.size());

  // Key extraction, sharded into chunks of right entities. Each chunk keeps
  // its own scratch (the token memo carries across entities within a chunk —
  // real data sets repeat tokens constantly) and sorts its own run, so the
  // merge below only has to interleave sorted runs.
  const size_t n = rights.size();
  size_t num_chunks = 1;
  if (pool != nullptr && pool->num_threads() > 1) {
    num_chunks = std::min<size_t>(
        std::max<size_t>(n, 1),
        static_cast<size_t>(pool->num_threads()) * 4);
  }
  const size_t chunk_size = n == 0 ? 1 : (n + num_chunks - 1) / num_chunks;
  std::vector<std::pair<size_t, size_t>> chunks;
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    chunks.emplace_back(begin, std::min(n, begin + chunk_size));
  }
  std::vector<std::vector<Entry>> runs(chunks.size());

  auto extract_chunk = [&](size_t c) {
    std::vector<Entry>& entries = runs[c];
    ProbeScratch scratch;
    std::vector<TaggedKeyHash> keys;
    for (size_t r = chunks[c].first; r < chunks[c].second; ++r) {
      AppendEntityEntries(rights[r], static_cast<uint32_t>(r), options, sim,
                          &scratch, &keys, &entries);
    }
    std::sort(entries.begin(), entries.end());
  };

  const bool parallel = pool != nullptr && chunks.size() > 1;
  if (parallel) {
    pool->ParallelFor(chunks.size(), 1, [&](size_t begin, size_t end) {
      for (size_t c = begin; c < end; ++c) extract_chunk(c);
    });
  } else {
    for (size_t c = 0; c < chunks.size(); ++c) extract_chunk(c);
  }

  // Pairwise merge rounds over the sorted runs. std::merge is stable and the
  // multiset of entries is thread-count-independent, so the final sorted
  // sequence — and everything derived from it — is identical to the serial
  // build's global sort.
  while (runs.size() > 1) {
    std::vector<std::vector<Entry>> merged((runs.size() + 1) / 2);
    auto merge_pair = [&](size_t m) {
      if (2 * m + 1 < runs.size()) {
        std::vector<Entry>& a = runs[2 * m];
        std::vector<Entry>& b = runs[2 * m + 1];
        merged[m].reserve(a.size() + b.size());
        std::merge(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(merged[m]));
      } else {
        merged[m] = std::move(runs[2 * m]);
      }
    };
    if (parallel && merged.size() > 1) {
      pool->ParallelFor(merged.size(), 1, [&](size_t begin, size_t end) {
        for (size_t m = begin; m < end; ++m) merge_pair(m);
      });
    } else {
      for (size_t m = 0; m < merged.size(); ++m) merge_pair(m);
    }
    runs = std::move(merged);
  }
  std::vector<Entry> entries =
      runs.empty() ? std::vector<Entry>{} : std::move(runs.front());

  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  index.AssignFromEntries(entries);
  return index;
}

void BlockingIndex::ResetFilter(size_t distinct_keys) {
  size_t bits = 512;
  while (bits < distinct_keys * 8) bits <<= 1;
  key_filter_.assign(bits / 64, 0);
  key_filter_mask_ = bits - 1;
}

void BlockingIndex::AssignFromEntries(const std::vector<Entry>& entries) {
  // CSR layout: group by hash, postings sorted within each block (the
  // posting packs the right-entity index in its high bits, so the pair sort
  // orders each block by entity).
  postings_.clear();
  postings_.reserve(entries.size());
  size_t distinct = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == 0 || entries[i].first != entries[i - 1].first) ++distinct;
  }
  block_count_ = distinct;
  ResetFilter(distinct);
  for (const Entry& entry : entries) FilterInsert(entry.first);
  size_t table_size = 16;
  while (table_size < distinct * 2) table_size <<= 1;
  table_.assign(table_size, Slot{});
  table_mask_ = table_size - 1;
  for (size_t i = 0; i < entries.size();) {
    size_t j = i;
    while (j < entries.size() && entries[j].first == entries[i].first) {
      postings_.push_back(entries[j].second);
      ++j;
    }
    size_t slot = entries[i].first & table_mask_;
    while (table_[slot].len != 0) {
      slot = (slot + 1) & table_mask_;
    }
    table_[slot] = Slot{entries[i].first, static_cast<uint32_t>(i),
                        static_cast<uint32_t>(j - i)};
    i = j;
  }
}

void BlockingIndex::AddRights(const std::vector<PreparedEntity>& rights,
                              size_t first_new) {
  num_rights_ = static_cast<uint32_t>(rights.size());
  if (first_new >= rights.size()) return;
  // Serial extraction: ingest deltas are small by construction, and a
  // fixed extraction order keeps the grown index bit-identical at any
  // engine thread count.
  ProbeScratch scratch;
  std::vector<TaggedKeyHash> keys;
  std::vector<Entry> fresh;
  for (size_t r = first_new; r < rights.size(); ++r) {
    AppendEntityEntries(rights[r], static_cast<uint32_t>(r), options_, sim_,
                        &scratch, &keys, &fresh);
  }
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  // New rights have indices disjoint from everything already posted (CSR
  // and sidecar alike), so appending + merging cannot create duplicates.
  const size_t old_size = pending_.size();
  pending_.insert(pending_.end(), fresh.begin(), fresh.end());
  std::inplace_merge(pending_.begin(), pending_.begin() + old_size,
                     pending_.end());
  // Keep the key filter covering the sidecar. Entry count over-estimates
  // distinct keys, so the load check is conservative; a merge rebuilds the
  // filter exactly (AssignFromEntries).
  if ((block_count_ + pending_.size()) * 8 > key_filter_mask_ + 1) {
    ResetFilter(block_count_ + pending_.size());
    for (const Slot& slot : table_) {
      if (slot.len != 0) FilterInsert(slot.hash);
    }
    for (const Entry& entry : pending_) FilterInsert(entry.first);
  } else {
    for (const Entry& entry : fresh) FilterInsert(entry.first);
  }
  MaybeMergePending();
}

void BlockingIndex::MaybeMergePending() {
  if (pending_.empty()) return;
  if (pending_.size() <=
      options_.pending_merge_threshold + postings_.size() / 8) {
    return;
  }
  // Recover the globally sorted entry sequence underlying the CSR without
  // sorting: block begin offsets partition postings_ in ascending hash
  // order (AssignFromEntries assigns them sequentially over the hash-sorted
  // input), so scattering each block to its own begin offset reconstructs
  // the sequence in one pass.
  std::vector<Entry> base(postings_.size());
  for (const Slot& slot : table_) {
    for (uint32_t k = 0; k < slot.len; ++k) {
      base[slot.begin + k] = Entry(slot.hash, postings_[slot.begin + k]);
    }
  }
  std::vector<Entry> merged;
  merged.reserve(base.size() + pending_.size());
  std::merge(base.begin(), base.end(), pending_.begin(), pending_.end(),
             std::back_inserter(merged));
  pending_.clear();
  AssignFromEntries(merged);
  ++merge_count_;
}

void BlockingIndex::ResetScratch(ProbeScratch* scratch) const {
  // Reset the previous probe's state. Buffer sizes only change when the
  // scratch first meets this index (or a differently-sized one), so the
  // steady state clears just the touched cells.
  const size_t want_cells = static_cast<size_t>(num_rights_) * kCellCount;
  if (scratch->seen_.size() != num_rights_ ||
      scratch->cell_channels_.size() != want_cells) {
    scratch->seen_.assign(num_rights_, 0);
    scratch->union_channels_.assign(num_rights_, 0);
    scratch->gram_counts_.assign(num_rights_, 0);
    scratch->cell_channels_.assign(want_cells, 0);
  } else {
    for (uint32_t r : scratch->touched_) {
      scratch->seen_[r] = 0;
      scratch->union_channels_[r] = 0;
      scratch->gram_counts_[r] = 0;
      std::memset(&scratch->cell_channels_[static_cast<size_t>(r) *
                                           kCellCount],
                  0, kCellCount);
    }
  }
  scratch->touched_.clear();
}

void BlockingIndex::ProbeAttr(const std::vector<TaggedKeyHash>& keys,
                              size_t attr_slot, bool left_is_short,
                              uint32_t min_posting,
                              ProbeScratch* scratch) const {
  // Dense per-cell accumulation: O(postings touched), no string compares.
  for (const TaggedKeyHash& key : keys) {
    // Most probe keys have no postings at all; one bit test skips them.
    if (!FilterMaybeContains(key.hash)) continue;
    auto accumulate = [&](uint32_t posting) {
      const uint32_t r = posting >> 4;
      if (!scratch->seen_[r]) {
        scratch->seen_[r] = 1;
        scratch->touched_.push_back(r);
      }
      scratch->union_channels_[r] |= key.channel;
      if (key.channel == kBlockGram && scratch->gram_counts_[r] < 254) {
        // Between two short values a single shared gram is already
        // meaningful (their gram sets are tiny), so it counts double and
        // clears min_gram_matches = 2 on its own.
        scratch->gram_counts_[r] += static_cast<uint8_t>(
            left_is_short && (posting & kPostingShortBit) ? 2 : 1);
      }
      scratch->cell_channels_[static_cast<size_t>(r) * kCellCount +
                              attr_slot * kCellAttrCap + (posting & 7)] |=
          key.channel;
    };
    if (!table_.empty()) {
      size_t slot = key.hash & table_mask_;
      while (table_[slot].len != 0 && table_[slot].hash != key.hash) {
        slot = (slot + 1) & table_mask_;
      }
      if (table_[slot].len != 0) {
        const uint32_t* block = postings_.data() + table_[slot].begin;
        const uint32_t* block_end = block + table_[slot].len;
        if (min_posting != 0) {
          block = std::lower_bound(block, block_end, min_posting);
        }
        for (; block != block_end; ++block) accumulate(*block);
      }
    }
    if (!pending_.empty()) {
      auto it = std::lower_bound(pending_.begin(), pending_.end(),
                                 Entry{key.hash, min_posting});
      for (; it != pending_.end() && it->first == key.hash; ++it) {
        accumulate(it->second);
      }
    }
  }
}

void BlockingIndex::FinishProbe(ProbeScratch* scratch) const {
  std::sort(scratch->touched_.begin(), scratch->touched_.end());
  // Gram-only candidates below the collision threshold are dropped (and
  // their scratch state cleared now — the entry reset only walks touched_).
  if (options_.min_gram_matches > 1) {
    auto out_it = scratch->touched_.begin();
    for (uint32_t r : scratch->touched_) {
      const bool keep =
          (scratch->union_channels_[r] & ~kBlockGram) != 0 ||
          scratch->gram_counts_[r] >= options_.min_gram_matches;
      if (keep) {
        *out_it++ = r;
      } else {
        scratch->seen_[r] = 0;
        scratch->union_channels_[r] = 0;
        scratch->gram_counts_[r] = 0;
        std::memset(
            &scratch->cell_channels_[static_cast<size_t>(r) * kCellCount], 0,
            kCellCount);
      }
    }
    scratch->touched_.erase(out_it, scratch->touched_.end());
  }
}

void BlockingIndex::Probe(const PreparedEntity& left, ProbeScratch* scratch,
                          uint32_t min_right) const {
  ResetScratch(scratch);
  if (table_.empty() && pending_.empty()) return;
  // Postings pack the right index in their high bits, so filtering a sorted
  // block (or sidecar range) to rights >= min_right is one lower_bound.
  const uint32_t min_posting = min_right << 4;

  std::vector<TaggedKeyHash>& keys = scratch->keys_;
  for (size_t a = 0; a < left.attributes.size(); ++a) {
    const size_t attr_slot = a < kCellAttrCap - 1 ? a : kCellAttrCap - 1;
    const bool left_is_short = left.attributes[a].value.lowered.size() <=
                               options_.single_gram_value_length;
    keys.clear();
    AppendBlockKeyHashes(left.attributes[a].value, options_, sim_,
                         /*probe_neighbors=*/true, scratch, &keys);
    // Dedup so each block is walked once per probing value.
    std::sort(keys.begin(), keys.end(),
              [](const TaggedKeyHash& a, const TaggedKeyHash& b) {
                return a.hash != b.hash ? a.hash < b.hash
                                        : a.channel < b.channel;
              });
    keys.erase(std::unique(keys.begin(), keys.end(),
                           [](const TaggedKeyHash& a, const TaggedKeyHash& b) {
                             return a.hash == b.hash &&
                                    a.channel == b.channel;
                           }),
               keys.end());
    ProbeAttr(keys, attr_slot, left_is_short, min_posting, scratch);
  }
  FinishProbe(scratch);
}

PreparedProbe BlockingIndex::PrepareProbe(
    const PreparedEntity& left, ProbeScratch* scratch) const {
  PreparedProbe prepared;
  prepared.attrs.resize(left.attributes.size());
  for (size_t a = 0; a < left.attributes.size(); ++a) {
    PreparedProbe::Attr& attr = prepared.attrs[a];
    attr.is_short = left.attributes[a].value.lowered.size() <=
                    options_.single_gram_value_length;
    AppendBlockKeyHashes(left.attributes[a].value, options_, sim_,
                         /*probe_neighbors=*/true, scratch, &attr.keys);
    std::sort(attr.keys.begin(), attr.keys.end(),
              [](const TaggedKeyHash& a, const TaggedKeyHash& b) {
                return a.hash != b.hash ? a.hash < b.hash
                                        : a.channel < b.channel;
              });
    attr.keys.erase(
        std::unique(attr.keys.begin(), attr.keys.end(),
                    [](const TaggedKeyHash& a, const TaggedKeyHash& b) {
                      return a.hash == b.hash && a.channel == b.channel;
                    }),
        attr.keys.end());
  }
  return prepared;
}

void BlockingIndex::Probe(const PreparedProbe& probe, ProbeScratch* scratch,
                          uint32_t min_right) const {
  ResetScratch(scratch);
  if (table_.empty() && pending_.empty()) return;
  const uint32_t min_posting = min_right << 4;
  for (size_t a = 0; a < probe.attrs.size(); ++a) {
    const size_t attr_slot = a < kCellAttrCap - 1 ? a : kCellAttrCap - 1;
    ProbeAttr(probe.attrs[a].keys, attr_slot, probe.attrs[a].is_short,
              min_posting, scratch);
  }
  FinishProbe(scratch);
}

void BlockingIndex::Candidates(const PreparedEntity& left,
                               ProbeScratch* scratch,
                               std::vector<uint32_t>* out,
                               std::vector<uint8_t>* channels) const {
  Probe(left, scratch);
  out->clear();
  channels->clear();
  out->reserve(scratch->touched_.size());
  channels->reserve(scratch->touched_.size());
  for (uint32_t r : scratch->touched_) {
    const uint8_t* cells = scratch->cell_channels(r);
    uint8_t mask = 0;
    for (size_t c = 0; c < kCellCount; ++c) mask |= cells[c];
    out->push_back(r);
    channels->push_back(mask);
  }
}

void BlockingIndex::Candidates(const PreparedEntity& left,
                               std::vector<uint32_t>* out) const {
  ProbeScratch scratch;
  std::vector<uint8_t> channels;
  Candidates(left, &scratch, out, &channels);
}

uint64_t BlockingIndex::Fingerprint() const {
  // Commutative sum over per-entry mixes: each (key hash, posting) pair
  // contributes the same term whether it lives in a CSR block or in the
  // pending sidecar, and the table layout never enters, so equal
  // fingerprints mean equal logical indexes (modulo hash collisions)
  // regardless of how the index was grown.
  uint64_t sum = 0;
  uint64_t count = 0;
  auto add = [&](uint64_t hash, uint32_t posting) {
    sum += MixInt('f', hash ^ MixInt('p', posting));
    ++count;
  };
  for (const Slot& slot : table_) {
    for (uint32_t k = 0; k < slot.len; ++k) {
      add(slot.hash, postings_[slot.begin + k]);
    }
  }
  for (const Entry& entry : pending_) add(entry.first, entry.second);
  auto combine = [](uint64_t h, uint64_t v) {
    h ^= MixInt('f', v) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  uint64_t h = combine(kFnvOffset, num_rights_);
  h = combine(h, count);
  h = combine(h, sum);
  return h;
}

}  // namespace alex::core
