#include "core/policy.h"

#include "common/logging.h"

namespace alex::core {

FeatureId EpsilonGreedyPolicy::ChooseAction(PairId state,
                                            const FeatureSet& actions,
                                            Rng* rng) const {
  ALEX_CHECK(!actions.empty()) << "state " << state << " has no actions";
  auto it = greedy_.find(state);
  if (it == greedy_.end() || rng->NextBool(epsilon_)) {
    // Arbitrary policy before the first improvement; afterwards the ε
    // branch explores uniformly.
    size_t idx = static_cast<size_t>(rng->NextBounded(actions.size()));
    return actions.features[idx].first;
  }
  return it->second;
}

double EpsilonGreedyPolicy::ActionProbability(PairId state,
                                              const FeatureSet& actions,
                                              FeatureId action) const {
  bool present = false;
  for (const auto& [f, score] : actions.features) {
    if (f == action) present = true;
  }
  if (!present) return 0.0;
  auto it = greedy_.find(state);
  double uniform = 1.0 / static_cast<double>(actions.size());
  if (it == greedy_.end()) return uniform;
  if (it->second == action) {
    return (1.0 - epsilon_) + epsilon_ * uniform;
  }
  return epsilon_ * uniform;
}

void EpsilonGreedyPolicy::SetGreedy(PairId state, FeatureId action) {
  greedy_[state] = action;
}

std::optional<FeatureId> EpsilonGreedyPolicy::GreedyAction(
    PairId state) const {
  auto it = greedy_.find(state);
  if (it == greedy_.end()) return std::nullopt;
  return it->second;
}

}  // namespace alex::core
