// First-visit Monte Carlo policy evaluation (paper §4.4.1).
//
// Q(s, a) is estimated as the average of the returns collected for the
// state-action pair. When feedback arrives on a link s' during an episode,
// and this is the first visit of s' in the episode, the feedback value is
// appended to the Returns of every state-action pair that led to s' (the
// full generation chain, per the paper's s1 → s2 → s3 example).
#ifndef ALEX_CORE_MC_LEARNER_H_
#define ALEX_CORE_MC_LEARNER_H_

#include <cstdint>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/feature_space.h"

namespace alex::core {

struct StateAction {
  PairId state = kInvalidPairId;
  FeatureId action = kInvalidFeatureId;

  friend bool operator==(const StateAction& a, const StateAction& b) {
    return a.state == b.state && a.action == b.action;
  }
};

struct StateActionHash {
  size_t operator()(const StateAction& sa) const {
    return std::hash<uint64_t>{}((static_cast<uint64_t>(sa.state) << 32) |
                                 sa.action);
  }
};

class McLearner {
 public:
  McLearner() = default;

  // Appends `reward` to Returns(s, a) and remembers the state for the next
  // policy-improvement pass.
  void AppendReturn(const StateAction& sa, double reward);

  // Average of Returns(s, a). `defined` reports whether any return exists.
  double Q(const StateAction& sa, bool* defined = nullptr) const;

  // argmax_a Q(state, a) over the actions in `actions` that have defined
  // Q values; kInvalidFeatureId when none is defined.
  FeatureId ArgmaxAction(PairId state, const FeatureSet& actions) const;

  // Episode lifecycle: clears the first-visit marks.
  void BeginEpisode();

  // First-visit test-and-set for a link within the current episode.
  bool IsFirstVisit(PairId pair);

  // States whose Returns changed since the last TakeStatesToImprove() call;
  // the engine improves the policy at exactly these states (Algorithm 1,
  // lines 24-33).
  std::vector<PairId> TakeStatesToImprove();

  // Scratch-buffer variant: clears `out` and fills it with the same states,
  // reusing its capacity across episodes.
  void TakeStatesToImprove(std::vector<PairId>* out);

  // Cross-state feature prior: the average return collected by an action
  // (feature) across ALL states of the partition. §4.2 observes that ALEX
  // "can learn that this feature is not distinctive and avoid exploring
  // around it in the future"; the prior generalizes that lesson to states
  // that have not been visited yet.
  double FeaturePrior(FeatureId feature, bool* defined = nullptr) const;

  // argmax over `actions` of FeaturePrior (undefined priors count as 0),
  // tie-breaking toward the higher similarity score.
  FeatureId ArgmaxFeaturePrior(const FeatureSet& actions) const;

  // (feature -> {average return, sample count}) for every feature that has
  // collected at least one return; used for learning reports.
  std::unordered_map<FeatureId, std::pair<double, uint64_t>> FeaturePriors()
      const;

  size_t return_count() const { return returns_.size(); }

  // Export every (state-action, sum, count) accumulator (for persistence).
  std::vector<std::tuple<StateAction, double, uint64_t>> ExportReturns()
      const;

  // Restores one accumulator (adds to any existing one) and updates the
  // cross-state feature prior consistently.
  void RestoreReturn(const StateAction& sa, double sum, uint64_t count);

 private:
  struct Accumulated {
    double sum = 0.0;
    uint64_t count = 0;
  };
  std::unordered_map<StateAction, Accumulated, StateActionHash> returns_;
  std::unordered_map<FeatureId, Accumulated> feature_returns_;
  std::unordered_set<PairId> visited_this_episode_;
  std::unordered_set<PairId> states_to_improve_;
};

}  // namespace alex::core

#endif  // ALEX_CORE_MC_LEARNER_H_
