#include "core/feature_space.h"

#include <algorithm>
#include <array>

#include "common/logging.h"

namespace alex::core {
namespace {

std::string PairKey(const std::string& left_iri,
                    const std::string& right_iri) {
  std::string key;
  key.reserve(left_iri.size() + right_iri.size() + 1);
  key += left_iri;
  key += '\x01';
  key += right_iri;
  return key;
}

// Similarity channels a blocked cell can still clear θ through, from the
// bitmask of block-key channels its two values shared. Equality needs a
// shared whole-value key; Jaccard >= θ needs a shared token (or two
// token-free equal values, which share a value key); the numeric and date
// block covers are complete for scores >= θ. The Levenshtein channel's
// cover (tokens' deletion variants + whole-value q-grams) is the one
// heuristic piece — the same heuristic that admits the pair as a candidate
// at all; `blocking.enabled = false` remains the exact fallback.
constexpr SimilarityChannelMask MaskForChannels(uint8_t channels) {
  SimilarityChannelMask mask;
  mask.equality = channels & kBlockValue;
  mask.jaccard = channels & (kBlockToken | kBlockValue);
  mask.levenshtein = channels & (kBlockValue | kBlockToken | kBlockGram |
                                 kBlockDeletion);
  mask.numeric = channels & kBlockNumeric;
  mask.dates = channels & (kBlockDate | kBlockValue);
  return mask;
}

// All 2^6 channel combinations, precomputed.
constexpr std::array<SimilarityChannelMask, 64> kMaskByChannels = [] {
  std::array<SimilarityChannelMask, 64> table{};
  for (size_t c = 0; c < table.size(); ++c) {
    table[c] = MaskForChannels(static_cast<uint8_t>(c));
  }
  return table;
}();

// Serves BuildFeatureSetWithMasks from one candidate's 8x8 per-cell channel
// bitmasks (see ProbeScratch::cell_channels).
struct CellMaskProvider {
  const uint8_t* cells;
  SimilarityChannelMask At(size_t left_attr, size_t right_attr) const {
    const size_t a =
        left_attr < kCellAttrCap - 1 ? left_attr : kCellAttrCap - 1;
    const size_t b =
        right_attr < kCellAttrCap - 1 ? right_attr : kCellAttrCap - 1;
    return kMaskByChannels[cells[a * kCellAttrCap + b] & 63u];
  }
};

}  // namespace

PairId FeatureSpace::FindPair(const std::string& left_iri,
                              const std::string& right_iri) const {
  auto it = pair_by_iris_.find(PairKey(left_iri, right_iri));
  if (it == pair_by_iris_.end()) return kInvalidPairId;
  return it->second;
}

FeatureSpace::ScoreSpan FeatureSpace::PairsInRangeSpan(FeatureId feature,
                                                       double lo,
                                                       double hi) const {
  if (feature_begin_.empty() ||
      static_cast<size_t>(feature) + 1 >= feature_begin_.size()) {
    return {};
  }
  const ScoreEntry* base = score_entries_.data();
  const ScoreEntry* begin = base + feature_begin_[feature];
  const ScoreEntry* end = base + feature_begin_[feature + 1];
  // Score-only comparators: every entry with score == lo (or == hi) is
  // inside the closed interval regardless of its PairId.
  const ScoreEntry* first = std::lower_bound(
      begin, end, lo,
      [](const ScoreEntry& e, double v) { return e.score < v; });
  const ScoreEntry* last = std::upper_bound(
      first, end, hi,
      [](double v, const ScoreEntry& e) { return v < e.score; });
  return ScoreSpan(first, static_cast<size_t>(last - first));
}

void FeatureSpace::PairsInRange(FeatureId feature, double lo, double hi,
                                std::vector<PairId>* out) const {
  out->clear();
  ScoreSpan span = PairsInRangeSpan(feature, lo, hi);
  out->reserve(span.size());
  for (const ScoreEntry& e : span) out->push_back(e.pair);
}

std::vector<PairId> FeatureSpace::PairsInRange(FeatureId feature, double lo,
                                               double hi) const {
  std::vector<PairId> out;
  PairsInRange(feature, lo, hi, &out);
  return out;
}

void FeatureSpace::RemapFeatures(const std::vector<FeatureId>& old_to_new) {
  for (EntityPairFeatures& pair : pairs_) {
    auto& features = pair.features.features;
    for (auto& [id, score] : features) id = old_to_new[id];
    std::sort(features.begin(), features.end());
  }
  BuildScoreIndex();
}

void FeatureSpace::BuildIndexes() {
  pair_by_iris_.reserve(pairs_.size());
  for (PairId id = 0; id < pairs_.size(); ++id) {
    pair_by_iris_.emplace(PairKey(LeftIri(id), RightIri(id)), id);
  }
  BuildScoreIndex();
}

void FeatureSpace::BuildScoreIndex() {
  // Counting sort into a CSR arena: count entries per feature, prefix-sum
  // into offsets, scatter, then sort each feature's bucket by (score, pair).
  // Exactly-sized allocations — no incremental map/vector growth.
  FeatureId max_feature = 0;
  size_t total = 0;
  for (const EntityPairFeatures& pair : pairs_) {
    for (const auto& [feature, score] : pair.features.features) {
      max_feature = std::max(max_feature, feature);
      ++total;
    }
  }
  if (total == 0) {
    score_entries_.clear();
    feature_begin_.clear();
    return;
  }
  feature_begin_.assign(static_cast<size_t>(max_feature) + 2, 0);
  for (const EntityPairFeatures& pair : pairs_) {
    for (const auto& [feature, score] : pair.features.features) {
      ++feature_begin_[feature + 1];
    }
  }
  for (size_t f = 1; f < feature_begin_.size(); ++f) {
    feature_begin_[f] += feature_begin_[f - 1];
  }
  score_entries_.assign(total, ScoreEntry{});
  std::vector<uint32_t> next(feature_begin_.begin(), feature_begin_.end() - 1);
  for (PairId id = 0; id < pairs_.size(); ++id) {
    for (const auto& [feature, score] : pairs_[id].features.features) {
      score_entries_[next[feature]++] = ScoreEntry{score, id};
    }
  }
  for (size_t f = 0; f + 1 < feature_begin_.size(); ++f) {
    std::sort(score_entries_.begin() + feature_begin_[f],
              score_entries_.begin() + feature_begin_[f + 1]);
  }
}

std::shared_ptr<const RightContext> RightContext::Prepare(
    const rdf::TripleStore& right,
    const std::vector<rdf::TermId>& right_subjects,
    const FeatureSpaceOptions& options, ThreadPool* pool) {
  auto context = std::make_shared<RightContext>();
  context->entities.resize(right_subjects.size());
  auto prepare_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      context->entities[i] =
          PrepareEntity(right, right_subjects[i], options.max_attributes);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(right_subjects.size(), 16, prepare_range);
  } else {
    prepare_range(0, right_subjects.size());
  }
  if (options.blocking.enabled) {
    context->index = BlockingIndex::Build(context->entities, options.blocking,
                                          options.similarity, pool);
  }
  return context;
}

FeatureSpace FeatureSpace::Build(const rdf::TripleStore& left,
                                 const std::vector<rdf::TermId>& left_subjects,
                                 std::shared_ptr<const RightContext> right,
                                 FeatureCatalog* catalog,
                                 const FeatureSpaceOptions& options,
                                 ThreadPool* pool) {
  FeatureSpace space;
  space.catalog_ = catalog;
  space.right_ = std::move(right);
  space.left_entities_.reserve(left_subjects.size());
  for (rdf::TermId subject : left_subjects) {
    space.left_entities_.push_back(
        PrepareEntity(left, subject, options.max_attributes));
  }
  const std::vector<PreparedEntity>& rights = space.right_->entities;
  space.total_pair_count_ =
      static_cast<uint64_t>(left_subjects.size()) * rights.size();
  const BlockingIndex* index =
      options.blocking.enabled && !space.right_->index.empty()
          ? &space.right_->index
          : nullptr;

  // Shard the left-entity loop. Each chunk scores its pairs into a private
  // slot through a private CatalogMemo (the shared catalog mutex is only
  // touched on first-seen keys); slots are then concatenated in chunk order,
  // so the surviving pairs — and therefore PairIds — always come out in
  // (left, right) lexicographic order, whatever the thread count.
  struct ChunkResult {
    std::vector<EntityPairFeatures> pairs;
    uint64_t scored = 0;
  };
  const size_t n = space.left_entities_.size();
  size_t num_chunks = 1;
  if (pool != nullptr && pool->num_threads() > 1) {
    num_chunks =
        std::min<size_t>(std::max<size_t>(n, 1),
                         static_cast<size_t>(pool->num_threads()) * 4);
  }
  const size_t chunk_size = n == 0 ? 1 : (n + num_chunks - 1) / num_chunks;
  std::vector<std::pair<size_t, size_t>> chunks;
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    chunks.emplace_back(begin, std::min(n, begin + chunk_size));
  }
  std::vector<ChunkResult> results(chunks.size());

  auto build_chunk = [&](size_t c) {
    ChunkResult& result = results[c];
    CatalogMemo memo(catalog);
    ProbeScratch scratch;
    for (size_t i = chunks[c].first; i < chunks[c].second; ++i) {
      const PreparedEntity& left_entity = space.left_entities_[i];
      auto keep = [&](uint32_t j, FeatureSet features) {
        ++result.scored;
        if (features.empty()) return;  // dropped by θ-filtering
        EntityPairFeatures pair;
        pair.left_index = static_cast<uint32_t>(i);
        pair.right_index = j;
        pair.features = std::move(features);
        result.pairs.push_back(std::move(pair));
      };
      if (index != nullptr) {
        index->Probe(left_entity, &scratch);
        for (uint32_t j : scratch.touched()) {
          keep(j, BuildFeatureSetWithMasks(
                      left_entity, rights[j], &memo, options.theta,
                      options.similarity,
                      CellMaskProvider{scratch.cell_channels(j)}));
        }
      } else {
        for (uint32_t j = 0; j < rights.size(); ++j) {
          keep(j, BuildFeatureSet(left_entity, rights[j], &memo,
                                  options.theta, options.similarity));
        }
      }
    }
  };

  if (pool != nullptr && chunks.size() > 1) {
    pool->ParallelFor(chunks.size(), 1, [&](size_t begin, size_t end) {
      for (size_t c = begin; c < end; ++c) build_chunk(c);
    });
  } else {
    for (size_t c = 0; c < chunks.size(); ++c) build_chunk(c);
  }

  for (ChunkResult& result : results) {
    space.scored_pair_count_ += result.scored;
    for (EntityPairFeatures& pair : result.pairs) {
      ALEX_CHECK(space.pairs_.size() < kInvalidPairId);
      space.pairs_.push_back(std::move(pair));
    }
  }
  space.BuildIndexes();
  return space;
}

FeatureSpace FeatureSpace::Build(const rdf::TripleStore& left,
                                 const std::vector<rdf::TermId>& left_subjects,
                                 const rdf::TripleStore& right,
                                 const std::vector<rdf::TermId>& right_subjects,
                                 FeatureCatalog* catalog,
                                 const FeatureSpaceOptions& options,
                                 ThreadPool* pool) {
  return Build(left, left_subjects,
               RightContext::Prepare(right, right_subjects, options), catalog,
               options, pool);
}

}  // namespace alex::core
