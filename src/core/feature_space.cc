#include "core/feature_space.h"

#include <algorithm>

#include "common/logging.h"

namespace alex::core {
namespace {

std::string PairKey(const std::string& left_iri,
                    const std::string& right_iri) {
  std::string key;
  key.reserve(left_iri.size() + right_iri.size() + 1);
  key += left_iri;
  key += '\x01';
  key += right_iri;
  return key;
}

}  // namespace

PairId FeatureSpace::FindPair(const std::string& left_iri,
                              const std::string& right_iri) const {
  auto it = pair_by_iris_.find(PairKey(left_iri, right_iri));
  if (it == pair_by_iris_.end()) return kInvalidPairId;
  return it->second;
}

std::vector<PairId> FeatureSpace::PairsInRange(FeatureId feature, double lo,
                                               double hi) const {
  std::vector<PairId> out;
  auto it = by_feature_.find(feature);
  if (it == by_feature_.end()) return out;
  const std::vector<ScoreEntry>& entries = it->second;
  auto first = std::lower_bound(entries.begin(), entries.end(),
                                ScoreEntry{lo, 0});
  for (auto e = first; e != entries.end() && e->score <= hi; ++e) {
    out.push_back(e->pair);
  }
  return out;
}

void FeatureSpace::BuildIndexes() {
  pair_by_iris_.reserve(pairs_.size());
  for (PairId id = 0; id < pairs_.size(); ++id) {
    pair_by_iris_.emplace(PairKey(LeftIri(id), RightIri(id)), id);
    for (const auto& [feature, score] : pairs_[id].features.features) {
      by_feature_[feature].push_back(ScoreEntry{score, id});
    }
  }
  for (auto& [feature, entries] : by_feature_) {
    std::sort(entries.begin(), entries.end());
  }
}

FeatureSpace FeatureSpace::Build(const rdf::TripleStore& left,
                                 const std::vector<rdf::TermId>& left_subjects,
                                 const rdf::TripleStore& right,
                                 const std::vector<rdf::TermId>& right_subjects,
                                 FeatureCatalog* catalog,
                                 const FeatureSpaceOptions& options) {
  FeatureSpace space;
  space.catalog_ = catalog;
  space.left_entities_.reserve(left_subjects.size());
  for (rdf::TermId subject : left_subjects) {
    space.left_entities_.push_back(
        PrepareEntity(left, subject, options.max_attributes));
  }
  space.right_entities_.reserve(right_subjects.size());
  for (rdf::TermId subject : right_subjects) {
    space.right_entities_.push_back(
        PrepareEntity(right, subject, options.max_attributes));
  }
  space.total_pair_count_ = static_cast<uint64_t>(left_subjects.size()) *
                            right_subjects.size();
  for (uint32_t i = 0; i < space.left_entities_.size(); ++i) {
    for (uint32_t j = 0; j < space.right_entities_.size(); ++j) {
      FeatureSet features =
          BuildFeatureSet(space.left_entities_[i], space.right_entities_[j],
                          catalog, options.theta, options.similarity);
      if (features.empty()) continue;  // dropped by θ-filtering
      ALEX_CHECK(space.pairs_.size() < kInvalidPairId);
      EntityPairFeatures pair;
      pair.left_index = i;
      pair.right_index = j;
      pair.features = std::move(features);
      space.pairs_.push_back(std::move(pair));
    }
  }
  space.BuildIndexes();
  return space;
}

}  // namespace alex::core
