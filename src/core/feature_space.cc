#include "core/feature_space.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/logging.h"

namespace alex::core {
namespace {

std::string PairKey(const std::string& left_iri,
                    const std::string& right_iri) {
  std::string key;
  key.reserve(left_iri.size() + right_iri.size() + 1);
  key += left_iri;
  key += '\x01';
  key += right_iri;
  return key;
}

// Similarity channels a blocked cell can still clear θ through, from the
// bitmask of block-key channels its two values shared. Equality needs a
// shared whole-value key; Jaccard >= θ needs a shared token (or two
// token-free equal values, which share a value key); the numeric and date
// block covers are complete for scores >= θ. The Levenshtein channel's
// cover (tokens' deletion variants + whole-value q-grams) is the one
// heuristic piece — the same heuristic that admits the pair as a candidate
// at all; `blocking.enabled = false` remains the exact fallback.
constexpr SimilarityChannelMask MaskForChannels(uint8_t channels) {
  SimilarityChannelMask mask;
  mask.equality = channels & kBlockValue;
  mask.jaccard = channels & (kBlockToken | kBlockValue);
  mask.levenshtein = channels & (kBlockValue | kBlockToken | kBlockGram |
                                 kBlockDeletion);
  mask.numeric = channels & kBlockNumeric;
  mask.dates = channels & (kBlockDate | kBlockValue);
  return mask;
}

// All 2^6 channel combinations, precomputed.
constexpr std::array<SimilarityChannelMask, 64> kMaskByChannels = [] {
  std::array<SimilarityChannelMask, 64> table{};
  for (size_t c = 0; c < table.size(); ++c) {
    table[c] = MaskForChannels(static_cast<uint8_t>(c));
  }
  return table;
}();

// Serves BuildFeatureSetWithMasks from one candidate's 8x8 per-cell channel
// bitmasks (see ProbeScratch::cell_channels).
struct CellMaskProvider {
  const uint8_t* cells;
  SimilarityChannelMask At(size_t left_attr, size_t right_attr) const {
    const size_t a =
        left_attr < kCellAttrCap - 1 ? left_attr : kCellAttrCap - 1;
    const size_t b =
        right_attr < kCellAttrCap - 1 ? right_attr : kCellAttrCap - 1;
    return kMaskByChannels[cells[a * kCellAttrCap + b] & 63u];
  }
};

}  // namespace

PairId FeatureSpace::FindPair(const std::string& left_iri,
                              const std::string& right_iri) const {
  auto it = pair_by_iris_.find(PairKey(left_iri, right_iri));
  if (it == pair_by_iris_.end()) return kInvalidPairId;
  return it->second;
}

namespace {

// Score-only comparators: every entry with score == lo (or == hi) is
// inside the closed interval regardless of its PairId.
inline const ScoreEntry* LowerByScore(const ScoreEntry* begin,
                                      const ScoreEntry* end, double lo) {
  return std::lower_bound(
      begin, end, lo,
      [](const ScoreEntry& e, double v) { return e.score < v; });
}

inline const ScoreEntry* UpperByScore(const ScoreEntry* begin,
                                      const ScoreEntry* end, double hi) {
  return std::upper_bound(
      begin, end, hi,
      [](double v, const ScoreEntry& e) { return v < e.score; });
}

}  // namespace

FeatureSpace::ScoreSpan FeatureSpace::PairsInRangeSpan(FeatureId feature,
                                                       double lo,
                                                       double hi) const {
  if (static_cast<size_t>(feature) >= NumFeatures()) return {};
  const ScoreEntry* base = score_entries_.data();
  const ScoreEntry* begin = base + feature_begin_[feature];
  const ScoreEntry* end = base + feature_live_end_[feature];
  const ScoreEntry* first = LowerByScore(begin, end, lo);
  const ScoreEntry* last = UpperByScore(first, end, hi);
  const std::vector<ScoreEntry>& pending = pending_[feature];
  const ScoreEntry* pfirst = LowerByScore(
      pending.data(), pending.data() + pending.size(), lo);
  const ScoreEntry* plast =
      UpperByScore(pfirst, pending.data() + pending.size(), hi);
  // A bucket without tombstones skips the per-entry liveness load entirely.
  const uint8_t* alive =
      dead_in_bucket_[feature] == 0 ? nullptr : pair_alive_.data();
  return ScoreSpan(first, last, pfirst, plast, alive);
}

void FeatureSpace::PairsInRange(FeatureId feature, double lo, double hi,
                                std::vector<PairId>* out) const {
  out->clear();
  for (const ScoreEntry& e : PairsInRangeSpan(feature, lo, hi)) {
    out->push_back(e.pair);
  }
}

std::vector<PairId> FeatureSpace::PairsInRange(FeatureId feature, double lo,
                                               double hi) const {
  std::vector<PairId> out;
  PairsInRange(feature, lo, hi, &out);
  return out;
}

void FeatureSpace::RemapFeatures(const std::vector<FeatureId>& old_to_new) {
  for (EntityPairFeatures& pair : pairs_) {
    auto& features = pair.features.features;
    for (auto& [id, score] : features) id = old_to_new[id];
    std::sort(features.begin(), features.end());
  }
  BuildScoreIndex();
}

void FeatureSpace::ApplyDelta(const std::vector<PairId>& added,
                              const std::vector<PairId>& removed) {
  for (PairId id : removed) {
    if (!pair_alive_[id]) continue;
    pair_alive_[id] = 0;
    --live_pair_count_;
    for (const auto& [feature, score] : pairs_[id].features.features) {
      const ScoreEntry entry{score, id};
      std::vector<ScoreEntry>& pending = pending_[feature];
      auto it = std::lower_bound(pending.begin(), pending.end(), entry);
      if (it != pending.end() && *it == entry) {
        // The entry never made it back into the CSR arena; un-queue it.
        pending.erase(it);
      } else {
        // Its arena slot becomes a tombstone (probes skip non-live pairs).
        ++dead_in_bucket_[feature];
        MaybeCompactBucket(feature);
      }
    }
  }
  for (PairId id : added) {
    if (pair_alive_[id]) continue;
    pair_alive_[id] = 1;
    ++live_pair_count_;
    for (const auto& [feature, score] : pairs_[id].features.features) {
      const ScoreEntry entry{score, id};
      const ScoreEntry* begin =
          score_entries_.data() + feature_begin_[feature];
      const ScoreEntry* end =
          score_entries_.data() + feature_live_end_[feature];
      const ScoreEntry* slot = std::lower_bound(begin, end, entry);
      if (slot != end && *slot == entry) {
        // The tombstoned slot is still in the arena; the liveness flip
        // above already resurrected it.
        --dead_in_bucket_[feature];
      } else {
        // Compaction reclaimed the slot; queue a sorted pending insert.
        std::vector<ScoreEntry>& pending = pending_[feature];
        pending.insert(
            std::lower_bound(pending.begin(), pending.end(), entry), entry);
        MaybeCompactBucket(feature);
      }
    }
  }
}

void FeatureSpace::SetLiveness(const std::vector<PairId>& added,
                               const std::vector<PairId>& removed) {
  for (PairId id : removed) {
    if (!pair_alive_[id]) continue;
    pair_alive_[id] = 0;
    --live_pair_count_;
  }
  for (PairId id : added) {
    if (pair_alive_[id]) continue;
    pair_alive_[id] = 1;
    ++live_pair_count_;
  }
}

void FeatureSpace::RebuildIndexes() { BuildScoreIndex(); }

void FeatureSpace::MarkAllLive() {
  pair_alive_.assign(pairs_.size(), 1);
  live_pair_count_ = pairs_.size();
  BuildScoreIndex();
}

uint64_t FeatureSpace::Fingerprint() const {
  // FNV-1a over the logical live contents, in PairId order. Tombstones,
  // pending buffers and compaction history never enter the hash.
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  mix(live_pair_count_);
  for (PairId id = 0; id < pairs_.size(); ++id) {
    if (!pair_alive_[id]) continue;
    const EntityPairFeatures& pair = pairs_[id];
    mix(id);
    mix(pair.left_index);
    mix(pair.right_index);
    mix(pair.features.features.size());
    for (const auto& [feature, score] : pair.features.features) {
      mix(feature);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(score));
      std::memcpy(&bits, &score, sizeof(bits));
      mix(bits);
    }
  }
  return hash;
}

size_t FeatureSpace::tombstone_count() const {
  size_t total = 0;
  for (uint32_t dead : dead_in_bucket_) total += dead;
  return total;
}

size_t FeatureSpace::pending_entry_count() const {
  size_t total = 0;
  for (const std::vector<ScoreEntry>& pending : pending_) {
    total += pending.size();
  }
  return total;
}

void FeatureSpace::MaybeCompactBucket(FeatureId feature) {
  const size_t dirt = dead_in_bucket_[feature] + pending_[feature].size();
  const size_t live =
      feature_live_end_[feature] - feature_begin_[feature] -
      dead_in_bucket_[feature] + pending_[feature].size();
  if (dirt > compaction_threshold_ + live / 8) CompactBucket(feature);
}

void FeatureSpace::CompactBucket(FeatureId feature) {
  // Merge the bucket's live entries and its pending inserts back into the
  // arena. Under link churn alone live + pending never exceeds the
  // bucket's Build-time capacity (every pair with this feature has a
  // Build-time slot); entries added by Grow() can overflow it — those stay
  // in the pending sidecar until MaybeCompactArena() rebuilds the arena.
  const size_t begin = feature_begin_[feature];
  const size_t live_end = feature_live_end_[feature];
  std::vector<ScoreEntry>& pending = pending_[feature];
  const size_t live_in_bucket = live_end - begin - dead_in_bucket_[feature];
  if (begin + live_in_bucket + pending.size() > feature_begin_[feature + 1]) {
    return;
  }
  compact_scratch_.clear();
  for (size_t i = begin; i < live_end; ++i) {
    if (pair_alive_[score_entries_[i].pair]) {
      compact_scratch_.push_back(score_entries_[i]);
    }
  }
  const size_t merged = compact_scratch_.size() + pending.size();
  std::merge(compact_scratch_.begin(), compact_scratch_.end(),
             pending.begin(), pending.end(), score_entries_.begin() + begin);
  feature_live_end_[feature] = static_cast<uint32_t>(begin + merged);
  dead_in_bucket_[feature] = 0;
  pending.clear();
  ++compaction_count_;
}

void FeatureSpace::ResetMaintenanceState() {
  const size_t num_features = NumFeatures();
  feature_live_end_.assign(num_features, 0);
  for (size_t f = 0; f < num_features; ++f) {
    feature_live_end_[f] = feature_begin_[f + 1];
  }
  dead_in_bucket_.assign(num_features, 0);
  pending_.assign(num_features, {});
  for (PairId id = 0; id < pairs_.size(); ++id) {
    if (pair_alive_[id]) continue;
    for (const auto& [feature, score] : pairs_[id].features.features) {
      ++dead_in_bucket_[feature];
    }
  }
}

void FeatureSpace::BuildIndexes() {
  pair_by_iris_.reserve(pairs_.size());
  for (PairId id = 0; id < pairs_.size(); ++id) {
    pair_by_iris_.emplace(PairKey(LeftIri(id), RightIri(id)), id);
  }
  BuildScoreIndex();
}

void FeatureSpace::BuildScoreIndex() {
  // Counting sort into a CSR arena: count entries per feature, prefix-sum
  // into offsets, scatter, then sort each feature's bucket by (score, pair).
  // Exactly-sized allocations — no incremental map/vector growth. Every
  // pair's entries are materialized regardless of liveness — non-live pairs
  // become tombstones, which keeps the arena at full capacity so later
  // resurrections and compactions always fit in place.
  if (pair_alive_.size() != pairs_.size()) {
    pair_alive_.assign(pairs_.size(), 1);
    live_pair_count_ = pairs_.size();
  }
  grown_entries_ = 0;  // every entry gets an arena slot below
  FeatureId max_feature = 0;
  size_t total = 0;
  for (const EntityPairFeatures& pair : pairs_) {
    for (const auto& [feature, score] : pair.features.features) {
      max_feature = std::max(max_feature, feature);
      ++total;
    }
  }
  if (total == 0) {
    score_entries_.clear();
    feature_begin_.clear();
    ResetMaintenanceState();
    return;
  }
  feature_begin_.assign(static_cast<size_t>(max_feature) + 2, 0);
  for (const EntityPairFeatures& pair : pairs_) {
    for (const auto& [feature, score] : pair.features.features) {
      ++feature_begin_[feature + 1];
    }
  }
  for (size_t f = 1; f < feature_begin_.size(); ++f) {
    feature_begin_[f] += feature_begin_[f - 1];
  }
  score_entries_.assign(total, ScoreEntry{});
  std::vector<uint32_t> next(feature_begin_.begin(), feature_begin_.end() - 1);
  for (PairId id = 0; id < pairs_.size(); ++id) {
    for (const auto& [feature, score] : pairs_[id].features.features) {
      score_entries_[next[feature]++] = ScoreEntry{score, id};
    }
  }
  for (size_t f = 0; f + 1 < feature_begin_.size(); ++f) {
    std::sort(score_entries_.begin() + feature_begin_[f],
              score_entries_.begin() + feature_begin_[f + 1]);
  }
  ResetMaintenanceState();
}

std::shared_ptr<const RightContext> RightContext::Prepare(
    const rdf::TripleStore& right,
    const std::vector<rdf::TermId>& right_subjects,
    const FeatureSpaceOptions& options, ThreadPool* pool) {
  auto context = std::make_shared<RightContext>();
  context->entities.resize(right_subjects.size());
  auto prepare_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      context->entities[i] =
          PrepareEntity(right, right_subjects[i], options.max_attributes);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(right_subjects.size(), 16, prepare_range);
  } else {
    prepare_range(0, right_subjects.size());
  }
  if (options.blocking.enabled) {
    context->index = BlockingIndex::Build(context->entities, options.blocking,
                                          options.similarity, pool);
  }
  return context;
}

FeatureSpace FeatureSpace::Build(const rdf::TripleStore& left,
                                 const std::vector<rdf::TermId>& left_subjects,
                                 std::shared_ptr<const RightContext> right,
                                 FeatureCatalog* catalog,
                                 const FeatureSpaceOptions& options,
                                 ThreadPool* pool) {
  FeatureSpace space;
  space.catalog_ = catalog;
  space.right_ = std::move(right);
  space.left_entities_.reserve(left_subjects.size());
  for (rdf::TermId subject : left_subjects) {
    space.left_entities_.push_back(
        PrepareEntity(left, subject, options.max_attributes));
  }
  const std::vector<PreparedEntity>& rights = space.right_->entities;
  space.total_pair_count_ =
      static_cast<uint64_t>(left_subjects.size()) * rights.size();
  const BlockingIndex* index =
      options.blocking.enabled && !space.right_->index.empty()
          ? &space.right_->index
          : nullptr;

  // Shard the left-entity loop. Each chunk scores its pairs into a private
  // slot through a private CatalogMemo (the shared catalog mutex is only
  // touched on first-seen keys); slots are then concatenated in chunk order,
  // so the surviving pairs — and therefore PairIds — always come out in
  // (left, right) lexicographic order, whatever the thread count.
  struct ChunkResult {
    std::vector<EntityPairFeatures> pairs;
    uint64_t scored = 0;
  };
  const size_t n = space.left_entities_.size();
  size_t num_chunks = 1;
  if (pool != nullptr && pool->num_threads() > 1) {
    num_chunks =
        std::min<size_t>(std::max<size_t>(n, 1),
                         static_cast<size_t>(pool->num_threads()) * 4);
  }
  const size_t chunk_size = n == 0 ? 1 : (n + num_chunks - 1) / num_chunks;
  std::vector<std::pair<size_t, size_t>> chunks;
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    chunks.emplace_back(begin, std::min(n, begin + chunk_size));
  }
  std::vector<ChunkResult> results(chunks.size());

  auto build_chunk = [&](size_t c) {
    ChunkResult& result = results[c];
    CatalogMemo memo(catalog);
    ProbeScratch scratch;
    for (size_t i = chunks[c].first; i < chunks[c].second; ++i) {
      const PreparedEntity& left_entity = space.left_entities_[i];
      auto keep = [&](uint32_t j, FeatureSet features) {
        ++result.scored;
        if (features.empty()) return;  // dropped by θ-filtering
        EntityPairFeatures pair;
        pair.left_index = static_cast<uint32_t>(i);
        pair.right_index = j;
        pair.features = std::move(features);
        result.pairs.push_back(std::move(pair));
      };
      if (index != nullptr) {
        index->Probe(left_entity, &scratch);
        for (uint32_t j : scratch.touched()) {
          keep(j, BuildFeatureSetWithMasks(
                      left_entity, rights[j], &memo, options.theta,
                      options.similarity,
                      CellMaskProvider{scratch.cell_channels(j)}));
        }
      } else {
        for (uint32_t j = 0; j < rights.size(); ++j) {
          keep(j, BuildFeatureSet(left_entity, rights[j], &memo,
                                  options.theta, options.similarity));
        }
      }
    }
  };

  if (pool != nullptr && chunks.size() > 1) {
    pool->ParallelFor(chunks.size(), 1, [&](size_t begin, size_t end) {
      for (size_t c = begin; c < end; ++c) build_chunk(c);
    });
  } else {
    for (size_t c = 0; c < chunks.size(); ++c) build_chunk(c);
  }

  for (ChunkResult& result : results) {
    space.scored_pair_count_ += result.scored;
    for (EntityPairFeatures& pair : result.pairs) {
      ALEX_CHECK(space.pairs_.size() < kInvalidPairId);
      space.pairs_.push_back(std::move(pair));
    }
  }
  space.compaction_threshold_ = options.compaction_threshold;
  space.pair_alive_.assign(space.pairs_.size(), 1);
  space.live_pair_count_ = space.pairs_.size();
  space.BuildIndexes();
  return space;
}

FeatureSpace FeatureSpace::Build(const rdf::TripleStore& left,
                                 const std::vector<rdf::TermId>& left_subjects,
                                 const rdf::TripleStore& right,
                                 const std::vector<rdf::TermId>& right_subjects,
                                 FeatureCatalog* catalog,
                                 const FeatureSpaceOptions& options,
                                 ThreadPool* pool) {
  return Build(left, left_subjects,
               RightContext::Prepare(right, right_subjects, options), catalog,
               options, pool);
}

FeatureSpace::GrowthResult FeatureSpace::Grow(
    const rdf::TripleStore& left,
    const std::vector<rdf::TermId>& new_left_subjects,
    const std::vector<uint32_t>* candidate_old_lefts, size_t old_right_count,
    FeatureCatalog* catalog, const FeatureSpaceOptions& options,
    bool rebuild_indexes, const BlockingIndex* delta_index) {
  GrowthResult result;
  const std::vector<PreparedEntity>& rights = right_->entities;
  const size_t old_left_count = left_entities_.size();
  const BlockingIndex* index =
      options.blocking.enabled && !right_->index.empty() ? &right_->index
                                                         : nullptr;
  total_pair_count_ +=
      static_cast<uint64_t>(old_left_count) *
          (rights.size() - old_right_count) +
      static_cast<uint64_t>(new_left_subjects.size()) * rights.size();

  for (rdf::TermId subject : new_left_subjects) {
    left_entities_.push_back(
        PrepareEntity(left, subject, options.max_attributes));
  }

  // Delta discovery runs serially on purpose: ingest deltas are small, and
  // a fixed enumeration order makes new PairIds — and the catalog's intern
  // order for first-seen feature keys — canonical across thread counts AND
  // across the incremental / rebuild maintenance modes.
  CatalogMemo memo(catalog);
  ProbeScratch scratch;
  std::vector<EntityPairFeatures> fresh;
  // Probe-key extraction dominates a restricted probe's cost, so the
  // incremental path reuses cached keys per left entity (valid across
  // epochs: keys depend only on the options). The rebuild baseline probes
  // from scratch — it is the O(store) pass the incremental mode is measured
  // against. Both produce bit-identical scratch state.
  const bool use_probe_cache = !rebuild_indexes && index != nullptr;
  if (use_probe_cache && probe_cache_.size() < left_entities_.size()) {
    probe_cache_.resize(left_entities_.size());
  }
  // Which index the cached probes hit: phase 1 swaps in the delta index
  // (new rights only, globally numbered) when the engine supplied one.
  const BlockingIndex* probe_target = index;
  auto score_left = [&](size_t i, uint32_t min_right) {
    const PreparedEntity& left_entity = left_entities_[i];
    auto keep = [&](uint32_t j, FeatureSet features) {
      ++scored_pair_count_;
      if (features.empty()) return;  // dropped by θ-filtering
      EntityPairFeatures pair;
      pair.left_index = static_cast<uint32_t>(i);
      pair.right_index = j;
      pair.features = std::move(features);
      fresh.push_back(std::move(pair));
    };
    if (use_probe_cache) {
      if (i >= probe_cache_.size()) probe_cache_.resize(left_entities_.size());
      if (!probe_cache_[i]) {
        probe_cache_[i] = index->PrepareProbe(left_entity, &scratch);
      }
      probe_target->Probe(*probe_cache_[i], &scratch, min_right);
      for (uint32_t j : scratch.touched()) {
        keep(j, BuildFeatureSetWithMasks(
                    left_entity, rights[j], &memo, options.theta,
                    options.similarity,
                    CellMaskProvider{scratch.cell_channels(j)}));
      }
    } else if (index != nullptr) {
      index->Probe(left_entity, &scratch, min_right);
      for (uint32_t j : scratch.touched()) {
        keep(j, BuildFeatureSetWithMasks(
                    left_entity, rights[j], &memo, options.theta,
                    options.similarity,
                    CellMaskProvider{scratch.cell_channels(j)}));
      }
    } else {
      for (uint32_t j = min_right; j < rights.size(); ++j) {
        keep(j, BuildFeatureSet(left_entity, rights[j], &memo, options.theta,
                                options.similarity));
      }
    }
  };
  // Phase 1: old lefts against the new rights only (min_right restriction —
  // the probe state equals a full probe restricted to the new rights).
  if (old_right_count < rights.size()) {
    const uint32_t first_new = static_cast<uint32_t>(old_right_count);
    if (use_probe_cache && delta_index != nullptr) {
      ALEX_CHECK(delta_index->num_rights() == rights.size());
      probe_target = delta_index;
    }
    if (index != nullptr && candidate_old_lefts != nullptr) {
      for (uint32_t i : *candidate_old_lefts) score_left(i, first_new);
    } else {
      for (size_t i = 0; i < old_left_count; ++i) score_left(i, first_new);
    }
    probe_target = index;
  }
  // Phase 2: new lefts against every right.
  for (size_t i = old_left_count; i < left_entities_.size(); ++i) {
    score_left(i, 0);
  }

  const PairId first_new_pair = static_cast<PairId>(pairs_.size());
  for (EntityPairFeatures& pair : fresh) {
    ALEX_CHECK(pairs_.size() < kInvalidPairId);
    const PairId id = static_cast<PairId>(pairs_.size());
    pairs_.push_back(std::move(pair));
    pair_alive_.push_back(1);  // new pairs join the explorable frontier
    ++live_pair_count_;
    pair_by_iris_.emplace(PairKey(LeftIri(id), RightIri(id)), id);
  }
  result.new_pairs = pairs_.size() - first_new_pair;

  if (rebuild_indexes) {
    BuildScoreIndex();
    return result;
  }
  // Incremental: park each new entry in its feature's pending sidecar.
  // Features first seen in this delta get a zero-capacity bucket at the
  // arena's end; their entries stay pending until the next arena rebuild.
  const uint32_t arena_end = static_cast<uint32_t>(score_entries_.size());
  // feature_begin_ is one longer than the per-bucket vectors (CSR offsets);
  // seed that invariant when the space was built with no entries at all.
  if (feature_begin_.empty()) feature_begin_.push_back(arena_end);
  for (PairId id = first_new_pair; id < pairs_.size(); ++id) {
    for (const auto& [feature, score] : pairs_[id].features.features) {
      while (feature_begin_.size() < static_cast<size_t>(feature) + 2) {
        feature_begin_.push_back(arena_end);
        feature_live_end_.push_back(arena_end);
        dead_in_bucket_.push_back(0);
        pending_.emplace_back();
      }
      const ScoreEntry entry{score, id};
      std::vector<ScoreEntry>& pending = pending_[feature];
      pending.insert(std::lower_bound(pending.begin(), pending.end(), entry),
                     entry);
      ++grown_entries_;
      ++result.overflow_entries;
      MaybeCompactBucket(feature);
    }
  }
  return result;
}

void FeatureSpace::PrepareForwardProbes() {
  if (right_ == nullptr || right_->index.empty()) return;
  ProbeScratch scratch;
  if (probe_cache_.size() < left_entities_.size()) {
    probe_cache_.resize(left_entities_.size());
  }
  for (size_t i = 0; i < left_entities_.size(); ++i) {
    if (!probe_cache_[i]) {
      probe_cache_[i] =
          right_->index.PrepareProbe(left_entities_[i], &scratch);
    }
  }
}

void FeatureSpace::MaybeCompactArena() {
  if (grown_entries_ == 0) return;
  if (grown_entries_ > compaction_threshold_ + score_entries_.size() / 8) {
    BuildScoreIndex();  // resets grown_entries_: every entry gets a slot
    ++arena_compaction_count_;
  }
}

}  // namespace alex::core
