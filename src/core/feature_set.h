// Feature sets: the state representation of ALEX (paper §4.1).
//
// A link between entities E1 (left data set) and E2 (right data set) is
// represented by a feature set. A *feature* is a pair of predicates
// (p1 from E1, p2 from E2); its *value* is the similarity of the objects
// associated with those predicates. The feature set is built from the
// similarity matrix between the two entities' attributes: scores below the
// threshold θ are discarded, then the maximum of each row (if E1 has more
// attributes) or each column (otherwise) is kept.
//
// Feature keys are interned into a FeatureCatalog shared by all partitions
// so that FeatureIds are globally comparable.
#ifndef ALEX_CORE_FEATURE_SET_H_
#define ALEX_CORE_FEATURE_SET_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/entity_view.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "similarity/value_similarity.h"

namespace alex::core {

using FeatureId = uint32_t;
inline constexpr FeatureId kInvalidFeatureId = 0xffffffffu;

// A pair of predicate IRIs: (left data set predicate, right data set
// predicate).
struct FeatureKey {
  std::string left_predicate;
  std::string right_predicate;

  friend bool operator==(const FeatureKey& a, const FeatureKey& b) {
    return a.left_predicate == b.left_predicate &&
           a.right_predicate == b.right_predicate;
  }
};

// Thread-safe interner for FeatureKeys.
class FeatureCatalog {
 public:
  FeatureCatalog() = default;
  FeatureCatalog(const FeatureCatalog&) = delete;
  FeatureCatalog& operator=(const FeatureCatalog&) = delete;

  FeatureId Intern(const FeatureKey& key);
  // `id` must be valid.
  FeatureKey Key(FeatureId id) const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<FeatureKey> keys_;
  std::unordered_map<std::string, FeatureId> index_;
};

// Sparse feature set: (feature, score) entries sorted by feature id.
struct FeatureSet {
  std::vector<std::pair<FeatureId, double>> features;

  // Score of `id`, or 0 if absent.
  double Get(FeatureId id) const;
  bool Has(FeatureId id) const { return Get(id) > 0.0; }
  bool empty() const { return features.empty(); }
  size_t size() const { return features.size(); }

  // Inserts or maxes the score for `id`, keeping the vector sorted.
  void SetMax(FeatureId id, double score);
};

// A value preprocessed for fast repeated similarity computation: lowercased
// lexical form, sorted unique tokens, numeric/date interpretations.
struct PreparedValue {
  bool is_iri = false;
  rdf::LiteralType type = rdf::LiteralType::kString;
  std::string lowered;              // lowercase comparison text
  std::vector<std::string> tokens;  // sorted unique lowercase tokens
  bool has_numeric = false;
  double numeric = 0.0;
  int64_t date_days = 0;
};

struct PreparedAttribute {
  std::string predicate;  // predicate IRI
  PreparedValue value;
};

// An entity with preprocessed attributes, detached from its TripleStore.
struct PreparedEntity {
  std::string iri;
  rdf::TermId subject = rdf::kInvalidTermId;
  std::vector<PreparedAttribute> attributes;
};

// Preprocesses `term` for similarity computation.
PreparedValue PrepareValue(const rdf::Term& term);

// Materializes and preprocesses the entity rooted at `subject`. Attributes
// beyond `max_attributes` are dropped (0 = unlimited).
PreparedEntity PrepareEntity(const rdf::TripleStore& store,
                             rdf::TermId subject, size_t max_attributes = 0);

// Allocation-light similarity on prepared values; mirrors
// sim::ValueSimilarity semantics.
double PreparedSimilarity(const PreparedValue& a, const PreparedValue& b,
                          const sim::SimilarityOptions& options = {});

// Builds the feature set of the pair (left, right) per §4.1: similarity
// matrix, θ-filtering, row/column maxima. Scores < theta do not appear.
FeatureSet BuildFeatureSet(const PreparedEntity& left,
                           const PreparedEntity& right,
                           FeatureCatalog* catalog, double theta,
                           const sim::SimilarityOptions& options = {});

}  // namespace alex::core

#endif  // ALEX_CORE_FEATURE_SET_H_
