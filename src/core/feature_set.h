// Feature sets: the state representation of ALEX (paper §4.1).
//
// A link between entities E1 (left data set) and E2 (right data set) is
// represented by a feature set. A *feature* is a pair of predicates
// (p1 from E1, p2 from E2); its *value* is the similarity of the objects
// associated with those predicates. The feature set is built from the
// similarity matrix between the two entities' attributes: scores below the
// threshold θ are discarded, then the maximum of each row (if E1 has more
// attributes) or each column (otherwise) is kept.
//
// Feature keys are interned into a FeatureCatalog shared by all partitions
// so that FeatureIds are globally comparable.
#ifndef ALEX_CORE_FEATURE_SET_H_
#define ALEX_CORE_FEATURE_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/entity_view.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "similarity/value_similarity.h"

namespace alex::core {

using FeatureId = uint32_t;
inline constexpr FeatureId kInvalidFeatureId = 0xffffffffu;

// A pair of predicate IRIs: (left data set predicate, right data set
// predicate).
struct FeatureKey {
  std::string left_predicate;
  std::string right_predicate;

  friend bool operator==(const FeatureKey& a, const FeatureKey& b) {
    return a.left_predicate == b.left_predicate &&
           a.right_predicate == b.right_predicate;
  }
};

// Thread-safe interner for FeatureKeys.
class FeatureCatalog {
 public:
  FeatureCatalog() = default;
  FeatureCatalog(const FeatureCatalog&) = delete;
  FeatureCatalog& operator=(const FeatureCatalog&) = delete;

  FeatureId Intern(const FeatureKey& key);
  // `id` must be valid.
  FeatureKey Key(FeatureId id) const;
  size_t size() const;

  // Reassigns FeatureIds so keys are in (left, right) lexicographic order
  // and returns the old-id -> new-id permutation. Interning order depends on
  // which worker thread first sees a key, so ids straight out of a parallel
  // build vary run to run; canonicalizing makes every id — and everything
  // keyed on ids, like ε-greedy action order — a pure function of the data.
  // Invalidates FeatureIds held elsewhere (callers remap, see
  // FeatureSpace::RemapFeatures) and the caches of existing CatalogMemos.
  std::vector<FeatureId> Canonicalize();

 private:
  mutable std::mutex mu_;
  std::vector<FeatureKey> keys_;
  std::unordered_map<std::string, FeatureId> index_;
};

// An unsynchronized FeatureKey -> FeatureId cache in front of a shared
// FeatureCatalog. Each worker thread owns one, so the catalog mutex is only
// taken the first time that worker sees a key — never in the steady-state
// hot loop. Interning the same key through any memo of the same catalog
// yields the same FeatureId (the catalog deduplicates under its lock).
class CatalogMemo {
 public:
  explicit CatalogMemo(FeatureCatalog* catalog) : catalog_(catalog) {}

  FeatureId Intern(const FeatureKey& key);

  const FeatureCatalog* catalog() const { return catalog_; }
  size_t cache_size() const { return cache_.size(); }

 private:
  FeatureCatalog* catalog_;
  std::unordered_map<std::string, FeatureId> cache_;
};

// Sparse feature set: (feature, score) entries sorted by feature id.
struct FeatureSet {
  std::vector<std::pair<FeatureId, double>> features;

  // Score of `id`, or 0 if absent.
  double Get(FeatureId id) const;
  bool Has(FeatureId id) const { return Get(id) > 0.0; }
  bool empty() const { return features.empty(); }
  size_t size() const { return features.size(); }

  // Inserts or maxes the score for `id`, keeping the vector sorted.
  void SetMax(FeatureId id, double score);
};

// A value preprocessed for fast repeated similarity computation: lowercased
// lexical form, sorted unique tokens, numeric/date interpretations.
struct PreparedValue {
  bool is_iri = false;
  rdf::LiteralType type = rdf::LiteralType::kString;
  std::string lowered;              // lowercase comparison text
  std::vector<std::string> tokens;  // sorted unique lowercase tokens
  bool has_numeric = false;
  double numeric = 0.0;
  int64_t date_days = 0;
};

struct PreparedAttribute {
  std::string predicate;  // predicate IRI
  PreparedValue value;
};

// An entity with preprocessed attributes, detached from its TripleStore.
struct PreparedEntity {
  std::string iri;
  rdf::TermId subject = rdf::kInvalidTermId;
  std::vector<PreparedAttribute> attributes;
};

// Preprocesses `term` for similarity computation.
PreparedValue PrepareValue(const rdf::Term& term);

// Materializes and preprocesses the entity rooted at `subject`. Attributes
// beyond `max_attributes` are dropped (0 = unlimited).
PreparedEntity PrepareEntity(const rdf::TripleStore& store,
                             rdf::TermId subject, size_t max_attributes = 0);

// Jaccard of two sorted-unique token vectors via a linear merge walk.
// Exported for reuse (blocking) and tests.
double SortedTokenJaccard(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

// Normalized Levenshtein similarity on pre-lowered strings with reusable
// thread-local buffers. `min_interesting` is a cutoff in similarity space:
// the result is exact whenever the true similarity is >= min_interesting;
// below the cutoff the function may return early (length-difference bound,
// Ukkonen band overflow) with some value < min_interesting. Callers that
// only compare the result against min_interesting (or take a max with a
// value >= it) therefore see identical behavior at a fraction of the cost:
// the banded inner loop does O(max(n,m) * k) work for k allowed edits
// instead of O(n * m).
double FastNormalizedLevenshtein(const std::string& a, const std::string& b,
                                 double min_interesting = 0.0);

// Which similarity channels can still matter for a pair. The blocked build
// derives this from the block-key channels the pair collided on: a channel
// whose block cover guarantees "score >= θ implies a shared key" can be
// skipped entirely when no such key was shared — the skipped score would
// have been < θ and thus filtered anyway, so the resulting feature set is
// identical. Disabled channels contribute 0.0.
struct SimilarityChannelMask {
  bool equality = true;     // exact lowered-value equality comparisons
  bool jaccard = true;      // token-set Jaccard (needs a shared token)
  bool levenshtein = true;  // whole-value edit distance
  bool numeric = true;      // numeric tolerance channel
  bool dates = true;        // date distance channel

  static constexpr SimilarityChannelMask All() { return {}; }
};

// Allocation-light similarity on prepared values; mirrors
// sim::ValueSimilarity semantics. `min_interesting` propagates a caller-side
// cutoff (e.g. θ, or the best row score so far): the result is exact when
// it is >= min_interesting and may be an under-approximation below it.
// `mask` suppresses channels that provably cannot reach min_interesting.
double PreparedSimilarity(const PreparedValue& a, const PreparedValue& b,
                          const sim::SimilarityOptions& options = {},
                          double min_interesting = 0.0,
                          const SimilarityChannelMask& mask = {});

// Mask provider returning the same mask for every cell of the similarity
// matrix (the exhaustive build, and any caller with a pair-level mask).
struct UniformMaskProvider {
  SimilarityChannelMask mask;
  SimilarityChannelMask At(size_t, size_t) const { return mask; }
};

// Builds the feature set of the pair (left, right) per §4.1: similarity
// matrix, θ-filtering, row/column maxima. Scores < theta do not appear.
// `Interner` is FeatureCatalog or CatalogMemo; `MaskProvider` yields the
// channel mask of each (left attr index, right attr index) cell, letting
// the blocked build skip cells whose channels provably stay below θ.
template <typename Interner, typename MaskProvider>
FeatureSet BuildFeatureSetWithMasks(const PreparedEntity& left,
                                    const PreparedEntity& right,
                                    Interner* interner, double theta,
                                    const sim::SimilarityOptions& options,
                                    const MaskProvider& masks) {
  FeatureSet set;
  const size_t n = left.attributes.size();
  const size_t m = right.attributes.size();
  if (n == 0 || m == 0) return set;
  // Row maxima when the left entity has at least as many attributes,
  // column maxima otherwise (§4.1).
  const bool rows_from_left = n >= m;
  const size_t outer = rows_from_left ? n : m;
  const size_t inner = rows_from_left ? m : n;
  for (size_t i = 0; i < outer; ++i) {
    double best = 0.0;
    size_t best_j = 0;
    for (size_t j = 0; j < inner; ++j) {
      const size_t li = rows_from_left ? i : j;
      const size_t ri = rows_from_left ? j : i;
      const PreparedAttribute& la = left.attributes[li];
      const PreparedAttribute& ra = right.attributes[ri];
      // Only scores that can still become this row's (>= θ) maximum need
      // to be exact; PreparedSimilarity may bail out early below that.
      double score = PreparedSimilarity(la.value, ra.value, options,
                                        std::max(theta, best),
                                        masks.At(li, ri));
      if (score > best) {
        best = score;
        best_j = j;
      }
    }
    if (best < theta) continue;  // θ-filtering (§6.1)
    const PreparedAttribute& la =
        left.attributes[rows_from_left ? i : best_j];
    const PreparedAttribute& ra =
        right.attributes[rows_from_left ? best_j : i];
    FeatureId id = interner->Intern(FeatureKey{la.predicate, ra.predicate});
    set.SetMax(id, best);
  }
  return set;
}

// Pair-level-mask conveniences over BuildFeatureSetWithMasks.
FeatureSet BuildFeatureSet(const PreparedEntity& left,
                           const PreparedEntity& right,
                           FeatureCatalog* catalog, double theta,
                           const sim::SimilarityOptions& options = {},
                           const SimilarityChannelMask& mask = {});

// Same, interning through a per-thread CatalogMemo instead of taking the
// catalog mutex (the parallel feature-space build uses this).
FeatureSet BuildFeatureSet(const PreparedEntity& left,
                           const PreparedEntity& right, CatalogMemo* memo,
                           double theta,
                           const sim::SimilarityOptions& options = {},
                           const SimilarityChannelMask& mask = {});

}  // namespace alex::core

#endif  // ALEX_CORE_FEATURE_SET_H_
