#include "core/engine_state.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "core/alex_engine.h"

namespace alex::core {
namespace {

void AppendLink(std::string* out, const linking::Link& link) {
  out->append(link.left);
  out->push_back('\t');
  out->append(link.right);
}

Result<linking::Link> LinkFromFields(const std::vector<std::string>& fields,
                                     size_t line_no) {
  if (fields.size() < 2 || fields[0].empty() || fields[1].empty()) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": expected left<TAB>right");
  }
  return linking::Link{fields[0], fields[1], 1.0};
}

}  // namespace

EngineState ExportEngineState(const AlexEngine& engine) {
  EngineState state;
  state.candidates = engine.CandidateLinks();
  for (const PartitionAlex& partition : engine.partitions()) {
    const FeatureSpace& space = partition.space();
    for (PairId pair : partition.blacklist()) {
      state.blacklist.push_back(
          linking::Link{space.LeftIri(pair), space.RightIri(pair), 1.0});
    }
    for (const auto& [pair, action] : partition.policy().greedy_map()) {
      EngineState::PolicyEntry entry;
      entry.state =
          linking::Link{space.LeftIri(pair), space.RightIri(pair), 1.0};
      entry.action = engine.catalog().Key(action);
      state.policy.push_back(std::move(entry));
    }
    for (const auto& [sa, sum, count] : partition.learner().ExportReturns()) {
      EngineState::ReturnEntry entry;
      entry.state = linking::Link{space.LeftIri(sa.state),
                                  space.RightIri(sa.state), 1.0};
      entry.action = engine.catalog().Key(sa.action);
      entry.sum = sum;
      entry.count = count;
      state.returns.push_back(std::move(entry));
    }
  }
  return state;
}

Status ImportEngineState(const EngineState& state, AlexEngine* engine) {
  // Replace the candidate set with the saved one.
  engine->ReplaceCandidates(state.candidates);
  for (const linking::Link& link : state.blacklist) {
    engine->RestoreBlacklistEntry(link);
  }
  for (const EngineState::PolicyEntry& entry : state.policy) {
    engine->RestorePolicyEntry(entry.state, entry.action);
  }
  for (const EngineState::ReturnEntry& entry : state.returns) {
    engine->RestoreReturnEntry(entry.state, entry.action, entry.sum,
                               entry.count);
  }
  return Status::Ok();
}

std::string WriteEngineState(const EngineState& state) {
  std::string out;
  char buffer[64];
  out += "#candidates\n";
  for (const linking::Link& link : state.candidates) {
    AppendLink(&out, link);
    out.push_back('\n');
  }
  out += "#blacklist\n";
  for (const linking::Link& link : state.blacklist) {
    AppendLink(&out, link);
    out.push_back('\n');
  }
  out += "#policy\n";
  for (const EngineState::PolicyEntry& entry : state.policy) {
    AppendLink(&out, entry.state);
    out.push_back('\t');
    out += entry.action.left_predicate;
    out.push_back('\t');
    out += entry.action.right_predicate;
    out.push_back('\n');
  }
  out += "#returns\n";
  for (const EngineState::ReturnEntry& entry : state.returns) {
    AppendLink(&out, entry.state);
    out.push_back('\t');
    out += entry.action.left_predicate;
    out.push_back('\t');
    out += entry.action.right_predicate;
    std::snprintf(buffer, sizeof(buffer), "\t%.17g\t%llu", entry.sum,
                  static_cast<unsigned long long>(entry.count));
    out += buffer;
    out.push_back('\n');
  }
  return out;
}

Result<EngineState> ParseEngineState(std::string_view text) {
  EngineState state;
  enum class Section { kNone, kCandidates, kBlacklist, kPolicy, kReturns };
  Section section = Section::kNone;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    ++line_no;
    std::string_view stripped = StripAsciiWhitespace(line);
    if (!stripped.empty()) {
      if (stripped == "#candidates") {
        section = Section::kCandidates;
      } else if (stripped == "#blacklist") {
        section = Section::kBlacklist;
      } else if (stripped == "#policy") {
        section = Section::kPolicy;
      } else if (stripped == "#returns") {
        section = Section::kReturns;
      } else if (stripped[0] == '#') {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": unknown section '" +
                                  std::string(stripped) + "'");
      } else {
        std::vector<std::string> fields = Split(std::string(stripped), '\t');
        Result<linking::Link> link = LinkFromFields(fields, line_no);
        if (!link.ok()) return link.status();
        switch (section) {
          case Section::kNone:
            return Status::ParseError("line " + std::to_string(line_no) +
                                      ": data before any section header");
          case Section::kCandidates:
            state.candidates.push_back(std::move(link).value());
            break;
          case Section::kBlacklist:
            state.blacklist.push_back(std::move(link).value());
            break;
          case Section::kPolicy: {
            if (fields.size() < 4) {
              return Status::ParseError("line " + std::to_string(line_no) +
                                        ": policy entry needs 4 fields");
            }
            EngineState::PolicyEntry entry;
            entry.state = std::move(link).value();
            entry.action = FeatureKey{fields[2], fields[3]};
            state.policy.push_back(std::move(entry));
            break;
          }
          case Section::kReturns: {
            if (fields.size() < 6) {
              return Status::ParseError("line " + std::to_string(line_no) +
                                        ": return entry needs 6 fields");
            }
            EngineState::ReturnEntry entry;
            entry.state = std::move(link).value();
            entry.action = FeatureKey{fields[2], fields[3]};
            long long count = 0;
            if (!ParseDouble(fields[4], &entry.sum) ||
                !ParseInt64(fields[5], &count) || count < 0) {
              return Status::ParseError("line " + std::to_string(line_no) +
                                        ": malformed return numbers");
            }
            entry.count = static_cast<uint64_t>(count);
            state.returns.push_back(std::move(entry));
            break;
          }
        }
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return state;
}

Status SaveEngineState(const EngineState& state, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << WriteEngineState(state);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<EngineState> LoadEngineState(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseEngineState(buf.str());
}

}  // namespace alex::core
