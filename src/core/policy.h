// The ε-greedy stochastic policy of ALEX (paper §4.4.1 / Algorithm 1).
//
// The action space of a state (a link) is the set of features of its
// feature set: "choose feature f to explore around". Before the first
// policy improvement of a state the policy is arbitrary — a uniformly
// random feature. After improvement, the greedy action is chosen with
// probability 1 − ε and a uniformly random action with probability ε, so
// π(s, a) ≥ ε / |A(s)| > 0 for every action: continuous exploration.
#ifndef ALEX_CORE_POLICY_H_
#define ALEX_CORE_POLICY_H_

#include <optional>
#include <unordered_map>

#include "common/rng.h"
#include "core/feature_space.h"

namespace alex::core {

class EpsilonGreedyPolicy {
 public:
  explicit EpsilonGreedyPolicy(double epsilon) : epsilon_(epsilon) {}

  double epsilon() const { return epsilon_; }

  // Chooses the action (feature to explore around) for `state` whose action
  // space is `actions` (must be non-empty).
  FeatureId ChooseAction(PairId state, const FeatureSet& actions,
                         Rng* rng) const;

  // Probability that ChooseAction(state) returns `action` — used by tests
  // and by the soundness property checks. Returns 0 for actions outside
  // `actions`.
  double ActionProbability(PairId state, const FeatureSet& actions,
                           FeatureId action) const;

  // Policy improvement for one state: make `action` the greedy choice.
  void SetGreedy(PairId state, FeatureId action);

  std::optional<FeatureId> GreedyAction(PairId state) const;

  size_t improved_state_count() const { return greedy_.size(); }

  // All (state -> greedy action) entries; used for learning reports.
  const std::unordered_map<PairId, FeatureId>& greedy_map() const {
    return greedy_;
  }

 private:
  double epsilon_;
  std::unordered_map<PairId, FeatureId> greedy_;
};

}  // namespace alex::core

#endif  // ALEX_CORE_POLICY_H_
