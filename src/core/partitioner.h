// Equal-size round-robin partitioning of the larger data set (paper §6.2):
// the i-th entity goes to partition i mod n. Each partition is explored
// independently against the whole smaller data set, enabling parallelism
// without communication.
#ifndef ALEX_CORE_PARTITIONER_H_
#define ALEX_CORE_PARTITIONER_H_

#include <vector>

#include "rdf/triple_store.h"

namespace alex::core {

// Splits `subjects` into `num_partitions` round-robin slices. Partitions can
// differ in size by at most one element. `num_partitions` < 1 is treated
// as 1.
std::vector<std::vector<rdf::TermId>> EqualSizePartition(
    const std::vector<rdf::TermId>& subjects, int num_partitions);

}  // namespace alex::core

#endif  // ALEX_CORE_PARTITIONER_H_
