// Candidate blocking for feature-space construction.
//
// The paper's pre-processing step (§3.2, §6.1) scores *every* pair in
// L × R and only then θ-filters ~95% of the pairs away. Record-linkage
// systems avoid that quadratic cost with blocking: an inverted index from
// cheap "block keys" to the entities that exhibit them, so that the
// expensive pairwise scoring only runs on pairs that share at least one
// block. This file implements that index over the *right* data set; the
// left entities probe it (see FeatureSpace::Build).
//
// Block keys per prepared value (see AppendBlockKeys):
//   * the whole lowered value       — exact-match channels (booleans,
//                                     date-vs-string equality, empty values)
//   * every normalized token        — covers any token-Jaccard score > 0
//   * deletion variants (≤ D       — guaranteed cover for edit distance
//     deletions) of short tokens      ≤ D; handles the typo'd values that
//                                     only match via edit distance
//   * q-grams of the whole value    — the Levenshtein channel compares
//                                     whole lowered values, so borderline
//                                     matches may share only substrings
//                                     that straddle token boundaries.
//                                     (Size-tiered: one gram length per
//                                     value-length tier; probes cover every
//                                     tier reachable under the noise-floor
//                                     length-ratio bound.)
//   * a logarithmic numeric bucket  — covers NumericSimilarity ≥ θ (the
//                                     query probes neighbor buckets)
//   * a coarse date bucket          — covers DateSimilarity ≥ θ (ditto)
//
// The numeric, date, token, boolean and exact-match similarity channels are
// fully covered: any pair scoring ≥ θ through them shares a block. The pure
// Levenshtein channel on long garbled values is covered heuristically by
// the trigram/deletion keys; FeatureSpaceOptions::blocking.enabled = false
// falls back to the exhaustive cross product, and the test suite asserts
// blocked == exhaustive on the synthetic evaluation worlds.
#ifndef ALEX_CORE_BLOCKING_H_
#define ALEX_CORE_BLOCKING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/feature_set.h"
#include "similarity/value_similarity.h"

namespace alex::core {

struct BlockingOptions {
  // When false, FeatureSpace::Build scores the full cross product (the
  // paper's literal pre-processing; also the reference for equality tests).
  bool enabled = true;
  // Size-tiered gram selection: every indexed value emits q-grams of ONE
  // length chosen by the value's own length — trigrams up to
  // trigram_value_length, `gram_length`-grams above it. (Short and
  // mid-length values can be borderline Levenshtein matches at edit rates
  // that destroy every 4-gram, e.g. 15 vs 17 chars at distance 7, while
  // long values are where trigram postings explode.) The probe side emits
  // the gram length of every tier whose value-length range intersects
  // [noise_floor * len, len / noise_floor]: no pair outside that length
  // ratio can clear the Levenshtein noise floor, so the counterpart's tier
  // is always among the probed ones. min_gram_token_length is the minimum
  // value length for the gram channel to kick in (shorter values are fully
  // covered by the token/deletion channels).
  size_t gram_length = 4;
  size_t min_gram_token_length = 3;
  size_t trigram_value_length = 18;
  // Candidates whose ONLY collisions are q-gram keys must share at least
  // this many distinct gram keys. Borderline Levenshtein matches between
  // mid-length values share a handful of intact grams; unrelated values
  // that happen to contain one common syllable share exactly one, and they
  // are the bulk of the gram channel's junk. Set to 1 to admit single-gram
  // collisions.
  uint32_t min_gram_matches = 2;
  // Exception to min_gram_matches: when BOTH values are at most this long,
  // a single shared gram counts double. Short values emit so few grams that
  // a genuine borderline match (e.g. 7 vs 10 chars at edit distance 4) can
  // have exactly one survivor.
  size_t single_gram_value_length = 12;
  // Tokens up to this length additionally emit their deletion variants
  // (every distinct string reachable by up to max_deletion_distance
  // character deletions, SymSpell-style). Two tokens within edit distance d
  // always share a variant when d <= max_deletion_distance: a substitution,
  // indel, or transposition each costs at most one deletion per side. This
  // covers the short-token typo pairs where trigrams fail (e.g. "smith" /
  // "smyth", or the distance-2 "cuglia" / "hugia").
  size_t max_deletion_token_length = 12;
  size_t max_deletion_distance = 2;
  // Incremental maintenance (AddRights): newly ingested rights post into a
  // sorted pending sidecar that probes consult alongside the CSR blocks;
  // the sidecar is merged back into the CSR once it outgrows
  // pending_merge_threshold + postings/8 — the same dirt-threshold
  // compaction pattern as FeatureSpace::ApplyDelta.
  size_t pending_merge_threshold = 1024;
};

// Appends the block keys of `value` to `*keys`. With `probe_neighbors`
// (query side) the numeric/date bucket keys also cover adjacent buckets so
// that near-equal values falling across a bucket boundary still collide.
// (Human-readable variant, used by tests; the index itself stores hashes.)
void AppendBlockKeys(const PreparedValue& value,
                     const BlockingOptions& options,
                     const sim::SimilarityOptions& sim, bool probe_neighbors,
                     std::vector<std::string>* keys);

// Which key channel a candidate collided on. A candidate's channel bitmask
// bounds the similarity channels that can lift it over θ (see
// SimilarityChannelMask in core/feature_set.h), so the scorer can skip the
// rest.
enum BlockChannel : uint8_t {
  kBlockValue = 1u << 0,     // whole lowered value (equality channels)
  kBlockToken = 1u << 1,     // normalized token
  kBlockGram = 1u << 2,      // q-gram of the whole value
  kBlockDeletion = 1u << 3,  // token deletion variant
  kBlockNumeric = 1u << 4,   // numeric magnitude bucket
  kBlockDate = 1u << 5,      // date bucket
};

// A block key as stored/probed: the FNV hash of its string form plus its
// channel. Hash collisions across distinct keys are harmless — they only
// admit extra candidates (or channel bits), never drop one.
struct TaggedKeyHash {
  uint64_t hash;
  uint8_t channel;
};

// Collisions are tracked per attribute *cell*: a posting records which
// attribute of the right entity exhibited the key, and a probe records which
// left attribute it came from, so the scorer knows exactly which cells of
// the similarity matrix can clear θ. Attributes beyond the cap share the
// last slot — their masks are unioned, which only widens what gets scored.
inline constexpr size_t kCellAttrCap = 8;
inline constexpr size_t kCellCount = kCellAttrCap * kCellAttrCap;

// Reusable scratch for repeated Probe() calls: per-token key memo (tokens
// repeat heavily across entities, and deletion-variant expansion is the
// expensive part) plus dense accumulation buffers. One per worker — not
// thread-safe, but independent instances may probe the same index
// concurrently. After Probe(), holds the candidate list and the per-cell
// channel bitmasks until the next Probe() on this scratch.
class ProbeScratch {
 public:
  // Candidate right-entity indices of the last Probe(), sorted ascending.
  const std::vector<uint32_t>& touched() const { return touched_; }
  // 8x8 row-major (left attr, right attr) channel bitmasks for candidate
  // `r`, which must be in touched().
  const uint8_t* cell_channels(uint32_t r) const {
    return cell_channels_.data() + static_cast<size_t>(r) * kCellCount;
  }

 private:
  friend class BlockingIndex;
  friend void AppendBlockKeyHashes(const PreparedValue&,
                                   const BlockingOptions&,
                                   const sim::SimilarityOptions&, bool,
                                   ProbeScratch*,
                                   std::vector<TaggedKeyHash>*);
  std::unordered_map<std::string, std::vector<TaggedKeyHash>> token_memo_;
  std::vector<TaggedKeyHash> keys_;
  std::vector<uint8_t> cell_channels_;  // num_rights * kCellCount bytes
  std::vector<uint8_t> seen_;           // per right entity: in touched_?
  std::vector<uint8_t> union_channels_;  // per right entity: OR over cells
  std::vector<uint8_t> gram_counts_;     // per right: gram hits, saturating
  std::vector<uint32_t> touched_;
};

// Hashed-key variant of AppendBlockKeys; `scratch` memoizes per-token keys.
void AppendBlockKeyHashes(const PreparedValue& value,
                          const BlockingOptions& options,
                          const sim::SimilarityOptions& sim,
                          bool probe_neighbors, ProbeScratch* scratch,
                          std::vector<TaggedKeyHash>* keys);

// The probe-side block keys of one left entity, extracted, sorted and
// deduplicated once for reuse across probes. Key extraction (gram hashing,
// deletion-variant expansion) dominates probe cost, so callers that
// re-probe the same entities every ingest epoch — the incremental
// FeatureSpace::Grow path — prepare once and amortize it away. Valid for
// any index built with the same (blocking, similarity) options.
struct PreparedProbe {
  struct Attr {
    std::vector<TaggedKeyHash> keys;  // sorted by (hash, channel), deduped
    bool is_short = false;  // value within single_gram_value_length
  };
  std::vector<Attr> attrs;
};

// Inverted index: block-key hash -> sorted list of (right entity, attr)
// postings.
class BlockingIndex {
 public:
  BlockingIndex() = default;
  BlockingIndex(BlockingIndex&&) = default;
  BlockingIndex& operator=(BlockingIndex&&) = default;
  BlockingIndex(const BlockingIndex&) = delete;
  BlockingIndex& operator=(const BlockingIndex&) = delete;

  // With a pool, key extraction is sharded across its workers and the
  // per-chunk sorted runs are merged pairwise in parallel. The final sorted
  // entry sequence — and therefore the postings/table bytes — is identical
  // at any thread count (asserted by the fingerprint test).
  static BlockingIndex Build(const std::vector<PreparedEntity>& rights,
                             const BlockingOptions& options,
                             const sim::SimilarityOptions& sim,
                             ThreadPool* pool = nullptr);

  // Extends the index over rights[first_new..] (rights[0..first_new) must
  // be the entities the index already covers). New postings land in a
  // sorted pending sidecar consulted by every probe; once the sidecar
  // outgrows the dirt threshold it is merged back into the CSR layout.
  // Serial and deterministic: the resulting logical index — and its
  // Fingerprint() — equals a fresh Build() over all rights.
  void AddRights(const std::vector<PreparedEntity>& rights, size_t first_new);

  // Probes the index with every attribute value of `left`, leaving the
  // sorted candidate list in scratch->touched() and the per-cell channel
  // bitmasks behind scratch->cell_channels(). Thread-safe with one
  // ProbeScratch per caller: the index is immutable after Build.
  //
  // `min_right` restricts the probe to right entities with index >=
  // min_right; the result is exactly the full probe's state restricted to
  // those candidates (per-right accumulation is independent). The delta
  // path uses this to score grown frontiers in O(new pairs).
  void Probe(const PreparedEntity& left, ProbeScratch* scratch,
             uint32_t min_right) const;
  void Probe(const PreparedEntity& left, ProbeScratch* scratch) const {
    Probe(left, scratch, 0);
  }

  // Extracts the probe-side keys of `left` for the PreparedProbe overload.
  // `scratch` only provides the per-token key memo.
  PreparedProbe PrepareProbe(const PreparedEntity& left,
                             ProbeScratch* scratch) const;

  // Probe with keys prepared by PrepareProbe: bit-identical resulting
  // scratch state, minus the per-call key extraction.
  void Probe(const PreparedProbe& probe, ProbeScratch* scratch,
             uint32_t min_right) const;

  // Appends the sorted, deduplicated indices of every right entity sharing
  // at least one block with `left` to `*out` (cleared first), and the
  // bitmask of shared channels per candidate (the union over its attribute
  // cells) to `*channels` (parallel to `*out`).
  void Candidates(const PreparedEntity& left, ProbeScratch* scratch,
                  std::vector<uint32_t>* out,
                  std::vector<uint8_t>* channels) const;

  // Convenience overload with private scratch, discarding the channels.
  void Candidates(const PreparedEntity& left,
                  std::vector<uint32_t>* out) const;

  bool empty() const { return postings_.empty() && pending_.empty(); }
  size_t block_count() const { return block_count_; }
  uint64_t posting_count() const { return postings_.size() + pending_.size(); }
  // Entries currently in the pending sidecar (not yet merged into the CSR).
  size_t pending_count() const { return pending_.size(); }
  // Number of sidecar-into-CSR merge compactions performed so far.
  uint64_t merge_count() const { return merge_count_; }
  size_t num_rights() const { return num_rights_; }

  void set_pending_merge_threshold(size_t threshold) {
    options_.pending_merge_threshold = threshold;
  }

  // Representation-independent hash over the logical (key hash, posting)
  // entry multiset plus the covered right count: invariant under CSR-vs-
  // pending placement and table layout, so an incrementally grown index
  // fingerprints identically to a fresh Build() over the same rights.
  uint64_t Fingerprint() const;

 private:
  using Entry = std::pair<uint64_t, uint32_t>;  // (key hash, packed posting)

  // Shared pieces of the two Probe overloads: clear the previous probe's
  // scratch state, accumulate one attribute's keys, and apply the final
  // sort + gram-threshold filter.
  void ResetScratch(ProbeScratch* scratch) const;
  void ProbeAttr(const std::vector<TaggedKeyHash>& keys, size_t attr_slot,
                 bool left_is_short, uint32_t min_posting,
                 ProbeScratch* scratch) const;
  void FinishProbe(ProbeScratch* scratch) const;

  // Replaces the CSR postings + hash table with the globally (hash,
  // posting)-sorted, deduplicated `entries`.
  void AssignFromEntries(const std::vector<Entry>& entries);
  // Merges the pending sidecar into the CSR when it outgrows the dirt
  // threshold.
  void MaybeMergePending();
  // Open-addressed hash table over contiguous posting storage (CSR layout):
  // a slot maps a block-key hash to its [begin, begin+len) range in
  // postings_. The key hashes are already well mixed (FNV-1a / SplitMix64),
  // so the slot index is just hash & mask. len == 0 marks an empty slot.
  struct Slot {
    uint64_t hash = 0;
    uint32_t begin = 0;
    uint32_t len = 0;
  };
  // One-bit membership filter over every posted key hash (CSR + pending):
  // a probe key whose bit is clear provably has no postings, so the common
  // miss costs one cache-resident bit test instead of a table walk plus a
  // sidecar binary search. False positives just fall through to the normal
  // lookup. Sized ~8 bits per distinct key by AssignFromEntries; AddRights
  // extends it in place (merges re-size it).
  void FilterInsert(uint64_t hash) {
    key_filter_[(hash & key_filter_mask_) >> 6] |=
        1ull << (hash & key_filter_mask_ & 63u);
  }
  bool FilterMaybeContains(uint64_t hash) const {
    return (key_filter_[(hash & key_filter_mask_) >> 6] >>
            (hash & key_filter_mask_ & 63u)) &
           1u;
  }
  void ResetFilter(size_t distinct_keys);

  std::vector<Slot> table_;
  uint64_t table_mask_ = 0;
  std::vector<uint64_t> key_filter_ = {0};
  uint64_t key_filter_mask_ = 63;
  // Packed (right_index << 4) | short_value_flag << 3 | min(attr_index, 7),
  // sorted within a block.
  std::vector<uint32_t> postings_;
  // Sorted (hash, posting) entries from AddRights() awaiting their merge
  // into the CSR; probes consult this alongside the table.
  std::vector<Entry> pending_;
  size_t block_count_ = 0;
  uint32_t num_rights_ = 0;
  uint64_t merge_count_ = 0;
  BlockingOptions options_;
  sim::SimilarityOptions sim_;
};

}  // namespace alex::core

#endif  // ALEX_CORE_BLOCKING_H_
