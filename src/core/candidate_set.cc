#include "core/candidate_set.h"

#include <algorithm>

namespace alex::core {

bool CandidateSet::Add(PairId pair) {
  auto [it, inserted] = positions_.emplace(pair, items_.size());
  if (!inserted) return false;
  items_.push_back(pair);
  return true;
}

bool CandidateSet::Remove(PairId pair) {
  auto it = positions_.find(pair);
  if (it == positions_.end()) return false;
  size_t pos = it->second;
  PairId last = items_.back();
  items_[pos] = last;
  positions_[last] = pos;
  items_.pop_back();
  positions_.erase(it);
  return true;
}

PairId CandidateSet::Sample(Rng* rng) const {
  return items_[rng->NextBounded(items_.size())];
}

std::vector<PairId> CandidateSet::SortedSnapshot() const {
  std::vector<PairId> snapshot = items_;
  std::sort(snapshot.begin(), snapshot.end());
  return snapshot;
}

}  // namespace alex::core
