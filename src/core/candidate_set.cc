#include "core/candidate_set.h"

#include <algorithm>

namespace alex::core {

bool CandidateSet::Add(PairId pair) {
  auto [it, inserted] = positions_.emplace(pair, items_.size());
  if (!inserted) return false;
  items_.push_back(pair);
  BumpDelta(pair, +1);
  return true;
}

bool CandidateSet::Remove(PairId pair) {
  auto it = positions_.find(pair);
  if (it == positions_.end()) return false;
  size_t pos = it->second;
  PairId last = items_.back();
  items_[pos] = last;
  positions_[last] = pos;
  items_.pop_back();
  positions_.erase(it);
  BumpDelta(pair, -1);
  return true;
}

void CandidateSet::BumpDelta(PairId pair, int direction) {
  auto [it, inserted] = delta_.emplace(pair, direction);
  if (inserted) return;
  it->second += direction;
  if (it->second == 0) delta_.erase(it);
}

size_t CandidateSet::TakeEpochChanges() {
  size_t changes = delta_.size();
  delta_.clear();
  return changes;
}

PairId CandidateSet::Sample(Rng* rng) const {
  return items_[rng->NextBounded(items_.size())];
}

void CandidateSet::SortedEpochDelta(std::vector<PairId>* added,
                                    std::vector<PairId>* removed) const {
  added->clear();
  removed->clear();
  for (const auto& [pair, net] : delta_) {
    (net > 0 ? added : removed)->push_back(pair);
  }
  std::sort(added->begin(), added->end());
  std::sort(removed->begin(), removed->end());
}

std::vector<PairId> CandidateSet::SortedSnapshot() const {
  std::vector<PairId> snapshot = items_;
  std::sort(snapshot.begin(), snapshot.end());
  return snapshot;
}

}  // namespace alex::core
