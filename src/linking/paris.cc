#include "linking/paris.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "rdf/dataset_stats.h"

namespace alex::linking {
namespace {

using rdf::Term;
using rdf::TermId;
using rdf::Triple;
using rdf::TripleStore;

// Normalized key under which two literal values count as "the same" for
// PARIS evidence: lowercase, whitespace-collapsed lexical form prefixed by
// a coarse type tag (numbers compare by canonical numeric form).
std::string ValueKey(const Term& term) {
  if (term.is_literal()) {
    switch (term.literal_type()) {
      case rdf::LiteralType::kInteger:
      case rdf::LiteralType::kDouble: {
        double value = term.AsDouble();
        char buf[64];
        std::snprintf(buf, sizeof(buf), "n:%.12g", value);
        return buf;
      }
      case rdf::LiteralType::kDate:
        return "d:" + term.lexical();
      case rdf::LiteralType::kBoolean:
        return "b:" + term.lexical();
      case rdf::LiteralType::kString:
        break;
    }
    std::string out = "s:";
    out += alex::Join(alex::SplitWords(alex::ToLowerAscii(term.lexical())),
                      " ");
    return out;
  }
  return "";  // IRIs and blanks are handled through entity equality.
}

struct PairHash {
  size_t operator()(const std::pair<TermId, TermId>& p) const {
    return std::hash<uint64_t>{}((static_cast<uint64_t>(p.first) << 32) |
                                 p.second);
  }
};

struct SubjectPred {
  TermId subject;
  TermId predicate;
};

// Per-store inverted index from value keys to the (subject, predicate)
// occurrences of that value.
std::unordered_map<std::string, std::vector<SubjectPred>> BuildValueIndex(
    const TripleStore& store) {
  std::unordered_map<std::string, std::vector<SubjectPred>> index;
  for (const Triple& t :
       store.Match(std::nullopt, std::nullopt, std::nullopt)) {
    const Term& object = store.dictionary().term(t.object);
    std::string key = ValueKey(object);
    if (key.empty()) continue;
    index[key].push_back(SubjectPred{t.subject, t.predicate});
  }
  return index;
}

double InverseFunctionality(const rdf::DatasetStats& stats, TermId predicate,
                            double smoothing) {
  const rdf::PredicateStats* ps = stats.Find(predicate);
  if (ps == nullptr) return 0.0;
  double inv = ps->InverseFunctionality();
  return std::max(0.0, std::min(1.0, inv - smoothing));
}

}  // namespace

std::vector<Link> FilterByScore(std::vector<Link> links, double threshold) {
  links.erase(std::remove_if(links.begin(), links.end(),
                             [threshold](const Link& link) {
                               return link.score <= threshold;
                             }),
              links.end());
  return links;
}

std::vector<Link> RunParis(const TripleStore& left, const TripleStore& right,
                           const ParisOptions& options) {
  const rdf::DatasetStats left_stats = rdf::ComputeStats(left);
  const rdf::DatasetStats right_stats = rdf::ComputeStats(right);
  auto left_index = BuildValueIndex(left);
  auto right_index = BuildValueIndex(right);

  using Pair = std::pair<TermId, TermId>;
  // P(x ≡ y) for candidate pairs, updated every round.
  std::unordered_map<Pair, double, PairHash> equality;
  // Relation alignment weight for predicate pairs, in [0, 1].
  std::unordered_map<Pair, double, PairHash> relation_weight;

  // Pre-collect IRI-valued triples once for the recursive-evidence pass.
  std::vector<Triple> left_iri_triples;
  for (const Triple& t :
       left.Match(std::nullopt, std::nullopt, std::nullopt)) {
    if (left.dictionary().term(t.object).is_iri()) {
      left_iri_triples.push_back(t);
    }
  }
  // Index right IRI triples by (predicate not needed) object -> (subj, pred).
  std::unordered_map<TermId, std::vector<SubjectPred>> right_by_iri_object;
  for (const Triple& t :
       right.Match(std::nullopt, std::nullopt, std::nullopt)) {
    if (right.dictionary().term(t.object).is_iri()) {
      right_by_iri_object[t.object].push_back(
          SubjectPred{t.subject, t.predicate});
    }
  }
  // Map right IRIs by lexical form for cross-store object resolution.
  // (Objects of the two stores live in different dictionaries.)
  std::unordered_map<std::string, TermId> right_iri_by_lexical;
  for (const auto& [obj, _] : right_by_iri_object) {
    right_iri_by_lexical[right.dictionary().term(obj).lexical()] = obj;
  }

  for (int round = 0; round < std::max(1, options.iterations); ++round) {
    std::unordered_map<Pair, double, PairHash> log_not_equal;

    auto add_evidence = [&](TermId x, TermId y, double weight) {
      if (weight <= 0.0) return;
      weight = std::min(weight, 0.999999);
      log_not_equal[{x, y}] += std::log1p(-weight);
    };

    // 1. Literal-value evidence.
    for (const auto& [key, left_occurrences] : left_index) {
      auto it = right_index.find(key);
      if (it == right_index.end()) continue;
      const auto& right_occurrences = it->second;
      if (left_occurrences.size() > options.max_value_group ||
          right_occurrences.size() > options.max_value_group) {
        continue;  // stop-value: too common to be informative
      }
      for (const SubjectPred& l : left_occurrences) {
        double inv_l = InverseFunctionality(left_stats, l.predicate,
                                            options.smoothing);
        for (const SubjectPred& r : right_occurrences) {
          double inv_r = InverseFunctionality(right_stats, r.predicate,
                                              options.smoothing);
          double weight = inv_l * inv_r;
          if (round > 0) {
            auto rel = relation_weight.find({l.predicate, r.predicate});
            double rw = rel == relation_weight.end() ? 0.2 : rel->second;
            weight *= 0.5 + 0.5 * rw;  // never fully mute direct evidence
          }
          add_evidence(l.subject, r.subject, weight);
        }
      }
    }

    // 2. Recursive evidence through IRI-valued attributes: if x --r1--> o1,
    // y --r2--> o2 and P(o1 ≡ o2) from the previous round is high, that
    // supports x ≡ y. Same-lexical IRIs count as equal with probability 1.
    if (round > 0 || !equality.empty()) {
      for (const Triple& lt : left_iri_triples) {
        const std::string& obj_lex =
            left.dictionary().term(lt.object).lexical();
        // Counterparts: identical IRI in the right store...
        auto same = right_iri_by_lexical.find(obj_lex);
        double inv_l = InverseFunctionality(left_stats, lt.predicate,
                                            options.smoothing);
        if (same != right_iri_by_lexical.end()) {
          for (const SubjectPred& r : right_by_iri_object[same->second]) {
            double inv_r = InverseFunctionality(right_stats, r.predicate,
                                                options.smoothing);
            add_evidence(lt.subject, r.subject, inv_l * inv_r);
          }
        }
        // ...and right entities currently believed equal to the object.
        // (Scan limited to pairs involving lt.object as the left member.)
        // For efficiency this uses the equality map directly below.
      }
      for (const auto& [pair, prob] : equality) {
        if (prob < 0.5) continue;
        // pair = (left object candidate, right object candidate): propagate
        // to subjects referencing them.
        auto rit = right_by_iri_object.find(pair.second);
        if (rit == right_by_iri_object.end()) continue;
        for (const Triple& lt : left.Match(std::nullopt, std::nullopt,
                                           pair.first)) {
          double inv_l = InverseFunctionality(left_stats, lt.predicate,
                                              options.smoothing);
          for (const SubjectPred& r : rit->second) {
            double inv_r = InverseFunctionality(right_stats, r.predicate,
                                                options.smoothing);
            add_evidence(lt.subject, r.subject, prob * inv_l * inv_r);
          }
        }
      }
    }

    // Fold evidence into equality probabilities.
    equality.clear();
    for (const auto& [pair, log_ne] : log_not_equal) {
      equality[pair] = 1.0 - std::exp(log_ne);
    }

    // 3. Relation alignment: how often do r1 (left) and r2 (right) connect
    // equal value/entities among strongly-matched pairs?
    relation_weight.clear();
    std::unordered_map<TermId, double> left_pred_support;
    for (const auto& [key, left_occurrences] : left_index) {
      auto it = right_index.find(key);
      if (it == right_index.end()) continue;
      if (left_occurrences.size() > options.max_value_group ||
          it->second.size() > options.max_value_group) {
        continue;
      }
      for (const SubjectPred& l : left_occurrences) {
        for (const SubjectPred& r : it->second) {
          auto eq = equality.find({l.subject, r.subject});
          if (eq == equality.end() || eq->second < 0.5) continue;
          relation_weight[{l.predicate, r.predicate}] += eq->second;
          left_pred_support[l.predicate] += eq->second;
        }
      }
    }
    for (auto& [pair, weight] : relation_weight) {
      double denom = left_pred_support[pair.first];
      if (denom > 0.0) weight /= denom;
    }
  }

  // Mutual-best pruning: keep (x, y) only if y is x's best match and x is
  // y's best match (PARIS' final alignment is functional in both
  // directions for sameAs links).
  std::unordered_map<TermId, std::pair<TermId, double>> best_left;
  std::unordered_map<TermId, std::pair<TermId, double>> best_right;
  for (const auto& [pair, prob] : equality) {
    auto bl = best_left.find(pair.first);
    if (bl == best_left.end() || prob > bl->second.second) {
      best_left[pair.first] = {pair.second, prob};
    }
    auto br = best_right.find(pair.second);
    if (br == best_right.end() || prob > br->second.second) {
      best_right[pair.second] = {pair.first, prob};
    }
  }

  std::vector<Link> links;
  for (const auto& [pair, prob] : equality) {
    if (prob < options.min_score) continue;
    const auto& bl = best_left[pair.first];
    const auto& br = best_right[pair.second];
    if (bl.first != pair.second || br.first != pair.first) continue;
    Link link;
    link.left = left.dictionary().term(pair.first).lexical();
    link.right = right.dictionary().term(pair.second).lexical();
    link.score = prob;
    links.push_back(std::move(link));
  }
  std::sort(links.begin(), links.end(), [](const Link& a, const Link& b) {
    if (a.score != b.score) return a.score > b.score;
    return a < b;
  });
  return links;
}

}  // namespace alex::linking
