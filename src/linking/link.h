// Link types shared by the automatic linkers, the federation layer, and the
// ALEX core.
//
// A Link is an owl:sameAs assertion between an entity of the "left" data set
// and an entity of the "right" data set, identified by their IRIs. Scores
// come from the automatic linking algorithm (PARIS assigns probabilities);
// links added by ALEX exploration carry score 1.0.
#ifndef ALEX_LINKING_LINK_H_
#define ALEX_LINKING_LINK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace alex::linking {

struct Link {
  std::string left;   // IRI in the left data set
  std::string right;  // IRI in the right data set
  double score = 1.0;

  friend bool operator==(const Link& a, const Link& b) {
    return a.left == b.left && a.right == b.right;
  }
  friend bool operator<(const Link& a, const Link& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  }
};

// Hash over the IRI pair (score is not part of link identity).
struct LinkHash {
  size_t operator()(const Link& link) const {
    size_t h1 = std::hash<std::string>{}(link.left);
    size_t h2 = std::hash<std::string>{}(link.right);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

// The IRI of the owl:sameAs predicate.
inline constexpr const char kOwlSameAs[] =
    "http://www.w3.org/2002/07/owl#sameAs";

}  // namespace alex::linking

#endif  // ALEX_LINKING_LINK_H_
