// A SILK-style rule-based matcher: the user supplies linkage rules (pairs of
// predicates, a similarity threshold per rule, and a weight), and the
// matcher scores entity pairs by the weighted sum of rule similarities.
// Token blocking keeps the candidate set far below the full cross product.
//
// This is the second candidate-link generator (the paper emphasizes that
// ALEX works with links from *any* automatic linking algorithm).
#ifndef ALEX_LINKING_RULE_MATCHER_H_
#define ALEX_LINKING_RULE_MATCHER_H_

#include <string>
#include <vector>

#include "linking/link.h"
#include "rdf/triple_store.h"

namespace alex::linking {

struct MatchRule {
  std::string left_predicate;   // IRI in the left data set
  std::string right_predicate;  // IRI in the right data set
  double weight = 1.0;
  // Similarity below this contributes 0 for the rule.
  double min_similarity = 0.5;
};

struct RuleMatcherOptions {
  std::vector<MatchRule> rules;
  // Pairs whose normalized weighted score exceeds this become links.
  double accept_threshold = 0.8;
  // Token groups larger than this are skipped during blocking.
  size_t max_block = 200;
};

// Runs the matcher and returns links sorted by descending score.
std::vector<Link> RunRuleMatcher(const rdf::TripleStore& left,
                                 const rdf::TripleStore& right,
                                 const RuleMatcherOptions& options);

}  // namespace alex::linking

#endif  // ALEX_LINKING_RULE_MATCHER_H_
