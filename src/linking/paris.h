// A C++ re-implementation of the core of PARIS (Suchanek, Abiteboul,
// Senellart, PVLDB 2011), the automatic linking algorithm the paper uses to
// produce ALEX's initial candidate links (§7.1).
//
// Model (simplified but faithful to the paper's spirit):
//   * Shared attribute values are linkage evidence. The weight of one piece
//     of evidence is the product of the *inverse functionalities* of the two
//     predicates involved — a value that nearly identifies its subject
//     (ISBN, name) is strong evidence, a value shared by many subjects
//     (rdf:type) is weak.
//   * P(x ≡ y) = 1 − Π over evidence (1 − w_i): independent noisy-or.
//   * Iteration: relation-alignment scores are estimated from the current
//     entity equalities and are used to reweight evidence; IRI-valued
//     attributes contribute evidence proportional to the equality
//     probability of the referenced entities from the previous round.
//
// PARIS relies on *exact* value equality (modulo case/whitespace
// normalization); this is what limits its recall on noisy data and leaves
// room for ALEX to discover additional links.
#ifndef ALEX_LINKING_PARIS_H_
#define ALEX_LINKING_PARIS_H_

#include <cstddef>
#include <vector>

#include "linking/link.h"
#include "rdf/triple_store.h"

namespace alex::linking {

struct ParisOptions {
  // Number of equality-propagation rounds.
  int iterations = 3;
  // Links with final probability below this are dropped from the output.
  // The paper keeps links with score > 0.95; that cut is applied by the
  // caller so the full distribution is observable.
  double min_score = 0.05;
  // Values shared by more than this many subjects within one data set are
  // ignored as evidence (stop-value pruning, as in PARIS' implementation).
  size_t max_value_group = 50;
  // Smoothing added to inverse functionality estimates.
  double smoothing = 0.0;
};

// Runs PARIS between `left` and `right` and returns scored candidate links
// (both directions considered jointly; one link per entity pair), sorted by
// descending score.
std::vector<Link> RunParis(const rdf::TripleStore& left,
                           const rdf::TripleStore& right,
                           const ParisOptions& options = {});

// Keeps only links with score > `threshold` (paper: 0.95).
std::vector<Link> FilterByScore(std::vector<Link> links, double threshold);

}  // namespace alex::linking

#endif  // ALEX_LINKING_PARIS_H_
