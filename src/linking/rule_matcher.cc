#include "linking/rule_matcher.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "similarity/value_similarity.h"

namespace alex::linking {
namespace {

using rdf::Term;
using rdf::TermId;
using rdf::TripleStore;

struct PairHash {
  size_t operator()(const std::pair<TermId, TermId>& p) const {
    return std::hash<uint64_t>{}((static_cast<uint64_t>(p.first) << 32) |
                                 p.second);
  }
};

// subject ids grouped by lowercase token of the values of `predicate`.
std::unordered_map<std::string, std::vector<TermId>> TokenBlocks(
    const TripleStore& store, const std::string& predicate) {
  std::unordered_map<std::string, std::vector<TermId>> blocks;
  auto pred_id = store.dictionary().Lookup(rdf::Term::Iri(predicate));
  if (!pred_id) return blocks;
  for (const rdf::Triple& t :
       store.Match(std::nullopt, *pred_id, std::nullopt)) {
    const Term& object = store.dictionary().term(t.object);
    for (const std::string& token :
         SplitWords(ToLowerAscii(object.lexical()))) {
      blocks[token].push_back(t.subject);
    }
  }
  return blocks;
}

}  // namespace

std::vector<Link> RunRuleMatcher(const TripleStore& left,
                                 const TripleStore& right,
                                 const RuleMatcherOptions& options) {
  // 1. Blocking: a candidate pair must share at least one value token under
  // at least one rule.
  std::unordered_set<std::pair<TermId, TermId>, PairHash> candidates;
  for (const MatchRule& rule : options.rules) {
    auto left_blocks = TokenBlocks(left, rule.left_predicate);
    auto right_blocks = TokenBlocks(right, rule.right_predicate);
    for (const auto& [token, left_subjects] : left_blocks) {
      auto it = right_blocks.find(token);
      if (it == right_blocks.end()) continue;
      if (left_subjects.size() > options.max_block ||
          it->second.size() > options.max_block) {
        continue;
      }
      for (TermId l : left_subjects) {
        for (TermId r : it->second) candidates.insert({l, r});
      }
    }
  }

  // 2. Score candidates with the weighted rules.
  double total_weight = 0.0;
  for (const MatchRule& rule : options.rules) total_weight += rule.weight;
  if (total_weight <= 0.0) return {};

  std::vector<Link> links;
  sim::SimilarityOptions sim_options;
  for (const auto& [l, r] : candidates) {
    double score = 0.0;
    for (const MatchRule& rule : options.rules) {
      auto lp = left.dictionary().Lookup(rdf::Term::Iri(rule.left_predicate));
      auto rp =
          right.dictionary().Lookup(rdf::Term::Iri(rule.right_predicate));
      if (!lp || !rp) continue;
      // Best similarity across the (usually single) value pairs.
      double best = 0.0;
      for (TermId lo : left.Objects(l, *lp)) {
        for (TermId ro : right.Objects(r, *rp)) {
          best = std::max(best, sim::ValueSimilarity(
                                    left.dictionary().term(lo),
                                    right.dictionary().term(ro),
                                    sim_options));
        }
      }
      if (best >= rule.min_similarity) score += rule.weight * best;
    }
    score /= total_weight;
    if (score > options.accept_threshold) {
      Link link;
      link.left = left.dictionary().term(l).lexical();
      link.right = right.dictionary().term(r).lexical();
      link.score = score;
      links.push_back(std::move(link));
    }
  }
  std::sort(links.begin(), links.end(), [](const Link& a, const Link& b) {
    if (a.score != b.score) return a.score > b.score;
    return a < b;
  });
  return links;
}

}  // namespace alex::linking
