// Serialization of link sets.
//
// Two formats:
//  * TSV: `left<TAB>right<TAB>score` per line — handy for tooling and for
//    ground-truth files;
//  * N-Triples with owl:sameAs predicates — the interchange format of the
//    Linked Open Data cloud (scores are not representable and default
//    to 1.0 on read).
#ifndef ALEX_LINKING_LINK_IO_H_
#define ALEX_LINKING_LINK_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "linking/link.h"

namespace alex::linking {

// TSV format.
std::string WriteLinksTsv(const std::vector<Link>& links);
Result<std::vector<Link>> ParseLinksTsv(std::string_view text);
Status SaveLinksTsv(const std::vector<Link>& links, const std::string& path);
Result<std::vector<Link>> LoadLinksTsv(const std::string& path);

// owl:sameAs N-Triples format.
std::string WriteLinksNTriples(const std::vector<Link>& links);
// Extracts every owl:sameAs triple whose subject and object are IRIs.
Result<std::vector<Link>> ParseLinksNTriples(std::string_view text);
Status SaveLinksNTriples(const std::vector<Link>& links,
                         const std::string& path);
Result<std::vector<Link>> LoadLinksNTriples(const std::string& path);

}  // namespace alex::linking

#endif  // ALEX_LINKING_LINK_IO_H_
